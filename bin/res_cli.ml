(* The `res` command-line tool: run MiniIR programs, capture coredumps,
   and drive reverse execution synthesis over them.

     res validate prog.res            check a program is well-formed
     res check prog.res               static lint: races, deadlocks, dead code
     res run prog.res -o core.txt     run; save the coredump on a crash
     res analyze prog.res core.txt    synthesize, replay, classify
     res replay prog.res core.txt     verify deterministic reproduction
     res debug prog.res core.txt      interactive time-travel debugger
     res hwdiag prog.res core.txt     software bug or hardware error?
     res exploit prog.res core.txt    exploitability rating
     res workload NAME -o core.txt    generate a built-in buggy workload
     res triage prog.res --dir D -j4  batch-triage a directory of coredumps
     res triage-demo                  run the triaging comparison corpus
     res selftest                     fault-injection self-test of the pipeline
     res resume ckpt.res              continue an interrupted analysis
     res serve --socket S --spool D   long-running triage daemon
     res client submit prog core      submit to a running daemon

   Exit codes: 0 analysis complete, 1 internal error or invalid usage,
   2 partial analysis (search truncated), 3 bad coredump, 4 budget or
   deadline exhausted, 5 submission rejected by a daemon (overload,
   breaker, or drain).  `res check` reuses 0/2/3 as clean / warnings /
   errors, so orchestrators can gate on lint severity. *)

open Cmdliner

(* Distinct exit codes so orchestrators can triage failures without
   parsing output. *)
let exit_ok = 0
let exit_internal = 1
let exit_partial = 2
let exit_bad_dump = 3
let exit_exhausted = 4

let exit_rejected = 5
(** a triage daemon refused the submission with a typed rejection *)

(** Abort the command with a code; caught at the top level (never a raw
    OCaml backtrace). *)
exception Die of int * string

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_prog path =
  match Res_ir.Parser.parse_result (read_file path) with
  | Ok prog -> (
      match Res_ir.Validate.check prog with
      | [] -> Ok prog
      | errs ->
          Error
            (Fmt.str "invalid program:@.%a"
               Fmt.(list ~sep:cut Res_ir.Validate.pp_error)
               errs))
  | Error msg -> Error msg

let or_die = function
  | Ok v -> v
  | Error msg -> raise (Die (exit_internal, msg))

(** Load a coredump through the hardened loader: classified dump damage
    exits with {!exit_bad_dump}; a salvaged dump analyzes with a warning. *)
let load_dump ?(salvage = false) path =
  match Res_vm.Coredump_io.load_result ~salvage path with
  | Ok { Res_vm.Coredump_io.dump; salvaged = None } -> dump
  | Ok { Res_vm.Coredump_io.dump; salvaged = Some damage } ->
      Fmt.epr "warning: coredump damaged (%a); salvaged the intact prefix@."
        Res_vm.Coredump_io.pp_dump_error damage;
      dump
  | Error err ->
      raise
        (Die (exit_bad_dump, Res_vm.Coredump_io.dump_error_to_string err))

(* --- common arguments --- *)

let prog_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROG" ~doc:"MiniIR program file (textual assembly).")

let dump_arg pos_idx =
  Arg.(
    required
    & pos pos_idx (some file) None
    & info [] ~docv:"CORE" ~doc:"Coredump file produced by $(b,res run).")

let depth_arg =
  Arg.(
    value & opt int 8
    & info [ "depth"; "d" ] ~docv:"N" ~doc:"Maximum suffix length in segments.")

let breadcrumbs_arg =
  Arg.(
    value & flag
    & info [ "breadcrumbs"; "b" ]
        ~doc:"Prune backward search with the coredump's LBR breadcrumbs.")

(* --- run --- *)

let run_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to save the coredump.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Scheduler seed (random interleaving).")
  in
  let schedule =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "schedule" ] ~docv:"T0,T1,..."
          ~doc:"Fixed thread schedule (tids at successive boundaries).")
  in
  let inputs =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "inputs" ] ~docv:"V0,V1,..."
          ~doc:"Scripted input values, consumed in program order.")
  in
  let max_steps =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Instruction budget.")
  in
  let run prog_path out seed schedule inputs max_steps =
    let prog = or_die (load_prog prog_path) in
    let config =
      {
        (Res_vm.Exec.default_config ()) with
        sched =
          Res_vm.Sched.create
            (match schedule with
            | Some tids -> Res_vm.Sched.Fixed tids
            | None -> Res_vm.Sched.Seeded seed);
        oracle =
          (match inputs with
          | Some vs -> Res_vm.Oracle.scripted vs
          | None -> Res_vm.Oracle.seeded ~seed);
        max_steps;
      }
    in
    match Res_vm.Exec.run_to_coredump ~config prog with
    | Some dump, _ ->
        Fmt.pr "%a@." Res_vm.Crash.pp dump.Res_vm.Coredump.crash;
        (match out with
        | Some path ->
            Res_vm.Coredump_io.save path dump;
            Fmt.pr "coredump written to %s@." path
        | None -> Fmt.pr "%s@." (Res_vm.Coredump.to_string dump));
        exit_ok
    | None, r -> (
        match r.Res_vm.Exec.outcome with
        | Res_vm.Exec.Exited ->
            Fmt.pr "program exited normally (no coredump)@.";
            exit_ok
        | Res_vm.Exec.Out_of_fuel ->
            Fmt.pr "instruction budget exhausted@.";
            exit_exhausted
        | Res_vm.Exec.Crashed _ -> assert false)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a program and capture its coredump on a crash.")
    Term.(const run $ prog_arg $ out $ seed $ schedule $ inputs $ max_steps)

(* --- validate --- *)

let validate_cmd =
  let run prog_path =
    let prog = or_die (load_prog prog_path) in
    Fmt.pr "%s: %d function(s), %d global(s), %d instruction(s) — OK@."
      prog_path
      (List.length prog.Res_ir.Prog.funcs)
      (List.length prog.Res_ir.Prog.globals)
      (Res_ir.Prog.size prog);
    exit_ok
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Parse and validate a MiniIR program.")
    Term.(const run $ prog_arg)

(* --- check --- *)

let check_cmd =
  let prog_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"PROG" ~doc:"MiniIR program file to lint.")
  in
  let all_workloads =
    Arg.(
      value & flag
      & info [ "all-workloads" ]
          ~doc:
            "Lint every built-in workload program instead of a file; the \
             exit code reflects the worst finding across all of them.")
  in
  (* One TSV line per finding, prefixed with the program name so
     --all-workloads output stays machine-splittable. *)
  let check_one name prog =
    let findings = Res_static.Lint.run prog in
    List.iter
      (fun f -> Fmt.pr "%s\t%s@." name (Res_static.Lint.to_line f))
      findings;
    (* Informational coverage row: how much of the program the concrete
       reverse-execution fast path can handle, and how large the crash
       slice is.  Same column shape as a finding (severity "info"), so
       the output stays machine-splittable. *)
    let cov = Res_static.Invert.program_coverage prog in
    Fmt.pr "%s\tinfo\tinvert-coverage\t-\tinvertible=%d/%d slice=%d@." name
      cov.Res_static.Invert.cov_invertible cov.Res_static.Invert.cov_total
      cov.Res_static.Invert.cov_slice;
    Res_static.Lint.exit_code findings
  in
  let run prog_path all_workloads =
    match (prog_path, all_workloads) with
    | Some _, true | None, false ->
        raise
          (Die (exit_internal, "check needs a PROG file or --all-workloads"))
    | Some path, false ->
        (* Lint even programs the validator rejects: the validator's
           errors ARE findings, so parse-only here. *)
        let prog = or_die (Res_ir.Parser.parse_result (read_file path)) in
        check_one path prog
    | None, true ->
        List.fold_left
          (fun worst (w : Res_workloads.Truth.t) ->
            max worst
              (check_one w.Res_workloads.Truth.w_name
                 w.Res_workloads.Truth.w_prog))
          exit_ok Res_workloads.Workloads.all
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically lint a program: validation, unreachable blocks, dead \
          stores, lock leaks, data races, and lock-order deadlocks.  One \
          tab-separated finding per line; exit 0 clean, 2 warnings, 3 \
          errors.")
    Term.(const run $ prog_opt $ all_workloads)

(* --- analyze --- *)

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "If the coredump is damaged, analyze the intact prefix instead of \
           refusing it.")

(** Map an analysis outcome to the documented exit code. *)
let outcome_code = function
  | Res_core.Res.Complete _ -> exit_ok
  | Res_core.Res.Partial
      ((Res_core.Res.Deadline_exceeded | Res_core.Res.Fuel_exhausted), _) ->
      exit_exhausted
  | Res_core.Res.Partial (Res_core.Res.Search_truncated, _) -> exit_partial
  | Res_core.Res.Failed (Res_core.Res.Bad_dump _) -> exit_bad_dump
  | Res_core.Res.Failed (Res_core.Res.Internal _) -> exit_internal

(** Sort reports deterministically before printing, so two runs that
    found the same causes print identically regardless of emission
    order. *)
let sorted_outcome = Res_core.Report.sorted_outcome

(** Print an outcome (sorted) plus, on a partial result, the checkpoint
    a successor can resume from. *)
let report_outcome ctx outcome =
  let outcome = sorted_outcome ctx outcome in
  Fmt.pr "%s@." (Res_core.Report.outcome_to_string ctx outcome);
  (match outcome with
  | Res_core.Res.Partial (_, { Res_core.Res.checkpoint = Some path; _ }) ->
      Fmt.pr "checkpoint saved: %s (continue with: res resume %s)@." path path
  | _ -> ());
  outcome_code outcome

(** Budget flags shared by [analyze] and [resume]. *)
let mk_budget deadline fuel =
  match (deadline, fuel) with
  | None, None -> None
  | _ -> Some (Res_core.Budget.create ?wall_seconds:deadline ?fuel ())

(* --- parallel flags (shared by analyze and triage) --- *)

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker count for the parallel engine.  0 (the default) uses the \
           serial engine; any explicit value — including 1 — routes through \
           the sharded parallel engine, whose results are byte-identical to \
           the serial ones.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("auto", None); ("domains", Some Res_parallel.Pool.Domains);
                  ("fork", Some Res_parallel.Pool.Forked) ])
        None
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Worker backend: $(b,domains) (shared-memory OCaml domains), \
           $(b,fork) (isolated processes; survives worker death), or \
           $(b,auto) (domains on multicore, fork otherwise; the \
           RES_PARALLEL_BACKEND environment variable overrides).")

let shard_depth_arg =
  Arg.(
    value & opt int 2
    & info [ "shard-depth" ] ~docv:"D"
        ~doc:
          "Search depth at which subtrees split off as independent work \
           units (parallel engine only).")

(* --- result-cache flags (shared by triage, serve, node, coordinate,
   client submit) --- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Content-addressed triage result cache.  Verdicts are keyed by the \
           exact (program bytes, dump bytes, budgets and analysis config), \
           so re-triaging a corpus recomputes only unseen work and produces \
           byte-identical output.  Damaged or torn entries are quarantined \
           and transparently recomputed; a missing or unwritable directory \
           just means every lookup misses.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ignore $(b,--cache-dir): force cold analyses.")

(** Open the result cache the flags ask for ([None] = caching off). *)
let open_cache cache_dir no_cache =
  match cache_dir with
  | Some d when not no_cache -> Some (Res_cache.Cache.openr d)
  | _ -> None

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print one machine-parsable key=value line to stderr: wall-clock, \
           nodes expanded, nodes pruned, solver queries, workers used.")

(** The [--stats] line.  Solver queries are counted from this process's
    own (domain-local) counter delta plus what workers reported over the
    wire, so the total is meaningful under every backend.  [restarts] is
    how many times the pool's supervisor respawned a dead worker — a
    healthy run prints 0, so a nonzero value is a cheap flake signal. *)
let print_stats ~wall_s ~nodes ~pruned ~reversed ~slice_skipped ~queries
    ~workers ~restarts =
  Fmt.epr
    "wall_s=%.3f nodes=%d pruned=%d reversed=%d slice_skipped=%d \
     solver_queries=%d workers=%d restarts=%d@."
    wall_s nodes pruned reversed slice_skipped queries workers restarts

let analyze_cmd =
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock deadline for the whole analysis; past it the best \
             partial result so far is reported (exit code 4).")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Search-node budget for the whole analysis (exit code 4 when \
                exhausted).")
  in
  let attempts =
    Arg.(
      value & opt int 3
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Retry-with-escalation attempts: each retry doubles the search \
             node budget before settling for a partial result.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically checkpoint the search to $(docv) (atomic, \
             checksummed); an interrupted analysis continues with $(b,res \
             resume).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint every $(docv) expanded search nodes.")
  in
  let no_static_prune =
    Arg.(
      value & flag
      & info [ "no-static-prune" ]
          ~doc:
            "Disable the static chain-refutation pruner (the reports must \
             not change, only the amount of search work).")
  in
  let no_reverse_exec =
    Arg.(
      value & flag
      & info [ "no-reverse-exec" ]
          ~doc:
            "Disable the concrete reverse-execution fast path for \
             invertible segments (the reports must not change, only the \
             amount of symbolic execution and solver work).")
  in
  let run prog_path dump_path depth breadcrumbs deadline fuel attempts salvage
      checkpoint checkpoint_every no_static_prune no_reverse_exec jobs backend
      shard_depth stats =
    if jobs > 0 && checkpoint <> None then
      raise
        (Die
           ( exit_internal,
             "--checkpoint is a serial-engine feature (the parallel engine \
              checkpoints per worker unit instead); drop -j or --checkpoint"
           ));
    let prog = or_die (load_prog prog_path) in
    let dump = load_dump ~salvage dump_path in
    let ctx = Res_core.Backstep.make_ctx prog in
    let config =
      {
        Res_core.Res.default_config with
        search =
          {
            Res_core.Search.default_config with
            max_segments = depth;
            max_nodes = 30_000;
            use_breadcrumbs = breadcrumbs;
            static_prune = not no_static_prune;
            reverse_exec = not no_reverse_exec;
          };
        max_attempts = max 1 attempts;
      }
    in
    let budget = mk_budget deadline fuel in
    let t0 = Unix.gettimeofday () in
    let q0 = Res_solver.Solver.queries () in
    let outcome, workers, worker_queries, restarts =
      if jobs > 0 then begin
        let outcome, st =
          Res_parallel.Engine.analyze ~config ?budget ~jobs ~shard_depth
            ?backend ~prog ctx dump
        in
        (outcome, st.Res_parallel.Engine.e_jobs,
         st.Res_parallel.Engine.e_worker_queries,
         st.Res_parallel.Engine.e_respawns)
      end
      else
        let checkpointer =
          Option.map
            (fun path ->
              Res_persist.Checkpoint.checkpointer
                ~every:(max 1 checkpoint_every) ~path ~config ~prog ~dump ())
            checkpoint
        in
        (Res_core.Res.analyze ~config ?budget ?checkpointer ctx dump, 1, 0, 0)
    in
    if stats then begin
      let a = Res_core.Res.analysis outcome in
      print_stats
        ~wall_s:(Unix.gettimeofday () -. t0)
        ~nodes:a.Res_core.Res.nodes_expanded
        ~pruned:a.Res_core.Res.nodes_pruned
        ~reversed:a.Res_core.Res.nodes_reversed
        ~slice_skipped:a.Res_core.Res.slice_skipped
        ~queries:(Res_solver.Solver.queries () - q0 + worker_queries)
        ~workers ~restarts
    end;
    report_outcome ctx outcome
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Synthesize execution suffixes for a coredump, replay them, and \
          classify the root cause.  With $(b,-j N) the search is sharded \
          across N workers; the reports are byte-identical to the serial \
          engine's.")
    Term.(
      const run $ prog_arg $ dump_arg 1 $ depth_arg $ breadcrumbs_arg
      $ deadline $ fuel $ attempts $ salvage_arg $ checkpoint
      $ checkpoint_every $ no_static_prune $ no_reverse_exec $ jobs_arg
      $ backend_arg $ shard_depth_arg $ stats_arg)

(* --- resume --- *)

let resume_cmd =
  let ckpt_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CHECKPOINT"
          ~doc:"Checkpoint file written by $(b,res analyze --checkpoint).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline for the resumed analysis.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Search-node budget for the resumed analysis.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Keep checkpointing to the same file every $(docv) expanded \
             nodes, so the resumed run is itself resumable.")
  in
  let run ckpt_path deadline fuel checkpoint_every =
    let ck =
      match Res_persist.Checkpoint.load ckpt_path with
      | Ok ck -> ck
      | Error err ->
          raise
            (Die
               ( exit_bad_dump,
                 Fmt.str "checkpoint %s: %s" ckpt_path
                   (Res_vm.Coredump_io.dump_error_to_string err) ))
    in
    let ctx = Res_core.Backstep.make_ctx ck.Res_persist.Checkpoint.prog in
    let budget = mk_budget deadline fuel in
    let checkpointer =
      Res_persist.Checkpoint.checkpointer ~every:(max 1 checkpoint_every)
        ~path:ckpt_path ~config:ck.Res_persist.Checkpoint.config
        ~prog:ck.Res_persist.Checkpoint.prog
        ~dump:ck.Res_persist.Checkpoint.dump ()
    in
    let outcome =
      Res_core.Res.resume ~config:ck.Res_persist.Checkpoint.config ?budget
        ~checkpointer ctx ck.Res_persist.Checkpoint.dump
        ck.Res_persist.Checkpoint.state
    in
    report_outcome ctx outcome
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Reload a checkpointed analysis (journal-recovering a torn write) \
          and continue it to the same reports an uninterrupted run produces.")
    Term.(const run $ ckpt_arg $ deadline $ fuel $ checkpoint_every)

(* --- replay --- *)

let replay_cmd =
  let times =
    Arg.(
      value & opt int 10
      & info [ "times"; "n" ] ~docv:"N" ~doc:"How many times to replay.")
  in
  let run prog_path dump_path depth times =
    let prog = or_die (load_prog prog_path) in
    let dump = load_dump dump_path in
    let ctx = Res_core.Backstep.make_ctx prog in
    let result =
      Res_core.Search.search
        ~config:{ Res_core.Search.default_config with max_segments = depth }
        ctx dump
    in
    match result.Res_core.Search.suffixes with
    | [] ->
        Fmt.pr "no feasible suffix found (try a larger --depth)@.";
        exit_partial
    | suffix :: _ ->
        Fmt.pr "%a@." Res_core.Suffix.pp suffix;
        let ok, verdicts =
          Res_core.Replay.replay_deterministically ~times ctx suffix dump
        in
        let exact =
          List.length (List.filter (fun v -> v.Res_core.Replay.reproduced) verdicts)
        in
        Fmt.pr "replayed %d times: %d exact coredump matches%s@." times exact
          (if ok then " — deterministic" else "");
        exit_ok
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Synthesize a suffix and replay it repeatedly, verifying exact \
             reproduction.")
    Term.(const run $ prog_arg $ dump_arg 1 $ depth_arg $ times)

(* --- debug --- *)

let debug_cmd =
  let snapshot_every =
    Arg.(
      value & opt int 64
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Snapshot-index interval in instructions.")
  in
  let no_index =
    Arg.(
      value & flag
      & info [ "no-snapshot-index" ]
          ~doc:
            "Disable the snapshot index: every state query replays from \
             step 0.  Same code path and same transcripts, strictly more \
             re-execution — the baseline bench E20 measures against.")
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Run newline-separated commands from $(docv) instead of an \
             interactive session; the deterministic transcript goes to \
             stdout and assert failures set the exit code.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print snapshot-index statistics to stderr when the session \
             ends (kept off stdout so transcripts stay comparable across \
             intervals).")
  in
  let run prog_path dump_path depth snapshot_every no_index script stats =
    let prog = or_die (load_prog prog_path) in
    let dump = load_dump dump_path in
    let ctx = Res_core.Backstep.make_ctx prog in
    let result =
      Res_core.Search.search
        ~config:{ Res_core.Search.default_config with max_segments = depth }
        ctx dump
    in
    let interval = if no_index then 0 else max 0 snapshot_every in
    let session =
      let rec first = function
        | [] ->
            raise
              (Die
                 ( exit_partial,
                   "no suffix reproduces the coredump (try a larger --depth)"
                 ))
        | suffix :: rest -> (
            match Res_debug.Session.create ~interval ctx suffix dump with
            | Ok s -> s
            | Error _ -> first rest)
      in
      first result.Res_core.Search.suffixes
    in
    let code =
      match script with
      | Some path ->
          let r = Res_debug.Script.run_script session (read_file path) in
          print_string r.Res_debug.Script.transcript;
          r.Res_debug.Script.exit_code
      | None -> Res_debug.Script.repl session
    in
    if stats then begin
      let restores, replayed, probes = Res_debug.Session.stats session in
      Fmt.epr
        "index: interval %d, %d snapshot restores, %d instructions \
         re-executed, %d transition probes@."
        interval restores replayed probes
    end;
    code
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:
         "Time-travel debugger over a synthesized suffix: step and \
          reverse-step, continue in both directions, pc breakpoints, value \
          watchpoints, and binary-searched transition watchpoints — every \
          state query O(snapshot interval) via the snapshot index.")
    Term.(
      const run $ prog_arg $ dump_arg 1 $ depth_arg $ snapshot_every
      $ no_index $ script $ stats)

(* --- hwdiag --- *)

let hwdiag_cmd =
  let run prog_path dump_path =
    let prog = or_die (load_prog prog_path) in
    let dump = load_dump dump_path in
    let verdict = Res_usecases.Hwdiag.diagnose prog dump in
    Fmt.pr "%a@." Res_usecases.Hwdiag.pp_verdict verdict;
    (match verdict with
    | Res_usecases.Hwdiag.Software r ->
        Fmt.pr "reconstructed execution:@.%a@." Res_core.Suffix.pp
          r.Res_core.Res.suffix
    | _ -> ());
    exit_ok
  in
  Cmd.v
    (Cmd.info "hwdiag"
       ~doc:"Decide whether a coredump stems from a software bug or a likely \
             hardware error (memory/CPU).")
    Term.(const run $ prog_arg $ dump_arg 1)

(* --- exploit --- *)

let exploit_cmd =
  let run prog_path dump_path =
    let prog = or_die (load_prog prog_path) in
    let dump = load_dump dump_path in
    let e = Res_usecases.Exploit.classify_dump prog dump in
    let h = Res_baselines.Exploitable_heuristic.rate prog dump in
    Fmt.pr "RES taint analysis : %s (address tainted: %b, value tainted: %b)@."
      (Res_usecases.Exploit.rating_name e.Res_usecases.Exploit.rating)
      e.Res_usecases.Exploit.tainted_addr e.Res_usecases.Exploit.tainted_value;
    Fmt.pr "!exploitable-style : %s@."
      (Res_baselines.Exploitable_heuristic.rating_name h);
    exit_ok
  in
  Cmd.v
    (Cmd.info "exploit"
       ~doc:"Rate a failure's exploitability by tracking attacker-controlled \
             inputs through the synthesized suffix.")
    Term.(const run $ prog_arg $ dump_arg 1)

(* --- fuzz --- *)

let fuzz_cmd =
  let run seed runs fmt smoke corpus =
    let runs = if smoke then min runs 300 else runs in
    let only = match fmt with None -> [] | Some f -> [ f ] in
    List.iter
      (fun f ->
        if not (List.mem f Res_fuzz.Fuzz.format_names) then
          raise
            (Die
               ( exit_internal,
                 Fmt.str "unknown format %S; expected one of: %s" f
                   (String.concat ", " Res_fuzz.Fuzz.format_names) )))
      only;
    let r = Res_fuzz.Fuzz.run ?corpus_dir:corpus ~only ~seed ~runs () in
    Fmt.pr "%a@." Res_fuzz.Fuzz.pp_report r;
    if Res_fuzz.Fuzz.total_findings r > 0 then exit_internal else exit_ok
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "PRNG seed.  The whole campaign — every case byte and every \
             decision — is reproducible from it; the printed per-format \
             digest is the witness.")
  in
  let runs_arg =
    Arg.(
      value & opt int 10_000
      & info [ "runs" ] ~docv:"K"
          ~doc:
            "Random cases per format (pristine seeds and the hostile corpus \
             always run in addition).")
  in
  let fmt_arg =
    Arg.(
      value & opt (some string) None
      & info [ "format" ] ~docv:"F"
          ~doc:
            "Fuzz only this format: coredump, checkpoint, wire, protocol, \
             cache, journal, ir, predicate, or command.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI smoke mode: cap the random stream at 300 cases per format.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Write shrunk violation reproducers into this directory.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Deterministic structured fuzzing of every sealed codec and parser: \
          never an uncaught exception, never a hang, never silent acceptance \
          of damaged bytes.  Exits 1 if any contract violation is found.")
    Term.(const run $ seed_arg $ runs_arg $ fmt_arg $ smoke_arg $ corpus_arg)

(* --- workload --- *)

let workload_cmd =
  let wname =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Workload name; omit to list available ones.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to save the coredump.")
  in
  let prog_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"FILE" ~doc:"Where to save the program text.")
  in
  let run wname out prog_out =
    match wname with
    | None ->
        Fmt.pr "available workloads:@.";
        List.iter
          (fun w ->
            Fmt.pr "  %-26s %s@." w.Res_workloads.Truth.w_name
              w.Res_workloads.Truth.w_description)
          Res_workloads.Workloads.all;
        exit_ok
    | Some name ->
        let w = Res_workloads.Workloads.find name in
        let dump = Res_workloads.Truth.coredump w in
        Fmt.pr "%a@." Res_vm.Crash.pp dump.Res_vm.Coredump.crash;
        (match prog_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Res_ir.Prog.to_string w.Res_workloads.Truth.w_prog);
            close_out oc;
            Fmt.pr "program written to %s@." path
        | None -> ());
        (match out with
        | Some path ->
            Res_vm.Coredump_io.save path dump;
            Fmt.pr "coredump written to %s@." path
        | None -> ());
        exit_ok
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a coredump (and program) from a built-in buggy workload.")
    Term.(const run $ wname $ out $ prog_out)

(* --- triage (batch) --- *)

let triage_batch_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some dir) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory of coredump files to triage (every regular file).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-dump wall-clock deadline; a dump that exceeds it degrades \
             to a partial row without starving the rest of the batch.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Per-dump search-node budget.")
  in
  let run prog_path dir jobs backend deadline fuel stats cache_dir no_cache =
    let prog = or_die (load_prog prog_path) in
    let files = Sys.readdir dir in
    Array.sort compare files;
    let items =
      Array.to_list files
      |> List.filter_map (fun name ->
             let path = Filename.concat dir name in
             match (Unix.stat path).Unix.st_kind with
             | Unix.S_REG ->
                 Some
                   {
                     Res_parallel.Batch.it_name = name;
                     it_prog = prog;
                     it_dump =
                       (match Res_vm.Coredump_io.load_result path with
                       | Ok { Res_vm.Coredump_io.dump; _ } -> Ok dump
                       | Error e ->
                           Error (Res_vm.Coredump_io.dump_error_to_string e));
                   }
             | _ -> None
             | exception Unix.Unix_error _ -> None)
    in
    if items = [] then
      raise (Die (exit_internal, Fmt.str "no coredump files under %s" dir));
    let cache = open_cache cache_dir no_cache in
    let t0 = Unix.gettimeofday () in
    let q0 = Res_solver.Solver.queries () in
    let t =
      Res_parallel.Batch.run ?budget_wall:deadline ?budget_fuel:fuel
        ~jobs:(max 1 jobs) ?backend ?cache items
    in
    print_string t.Res_parallel.Batch.tsv;
    if stats then begin
      print_stats
        ~wall_s:(Unix.gettimeofday () -. t0)
        ~nodes:(Res_parallel.Batch.total_nodes t)
        ~pruned:(Res_parallel.Batch.total_pruned t)
        ~reversed:0 ~slice_skipped:0
        ~queries:
          (Res_solver.Solver.queries () - q0
          + t.Res_parallel.Batch.worker_queries)
        ~workers:t.Res_parallel.Batch.workers
        ~restarts:t.Res_parallel.Batch.respawns;
      match cache with
      | Some c ->
          Fmt.epr "cache cache_hits=%d %a@." t.Res_parallel.Batch.cache_hits
            Res_cache.Cache.pp_stats (Res_cache.Cache.stats c)
      | None -> ()
    end;
    (* a batch where literally every dump failed is a pipeline problem,
       not a triage result: make it visible to orchestrators *)
    if Res_parallel.Batch.all_failed t then exit_internal else exit_ok
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Batch-triage every coredump in a directory on a worker pool: \
          analyze each, bucket by root-cause signature, and print a \
          deterministic TSV (one $(b,dump) row per file, then $(b,cluster) \
          rows).  Unloadable or repeatedly-failing dumps degrade to \
          $(b,failed) rows; the batch always completes.")
    Term.(
      const run $ prog_arg $ dir_arg $ jobs_arg $ backend_arg $ deadline
      $ fuel $ stats_arg $ cache_dir_arg $ no_cache_arg)

(* --- triage demo --- *)

let triage_cmd =
  let per_bug =
    Arg.(
      value & opt int 4
      & info [ "per-bug" ] ~docv:"N" ~doc:"Reports generated per root cause.")
  in
  let run per_bug =
    let reports = Res_workloads.Corpus.generate ~n_per_bug:per_bug () in
    let as_triage =
      List.map
        (fun (r : Res_workloads.Corpus.report) ->
          ( {
              Res_usecases.Triage.t_id = r.r_id;
              t_prog = r.r_prog;
              t_dump = r.r_dump;
            },
            r.r_bug ))
        reports
    in
    let rs = List.map fst as_triage in
    let truth r = List.assq r as_triage in
    let show name key =
      let buckets = Res_usecases.Triage.bucket ~key rs in
      let q = Res_usecases.Triage.quality ~truth ~buckets rs in
      Fmt.pr "%-4s %a@." name Res_usecases.Triage.pp_quality q;
      List.iter
        (fun (k, l) -> Fmt.pr "  %-50s %d report(s)@." k (List.length l))
        buckets
    in
    show "WER" (fun (r : Res_usecases.Triage.report) ->
        Res_usecases.Triage.wer_key r.t_dump);
    show "RES" Res_usecases.Triage.res_key;
    exit_ok
  in
  Cmd.v
    (Cmd.info "triage-demo"
       ~doc:"Compare stack-hash (WER) and root-cause (RES) bucketing on the \
             built-in bug-report corpus.")
    Term.(const run $ per_bug)

(* --- serve / client --- *)

let socket_arg =
  Arg.(
    value
    & opt string "res-serve.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket the daemon listens on.")

let serve_cmd =
  let spool =
    Arg.(
      value
      & opt string "res-spool"
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Durable request spool.  Accepted requests are journaled here \
             before they are acknowledged, so a crashed daemon restarted on \
             the same spool loses nothing.")
  in
  let capacity =
    Arg.(
      value & opt int 8
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Admission queue bound; submissions beyond it are shed with a \
             typed overload rejection.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) (Some 30.)
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Default per-request wall-clock budget.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Default per-request fuel budget.")
  in
  let grace =
    Arg.(
      value & opt float 5.0
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:
            "Wall clock past its deadline a worker may overstay before it is \
             SIGKILLed and the request reported as exhausted.")
  in
  let breaker_threshold =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive budget exhaustions of one workload signature that \
             trip its circuit breaker.")
  in
  let breaker_cooldown =
    Arg.(
      value & opt float 5.0
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:"Seconds a tripped breaker stays open before a half-open probe.")
  in
  let attempts =
    Arg.(
      value & opt int 3
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Analysis tries per request across worker deaths before the \
             daemon gives up and reports a synthetic failure.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log daemon events to stderr.")
  in
  let run socket spool jobs capacity deadline fuel grace breaker_threshold
      breaker_cooldown attempts verbose cache_dir no_cache =
    let cfg =
      {
        Res_serve.Server.default_config with
        Res_serve.Server.socket_path = socket;
        spool_dir = spool;
        cache_dir = (if no_cache then None else cache_dir);
        jobs = (if jobs <= 0 then 2 else jobs);
        capacity = max 1 capacity;
        default_deadline = deadline;
        default_fuel = fuel;
        hard_grace = grace;
        breaker_threshold;
        breaker_cooldown;
        worker_attempts = max 1 attempts;
        log = (if verbose then fun m -> Fmt.epr "res-serve: %s@." m else ignore);
      }
    in
    Res_serve.Server.run cfg;
    exit_ok
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resilient triage daemon: accept coredump submissions over \
          a Unix socket, analyze them in supervised forked workers, shed \
          load beyond $(b,--capacity), trip per-workload circuit breakers, \
          and recover accepted-but-unfinished requests from the spool after \
          a crash.  SIGTERM drains gracefully and exits 0.")
    Term.(
      const run $ socket_arg $ spool $ jobs_arg $ capacity $ deadline $ fuel
      $ grace $ breaker_threshold $ breaker_cooldown $ attempts $ verbose
      $ cache_dir_arg $ no_cache_arg)

(** Map a daemon reply to an exit code and print it; Result replies also
    print the report body. *)
let client_finish = function
  | Ok (Res_serve.Protocol.Result { rs_outcome; rs_timeout; rs_body; _ } as r)
    ->
      Fmt.pr "%a@." Res_serve.Protocol.pp_reply r;
      if rs_body <> "" then print_string rs_body;
      if rs_timeout then exit_exhausted
      else if String.equal rs_outcome "complete" then exit_ok
      else if String.equal rs_outcome "partial" then exit_partial
      else exit_internal
  | Ok
      (( Res_serve.Protocol.Rejected_overload _
       | Res_serve.Protocol.Rejected_breaker _
       | Res_serve.Protocol.Rejected_draining ) as r) ->
      Fmt.pr "%a@." Res_serve.Protocol.pp_reply r;
      exit_rejected
  | Ok (Res_serve.Protocol.Err msg) ->
      raise (Die (exit_internal, Fmt.str "daemon: %s" msg))
  | Ok r ->
      Fmt.pr "%a@." Res_serve.Protocol.pp_reply r;
      exit_ok
  | Error e ->
      raise (Die (exit_internal, Res_serve.Client.error_to_string e))

let client_cmd =
  let submit =
    let deadline_ms =
      Arg.(
        value
        & opt (some int) None
        & info [ "deadline-ms" ] ~docv:"MS"
            ~doc:"Per-request wall budget (overrides the daemon default).")
    in
    let fuel =
      Arg.(
        value
        & opt (some int) None
        & info [ "fuel" ] ~docv:"N"
            ~doc:"Per-request fuel budget (overrides the daemon default).")
    in
    let no_wait =
      Arg.(
        value & flag
        & info [ "no-wait" ]
            ~doc:
              "Return right after admission instead of waiting for the \
               result; poll later with $(b,res client fetch).")
    in
    let dump_arg =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"COREDUMP" ~doc:"Coredump file to triage.")
    in
    let run socket prog_path dump_path deadline_ms fuel no_wait cache_dir
        no_cache =
      let module Cache = Res_cache.Cache in
      let module P = Res_serve.Protocol in
      let prog = read_file prog_path in
      let dump = read_file dump_path in
      let cache = open_cache cache_dir no_cache in
      (* Client-side keying sees only what the client knows: the raw
         bytes and the budgets it forwards (daemon defaults are not in
         the key, so an unspecified and a spelled-out deadline are
         distinct entries — conservative, never wrong). *)
      let key =
        match cache with
        | None -> ""
        | Some _ ->
            Cache.key ~prog ~dump
              ~config:
                (Cache.row_config
                   ~wall:
                     (Option.map
                        (fun ms -> float_of_int ms /. 1000.)
                        deadline_ms)
                   ~fuel
                   ~engine:(Fmt.str "client submit %s" P.rep_header))
      in
      let cached =
        match cache with
        | Some c when not (String.equal key "") -> (
            match Cache.find c key with
            | None -> None
            | Some body -> (
                match P.decode_reply body with
                | Ok (P.Result _ as r) -> Some r
                | _ -> None))
        | _ -> None
      in
      let store_result reply =
        match (cache, reply) with
        | ( Some c,
            P.Result
              { rs_id = _; rs_outcome; rs_timeout; rs_elapsed_ms = _; rs_body }
          )
          when (not (String.equal key "")) && not rs_timeout ->
            Cache.store c key
              (P.encode_reply
                 (P.Result
                    {
                      rs_id = "cached";
                      rs_outcome;
                      rs_timeout;
                      rs_elapsed_ms = 0;
                      rs_body;
                    }))
        | _ -> ()
      in
      match cached with
      | Some r -> client_finish (Ok r)
      | None -> (
          if no_wait then
            match
              Res_serve.Client.submit socket ~prog ~dump ?deadline_ms ?fuel ()
            with
            | Ok (conn, reply) ->
                Res_serve.Client.close conn;
                client_finish (Ok reply)
            | Error e -> client_finish (Error e)
          else
            match
              Res_serve.Client.submit_wait ~timeout:3600. socket ~prog ~dump
                ?deadline_ms ?fuel ()
            with
            | Ok (_, Some result) ->
                store_result result;
                client_finish (Ok result)
            | Ok (admission, None) -> client_finish (Ok admission)
            | Error e -> client_finish (Error e))
    in
    Cmd.v
      (Cmd.info "submit"
         ~doc:
           "Submit a (program, coredump) pair; by default wait for the \
            result.  Exit 5 on a typed rejection (overload, breaker, \
            draining).")
      Term.(
        const run $ socket_arg $ prog_arg $ dump_arg $ deadline_ms $ fuel
        $ no_wait $ cache_dir_arg $ no_cache_arg)
  in
  let fetch =
    let id_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"ID" ~doc:"Request id from a previous submit.")
    in
    let run socket id = client_finish (Res_serve.Client.fetch socket id) in
    Cmd.v
      (Cmd.info "fetch"
         ~doc:"Fetch the result (or pending state) of an accepted request.")
      Term.(const run $ socket_arg $ id_arg)
  in
  let simple name doc call =
    Cmd.v (Cmd.info name ~doc)
      Term.(const (fun socket -> client_finish (call socket)) $ socket_arg)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a running triage daemon (submit, fetch, status, drain).")
    [
      submit;
      fetch;
      simple "status" "Print the daemon's counters."
        (fun s -> Res_serve.Client.status s);
      simple "drain"
        "Ask the daemon to stop accepting, finish in-flight work, and exit."
        (fun s -> Res_serve.Client.drain s);
      simple "ping" "Check the daemon is alive."
        (fun s -> Res_serve.Client.ping s);
    ]

(* --- cluster: node daemon + coordinator --- *)

let node_cmd =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to listen on.")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let spool =
    Arg.(
      value
      & opt string "res-node-spool"
      & info [ "spool" ] ~docv:"DIR"
          ~doc:"Durable request spool (per node).")
  in
  let verbose =
    Arg.(
      value & flag & info [ "verbose"; "v" ] ~doc:"Log node events to stderr.")
  in
  let run host port spool jobs verbose cache_dir no_cache =
    if port <= 0 || port > 65535 then
      raise (Die (exit_internal, Fmt.str "bad port %d" port));
    let cfg =
      {
        Res_serve.Server.default_config with
        Res_serve.Server.tcp = Some (host, port);
        spool_dir = spool;
        cache_dir = (if no_cache then None else cache_dir);
        jobs = (if jobs <= 0 then 2 else jobs);
        log = (if verbose then fun m -> Fmt.epr "res-node: %s@." m else ignore);
      }
    in
    Res_serve.Server.run cfg;
    exit_ok
  in
  Cmd.v
    (Cmd.info "node"
       ~doc:
         "Run a triage cluster node: the same resilient daemon as \
          $(b,res serve) (supervised workers, spool recovery, circuit \
          breakers, graceful drain) listening on TCP for a $(b,res \
          coordinate) coordinator.")
    Term.(
      const run $ host $ port $ spool $ jobs_arg $ verbose $ cache_dir_arg
      $ no_cache_arg)

let coordinate_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some dir) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory of coredump files to triage (every regular file).")
  in
  let nodes_arg =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "nodes" ] ~docv:"HOST:PORT,..."
          ~doc:"Comma-separated node daemon addresses to shard across.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Durable result journal.  Applied rows are journaled here \
             before they count, so a killed coordinator re-run on the same \
             journal resumes without re-running or double-applying units.")
  in
  let window =
    Arg.(
      value & opt int 2
      & info [ "window" ] ~docv:"N"
          ~doc:"In-flight units per node (match the node's $(b,--jobs)).")
  in
  let attempts =
    Arg.(
      value & opt int 8
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Exchange attempts per unit, across nodes, before it degrades \
             to a $(b,worker-lost) row.")
  in
  let unit_deadline =
    Arg.(
      value & opt float 60.0
      & info [ "unit-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall clock an exchange may stay open before the node is \
             charged a failure and the unit rescheduled.")
  in
  let connect_timeout =
    Arg.(
      value & opt float 5.0
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Deadline for establishing each node connection.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-dump wall-clock deadline, forwarded to the nodes; a dump \
             that exceeds it degrades to a partial row.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Per-dump search-node budget, forwarded to the nodes.")
  in
  let spot_check =
    Arg.(
      value & opt int 0
      & info [ "spot-check" ] ~docv:"K"
          ~doc:
            "Re-derive roughly 1/$(docv) of node-returned rows locally and \
             reject (and quarantine the node for) any that disagree — an \
             independent replay oracle against byzantine nodes.  0 \
             disables replay; the structural per-row identity check always \
             runs unless $(b,--no-verify-rows).")
  in
  let no_verify_rows =
    Arg.(
      value & flag
      & info [ "no-verify-rows" ]
          ~doc:
            "Trust node-returned rows blindly: skip the per-row identity \
             and schema checks (and any $(b,--spot-check) replay).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Log retries, reschedules, and node failures to stderr.")
  in
  let run prog_path dir nodes journal window attempts unit_deadline
      connect_timeout deadline fuel spot_check no_verify_rows stats verbose
      cache_dir no_cache =
    let module C = Res_cluster.Coordinator in
    let prog = or_die (load_prog prog_path) in
    let prog_text = Res_ir.Prog.to_string prog in
    let addrs =
      List.map (fun s -> or_die (Res_cluster.Transport.parse_addr s)) nodes
    in
    let files = Sys.readdir dir in
    Array.sort compare files;
    let units = ref [] and extra = ref [] in
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        match (Unix.stat path).Unix.st_kind with
        | Unix.S_REG -> (
            match Res_vm.Coredump_io.load_result path with
            | Ok { Res_vm.Coredump_io.dump; _ } ->
                units :=
                  {
                    C.ci_name = name;
                    ci_prog = prog_text;
                    ci_dump = Res_vm.Coredump_io.to_string dump;
                    ci_sig = Res_usecases.Triage.wer_key dump;
                  }
                  :: !units
            | Error e ->
                (* settled locally, exactly as batch triage rows them *)
                extra :=
                  {
                    Res_parallel.Batch.row_name = name;
                    row_outcome = "failed";
                    row_bucket = "dump-error";
                    row_cause = Res_vm.Coredump_io.dump_error_to_string e;
                    row_nodes = 0;
                    row_pruned = 0;
                  }
                  :: !extra)
        | _ -> ()
        | exception Unix.Unix_error _ -> ())
      files;
    if !units = [] && !extra = [] then
      raise (Die (exit_internal, Fmt.str "no coredump files under %s" dir));
    let config =
      {
        C.default_config with
        C.nodes = addrs;
        window = max 1 window;
        unit_attempts = max 1 attempts;
        unit_deadline;
        connect_timeout;
        deadline_ms = Option.map (fun s -> int_of_float (s *. 1000.)) deadline;
        fuel;
        verify_rows = not no_verify_rows;
        spot_check = max 0 spot_check;
        journal_dir = journal;
        cache_dir = (if no_cache then None else cache_dir);
        log =
          (if verbose then fun m -> Fmt.epr "res-coordinate: %s@." m
           else ignore);
      }
    in
    let t0 = Unix.gettimeofday () in
    let t = C.run ~config ~extra_rows:!extra !units in
    print_string t.C.tsv;
    if stats then begin
      Fmt.epr "%a@." C.pp_stats t.C.stats;
      List.iter
        (fun (addr, state, ok, failed) ->
          Fmt.epr "node %s %s completed=%d failures=%d@." addr state ok failed)
        t.C.node_health;
      Fmt.epr "wall %.3fs@." (Unix.gettimeofday () -. t0)
    end;
    if C.all_failed t then exit_internal else exit_ok
  in
  Cmd.v
    (Cmd.info "coordinate"
       ~doc:
         "Shard a batch-triage corpus across $(b,res node) daemons: route \
          each dump to a node by workload-signature hash, retry and \
          reschedule units off dead or stalled nodes with capped backoff, \
          journal applied rows for crash-resume, and print the same \
          deterministic TSV a single-node $(b,res triage) prints.")
    Term.(
      const run $ prog_arg $ dir_arg $ nodes_arg $ journal $ window $ attempts
      $ unit_deadline $ connect_timeout $ deadline $ fuel $ spot_check
      $ no_verify_rows $ stats_arg $ verbose $ cache_dir_arg $ no_cache_arg)

(* --- selftest --- *)

let selftest_cmd =
  let runs =
    Arg.(
      value & opt int 60
      & info [ "runs" ] ~docv:"N" ~doc:"How many perturbed analyses to run.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (fully deterministic).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every run.")
  in
  let skip_deadline =
    Arg.(
      value & flag
      & info [ "no-deadline-check" ]
          ~doc:"Skip the wall-clock deadline compliance measurement.")
  in
  let kill_resume =
    Arg.(
      value & flag
      & info [ "kill-resume" ]
          ~doc:
            "Run the kill-and-resume campaign: deterministically kill \
             analyses after k nodes (including mid-checkpoint-write), resume \
             from the checkpoint, and assert bit-identical reports.")
  in
  let prune_equivalence =
    Arg.(
      value & flag
      & info [ "prune-equivalence" ]
          ~doc:
            "Run the static-prune equivalence campaign: analyze every \
             workload with pruning on and off and assert byte-identical \
             reports.")
  in
  let reverse_equivalence =
    Arg.(
      value & flag
      & info [ "reverse-equivalence" ]
          ~doc:
            "Run the reverse-execution equivalence campaign: analyze every \
             workload with the concrete reverse-execution fast path on and \
             off and assert byte-identical reports.")
  in
  let debug_equivalence =
    Arg.(
      value & flag
      & info [ "debug-equivalence" ]
          ~doc:
            "Run the debug-equivalence campaign: drive a scripted \
             time-travel session over every workload at snapshot intervals \
             1, 7, 64 and with the index disabled, and assert the \
             transcripts are byte-identical.")
  in
  let worker_kill =
    Arg.(
      value & flag
      & info [ "worker-kill" ]
          ~doc:
            "Run the worker-kill campaign: batch-triage the corpus on forked \
             workers, SIGKILL one mid-unit at several deterministic points, \
             and assert the coordinator reschedules the unit and the final \
             TSV is identical to an undisturbed run's.")
  in
  let parallel_equivalence =
    Arg.(
      value
      & opt ~vopt:(Some 2) (some int) None
      & info [ "parallel-equivalence" ] ~docv:"JOBS"
          ~doc:
            "Run the parallel-equivalence campaign: analyze every workload \
             serially and with the sharded engine at $(docv) workers \
             (default 2) and assert byte-identical reports.")
  in
  let serve_soak =
    Arg.(
      value & flag
      & info [ "serve-soak" ]
          ~doc:
            "Run the triage-service soak campaign: flood a daemon at 2x \
             capacity, SIGKILL workers and the daemon itself, restart on the \
             same spool, trip and recover a circuit breaker, drain \
             gracefully — and assert zero lost accepted requests and \
             byte-identical completed report bodies.")
  in
  let cache_chaos =
    Arg.(
      value & flag
      & info [ "cache-chaos" ]
          ~doc:
            "Run the result-cache chaos campaign: triage the corpus cold \
             then warm and assert byte-identical TSVs with a full hit rate; \
             kill a cache write mid-rename and assert recovery; sweep \
             injected disk faults (ENOSPC, EIO, failed fsync, torn writes) \
             over every cache, spool, and checkpoint write and assert no \
             lost accepted work and no wrong verdicts; fill the cache with \
             garbage and assert it behaves exactly like a cold cache.")
  in
  let cluster_soak =
    Arg.(
      value & flag
      & info [ "cluster-soak" ]
          ~doc:
            "Run the multi-node cluster soak campaign: shard the corpus \
             across three TCP node daemons, SIGKILL the coordinator \
             mid-corpus and resume it from its journal, SIGKILL a node and \
             watch its units reschedule, stall a node past the unit \
             deadline — and assert the merged TSV stays byte-identical to \
             single-node triage with zero lost units.")
  in
  let byzantine =
    Arg.(
      value & flag
      & info [ "byzantine" ]
          ~doc:
            "Run the byzantine-node campaign: shard the corpus across three \
             TCP node daemons where one computes honestly but falsifies the \
             rows it returns (wrong unit name, then plausible fabricated \
             verdict fields), and assert every lie is rejected — by the \
             structural identity check and by the replay spot-check \
             respectively — the liar is quarantined, its units reschedule, \
             and the merged TSV stays byte-identical to single-node triage \
             with zero lost units.")
  in
  let run runs seed verbose skip_deadline kill_resume prune_equivalence
      reverse_equivalence debug_equivalence worker_kill parallel_equivalence
      serve_soak cluster_soak byzantine cache_chaos backend =
    let open Res_faultinject.Faultinject in
    (* Fork-backed campaigns (cluster/daemon soak, byzantine, worker
       kill, cache chaos) must precede any campaign that spawns domains:
       the runtime forbids fork after domains. *)
    if byzantine then begin
      let s =
        byzantine_campaign
          ~log:(if verbose then fun m -> Fmt.epr "byzantine: %s@." m else ignore)
          ()
      in
      Fmt.pr "%a@." pp_bz_summary s;
      List.iter (fun m -> Fmt.epr "BYZANTINE FAILURE: %s@." m) s.bz_failures;
      if s.bz_failures = [] then exit_ok else exit_internal
    end
    else if cache_chaos then begin
      let s =
        cache_chaos_campaign
          ~dir:(Filename.get_temp_dir_name ())
          ~log:(if verbose then fun m -> Fmt.epr "cache: %s@." m else ignore)
          ()
      in
      Fmt.pr "%a@." pp_cc_summary s;
      List.iter (fun m -> Fmt.epr "CACHE-CHAOS FAILURE: %s@." m) s.cc_failures;
      if s.cc_failures = [] then exit_ok else exit_internal
    end
    else if cluster_soak then begin
      let s =
        cluster_soak_campaign
          ~log:(if verbose then fun m -> Fmt.epr "cluster: %s@." m else ignore)
          ()
      in
      Fmt.pr "%a@." pp_ck_summary s;
      List.iter (fun m -> Fmt.epr "CLUSTER-SOAK FAILURE: %s@." m) s.ck_failures;
      if s.ck_failures = [] then exit_ok else exit_internal
    end
    else if serve_soak then begin
      let s =
        serve_soak_campaign
          ~log:(if verbose then fun m -> Fmt.epr "soak: %s@." m else ignore)
          ()
      in
      Fmt.pr "%a@." pp_sk_summary s;
      List.iter (fun m -> Fmt.epr "SERVE-SOAK FAILURE: %s@." m) s.sk_failures;
      if s.sk_failures = [] then exit_ok else exit_internal
    end
    else if worker_kill || parallel_equivalence <> None then begin
      let wk_ok =
        if not worker_kill then true
        else begin
          let s = worker_kill_campaign () in
          if verbose then
            List.iter (fun r -> Fmt.pr "%a@." pp_wk_run r) s.wk_runs;
          Fmt.pr "%a@." pp_wk_summary s;
          List.iter
            (fun r -> Fmt.epr "WORKER-KILL FAILURE: %a@." pp_wk_run r)
            s.wk_failures;
          s.wk_failures = []
        end
      in
      let pq_ok =
        match parallel_equivalence with
        | None -> true
        | Some jobs ->
            let s = parallel_equivalence_campaign ~jobs ?backend () in
            if verbose then
              List.iter (fun r -> Fmt.pr "%a@." pp_pq_run r) s.pq_runs;
            Fmt.pr "%a@." pp_pq_summary s;
            List.iter
              (fun r ->
                Fmt.epr "PARALLEL-EQUIVALENCE FAILURE: %a@." pp_pq_run r)
              s.pq_failures;
            s.pq_failures = []
      in
      if wk_ok && pq_ok then exit_ok else exit_internal
    end
    else if debug_equivalence then begin
      let s = debug_equivalence_campaign () in
      if verbose then List.iter (fun r -> Fmt.pr "%a@." pp_de_run r) s.de_runs;
      Fmt.pr "%a@." pp_de_summary s;
      List.iter
        (fun r -> Fmt.epr "DEBUG-EQUIVALENCE FAILURE: %a@." pp_de_run r)
        s.de_failures;
      if s.de_failures = [] then exit_ok else exit_internal
    end
    else if reverse_equivalence then begin
      let s = reverse_equivalence_campaign () in
      if verbose then List.iter (fun r -> Fmt.pr "%a@." pp_re_run r) s.re_runs;
      Fmt.pr "%a@." pp_re_summary s;
      List.iter
        (fun r -> Fmt.epr "REVERSE-EQUIVALENCE FAILURE: %a@." pp_re_run r)
        s.re_failures;
      if s.re_failures = [] then exit_ok else exit_internal
    end
    else if prune_equivalence then begin
      let s = prune_equivalence_campaign () in
      if verbose then List.iter (fun r -> Fmt.pr "%a@." pp_pe_run r) s.pe_runs;
      Fmt.pr "%a@." pp_pe_summary s;
      List.iter
        (fun r -> Fmt.epr "PRUNE-EQUIVALENCE FAILURE: %a@." pp_pe_run r)
        s.pe_failures;
      if s.pe_failures = [] then exit_ok else exit_internal
    end
    else if kill_resume then begin
      let s = kill_resume_campaign ~dir:(Filename.get_temp_dir_name ()) () in
      if verbose then List.iter (fun r -> Fmt.pr "%a@." pp_kr_run r) s.kr_runs;
      Fmt.pr "%a@." pp_kr_summary s;
      List.iter (fun r -> Fmt.epr "KILL-RESUME FAILURE: %a@." pp_kr_run r)
        s.kr_failures;
      if s.kr_failures = [] then exit_ok else exit_internal
    end
    else begin
      let s = campaign ~seed ~runs () in
      if verbose then List.iter (fun r -> Fmt.pr "%a@." pp_run r) s.runs;
      Fmt.pr "%a@." pp_summary s;
      List.iter (fun r -> Fmt.epr "ESCAPED: %a@." pp_run r) s.escaped;
      let deadline_ok =
        if skip_deadline then true
        else begin
          let d = deadline_compliance () in
          Fmt.pr "%a@." pp_deadline_check d;
          d.d_within
        end
      in
      if s.escaped = [] && deadline_ok then exit_ok else exit_internal
    end
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:
         "Fault-inject the analysis pipeline itself (corrupt dumps, starved \
          budgets, tight deadlines) and assert it always degrades to a typed \
          outcome.")
    Term.(
      const run $ runs $ seed $ verbose $ skip_deadline $ kill_resume
      $ prune_equivalence $ reverse_equivalence $ debug_equivalence
      $ worker_kill $ parallel_equivalence $ serve_soak $ cluster_soak
      $ byzantine $ cache_chaos $ backend_arg)

let main_cmd =
  let doc = "reverse execution synthesis for MiniIR coredumps" in
  let info = Cmd.info "res" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      validate_cmd;
      check_cmd;
      run_cmd;
      analyze_cmd;
      resume_cmd;
      replay_cmd;
      debug_cmd;
      hwdiag_cmd;
      exploit_cmd;
      workload_cmd;
      triage_batch_cmd;
      triage_cmd;
      fuzz_cmd;
      selftest_cmd;
      serve_cmd;
      client_cmd;
      node_cmd;
      coordinate_cmd;
    ]

(* Never let a raw OCaml exception (or backtrace) reach the user: every
   failure maps to a documented exit code and a one-line message. *)
let () =
  exit
    (try Cmd.eval' ~catch:false main_cmd with
    | Die (code, msg) ->
        Fmt.epr "res: error: %s@." msg;
        code
    | exn ->
        Fmt.epr "res: internal error: %s@." (Printexc.to_string exn);
        exit_internal)
