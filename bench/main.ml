(* Benchmark harness: regenerates every figure/table/claim of the paper
   (see DESIGN.md §4 and EXPERIMENTS.md).  The paper is a HotOS vision
   paper with one figure and a one-paragraph evaluation; each experiment
   below reifies one of its quantitative or qualitative claims.  Run with
   `dune exec bench/main.exe`; pass experiment ids (e.g. `e3 e5`) to run a
   subset, or `bechamel` for the microbenchmark suite. *)

let section id title = Fmt.pr "@.=== %s: %s ===@." (String.uppercase_ascii id) title

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let analyze ?(max_segments = 8) w =
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let config =
    {
      Res_core.Res.default_config with
      search =
        { Res_core.Search.default_config with max_segments; max_nodes = 30_000 };
    }
  in
  (dump, ctx, Res_core.Res.analysis (Res_core.Res.analyze ~config ctx dump))

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: predecessor disambiguation on the buffer overflow.   *)
(* Paper: "Since x = 1 in the coredump, and only Pred1 ever sets x to   *)
(* 1, then Pred1 must be part of the correct execution suffix; RES      *)
(* discards the execution suffix that traverses Pred2."                 *)
(* ------------------------------------------------------------------ *)
let e1 () =
  section "e1" "Figure 1 — buffer overflow, predecessor disambiguation";
  let w = Res_workloads.Fig1.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let snap0 = Res_core.Snapshot.of_coredump dump in
  let r1 =
    Res_core.Backstep.step_back ctx snap0 ~tid:0
      ~kind:
        (Res_core.Backstep.K_partial
           (Some dump.Res_vm.Coredump.crash.Res_vm.Crash.kind))
  in
  let snap1 = (List.hd r1.Res_core.Backstep.applied).Res_core.Backstep.ap_snapshot in
  Fmt.pr "coredump: x=%d, y=%d, crash=%a@."
    (Res_vm.Coredump.read dump (Res_mem.Layout.globals_base + 5))
    (Res_vm.Coredump.read dump (Res_mem.Layout.globals_base + 7))
    Res_vm.Crash.pp_kind dump.Res_vm.Coredump.crash.Res_vm.Crash.kind;
  List.iter
    (fun pred ->
      let r =
        Res_core.Backstep.step_back ctx snap1 ~tid:0
          ~kind:(Res_core.Backstep.K_full { block = pred })
      in
      Fmt.pr "candidate %-6s -> %s@." pred
        (if r.Res_core.Backstep.applied <> [] then "FEASIBLE (kept)"
         else "infeasible (discarded)"))
    [ "pred1"; "pred2" ];
  let result =
    Res_core.Search.search
      ~config:{ Res_core.Search.default_config with max_segments = 6 }
      ctx dump
  in
  List.iter
    (fun s ->
      if s.Res_core.Suffix.complete then
        Fmt.pr "complete suffix: %a@."
          Fmt.(list ~sep:(any " -> ") string)
          (List.map (fun seg -> seg.Res_core.Suffix.seg_block) s.Res_core.Suffix.segments))
    result.Res_core.Search.suffixes

(* ------------------------------------------------------------------ *)
(* E2 — §4: "We evaluated RES on three synthetic concurrency bugs...    *)
(* In all the cases RES was able to identify the correct root cause in  *)
(* less than 1 minute... it had no false positives."                    *)
(* ------------------------------------------------------------------ *)
let e2 () =
  section "e2" "§4 preliminary evaluation — three synthetic concurrency bugs";
  Fmt.pr "%-24s %-10s %-44s %-8s %s@." "bug" "time(s)" "root cause" "correct"
    "false positives";
  let balance_race_workload =
    {
      Res_workloads.Truth.w_name = "balance-race";
      w_prog = Res_workloads.Corpus.same_stack_race;
      w_bug = Res_workloads.Truth.B_data_race;
      w_crash_config =
        (fun () ->
          {
            (Res_vm.Exec.default_config ()) with
            sched = Res_vm.Sched.create (Res_vm.Sched.Fixed [ 0; 1; 2; 1; 2; 0; 0 ]);
          });
      w_description = "";
    }
  in
  List.iter
    (fun w ->
      let (_, _, analysis), dt = time (fun () -> analyze w) in
      let cause = Res_core.Res.best_cause analysis in
      let correct =
        match cause with
        | Some c -> Res_workloads.Truth.matches w.Res_workloads.Truth.w_bug c
        | None -> false
      in
      (* false positives: a reproduced, deterministic suffix classified
         with a *definite* cause that contradicts ground truth *)
      let false_pos =
        List.length
          (List.filter
             (fun (r : Res_core.Res.report) ->
               match r.Res_core.Res.root_cause with
               | Some c ->
                   Res_core.Res.definite_cause c
                   && not (Res_workloads.Truth.matches w.Res_workloads.Truth.w_bug c)
               | None -> false)
             analysis.Res_core.Res.reports)
      in
      Fmt.pr "%-24s %-10.3f %-44s %-8b %d@." w.Res_workloads.Truth.w_name dt
        (match cause with
        | Some c -> Res_core.Rootcause.signature c
        | None -> "(none)")
        correct false_pos)
    [
      Res_workloads.Counter_race.workload;
      balance_race_workload;
      Res_workloads.Deadlock.workload;
    ];
  Fmt.pr "paper: all 3 root causes correct, < 1 minute, no false positives@."

(* ------------------------------------------------------------------ *)
(* E3 — the title claim: suffix synthesis is independent of execution   *)
(* length; whole-execution (forward) synthesis is not.                  *)
(* ------------------------------------------------------------------ *)
let e3 () =
  section "e3" "cost vs execution length — RES vs forward synthesis";
  Fmt.pr "%-8s %-12s %-12s %-14s %-12s@." "n" "res-nodes" "res-time(s)"
    "fwd-segments" "fwd-time(s)";
  List.iter
    (fun n ->
      let w = Res_workloads.Long_exec.workload_n n in
      let dump = Res_workloads.Truth.coredump w in
      let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
      let res_result, res_t =
        time (fun () ->
            Res_core.Search.search
              ~config:
                {
                  Res_core.Search.default_config with
                  max_segments = 3;
                  max_suffixes = 1;
                }
              ctx dump)
      in
      let fwd, fwd_t =
        time (fun () ->
            Res_baselines.Forward_synth.synthesize
              ~config:
                {
                  Res_baselines.Forward_synth.default_config with
                  max_segments_total = 2_000_000;
                  max_depth = 2_000_000;
                }
              w.Res_workloads.Truth.w_prog dump)
      in
      Fmt.pr "%-8d %-12d %-12.4f %-14d %-12.4f%s@." n
        res_result.Res_core.Search.stats.Res_core.Search.nodes res_t
        fwd.Res_baselines.Forward_synth.stats
          .Res_baselines.Forward_synth.segments_executed
        fwd_t
        (if not fwd.Res_baselines.Forward_synth.found then "  (not found!)" else ""))
    [ 10; 100; 1000; 10000 ];
  Fmt.pr "expected shape: RES flat, forward linear in n@."

(* ------------------------------------------------------------------ *)
(* E4 — §3.1: "WER can incorrectly bucket up to 37%% of the bug         *)
(* reports"; root-cause bucketing fixes both fragmentation and merging. *)
(* ------------------------------------------------------------------ *)
let e4 () =
  section "e4" "triaging accuracy — stack-hash (WER) vs root cause (RES)";
  let reports = Res_workloads.Corpus.generate ~n_per_bug:4 () in
  let as_triage =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        ( { Res_usecases.Triage.t_id = r.r_id; t_prog = r.r_prog; t_dump = r.r_dump },
          r.r_bug ))
      reports
  in
  let rs = List.map fst as_triage in
  let truth r = List.assq r as_triage in
  let eval name key =
    let buckets = Res_usecases.Triage.bucket ~key rs in
    let q = Res_usecases.Triage.quality ~truth ~buckets rs in
    Fmt.pr "%-4s %a@." name Res_usecases.Triage.pp_quality q
  in
  eval "WER" (fun (r : Res_usecases.Triage.report) ->
      Res_usecases.Triage.wer_key r.t_dump);
  eval "RES" Res_usecases.Triage.res_key;
  Fmt.pr "paper: WER mis-buckets up to 37%% of reports@."

(* ------------------------------------------------------------------ *)
(* E5 — §3.2: detecting hardware errors as coredump/history             *)
(* inconsistencies, and identifying the corrupted location.             *)
(* ------------------------------------------------------------------ *)
let e5 () =
  section "e5" "hardware-error identification";
  Fmt.pr "%-28s %-12s %-40s %s@." "case" "truth" "verdict" "correct";
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun (c : Res_workloads.Hw_fault.case) ->
      let dump = Res_workloads.Hw_fault.coredump_of_case c in
      let v, _dt = time (fun () -> Res_usecases.Hwdiag.diagnose c.c_prog dump) in
      let is_hw = match v with Res_usecases.Hwdiag.Hardware _ -> true | _ -> false in
      incr total;
      if is_hw = c.c_hardware then incr correct;
      Fmt.pr "%-28s %-12s %-40s %b@." c.c_name
        (if c.c_hardware then "hardware" else "software")
        (Fmt.str "%a" Res_usecases.Hwdiag.pp_verdict v)
        (is_hw = c.c_hardware))
    Res_workloads.Hw_fault.cases;
  Fmt.pr "accuracy: %d/%d@." !correct !total

(* ------------------------------------------------------------------ *)
(* E6 — §2.4: "LBR provides a precise execution suffix that can         *)
(* substantially trim the search space in RES."                         *)
(* ------------------------------------------------------------------ *)
let e6 () =
  section "e6" "LBR breadcrumbs vs search-space size";
  Fmt.pr "%-10s %-12s %-12s %-10s@." "lbr-depth" "candidates" "nodes" "suffixes";
  List.iter
    (fun lbr_depth ->
      let w = Res_workloads.Long_exec.workload_n 64 in
      let config =
        { (w.Res_workloads.Truth.w_crash_config ()) with lbr_depth }
      in
      let dump =
        match Res_vm.Exec.run_to_coredump ~config w.Res_workloads.Truth.w_prog with
        | Some d, _ -> d
        | None, _ -> failwith "no crash"
      in
      let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
      let result =
        Res_core.Search.search
          ~config:
            {
              Res_core.Search.default_config with
              max_segments = 6;
              max_suffixes = 16;
              use_breadcrumbs = lbr_depth > 0;
            }
          ctx dump
      in
      Fmt.pr "%-10d %-12d %-12d %-10d@." lbr_depth
        result.Res_core.Search.stats.Res_core.Search.candidates
        result.Res_core.Search.stats.Res_core.Search.nodes
        (List.length result.Res_core.Search.suffixes))
    [ 0; 2; 4; 8; 16 ];
  Fmt.pr "expected shape: candidates shrink as LBR depth grows@."

(* ------------------------------------------------------------------ *)
(* E7 — §6: hard-to-invert constructs are crossed by re-executing them  *)
(* forward; without that, the backward walk stalls.                     *)
(* ------------------------------------------------------------------ *)
let e7 () =
  section "e7" "hash construct — forward re-execution on/off";
  let w = Res_workloads.Hash_construct.workload in
  let dump = Res_workloads.Truth.coredump w in
  Fmt.pr "%-22s %-14s %-12s %-10s@." "forward re-execution" "max-suffix-len"
    "complete?" "suffixes";
  List.iter
    (fun inline_calls ->
      let sym_config = { Res_symex.Symexec.default_config with inline_calls } in
      let ctx =
        Res_core.Backstep.make_ctx ~sym_config w.Res_workloads.Truth.w_prog
      in
      let result =
        Res_core.Search.search
          ~config:
            { Res_core.Search.default_config with max_segments = 8; max_suffixes = 4 }
          ctx dump
      in
      let max_len =
        List.fold_left
          (fun acc s -> max acc (Res_core.Suffix.length s))
          0 result.Res_core.Search.suffixes
      in
      let complete =
        List.exists (fun s -> s.Res_core.Suffix.complete) result.Res_core.Search.suffixes
      in
      Fmt.pr "%-22s %-14d %-12b %-10d@."
        (if inline_calls then "enabled" else "disabled")
        max_len complete
        (List.length result.Res_core.Search.suffixes))
    [ true; false ];
  Fmt.pr "expected shape: enabled crosses the hash, disabled stalls before it@."

(* ------------------------------------------------------------------ *)
(* E8 — §3.1/§5: taint-over-suffix vs !exploitable heuristics.          *)
(* ------------------------------------------------------------------ *)
let e8 () =
  section "e8" "exploitability — RES taint vs !exploitable heuristic";
  let cases =
    [
      (Res_workloads.Heap_overflow.workload_tainted, true);
      (Res_workloads.Heap_overflow.workload_internal, false);
      (Res_workloads.Fig1.workload, true);
      (Res_workloads.Uaf.workload_variant 0, false);
      (Res_workloads.Double_free.workload, false);
    ]
  in
  Fmt.pr "%-24s %-10s %-26s %-26s@." "workload" "truth" "res" "heuristic";
  let res_ok = ref 0 and heur_ok = ref 0 in
  List.iter
    (fun (w, expected) ->
      let dump = Res_workloads.Truth.coredump w in
      let e = Res_usecases.Exploit.classify_dump w.Res_workloads.Truth.w_prog dump in
      let h =
        Res_baselines.Exploitable_heuristic.rate w.Res_workloads.Truth.w_prog dump
      in
      let res_says = e.Res_usecases.Exploit.rating = Res_usecases.Exploit.Exploitable in
      let heur_says = h = Res_baselines.Exploitable_heuristic.H_exploitable in
      if res_says = expected then incr res_ok;
      if heur_says = expected then incr heur_ok;
      Fmt.pr "%-24s %-10b %-26s %-26s@." w.Res_workloads.Truth.w_name expected
        (Res_usecases.Exploit.rating_name e.Res_usecases.Exploit.rating)
        (Res_baselines.Exploitable_heuristic.rating_name h))
    cases;
  Fmt.pr "accuracy: RES %d/%d, heuristic %d/%d@." !res_ok (List.length cases)
    !heur_ok (List.length cases)

(* ------------------------------------------------------------------ *)
(* E9 — §2 requirement (5): "execution E deterministically leads to C". *)
(* ------------------------------------------------------------------ *)
let e9 () =
  section "e9" "replay determinism — 10 replays per synthesized suffix";
  Fmt.pr "%-24s %-10s %-14s@." "workload" "replays" "exact matches";
  List.iter
    (fun w ->
      let dump, ctx, analysis = analyze w in
      match analysis.Res_core.Res.reports with
      | [] -> Fmt.pr "%-24s (no reproduced suffix)@." w.Res_workloads.Truth.w_name
      | r :: _ ->
          let _, verdicts =
            Res_core.Replay.replay_deterministically ~times:10 ctx
              r.Res_core.Res.suffix dump
          in
          let exact =
            List.length
              (List.filter (fun v -> v.Res_core.Replay.reproduced) verdicts)
          in
          Fmt.pr "%-24s %-10d %-14d@." w.Res_workloads.Truth.w_name 10 exact)
    Res_workloads.Workloads.all

(* ------------------------------------------------------------------ *)
(* E10 — §2.2/§5: static backward slicing (PSE) is imprecise; RES's     *)
(* suffix pinpoints.                                                    *)
(* ------------------------------------------------------------------ *)
let e10 () =
  section "e10" "root-cause localization — PSE slice vs RES suffix";
  Fmt.pr "%-24s %-12s %-12s %-14s %-14s@." "workload" "slice-size"
    "slice-stores" "suffix-blocks" "suffix-instrs";
  List.iter
    (fun w ->
      let dump = Res_workloads.Truth.coredump w in
      let prog = w.Res_workloads.Truth.w_prog in
      let s = Res_baselines.Pse.slice prog (Res_vm.Coredump.crash_pc dump) in
      let ctx = Res_core.Backstep.make_ctx prog in
      let result =
        Res_core.Search.search
          ~config:
            { Res_core.Search.default_config with max_segments = 8; max_suffixes = 4 }
          ctx dump
      in
      let best =
        match
          List.find_opt (fun x -> x.Res_core.Suffix.complete) result.Res_core.Search.suffixes
        with
        | Some x -> Some x
        | None -> (
            match result.Res_core.Search.suffixes with
            | x :: _ -> Some x
            | [] -> None)
      in
      match best with
      | None -> Fmt.pr "%-24s (no suffix)@." w.Res_workloads.Truth.w_name
      | Some suffix ->
          Fmt.pr "%-24s %-12d %-12d %-14d %-14d@." w.Res_workloads.Truth.w_name
            (Res_baselines.Pse.size s)
            (List.length s.Res_baselines.Pse.store_sites)
            (Res_core.Suffix.length suffix)
            (Res_core.Suffix.length_steps suffix))
    [
      Res_workloads.Fig1.workload;
      Res_workloads.Div_zero.workload;
      Res_workloads.Uaf.workload_variant 0;
      Res_workloads.Semantic.workload;
    ];
  Fmt.pr "expected shape: slices over-approximate, suffixes stay small@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: per-operation costs of the RES pipeline.   *)
(* ------------------------------------------------------------------ *)
let bechamel () =
  section "bechamel" "microbenchmarks of the RES pipeline (monotonic clock)";
  let open Bechamel in
  let fig1_dump = Res_workloads.Truth.coredump Res_workloads.Fig1.workload in
  let fig1_ctx = Res_core.Backstep.make_ctx Res_workloads.Fig1.prog in
  let race_dump = Res_workloads.Truth.coredump Res_workloads.Counter_race.workload in
  let race_ctx = Res_core.Backstep.make_ctx Res_workloads.Counter_race.prog in
  let fig1_suffix =
    let r =
      Res_core.Search.search
        ~config:{ Res_core.Search.default_config with max_segments = 6 }
        fig1_ctx fig1_dump
    in
    List.find (fun s -> s.Res_core.Suffix.complete) r.Res_core.Search.suffixes
  in
  let tests =
    Test.make_grouped ~name:"res"
      [
        Test.make ~name:"backstep(fig1 crash segment)"
          (Staged.stage (fun () ->
               let snap = Res_core.Snapshot.of_coredump fig1_dump in
               ignore
                 (Res_core.Backstep.step_back fig1_ctx snap ~tid:0
                    ~kind:
                      (Res_core.Backstep.K_partial
                         (Some fig1_dump.Res_vm.Coredump.crash.Res_vm.Crash.kind)))));
        Test.make ~name:"search(fig1, depth 6)"
          (Staged.stage (fun () ->
               ignore
                 (Res_core.Search.search
                    ~config:{ Res_core.Search.default_config with max_segments = 6 }
                    fig1_ctx fig1_dump)));
        Test.make ~name:"analyze(counter race)"
          (Staged.stage (fun () ->
               ignore (Res_core.Res.analyze race_ctx race_dump)));
        Test.make ~name:"replay(fig1 suffix)"
          (Staged.stage (fun () ->
               ignore (Res_core.Replay.replay fig1_ctx fig1_suffix fig1_dump)));
        Test.make ~name:"vm-run(fig1 to crash)"
          (Staged.stage (fun () ->
               ignore
                 (Res_vm.Exec.run
                    ~config:(Res_workloads.Fig1.crash_config ())
                    Res_workloads.Fig1.prog)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure per_test ->
      Fmt.pr "measure: %s@." measure;
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
        |> List.sort compare
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Fmt.pr "  %-36s %12.1f ns/run@." name est
          | _ -> Fmt.pr "  %-36s (no estimate)@." name)
        rows)
    merged

(* ------------------------------------------------------------------ *)
(* E11 — §1: "RES interprets the entire coredump, not just a minidump,  *)
(* which makes RES strictly more powerful."  With only stacks and no    *)
(* memory contents, Fig. 1's disambiguation evaporates.                 *)
(* ------------------------------------------------------------------ *)
let e11 () =
  section "e11" "full coredump vs minidump (ablation)";
  let w = Res_workloads.Fig1.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  Fmt.pr "%-14s %-18s %-22s@." "input" "complete suffixes" "predecessors kept";
  List.iter
    (fun (name, snapshot0) ->
      let result =
        Res_core.Search.search
          ~config:
            { Res_core.Search.default_config with max_segments = 6; max_suffixes = 8 }
          ?snapshot0 ctx dump
      in
      let complete =
        List.filter (fun s -> s.Res_core.Suffix.complete) result.Res_core.Search.suffixes
      in
      let preds =
        List.concat_map
          (fun s ->
            List.filter_map
              (fun seg ->
                let b = seg.Res_core.Suffix.seg_block in
                if String.length b >= 4 && String.sub b 0 4 = "pred" then Some b
                else None)
              s.Res_core.Suffix.segments)
          complete
        |> List.sort_uniq compare
      in
      Fmt.pr "%-14s %-18d %a@." name (List.length complete)
        Fmt.(list ~sep:comma string)
        preds)
    [
      ("full coredump", None);
      ( "minidump",
        Some
          (Res_core.Snapshot.of_minidump dump ~layout:ctx.Res_core.Backstep.layout)
      );
    ];
  Fmt.pr
    "expected shape: the full dump keeps only pred1; the minidump cannot \
     refute pred2 and keeps both@."

(* ------------------------------------------------------------------ *)
(* A1 — design-choice ablation: the address-pool heuristic.  Havocked   *)
(* pointer registers (e.g. a halted worker's base pointer) have no      *)
(* constraints until the end-of-block check; resolving them against     *)
(* plausible mapped addresses (suffix-touched first) is what lets the   *)
(* backward walk cross such segments at all.                            *)
(* ------------------------------------------------------------------ *)
let a1 () =
  section "a1" "ablation — unconstrained-pointer resolution via address pool";
  let w = Res_workloads.Counter_race.workload in
  let dump = Res_workloads.Truth.coredump w in
  Fmt.pr "%-14s %-18s %-14s %-22s@." "addr pool" "suffixes found" "max length"
    "complete reconstruction";
  List.iter
    (fun use_addr_pool ->
      let ctx =
        Res_core.Backstep.make_ctx ~use_addr_pool w.Res_workloads.Truth.w_prog
      in
      let result =
        Res_core.Search.search
          ~config:
            { Res_core.Search.default_config with max_segments = 8; max_suffixes = 8 }
          ctx dump
      in
      let max_len =
        List.fold_left
          (fun acc s -> max acc (Res_core.Suffix.length s))
          0 result.Res_core.Search.suffixes
      in
      Fmt.pr "%-14s %-18d %-14d %-22b@."
        (if use_addr_pool then "enabled" else "disabled")
        (List.length result.Res_core.Search.suffixes)
        max_len
        (List.exists
           (fun s -> s.Res_core.Suffix.complete)
           result.Res_core.Search.suffixes))
    [ true; false ];
  Fmt.pr "expected shape: without the pool the walk cannot cross the halted \
          workers' segments@."

(* ------------------------------------------------------------------ *)
(* E13 — crash-safe checkpoint/resume.  The paper's setting is          *)
(* arbitrarily long executions, so the analyses themselves can run      *)
(* arbitrarily long: kill the analysis after k expanded nodes (also     *)
(* mid-checkpoint-write), resume from the persisted frontier, and       *)
(* compare reports and cost against a never-killed baseline.            *)
(* ------------------------------------------------------------------ *)
let e13 () =
  section "e13" "crash-safe checkpoint/resume — equivalence and overhead";
  let open Res_faultinject.Faultinject in
  let tmp = Filename.get_temp_dir_name () in
  Fmt.pr "%-22s %-18s %-6s %-6s %-7s %-10s %-10s@." "workload" "kill point"
    "legs" "equal" "clean" "base (s)" "chain (s)";
  List.iter
    (fun name ->
      let w = Res_workloads.Workloads.find name in
      let baseline, tb = time (fun () -> kr_baseline w) in
      List.iter
        (fun kill ->
          let r, tc =
            time (fun () -> kill_resume_one ~every:4 ~dir:tmp w kill ~baseline)
          in
          Fmt.pr "%-22s %-18s %-6d %-6b %-7b %-10.4f %-10.4f@." name
            (Fmt.str "%a" pp_kill_point kill)
            r.kr_legs r.kr_equivalent r.kr_clean_disk tb tc)
        [ Kill_after_nodes 5; Kill_mid_write 13 ])
    [ "fig1-overflow"; "counter-race"; "lock-order-deadlock";
      "use-after-free-a"; "kvstore-stats-race" ];
  (* Checkpoint footprint: persist a mid-flight state and measure it. *)
  let w = Res_workloads.Workloads.find "counter-race" in
  Res_solver.Expr.reset_counter_for_tests ();
  let dump = Res_workloads.Truth.coredump w in
  let prog = w.Res_workloads.Truth.w_prog in
  let ctx = Res_core.Backstep.make_ctx prog in
  let config = kr_config in
  let path = Filename.concat tmp "e13-size.ckpt" in
  let cp = Res_persist.Checkpoint.checkpointer ~every:4 ~path ~config ~prog ~dump () in
  ignore
    (Res_core.Res.analyze ~config
       ~budget:(Res_core.Budget.create ~fuel:9 ())
       ~checkpointer:cp ctx dump);
  let size =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Sys.remove path;
  Fmt.pr "checkpoint footprint (counter-race, mid-flight frontier): %d bytes@."
    size;
  Fmt.pr
    "expected shape: every chain reconverges to bit-identical reports, \
     including the mid-write kill (journal recovery), leaving no torn files@."

(* ------------------------------------------------------------------ *)
(* E14 — goal-directed static pruning.  The chain refuter discards      *)
(* candidate backward steps whose constraint system is statically       *)
(* unsatisfiable, before any symbolic execution or solving — and, being *)
(* admissible, must leave the reports byte-identical.                   *)
(* ------------------------------------------------------------------ *)
let e14 () =
  section "e14" "static chain-refutation pruning — work saved, reports equal";
  let open Res_faultinject.Faultinject in
  Fmt.pr "%-24s %-12s %-12s %-10s %-12s %-10s@." "workload" "nodes(off)"
    "nodes(on)" "pruned" "reduction" "reports";
  List.iter
    (fun name ->
      let w = Res_workloads.Workloads.find name in
      let r, _ = time (fun () -> prune_equivalence_one w) in
      let reduction =
        if r.pe_nodes_off = 0 then 0.
        else
          100.
          *. float_of_int (r.pe_nodes_off - r.pe_nodes_on)
          /. float_of_int r.pe_nodes_off
      in
      Fmt.pr "%-24s %-12d %-12d %-10d %-12s %-10s@." name r.pe_nodes_off
        r.pe_nodes_on r.pe_pruned
        (Fmt.str "%.1f%%" reduction)
        (if r.pe_equivalent then "identical" else "DIVERGED"))
    [
      "fig1-overflow";
      "long-exec-50";
      "kvstore-stats-race";
      "counter-race";
      "div-by-zero";
    ];
  Fmt.pr
    "expected shape: long-exec drops >=30%% of backward-step evaluations; \
     every report column reads 'identical'@."

(* ------------------------------------------------------------------ *)
(* E15 — the parallel engine (DESIGN.md §10): sharded backward search   *)
(* and batch coredump triage.  The property under test is twofold:      *)
(* byte-identical output at every -j, and wall-clock speedup bounded by *)
(* the host's core count.  Forked backend throughout — it is the        *)
(* runtime-selected default here, and fork runs must precede any        *)
(* domains run in a process.                                            *)
(* ------------------------------------------------------------------ *)
let e15 () =
  section "e15" "parallel engine — serial vs -j N wall clock, equivalence";
  let wall f =
    (* Sys.time is process CPU time and excludes forked workers; the
       claim here is about wall clock, so measure that. *)
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let backend = Res_parallel.Pool.Forked in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "host cores (Domain.recommended_domain_count): %d@." cores;
  (* 1. Sharded search on the long-execution workload. *)
  let w = Res_workloads.Workloads.find "long-exec-50" in
  let prog = w.Res_workloads.Truth.w_prog in
  let serial_run () =
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx prog in
    let outcome = Res_core.Res.analyze ctx dump in
    Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome)
  in
  let parallel_run jobs =
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx prog in
    let outcome, stats =
      Res_parallel.Engine.analyze ~jobs ~shard_depth:1 ~backend ~prog ctx dump
    in
    ( Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome),
      stats )
  in
  let base_body, t_serial = wall serial_run in
  Fmt.pr "@.sharded search, long-exec-50 (shard depth 1):@.";
  Fmt.pr "%-10s %-11s %-9s %-7s %s@." "engine" "wall (s)" "speedup" "units"
    "reports";
  Fmt.pr "%-10s %-11.4f %-9s %-7s %s@." "serial" t_serial "1.00x" "-"
    "baseline";
  List.iter
    (fun jobs ->
      let (body, stats), t = wall (fun () -> parallel_run jobs) in
      Fmt.pr "%-10s %-11.4f %-9s %-7d %s@."
        (Fmt.str "-j %d" jobs)
        t
        (Fmt.str "%.2fx" (t_serial /. t))
        stats.Res_parallel.Engine.e_units
        (if String.equal body base_body then "identical" else "DIVERGED"))
    [ 1; 2; 4 ];
  (* 2. Full-corpus batch triage: one dump per work unit.  The per-dump
     config is deliberately heavier than the triage default (full
     deepening, more replays) so the fixed pool cost — fork, pipes, one
     round trip per dump — amortizes and the measurement is about
     scaling, not setup. *)
  let triage_config =
    {
      Res_core.Res.default_config with
      stop_at_first_cause = false;
      determinism_runs = 10;
      search =
        { Res_core.Search.default_config with max_segments = 8; max_suffixes = 8 };
    }
  in
  let items =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          Res_parallel.Batch.it_name =
            Fmt.str "%s-%03d" r.Res_workloads.Corpus.r_bug r.r_id;
          it_prog = r.r_prog;
          it_dump = Ok r.r_dump;
        })
      (Res_workloads.Corpus.generate ~n_per_bug:24 ())
  in
  let triage jobs =
    Res_parallel.Batch.run ~config:triage_config ~jobs ~backend items
  in
  let base, t1 = wall (fun () -> triage 1) in
  Fmt.pr "@.batch triage, corpus of %d dumps:@." (List.length items);
  Fmt.pr "%-10s %-11s %-9s %-9s %s@." "engine" "wall (s)" "speedup" "clusters"
    "tsv";
  Fmt.pr "%-10s %-11.4f %-9s %-9d %s@." "-j 1" t1 "1.00x"
    (List.length base.Res_parallel.Batch.clusters)
    "baseline";
  List.iter
    (fun jobs ->
      let t, tj = wall (fun () -> triage jobs) in
      Fmt.pr "%-10s %-11.4f %-9s %-9d %s@."
        (Fmt.str "-j %d" jobs)
        tj
        (Fmt.str "%.2fx" (t1 /. tj))
        (List.length t.Res_parallel.Batch.clusters)
        (if String.equal t.Res_parallel.Batch.tsv base.Res_parallel.Batch.tsv
         then "identical"
         else "DIVERGED"))
    [ 2; 4 ];
  Fmt.pr
    "expected shape: every row reads 'identical'; speedup approaches \
     min(jobs, cores) on multi-core hosts (a single-core host pins it \
     near 1.0x and measures pool overhead instead)@."

(* ------------------------------------------------------------------ *)
(* E16: the triage service under abuse.  Runs the full soak campaign — *)
(* flood at 2x capacity, worker SIGKILLs, daemon SIGKILL + restart on  *)
(* the spool, breaker trip/recovery, graceful drain — and prints the   *)
(* service-contract numbers: zero lost accepted requests, zero body    *)
(* mismatches vs offline analyze, and client-observed latency.  Forks  *)
(* (daemon + workers), so it must run before any domains experiment.   *)
(* ------------------------------------------------------------------ *)
let e16 () =
  section "e16" "triage service — soak: overload, kills, restart, drain";
  let s = Res_faultinject.Faultinject.serve_soak_campaign () in
  Fmt.pr "%a@." Res_faultinject.Faultinject.pp_sk_summary s;
  (match s.Res_faultinject.Faultinject.sk_failures with
  | [] -> ()
  | fs -> List.iter (fun m -> Fmt.pr "FAILURE: %s@." m) fs);
  Fmt.pr
    "expected shape: shed > 0 (admission control sheds the overflow), lost \
     = 0 and mismatches = 0 (the service contract), recovered > 0 (the \
     SIGKILLed daemon's accepted requests survive on the spool), breaker \
     tripped and recovered, drain true@."

(* ------------------------------------------------------------------ *)
(* E17: the multi-node triage cluster.  Scaling: the same corpus       *)
(* sharded across 1, 2, and 3 TCP node daemons on localhost, wall      *)
(* clock vs single-process batch triage, TSV byte-identity throughout. *)
(* Then the full fault campaign: coordinator SIGKILL + journal resume, *)
(* node SIGKILL + reschedule, stall partition.  Forks (nodes, killers),*)
(* so it must run before any domains experiment.                       *)
(* ------------------------------------------------------------------ *)
let e17 () =
  section "e17" "triage cluster — multi-node scaling and fault recovery";
  let module Transport = Res_cluster.Transport in
  let module C = Res_cluster.Coordinator in
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "res-e17-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let reports = Res_workloads.Corpus.generate ~n_per_bug:6 () in
  let items =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          Res_parallel.Batch.it_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          it_prog = r.r_prog;
          it_dump = Ok r.r_dump;
        })
      reports
  in
  let units =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          C.ci_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          ci_prog = Res_ir.Prog.to_string r.r_prog;
          ci_dump = Res_vm.Coredump_io.to_string r.r_dump;
          ci_sig = Res_usecases.Triage.wer_key r.r_dump;
        })
      reports
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let next_node = ref 0 in
  let start_node () =
    incr next_node;
    let spool = Filename.concat base (Fmt.str "node%d-spool" !next_node) in
    let fd, port = Transport.listen_ephemeral () in
    let pid =
      match Unix.fork () with
      | 0 ->
          (try
             Res_serve.Server.run
               {
                 Res_serve.Server.default_config with
                 Res_serve.Server.prebound = Some fd;
                 spool_dir = spool;
                 jobs = 2;
                 capacity = 16;
               }
           with _ -> Unix._exit 1);
          Unix._exit 0
      | pid -> pid
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (pid, { Transport.host = "127.0.0.1"; port })
  in
  let wait_ready addr =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec go () =
      Transport.ping addr
      || (Unix.gettimeofday () < deadline
         && begin
              Unix.sleepf 0.02;
              go ()
            end)
    in
    ignore (go ())
  in
  let drain pid =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let baseline, t_base =
    wall (fun () ->
        Res_parallel.Batch.run ~jobs:2 ~backend:Res_parallel.Pool.Forked items)
  in
  Fmt.pr "corpus: %d dumps; single-process batch triage (-j 2): %.4fs@."
    (List.length items) t_base;
  Fmt.pr "%-10s %-11s %-9s %-9s %s@." "nodes" "wall (s)" "speedup" "retries"
    "tsv";
  List.iter
    (fun n_nodes ->
      let fleet = List.init n_nodes (fun _ -> start_node ()) in
      List.iter (fun (_, a) -> wait_ready a) fleet;
      let config =
        { C.default_config with C.nodes = List.map snd fleet; window = 2 }
      in
      let t, tw = wall (fun () -> C.run ~config units) in
      Fmt.pr "%-10d %-11.4f %-9s %-9d %s@." n_nodes tw
        (Fmt.str "%.2fx" (t_base /. tw))
        t.C.stats.C.cs_retries
        (if String.equal t.C.tsv baseline.Res_parallel.Batch.tsv then
           "identical"
         else "DIVERGED");
      List.iter (fun (pid, _) -> drain pid) fleet)
    [ 1; 2; 3 ];
  Fmt.pr "@.fault campaign (kills, resume, partition):@.";
  let s = Res_faultinject.Faultinject.cluster_soak_campaign () in
  Fmt.pr "%a@." Res_faultinject.Faultinject.pp_ck_summary s;
  (match s.Res_faultinject.Faultinject.ck_failures with
  | [] -> ()
  | fs -> List.iter (fun m -> Fmt.pr "FAILURE: %s@." m) fs);
  Fmt.pr
    "expected shape: every scaling row reads 'identical' (remote protocol \
     overhead bounds speedup on this small corpus); every faulted run \
     byte-identical with lost = 0@."

(* ------------------------------------------------------------------ *)
(* E18: the content-addressed result cache (DESIGN.md §13).  The       *)
(* paper's deployment is WER-scale: millions of dumps, a handful of    *)
(* root causes, so re-triage of already-seen evidence should cost a    *)
(* file read, not an analysis.  Measures cold vs warm wall clock and   *)
(* hit rate on a generated corpus, the cost of incremental re-triage   *)
(* after the corpus grows, and warm-run byte-identity after entries    *)
(* are damaged (quarantine + recompute, never wrong bytes).  Forked    *)
(* backend, so it must run before any domains experiment.              *)
(* ------------------------------------------------------------------ *)
let e18 () =
  section "e18" "result cache — cold vs warm triage, growth, damage";
  let module Cache = Res_cache.Cache in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let backend = Res_parallel.Pool.Forked in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "res-e18-cache-%d" (Unix.getpid ()))
  in
  let items n_per_bug =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          Res_parallel.Batch.it_name =
            Fmt.str "%s-%04d" r.Res_workloads.Corpus.r_bug r.r_id;
          it_prog = r.r_prog;
          it_dump = Ok r.r_dump;
        })
      (Res_workloads.Corpus.generate ~n_per_bug ())
  in
  let corpus = items 3333 in
  let n = List.length corpus in
  (* the same deliberately heavy per-dump config as E15's batch triage:
     the measurement is analysis avoided, not pool setup amortized *)
  let config =
    {
      Res_core.Res.default_config with
      stop_at_first_cause = false;
      determinism_runs = 10;
      search =
        { Res_core.Search.default_config with max_segments = 8; max_suffixes = 8 };
    }
  in
  let triage ?cache items =
    Res_parallel.Batch.run ~config ~jobs:2 ~backend ?cache items
  in
  Fmt.pr "corpus: %d dumps (WER-style: every dump drawn from %d root causes)@."
    n 5;
  Fmt.pr "%-14s %-11s %-9s %-11s %-8s %s@." "run" "wall (s)" "speedup"
    "hit rate" "entries" "tsv";
  let cold, t_cold = wall (fun () -> triage ~cache:(Cache.openr dir) corpus) in
  Fmt.pr "%-14s %-11.4f %-9s %-11s %-8d %s@." "cold" t_cold "1.00x"
    (Fmt.str "%d/%d" cold.Res_parallel.Batch.cache_hits n)
    (Cache.entry_count dir) "baseline";
  let warm, t_warm = wall (fun () -> triage ~cache:(Cache.openr dir) corpus) in
  Fmt.pr "%-14s %-11.4f %-9s %-11s %-8d %s@." "warm" t_warm
    (Fmt.str "%.2fx" (t_cold /. t_warm))
    (Fmt.str "%d/%d" warm.Res_parallel.Batch.cache_hits n)
    (Cache.entry_count dir)
    (if String.equal warm.Res_parallel.Batch.tsv cold.Res_parallel.Batch.tsv
     then "identical"
     else "DIVERGED");
  (* the corpus grows: re-triage everything, pay only for unseen content *)
  let grown = items 3366 in
  let n_grown = List.length grown in
  let incr_run, t_incr =
    wall (fun () -> triage ~cache:(Cache.openr dir) grown)
  in
  Fmt.pr "%-14s %-11.4f %-9s %-11s %-8d %s@."
    (Fmt.str "grown +%d" (n_grown - n))
    t_incr
    (Fmt.str "%.2fx" (t_cold /. t_incr))
    (Fmt.str "%d/%d" incr_run.Res_parallel.Batch.cache_hits n_grown)
    (Cache.entry_count dir) "-";
  (* damage a slice of the entries: the warm run must quarantine them,
     recompute, and still produce the identical TSV *)
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun e -> Filename.check_suffix e ".entry")
    |> List.sort compare
  in
  List.iteri
    (fun i e ->
      if i mod 3 = 0 then begin
        let oc = open_out_bin (Filename.concat dir e) in
        output_string oc "bit rot";
        close_out oc
      end)
    entries;
  let dcache = Cache.openr dir in
  let damaged, t_damaged = wall (fun () -> triage ~cache:dcache corpus) in
  Fmt.pr "%-14s %-11.4f %-9s %-11s %-8d %s@." "damaged" t_damaged
    (Fmt.str "%.2fx" (t_cold /. t_damaged))
    (Fmt.str "%d/%d" damaged.Res_parallel.Batch.cache_hits n)
    (Cache.entry_count dir)
    (if String.equal damaged.Res_parallel.Batch.tsv cold.Res_parallel.Batch.tsv
     then "identical"
     else "DIVERGED");
  Fmt.pr "damaged entries quarantined and recomputed: %d@."
    (Cache.stats dcache).Cache.quarantined;
  Fmt.pr
    "expected shape: warm hit rate %d/%d with speedup >= 20x; the grown \
     corpus pays only for unseen content; every row reads 'identical' — a \
     damaged cache changes wall clock, never bytes@."
    n n

(* ------------------------------------------------------------------ *)
(* E19: the concrete reverse-execution fast path (DESIGN.md §14).      *)
(* Statically invertible loop bodies are stepped backward concretely,  *)
(* skipping symbolic execution and the solver; the claim is arbitrary  *)
(* wall-clock/query savings on long executions at byte-identical       *)
(* reports.  Measures the deep backward chain of long-exec-50 with the *)
(* fast path on vs off, the per-workload equivalence campaign, and the *)
(* per-step cost of a concrete reverse vs a symbolic step.             *)
(* ------------------------------------------------------------------ *)
let e19 () =
  section "e19" "reverse execution — solver queries saved, reports equal";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let w = Res_workloads.Workloads.find "long-exec-50" in
  let prog = w.Res_workloads.Truth.w_prog in
  (* Deep chain: enough segments to walk the whole busy loop backward,
     the regime the paper's title claim is about. *)
  let config reverse_exec =
    {
      Res_core.Res.default_config with
      search =
        {
          Res_core.Search.default_config with
          max_segments = 55;
          max_nodes = 10_000;
          reverse_exec;
        };
    }
  in
  let leg reverse_exec =
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx prog in
    let q0 = Res_solver.Solver.queries () in
    let outcome, t =
      wall (fun () -> Res_core.Res.analyze ~config:(config reverse_exec) ctx dump)
    in
    let a = Res_core.Res.analysis outcome in
    ( Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome),
      t,
      Res_solver.Solver.queries () - q0,
      a )
  in
  let body_off, t_off, q_off, a_off = leg false in
  let body_on, t_on, q_on, a_on = leg true in
  Fmt.pr "deep backward chain, long-exec-50 (55 segments):@.";
  Fmt.pr "%-14s %-11s %-9s %-9s %-10s %s@." "fast path" "wall (s)" "queries"
    "nodes" "reversed" "reports";
  Fmt.pr "%-14s %-11.4f %-9d %-9d %-10d %s@." "off" t_off q_off
    a_off.Res_core.Res.nodes_expanded a_off.Res_core.Res.nodes_reversed
    "baseline";
  Fmt.pr "%-14s %-11.4f %-9d %-9d %-10d %s@." "on" t_on q_on
    a_on.Res_core.Res.nodes_expanded a_on.Res_core.Res.nodes_reversed
    (if String.equal body_on body_off then "identical" else "DIVERGED");
  Fmt.pr "query reduction: %.1fx; wall speedup: %.1fx@."
    (float_of_int q_off /. float_of_int (max 1 q_on))
    (t_off /. t_on);
  (* Per-workload equivalence campaign at the triage config. *)
  Fmt.pr "@.equivalence campaign (triage depth, all workloads):@.";
  let s = Res_faultinject.Faultinject.reverse_equivalence_campaign () in
  Fmt.pr "%-24s %-10s %-14s %-13s %s@." "workload" "reversed" "slice-skipped"
    "queries" "reports";
  List.iter
    (fun (r : Res_faultinject.Faultinject.re_run) ->
      Fmt.pr "%-24s %-10d %-14d %-13s %s@."
        r.Res_faultinject.Faultinject.re_workload
        r.Res_faultinject.Faultinject.re_reversed
        r.Res_faultinject.Faultinject.re_slice_skipped
        (Fmt.str "%d -> %d" r.Res_faultinject.Faultinject.re_queries_off
           r.Res_faultinject.Faultinject.re_queries_on)
        (if r.Res_faultinject.Faultinject.re_equivalent then "identical"
         else "DIVERGED"))
    s.Res_faultinject.Faultinject.re_runs;
  Fmt.pr "campaign: %d/%d identical@." s.Res_faultinject.Faultinject.re_ok
    s.Res_faultinject.Faultinject.re_total;
  (* Per-step microbench: the pure engine cost of reversing the loop
     body concretely, vs the in-situ per-node cost of the two legs. *)
  let block = Res_ir.Prog.block prog ~func:"main" ~label:"loop" in
  let summary = Res_static.Summary.of_prog prog in
  let plan =
    match Res_static.Invert.classify ~summary block with
    | Res_static.Invert.Invertible p -> p
    | Res_static.Invert.Not_invertible e ->
        Fmt.failwith "long-exec loop body not invertible: %s" e
  in
  let scratch = 4096 in
  let oracle =
    {
      Res_static.Revexec.post_reg =
        (fun r ->
          if r = 0 then Res_static.Revexec.P_val 4
          else Res_static.Revexec.P_free);
      read_post = (fun a -> if a = scratch then Some 8 else None);
      is_mapped = (fun a -> a = scratch);
      global_base =
        (fun g -> if String.equal g "scratch" then Some scratch else None);
      require_target = "loop";
      regs = [ 0; 1; 2; 3; 4; 5 ];
    }
  in
  let iters = 200_000 in
  let (), t_rev =
    wall (fun () ->
        for _ = 1 to iters do
          match Res_static.Revexec.run block plan oracle with
          | Res_static.Revexec.Reversed _ -> ()
          | Res_static.Revexec.Infeasible e | Res_static.Revexec.Unknown e ->
              Fmt.failwith "microbench reverse failed: %s" e
        done)
  in
  let per_node t (a : Res_core.Res.analysis) =
    1e6 *. t /. float_of_int (max 1 a.Res_core.Res.nodes_expanded)
  in
  Fmt.pr "@.per-step cost:@.";
  Fmt.pr "%-34s %.3f us@." "concrete reverse (engine only)"
    (1e6 *. t_rev /. float_of_int iters);
  Fmt.pr "%-34s %.3f us@." "fast-path-on per node (in situ)"
    (per_node t_on a_on);
  Fmt.pr "%-34s %.3f us@." "symbolic per node (in situ)"
    (per_node t_off a_off);
  Fmt.pr
    "@.expected shape: >=2x fewer solver queries on the deep chain (the \
     measured runs land near %d -> %d), every report column reads \
     'identical', and a concrete reverse step costs microseconds where a \
     symbolic step costs milliseconds@."
    q_off q_on

let e20 () =
  section "e20"
    "time-travel debugging — snapshot index vs replay-from-zero";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let w = Res_workloads.Workloads.find "long-exec-50" in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  (* Deep suffix: walk the whole busy loop backward so the timeline is as
     long as the search can make it — the regime reverse debugging is
     for. *)
  let result =
    Res_core.Search.search
      ~config:
        {
          Res_core.Search.default_config with
          max_segments = 55;
          max_nodes = 10_000;
        }
      ctx dump
  in
  let suffix =
    let reproducing =
      List.filter
        (fun s -> (Res_core.Replay.replay ctx s dump).Res_core.Replay.reproduced)
        result.Res_core.Search.suffixes
    in
    match
      List.sort
        (fun a b ->
          compare
            (List.length b.Res_core.Suffix.segments)
            (List.length a.Res_core.Suffix.segments))
        reproducing
    with
    | s :: _ -> s
    | [] -> Fmt.failwith "no reproducing suffix for long-exec-50"
  in
  let dbg interval =
    match Res_core.Debugger.start ~snapshot_every:interval ctx suffix dump with
    | Ok d -> d
    | Error e -> Fmt.failwith "debugger: %s" e
  in
  let interval = 16 in
  let d = dbg interval in
  let n = Res_core.Debugger.total_steps d in
  Fmt.pr "suffix timeline: %d instruction steps (%d segments)@." n
    (List.length suffix.Res_core.Suffix.segments);
  (* Query workload: a full reverse walk — state at N, N-1, ..., 0 — the
     access pattern of step-back.  Descending positions are the index's
     worst case (every query restores a snapshot) and the baseline's
     average case (replay from zero regardless). *)
  let reps_on = 20 and reps_off = 2 in
  let walk state_at reps =
    for _ = 1 to reps do
      for p = n downto 0 do
        ignore (state_at p)
      done
    done
  in
  let (), t_on = wall (fun () -> walk (Res_core.Debugger.state_at d) reps_on) in
  let (), t_off =
    wall (fun () -> walk (Res_core.Debugger.state_at_linear d) reps_off)
  in
  let per_query t reps = 1e6 *. t /. float_of_int (reps * (n + 1)) in
  let us_on = per_query t_on reps_on and us_off = per_query t_off reps_off in
  Fmt.pr "@.reverse walk (state_at %d..0), per-query latency:@." n;
  Fmt.pr "%-34s %.3f us@."
    (Fmt.str "snapshot index (interval %d)" interval)
    us_on;
  Fmt.pr "%-34s %.3f us@." "replay-from-zero baseline" us_off;
  Fmt.pr "%-34s %.1fx@." "speedup" (us_off /. us_on);
  (* Transition watchpoint: binary-searched probes vs a linear scan. *)
  let layout = ctx.Res_core.Backstep.layout in
  let counter =
    try Res_mem.Layout.global_base layout "scratch"
    with Not_found -> Res_mem.Layout.globals_base
  in
  let final = Res_mem.Memory.read dump.Res_vm.Coredump.mem counter in
  let eval st =
    if Res_mem.Memory.read st.Res_vm.Exec.mem counter = final then 1 else 0
  in
  let index = Res_debug.Snapindex.create ~interval ctx suffix in
  (match Res_debug.Snapindex.find_transition index eval with
  | Some tr ->
      Fmt.pr "@.transition watchpoint ([0x%x] reaches %d):@." counter final;
      Fmt.pr "%-34s %d probes@." "binary search" tr.Res_debug.Snapindex.tr_probes;
      Fmt.pr "%-34s %d state evaluations@." "linear scan" (n + 1);
      Fmt.pr "%-34s step %d@." "transition found at"
        tr.Res_debug.Snapindex.tr_pos
  | None -> Fmt.pr "@.transition watchpoint: endpoints agree (no flip)@.");
  Fmt.pr
    "@.expected shape: the snapshot index answers reverse-walk queries \
     >=10x faster than replay-from-zero on this timeline, and the \
     transition search probes O(log n) states where the scan evaluates \
     all %d@."
    (n + 1)

let e21 () =
  section "e21"
    "structured fuzzing — throughput and violations per decode surface";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let runs = 2_000 and seed = 1 in
  Fmt.pr "%-11s %8s %9s %9s %11s %11s@." "format" "cases" "accepted"
    "rejected" "violations" "execs/sec";
  let total_cases = ref 0 and total_violations = ref 0 in
  List.iter
    (fun name ->
      let r, t =
        wall (fun () -> Res_fuzz.Fuzz.run ~only:[ name ] ~seed ~runs ())
      in
      let f = List.hd r.Res_fuzz.Fuzz.r_formats in
      let open Res_fuzz.Fuzz in
      total_cases := !total_cases + f.fr_runs;
      total_violations := !total_violations + List.length f.fr_findings;
      Fmt.pr "%-11s %8d %9d %9d %11d %11.0f@." f.fr_name f.fr_runs
        f.fr_accepted f.fr_rejected
        (List.length f.fr_findings)
        (float_of_int f.fr_runs /. t))
    Res_fuzz.Fuzz.format_names;
  Fmt.pr "%-11s %8d %29d@." "total" !total_cases !total_violations;
  (* reproducibility: the same seed must replay the identical stream *)
  let digest seed =
    List.map
      (fun f -> f.Res_fuzz.Fuzz.fr_digest)
      (Res_fuzz.Fuzz.run ~seed ~runs:200 ()).Res_fuzz.Fuzz.r_formats
  in
  Fmt.pr "@.same-seed digests identical: %b@."
    (List.equal String.equal (digest 7) (digest 7));
  Fmt.pr
    "@.expected shape: zero violations on every surface — each codec \
     refuses damage with a typed error inside its deadline — and \
     same-seed reruns are byte-identical.@."

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
    ("e20", e20);
    ("e21", e21);
    ("a1", a1);
    ("bechamel", bechamel);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with [] | [ _ ] -> None | _ :: rest -> Some rest
  in
  List.iter
    (fun (id, f) ->
      match requested with
      | Some ids when not (List.mem id ids) -> ()
      | _ -> f ())
    experiments;
  Fmt.pr "@.all requested experiments done.@."
