(* Telling hardware errors from software bugs (paper §3.2).

     dune exec examples/hardware_errors.exe

   Machines with flaky DRAM or a marginal CPU produce coredumps that no
   execution of the (correct) program could have produced.  RES detects
   this: when no start-to-finish reconstruction exists, it retries under
   single-fault hypotheses and reports the corrupted location.  Dumps from
   genuinely buggy software must keep their software verdict. *)

let () =
  Fmt.pr "%-28s %-10s -> verdict@." "case" "truth";
  Fmt.pr "---------------------------------------------------------------@.";
  List.iter
    (fun (c : Res_workloads.Hw_fault.case) ->
      let dump = Res_workloads.Hw_fault.coredump_of_case c in
      let verdict = Res_usecases.Hwdiag.diagnose c.c_prog dump in
      Fmt.pr "%-28s %-10s -> %a@." c.c_name
        (if c.c_hardware then "hardware" else "software")
        Res_usecases.Hwdiag.pp_verdict verdict;
      (* for the software cases, show the reconstruction that clears them *)
      match verdict with
      | Res_usecases.Hwdiag.Software r ->
          Fmt.pr "    full reconstruction: %a@."
            Fmt.(list ~sep:(any " -> ") string)
            (List.map
               (fun seg -> seg.Res_core.Suffix.seg_block)
               r.Res_core.Res.suffix.Res_core.Suffix.segments)
      | _ -> ())
    Res_workloads.Hw_fault.cases;
  Fmt.pr
    "@.every hardware dump is flagged with the corrupted location; every \
     software dump is cleared by exhibiting a feasible execution \
     (paper §3.2: \"on all the possible paths to the coredump the program \
     writes the value 1 ... but the coredump contains the value 0\").@."
