(* Triaging a stream of bug reports by root cause (paper §3.1).

     dune exec examples/triage_reports.exe

   A synthetic "error reporting service" receives coredumps from many
   deployments.  Five distinct bugs produce fourteen reports; crash stacks
   vary within a bug (input-dependent accessors) and collide across bugs
   (two different defects fail the same assert).  Stack-hash bucketing
   (Windows Error Reporting style) fragments and merges; RES buckets by
   synthesized root cause. *)

let () =
  Fmt.pr "generating the bug-report corpus...@.";
  let reports = Res_workloads.Corpus.generate ~n_per_bug:4 () in
  Fmt.pr "received %d reports from the field@.@." (List.length reports);

  let as_triage =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        ( { Res_usecases.Triage.t_id = r.r_id; t_prog = r.r_prog; t_dump = r.r_dump },
          r.r_bug ))
      reports
  in
  let rs = List.map fst as_triage in
  let truth r = List.assq r as_triage in

  let show name key =
    let buckets = Res_usecases.Triage.bucket ~key rs in
    Fmt.pr "== %s bucketing ==@." name;
    List.iter
      (fun (k, l) ->
        Fmt.pr "  %-52s %d report(s): %a@." k (List.length l)
          Fmt.(list ~sep:comma string)
          (List.sort_uniq compare (List.map truth l)))
      buckets;
    let q = Res_usecases.Triage.quality ~truth ~buckets rs in
    Fmt.pr "  -> %a@.@." Res_usecases.Triage.pp_quality q
  in
  show "WER (crash-stack hash)" (fun (r : Res_usecases.Triage.report) ->
      Res_usecases.Triage.wer_key r.t_dump);
  show "RES (root-cause signature)" Res_usecases.Triage.res_key;

  Fmt.pr
    "the paper's §3.1 claim: naive stack bucketing both fragments one bug \
     into many buckets (the use-after-free) and merges distinct bugs into \
     one (the race and the sign bug share a stack); root-cause bucketing \
     does neither.@."
