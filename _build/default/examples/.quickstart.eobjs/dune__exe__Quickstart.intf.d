examples/quickstart.mli:
