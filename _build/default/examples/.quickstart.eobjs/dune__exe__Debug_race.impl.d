examples/debug_race.ml: Fmt List Res_core Res_ir Res_mem Res_vm Res_workloads
