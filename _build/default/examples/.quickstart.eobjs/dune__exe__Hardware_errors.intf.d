examples/hardware_errors.mli:
