examples/kvstore_outage.mli:
