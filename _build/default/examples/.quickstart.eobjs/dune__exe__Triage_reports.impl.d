examples/triage_reports.ml: Fmt List Res_usecases Res_workloads
