examples/debug_race.mli:
