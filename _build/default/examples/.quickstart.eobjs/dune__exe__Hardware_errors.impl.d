examples/hardware_errors.ml: Fmt List Res_core Res_usecases Res_workloads
