examples/triage_reports.mli:
