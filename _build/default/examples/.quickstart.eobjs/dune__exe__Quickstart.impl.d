examples/quickstart.ml: Fmt List Res_core Res_ir Res_usecases Res_vm
