(** Sparse word-addressed memory.

    Persistent (applicative), so snapshots — coredumps, symbolic snapshots,
    search states — are O(1) to take and cheap to diff.  Reads of unwritten
    words return 0 (zero-initialized globals and heap).  Address validity is
    {e not} checked here; the VM consults {!Layout} and {!Heap} first. *)

type t

(** The all-zero memory. *)
val empty : t

(** [read m a] is the word at [a] (0 if never written). *)
val read : t -> int -> int

(** [write m a v] sets the word at [a].  Writing 0 still records the cell,
    so diffs and coredump comparisons see explicitly-zeroed cells. *)
val write : t -> int -> int -> t

(** Cells ever written, ascending by address. *)
val bindings : t -> (int * int) list

(** Number of recorded cells. *)
val cardinal : t -> int

(** Fold over recorded cells. *)
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** [diff a b] lists [(addr, value_in_a, value_in_b)] wherever the two
    memories disagree (missing cells read as 0). *)
val diff : t -> t -> (int * int * int) list

(** Content equality under read semantics. *)
val equal : t -> t -> bool

(** [flip_bit m a bit] flips one bit of the word at [a] — the hardware
    memory-error injection primitive (paper §3.2).
    @raise Invalid_argument if [bit] is outside [0..61]. *)
val flip_bit : t -> int -> int -> t

val pp : Format.formatter -> t -> unit
