(** Address-space layout.

    The MiniVM address space is word-addressed and split into two mapped
    regions: globals (placed once, from the program's [global] declarations)
    and the heap (managed by {!Heap}).  Address 0 is never mapped, so null
    dereferences fault.  Frames hold registers only — MiniIR has no
    addressable stack slots; address-taken locals use the heap. *)

module SMap = Map.Make (String)

(** First address of the globals region. *)
let globals_base = 0x1000

(** First address of the heap region; everything at or above is heap. *)
let heap_base = 0x100_0000

type t = {
  bases : int SMap.t;  (** global name -> first word address *)
  names : (int * int * string) list;  (** (base, size, name), sorted *)
  globals_end : int;  (** one past the last global word *)
}

(** Place the program's globals sequentially from {!globals_base}, with a
    one-word unmapped guard between consecutive globals so that an
    off-by-one overflow faults rather than silently hitting a neighbour. *)
let of_prog (p : Res_ir.Prog.t) =
  let bases, names, next =
    List.fold_left
      (fun (bases, names, next) (g : Res_ir.Prog.global) ->
        ( SMap.add g.gname next bases,
          (next, g.gsize, g.gname) :: names,
          next + g.gsize + 1 ))
      (SMap.empty, [], globals_base)
      p.globals
  in
  { bases; names = List.rev names; globals_end = next }

(** Address of global [name].  @raise Not_found if undeclared. *)
let global_base t name =
  match SMap.find_opt name t.bases with
  | Some a -> a
  | None -> raise Not_found

(** [find_global t addr] is the global containing [addr], with its base and
    size, if [addr] falls inside one. *)
let find_global t addr =
  List.find_opt (fun (base, size, _) -> addr >= base && addr < base + size) t.names

(** Whether [addr] lies in the globals region (mapped or guard word). *)
let in_globals_region t addr = addr >= globals_base && addr < t.globals_end

(** Whether [addr] lies in the heap region. *)
let in_heap_region addr = addr >= heap_base

(** Human-readable description of an address for crash reports. *)
let describe t addr =
  if addr = 0 then "null"
  else
    match find_global t addr with
    | Some (base, _, name) ->
        if addr = base then name else Fmt.str "%s+%d" name (addr - base)
    | None ->
        if in_globals_region t addr then "globals guard word"
        else if in_heap_region addr then Fmt.str "heap:0x%x" addr
        else Fmt.str "unmapped:0x%x" addr
