(** Address-space layout.

    The MiniVM address space is word-addressed and split into two mapped
    regions: globals (placed once, from the program's [global] declarations)
    and the heap (managed by {!Heap}).  Address 0 is never mapped, so null
    dereferences fault.  Frames hold registers only — MiniIR has no
    addressable stack slots; address-taken locals use the heap. *)

type t = {
  bases : int Map.Make(String).t;  (** global name -> first word address *)
  names : (int * int * string) list;  (** (base, size, name), in layout order *)
  globals_end : int;  (** one past the last global word *)
}

(** First address of the globals region. *)
val globals_base : int

(** First address of the heap region; everything at or above is heap. *)
val heap_base : int

(** Place the program's globals sequentially from {!globals_base}, with a
    one-word unmapped guard between consecutive globals so that an
    off-by-one overflow faults rather than silently hitting a neighbour. *)
val of_prog : Res_ir.Prog.t -> t

(** Address of a global by name.  @raise Not_found if undeclared. *)
val global_base : t -> string -> int

(** [find_global t addr] is the [(base, size, name)] of the global
    containing [addr], if any. *)
val find_global : t -> int -> (int * int * string) option

(** Whether an address lies in the globals region (mapped or guard word). *)
val in_globals_region : t -> int -> bool

(** Whether an address lies in the heap region. *)
val in_heap_region : int -> bool

(** Human-readable description of an address for crash reports:
    ["name"], ["name+3"], ["heap:0x...."], ["null"], ... *)
val describe : t -> int -> string
