lib/mem/memory.ml: Fmt Int List Map
