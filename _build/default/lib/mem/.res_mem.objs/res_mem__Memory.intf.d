lib/mem/memory.mli: Format
