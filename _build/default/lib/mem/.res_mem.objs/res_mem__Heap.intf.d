lib/mem/heap.mli: Format Res_ir
