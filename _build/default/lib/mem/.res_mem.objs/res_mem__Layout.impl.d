lib/mem/layout.ml: Fmt List Map Res_ir String
