lib/mem/layout.mli: Map Res_ir String
