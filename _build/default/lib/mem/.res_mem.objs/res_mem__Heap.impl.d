lib/mem/heap.ml: Fmt Int Layout List Map Res_ir
