(** Heap allocator with full allocation metadata.

    A bump allocator with one-word guard gaps between allocations.  Freed
    blocks are never reused and their metadata is retained, so the VM and
    the root-cause detectors can distinguish out-of-bounds accesses,
    use-after-free, double free, and wild accesses precisely.  Persistent,
    like {!Memory}, so it snapshots into coredumps for free. *)

type block_state = Live | Freed

type block = {
  base : int;  (** first word address *)
  size : int;  (** words *)
  state : block_state;
  alloc_site : Res_ir.Pc.t option;  (** where it was allocated, if known *)
  free_site : Res_ir.Pc.t option;  (** where it was freed, for UAF reports *)
}

type t

(** The empty heap, bump pointer at {!Layout.heap_base}. *)
val empty : t

(** Current bump pointer: the base the next allocation will receive. *)
val next_addr : t -> int

(** [alloc t ~size ~site] returns the new heap and the base address.
    @raise Invalid_argument on a non-positive size (the VM turns a
    non-positive runtime size into a crash before calling this). *)
val alloc : t -> size:int -> site:Res_ir.Pc.t option -> t * int

(** Result of classifying an access. *)
type access_result =
  | Ok_access of block
  | Out_of_bounds of block * int  (** nearest block, word offset past it *)
  | Use_after_free of block
  | Unmapped

(** Classify a heap access at an address. *)
val check_access : t -> int -> access_result

(** The allocation block whose [base] is the greatest one <= the address. *)
val find_below : t -> int -> block option

type free_result =
  | Freed_ok of t * block
  | Double_free of block
  | Invalid_free  (** not the base of any allocation *)

(** [free t addr ~site] frees the block based exactly at [addr]. *)
val free : t -> int -> site:Res_ir.Pc.t -> free_result

(** Inverse surgery for backward analysis: remove the record of an
    allocation entirely (the block had not yet been allocated at the
    earlier point in time) and rewind the bump pointer to its base.
    @raise Invalid_argument if no block is based at the address. *)
val unalloc : t -> int -> t

(** Inverse surgery: mark a freed block live again (the free had not yet
    happened at the earlier point in time).
    @raise Invalid_argument if the block is absent or already live. *)
val unfree : t -> int -> t

(** Blocks in allocation order (= ascending base, since the allocator is a
    bump allocator). *)
val alloc_order : t -> block list

(** Rebuild a heap from raw block records (deserialization). *)
val of_blocks : next:int -> block list -> t

(** All blocks, ascending by base address. *)
val blocks : t -> block list

(** Live blocks only. *)
val live_blocks : t -> block list

(** Block exactly based at the address, if any. *)
val block_at : t -> int -> block option

(** Full structural equality, allocation/free sites included. *)
val equal : t -> t -> bool

(** Structural equality ignoring allocation/free sites — used to compare a
    symbolically re-executed heap (whose sites are synthetic) against a
    recorded one. *)
val similar : t -> t -> bool

val pp_block : Format.formatter -> block -> unit
val pp : Format.formatter -> t -> unit
