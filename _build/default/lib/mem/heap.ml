(** Heap allocator with full allocation metadata.

    A bump allocator with one-word guard gaps between allocations.  Freed
    blocks are never reused and their metadata is retained, so the VM and
    the root-cause detectors can distinguish out-of-bounds accesses,
    use-after-free, double free, and wild accesses precisely.  Persistent,
    like {!Memory}, so it snapshots into coredumps for free. *)

module IMap = Map.Make (Int)

type block_state = Live | Freed

type block = {
  base : int;
  size : int;  (** words *)
  state : block_state;
  alloc_site : Res_ir.Pc.t option;  (** where it was allocated, if known *)
  free_site : Res_ir.Pc.t option;  (** where it was freed, for UAF reports *)
}

type t = {
  next : int;  (** bump pointer *)
  blocks : block IMap.t;  (** base -> block *)
}

let empty = { next = Layout.heap_base; blocks = IMap.empty }

(** [alloc t ~size ~site] returns the new heap and the base address.
    @raise Invalid_argument on a non-positive size (the VM turns a
    non-positive runtime size into a crash before calling this). *)
let alloc t ~size ~site =
  if size <= 0 then invalid_arg "Heap.alloc: non-positive size";
  let base = t.next in
  let block = { base; size; state = Live; alloc_site = site; free_site = None } in
  ({ next = base + size + 1; blocks = IMap.add base block t.blocks }, base)

(** Result of classifying an access or a free. *)
type access_result =
  | Ok_access of block
  | Out_of_bounds of block * int  (** nearest block, word offset past it *)
  | Use_after_free of block
  | Unmapped

(** The allocation block whose [base] is the greatest one <= [addr]. *)
let find_below t addr =
  match IMap.find_last_opt (fun base -> base <= addr) t.blocks with
  | Some (_, b) -> Some b
  | None -> None

(** Classify a heap access at [addr]. *)
let check_access t addr =
  match find_below t addr with
  | None -> Unmapped
  | Some b ->
      if addr < b.base + b.size then
        match b.state with
        | Live -> Ok_access b
        | Freed -> Use_after_free b
      else if addr = b.base + b.size then
        (* Guard word right past the block: the classic off-by-one. *)
        Out_of_bounds (b, addr - (b.base + b.size - 1))
      else Unmapped

type free_result =
  | Freed_ok of t * block
  | Double_free of block
  | Invalid_free  (** not the base of any allocation *)

(** [free t addr ~site] frees the block based exactly at [addr]. *)
let free t addr ~site =
  match IMap.find_opt addr t.blocks with
  | None -> Invalid_free
  | Some b -> (
      match b.state with
      | Freed -> Double_free b
      | Live ->
          let b' = { b with state = Freed; free_site = Some site } in
          Freed_ok ({ t with blocks = IMap.add addr b' t.blocks }, b'))

(** Inverse surgery for backward analysis: remove the record of an
    allocation entirely (the block had not yet been allocated at the
    earlier point in time) and rewind the bump pointer to its base. *)
let unalloc t base =
  match IMap.find_opt base t.blocks with
  | None -> invalid_arg (Fmt.str "Heap.unalloc: no block at 0x%x" base)
  | Some _ -> { next = base; blocks = IMap.remove base t.blocks }

(** Inverse surgery: mark a freed block live again (the free had not yet
    happened at the earlier point in time). *)
let unfree t base =
  match IMap.find_opt base t.blocks with
  | Some ({ state = Freed; _ } as b) ->
      { t with blocks = IMap.add base { b with state = Live; free_site = None } t.blocks }
  | Some { state = Live; _ } ->
      invalid_arg (Fmt.str "Heap.unfree: block at 0x%x is live" base)
  | None -> invalid_arg (Fmt.str "Heap.unfree: no block at 0x%x" base)

(** Allocation order: since the allocator is a bump allocator, ascending
    base address is exactly allocation order. *)
let alloc_order t = IMap.bindings t.blocks |> List.map snd

(** Current bump pointer. *)
let next_addr t = t.next

(** Rebuild a heap from raw block records (deserialization). *)
let of_blocks ~next blocks =
  {
    next;
    blocks =
      List.fold_left (fun m (b : block) -> IMap.add b.base b m) IMap.empty blocks;
  }

(** All blocks, ascending by base address. *)
let blocks t = IMap.bindings t.blocks |> List.map snd

(** Live blocks only. *)
let live_blocks t = List.filter (fun b -> b.state = Live) (blocks t)

(** Block exactly based at [addr], if any. *)
let block_at t addr = IMap.find_opt addr t.blocks

let equal (a : t) (b : t) =
  a.next = b.next && IMap.equal (fun (x : block) y -> x = y) a.blocks b.blocks

(** Structural equality ignoring allocation/free sites — used to compare a
    symbolically re-executed heap (whose sites are synthetic) against a
    recorded one. *)
let similar (a : t) (b : t) =
  a.next = b.next
  && IMap.equal
       (fun (x : block) y ->
         x.base = y.base && x.size = y.size && x.state = y.state)
       a.blocks b.blocks

let pp_block ppf b =
  Fmt.pf ppf "0x%x..0x%x %s" b.base
    (b.base + b.size - 1)
    (match b.state with Live -> "live" | Freed -> "freed")

let pp ppf t =
  Fmt.pf ppf "@[<v>heap next=0x%x@,%a@]" t.next
    Fmt.(list ~sep:cut pp_block)
    (blocks t)
