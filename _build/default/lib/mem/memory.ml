(** Sparse word-addressed memory.

    Persistent (applicative) so that snapshots — coredumps, symbolic
    snapshots, search states — are O(1) to take and cheap to diff.  Reads
    of unwritten mapped words return 0, matching zero-initialized globals
    and heap.  Validity of an address is {e not} checked here; the VM
    consults {!Layout} and {!Heap} before touching memory. *)

module IMap = Map.Make (Int)

type t = int IMap.t

let empty : t = IMap.empty

(** [read m a] is the word at [a] (0 if never written). *)
let read m a = match IMap.find_opt a m with Some v -> v | None -> 0

(** [write m a v] sets the word at [a].  Writing 0 still records the cell,
    so that diffs and coredump comparisons see explicitly-zeroed cells. *)
let write m a v : t = IMap.add a v m

(** Cells ever written, ascending by address. *)
let bindings (m : t) = IMap.bindings m

let cardinal (m : t) = IMap.cardinal m

let fold f (m : t) acc = IMap.fold f m acc

(** [diff a b] is the list of [(addr, in_a, in_b)] where the memories
    disagree (treating missing cells as 0). *)
let diff (a : t) (b : t) =
  let out = ref [] in
  IMap.iter
    (fun addr va ->
      let vb = read b addr in
      if va <> vb then out := (addr, va, vb) :: !out)
    a;
  IMap.iter
    (fun addr vb -> if not (IMap.mem addr a) && vb <> 0 then out := (addr, 0, vb) :: !out)
    b;
  List.sort compare !out

let equal (a : t) (b : t) = diff a b = []

(** [flip_bit m a bit] flips one bit of the word at [a] — the hardware
    memory-error injection primitive (paper §3.2). *)
let flip_bit m a bit =
  if bit < 0 || bit > 61 then invalid_arg "Memory.flip_bit: bit out of range";
  write m a (read m a lxor (1 lsl bit))

let pp ppf m =
  let pp_cell ppf (a, v) = Fmt.pf ppf "[0x%x]=%d" a v in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_cell) (bindings m)
