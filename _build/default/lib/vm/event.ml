(** Instruction-level trace events.

    A recorded trace is {e never} available to RES on production failures —
    it exists for (a) replaying synthesized suffixes, where the replayer
    produces it for the root-cause detectors, and (b) ground truth in tests
    and benchmarks. *)

type action =
  | A_exec  (** an instruction with no memory/sync side effect *)
  | A_read of { addr : int; value : int }
  | A_write of { addr : int; value : int; old : int }
  | A_alloc of { base : int; size : int }
  | A_free of { base : int }
  | A_lock of { addr : int }  (** successful acquisition *)
  | A_unlock of { addr : int }
  | A_spawn of { new_tid : int }
  | A_join of { joined : int }
  | A_input of { kind : Res_ir.Instr.input_kind; value : int }
  | A_branch of { from_label : string; to_label : string }
  | A_call of { callee : string }
  | A_ret
  | A_halt

type t = {
  step : int;  (** global step number *)
  tid : int;
  pc : Res_ir.Pc.t;
  action : action;
}

let pp_action ppf = function
  | A_exec -> Fmt.string ppf "exec"
  | A_read { addr; value } -> Fmt.pf ppf "read [0x%x]=%d" addr value
  | A_write { addr; value; old } ->
      Fmt.pf ppf "write [0x%x]=%d (was %d)" addr value old
  | A_alloc { base; size } -> Fmt.pf ppf "alloc 0x%x+%d" base size
  | A_free { base } -> Fmt.pf ppf "free 0x%x" base
  | A_lock { addr } -> Fmt.pf ppf "lock 0x%x" addr
  | A_unlock { addr } -> Fmt.pf ppf "unlock 0x%x" addr
  | A_spawn { new_tid } -> Fmt.pf ppf "spawn t%d" new_tid
  | A_join { joined } -> Fmt.pf ppf "join t%d" joined
  | A_input { kind; value } ->
      Fmt.pf ppf "input %s=%d" (Res_ir.Instr.input_kind_name kind) value
  | A_branch { from_label; to_label } ->
      Fmt.pf ppf "branch %s->%s" from_label to_label
  | A_call { callee } -> Fmt.pf ppf "call %s" callee
  | A_ret -> Fmt.string ppf "ret"
  | A_halt -> Fmt.string ppf "halt"

let pp ppf e =
  Fmt.pf ppf "#%d t%d %a: %a" e.step e.tid Res_ir.Pc.pp e.pc pp_action e.action

(** Memory address touched by the event, if any. *)
let touched_addr e =
  match e.action with
  | A_read { addr; _ } | A_write { addr; _ } -> Some addr
  | A_lock { addr } | A_unlock { addr } -> Some addr
  | _ -> None

let is_write e = match e.action with A_write _ -> true | _ -> false
let is_read e = match e.action with A_read _ -> true | _ -> false
