(** Textual (de)serialization of coredumps.

    Production systems ship coredumps as files; this module gives MiniVM
    dumps a stable, human-readable on-disk format so the CLI can separate
    "run and capture" from "analyze".  The format is line-oriented; string
    payloads (assert/abort messages, log tags) are quoted with OCaml
    escapes.  [of_string (to_string d)] round-trips exactly
    (property-tested). *)

exception Bad_format of string

(** Serialize a coredump to its textual format. *)
val to_string : Coredump.t -> string

(** Parse a coredump from its textual format.
    @raise Bad_format on malformed input (a lexical error inside a record
    surfaces as {!Res_ir.Parser.Parse_error}). *)
val of_string : string -> Coredump.t

(** Write a coredump to a file. *)
val save : string -> Coredump.t -> unit

(** Load a coredump from a file.
    @raise Bad_format or [Sys_error] on failure. *)
val load : string -> Coredump.t
