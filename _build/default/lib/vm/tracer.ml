(** Post-crash breadcrumbs that are "cheap to collect after the crash"
    (paper §2.4): a software Last Branch Record ring buffer and the
    program's own error log.  Both ship inside the coredump and are the
    {e only} runtime information RES may consume besides the dump itself. *)

(** One retired branch: thread, source block, destination block. *)
type branch = {
  br_tid : int;
  br_func : string;
  br_from : Res_ir.Instr.label;
  br_to : Res_ir.Instr.label;
}

(** One [log] instruction occurrence. *)
type log_entry = { log_tid : int; log_tag : string; log_value : int }

type t = {
  lbr_depth : int;  (** ring capacity; 0 disables the LBR *)
  lbr : branch list;  (** most recent first, length <= lbr_depth *)
  logs : log_entry list;  (** most recent first, unbounded *)
}

(** [create ~lbr_depth] — Intel LBR keeps 16 entries; depth is configurable
    for the E6 search-space experiment. *)
let create ~lbr_depth = { lbr_depth; lbr = []; logs = [] }

let record_branch t ~tid ~func ~from_label ~to_label =
  if t.lbr_depth = 0 then t
  else
    let entry = { br_tid = tid; br_func = func; br_from = from_label; br_to = to_label } in
    let lbr =
      if List.length t.lbr >= t.lbr_depth then
        entry :: List.filteri (fun i _ -> i < t.lbr_depth - 1) t.lbr
      else entry :: t.lbr
    in
    { t with lbr }

let record_log t ~tid ~tag ~value =
  { t with logs = { log_tid = tid; log_tag = tag; log_value = value } :: t.logs }

(** Branches, most recent first. *)
let branches t = t.lbr

(** Log entries, most recent first. *)
let logs t = t.logs

let pp_branch ppf b =
  Fmt.pf ppf "t%d %s:%s->%s" b.br_tid b.br_func b.br_from b.br_to

let pp ppf t =
  Fmt.pf ppf "@[<v>LBR(%d):@,%a@,logs:@,%a@]" t.lbr_depth
    Fmt.(list ~sep:cut pp_branch)
    t.lbr
    Fmt.(
      list ~sep:cut (fun ppf (e : log_entry) ->
          Fmt.pf ppf "t%d %s=%d" e.log_tid e.log_tag e.log_value))
    t.logs
