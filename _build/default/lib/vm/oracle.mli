(** Input oracles: where [input] instructions get their values.

    Production runs use a seeded pseudo-random oracle (deterministic per
    seed, so tests can regenerate the same crash); replay runs use a
    scripted oracle carrying the exact values the RES solver chose. *)

type t = {
  next : Res_ir.Instr.input_kind -> int;
      (** called once per executed [input], in program order *)
}

(** Deterministic pseudo-random oracle (a splitmix-style generator, stable
    across OCaml versions).  Values are in [0, 0xffff]. *)
val seeded : seed:int -> t

(** Oracle that replays a fixed list of values and then yields [default]
    (0 unless overridden). *)
val scripted : ?default:int -> int list -> t

(** Oracle returning a constant. *)
val constant : int -> t
