lib/vm/sched.ml: List
