lib/vm/tracer.mli: Format Res_ir
