lib/vm/event.ml: Fmt Res_ir
