lib/vm/exec.ml: Coredump Crash Event Fault Fmt Frame Heap Int Layout List Map Option Oracle Res_ir Res_mem Sched Thread Tracer
