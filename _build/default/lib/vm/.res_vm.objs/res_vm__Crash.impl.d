lib/vm/crash.ml: Fmt Res_ir
