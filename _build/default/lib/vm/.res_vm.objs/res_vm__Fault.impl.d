lib/vm/fault.ml: List Res_mem
