lib/vm/coredump_io.ml: Buffer Coredump Crash Fmt Frame Int List Map Res_ir Res_mem Thread Tracer
