lib/vm/oracle.mli: Res_ir
