lib/vm/oracle.ml: Res_ir
