lib/vm/frame.ml: Fmt Int List Map Res_ir String
