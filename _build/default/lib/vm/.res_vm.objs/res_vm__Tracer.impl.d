lib/vm/tracer.ml: Fmt List Res_ir
