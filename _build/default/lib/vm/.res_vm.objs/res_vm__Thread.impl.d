lib/vm/thread.ml: Fmt Frame List Res_ir
