lib/vm/coredump.ml: Crash Fmt Frame Int List Map Res_ir Res_mem Thread Tracer
