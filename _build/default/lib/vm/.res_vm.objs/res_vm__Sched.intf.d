lib/vm/sched.mli:
