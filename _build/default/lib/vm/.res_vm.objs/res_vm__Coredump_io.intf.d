lib/vm/coredump_io.mli: Coredump
