lib/vm/fault.mli: Res_mem
