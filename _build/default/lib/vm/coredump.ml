(** Coredumps: the snapshot of a failed program's state.

    This is the sole input RES receives from the failed execution — memory,
    heap metadata, every thread's stack and registers, the crash record,
    and the cheap post-crash breadcrumbs (LBR ring + error log).  It is "a
    free by-product of a failed execution" (paper §2.1). *)

module IMap = Map.Make (Int)

type t = {
  crash : Crash.t;
  mem : Res_mem.Memory.t;
  heap : Res_mem.Heap.t;
  threads : Thread.t IMap.t;
  tracer : Tracer.t;  (** breadcrumbs only; never a full trace *)
  steps : int;  (** total steps executed — used by benchmarks, not by RES *)
}

let thread t tid =
  match IMap.find_opt tid t.threads with
  | Some th -> th
  | None -> invalid_arg (Fmt.str "Coredump.thread: no thread %d" tid)

let threads t = IMap.bindings t.threads |> List.map snd

(** The thread that crashed. *)
let crashing_thread t = thread t t.crash.tid

(** Program counter at the crash. *)
let crash_pc t = t.crash.pc

(** Call-stack summary of the crashing thread: innermost first, as
    [(func, block, idx)] — what a naive (WER-style) triager hashes. *)
let crash_stack t =
  List.map
    (fun (fr : Frame.t) -> (fr.func, fr.block, fr.idx))
    (crashing_thread t).frames

(** [read t addr] is the memory word at [addr] in the dump. *)
let read t addr = Res_mem.Memory.read t.mem addr

(** Structural equality of the failure-relevant state: crash record, memory
    and heap contents, and all thread stacks.  Breadcrumbs and the step
    count are excluded — two executions that fail identically may differ in
    length (that is the whole point of suffix synthesis). *)
let same_failure_state a b =
  a.crash.kind = b.crash.kind
  && Res_ir.Pc.equal a.crash.pc b.crash.pc
  && Res_mem.Memory.equal a.mem b.mem
  && Res_mem.Heap.equal a.heap b.heap
  && IMap.equal Thread.equal a.threads b.threads

let pp ppf t =
  Fmt.pf ppf "@[<v>=== coredump ===@,crash: %a@,steps: %d@,%a@,%a@,%a@]"
    Crash.pp t.crash t.steps
    Fmt.(list ~sep:cut Thread.pp)
    (threads t) Res_mem.Heap.pp t.heap Tracer.pp t.tracer

let to_string t = Fmt.str "%a@." pp t
