(** Input oracles: where [input] instructions get their values.

    Production runs use a seeded pseudo-random oracle (deterministic per
    seed, so tests can regenerate the same crash); replay runs use a
    scripted oracle carrying the exact values the RES solver chose. *)

type t = {
  next : Res_ir.Instr.input_kind -> int;
      (** called once per executed [input], in program order *)
}

(** Deterministic pseudo-random oracle.  A thin splitmix-style generator —
    not [Random] — so results are stable across OCaml versions. *)
let seeded ~seed =
  let state = ref (seed lxor 0x1e3779b97f4a7c15) in
  let next _kind =
    let z = !state + 0x1e3779b97f4a7c15 in
    state := z;
    let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
    let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
    (z lxor (z lsr 31)) land 0xffff
  in
  { next }

(** Oracle that replays a fixed list of values and then yields [default]. *)
let scripted ?(default = 0) values =
  let remaining = ref values in
  let next _kind =
    match !remaining with
    | [] -> default
    | v :: rest ->
        remaining := rest;
        v
  in
  { next }

(** Oracle returning a constant. *)
let constant v = { next = (fun _ -> v) }
