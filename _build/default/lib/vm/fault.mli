(** Hardware fault injection (paper §3.2).

    Faults are scheduled against the global step counter, so a given
    program + seed + fault plan is fully deterministic.  Three families
    mirror the paper's examples: DRAM bit flips, CPU miscomputation of an
    ALU result, and DMA writes from a faulty device. *)

type t = {
  bit_flips : (int * int * int) list;
      (** (step, addr, bit): flip one memory bit just before this step *)
  alu_errors : (int * int) list;
      (** (step, delta): the binop executed at this step yields result+delta *)
  dma_writes : (int * int * int) list;
      (** (step, addr, value): overwrite a word just before this step *)
}

(** No faults. *)
val none : t

val bit_flip : step:int -> addr:int -> bit:int -> t
val alu_error : step:int -> delta:int -> t
val dma_write : step:int -> addr:int -> value:int -> t
val is_none : t -> bool

(** Apply the memory mutations (bit flips, DMA writes) due at [step]. *)
val memory_mutations_at : t -> step:int -> Res_mem.Memory.t -> Res_mem.Memory.t

(** ALU corruption for the binop executed at [step] (0 if none). *)
val alu_delta_at : t -> step:int -> int
