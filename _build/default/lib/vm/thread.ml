(** Threads: a call stack plus a run status. *)

type status =
  | Runnable
  | Blocked_on_lock of int  (** waiting for the mutex at this address *)
  | Blocked_on_join of int  (** waiting for this thread to halt *)
  | Halted

type t = {
  tid : int;
  frames : Frame.t list;  (** top (innermost) frame first; empty iff halted *)
  status : status;
}

let v ~tid ~frames ~status = { tid; frames; status }

(** Spawn-time constructor: single frame at the entry of [f]. *)
let start ~tid (f : Res_ir.Func.t) ~args =
  { tid; frames = [ Frame.enter f ~args ~ret_reg:None ]; status = Runnable }

(** Innermost frame.  @raise Invalid_argument on a halted (frameless) thread. *)
let top t =
  match t.frames with
  | f :: _ -> f
  | [] -> invalid_arg (Fmt.str "Thread.top: thread %d has no frames" t.tid)

let top_opt t = match t.frames with f :: _ -> Some f | [] -> None

let with_top t fr =
  match t.frames with
  | _ :: rest -> { t with frames = fr :: rest }
  | [] -> invalid_arg "Thread.with_top: no frames"

let push_frame t fr = { t with frames = fr :: t.frames }

let pop_frame t =
  match t.frames with
  | _ :: rest -> { t with frames = rest }
  | [] -> invalid_arg "Thread.pop_frame: no frames"

let is_runnable t = t.status = Runnable
let is_halted t = t.status = Halted
let is_blocked t =
  match t.status with
  | Blocked_on_lock _ | Blocked_on_join _ -> true
  | Runnable | Halted -> false

(** Program counter of the innermost frame. *)
let pc t = Frame.pc (top t)

(** Whether the thread sits at a scheduling boundary: the start of a basic
    block of its {e root} frame.  A block together with every call it makes
    is one atomic scheduling unit (DESIGN.md §1) — callee-entry positions
    are not boundaries, so the scheduler can never preempt inside a call. *)
let at_block_boundary t =
  match t.frames with
  | [] -> true
  | [ fr ] -> fr.Frame.idx = 0
  | _ :: _ :: _ -> false

let pp_status ppf = function
  | Runnable -> Fmt.string ppf "runnable"
  | Blocked_on_lock a -> Fmt.pf ppf "blocked on lock 0x%x" a
  | Blocked_on_join tid -> Fmt.pf ppf "blocked on join %d" tid
  | Halted -> Fmt.string ppf "halted"

let pp ppf t =
  Fmt.pf ppf "@[<v>thread %d (%a)@,%a@]" t.tid pp_status t.status
    Fmt.(list ~sep:cut Frame.pp)
    t.frames

let equal (a : t) (b : t) =
  a.tid = b.tid && a.status = b.status
  && List.length a.frames = List.length b.frames
  && List.for_all2 Frame.equal a.frames b.frames
