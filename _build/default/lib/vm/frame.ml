(** Activation frames.

    A frame is a position in a function plus its register file.  Registers
    are zero-initialized; parameters are bound into registers [0..n-1] at
    call time.  [ret_reg] names the register {e in the caller's frame} that
    receives this activation's return value. *)

module IMap = Map.Make (Int)

type t = {
  func : string;
  block : Res_ir.Instr.label;
  idx : int;  (** next instruction index; [= Block.length] means terminator *)
  regs : int IMap.t;
  ret_reg : Res_ir.Instr.reg option;
}

(** Fresh frame at the entry of [f] with [args] bound to parameters. *)
let enter (f : Res_ir.Func.t) ~args ~ret_reg =
  if List.length args <> List.length f.params then
    invalid_arg
      (Fmt.str "Frame.enter: %s expects %d args, given %d" f.name
         (List.length f.params) (List.length args));
  let regs =
    List.fold_left2
      (fun m p a -> IMap.add p a m)
      IMap.empty f.params args
  in
  { func = f.name; block = f.entry; idx = 0; regs; ret_reg }

(** [read_reg fr r] is the value of [r] (0 if never written). *)
let read_reg fr r = match IMap.find_opt r fr.regs with Some v -> v | None -> 0

let write_reg fr r v = { fr with regs = IMap.add r v fr.regs }

let pc fr = Res_ir.Pc.v ~func:fr.func ~block:fr.block ~idx:fr.idx

let with_pc fr (pc : Res_ir.Pc.t) =
  { fr with func = pc.func; block = pc.block; idx = pc.idx }

(** Jump to the start of [label] in the same function. *)
let goto fr label = { fr with block = label; idx = 0 }

let advance fr = { fr with idx = fr.idx + 1 }

(** Register bindings, ascending by register index. *)
let reg_bindings fr = IMap.bindings fr.regs

let pp ppf fr =
  let pp_binding ppf (r, v) = Fmt.pf ppf "r%d=%d" r v in
  Fmt.pf ppf "%a {%a}" Res_ir.Pc.pp (pc fr)
    Fmt.(list ~sep:sp pp_binding)
    (reg_bindings fr)

(** Register files are equal under read semantics: an absent register reads
    as 0, so [{r0=1}] and [{r0=1, r3=0}] are the same register file. *)
let regs_equal a b =
  IMap.for_all (fun r v -> v = read_reg b r) a.regs
  && IMap.for_all (fun r v -> v = read_reg a r) b.regs

let equal (a : t) (b : t) =
  String.equal a.func b.func
  && String.equal a.block b.block
  && a.idx = b.idx && a.ret_reg = b.ret_reg && regs_equal a b
