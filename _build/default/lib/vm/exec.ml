(** The MiniVM interpreter.

    Executes MiniIR programs with multiple threads under a pluggable
    scheduler, input oracle, and fault plan.  Context switches happen only
    at basic-block boundaries or when the running thread blocks
    (DESIGN.md §1), which makes a schedule a plain list of tids and lets
    RES reconstruct it exactly. *)

module IMap = Map.Make (Int)

type config = {
  sched : Sched.t;
  oracle : Oracle.t;
  fault : Fault.t;
  max_steps : int;
  lbr_depth : int;  (** 0 disables the breadcrumb LBR *)
  record_trace : bool;
      (** production runs leave this off; replay and ground-truth runs on *)
}

let default_config () =
  {
    sched = Sched.create Sched.Round_robin;
    oracle = Oracle.seeded ~seed:0;
    fault = Fault.none;
    max_steps = 1_000_000;
    lbr_depth = 16;
    record_trace = false;
  }

type state = {
  prog : Res_ir.Prog.t;
  layout : Res_mem.Layout.t;
  mutable mem : Res_mem.Memory.t;
  mutable heap : Res_mem.Heap.t;
  mutable threads : Thread.t IMap.t;
  mutable next_tid : int;
  mutable tracer : Tracer.t;
  mutable steps : int;
  mutable trace_rev : Event.t list;
  mutable current : int;  (** tid currently holding the virtual CPU *)
  mutable sched_trace_rev : int list;  (** tids picked at scheduling points *)
}

type outcome =
  | Crashed of Crash.t
  | Exited  (** every thread halted *)
  | Out_of_fuel  (** [max_steps] exhausted *)

type result = {
  outcome : outcome;
  final : state;
  trace : Event.t list;  (** instruction-level, if [record_trace] *)
  schedule : int list;  (** tids picked at scheduling points, in order *)
}

exception Crash_exn of Crash.kind

let init prog =
  let layout = Res_mem.Layout.of_prog prog in
  let main = Res_ir.Prog.main prog in
  let t0 = Thread.start ~tid:0 main ~args:[] in
  {
    prog;
    layout;
    mem = Res_mem.Memory.empty;
    heap = Res_mem.Heap.empty;
    threads = IMap.singleton 0 t0;
    next_tid = 1;
    tracer = Tracer.create ~lbr_depth:16;
    steps = 0;
    trace_rev = [];
    current = 0;
    sched_trace_rev = [];
  }

let set_thread st (th : Thread.t) = st.threads <- IMap.add th.tid th st.threads

let get_thread st tid =
  match IMap.find_opt tid st.threads with
  | Some th -> th
  | None -> invalid_arg (Fmt.str "Exec: unknown thread %d" tid)

let emit st cfg tid pc action =
  if cfg.record_trace then
    st.trace_rev <- { Event.step = st.steps; tid; pc; action } :: st.trace_rev

(** Validate a data access; returns unit or raises the crash. *)
let check_data_access st addr =
  let open Res_mem in
  if Layout.in_heap_region addr then
    match Heap.check_access st.heap addr with
    | Heap.Ok_access _ -> ()
    | Heap.Out_of_bounds (b, _) ->
        raise (Crash_exn (Crash.Out_of_bounds { addr; base = b.base; size = b.size }))
    | Heap.Use_after_free b ->
        raise (Crash_exn (Crash.Use_after_free { addr; base = b.base }))
    | Heap.Unmapped -> raise (Crash_exn (Crash.Seg_fault addr))
  else
    match Layout.find_global st.layout addr with
    | Some _ -> ()
    | None ->
        if Layout.in_globals_region st.layout addr then
          (* Guard word: identify the global it overflows. *)
          let global =
            List.find_map
              (fun (base, size, name) ->
                if addr = base + size then Some name else None)
              st.layout.names
            |> Option.value ~default:"?"
          in
          raise (Crash_exn (Crash.Global_overflow { addr; global }))
        else raise (Crash_exn (Crash.Seg_fault addr))

let read_mem st addr =
  check_data_access st addr;
  Res_mem.Memory.read st.mem addr

let write_mem st addr v =
  check_data_access st addr;
  st.mem <- Res_mem.Memory.write st.mem addr v

(** Wake every thread blocked on [pred]. *)
let wake st pred =
  st.threads <-
    IMap.map
      (fun (th : Thread.t) ->
        if pred th.status then { th with status = Thread.Runnable } else th)
      st.threads

let eval_binop_faulted st cfg op a b =
  let v = Res_ir.Instr.eval_binop op a b in
  v + Fault.alu_delta_at cfg.fault ~step:st.steps

(** Execute one straight-line instruction of thread [th]; returns the
    updated thread (not yet stored).  May raise [Crash_exn]. *)
let step_instr st cfg (th : Thread.t) (fr : Frame.t) instr =
  let open Res_ir.Instr in
  let pc = Frame.pc fr in
  let tid = th.tid in
  let rd r = Frame.read_reg fr r in
  let advance fr = Thread.with_top th (Frame.advance fr) in
  match instr with
  | Const (r, n) ->
      emit st cfg tid pc Event.A_exec;
      advance (Frame.write_reg fr r n)
  | Mov (r, a) ->
      emit st cfg tid pc Event.A_exec;
      advance (Frame.write_reg fr r (rd a))
  | Binop (op, r, a, b) ->
      let va = rd a and vb = rd b in
      if (op = Div || op = Rem) && vb = 0 then raise (Crash_exn Crash.Div_by_zero);
      emit st cfg tid pc Event.A_exec;
      advance (Frame.write_reg fr r (eval_binop_faulted st cfg op va vb))
  | Unop (op, r, a) ->
      emit st cfg tid pc Event.A_exec;
      advance (Frame.write_reg fr r (eval_unop op (rd a)))
  | Load (r, a, off) ->
      let addr = rd a + off in
      let v = read_mem st addr in
      emit st cfg tid pc (Event.A_read { addr; value = v });
      advance (Frame.write_reg fr r v)
  | Store (a, off, s) ->
      let addr = rd a + off in
      let old = read_mem st addr in
      let v = rd s in
      write_mem st addr v;
      emit st cfg tid pc (Event.A_write { addr; value = v; old });
      advance fr
  | Global_addr (r, g) -> (
      match Res_mem.Layout.global_base st.layout g with
      | base ->
          emit st cfg tid pc Event.A_exec;
          advance (Frame.write_reg fr r base)
      | exception Not_found -> raise (Crash_exn (Crash.Seg_fault 0)))
  | Alloc (r, s) ->
      let size = rd s in
      if size <= 0 then raise (Crash_exn (Crash.Alloc_error size));
      let heap, base = Res_mem.Heap.alloc st.heap ~size ~site:(Some pc) in
      st.heap <- heap;
      emit st cfg tid pc (Event.A_alloc { base; size });
      advance (Frame.write_reg fr r base)
  | Free a -> (
      let addr = rd a in
      match Res_mem.Heap.free st.heap addr ~site:pc with
      | Res_mem.Heap.Freed_ok (heap, b) ->
          st.heap <- heap;
          emit st cfg tid pc (Event.A_free { base = b.base });
          advance fr
      | Res_mem.Heap.Double_free b ->
          raise (Crash_exn (Crash.Double_free b.base))
      | Res_mem.Heap.Invalid_free -> raise (Crash_exn (Crash.Invalid_free addr)))
  | Input (r, kind) ->
      let v = cfg.oracle.Oracle.next kind in
      emit st cfg tid pc (Event.A_input { kind; value = v });
      advance (Frame.write_reg fr r v)
  | Lock a ->
      let addr = rd a in
      let v = read_mem st addr in
      if v = 0 then (
        write_mem st addr (tid + 1);
        emit st cfg tid pc (Event.A_lock { addr });
        advance fr)
      else (* Do not advance: the instruction retries once woken. *)
        { th with status = Thread.Blocked_on_lock addr }
  | Unlock a ->
      let addr = rd a in
      let v = read_mem st addr in
      if v <> tid + 1 then raise (Crash_exn (Crash.Unlock_error addr))
      else (
        write_mem st addr 0;
        wake st (function Thread.Blocked_on_lock a' -> a' = addr | _ -> false);
        emit st cfg tid pc (Event.A_unlock { addr });
        advance fr)
  | Spawn (r, fname, args) ->
      let f = Res_ir.Prog.func st.prog fname in
      let tid' = st.next_tid in
      st.next_tid <- tid' + 1;
      let th' = Thread.start ~tid:tid' f ~args:(List.map rd args) in
      set_thread st th';
      emit st cfg tid pc (Event.A_spawn { new_tid = tid' });
      advance (Frame.write_reg fr r tid')
  | Join a ->
      let target = rd a in
      if not (IMap.mem target st.threads) then
        raise (Crash_exn (Crash.Abort_called (Fmt.str "join of invalid thread %d" target)))
      else if Thread.is_halted (get_thread st target) then (
        emit st cfg tid pc (Event.A_join { joined = target });
        advance fr)
      else { th with status = Thread.Blocked_on_join target }
  | Call (ret_reg, fname, args) ->
      let f = Res_ir.Prog.func st.prog fname in
      emit st cfg tid pc (Event.A_call { callee = fname });
      let caller = Frame.advance fr in
      let callee = Frame.enter f ~args:(List.map rd args) ~ret_reg in
      Thread.push_frame (Thread.with_top th caller) callee
  | Assert (r, msg) ->
      if rd r = 0 then raise (Crash_exn (Crash.Assert_fail msg))
      else (
        emit st cfg tid pc Event.A_exec;
        advance fr)
  | Log (tag, r) ->
      st.tracer <- Tracer.record_log st.tracer ~tid ~tag ~value:(rd r);
      emit st cfg tid pc Event.A_exec;
      advance fr
  | Nop ->
      emit st cfg tid pc Event.A_exec;
      advance fr

(** Execute the terminator of the current block. *)
let step_term st cfg (th : Thread.t) (fr : Frame.t) term =
  let open Res_ir.Instr in
  let pc = Frame.pc fr in
  let tid = th.tid in
  let branch_to label =
    st.tracer <-
      Tracer.record_branch st.tracer ~tid ~func:fr.func ~from_label:fr.block
        ~to_label:label;
    emit st cfg tid pc (Event.A_branch { from_label = fr.block; to_label = label });
    Thread.with_top th (Frame.goto fr label)
  in
  let halt_thread () =
    emit st cfg tid pc Event.A_halt;
    wake st (function Thread.Blocked_on_join t -> t = tid | _ -> false);
    { th with Thread.frames = []; status = Thread.Halted }
  in
  match term with
  | Jmp l -> branch_to l
  | Br (r, l1, l2) -> branch_to (if Frame.read_reg fr r <> 0 then l1 else l2)
  | Halt -> halt_thread ()
  | Abort msg -> raise (Crash_exn (Crash.Abort_called msg))
  | Ret r_opt -> (
      emit st cfg tid pc Event.A_ret;
      let ret_val = Option.map (Frame.read_reg fr) r_opt in
      let th = Thread.pop_frame th in
      match th.Thread.frames with
      | [] -> halt_thread ()
      | caller :: _ -> (
          match (fr.ret_reg, ret_val) with
          | Some dst, Some v ->
              Thread.with_top th (Frame.write_reg caller dst v)
          | Some dst, None ->
              (* [r = call f()] where f returns nothing: yield 0. *)
              Thread.with_top th (Frame.write_reg caller dst 0)
          | None, _ -> th))

(** One machine step of thread [tid].  Returns [Some crash] on failure. *)
let step st cfg tid =
  st.mem <- Fault.memory_mutations_at cfg.fault ~step:st.steps st.mem;
  let th = get_thread st tid in
  let fr = Thread.top th in
  let block = Res_ir.Prog.block st.prog ~func:fr.func ~label:fr.block in
  let result =
    try
      let th' =
        if fr.idx < Res_ir.Block.length block then
          step_instr st cfg th fr (Res_ir.Block.instr block fr.idx)
        else step_term st cfg th fr block.term
      in
      set_thread st th';
      None
    with Crash_exn kind -> Some { Crash.kind; tid; pc = Frame.pc fr }
  in
  st.steps <- st.steps + 1;
  result

let runnable_tids st =
  IMap.fold
    (fun tid th acc -> if Thread.is_runnable th then tid :: acc else acc)
    st.threads []
  |> List.sort compare

let blocked_tids st =
  IMap.fold
    (fun tid th acc -> if Thread.is_blocked th then tid :: acc else acc)
    st.threads []
  |> List.sort compare

(** Whether the current thread must keep the CPU (it is runnable and
    mid-block, so no context switch is allowed). *)
let must_continue st =
  match IMap.find_opt st.current st.threads with
  | Some th -> Thread.is_runnable th && not (Thread.at_block_boundary th)
  | None -> false

(** Build an initial state with explicit memory, heap, and threads — used
    by the replayer to start a program {e mid-execution} from a synthesized
    memory image [Mi]. *)
let make_state prog ~mem ~heap ~threads =
  let st = init prog in
  st.mem <- mem;
  st.heap <- heap;
  st.threads <- threads;
  st.next_tid <- 1 + IMap.fold (fun tid _ acc -> max tid acc) threads 0;
  st

(** Run an already-constructed state under [config] until crash, exit, or
    fuel exhaustion. *)
let run_state ?(config = default_config ()) st =
  st.tracer <- Tracer.create ~lbr_depth:config.lbr_depth;
  let finish outcome =
    {
      outcome;
      final = st;
      trace = List.rev st.trace_rev;
      schedule = List.rev st.sched_trace_rev;
    }
  in
  let rec loop () =
    if st.steps >= config.max_steps then finish Out_of_fuel
    else if must_continue st then run_one st.current
    else
      match runnable_tids st with
      | [] -> (
          match blocked_tids st with
          | [] -> finish Exited
          | blocked ->
              (* Every live thread is blocked: deadlock.  Attribute the
                 crash to the lowest blocked tid at its current pc. *)
              let tid = List.hd blocked in
              let pc = Thread.pc (get_thread st tid) in
              finish (Crashed { Crash.kind = Crash.Deadlock blocked; tid; pc }))
      | runnable ->
          let tid = Sched.pick config.sched ~runnable in
          st.sched_trace_rev <- tid :: st.sched_trace_rev;
          st.current <- tid;
          run_one tid
  and run_one tid =
    match step st config tid with
    | Some crash -> finish (Crashed crash)
    | None -> loop ()
  in
  loop ()

(** Run [prog] from its entry point under [config]. *)
let run ?config prog = run_state ?config (init prog)

(** Run and capture a coredump if the program crashes. *)
let run_to_coredump ?config prog =
  let r = run ?config prog in
  match r.outcome with
  | Crashed crash ->
      ( Some
          {
            Coredump.crash;
            mem = r.final.mem;
            heap = r.final.heap;
            threads = r.final.threads;
            tracer = r.final.tracer;
            steps = r.final.steps;
          },
        r )
  | Exited | Out_of_fuel -> (None, r)
