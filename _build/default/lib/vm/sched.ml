(** Schedulers.

    MiniVM context-switches only at basic-block boundaries (and when a
    thread blocks), so a schedule is fully described by the sequence of
    tids chosen at those points — which is exactly the granularity at which
    RES reconstructs thread schedules (DESIGN.md §1). *)

type policy =
  | Round_robin
  | Seeded of int  (** pseudo-random pick at each boundary, per seed *)
  | Fixed of int list
      (** scripted: pick exactly these tids at successive boundaries; when
          exhausted or the scripted tid is not runnable, fall back to
          round-robin (used by the replayer, which scripts the full suffix) *)

type t = {
  policy : policy;
  mutable rr_last : int;
  mutable rng : int;
  mutable script : int list;
}

let create policy =
  let rng = match policy with Seeded s -> s lxor 0x1851f42d4c957f2d | _ -> 0 in
  let script = match policy with Fixed l -> l | _ -> [] in
  { policy; rr_last = -1; rng; script }

let next_rand t =
  let z = t.rng + 0x1e3779b97f4a7c15 in
  t.rng <- z;
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  (z lxor (z lsr 31)) land max_int

let round_robin t runnable =
  let above = List.filter (fun tid -> tid > t.rr_last) runnable in
  let chosen = match above with tid :: _ -> tid | [] -> List.hd runnable in
  t.rr_last <- chosen;
  chosen

(** [pick t runnable] chooses the next thread among [runnable] (sorted
    ascending, non-empty). *)
let pick t ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.pick: no runnable threads"
  | _ -> (
      match t.policy with
      | Round_robin -> round_robin t runnable
      | Seeded _ -> List.nth runnable (next_rand t mod List.length runnable)
      | Fixed _ -> (
          match t.script with
          | tid :: rest when List.mem tid runnable ->
              t.script <- rest;
              tid
          | _ :: rest ->
              (* Scripted thread not runnable here: skip the entry.  The
                 replayer treats this as a determinism failure upstream. *)
              t.script <- rest;
              round_robin t runnable
          | [] -> round_robin t runnable))
