(** Post-crash breadcrumbs that are "cheap to collect after the crash"
    (paper §2.4): a software Last Branch Record ring buffer and the
    program's own error log.  Both ship inside the coredump and are the
    {e only} runtime information RES may consume besides the dump itself. *)

(** One retired branch: thread, source block, destination block. *)
type branch = {
  br_tid : int;
  br_func : string;
  br_from : Res_ir.Instr.label;
  br_to : Res_ir.Instr.label;
}

(** One [log] instruction occurrence. *)
type log_entry = { log_tid : int; log_tag : string; log_value : int }

type t = {
  lbr_depth : int;  (** ring capacity; 0 disables the LBR *)
  lbr : branch list;  (** most recent first, length <= [lbr_depth] *)
  logs : log_entry list;  (** most recent first, unbounded *)
}

(** [create ~lbr_depth] — Intel LBR keeps 16 entries; the depth is
    configurable for the E6 search-space experiment. *)
val create : lbr_depth:int -> t

val record_branch :
  t -> tid:int -> func:string -> from_label:Res_ir.Instr.label ->
  to_label:Res_ir.Instr.label -> t

val record_log : t -> tid:int -> tag:string -> value:int -> t

(** Branches, most recent first. *)
val branches : t -> branch list

(** Log entries, most recent first. *)
val logs : t -> log_entry list

val pp_branch : Format.formatter -> branch -> unit
val pp : Format.formatter -> t -> unit
