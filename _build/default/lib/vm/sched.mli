(** Schedulers.

    MiniVM context-switches only at scheduling boundaries (the start of a
    basic block of a thread's root frame, or when the running thread
    blocks), so a schedule is fully described by the sequence of tids
    chosen at those points — which is exactly the granularity at which RES
    reconstructs thread schedules. *)

type policy =
  | Round_robin
  | Seeded of int  (** pseudo-random pick at each boundary, per seed *)
  | Fixed of int list
      (** scripted: pick exactly these tids at successive boundaries; when
          exhausted or the scripted tid is not runnable, fall back to
          round-robin (used by the replayer, which scripts the suffix) *)

type t

val create : policy -> t

(** [pick t ~runnable] chooses the next thread among [runnable] (sorted
    ascending).
    @raise Invalid_argument when [runnable] is empty. *)
val pick : t -> runnable:int list -> int
