(** Failure kinds.

    Everything whose state "can be snapshotted in a coredump" (paper §2):
    memory-safety violations, traps, assertion failures, aborts, lock
    misuse, and deadlocks. *)

type kind =
  | Seg_fault of int  (** access to an unmapped address *)
  | Out_of_bounds of { addr : int; base : int; size : int }
      (** heap access past the end of an allocation *)
  | Use_after_free of { addr : int; base : int }
  | Double_free of int
  | Invalid_free of int  (** free of a non-allocation address *)
  | Global_overflow of { addr : int; global : string }
      (** access to the guard word of a global (Fig. 1's buffer overflow) *)
  | Div_by_zero
  | Assert_fail of string
  | Abort_called of string
  | Unlock_error of int  (** unlock of a mutex the thread does not hold *)
  | Deadlock of int list  (** every live thread blocked; the tids *)
  | Alloc_error of int  (** allocation with non-positive size *)

(** A crash: what happened, in which thread, at which program counter. *)
type t = { kind : kind; tid : int; pc : Res_ir.Pc.t }

let pp_kind ppf = function
  | Seg_fault a -> Fmt.pf ppf "segmentation fault at 0x%x" a
  | Out_of_bounds { addr; base; size } ->
      Fmt.pf ppf "heap overflow: 0x%x past block 0x%x(+%d)" addr base size
  | Use_after_free { addr; base } ->
      Fmt.pf ppf "use after free: 0x%x in freed block 0x%x" addr base
  | Double_free a -> Fmt.pf ppf "double free of 0x%x" a
  | Invalid_free a -> Fmt.pf ppf "invalid free of 0x%x" a
  | Global_overflow { addr; global } ->
      Fmt.pf ppf "global buffer overflow: 0x%x past %s" addr global
  | Div_by_zero -> Fmt.string ppf "division by zero"
  | Assert_fail m -> Fmt.pf ppf "assertion failed: %s" m
  | Abort_called m -> Fmt.pf ppf "abort: %s" m
  | Unlock_error a -> Fmt.pf ppf "unlock of unheld mutex 0x%x" a
  | Deadlock tids ->
      Fmt.pf ppf "deadlock (threads %a)" Fmt.(list ~sep:comma int) tids
  | Alloc_error n -> Fmt.pf ppf "allocation of %d words" n

let pp ppf t =
  Fmt.pf ppf "thread %d at %a: %a" t.tid Res_ir.Pc.pp t.pc pp_kind t.kind

let to_string t = Fmt.str "%a" pp t

(** Coarse family of a crash kind — what a naive triager keys on. *)
let kind_family = function
  | Seg_fault _ -> "segfault"
  | Out_of_bounds _ -> "heap-overflow"
  | Use_after_free _ -> "use-after-free"
  | Double_free _ -> "double-free"
  | Invalid_free _ -> "invalid-free"
  | Global_overflow _ -> "global-overflow"
  | Div_by_zero -> "div-by-zero"
  | Assert_fail _ -> "assert"
  | Abort_called _ -> "abort"
  | Unlock_error _ -> "unlock-error"
  | Deadlock _ -> "deadlock"
  | Alloc_error _ -> "alloc-error"
