(** Textual (de)serialization of coredumps.

    Production systems ship coredumps as files; this module gives MiniVM
    dumps a stable, human-readable on-disk format so the CLI can separate
    "run and capture" from "analyze".  The format is line-oriented; string
    payloads (assert/abort messages, log tags) are quoted with OCaml
    escapes.  [of_string (to_string d)] round-trips exactly. *)

module IMap = Map.Make (Int)

let pp_pc ppf (pc : Res_ir.Pc.t) =
  Fmt.pf ppf "%s %s %d" pc.func pc.block pc.idx

let pp_kind ppf (k : Crash.kind) =
  match k with
  | Crash.Seg_fault a -> Fmt.pf ppf "seg_fault %d" a
  | Crash.Out_of_bounds { addr; base; size } ->
      Fmt.pf ppf "out_of_bounds %d %d %d" addr base size
  | Crash.Use_after_free { addr; base } -> Fmt.pf ppf "use_after_free %d %d" addr base
  | Crash.Double_free a -> Fmt.pf ppf "double_free %d" a
  | Crash.Invalid_free a -> Fmt.pf ppf "invalid_free %d" a
  | Crash.Global_overflow { addr; global } ->
      Fmt.pf ppf "global_overflow %d %s" addr global
  | Crash.Div_by_zero -> Fmt.string ppf "div_by_zero"
  | Crash.Assert_fail m -> Fmt.pf ppf "assert_fail %S" m
  | Crash.Abort_called m -> Fmt.pf ppf "abort_called %S" m
  | Crash.Unlock_error a -> Fmt.pf ppf "unlock_error %d" a
  | Crash.Deadlock tids -> Fmt.pf ppf "deadlock %a" Fmt.(list ~sep:sp int) tids
  | Crash.Alloc_error n -> Fmt.pf ppf "alloc_error %d" n

let pp_status ppf = function
  | Thread.Runnable -> Fmt.string ppf "runnable"
  | Thread.Blocked_on_lock a -> Fmt.pf ppf "blocked_on_lock %d" a
  | Thread.Blocked_on_join t -> Fmt.pf ppf "blocked_on_join %d" t
  | Thread.Halted -> Fmt.string ppf "halted"

let pp_site ppf = function
  | None -> Fmt.string ppf "none"
  | Some pc -> pp_pc ppf pc

(** Serialize a coredump to its textual format. *)
let to_string (d : Coredump.t) =
  let buf = Buffer.create 4096 in
  let ppf = Fmt.with_buffer buf in
  Fmt.pf ppf "coredump v1@\n";
  Fmt.pf ppf "steps %d@\n" d.Coredump.steps;
  Fmt.pf ppf "crash %d %a %a@\n" d.Coredump.crash.Crash.tid pp_pc
    d.Coredump.crash.Crash.pc pp_kind d.Coredump.crash.Crash.kind;
  List.iter
    (fun (a, v) -> Fmt.pf ppf "mem %d %d@\n" a v)
    (Res_mem.Memory.bindings d.Coredump.mem);
  Fmt.pf ppf "heap_next %d@\n" (Res_mem.Heap.next_addr d.Coredump.heap);
  List.iter
    (fun (b : Res_mem.Heap.block) ->
      Fmt.pf ppf "heap_block %d %d %s %a %a@\n" b.base b.size
        (match b.state with Res_mem.Heap.Live -> "live" | Res_mem.Heap.Freed -> "freed")
        pp_site b.alloc_site pp_site b.free_site)
    (Res_mem.Heap.blocks d.Coredump.heap);
  List.iter
    (fun (th : Thread.t) ->
      Fmt.pf ppf "thread %d %a@\n" th.tid pp_status th.status;
      List.iter
        (fun (fr : Frame.t) ->
          Fmt.pf ppf "frame %s %s %d %s@\n" fr.func fr.block fr.idx
            (match fr.ret_reg with Some r -> string_of_int r | None -> "none");
          List.iter
            (fun (r, v) -> Fmt.pf ppf "reg %d %d@\n" r v)
            (Frame.reg_bindings fr))
        th.frames)
    (Coredump.threads d);
  Fmt.pf ppf "lbr_depth %d@\n" d.Coredump.tracer.Tracer.lbr_depth;
  List.iter
    (fun (b : Tracer.branch) ->
      Fmt.pf ppf "branch %d %s %s %s@\n" b.br_tid b.br_func b.br_from b.br_to)
    (Tracer.branches d.Coredump.tracer);
  List.iter
    (fun (e : Tracer.log_entry) ->
      Fmt.pf ppf "log %d %S %d@\n" e.log_tid e.log_tag e.log_value)
    (Tracer.logs d.Coredump.tracer);
  Fmt.flush ppf ();
  Buffer.contents buf

exception Bad_format of string

let fail fmt = Fmt.kstr (fun m -> raise (Bad_format m)) fmt

(* Token-level reader built on the MiniIR tokenizer (it already handles
   ints, identifiers, and quoted strings). *)
type reader = { mutable toks : (Res_ir.Parser.token * int) list }

let next rd =
  match rd.toks with
  | [] -> fail "unexpected end of coredump"
  | (t, _) :: rest ->
      rd.toks <- rest;
      t

let peek rd = match rd.toks with [] -> None | (t, _) :: _ -> Some t

let int_tok rd =
  match next rd with
  | Res_ir.Parser.INT n -> n
  | _ -> fail "expected integer"

let ident rd =
  match next rd with
  | Res_ir.Parser.IDENT s -> s
  | _ -> fail "expected identifier"

let string_tok rd =
  match next rd with
  | Res_ir.Parser.STRING s -> s
  | _ -> fail "expected string"

let pc_of rd =
  let func = ident rd in
  let block = ident rd in
  let idx = int_tok rd in
  Res_ir.Pc.v ~func ~block ~idx

let site_of rd =
  match peek rd with
  | Some (Res_ir.Parser.IDENT "none") ->
      ignore (next rd);
      None
  | _ -> Some (pc_of rd)

let kind_of rd : Crash.kind =
  match ident rd with
  | "seg_fault" -> Crash.Seg_fault (int_tok rd)
  | "out_of_bounds" ->
      let addr = int_tok rd in
      let base = int_tok rd in
      let size = int_tok rd in
      Crash.Out_of_bounds { addr; base; size }
  | "use_after_free" ->
      let addr = int_tok rd in
      let base = int_tok rd in
      Crash.Use_after_free { addr; base }
  | "double_free" -> Crash.Double_free (int_tok rd)
  | "invalid_free" -> Crash.Invalid_free (int_tok rd)
  | "global_overflow" ->
      let addr = int_tok rd in
      let global = ident rd in
      Crash.Global_overflow { addr; global }
  | "div_by_zero" -> Crash.Div_by_zero
  | "assert_fail" -> Crash.Assert_fail (string_tok rd)
  | "abort_called" -> Crash.Abort_called (string_tok rd)
  | "unlock_error" -> Crash.Unlock_error (int_tok rd)
  | "deadlock" ->
      let rec ints acc =
        match peek rd with
        | Some (Res_ir.Parser.INT _) -> ints (int_tok rd :: acc)
        | _ -> List.rev acc
      in
      Crash.Deadlock (ints [])
  | "alloc_error" -> Crash.Alloc_error (int_tok rd)
  | s -> fail "unknown crash kind %s" s

let status_of rd =
  match ident rd with
  | "runnable" -> Thread.Runnable
  | "blocked_on_lock" -> Thread.Blocked_on_lock (int_tok rd)
  | "blocked_on_join" -> Thread.Blocked_on_join (int_tok rd)
  | "halted" -> Thread.Halted
  | s -> fail "unknown thread status %s" s

(** Parse a coredump from its textual format.
    @raise Bad_format on malformed input. *)
let of_string src : Coredump.t =
  let rd = { toks = Res_ir.Parser.tokenize src } in
  (match (ident rd, ident rd) with
  | "coredump", "v1" -> ()
  | _ -> fail "missing coredump v1 header");
  let steps = ref 0 in
  let crash = ref None in
  let mem = ref Res_mem.Memory.empty in
  let heap_next = ref Res_mem.Layout.heap_base in
  let heap_blocks = ref [] in
  let threads = ref [] in
  (* accumulate the thread being parsed *)
  let cur_thread : (int * Thread.status) option ref = ref None in
  let cur_frames = ref [] in
  let cur_frame = ref None in
  let close_frame () =
    match !cur_frame with
    | Some fr ->
        cur_frames := (fr : Frame.t) :: !cur_frames;
        cur_frame := None
    | None -> ()
  in
  let close_thread () =
    close_frame ();
    match !cur_thread with
    | Some (tid, status) ->
        threads :=
          { Thread.tid; frames = List.rev !cur_frames; status } :: !threads;
        cur_thread := None;
        cur_frames := []
    | None -> ()
  in
  let lbr_depth = ref 16 in
  let branches = ref [] in
  let logs = ref [] in
  let rec loop () =
    match peek rd with
    | None -> ()
    | Some _ ->
        (match ident rd with
        | "steps" -> steps := int_tok rd
        | "crash" ->
            let tid = int_tok rd in
            let pc = pc_of rd in
            let kind = kind_of rd in
            crash := Some { Crash.tid; pc; kind }
        | "mem" ->
            let a = int_tok rd in
            let v = int_tok rd in
            mem := Res_mem.Memory.write !mem a v
        | "heap_next" -> heap_next := int_tok rd
        | "heap_block" ->
            let base = int_tok rd in
            let size = int_tok rd in
            let state =
              match ident rd with
              | "live" -> Res_mem.Heap.Live
              | "freed" -> Res_mem.Heap.Freed
              | s -> fail "unknown heap state %s" s
            in
            let alloc_site = site_of rd in
            let free_site = site_of rd in
            heap_blocks :=
              { Res_mem.Heap.base; size; state; alloc_site; free_site }
              :: !heap_blocks
        | "thread" ->
            close_thread ();
            let tid = int_tok rd in
            let status = status_of rd in
            cur_thread := Some (tid, status)
        | "frame" ->
            close_frame ();
            let func = ident rd in
            let block = ident rd in
            let idx = int_tok rd in
            let ret_reg =
              match next rd with
              | Res_ir.Parser.IDENT "none" -> None
              | Res_ir.Parser.INT r -> Some r
              | _ -> fail "expected return register or none"
            in
            cur_frame :=
              Some { Frame.func; block; idx; regs = IMap.empty; ret_reg }
        | "reg" -> (
            let r = int_tok rd in
            let v = int_tok rd in
            match !cur_frame with
            | Some fr -> cur_frame := Some (Frame.write_reg fr r v)
            | None -> fail "reg outside a frame")
        | "lbr_depth" -> lbr_depth := int_tok rd
        | "branch" ->
            let br_tid = int_tok rd in
            let br_func = ident rd in
            let br_from = ident rd in
            let br_to = ident rd in
            branches := { Tracer.br_tid; br_func; br_from; br_to } :: !branches
        | "log" ->
            let log_tid = int_tok rd in
            let log_tag = string_tok rd in
            let log_value = int_tok rd in
            logs := { Tracer.log_tid; log_tag; log_value } :: !logs
        | s -> fail "unknown record %s" s);
        loop ()
  in
  loop ();
  close_thread ();
  let crash = match !crash with Some c -> c | None -> fail "no crash record" in
  let heap = Res_mem.Heap.of_blocks ~next:!heap_next !heap_blocks in
  let tracer =
    {
      Tracer.lbr_depth = !lbr_depth;
      (* branches/logs were serialized most-recent-first and accumulated in
         reverse, so the accumulators are already oldest-first: reverse back *)
      lbr = List.rev !branches;
      logs = List.rev !logs;
    }
  in
  {
    Coredump.crash;
    mem = !mem;
    heap;
    threads =
      List.fold_left
        (fun m (th : Thread.t) -> IMap.add th.Thread.tid th m)
        IMap.empty !threads;
    tracer;
    steps = !steps;
  }

(** Write a coredump to [path]. *)
let save path d =
  let oc = open_out path in
  output_string oc (to_string d);
  close_out oc

(** Load a coredump from [path].
    @raise Bad_format or [Sys_error] on failure. *)
let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
