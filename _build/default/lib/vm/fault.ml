(** Hardware fault injection (paper §3.2).

    Faults are scheduled against the global step counter, so a given
    program + seed + fault plan is fully deterministic.  Three families
    mirror the paper's examples: DRAM bit flips, CPU miscomputation of an
    ALU result, and DMA writes from a faulty device. *)

type t = {
  bit_flips : (int * int * int) list;
      (** (step, addr, bit): flip one memory bit just before this step *)
  alu_errors : (int * int) list;
      (** (step, delta): the binop executed at this step yields result+delta *)
  dma_writes : (int * int * int) list;
      (** (step, addr, value): overwrite a word just before this step *)
}

let none = { bit_flips = []; alu_errors = []; dma_writes = [] }

let bit_flip ~step ~addr ~bit = { none with bit_flips = [ (step, addr, bit) ] }
let alu_error ~step ~delta = { none with alu_errors = [ (step, delta) ] }
let dma_write ~step ~addr ~value = { none with dma_writes = [ (step, addr, value) ] }

let is_none t = t.bit_flips = [] && t.alu_errors = [] && t.dma_writes = []

(** Memory mutations due at [step]: list of [addr -> new value] builders. *)
let memory_mutations_at t ~step mem =
  let mem =
    List.fold_left
      (fun m (s, addr, bit) ->
        if s = step then Res_mem.Memory.flip_bit m addr bit else m)
      mem t.bit_flips
  in
  List.fold_left
    (fun m (s, addr, value) ->
      if s = step then Res_mem.Memory.write m addr value else m)
    mem t.dma_writes

(** ALU corruption for the binop executed at [step], if scheduled. *)
let alu_delta_at t ~step =
  List.fold_left
    (fun acc (s, delta) -> if s = step then acc + delta else acc)
    0 t.alu_errors
