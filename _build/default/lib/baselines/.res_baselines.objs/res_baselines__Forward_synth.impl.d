lib/baselines/forward_synth.ml: Expr Int List Map Model Option Res_core Res_ir Res_mem Res_solver Res_symex Res_vm Simplify Solver String
