lib/baselines/pse.ml: Array Fmt Hashtbl List Res_ir Set String
