(** Forward execution synthesis — the ESD-style baseline (paper §1).

    Symbolically executes the whole program from [main]'s entry, searching
    over thread interleavings and input values for an execution that ends
    in the coredump's failure state.  This is what RES inverts: the cost of
    the forward search grows with the length of the execution (every
    segment before the failure must be traversed), whereas RES's backward
    suffix synthesis does not — experiment E3 measures exactly that.

    The search is block-granular DFS: each step picks a runnable thread and
    symbolically executes one root-block segment (calls inlined), forking
    on branches.  The goal test runs the crashing thread's partial segment
    against the coredump's stack and checks full memory/frame agreement. *)

module IMap = Map.Make (Int)
open Res_solver

type config = {
  max_segments_total : int;  (** global budget: segments executed *)
  max_depth : int;  (** longest execution considered, in segments *)
  sym_config : Res_symex.Symexec.config;
  solver_config : Solver.config;
}

let default_config =
  {
    max_segments_total = 100_000;
    max_depth = 10_000;
    sym_config = Res_symex.Symexec.default_config;
    solver_config = Solver.default_config;
  }

type stats = {
  mutable segments_executed : int;  (** total segments symbolically run *)
  mutable states_explored : int;
  mutable solver_checks : int;
}

type result = {
  found : bool;
  model : Model.t option;  (** input assignment reproducing the coredump *)
  depth : int;  (** segments in the found execution *)
  stats : stats;
}

(* One search state: thread positions, statuses, symbolic memory overlay
   (below it everything is the zero-initialized start state), heap, path. *)
type state = {
  frames : Res_symex.Symframe.t IMap.t;
  halted : IMap.key list;
  mem : Expr.t IMap.t;
  heap : Res_mem.Heap.t;
  path : Expr.t list;
  next_tid : int;
  depth : int;
}

let initial_state prog =
  let main = Res_ir.Prog.main prog in
  {
    frames =
      IMap.singleton 0
        {
          Res_symex.Symframe.func = Res_ir.Prog.main_name;
          block = main.Res_ir.Func.entry;
          idx = 0;
          regs = IMap.empty;
          ret_reg = None;
          lazy_pre = false;
        };
    halted = [];
    mem = IMap.empty;
    heap = Res_mem.Heap.empty;
    path = [];
    next_tid = 1;
    depth = 0;
  }

let read_mem state addr =
  match IMap.find_opt addr state.mem with
  | Some e -> e
  | None -> Expr.zero (* program start: memory is zero-initialized *)

(** Run one segment of thread [tid] in [state]; return successor states. *)
let run_segment cfg (ctx : Res_core.Backstep.ctx) stats state tid ~mode =
  match IMap.find_opt tid state.frames with
  | None -> []
  | Some frame ->
      stats.segments_executed <- stats.segments_executed + 1;
      let rq =
        {
          Res_symex.Symexec.prog = ctx.Res_core.Backstep.prog;
          layout = ctx.Res_core.Backstep.layout;
          tid;
          frame;
          heap = state.heap;
          post_mem = read_mem state;
          havoc_reads = Res_symex.Symexec.ISet.empty;
          ambient = state.path;
          addr_pool = [];
          alloc_plan = [];
          spawn_plan =
            (* forward spawns take consecutive fresh tids *)
            List.init 4 (fun i -> state.next_tid + i);
          dynamic_alloc = true;
          mode;
        }
      in
      let outs, _ = Res_symex.Symexec.run ~config:cfg.sym_config rq in
      List.filter_map
        (fun (o : Res_symex.Symexec.outcome) ->
          (* joins must target already-halted threads in this serialization *)
          if
            not
              (List.for_all
                 (fun jt -> List.mem jt state.halted)
                 o.Res_symex.Symexec.joins)
          then None
          else
            let mem =
              List.fold_left
                (fun m (a, e) -> IMap.add a e m)
                state.mem
                (Res_symex.Symmem.final_writes o.Res_symex.Symexec.mem)
            in
            let frames, halted, next_tid =
              let frames = state.frames and halted = state.halted in
              let frames, halted =
                match
                  (o.Res_symex.Symexec.stop, List.rev o.Res_symex.Symexec.frames)
                with
                | Res_symex.Symexec.Fell_to _, bottom :: _ ->
                    (IMap.add tid bottom frames, halted)
                | (Res_symex.Symexec.Returned _ | Res_symex.Symexec.Halted), _ ->
                    (IMap.remove tid frames, tid :: halted)
                | Res_symex.Symexec.Crashed_here, _ -> (frames, halted)
                | Res_symex.Symexec.Fell_to _, [] -> (frames, halted)
              in
              let frames, next_tid =
                List.fold_left
                  (fun (frames, next_tid) (tid', fname, args) ->
                    let f = Res_ir.Prog.func ctx.Res_core.Backstep.prog fname in
                    ( IMap.add tid'
                        (Res_symex.Symframe.enter f ~args ~ret_reg:None)
                        frames,
                      max next_tid (tid' + 1) ))
                  (frames, state.next_tid)
                  o.Res_symex.Symexec.spawns
              in
              (frames, halted, next_tid)
            in
            Some
              ( {
                  frames;
                  halted;
                  mem;
                  heap = o.Res_symex.Symexec.heap;
                  path = o.Res_symex.Symexec.path @ state.path;
                  next_tid;
                  depth = state.depth + 1;
                },
                o ))
        outs

(** Goal test: from [state], can the crashing thread run its final partial
    segment and land exactly on the coredump? *)
let goal_check cfg ctx stats state (dump : Res_vm.Coredump.t) =
  let crash = dump.Res_vm.Coredump.crash in
  let tid = crash.Res_vm.Crash.tid in
  let crash_thread = Res_vm.Coredump.crashing_thread dump in
  let stack =
    List.rev_map
      (fun (fr : Res_vm.Frame.t) -> (fr.func, fr.block, fr.idx))
      crash_thread.Res_vm.Thread.frames
  in
  (* the thread must already sit at the start of the crash root block *)
  let at_crash_block =
    match (IMap.find_opt tid state.frames, stack) with
    | Some fr, (f0, b0, _) :: _ ->
        String.equal fr.Res_symex.Symframe.func f0
        && String.equal fr.Res_symex.Symframe.block b0
        && fr.Res_symex.Symframe.idx = 0
    | _ -> false
  in
  if not at_crash_block then None
  else
    let candidates =
      run_segment cfg ctx stats state tid
        ~mode:
          (Res_symex.Symexec.Partial { stack; crash = Some crash.Res_vm.Crash.kind })
    in
    List.find_map
      (fun (state', (o : Res_symex.Symexec.outcome)) ->
        (* full agreement with the coredump *)
        let mem_cs =
          Res_mem.Memory.bindings dump.Res_vm.Coredump.mem
          |> List.map (fun (a, v) ->
                 Simplify.norm (Expr.eq (read_mem state' a) (Expr.const v)))
        in
        (* every overlay cell not in the dump must be 0 there *)
        let extra_cs =
          IMap.fold
            (fun a e acc ->
              if List.mem_assoc a (Res_mem.Memory.bindings dump.Res_vm.Coredump.mem)
              then acc
              else
                Simplify.norm
                  (Expr.eq e (Expr.const (Res_mem.Memory.read dump.Res_vm.Coredump.mem a)))
                :: acc)
            state'.mem []
        in
        let frame_cs =
          (* crashed frames must match the dump's *)
          let dump_frames = crash_thread.Res_vm.Thread.frames in
          let out_frames = List.rev o.Res_symex.Symexec.frames in
          let dump_frames = List.rev dump_frames in
          if List.length dump_frames <> List.length out_frames then [ Expr.zero ]
          else
            List.concat_map
              (fun ((d : Res_vm.Frame.t), (s : Res_symex.Symframe.t)) ->
                List.map
                  (fun (r, v) ->
                    Simplify.norm
                      (Expr.eq
                         (Option.value ~default:Expr.zero
                            (Res_symex.Symframe.read_opt s r))
                         (Expr.const v)))
                  (Res_vm.Frame.reg_bindings d))
              (List.combine dump_frames out_frames)
        in
        if not (Res_mem.Heap.similar state'.heap dump.Res_vm.Coredump.heap) then
          None
        else begin
          stats.solver_checks <- stats.solver_checks + 1;
          match
            Solver.solve ~config:cfg.solver_config
              (mem_cs @ extra_cs @ frame_cs @ state'.path)
          with
          | Solver.Sat m -> Some (m, state'.depth)
          | Solver.Unsat | Solver.Unknown -> None
        end)
      candidates

(** Search for an execution reproducing [dump], from the very start. *)
let synthesize ?(config = default_config) prog (dump : Res_vm.Coredump.t) :
    result =
  let ctx = Res_core.Backstep.make_ctx prog in
  let stats = { segments_executed = 0; states_explored = 0; solver_checks = 0 } in
  let exception Found of Model.t * int in
  let rec dfs state =
    if
      stats.segments_executed > config.max_segments_total
      || state.depth > config.max_depth
    then ()
    else begin
      stats.states_explored <- stats.states_explored + 1;
      (match goal_check config ctx stats state dump with
      | Some (m, depth) -> raise (Found (m, depth))
      | None -> ());
      (* expand: run one more segment of each live thread *)
      IMap.iter
        (fun tid _ ->
          List.iter
            (fun (state', _) -> dfs state')
            (run_segment config ctx stats state tid
               ~mode:(Res_symex.Symexec.Full { require_target = None })))
        state.frames
    end
  in
  match dfs (initial_state prog) with
  | () -> { found = false; model = None; depth = 0; stats }
  | exception Found (m, depth) ->
      { found = true; model = Some m; depth; stats }
