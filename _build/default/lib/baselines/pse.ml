(** PSE-style backward static analysis baseline (paper §2.2, §5).

    Computes a conservative backward slice from the crash site: every
    instruction that may have contributed to the values the crashing
    instruction observes, via intra-procedural reaching definitions on
    registers plus a may-alias-everything treatment of memory ("typically
    imprecise, as they do not use the rich source of information present
    in the coredump" — and no thread schedule, no concrete values).

    Experiment E10 contrasts the slice's size and precision with the
    read/write set of a RES suffix. *)

module SSet = Set.Make (String)

type slice = {
  instructions : (Res_ir.Pc.t * Res_ir.Instr.instr) list;  (** the slice *)
  store_sites : Res_ir.Pc.t list;  (** potential root-cause writes *)
  functions_touched : string list;
}

let size s = List.length s.instructions

(** Backward slice from [pc].  Criterion: the registers used by the
    instruction at [pc] plus, if it reads memory, {e every} store in the
    program (no points-to information — the defining imprecision). *)
let slice prog (pc : Res_ir.Pc.t) : slice =
  let cfg = Res_ir.Cfg.of_prog prog in
  (* worklist of (func, needed-regs) — per function, which registers'
     definitions matter; memory-dependence makes all stores relevant. *)
  let collected = Hashtbl.create 64 in
  let mem_relevant = ref false in
  let add_instr fpc i =
    if not (Hashtbl.mem collected fpc) then Hashtbl.replace collected fpc i
  in
  let reg_module = Hashtbl.create 16 in
  let rec demand fname regs =
    if regs = [] then ()
    else
      let seen =
        match Hashtbl.find_opt reg_module fname with
        | Some s -> s
        | None -> []
      in
      let fresh = List.filter (fun r -> not (List.mem r seen)) regs in
      if fresh = [] then ()
      else begin
        Hashtbl.replace reg_module fname (fresh @ seen);
        let f = Res_ir.Prog.func prog fname in
        List.iter
          (fun (b : Res_ir.Block.t) ->
            Array.iteri
              (fun idx instr ->
                match Res_ir.Instr.defs instr with
                | Some r when List.mem r fresh ->
                    let fpc = Res_ir.Pc.v ~func:fname ~block:b.label ~idx in
                    add_instr fpc instr;
                    (* transitively demand the operands *)
                    demand fname (Res_ir.Instr.uses instr);
                    (match instr with
                    | Res_ir.Instr.Load _ -> mem_relevant := true
                    | Res_ir.Instr.Call (_, callee, _) ->
                        (* the return value may come from anywhere in the
                           callee: demand its returned registers *)
                        let cf = Res_ir.Prog.func prog callee in
                        List.iter
                          (fun (cb : Res_ir.Block.t) ->
                            match cb.term with
                            | Res_ir.Instr.Ret (Some r) -> demand callee [ r ]
                            | _ -> ())
                          cf.Res_ir.Func.blocks
                    | Res_ir.Instr.Input _ -> ()
                    | _ -> ())
                | _ -> ())
              b.instrs)
          f.Res_ir.Func.blocks;
        (* parameters flow from every call site *)
        let f = Res_ir.Prog.func prog fname in
        let param_demand =
          List.filter (fun r -> List.mem r f.Res_ir.Func.params) fresh
        in
        if param_demand <> [] then
          List.iter
            (fun (site : Res_ir.Cfg.site) ->
              let b =
                Res_ir.Prog.block prog ~func:site.in_func ~label:site.in_block
              in
              match Res_ir.Block.instr b site.at_idx with
              | Res_ir.Instr.Call (_, _, args)
              | Res_ir.Instr.Spawn (_, _, args) ->
                  demand site.in_func args
              | _ -> ())
            (Res_ir.Cfg.call_sites_of cfg fname
            @ Res_ir.Cfg.spawn_sites_of cfg fname)
      end
  in
  (* seed: the crashing instruction's uses *)
  let b = Res_ir.Prog.block prog ~func:pc.Res_ir.Pc.func ~label:pc.Res_ir.Pc.block in
  let seed_uses =
    if pc.Res_ir.Pc.idx < Res_ir.Block.length b then (
      let i = Res_ir.Block.instr b pc.Res_ir.Pc.idx in
      (match i with Res_ir.Instr.Load _ -> mem_relevant := true | _ -> ());
      Res_ir.Instr.uses i)
    else Res_ir.Instr.term_uses b.term
  in
  demand pc.Res_ir.Pc.func seed_uses;
  (* memory dependence: without points-to, every store in the program is a
     potential definition *)
  let store_sites = ref [] in
  if !mem_relevant then
    List.iter
      (fun (f : Res_ir.Func.t) ->
        List.iter
          (fun (blk : Res_ir.Block.t) ->
            Array.iteri
              (fun idx instr ->
                match instr with
                | Res_ir.Instr.Store (a, _, v) ->
                    let fpc = Res_ir.Pc.v ~func:f.name ~block:blk.label ~idx in
                    add_instr fpc instr;
                    store_sites := fpc :: !store_sites;
                    demand f.name [ a; v ]
                | _ -> ())
              blk.instrs)
          f.Res_ir.Func.blocks)
      prog.Res_ir.Prog.funcs;
  let instructions =
    Hashtbl.fold (fun fpc i acc -> (fpc, i) :: acc) collected []
    |> List.sort (fun (a, _) (b, _) -> Res_ir.Pc.compare a b)
  in
  let functions_touched =
    List.fold_left
      (fun acc (fpc, _) -> SSet.add fpc.Res_ir.Pc.func acc)
      SSet.empty instructions
    |> SSet.elements
  in
  { instructions; store_sites = List.rev !store_sites; functions_touched }

let pp ppf s =
  Fmt.pf ppf "@[<v>slice: %d instructions, %d store sites, %d functions@]"
    (size s) (List.length s.store_sites)
    (List.length s.functions_touched)
