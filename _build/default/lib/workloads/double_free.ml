(** Double free: a block freed once through a cleanup helper and again by
    [main]'s own error path. *)

let src =
  {|
global p 1

func main() {
entry:
  r0 = const 2
  r1 = alloc r0
  r2 = global p
  store r2[0] = r1
  call cleanup()
  jmp finish
finish:
  r3 = global p
  r4 = load r3[0]
  free r4
  halt
}

func cleanup() {
entry:
  r0 = global p
  r1 = load r0[0]
  free r1
  ret
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

let workload =
  {
    Truth.w_name = "double-free";
    w_prog = prog;
    w_bug = Truth.B_double_free;
    w_crash_config = (fun () -> Res_vm.Exec.default_config ());
    w_description = "block freed by cleanup() and again by main's exit path";
  }
