(** Index of all single-bug workloads, for tests and benchmarks. *)

let all : Truth.t list =
  [
    Fig1.workload;
    Counter_race.workload;
    Deadlock.workload;
    Uaf.workload_variant 0;
    Uaf.workload_variant 1;
    Uaf.workload_variant 2;
    Double_free.workload;
    Heap_overflow.workload_tainted;
    Heap_overflow.workload_internal;
    Div_zero.workload;
    Semantic.workload;
    Hash_construct.workload;
    Long_exec.workload_n 50;
    Kvstore.workload;
  ]

let find name =
  match List.find_opt (fun w -> String.equal w.Truth.w_name name) all with
  | Some w -> w
  | None -> invalid_arg (Fmt.str "Workloads.find: unknown workload %s" name)

let names = List.map (fun w -> w.Truth.w_name) all
