(** Bug-report corpus for the triaging experiment (paper §3.1, E4).

    A few distinct root causes each produce many failure reports whose
    crash stacks vary (input-selected accessors and call paths), plus a
    pair of distinct bugs that crash with {e identical} stacks.  This is
    the WER failure mode mix: stack-hash bucketing both fragments single
    bugs and merges distinct ones. *)

(** One bug report: the coredump plus (hidden) ground truth. *)
type report = {
  r_id : int;
  r_bug : string;  (** ground-truth bug identifier *)
  r_prog : Res_ir.Prog.t;
  r_dump : Res_vm.Coredump.t;
}

(* Two distinct bugs that fail at the *same* assert with the same stack:
   D1 corrupts the balance via an unsynchronized concurrent update; D2 is a
   sequential sign bug.  A stack-hash triager cannot tell them apart. *)

let same_stack_race_src =
  {|
global balance 1

func main() {
entry:
  r0 = spawn depositor()
  r1 = spawn depositor()
  join r0
  join r1
  jmp verify
verify:
  r2 = global balance
  r3 = load r2[0]
  r4 = const 20
  r5 = eq r3, r4
  assert r5, "balance consistent"
  halt
}

func depositor() {
entry:
  r0 = global balance
  r1 = load r0[0]
  jmp apply
apply:
  r2 = const 10
  r3 = add r1, r2
  store r0[0] = r3
  ret
}
|}

let same_stack_sign_src =
  {|
global balance 1

func main() {
entry:
  r0 = global balance
  r1 = const 10
  r2 = const 30
  r3 = sub r1, r2
  store r0[0] = r3
  jmp verify
verify:
  r2 = global balance
  r3 = load r2[0]
  r4 = const 20
  r5 = eq r3, r4
  assert r5, "balance consistent"
  halt
}
|}

let same_stack_race = Res_ir.Validate.check_exn (Res_ir.Parser.parse same_stack_race_src)
let same_stack_sign = Res_ir.Validate.check_exn (Res_ir.Parser.parse same_stack_sign_src)

let dump_of prog config =
  match Res_vm.Exec.run_to_coredump ~config prog with
  | Some dump, _ -> Some dump
  | None, _ -> None

(** Generate the corpus.  [n_per_bug] reports are drawn per root cause
    where variation is available. *)
let generate ?(n_per_bug = 4) () =
  let reports = ref [] in
  let next_id = ref 0 in
  let add r_bug r_prog dump =
    incr next_id;
    reports := { r_id = !next_id; r_bug; r_prog; r_dump = dump } :: !reports
  in
  (* Bug 1: the UAF, crashing through each accessor variant. *)
  List.iter
    (fun variant ->
      let w = Uaf.workload_variant (variant mod 3) in
      add "uaf-early-free" w.Truth.w_prog (Truth.coredump w))
    (List.init n_per_bug Fun.id);
  (* Bug 2: the heap overflow, via both call paths (tainted index varies). *)
  List.iteri
    (fun i variant ->
      let config =
        {
          (Res_vm.Exec.default_config ()) with
          oracle =
            Res_vm.Oracle.scripted
              (if variant then [ 1; 4 + (i mod 3) ] else [ 0 ]);
        }
      in
      match dump_of Heap_overflow.prog config with
      | Some dump -> add "overflow-write-cell" Heap_overflow.prog dump
      | None -> ())
    (List.init n_per_bug (fun i -> i mod 2 = 0));
  (* Bug 3: the lost-update race on the balance (same stack as bug 4). *)
  List.iter
    (fun i ->
      let config =
        {
          (Res_vm.Exec.default_config ()) with
          sched =
            Res_vm.Sched.create
              (Res_vm.Sched.Fixed
                 (if i mod 2 = 0 then [ 0; 1; 2; 1; 2; 0; 0 ]
                  else [ 0; 2; 1; 2; 1; 0; 0 ]));
        }
      in
      match dump_of same_stack_race config with
      | Some dump -> add "balance-race" same_stack_race dump
      | None -> ())
    (List.init n_per_bug Fun.id);
  (* Bug 4: the sign bug, identical crash stack to bug 3. *)
  (match dump_of same_stack_sign (Res_vm.Exec.default_config ()) with
  | Some dump -> add "balance-sign" same_stack_sign dump
  | None -> ());
  (* Bug 5: division by zero (distinct family, sanity anchor). *)
  (let w = Div_zero.workload in
   add "scale-div0" w.Truth.w_prog (Truth.coredump w));
  List.rev !reports

(** The WER-style bucket key: a hash of the crash stack positions and the
    crash-kind family — no execution analysis at all (paper §3.1). *)
let stack_hash_key (dump : Res_vm.Coredump.t) =
  let stack = Res_vm.Coredump.crash_stack dump in
  let family = Res_vm.Crash.kind_family dump.Res_vm.Coredump.crash.Res_vm.Crash.kind in
  Fmt.str "%s|%a" family
    Fmt.(
      list ~sep:(any ";") (fun ppf (f, b, i) -> Fmt.pf ppf "%s:%s:%d" f b i))
    stack
