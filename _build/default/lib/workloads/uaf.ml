(** Use-after-free with input-dependent crash stacks (paper §3.1).

    [main] allocates a block, frees it through a helper, then reads it
    back through one of three accessor functions chosen by an input.  The
    root cause (the premature [free] in [drop]) is identical across the
    three variants, but the crash stack differs — the case where naive
    stack-hash triaging fragments one bug into several buckets. *)

let src =
  {|
global p 1

func main() {
entry:
  r0 = const 4
  r1 = alloc r0
  r2 = global p
  store r2[0] = r1
  call drop()
  jmp pick
pick:
  r3 = input net
  r4 = const 3
  r5 = rem r3, r4
  r6 = const 0
  r7 = eq r5, r6
  br r7, use_a, pick2
pick2:
  r8 = const 1
  r9 = eq r5, r8
  br r9, use_b, use_c
use_a:
  r10 = call accessor_a()
  halt
use_b:
  r10 = call accessor_b()
  halt
use_c:
  r10 = call accessor_c()
  halt
}

func drop() {
entry:
  r0 = global p
  r1 = load r0[0]
  free r1
  ret
}

func accessor_a() {
entry:
  r0 = global p
  r1 = load r0[0]
  r2 = load r1[0]
  ret r2
}

func accessor_b() {
entry:
  r0 = global p
  r1 = load r0[0]
  r2 = load r1[1]
  ret r2
}

func accessor_c() {
entry:
  r0 = global p
  r1 = load r0[0]
  r2 = load r1[2]
  ret r2
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

(** [variant] in 0..2 selects the accessor and hence the crash stack. *)
let crash_config_variant variant () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ variant ];
  }

let workload_variant variant =
  {
    Truth.w_name = Fmt.str "use-after-free-%c" (Char.chr (Char.code 'a' + variant));
    w_prog = prog;
    w_bug = Truth.B_use_after_free;
    w_crash_config = crash_config_variant variant;
    w_description =
      "read of a freed heap block through an input-selected accessor";
  }

let workload = workload_variant 0
