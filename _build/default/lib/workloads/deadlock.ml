(** Lock-order-inversion deadlock: two threads acquire two mutexes in
    opposite orders; the forced schedule interleaves the first
    acquisitions, so both block and the program deadlocks (all live
    threads blocked, including [main] on its join). *)

let src =
  {|
global m1 1
global m2 1
global work 1

func main() {
entry:
  r0 = spawn left()
  r1 = spawn right()
  join r0
  join r1
  halt
}

func left() {
entry:
  r0 = global m1
  lock r0
  jmp second
second:
  r1 = global m2
  lock r1
  jmp critical
critical:
  r2 = global work
  r3 = const 1
  store r2[0] = r3
  unlock r1
  unlock r0
  ret
}

func right() {
entry:
  r0 = global m2
  lock r0
  jmp second
second:
  r1 = global m1
  lock r1
  jmp critical
critical:
  r2 = global work
  r3 = const 2
  store r2[0] = r3
  unlock r1
  unlock r0
  ret
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

let crash_config () =
  {
    (Res_vm.Exec.default_config ()) with
    sched = Res_vm.Sched.create (Res_vm.Sched.Fixed [ 0; 1; 2; 1; 2 ]);
  }

let workload =
  {
    Truth.w_name = "lock-order-deadlock";
    w_prog = prog;
    w_bug = Truth.B_deadlock;
    w_crash_config = crash_config;
    w_description = "two threads acquire m1/m2 in opposite orders and deadlock";
  }
