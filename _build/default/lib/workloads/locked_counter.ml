(** The correctly-synchronized sibling of {!Counter_race}: both workers
    hold the mutex across the read-modify-write, so the counter always
    reaches 2 and the program exits cleanly under every schedule.  Used as
    a control in tests and the triage corpus. *)

let src =
  {|
global counter 1
global m 1

func main() {
entry:
  r0 = spawn worker()
  r1 = spawn worker()
  join r0
  join r1
  jmp check
check:
  r2 = global counter
  r3 = load r2[0]
  r4 = const 2
  r5 = eq r3, r4
  assert r5, "both increments applied"
  halt
}

func worker() {
entry:
  r4 = global m
  lock r4
  r0 = global counter
  r1 = load r0[0]
  jmp upd
upd:
  r2 = const 1
  r3 = add r1, r2
  store r0[0] = r3
  unlock r4
  ret
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)
