lib/workloads/hw_fault.ml: Fmt Res_ir Res_mem Res_vm
