lib/workloads/div_zero.ml: Res_ir Res_vm Truth
