lib/workloads/uaf.ml: Char Fmt Res_ir Res_vm Truth
