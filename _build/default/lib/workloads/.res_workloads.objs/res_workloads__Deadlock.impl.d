lib/workloads/deadlock.ml: Res_ir Res_vm Truth
