lib/workloads/heap_overflow.ml: Res_ir Res_vm Truth
