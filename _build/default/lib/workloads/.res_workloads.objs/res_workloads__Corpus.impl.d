lib/workloads/corpus.ml: Div_zero Fmt Fun Heap_overflow List Res_ir Res_vm Truth Uaf
