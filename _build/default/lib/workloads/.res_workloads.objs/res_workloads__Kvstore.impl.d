lib/workloads/kvstore.ml: Fmt Res_ir Res_vm Truth
