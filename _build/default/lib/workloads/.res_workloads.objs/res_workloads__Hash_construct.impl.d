lib/workloads/hash_construct.ml: Fun List Res_ir Res_vm Truth
