lib/workloads/double_free.ml: Res_ir Res_vm Truth
