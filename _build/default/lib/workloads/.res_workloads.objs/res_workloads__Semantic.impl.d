lib/workloads/semantic.ml: Res_ir Res_vm Truth
