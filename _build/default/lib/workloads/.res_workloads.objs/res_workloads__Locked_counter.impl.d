lib/workloads/locked_counter.ml: Res_ir
