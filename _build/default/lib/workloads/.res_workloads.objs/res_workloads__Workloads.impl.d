lib/workloads/workloads.ml: Counter_race Deadlock Div_zero Double_free Fig1 Fmt Hash_construct Heap_overflow Kvstore List Long_exec Semantic String Truth Uaf
