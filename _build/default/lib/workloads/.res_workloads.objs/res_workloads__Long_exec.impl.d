lib/workloads/long_exec.ml: Fmt Res_ir Res_vm Truth
