lib/workloads/fig1.ml: Res_ir Res_vm Truth
