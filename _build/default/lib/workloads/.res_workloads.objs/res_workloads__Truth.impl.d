lib/workloads/truth.ml: Fmt Res_core Res_ir Res_vm
