lib/workloads/counter_race.ml: Res_ir Res_vm Truth
