(** Heap buffer overflow through a shared store helper.

    The store index comes either from the network ([tainted] — the
    remotely-exploitable case of paper §3.1) or from an internal
    computation that can also go out of bounds (a plain bug).  Both
    variants crash at the same pc inside [write_cell] with different
    callers, exercising both the exploitability classifier and
    stack-vs-root-cause bucketing. *)

let src =
  {|
global buf_ptr 1

func main() {
entry:
  r0 = const 4
  r1 = alloc r0
  r2 = global buf_ptr
  store r2[0] = r1
  r3 = input net
  r4 = const 2
  r5 = rem r3, r4
  br r5, from_net, from_calc
from_net:
  r6 = input net
  r7 = call write_cell(r6)
  halt
from_calc:
  r8 = const 3
  r9 = const 2
  r10 = mul r8, r9
  r11 = call write_cell(r10)
  halt
}

func write_cell(r0) {
entry:
  r1 = global buf_ptr
  r2 = load r1[0]
  r3 = add r2, r0
  r4 = const 7
  store r3[0] = r4
  ret r4
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

(** Tainted variant: branch to [from_net], then an out-of-bounds index
    straight from the network. *)
let crash_config_tainted () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 1; 4 ];
  }

(** Internal variant: the locally-computed index 6 is out of bounds too. *)
let crash_config_internal () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 0 ];
  }

let workload_tainted =
  {
    Truth.w_name = "heap-overflow-tainted";
    w_prog = prog;
    w_bug = Truth.B_buffer_overflow;
    w_crash_config = crash_config_tainted;
    w_description = "heap overflow with an attacker-controlled index";
  }

let workload_internal =
  {
    Truth.w_name = "heap-overflow-internal";
    w_prog = prog;
    w_bug = Truth.B_buffer_overflow;
    w_crash_config = crash_config_internal;
    w_description = "heap overflow with an internally-computed index";
  }

let workload = workload_tainted
