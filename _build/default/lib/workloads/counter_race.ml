(** Classic lost-update data race (paper §4's "synthetic concurrency
    bugs").

    Two worker threads perform read / (reschedule point) / increment-write
    on a shared counter without holding the lock.  Under racy interleaving
    one update is lost and [main]'s assertion fails.  The root cause — the
    unsynchronized read-modify-write — is what RES must reconstruct. *)

let src =
  {|
global counter 1

func main() {
entry:
  r0 = spawn worker()
  r1 = spawn worker()
  join r0
  join r1
  jmp check
check:
  r2 = global counter
  r3 = load r2[0]
  r4 = const 2
  r5 = eq r3, r4
  assert r5, "both increments applied"
  halt
}

func worker() {
entry:
  r0 = global counter
  r1 = load r0[0]
  jmp upd
upd:
  r2 = const 1
  r3 = add r1, r2
  store r0[0] = r3
  ret
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

(** A fixed schedule that interleaves the two workers' read and write
    segments: t1 reads, t2 reads, t1 writes, t2 writes — one update lost. *)
let crash_config () =
  {
    (Res_vm.Exec.default_config ()) with
    sched = Res_vm.Sched.create (Res_vm.Sched.Fixed [ 0; 1; 2; 1; 2; 0; 0 ]);
  }

let workload =
  {
    Truth.w_name = "counter-race";
    w_prog = prog;
    w_bug = Truth.B_atomicity;
    w_crash_config = crash_config;
    w_description =
      "lost-update race on a shared counter; assertion in main observes the \
       corrupted value";
  }
