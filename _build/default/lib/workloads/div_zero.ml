(** Input-dependent division by zero inside a callee: the crash pc sits in
    [scale], one call deep, so the suffix's first backward step must match
    a two-frame stack. *)

let src =
  {|
global total 1

func main() {
entry:
  r0 = const 100
  r1 = input net
  r2 = call scale(r0, r1)
  r3 = global total
  store r3[0] = r2
  halt
}

func scale(r0, r1) {
entry:
  r2 = div r0, r1
  ret r2
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

let crash_config () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 0 ];
  }

let workload =
  {
    Truth.w_name = "div-by-zero";
    w_prog = prog;
    w_bug = Truth.B_div_by_zero;
    w_crash_config = crash_config;
    w_description = "division by a zero network input, one call deep";
  }
