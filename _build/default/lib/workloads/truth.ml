(** Ground truth for workloads: what bug a generated program contains.

    Benchmarks compare RES's classification against this; the generator
    knows the answer, RES only sees program + coredump. *)

type bug_class =
  | B_data_race
  | B_atomicity
  | B_use_after_free
  | B_buffer_overflow
  | B_double_free
  | B_deadlock
  | B_div_by_zero
  | B_semantic  (** assertion/logic bug with no memory or concurrency error *)
  | B_hardware  (** no software bug: the coredump was corrupted by hardware *)

let bug_class_name = function
  | B_data_race -> "data-race"
  | B_atomicity -> "atomicity-violation"
  | B_use_after_free -> "use-after-free"
  | B_buffer_overflow -> "buffer-overflow"
  | B_double_free -> "double-free"
  | B_deadlock -> "deadlock"
  | B_div_by_zero -> "div-by-zero"
  | B_semantic -> "semantic"
  | B_hardware -> "hardware"

(** Whether a RES classification matches the ground truth.  Data races and
    atomicity violations overlap deliberately: an atomicity violation {e is}
    reported when the interleaving also constitutes the injected race, and
    either is a correct concurrency diagnosis for the other class. *)
let matches bug (cause : Res_core.Rootcause.t) =
  match (bug, cause) with
  | B_data_race, (Res_core.Rootcause.Data_race _ | Res_core.Rootcause.Atomicity_violation _)
  | B_atomicity, (Res_core.Rootcause.Atomicity_violation _ | Res_core.Rootcause.Data_race _)
    ->
      true
  | B_use_after_free, Res_core.Rootcause.Use_after_free_cause _ -> true
  | B_buffer_overflow, Res_core.Rootcause.Buffer_overflow_cause _ -> true
  | B_double_free, Res_core.Rootcause.Double_free_cause _ -> true
  | B_deadlock, Res_core.Rootcause.Deadlock_cause _ -> true
  | B_div_by_zero, Res_core.Rootcause.Division_by_zero_cause _ -> true
  | B_semantic, (Res_core.Rootcause.Assertion_cause _ | Res_core.Rootcause.Abort_cause _)
    ->
      true
  | _, _ -> false

(** A workload: a program, how to crash it, and what the answer is. *)
type t = {
  w_name : string;
  w_prog : Res_ir.Prog.t;
  w_bug : bug_class;
  w_crash_config : unit -> Res_vm.Exec.config;
      (** a configuration under which the program deterministically crashes *)
  w_description : string;
}

(** Run the workload to its coredump.
    @raise Failure if the program does not crash under its crash config. *)
let coredump w =
  match Res_vm.Exec.run_to_coredump ~config:(w.w_crash_config ()) w.w_prog with
  | Some dump, _ -> dump
  | None, _ -> failwith (Fmt.str "workload %s did not crash" w.w_name)
