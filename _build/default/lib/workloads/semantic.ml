(** A purely semantic bug (paper §3.3: "even semantic bugs can be
    reproduced"): the discount computation subtracts the wrong operand, so
    an internal consistency assertion fails with no memory or concurrency
    error anywhere. *)

let src =
  {|
global price 1

func main() {
entry:
  r0 = const 100
  r1 = const 15
  r2 = sub r1, r0
  r3 = global price
  store r3[0] = r2
  jmp check
check:
  r4 = global price
  r5 = load r4[0]
  r6 = const 0
  r7 = gt r5, r6
  assert r7, "price stays positive"
  halt
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

let workload =
  {
    Truth.w_name = "semantic-discount";
    w_prog = prog;
    w_bug = Truth.B_semantic;
    w_crash_config = (fun () -> Res_vm.Exec.default_config ());
    w_description = "operand-order bug makes a price negative; assert fails";
  }
