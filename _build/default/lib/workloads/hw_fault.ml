(** Hardware-error workloads (paper §3.2, experiment E5).

    Each case is a {e correct} program whose coredump was corrupted by an
    injected hardware fault: a DRAM bit flip in a global, or a CPU ALU
    miscomputation.  No execution of the program can produce these dumps,
    which is exactly what RES detects — no suffix extends to the program
    start.  The software twins crash with superficially identical failures
    (same assert) caused by real bugs, and must {e not} be flagged. *)

(** A correct program: writes 4 to [flag], later asserts it is still 4.
    Crashes only if the dump is corrupted. *)
let mem_victim_src =
  {|
global flag 1

func main() {
entry:
  r0 = global flag
  r1 = const 4
  store r0[0] = r1
  jmp spin
spin:
  r2 = const 0
  jmp check
check:
  r3 = global flag
  r4 = load r3[0]
  r5 = const 4
  r6 = eq r4, r5
  assert r6, "flag intact"
  halt
}
|}

let mem_victim = Res_ir.Validate.check_exn (Res_ir.Parser.parse mem_victim_src)

(** DRAM fault: flip bit [bit] of [flag] between the write and the check. *)
let mem_fault_config ~bit () =
  let layout = Res_mem.Layout.of_prog mem_victim in
  let addr = Res_mem.Layout.global_base layout "flag" in
  {
    (Res_vm.Exec.default_config ()) with
    fault = Res_vm.Fault.bit_flip ~step:5 ~addr ~bit;
  }

(** The software twin: [flag] legitimately gets an input value, so a dump
    with a wrong flag value has a perfectly feasible software explanation. *)
let mem_twin_src =
  {|
global flag 1

func main() {
entry:
  r0 = global flag
  r1 = input net
  store r0[0] = r1
  jmp spin
spin:
  r2 = const 0
  jmp check
check:
  r3 = global flag
  r4 = load r3[0]
  r5 = const 4
  r6 = eq r4, r5
  assert r6, "flag intact"
  halt
}
|}

let mem_twin = Res_ir.Validate.check_exn (Res_ir.Parser.parse mem_twin_src)

let mem_twin_config () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 5 ];
  }

(** CPU-fault victim: computes 2+2 and asserts on the register directly —
    the paper's own example ("RES retrieves the result and the operands
    from the coredump, and on all possible suffixes it obtains a different
    result for the addition").  The ALU fault makes the addition yield 5. *)
let cpu_victim_src =
  {|
func main() {
entry:
  r0 = const 2
  r1 = const 2
  r2 = add r0, r1
  jmp check
check:
  r6 = const 4
  r7 = eq r2, r6
  assert r7, "addition is correct"
  halt
}
|}

let cpu_victim = Res_ir.Validate.check_exn (Res_ir.Parser.parse cpu_victim_src)

let cpu_fault_config () =
  {
    (Res_vm.Exec.default_config ()) with
    fault = Res_vm.Fault.alu_error ~step:2 ~delta:1;
  }

(** Software twin of the CPU case: the summand comes from an input, so a
    wrong sum is a feasible software outcome. *)
let cpu_twin_src =
  {|
func main() {
entry:
  r0 = const 2
  r1 = input net
  r2 = add r0, r1
  jmp check
check:
  r6 = const 4
  r7 = eq r2, r6
  assert r7, "addition is correct"
  halt
}
|}

let cpu_twin = Res_ir.Validate.check_exn (Res_ir.Parser.parse cpu_twin_src)

let cpu_twin_config () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 3 ];
  }

(** One E5 case: a program + crash config + whether hardware is to blame. *)
type case = {
  c_name : string;
  c_prog : Res_ir.Prog.t;
  c_config : unit -> Res_vm.Exec.config;
  c_hardware : bool;
}

let cases =
  [
    {
      c_name = "dram-bit-flip-b0";
      c_prog = mem_victim;
      c_config = mem_fault_config ~bit:0;
      c_hardware = true;
    };
    {
      c_name = "dram-bit-flip-b1";
      c_prog = mem_victim;
      c_config = mem_fault_config ~bit:1;
      c_hardware = true;
    };
    {
      c_name = "dram-bit-flip-b3";
      c_prog = mem_victim;
      c_config = mem_fault_config ~bit:3;
      c_hardware = true;
    };
    {
      c_name = "cpu-alu-miscompute";
      c_prog = cpu_victim;
      c_config = cpu_fault_config;
      c_hardware = true;
    };
    {
      c_name = "software-bad-input-flag";
      c_prog = mem_twin;
      c_config = mem_twin_config;
      c_hardware = false;
    };
    {
      c_name = "software-bad-input-sum";
      c_prog = cpu_twin;
      c_config = cpu_twin_config;
      c_hardware = false;
    };
  ]

let coredump_of_case c =
  match Res_vm.Exec.run_to_coredump ~config:(c.c_config ()) c.c_prog with
  | Some dump, _ -> dump
  | None, _ -> failwith (Fmt.str "hw case %s did not crash" c.c_name)
