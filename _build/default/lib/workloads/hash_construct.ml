(** Hard-to-invert construct (paper §6): the suffix crosses a hash
    computation.

    [mix] is a multiply/xor avalanche — reverse-analyzing it is hopeless,
    but its {e input} is still in memory (global [seed]), so RES can
    re-execute it forward (mid-block call inlining) instead of inverting
    it.  With inlining disabled (the E7 ablation) the backward walk cannot
    get past the [compute] block. *)

let src =
  {|
global seed 1
global digest 1

func main() {
entry:
  r0 = input net
  r1 = global seed
  store r1[0] = r0
  jmp compute
compute:
  r2 = global seed
  r3 = load r2[0]
  r4 = call mix(r3)
  r5 = global digest
  store r5[0] = r4
  jmp check
check:
  r6 = global digest
  r7 = load r6[0]
  r8 = const 0
  r9 = ge r7, r8
  assert r9, "digest in range"
  halt
}

func mix(r0) {
entry:
  r1 = const 2654435761
  r2 = mul r0, r1
  r3 = const 16
  r4 = shr r2, r3
  r5 = xor r2, r4
  r6 = const 127
  r7 = and r5, r6
  r8 = const 64
  r9 = sub r7, r8
  ret r9
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

(** Input 3 hashes to a negative digest, failing the range assert. *)
let crash_config () =
  let crashes v =
    let config =
      {
        (Res_vm.Exec.default_config ()) with
        oracle = Res_vm.Oracle.scripted [ v ];
      }
    in
    match (Res_vm.Exec.run ~config prog).Res_vm.Exec.outcome with
    | Res_vm.Exec.Crashed _ -> true
    | _ -> false
  in
  let v =
    match List.find_opt crashes (List.init 64 Fun.id) with
    | Some v -> v
    | None -> failwith "hash workload: no crashing input below 64"
  in
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ v ];
  }

let workload =
  {
    Truth.w_name = "hash-construct";
    w_prog = prog;
    w_bug = Truth.B_semantic;
    w_crash_config = crash_config;
    w_description =
      "assert on a hash output; the suffix must cross the hash by forward \
       re-execution";
  }
