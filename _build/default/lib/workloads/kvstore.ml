(** A miniature key-value store node — the "datacenter application" setting
    the paper's introduction motivates (debugging such systems with
    always-on recording is impractical; RES needs only the coredump).

    [n_workers] request handlers each apply [ops_per_worker] PUT requests
    from the network: key and value arrive as inputs, the table slot update
    is properly protected by the store lock — but the statistics counter
    [size] is bumped {e outside} the critical section, the classic
    "statistics are not worth a lock" mistake.  A supervisor assertion
    cross-checks the counter after the workers drain, and under an unlucky
    schedule the lost update fires it.

    The table update in [body] writes through an input-derived address
    ([table + 2*(key mod slots)]), exercising RES's pointer concretization
    against the coredump. *)

let slots = 8

let src ~ops_per_worker =
  Fmt.str
    {|
global table %d
global size 1
global m 1

func main() {
entry:
  r0 = spawn handler()
  r1 = spawn handler()
  join r0
  join r1
  jmp audit
audit:
  r2 = global size
  r3 = load r2[0]
  r4 = const %d
  r5 = eq r3, r4
  assert r5, "size matches applied operations"
  halt
}

func handler() {
entry:
  r0 = const %d
  jmp loop
loop:
  br r0, body, done
body:
  # receive PUT(key, value) from the network
  r1 = input net
  r2 = const %d
  r3 = rem r1, r2
  r4 = input net
  # slot address: table + 2*(key mod slots)
  r5 = global table
  r6 = const 2
  r7 = mul r3, r6
  r8 = add r5, r7
  # the table itself is properly locked...
  r9 = global m
  lock r9
  store r8[0] = r1
  store r8[1] = r4
  unlock r9
  jmp bump
bump:
  # ...but the statistics counter is updated outside the lock (the bug)
  r10 = global size
  r11 = load r10[0]
  jmp bump2
bump2:
  r12 = const 1
  r13 = add r11, r12
  store r10[0] = r13
  r0 = sub r0, r12
  jmp loop
done:
  ret
}
|}
    (2 * slots) (2 * ops_per_worker) ops_per_worker slots

let make ~ops_per_worker =
  Res_ir.Validate.check_exn (Res_ir.Parser.parse (src ~ops_per_worker))

let prog = make ~ops_per_worker:1

(** A schedule interleaving the two handlers' counter reads and writes:
    both read [size] before either writes it back — one PUT vanishes from
    the statistics. *)
let crash_config () =
  {
    (Res_vm.Exec.default_config ()) with
    sched =
      Res_vm.Sched.create
        (Res_vm.Sched.Fixed [ 0; 1; 2; 1; 2; 1; 2; 1; 2; 1; 2; 0; 0 ]);
    oracle = Res_vm.Oracle.scripted [ 3; 41; 5; 77 ];
  }

let workload =
  {
    Truth.w_name = "kvstore-stats-race";
    w_prog = prog;
    w_bug = Truth.B_atomicity;
    w_crash_config = crash_config;
    w_description =
      "key-value store node: table updates locked, statistics counter \
       updated outside the lock; supervisor audit fails";
  }
