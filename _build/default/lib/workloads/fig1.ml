(** The paper's Figure 1 program: a buffer overflow whose crash block has
    two CFG predecessors, only one of which is consistent with the
    coredump.

    [Pred1] sets [x = 1], [Pred2] sets [x = 2]; the coredump records
    [x = 1], so RES must keep the suffix through [Pred1] and discard the
    one through [Pred2].  The overflow itself writes one word past the end
    of [buffer] — index 4 of a 4-word global — landing on the guard word. *)

let src =
  {|
global buffer 4
global x 1
global y 1

func main() {
entry:
  r0 = input net
  r1 = const 2
  r2 = rem r0, r1
  r3 = global y
  r4 = input net
  store r3[0] = r4
  br r2, pred1, pred2
pred1:
  r5 = global x
  r6 = const 1
  store r5[0] = r6
  jmp merge
pred2:
  r5 = global x
  r6 = const 2
  store r5[0] = r6
  jmp merge
merge:
  r7 = global y
  r8 = load r7[0]
  r9 = global buffer
  r10 = add r9, r8
  r11 = const 1
  store r10[0] = r11
  halt
}
|}

let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

(** Inputs: first picks the branch (odd -> pred1), second is the store
    index.  [y = 4] is exactly one past the buffer: the overflow. *)
let crash_config () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 1; 4 ];
  }

let workload =
  {
    Truth.w_name = "fig1-overflow";
    w_prog = prog;
    w_bug = Truth.B_buffer_overflow;
    w_crash_config = crash_config;
    w_description =
      "Figure 1: global buffer overflow with an ambiguous predecessor; the \
       coredump value of x disambiguates";
  }
