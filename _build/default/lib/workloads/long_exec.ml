(** Parameterized long executions (the paper's title claim, experiment E3).

    The program busy-loops for [n] iterations — each iteration writing a
    scratch global — and only then performs a division by a network input,
    which the crash config scripts to zero.  The root cause sits a couple
    of blocks from the failure regardless of [n], so RES's suffix work is
    constant in [n], while whole-execution (forward) synthesis must drag
    itself through all [n] iterations. *)

let make n =
  let src =
    Fmt.str
      {|
global scratch 1
global total 1

func main() {
entry:
  r0 = const %d
  jmp loop
loop:
  r1 = global scratch
  r2 = load r1[0]
  r3 = const 1
  r4 = add r2, r3
  store r1[0] = r4
  r5 = sub r0, r3
  r0 = mov r5
  br r0, loop, work
work:
  r6 = input net
  r7 = const 1000
  r8 = div r7, r6
  r9 = global total
  store r9[0] = r8
  halt
}
|}
      n
  in
  Res_ir.Validate.check_exn (Res_ir.Parser.parse src)

let crash_config () =
  {
    (Res_vm.Exec.default_config ()) with
    oracle = Res_vm.Oracle.scripted [ 0 ];
    max_steps = 100_000_000;
  }

let workload_n n =
  {
    Truth.w_name = Fmt.str "long-exec-%d" n;
    w_prog = make n;
    w_bug = Truth.B_div_by_zero;
    w_crash_config = crash_config;
    w_description =
      Fmt.str "division by zero after %d busy-loop iterations" n;
  }

let workload = workload_n 100
