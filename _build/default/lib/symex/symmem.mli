(** Symbolic memory for one forward block execution.

    The executor never sees the post-state directly: a read of an address
    that this execution has not yet written mints a fresh "pre-memory"
    symbol [v_a] and records it.  The backward stepper later ties those
    symbols to the post-state ([v_a = Spost(a)] for addresses the block
    never overwrites) — exactly the read/write rule of paper §2.4. *)

type t

val empty : t

(** [read m a] — the current value at [a], minting a pre symbol on a first
    read-before-write.  Returns the value and the updated memory. *)
val read : t -> int -> Res_solver.Expr.t * t

(** Record a write. *)
val write : t -> int -> Res_solver.Expr.t -> t

(** Addresses written by this execution (deduplicated, ascending). *)
val written_addrs : t -> int list

(** Final value of every written address. *)
val final_writes : t -> (int * Res_solver.Expr.t) list

(** Pre-state symbols minted, as [(addr, sym)], ascending by address. *)
val pre_syms : t -> (int * Res_solver.Expr.sym) list

(** Whether the address was written at some point by this execution. *)
val was_written : t -> int -> bool
