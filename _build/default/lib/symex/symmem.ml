(** Symbolic memory for one forward block execution.

    The executor never sees the post-state directly: a read of an address
    that this execution has not yet written mints a fresh "pre-memory"
    symbol [v_a] and records it.  The backward stepper later ties those
    symbols to the post-state ([v_a = Spost(a)] for addresses the block
    never overwrites) — exactly the read/write rule of paper §2.4. *)

module IMap = Map.Make (Int)

type t = {
  over : Res_solver.Expr.t IMap.t;  (** writes made by this execution *)
  pre : Res_solver.Expr.sym IMap.t;  (** lazily minted pre-state symbols *)
  writes : IMap.key list;  (** addresses written, most recent first *)
}

let empty = { over = IMap.empty; pre = IMap.empty; writes = [] }

(** [read m a] — the current value at [a], minting a pre symbol on a first
    read-before-write.  Returns the value and the updated memory. *)
let read m a =
  match IMap.find_opt a m.over with
  | Some e -> (e, m)
  | None -> (
      match IMap.find_opt a m.pre with
      | Some s -> (Res_solver.Expr.Sym s, m)
      | None ->
          let s = Res_solver.Expr.fresh_sym (Fmt.str "pre:mem[0x%x]" a) in
          (Res_solver.Expr.Sym s, { m with pre = IMap.add a s m.pre }))

let write m a e = { m with over = IMap.add a e m.over; writes = a :: m.writes }

(** Addresses written by this execution (deduplicated, ascending). *)
let written_addrs m = List.sort_uniq compare m.writes

(** Final value of every written address. *)
let final_writes m =
  List.map (fun a -> (a, IMap.find a m.over)) (written_addrs m)

(** Pre-state symbols minted, as [(addr, sym)], ascending by address. *)
let pre_syms m = IMap.bindings m.pre

(** Whether [a] was written at some point by this execution. *)
let was_written m a = IMap.mem a m.over
