(** Symbolic activation frames: like {!Res_vm.Frame} but registers hold
    expressions.  The [lazy_pre] flag marks the frame whose unknown
    registers stand for the pre-block state being reconstructed (paper
    §2.4): reading an unset register there mints a fresh "pre" symbol
    instead of the zero a freshly-entered concrete frame would have. *)

module IMap = Map.Make (Int)

type t = {
  func : string;
  block : Res_ir.Instr.label;
  idx : int;
  regs : Res_solver.Expr.t IMap.t;
  ret_reg : Res_ir.Instr.reg option;
  lazy_pre : bool;
}

(** Frame for a freshly-entered callee: arguments bound, other registers
    zero-initialized (concrete semantics). *)
let enter (f : Res_ir.Func.t) ~args ~ret_reg =
  let regs =
    List.fold_left2 (fun m p a -> IMap.add p a m) IMap.empty f.params args
  in
  { func = f.name; block = f.entry; idx = 0; regs; ret_reg; lazy_pre = false }

(** Frame representing the top of the unknown pre-state: positioned at the
    start of [block] in [func]; [seed] provides the optimistic/known values
    for registers untouched by the block. *)
let pre_frame ~func ~block ~seed =
  {
    func;
    block;
    idx = 0;
    regs = seed;
    ret_reg = None;
    lazy_pre = true;
  }

let read_opt fr r = IMap.find_opt r fr.regs
let write fr r e = { fr with regs = IMap.add r e fr.regs }
let advance fr = { fr with idx = fr.idx + 1 }
let goto fr label = { fr with block = label; idx = 0 }
let pc fr = Res_ir.Pc.v ~func:fr.func ~block:fr.block ~idx:fr.idx
let reg_bindings fr = IMap.bindings fr.regs
