lib/symex/symmem.mli: Res_solver
