lib/symex/symframe.ml: Int List Map Res_ir Res_solver
