lib/symex/symexec.ml: Expr Fmt Int List Map Res_ir Res_mem Res_solver Res_vm Set Simplify Solver String Symframe Symmem
