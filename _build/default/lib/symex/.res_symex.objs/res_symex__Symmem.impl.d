lib/symex/symmem.ml: Fmt Int List Map Res_solver
