(** Expression simplification: bottom-up constant folding and algebraic
    rewriting.  [norm] is idempotent and preserves the concrete semantics of
    the expression on every assignment (property-tested). *)

open Expr

let is_cmp (op : Res_ir.Instr.binop) =
  match op with
  | Res_ir.Instr.Eq | Ne | Lt | Le | Gt | Ge -> true
  | _ -> false

(** Whether [e] is known to evaluate to 0 or 1 (comparisons and [Not]). *)
let rec is_boolean = function
  | Const (0 | 1) -> true
  | Binop (op, _, _) -> is_cmp op
  | Unop (Res_ir.Instr.Not, _) -> true
  | Ite (_, a, b) -> is_boolean a && is_boolean b
  | Const _ | Sym _ | Unop _ -> false

let rec norm e =
  match e with
  | Const _ | Sym _ -> e
  | Unop (op, a) -> norm_unop op (norm a)
  | Binop (op, a, b) -> norm_binop op (norm a) (norm b)
  | Ite (c, a, b) -> (
      match norm c with
      | Const 0 -> norm b
      | Const _ -> norm a
      | c' ->
          let a' = norm a and b' = norm b in
          if equal a' b' then a' else Ite (c', a', b'))

and norm_unop op a =
  match (op, a) with
  | _, Const n -> Const (Res_ir.Instr.eval_unop op n)
  | Res_ir.Instr.Neg, Unop (Res_ir.Instr.Neg, x) -> x
  | Res_ir.Instr.Not, x when is_boolean x -> (
      (* not(not(b)) = b only for 0/1-valued b *)
      match x with
      | Unop (Res_ir.Instr.Not, y) when is_boolean y -> y
      | _ -> Unop (op, x))
  | _ -> Unop (op, a)

and norm_binop op a b =
  let open Res_ir.Instr in
  match (op, a, b) with
  (* Division by a constant zero is a trap, never folded. *)
  | (Div | Rem), _, Const 0 -> Binop (op, a, b)
  | _, Const x, Const y -> Const (eval_binop op x y)
  (* Commutative operators: constant to the right. *)
  | (Add | Mul | And | Or | Xor), Const _, _ -> norm_binop op b a
  (* Additive identities. *)
  | Add, x, Const 0 -> x
  | Sub, x, Const 0 -> x
  | Sub, Const 0, x -> norm_unop Neg x
  | Sub, x, y when equal x y -> Const 0
  (* Multiplicative identities and absorbers. *)
  | Mul, x, Const 1 -> x
  | Mul, _, Const 0 -> Const 0
  | Div, x, Const 1 -> x
  (* Bitwise identities. *)
  | And, _, Const 0 -> Const 0
  | (Or | Xor), x, Const 0 -> x
  | And, x, y when equal x y -> x
  | Or, x, y when equal x y -> x
  | Xor, x, y when equal x y -> Const 0
  (* Shifts by zero. *)
  | (Shl | Shr), x, Const 0 -> x
  (* Reflexive comparisons (deterministic subexpressions). *)
  | Eq, x, y when equal x y -> Const 1
  | (Ne | Lt | Gt), x, y when equal x y -> Const 0
  | (Le | Ge), x, y when equal x y -> Const 1
  (* Constant drift: ((x + c1) + c2) -> x + (c1+c2), same for Sub mixes. *)
  | Add, Binop (Add, x, Const c1), Const c2 -> norm_binop Add x (Const (c1 + c2))
  | Add, Binop (Sub, x, Const c1), Const c2 -> norm_binop Sub x (Const (c1 - c2))
  | Sub, Binop (Add, x, Const c1), Const c2 -> norm_binop Add x (Const (c1 - c2))
  | Sub, Binop (Sub, x, Const c1), Const c2 -> norm_binop Sub x (Const (c1 + c2))
  (* Comparison with shifted operand: (x + c1) `cmp` c2 -> x `cmp` c2-c1. *)
  | cmp, Binop (Add, x, Const c1), Const c2 when is_cmp cmp ->
      norm_binop cmp x (Const (c2 - c1))
  | cmp, Binop (Sub, x, Const c1), Const c2 when is_cmp cmp ->
      norm_binop cmp x (Const (c2 + c1))
  | _ -> Binop (op, a, b)

(** Normalize a constraint (an expression asserted nonzero):
    [Ne (x, 0)] and [Not (Not x)]-style wrappers collapse to [x]. *)
let rec norm_constraint e =
  match norm e with
  | Binop (Res_ir.Instr.Ne, x, Const 0) -> norm_constraint x
  | Binop (Res_ir.Instr.Eq, Const 0, x) when is_boolean x ->
      (* (0 = b) asserted nonzero means b is false *)
      norm (logical_not x)
  | Binop (Res_ir.Instr.Eq, x, Const 0) when is_boolean x ->
      norm (logical_not x)
  | e' -> e'
