(** Satisfying assignments.

    A model maps symbolic variables to concrete words; variables absent
    from the map are unconstrained and read as 0.  RES turns models into
    replayable artifacts: the values of input variables become the scripted
    oracle, and the values of havocked pre-state variables fill in the
    initial memory image [Mi]. *)

type t

(** The empty model (everything reads 0). *)
val empty : t

val add : Expr.sym -> int -> t -> t

(** Value of a variable (0 when unconstrained). *)
val value : t -> Expr.sym -> int

val mem : t -> Expr.sym -> bool

(** Bindings as [(sym id, value)], ascending by id. *)
val bindings : t -> (int * int) list

(** Evaluate an expression under the model.
    @raise Division_by_zero if the model divides by zero. *)
val eval : t -> Expr.t -> int

(** Whether the expression evaluates to nonzero (constraint satisfaction);
    a division by zero counts as unsatisfied. *)
val satisfies : t -> Expr.t -> bool

val pp : Format.formatter -> t -> unit
