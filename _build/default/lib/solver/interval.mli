(** Integer intervals with saturating arithmetic.

    The abstract domain behind the solver's propagation phase.  Bounds at
    or beyond the sentinels {!inf_pos}/{!inf_neg} mean "unbounded on that
    side"; all arithmetic saturates there, so overflow never wraps. *)

(** The +infinity sentinel. *)
val inf_pos : int

(** The -infinity sentinel. *)
val inf_neg : int

type t = { lo : int; hi : int }

(** The unbounded interval. *)
val top : t

val of_const : int -> t
val v : int -> int -> t

(** Empty when [lo > hi]. *)
val is_empty : t -> bool

(** Exactly one value. *)
val is_const : t -> bool

(** Membership; sentinel bounds behave as infinities. *)
val contains : t -> int -> bool

(** Number of integers in the interval; [None] when unbounded. *)
val size : t -> int option

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val inter : t -> t -> t
val union : t -> t -> t

(** The interval of any comparison result: [0..1]. *)
val bool_range : t

(** Sound abstract transfer for each MiniIR binary operator. *)
val of_binop : Res_ir.Instr.binop -> t -> t -> t

(** Sound abstract transfer for each MiniIR unary operator. *)
val of_unop : Res_ir.Instr.unop -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
