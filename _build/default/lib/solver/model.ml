(** Satisfying assignments.

    A model maps symbolic variables to concrete words; variables absent
    from the map are unconstrained and read as 0.  RES turns models into
    replayable artifacts: the values of [input] variables become the
    scripted oracle, and the values of havocked pre-state variables fill in
    the initial memory image [Mi]. *)

module IMap = Map.Make (Int)

type t = int IMap.t

let empty : t = IMap.empty

let add (s : Expr.sym) v (m : t) : t = IMap.add s.id v m

(** Value of [s] in the model (0 when unconstrained). *)
let value (m : t) (s : Expr.sym) =
  match IMap.find_opt s.id m with Some v -> v | None -> 0

let mem (m : t) (s : Expr.sym) = IMap.mem s.id m

let bindings (m : t) = IMap.bindings m

(** Evaluate [e] under the model (unconstrained variables read as 0).
    @raise Division_by_zero if the model divides by zero. *)
let eval (m : t) e = Expr.eval (fun s -> value m s) e

(** Whether [e] evaluates to nonzero (constraint satisfaction); a division
    by zero counts as unsatisfied. *)
let satisfies (m : t) e =
  match eval m e with v -> v <> 0 | exception Division_by_zero -> false

let pp ppf (m : t) =
  let pp_binding ppf (id, v) = Fmt.pf ppf "#%d=%d" id v in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:sp pp_binding) (bindings m)
