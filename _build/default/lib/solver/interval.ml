(** Integer intervals with saturating arithmetic.

    The abstract domain behind the solver's propagation phase.  [min_int/4]
    and [max_int/4] act as -inf/+inf sentinels; all arithmetic saturates at
    those bounds, so overflow never wraps. *)

let inf_pos = max_int / 4
let inf_neg = min_int / 4

type t = { lo : int; hi : int }

let top = { lo = inf_neg; hi = inf_pos }
let of_const n = { lo = n; hi = n }
let v lo hi = { lo; hi }
let is_empty t = t.lo > t.hi
let is_const t = t.lo = t.hi
(* Sentinel bounds mean "unbounded on that side": a word produced by e.g. a
   large shift may exceed the sentinel magnitude and must still be inside
   top. *)
let contains t n =
  (t.lo <= inf_neg || n >= t.lo) && (t.hi >= inf_pos || n <= t.hi)

(** Number of integers in the interval; [None] when effectively unbounded. *)
let size t =
  if is_empty t then Some 0
  else if t.lo <= inf_neg || t.hi >= inf_pos then None
  else Some (t.hi - t.lo + 1)

let clamp n = if n > inf_pos then inf_pos else if n < inf_neg then inf_neg else n

let sat_add a b = clamp (a + b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else
    let sign = if (a > 0) = (b > 0) then 1 else -1 in
    let abs_a = abs a and abs_b = abs b in
    if abs_a > inf_pos / abs_b then if sign > 0 then inf_pos else inf_neg
    else clamp (a * b)

let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let sub a b = { lo = sat_add a.lo (-b.hi); hi = sat_add a.hi (-b.lo) }
let neg a = { lo = clamp (-a.hi); hi = clamp (-a.lo) }

let mul a b =
  let products =
    [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo; sat_mul a.hi b.hi ]
  in
  {
    lo = List.fold_left min inf_pos products;
    hi = List.fold_left max inf_neg products;
  }

let inter a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }
let union a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(** Interval of a comparison result — always within [0,1]. *)
let bool_range = { lo = 0; hi = 1 }

(** Abstract transfer for each MiniIR binop.  Conservative (over-
    approximating): bitwise operators and shifts mostly go to top. *)
let of_binop (op : Res_ir.Instr.binop) a b =
  let open Res_ir.Instr in
  let certainly p = if p then of_const 1 else of_const 0 in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div | Rem ->
      (* Magnitude of a quotient/remainder never exceeds the dividend's. *)
      let m = max (abs a.lo) (abs a.hi) in
      { lo = clamp (-m); hi = clamp m }
  | And ->
      if a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = min a.hi b.hi } else top
  | Or | Xor -> if a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = inf_pos } else top
  | Shl | Shr -> top
  | Eq ->
      if is_const a && is_const b then certainly (a.lo = b.lo)
      else if is_empty (inter a b) then of_const 0
      else bool_range
  | Ne ->
      if is_const a && is_const b then certainly (a.lo <> b.lo)
      else if is_empty (inter a b) then of_const 1
      else bool_range
  | Lt ->
      if a.hi < b.lo then of_const 1
      else if a.lo >= b.hi then of_const 0
      else bool_range
  | Le ->
      if a.hi <= b.lo then of_const 1
      else if a.lo > b.hi then of_const 0
      else bool_range
  | Gt ->
      if a.lo > b.hi then of_const 1
      else if a.hi <= b.lo then of_const 0
      else bool_range
  | Ge ->
      if a.lo >= b.hi then of_const 1
      else if a.hi < b.lo then of_const 0
      else bool_range

let of_unop (op : Res_ir.Instr.unop) a =
  match op with
  | Res_ir.Instr.Neg -> neg a
  | Res_ir.Instr.Not ->
      if is_const a then of_const (if a.lo = 0 then 1 else 0)
      else if not (contains a 0) then of_const 0
      else bool_range

let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let pp ppf t =
  if is_empty t then Fmt.string ppf "[empty]"
  else
    let pp_bound ppf n =
      if n >= inf_pos then Fmt.string ppf "+inf"
      else if n <= inf_neg then Fmt.string ppf "-inf"
      else Fmt.int ppf n
    in
    Fmt.pf ppf "[%a,%a]" pp_bound t.lo pp_bound t.hi
