(** Expression simplification.

    [norm] performs bottom-up constant folding and algebraic rewriting; it
    is idempotent and preserves the concrete semantics of the expression on
    every assignment (property-tested).  Division by a constant zero is a
    trap and is never folded. *)

(** Whether the operator yields only 0/1. *)
val is_cmp : Res_ir.Instr.binop -> bool

(** Whether the expression is known to evaluate to 0 or 1. *)
val is_boolean : Expr.t -> bool

(** Normalize an expression. *)
val norm : Expr.t -> Expr.t

(** Normalize an expression used as a constraint (asserted nonzero):
    wrappers like [x <> 0] collapse to [x]. *)
val norm_constraint : Expr.t -> Expr.t
