lib/solver/model.mli: Expr Format
