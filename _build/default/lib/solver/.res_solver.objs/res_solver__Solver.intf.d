lib/solver/solver.mli: Expr Format Model Stdlib
