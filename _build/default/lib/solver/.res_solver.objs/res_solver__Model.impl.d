lib/solver/model.ml: Expr Fmt Int Map
