lib/solver/expr.mli: Format Res_ir Set
