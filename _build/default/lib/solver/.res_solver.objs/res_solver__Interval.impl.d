lib/solver/interval.ml: Fmt List Res_ir
