lib/solver/simplify.ml: Expr Res_ir
