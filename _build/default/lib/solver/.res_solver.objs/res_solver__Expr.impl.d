lib/solver/expr.ml: Fmt Int Res_ir Set
