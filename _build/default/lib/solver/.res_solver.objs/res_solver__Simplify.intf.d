lib/solver/simplify.mli: Expr Res_ir
