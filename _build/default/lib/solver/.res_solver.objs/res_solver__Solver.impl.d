lib/solver/solver.ml: Expr Fmt Int Interval List Map Model Option Res_ir Simplify
