lib/solver/interval.mli: Format Res_ir
