(** Post-mortem debugging aids on top of a synthesized suffix (paper §3.3).

    A session wraps one verified suffix.  Because replay is deterministic,
    any point in the suffix can be reconstructed exactly by re-running the
    replay for a bounded number of steps — reverse-stepping is just
    re-running one step less, with no recording anywhere.  The hypothesis
    helpers answer the paper's example queries. *)

type t

(** Open a debugging session for a suffix.  [Error] if the suffix does not
    reproduce the coredump (nothing trustworthy to debug). *)
val start :
  Backstep.ctx -> Suffix.t -> Res_vm.Coredump.t -> (t, string) result

(** Number of instruction steps in the suffix. *)
val length : t -> int

(** The event at step [i] (0-based, oldest first).
    @raise Invalid_argument when out of range. *)
val event_at : t -> int -> Res_vm.Event.t

(** Reconstruct the exact machine state after the first [steps]
    instructions of the suffix (deterministic partial replay). *)
val state_at : t -> int -> Res_vm.Exec.state

(** Memory word [addr] just after step [i]. *)
val mem_at : t -> int -> int -> int

(** Register [reg] of thread [tid] just after step [i] (innermost frame);
    [None] if the thread has no frame there. *)
val reg_at : t -> int -> tid:int -> reg:Res_ir.Instr.reg -> int option

(** First step whose program counter matches — a breakpoint.  Answers
    "what was the program state when the program was executing at X?"
    (combine with {!state_at}).  The faulting instruction itself never
    completes and so has no step. *)
val break_at : t -> Res_ir.Pc.t -> int option

(** All step numbers executed by a thread. *)
val steps_of_thread : t -> int -> int list

(** Steps that wrote the memory word, oldest first — a location's write
    history within the suffix. *)
val writes_to : t -> int -> int list

(** Hypothesis (paper §3.3): "was thread T preempted before updating shared
    memory location M?" — [Some true] when another thread executed between
    T's previous access to M and T's write to M; [None] when T never
    writes M in this suffix. *)
val preempted_before_update : t -> tid:int -> addr:int -> bool option

(** The suffix as a navigable instruction listing. *)
val pp_listing : Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
