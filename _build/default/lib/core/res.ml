(** The top-level RES pipeline: coredump in, replayable root-caused
    execution suffix out.

    [analyze] runs iterative deepening over the suffix length: synthesize
    suffixes of length 1, 2, ... (paper: "RES continues building up
    suffixes by moving backward through the execution"), replay each
    candidate to verify it deterministically reproduces the coredump, and
    classify the root cause from the replayed trace.  It stops as soon as a
    reproduced suffix exhibits a definite root cause, or when the depth
    budget is exhausted. *)

type report = {
  suffix : Suffix.t;
  verdict : Replay.verdict;
  root_cause : Rootcause.t option;  (** None when replay failed *)
  deterministic : bool;  (** replayed [determinism_runs] times identically *)
}

type analysis = {
  reports : report list;  (** reproduced suffixes, best (deepest-cause) first *)
  depth_reached : int;
  nodes_expanded : int;
  candidates_tried : int;
  suffixes_synthesized : int;
  cpu_seconds : float;
}

type config = {
  search : Search.config;
  determinism_runs : int;
  stop_at_first_cause : bool;
      (** stop deepening once a reproduced suffix has a concurrency or
          memory-safety root cause (not merely the crash site) *)
}

let default_config =
  { search = Search.default_config; determinism_runs = 3; stop_at_first_cause = true }

(** Whether a cause is a definite defect (vs just the crash location). *)
let definite_cause = function
  | Rootcause.Data_race _ | Rootcause.Atomicity_violation _
  | Rootcause.Use_after_free_cause _ | Rootcause.Buffer_overflow_cause _
  | Rootcause.Double_free_cause _ | Rootcause.Deadlock_cause _ ->
      true
  | Rootcause.Division_by_zero_cause _ | Rootcause.Assertion_cause _
  | Rootcause.Abort_cause _ | Rootcause.Unclassified _ ->
      false

let report_of ctx config (dump : Res_vm.Coredump.t) suffix =
  let verdict = Replay.replay ctx suffix dump in
  if not verdict.Replay.reproduced then
    { suffix; verdict; root_cause = None; deterministic = false }
  else
    let root_cause =
      Some
        (Rootcause.classify
           ~threads:(Res_vm.Coredump.threads dump)
           ~crash:dump.Res_vm.Coredump.crash ~heap:dump.Res_vm.Coredump.heap
           ~layout:ctx.Backstep.layout verdict.Replay.trace)
    in
    let deterministic, _ =
      Replay.replay_deterministically ~times:config.determinism_runs ctx suffix
        dump
    in
    { suffix; verdict; root_cause; deterministic }

(** Analyze a coredump: synthesize, replay, classify. *)
let analyze ?(config = default_config) ctx (dump : Res_vm.Coredump.t) : analysis =
  let t0 = Sys.time () in
  let nodes = ref 0 and cands = ref 0 and synth = ref 0 in
  let rec deepen depth acc =
    if depth > config.search.Search.max_segments then (acc, depth - 1)
    else
      let result =
        Search.search
          ~config:{ config.search with Search.max_segments = depth }
          ctx dump
      in
      nodes := !nodes + result.Search.stats.Search.nodes;
      cands := !cands + result.Search.stats.Search.candidates;
      synth := !synth + List.length result.Search.suffixes;
      let reports =
        List.map (report_of ctx config dump) result.Search.suffixes
        |> List.filter (fun r -> r.verdict.Replay.reproduced)
      in
      let acc = acc @ reports in
      let found_definite =
        List.exists
          (fun r ->
            match r.root_cause with
            | Some c -> definite_cause c && r.deterministic
            | None -> false)
          acc
      in
      if config.stop_at_first_cause && found_definite then (acc, depth)
      else deepen (depth + 1) acc
  in
  let reports, depth = deepen 1 [] in
  (* Definite causes first, then longer suffixes first. *)
  let score r =
    match r.root_cause with
    | Some c when definite_cause c -> 2
    | Some _ -> 1
    | None -> 0
  in
  let reports =
    List.stable_sort
      (fun a b ->
        match compare (score b) (score a) with
        | 0 -> compare (Suffix.length b.suffix) (Suffix.length a.suffix)
        | c -> c)
      reports
  in
  {
    reports;
    depth_reached = depth;
    nodes_expanded = !nodes;
    candidates_tried = !cands;
    suffixes_synthesized = !synth;
    cpu_seconds = Sys.time () -. t0;
  }

(** The best root cause of an analysis, if any. *)
let best_cause analysis =
  List.find_map (fun r -> r.root_cause) analysis.reports

(** Convenience: build a context and analyze in one call. *)
let analyze_program ?config ?sym_config ?solver_config prog dump =
  let ctx = Backstep.make_ctx ?sym_config ?solver_config prog in
  analyze ?config ctx dump
