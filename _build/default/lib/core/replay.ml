(** Deterministic suffix replay (paper §2.1).

    "A special environment is slipped underneath the debugger to
    instantiate [Mi] and replay [Ti]": the suffix's snapshot is concretized
    through the model into a runnable memory image, threads are placed at
    their suffix-start positions, the schedule is forced, input values are
    scripted, and MiniVM runs — the program deterministically runs into the
    same failure, which is verified byte-for-byte against the original
    coredump. *)

module IMap = Map.Make (Int)

type verdict = {
  reproduced : bool;  (** the failure state matches the coredump exactly *)
  replay_crash : Res_vm.Crash.t option;  (** what the replay produced *)
  replay_dump : Res_vm.Coredump.t option;
  trace : Res_vm.Event.t list;  (** instruction-level trace of the suffix *)
  divergence : string option;  (** why reproduction failed, if it did *)
}

(** Build the initial VM state [Mi] for a suffix. *)
let initial_state ctx (suffix : Suffix.t) =
  let snapshot = suffix.Suffix.snapshot in
  let model = suffix.Suffix.model in
  let mem = Snapshot.concrete_mem snapshot model in
  let threads =
    IMap.map
      (fun (ts : Snapshot.thread_state) ->
        {
          Res_vm.Thread.tid = ts.Snapshot.ts_tid;
          frames = Snapshot.concrete_frames ts model;
          status = ts.Snapshot.ts_status;
        })
      snapshot.Snapshot.threads
  in
  Res_vm.Exec.make_state ctx.Backstep.prog ~mem ~heap:snapshot.Snapshot.heap
    ~threads

(** Replay [suffix] and compare the resulting failure state with [dump]. *)
let replay ?(max_steps = 100_000) ctx (suffix : Suffix.t)
    (dump : Res_vm.Coredump.t) : verdict =
  let state = initial_state ctx suffix in
  let config =
    {
      (Res_vm.Exec.default_config ()) with
      sched = Res_vm.Sched.create (Res_vm.Sched.Fixed (Suffix.schedule suffix));
      oracle = Res_vm.Oracle.scripted (Suffix.input_script suffix);
      max_steps;
      record_trace = true;
      lbr_depth = dump.Res_vm.Coredump.tracer.Res_vm.Tracer.lbr_depth;
    }
  in
  let result = Res_vm.Exec.run_state ~config state in
  match result.Res_vm.Exec.outcome with
  | Res_vm.Exec.Crashed crash ->
      let replay_dump =
        {
          Res_vm.Coredump.crash;
          mem = result.Res_vm.Exec.final.Res_vm.Exec.mem;
          heap = result.Res_vm.Exec.final.Res_vm.Exec.heap;
          threads = result.Res_vm.Exec.final.Res_vm.Exec.threads;
          tracer = result.Res_vm.Exec.final.Res_vm.Exec.tracer;
          steps = result.Res_vm.Exec.final.Res_vm.Exec.steps;
        }
      in
      let reproduced = Res_vm.Coredump.same_failure_state replay_dump dump in
      let divergence =
        if reproduced then None
        else
          Some
            (if crash.Res_vm.Crash.kind <> dump.Res_vm.Coredump.crash.Res_vm.Crash.kind
             then
               Fmt.str "crash kind differs: %a vs %a" Res_vm.Crash.pp_kind
                 crash.Res_vm.Crash.kind Res_vm.Crash.pp_kind
                 dump.Res_vm.Coredump.crash.Res_vm.Crash.kind
             else
               let diffs =
                 Res_mem.Memory.diff replay_dump.Res_vm.Coredump.mem
                   dump.Res_vm.Coredump.mem
               in
               Fmt.str "state differs (%d memory cells)" (List.length diffs))
      in
      {
        reproduced;
        replay_crash = Some crash;
        replay_dump = Some replay_dump;
        trace = result.Res_vm.Exec.trace;
        divergence;
      }
  | Res_vm.Exec.Exited ->
      {
        reproduced = false;
        replay_crash = None;
        replay_dump = None;
        trace = result.Res_vm.Exec.trace;
        divergence = Some "replay exited without crashing";
      }
  | Res_vm.Exec.Out_of_fuel ->
      {
        reproduced = false;
        replay_crash = None;
        replay_dump = None;
        trace = result.Res_vm.Exec.trace;
        divergence = Some "replay ran out of fuel";
      }

(** Replay [n] times and check every run reproduces the same failure —
    the determinism requirement (5) of paper §2. *)
let replay_deterministically ?(times = 3) ctx suffix dump =
  let verdicts = List.init times (fun _ -> replay ctx suffix dump) in
  (List.for_all (fun v -> v.reproduced) verdicts, verdicts)
