(** Root-cause detectors.

    Run over a replayed suffix's instruction-level trace to classify {e why}
    the program failed — the basis for root-cause bug triaging (paper §3.1).
    Detectors are deliberately precise rather than heuristic: they see a
    deterministic trace, full heap metadata, and the crash record. *)

module IMap = Map.Make (Int)

type t =
  | Data_race of {
      addr : int;
      access1 : Res_ir.Pc.t * int * bool;  (** (pc, tid, is_write) *)
      access2 : Res_ir.Pc.t * int * bool;  (** conflicting access, >=1 write *)
    }
  | Atomicity_violation of {
      addr : int;
      read_pc : Res_ir.Pc.t;  (** t1 reads... *)
      intervening_pc : Res_ir.Pc.t;  (** ...t2 writes in between... *)
      write_pc : Res_ir.Pc.t;  (** ...t1 writes a stale-derived value *)
      tids : int * int;
    }
  | Use_after_free_cause of {
      addr : int;
      free_pc : Res_ir.Pc.t option;
      access_pc : Res_ir.Pc.t;
    }
  | Buffer_overflow_cause of { addr : int; store_pc : Res_ir.Pc.t; target : string }
  | Double_free_cause of {
      base : int;
      first_free_pc : Res_ir.Pc.t option;
      second_free_pc : Res_ir.Pc.t;
    }
  | Deadlock_cause of { waiting : (int * int) list }  (** (tid, lock addr) *)
  | Division_by_zero_cause of { pc : Res_ir.Pc.t }
  | Assertion_cause of { pc : Res_ir.Pc.t; message : string }
  | Abort_cause of { pc : Res_ir.Pc.t; message : string }
  | Unclassified of { family : string; pc : Res_ir.Pc.t }

(** Canonical signature — the triaging bucket key (paper §3.1).

    Concurrency causes are keyed by the racy address and the {e writer}
    program counter(s): suffixes of different lengths for the same bug can
    pair the racy write with different readers (a reader that joined later,
    the crashing assert, ...), but the unsynchronized write is the bug and
    is stable across them. *)
let signature = function
  | Data_race { addr; access1 = pc1, _, w1; access2 = pc2, _, w2 } ->
      let writers =
        List.filter_map
          (fun (pc, w) -> if w then Some (Res_ir.Pc.to_string pc) else None)
          [ (pc1, w1); (pc2, w2) ]
        |> List.sort_uniq compare
      in
      Fmt.str "concurrency:0x%x:%a" addr
        Fmt.(list ~sep:(any "+") string)
        writers
  | Atomicity_violation { addr; write_pc; _ } ->
      Fmt.str "concurrency:0x%x:%s" addr (Res_ir.Pc.to_string write_pc)
  | Use_after_free_cause { free_pc; access_pc; _ } ->
      (* Key on the premature free — the defect — not the (input-dependent)
         crash site. *)
      Fmt.str "uaf:%s"
        (match free_pc with
        | Some pc -> Res_ir.Pc.to_string pc
        | None -> Res_ir.Pc.to_string access_pc)
  | Buffer_overflow_cause { store_pc; _ } ->
      Fmt.str "overflow:%s" (Res_ir.Pc.to_string store_pc)
  | Double_free_cause { second_free_pc; _ } ->
      Fmt.str "double-free:%s" (Res_ir.Pc.to_string second_free_pc)
  | Deadlock_cause { waiting } ->
      Fmt.str "deadlock:%a"
        Fmt.(list ~sep:(any "+") (fun ppf (_, a) -> Fmt.pf ppf "0x%x" a))
        waiting
  | Division_by_zero_cause { pc } -> Fmt.str "div0:%s" (Res_ir.Pc.to_string pc)
  | Assertion_cause { pc; message } ->
      Fmt.str "assert:%s:%s" (Res_ir.Pc.to_string pc) message
  | Abort_cause { pc; message } ->
      Fmt.str "abort:%s:%s" (Res_ir.Pc.to_string pc) message
  | Unclassified { family; pc } ->
      Fmt.str "%s:%s" family (Res_ir.Pc.to_string pc)

let pp ppf t = Fmt.string ppf (signature t)

(* --- happens-before analysis --- *)

module Clock = struct
  (** Vector clocks over tids. *)
  type t = int IMap.t

  let zero : t = IMap.empty
  let get (c : t) tid = Option.value ~default:0 (IMap.find_opt tid c)
  let tick (c : t) tid = IMap.add tid (get c tid + 1) c

  let join (a : t) (b : t) : t =
    IMap.union (fun _ x y -> Some (max x y)) a b

  (** [leq a b]: every component of [a] <= the same component of [b]. *)
  let leq (a : t) (b : t) = IMap.for_all (fun tid v -> v <= get b tid) a
end

type access = { a_pc : Res_ir.Pc.t; a_tid : int; a_write : bool; a_clock : Clock.t }

(** All concurrent conflicting access pairs, via vector clocks built from
    lock release→acquire, spawn, and join edges. *)
let find_races (trace : Res_vm.Event.t list) =
  let clocks = Hashtbl.create 8 in
  let clock_of tid =
    match Hashtbl.find_opt clocks tid with Some c -> c | None -> Clock.zero
  in
  let set_clock tid c = Hashtbl.replace clocks tid c in
  let lock_release : (int, Clock.t) Hashtbl.t = Hashtbl.create 8 in
  let halt_clock : (int, Clock.t) Hashtbl.t = Hashtbl.create 8 in
  let accesses : (int, access list) Hashtbl.t = Hashtbl.create 64 in
  let note_access addr acc =
    Hashtbl.replace accesses addr (acc :: Option.value ~default:[] (Hashtbl.find_opt accesses addr))
  in
  List.iter
    (fun (e : Res_vm.Event.t) ->
      let tid = e.Res_vm.Event.tid in
      let c = Clock.tick (clock_of tid) tid in
      set_clock tid c;
      match e.Res_vm.Event.action with
      | Res_vm.Event.A_read { addr; _ } ->
          note_access addr { a_pc = e.pc; a_tid = tid; a_write = false; a_clock = c }
      | Res_vm.Event.A_write { addr; _ } ->
          note_access addr { a_pc = e.pc; a_tid = tid; a_write = true; a_clock = c }
      | Res_vm.Event.A_lock { addr } -> (
          match Hashtbl.find_opt lock_release addr with
          | Some rc -> set_clock tid (Clock.join c rc)
          | None -> ())
      | Res_vm.Event.A_unlock { addr } -> Hashtbl.replace lock_release addr c
      | Res_vm.Event.A_spawn { new_tid } -> set_clock new_tid c
      | Res_vm.Event.A_join { joined } -> (
          match Hashtbl.find_opt halt_clock joined with
          | Some hc -> set_clock tid (Clock.join c hc)
          | None -> ())
      | Res_vm.Event.A_halt -> Hashtbl.replace halt_clock tid c
      | _ -> ())
    trace;
  Hashtbl.fold
    (fun addr accs races ->
      let rec pairs = function
        | [] -> []
        | a :: rest ->
            List.filter_map
              (fun b ->
                if
                  a.a_tid <> b.a_tid
                  && (a.a_write || b.a_write)
                  && (not (Clock.leq a.a_clock b.a_clock))
                  && not (Clock.leq b.a_clock a.a_clock)
                then Some (addr, a, b)
                else None)
              rest
            @ pairs rest
      in
      pairs accs @ races)
    accesses []

(** Lost-update pattern: t1 reads [a], t2 writes [a], then t1 writes [a] —
    with no t1 access of [a] between the read and the write. *)
let find_atomicity_violations (trace : Res_vm.Event.t list) =
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let result = ref [] in
  let addr_of i =
    match arr.(i).Res_vm.Event.action with
    | Res_vm.Event.A_read { addr; _ } -> Some (addr, false)
    | Res_vm.Event.A_write { addr; _ } -> Some (addr, true)
    | _ -> None
  in
  for i = 0 to n - 1 do
    match addr_of i with
    | Some (addr, false) ->
        let t1 = arr.(i).Res_vm.Event.tid in
        (* find t1's next access to addr *)
        let rec next_t1 j =
          if j >= n then None
          else
            match addr_of j with
            | Some (a, w) when a = addr && arr.(j).Res_vm.Event.tid = t1 ->
                Some (j, w)
            | _ -> next_t1 (j + 1)
        in
        (match next_t1 (i + 1) with
        | Some (k, true) ->
            (* an intervening write by another thread? *)
            let rec scan j =
              if j >= k then ()
              else
                match addr_of j with
                | Some (a, true) when a = addr && arr.(j).Res_vm.Event.tid <> t1 ->
                    result :=
                      ( addr,
                        arr.(i).Res_vm.Event.pc,
                        arr.(j).Res_vm.Event.pc,
                        arr.(k).Res_vm.Event.pc,
                        (t1, arr.(j).Res_vm.Event.tid) )
                      :: !result
                | _ -> scan (j + 1)
            in
            scan (i + 1)
        | _ -> ())
    | _ -> ()
  done;
  List.rev !result

(* --- classification --- *)

(** Classify the root cause of [crash], given the replayed suffix trace,
    the coredump's heap metadata, and the final thread states. *)
let classify ?(threads : Res_vm.Thread.t list = []) ~(crash : Res_vm.Crash.t)
    ~(heap : Res_mem.Heap.t) ~(layout : Res_mem.Layout.t)
    (trace : Res_vm.Event.t list) : t =
  let concurrency_cause addr_filter =
    (* Prefer an atomicity violation (more specific), then a data race,
       restricted to addresses satisfying [addr_filter]. *)
    match
      List.find_opt (fun (a, _, _, _, _) -> addr_filter a)
        (find_atomicity_violations trace)
    with
    | Some (addr, read_pc, intervening_pc, write_pc, tids) ->
        Some (Atomicity_violation { addr; read_pc; intervening_pc; write_pc; tids })
    | None -> (
        match List.find_opt (fun (a, _, _) -> addr_filter a) (find_races trace) with
        | Some (addr, a1, a2) ->
            Some
              (Data_race
                 {
                   addr;
                   access1 = (a1.a_pc, a1.a_tid, a1.a_write);
                   access2 = (a2.a_pc, a2.a_tid, a2.a_write);
                 })
        | None -> None)
  in
  match crash.Res_vm.Crash.kind with
  | Res_vm.Crash.Use_after_free { addr; base } ->
      let free_pc =
        Option.bind (Res_mem.Heap.block_at heap base) (fun b ->
            b.Res_mem.Heap.free_site)
      in
      Use_after_free_cause { addr; free_pc; access_pc = crash.Res_vm.Crash.pc }
  | Res_vm.Crash.Out_of_bounds { addr; _ } ->
      Buffer_overflow_cause
        {
          addr;
          store_pc = crash.Res_vm.Crash.pc;
          target = Res_mem.Layout.describe layout addr;
        }
  | Res_vm.Crash.Global_overflow { addr; global } ->
      Buffer_overflow_cause { addr; store_pc = crash.Res_vm.Crash.pc; target = global }
  | Res_vm.Crash.Double_free base ->
      let first_free_pc =
        Option.bind (Res_mem.Heap.block_at heap base) (fun b ->
            b.Res_mem.Heap.free_site)
      in
      Double_free_cause { base; first_free_pc; second_free_pc = crash.Res_vm.Crash.pc }
  | Res_vm.Crash.Deadlock tids ->
      (* The cycle is in the final statuses: who waits on which mutex. *)
      let waiting =
        List.filter_map
          (fun (th : Res_vm.Thread.t) ->
            match th.Res_vm.Thread.status with
            | Res_vm.Thread.Blocked_on_lock addr when List.mem th.tid tids ->
                Some (th.Res_vm.Thread.tid, addr)
            | _ -> None)
          threads
      in
      Deadlock_cause { waiting = List.sort_uniq compare waiting }
  | Res_vm.Crash.Div_by_zero -> (
      (* A zero divisor may itself come from a concurrency bug. *)
      match concurrency_cause (fun _ -> true) with
      | Some cause -> cause
      | None -> Division_by_zero_cause { pc = crash.Res_vm.Crash.pc })
  | Res_vm.Crash.Assert_fail message -> (
      (* The classic case: the assert observes state corrupted by a race. *)
      match concurrency_cause (fun _ -> true) with
      | Some cause -> cause
      | None -> Assertion_cause { pc = crash.Res_vm.Crash.pc; message })
  | Res_vm.Crash.Abort_called message -> (
      match concurrency_cause (fun _ -> true) with
      | Some cause -> cause
      | None -> Abort_cause { pc = crash.Res_vm.Crash.pc; message })
  | Res_vm.Crash.Seg_fault addr -> (
      (* A fault just past a heap block is an overflow that skipped the
         guard word (e.g. index size+2). *)
      match Res_mem.Heap.find_below heap addr with
      | Some b
        when addr >= b.Res_mem.Heap.base + b.Res_mem.Heap.size
             && addr <= b.Res_mem.Heap.base + b.Res_mem.Heap.size + 16 ->
          Buffer_overflow_cause
            {
              addr;
              store_pc = crash.Res_vm.Crash.pc;
              target = Fmt.str "heap:0x%x" b.Res_mem.Heap.base;
            }
      | _ -> (
          match concurrency_cause (fun _ -> true) with
          | Some cause -> cause
          | None ->
              Unclassified
                {
                  family = Res_vm.Crash.kind_family crash.Res_vm.Crash.kind;
                  pc = crash.Res_vm.Crash.pc;
                }))
  | Res_vm.Crash.Invalid_free _ | Res_vm.Crash.Unlock_error _
  | Res_vm.Crash.Alloc_error _ ->
      Unclassified
        {
          family = Res_vm.Crash.kind_family crash.Res_vm.Crash.kind;
          pc = crash.Res_vm.Crash.pc;
        }
