(** Symbolic snapshots (paper §2.3).

    A snapshot is a "hypothesis of how program state may have looked" at a
    point in time: a mix of concrete values (from the coredump) and
    symbolic values (for state the backward analysis has havocked), plus
    the constraint store that ties the symbols to the post-state.  The base
    case is the coredump itself — fully concrete. *)

module IMap = Map.Make (Int)
open Res_solver

(** Per-thread view: the frame stack (registers are expressions) and the
    thread's status.  Threads whose last segment has not yet been stepped
    backward keep their coredump stack; once stepped, they sit at the start
    of a root-function block. *)
type thread_state = {
  ts_tid : int;
  ts_frames : Res_symex.Symframe.t list;  (** innermost first *)
  ts_status : Res_vm.Thread.status;
  ts_stepped : bool;
      (** whether the backward walk has already consumed the thread's
          in-progress segment (always true once it sits at a block start) *)
}

type t = {
  mem_base : Res_mem.Memory.t;  (** the coredump memory *)
  mem_over : Expr.t IMap.t;  (** symbolic overrides introduced going back *)
  heap : Res_mem.Heap.t;  (** heap metadata at this point in time *)
  threads : thread_state IMap.t;
  constraints : Expr.t list;  (** accumulated, newest first *)
}

(** Convert a concrete VM frame to a symbolic one. *)
let symframe_of_vm (fr : Res_vm.Frame.t) =
  {
    Res_symex.Symframe.func = fr.func;
    block = fr.block;
    idx = fr.idx;
    regs =
      List.fold_left
        (fun m (r, v) -> IMap.add r (Expr.const v) m)
        IMap.empty
        (Res_vm.Frame.reg_bindings fr);
    ret_reg = fr.ret_reg;
    lazy_pre = false;
  }

(** The base case: a snapshot that {e is} the coredump. *)
let of_coredump (dump : Res_vm.Coredump.t) =
  let threads =
    List.fold_left
      (fun m (th : Res_vm.Thread.t) ->
        IMap.add th.tid
          {
            ts_tid = th.tid;
            ts_frames = List.map symframe_of_vm th.frames;
            ts_status = th.status;
            ts_stepped = false;
          }
          m)
      IMap.empty
      (Res_vm.Coredump.threads dump)
  in
  {
    mem_base = dump.Res_vm.Coredump.mem;
    mem_over = IMap.empty;
    heap = dump.Res_vm.Coredump.heap;
    threads;
    constraints = [];
  }

(** Value of memory word [addr] in this snapshot: a symbolic override if
    the backward walk havocked it, else the coredump's concrete value. *)
let read_mem t addr =
  match IMap.find_opt addr t.mem_over with
  | Some e -> e
  | None -> Expr.const (Res_mem.Memory.read t.mem_base addr)

let write_mem_over t addr e = { t with mem_over = IMap.add addr e t.mem_over }

let thread t tid =
  match IMap.find_opt tid t.threads with
  | Some ts -> ts
  | None -> invalid_arg (Fmt.str "Snapshot.thread: no thread %d" tid)

let threads t = IMap.bindings t.threads |> List.map snd

let with_thread t ts = { t with threads = IMap.add ts.ts_tid ts t.threads }

let add_constraints t cs = { t with constraints = cs @ t.constraints }

(** Live (non-halted) threads. *)
let live_threads t =
  List.filter (fun ts -> ts.ts_status <> Res_vm.Thread.Halted) (threads t)

(** Number of symbolic memory cells — a measure of how much state the walk
    has havocked so far. *)
let symbolic_cells t = IMap.cardinal t.mem_over

(** Addresses currently holding symbolic values. *)
let symbolic_addrs t = IMap.bindings t.mem_over |> List.map fst

(** Concretize the snapshot under a model into a directly runnable memory
    image — the paper's partial memory image [Mi]. *)
let concrete_mem t model =
  IMap.fold
    (fun addr e mem ->
      match Model.eval model e with
      | v -> Res_mem.Memory.write mem addr v
      | exception Division_by_zero -> mem)
    t.mem_over t.mem_base

(** Concretize a thread's frames under a model into VM frames. *)
let concrete_frames ts model =
  List.map
    (fun (fr : Res_symex.Symframe.t) ->
      let regs =
        List.fold_left
          (fun m (r, e) ->
            match Model.eval model e with
            | v -> IMap.add r v m
            | exception Division_by_zero -> m)
          IMap.empty
          (Res_symex.Symframe.reg_bindings fr)
      in
      {
        Res_vm.Frame.func = fr.Res_symex.Symframe.func;
        block = fr.block;
        idx = fr.idx;
        regs;
        ret_reg = fr.ret_reg;
      })
    ts.ts_frames

let pp ppf t =
  let pp_over ppf (a, e) = Fmt.pf ppf "[0x%x]=%a" a Expr.pp e in
  Fmt.pf ppf "@[<v>snapshot: %d symbolic cells, %d constraints@,%a@]"
    (symbolic_cells t)
    (List.length t.constraints)
    Fmt.(list ~sep:sp pp_over)
    (IMap.bindings t.mem_over)

(** The minidump ablation (paper §1: "Unlike execution synthesis, RES
    interprets the entire coredump, not just a minidump, which makes RES
    strictly more powerful").  A minidump ships only the crash record and
    thread stacks — memory contents are unknown.  Model that by making
    every mapped memory word symbolic from the start: the backward walk
    then has no concrete values to refute candidate predecessors with. *)
let of_minidump (dump : Res_vm.Coredump.t) ~(layout : Res_mem.Layout.t) =
  let t = of_coredump dump in
  (* stack positions survive, register contents do not *)
  let t =
    {
      t with
      threads =
        IMap.map
          (fun ts ->
            {
              ts with
              ts_frames =
                List.map
                  (fun (fr : Res_symex.Symframe.t) ->
                    {
                      fr with
                      Res_symex.Symframe.regs =
                        IMap.mapi
                          (fun r _ ->
                            Expr.fresh (Fmt.str "mini:t%d:r%d" ts.ts_tid r))
                          fr.Res_symex.Symframe.regs;
                    })
                  ts.ts_frames;
            })
          t.threads;
    }
  in
  let global_words =
    List.concat_map
      (fun (base, size, _) -> List.init size (fun i -> base + i))
      layout.Res_mem.Layout.names
  in
  let heap_words =
    List.concat_map
      (fun (b : Res_mem.Heap.block) ->
        List.init b.Res_mem.Heap.size (fun i -> b.Res_mem.Heap.base + i))
      (Res_mem.Heap.blocks dump.Res_vm.Coredump.heap)
  in
  List.fold_left
    (fun t addr ->
      write_mem_over t addr (Expr.fresh (Fmt.str "mini:mem[0x%x]" addr)))
    t (global_words @ heap_words)
