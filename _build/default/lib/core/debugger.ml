(** Post-mortem debugging aids on top of a synthesized suffix (paper §3.3).

    "RES enables several debugging aids on top of traditional debuggers
    like gdb: synthesizing the execution suffix, reconstructing past state,
    and the ability to do reverse debugging without the need to record the
    execution."

    A session wraps one verified suffix.  Because replay is deterministic,
    any point in the suffix can be reconstructed exactly by re-running the
    replay for a bounded number of steps — reverse-stepping is just
    re-running one step less.  The hypothesis helpers answer the paper's
    example queries: "what was the program state when the program was
    executing at program counter X?" and "was a thread T preempted before
    updating shared memory location M?". *)

type t = {
  ctx : Backstep.ctx;
  suffix : Suffix.t;
  dump : Res_vm.Coredump.t;
  trace : Res_vm.Event.t array;  (** instruction-level suffix trace *)
}

(** Open a debugging session for a suffix.  Returns [Error] if the suffix
    does not reproduce the coredump (nothing trustworthy to debug). *)
let start ctx suffix dump =
  let verdict = Replay.replay ctx suffix dump in
  if not verdict.Replay.reproduced then Error "suffix does not reproduce the coredump"
  else Ok { ctx; suffix; dump; trace = Array.of_list verdict.Replay.trace }

(** Number of instruction steps in the suffix. *)
let length t = Array.length t.trace

(** The event at step [i] (0-based, oldest first). *)
let event_at t i =
  if i < 0 || i >= Array.length t.trace then
    invalid_arg (Fmt.str "Debugger.event_at: step %d out of range" i)
  else t.trace.(i)

(** Reconstruct the exact machine state after executing the first [steps]
    instructions of the suffix: deterministic partial replay. *)
let state_at t steps =
  let state = Replay.initial_state t.ctx t.suffix in
  let config =
    {
      (Res_vm.Exec.default_config ()) with
      sched =
        Res_vm.Sched.create (Res_vm.Sched.Fixed (Suffix.schedule t.suffix));
      oracle = Res_vm.Oracle.scripted (Suffix.input_script t.suffix);
      max_steps = steps;
      record_trace = false;
    }
  in
  (Res_vm.Exec.run_state ~config state).Res_vm.Exec.final

(** Memory word [addr] just after step [i]. *)
let mem_at t i addr = Res_mem.Memory.read (state_at t (i + 1)).Res_vm.Exec.mem addr

module IMap = Map.Make (Int)

(** Register [r] of thread [tid] just after step [i] (innermost frame). *)
let reg_at t i ~tid ~reg =
  let st = state_at t (i + 1) in
  match IMap.find_opt tid st.Res_vm.Exec.threads with
  | Some th -> (
      match Res_vm.Thread.top_opt th with
      | Some fr -> Some (Res_vm.Frame.read_reg fr reg)
      | None -> None)
  | None -> None

(** First step whose program counter matches [pc] — a breakpoint.  Answers
    "what was the program state when the program was executing at X":
    combine with {!state_at}. *)
let break_at t (pc : Res_ir.Pc.t) =
  let n = Array.length t.trace in
  let rec go i =
    if i >= n then None
    else if Res_ir.Pc.equal t.trace.(i).Res_vm.Event.pc pc then Some i
    else go (i + 1)
  in
  go 0

(** All steps executed by thread [tid]. *)
let steps_of_thread t tid =
  Array.to_list t.trace
  |> List.filteri (fun _ (e : Res_vm.Event.t) -> e.Res_vm.Event.tid = tid)
  |> List.map (fun (e : Res_vm.Event.t) -> e.Res_vm.Event.step)

(** Steps that wrote memory word [addr], oldest first — the write history
    of a location within the suffix. *)
let writes_to t addr =
  let out = ref [] in
  Array.iteri
    (fun i (e : Res_vm.Event.t) ->
      match e.Res_vm.Event.action with
      | Res_vm.Event.A_write { addr = a; _ } when a = addr -> out := i :: !out
      | _ -> ())
    t.trace;
  List.rev !out

(** Hypothesis (paper §3.3): "was thread T preempted before updating shared
    memory location M?" — true when another thread executed between T's
    previous access to M (typically the read of a read-modify-write) and
    T's write to M.  [None] when T never writes M in this suffix. *)
let preempted_before_update t ~tid ~addr =
  let n = Array.length t.trace in
  (* find T's first write to addr *)
  let rec find_write i =
    if i >= n then None
    else
      let e = t.trace.(i) in
      match e.Res_vm.Event.action with
      | Res_vm.Event.A_write { addr = a; _ }
        when a = addr && e.Res_vm.Event.tid = tid ->
          Some i
      | _ -> find_write (i + 1)
  in
  match find_write 0 with
  | None -> None (* T never updates M in this suffix *)
  | Some w ->
      (* T's previous access to M before the write *)
      let rec prev_access i =
        if i < 0 then None
        else
          let e = t.trace.(i) in
          if
            e.Res_vm.Event.tid = tid
            && Res_vm.Event.touched_addr e = Some addr
          then Some i
          else prev_access (i - 1)
      in
      let preempted =
        match prev_access (w - 1) with
        | None -> false (* no earlier access: nothing to be stale against *)
        | Some p ->
            let rec foreign i =
              i < w
              && (t.trace.(i).Res_vm.Event.tid <> tid || foreign (i + 1))
            in
            foreign (p + 1)
      in
      Some preempted

(** Render the suffix as a navigable listing. *)
let pp_listing ppf t =
  Array.iteri
    (fun i (e : Res_vm.Event.t) -> Fmt.pf ppf "%4d  %a@," i Res_vm.Event.pp e)
    t.trace

let pp ppf t =
  Fmt.pf ppf "@[<v>debugging session: %d steps, crash %a@,%a@]" (length t)
    Res_vm.Crash.pp t.dump.Res_vm.Coredump.crash pp_listing t
