(** Execution suffixes — RES's output (paper §2.1).

    A suffix is an ordered list of {e segments} (one root-function block of
    one thread, calls inlined), together with the symbolic snapshot of the
    state just before the suffix, a model that concretizes it into the
    partial memory image [Mi], the thread schedule, and the input values —
    everything needed to replay the suffix deterministically in the
    debugger. *)

open Res_solver

(** How a segment terminates. *)
type segment_end =
  | Seg_branch of Res_ir.Instr.label  (** branched to this block *)
  | Seg_ret  (** the root frame returned: the thread halted *)
  | Seg_halt
  | Seg_crash of Res_vm.Crash.kind  (** the final, crashing segment *)
  | Seg_blocked  (** partial segment of a thread blocked at crash time *)

(** One backward-synthesized segment. *)
type segment = {
  seg_tid : int;
  seg_func : string;
  seg_block : Res_ir.Instr.label;
  seg_end : segment_end;
  seg_writes : int list;  (** memory addresses written (write set) *)
  seg_reads : int list;  (** addresses read before written (read set) *)
  seg_inputs : (Res_ir.Instr.input_kind * Expr.sym) list;
      (** input symbols consumed, in order *)
  seg_lock_ops : (bool * int) list;
  seg_allocs : int list;  (** bases allocated *)
  seg_spawns : int list;  (** tids whose birth lies in this segment *)
  seg_frees : int list;
  seg_steps : int;  (** instructions executed, for cost accounting *)
}

type t = {
  segments : segment list;  (** oldest first: executing them in order crashes *)
  snapshot : Snapshot.t;  (** state just before [segments] — yields [Mi] *)
  model : Model.t;  (** solves the snapshot's constraint store *)
  crash : Res_vm.Crash.t;  (** the failure this suffix reproduces *)
  complete : bool;
      (** the suffix reaches the program start: a full start-to-finish
          reconstruction (paper §2.1: its existence rules out a hardware
          fault) *)
}

(** Thread schedule of the suffix: one tid per segment, oldest first —
    exactly the tids a [Sched.Fixed] replay consumes. *)
let schedule t = List.map (fun s -> s.seg_tid) t.segments

(** Concrete input script: the model's value for every input symbol, in
    consumption order across the whole suffix. *)
let input_script t =
  List.concat_map
    (fun s -> List.map (fun (_, sym) -> Model.value t.model sym) s.seg_inputs)
    t.segments

(** Aggregate write set — "the recently written state", which RES points
    developers at first (paper §3.3). *)
let write_set t =
  List.concat_map (fun s -> s.seg_writes) t.segments |> List.sort_uniq compare

(** Aggregate read set. *)
let read_set t =
  List.concat_map (fun s -> s.seg_reads) t.segments |> List.sort_uniq compare

(** Total instructions the suffix executes. *)
let length_steps t = List.fold_left (fun a s -> a + s.seg_steps) 0 t.segments

(** Number of segments (block-granularity length). *)
let length t = List.length t.segments

let pp_segment ppf s =
  let pp_end ppf = function
    | Seg_branch l -> Fmt.pf ppf "-> %s" l
    | Seg_ret -> Fmt.string ppf "-> ret"
    | Seg_halt -> Fmt.string ppf "-> halt"
    | Seg_crash k -> Fmt.pf ppf "-> CRASH (%a)" Res_vm.Crash.pp_kind k
    | Seg_blocked -> Fmt.string ppf "-> blocked"
  in
  Fmt.pf ppf "t%d %s:%s %a" s.seg_tid s.seg_func s.seg_block pp_end s.seg_end

let pp ppf t =
  Fmt.pf ppf "@[<v>suffix (%d segments, %d instrs):@,%a@]" (length t)
    (length_steps t)
    Fmt.(list ~sep:cut pp_segment)
    t.segments
