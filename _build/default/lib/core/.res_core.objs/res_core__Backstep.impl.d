lib/core/backstep.ml: Array Expr Fmt Hashtbl Int List Map Res_ir Res_mem Res_solver Res_symex Res_vm Set Simplify Snapshot Solver String Suffix
