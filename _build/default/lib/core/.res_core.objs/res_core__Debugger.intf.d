lib/core/debugger.mli: Backstep Format Res_ir Res_vm Suffix
