lib/core/debugger.ml: Array Backstep Fmt Int List Map Replay Res_ir Res_mem Res_vm Suffix
