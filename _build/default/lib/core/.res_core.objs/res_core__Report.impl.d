lib/core/report.ml: Backstep Fmt List Replay Res Res_mem Res_vm Rootcause Suffix
