lib/core/res.ml: Backstep List Replay Res_vm Rootcause Search Suffix Sys
