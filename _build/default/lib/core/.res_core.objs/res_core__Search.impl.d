lib/core/search.ml: Backstep Expr Int List Map Res_ir Res_mem Res_solver Res_symex Res_vm Snapshot Solver String Suffix
