lib/core/suffix.ml: Expr Fmt List Model Res_ir Res_solver Res_vm Snapshot
