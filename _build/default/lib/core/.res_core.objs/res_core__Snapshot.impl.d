lib/core/snapshot.ml: Expr Fmt Int List Map Model Res_mem Res_solver Res_symex Res_vm
