lib/core/rootcause.ml: Array Fmt Hashtbl Int List Map Option Res_ir Res_mem Res_vm
