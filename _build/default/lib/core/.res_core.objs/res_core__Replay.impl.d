lib/core/replay.ml: Backstep Fmt Int List Map Res_mem Res_vm Snapshot Suffix
