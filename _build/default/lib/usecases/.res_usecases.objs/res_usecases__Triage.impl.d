lib/usecases/triage.ml: Fmt Hashtbl List Map Res_core Res_ir Res_vm String
