lib/usecases/hwdiag.ml: Fmt Int List Map Res_core Res_ir Res_mem Res_vm Set
