(** Hardware-error identification (paper §3.2).

    "If allowed to run to completion, RES would eventually either
    reconstruct a full start-to-finish execution path, or conclude that no
    such path exists and therefore the coredump is likely due to hardware
    failure."

    [diagnose] first attempts a complete (start-to-finish) reconstruction.
    If none exists, it retries under single-fault hypotheses: exempting one
    memory word (DRAM corruption) or one register of the crashing thread
    (CPU miscompute) from write-history consistency.  A hypothesis that
    restores reconstructability identifies the corrupted location. *)

module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

type repair =
  | Memory_error of { addr : int }  (** likely DRAM corruption of this word *)
  | Cpu_error of { tid : int; reg : Res_ir.Instr.reg }
      (** likely miscomputed value in this register *)

type verdict =
  | Software of Res_core.Res.report
      (** a complete software execution reproduces the coredump *)
  | Hardware of repair
  | Inconclusive  (** neither reconstructable nor repairable within budget *)

let pp_verdict ppf = function
  | Software _ -> Fmt.string ppf "software bug"
  | Hardware (Memory_error { addr }) ->
      Fmt.pf ppf "hardware: memory error at 0x%x" addr
  | Hardware (Cpu_error { tid; reg }) ->
      Fmt.pf ppf "hardware: CPU error (thread %d, r%d)" tid reg
  | Inconclusive -> Fmt.string ppf "inconclusive"

type config = {
  search : Res_core.Search.config;
  max_mem_hypotheses : int;  (** cap on memory cells to try exempting *)
  max_reg_hypotheses : int;
}

let default_config =
  {
    search =
      {
        Res_core.Search.default_config with
        max_segments = 12;
        max_suffixes = 2;
        max_nodes = 6000;
      };
    max_mem_hypotheses = 32;
    max_reg_hypotheses = 32;
  }

(** Whether a complete, replay-verified reconstruction exists under [ctx]. *)
let complete_reconstruction config ctx (dump : Res_vm.Coredump.t) =
  let result = Res_core.Search.search ~config:config.search ctx dump in
  List.find_map
    (fun (s : Res_core.Suffix.t) ->
      if not s.Res_core.Suffix.complete then None
      else
        let v = Res_core.Replay.replay ctx s dump in
        if v.Res_core.Replay.reproduced then
          Some
            {
              Res_core.Res.suffix = s;
              verdict = v;
              root_cause = None;
              deterministic = true;
            }
        else None)
    result.Res_core.Search.suffixes

(** Reconstructability check under a relaxation (hardware hypothesis): a
    complete suffix must exist, but replay verification is waived for the
    exempted location (the replayed software history writes the uncorrupted
    value there, so an exact match is impossible by design). *)
let reconstructs_with config prog ~relaxed_mem ~relaxed_regs dump =
  let ctx = Res_core.Backstep.make_ctx ~relaxed_mem ~relaxed_regs prog in
  let result = Res_core.Search.search ~config:config.search ctx dump in
  List.exists (fun (s : Res_core.Suffix.t) -> s.Res_core.Suffix.complete)
    result.Res_core.Search.suffixes

(** Diagnose one coredump. *)
let diagnose ?(config = default_config) prog (dump : Res_vm.Coredump.t) : verdict
    =
  let ctx = Res_core.Backstep.make_ctx prog in
  match complete_reconstruction config ctx dump with
  | Some report -> Software report
  | None -> (
      (* Memory hypotheses: every recorded cell, bounded. *)
      let cells =
        Res_mem.Memory.bindings dump.Res_vm.Coredump.mem
        |> List.map fst
        |> List.filteri (fun i _ -> i < config.max_mem_hypotheses)
      in
      let mem_repair =
        List.find_opt
          (fun addr ->
            reconstructs_with config prog
              ~relaxed_mem:(ISet.singleton addr)
              ~relaxed_regs:[] dump)
          cells
      in
      match mem_repair with
      | Some addr -> Hardware (Memory_error { addr })
      | None -> (
          (* Register hypotheses: recorded registers of the crashing
             thread's frames. *)
          let crash_tid = dump.Res_vm.Coredump.crash.Res_vm.Crash.tid in
          let regs =
            List.concat_map
              (fun (fr : Res_vm.Frame.t) ->
                List.map fst (Res_vm.Frame.reg_bindings fr))
              (Res_vm.Coredump.crashing_thread dump).Res_vm.Thread.frames
            |> List.sort_uniq compare
            |> List.filteri (fun i _ -> i < config.max_reg_hypotheses)
          in
          let reg_repair =
            List.find_opt
              (fun reg ->
                reconstructs_with config prog ~relaxed_mem:ISet.empty
                  ~relaxed_regs:[ (crash_tid, reg) ]
                  dump)
              regs
          in
          match reg_repair with
          | Some reg -> Hardware (Cpu_error { tid = crash_tid; reg })
          | None -> Inconclusive))
