(** Basic blocks: a label, straight-line instructions, and one terminator. *)

type t = {
  label : Instr.label;
  instrs : Instr.instr array;
  term : Instr.terminator;
}

let v label instrs term = { label; instrs = Array.of_list instrs; term }

(** Number of straight-line instructions (terminator excluded). *)
let length b = Array.length b.instrs

(** [instr b i] is the [i]-th instruction.  @raise Invalid_argument if out
    of range. *)
let instr b i =
  if i < 0 || i >= Array.length b.instrs then
    invalid_arg
      (Fmt.str "Block.instr: index %d out of range for block %s" i b.label)
  else b.instrs.(i)

(** Registers written anywhere in the block (terminators never write). *)
let defined_regs b =
  Array.to_list b.instrs
  |> List.filter_map Instr.defs
  |> List.sort_uniq compare

(** Registers read anywhere in the block, including by the terminator. *)
let used_regs b =
  let from_instrs = Array.to_list b.instrs |> List.concat_map Instr.uses in
  List.sort_uniq compare (from_instrs @ Instr.term_uses b.term)

(** Registers whose value at block entry is observable: read at some point
    before being (re)defined within the block.  These are the registers the
    backward analysis must constrain against the pre-state. *)
let live_in_regs b =
  let defined = Hashtbl.create 8 in
  let live = ref [] in
  let see r = if not (Hashtbl.mem defined r) then live := r :: !live in
  Array.iter
    (fun i ->
      List.iter see (Instr.uses i);
      match Instr.defs i with
      | Some r -> Hashtbl.replace defined r ()
      | None -> ())
    b.instrs;
  List.iter see (Instr.term_uses b.term);
  List.sort_uniq compare !live

(** Intra-function successor labels. *)
let successors b = Instr.term_targets b.term

(** Whether the block contains any instruction satisfying [p]. *)
let exists p b = Array.exists p b.instrs

let pp ppf b =
  let pp_body ppf b =
    Array.iter (fun i -> Fmt.pf ppf "%a@," Instr.pp i) b.instrs;
    Instr.pp_terminator ppf b.term
  in
  Fmt.pf ppf "@[<v>%s:@;<0 2>@[<v>%a@]@]" b.label pp_body b

let equal a b =
  String.equal a.label b.label
  && Array.length a.instrs = Array.length b.instrs
  && Array.for_all2 Instr.equal_instr a.instrs b.instrs
  && Instr.equal_terminator a.term b.term
