(** Whole programs: named globals (sized in words) plus functions.

    Execution starts at the function named ["main"] unless overridden. *)

module SMap = Map.Make (String)

type global = { gname : string; gsize : int }

type t = {
  globals : global list;
  funcs : Func.t list;
  by_name : Func.t SMap.t;
  globals_by_name : global SMap.t;
}

(** Conventional entry-point name. *)
let main_name = "main"

(** [v ~globals funcs] builds a program.
    @raise Invalid_argument on duplicate function or global names, or on a
    non-positive global size. *)
let v ~globals funcs =
  let by_name =
    List.fold_left
      (fun m (f : Func.t) ->
        if SMap.mem f.name m then
          invalid_arg (Fmt.str "Prog.v: duplicate function %s" f.name)
        else SMap.add f.name f m)
      SMap.empty funcs
  in
  let globals_by_name =
    List.fold_left
      (fun m g ->
        if g.gsize <= 0 then
          invalid_arg (Fmt.str "Prog.v: global %s has size %d" g.gname g.gsize)
        else if SMap.mem g.gname m then
          invalid_arg (Fmt.str "Prog.v: duplicate global %s" g.gname)
        else SMap.add g.gname g m)
      SMap.empty globals
  in
  { globals; funcs; by_name; globals_by_name }

(** [func p name] looks up a function.  @raise Not_found if absent. *)
let func p name =
  match SMap.find_opt name p.by_name with
  | Some f -> f
  | None -> raise Not_found

let func_opt p name = SMap.find_opt name p.by_name
let mem_func p name = SMap.mem name p.by_name
let global_opt p name = SMap.find_opt name p.globals_by_name

(** The program entry function.  @raise Not_found if there is no [main]. *)
let main p = func p main_name

(** [block p ~func ~label] resolves a block by function and label. *)
let block p ~func:fname ~label = Func.block (func p fname) label

(** Total static instruction count (terminators included). *)
let size p =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left (fun acc b -> acc + Block.length b + 1) acc f.blocks)
    0 p.funcs

let pp ppf p =
  let pp_global ppf g = Fmt.pf ppf "global %s %d" g.gname g.gsize in
  Fmt.pf ppf "@[<v>%a%a%a@]"
    Fmt.(list ~sep:cut pp_global)
    p.globals
    Fmt.(if p.globals = [] then nop else cut)
    ()
    Fmt.(list ~sep:(cut ++ cut) Func.pp)
    p.funcs

let to_string p = Fmt.str "%a@." pp p

let equal a b =
  a.globals = b.globals
  && List.length a.funcs = List.length b.funcs
  && List.for_all2 Func.equal a.funcs b.funcs
