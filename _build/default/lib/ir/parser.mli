(** Textual assembler for MiniIR.

    The concrete syntax is the one produced by the pretty-printers, so
    [parse (Prog.to_string p)] round-trips (property-tested).  [#] starts a
    line comment.  Sketch:

    {v
    global counter 1

    func main() {
    entry:
      r0 = const 5
      r1 = add r0, r0
      r2 = global counter
      store r2[0] = r1
      br r1, big, small
    big:
      halt
    small:
      abort "impossible"
    }
    v} *)

exception Parse_error of { line : int; msg : string }

(** Lexer tokens — exposed so other textual formats (e.g. coredumps) can
    reuse the tokenizer. *)
type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | COLON

val pp_token : Format.formatter -> token -> unit

(** Tokenize source text into [(token, line)] pairs.
    @raise Parse_error on lexical errors. *)
val tokenize : string -> (token * int) list

(** Parse a whole program.
    @raise Parse_error with a line number on malformed input.
    @raise Invalid_argument on structural duplicates (via {!Prog.v}). *)
val parse : string -> Prog.t

(** Parse, turning failures into a [result] with a rendered message. *)
val parse_result : string -> (Prog.t, string) result
