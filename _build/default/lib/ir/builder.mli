(** Imperative builder DSL for constructing MiniIR programs in OCaml.

    Workload generators and tests use this instead of writing assembly
    text:

    {[
      let open Res_ir.Builder in
      let b = create () in
      let f = func b "main" ~params:0 in
      let entry = block f "entry" in
      let r = fresh f in
      const entry r 42;
      ret entry (Some r);
      let prog = finish b
    ]} *)

type block_builder
type func_builder
type t

val create : unit -> t

(** Declare a global of [size] words. *)
val global : t -> string -> int -> unit

(** Open a new function with [params] parameters (registers [r0..rn-1]). *)
val func : t -> string -> params:int -> func_builder

(** Parameter register [i].
    @raise Invalid_argument when out of range. *)
val param : func_builder -> int -> Instr.reg

(** Allocate a fresh virtual register. *)
val fresh : func_builder -> Instr.reg

(** Open a new block.  The first block opened becomes the entry. *)
val block : func_builder -> Instr.label -> block_builder

(** {2 Instruction emitters}

    Each appends one instruction to the block.
    @raise Invalid_argument after the block's terminator is set. *)

val const : block_builder -> Instr.reg -> int -> unit
val mov : block_builder -> Instr.reg -> Instr.reg -> unit

val binop :
  block_builder -> Instr.binop -> Instr.reg -> Instr.reg -> Instr.reg -> unit

val add : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val sub : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val mul : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val div : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val rem : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val eq : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val ne : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val lt : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val le : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val gt : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val ge : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val band : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val bor : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val bxor : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val shl : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val shr : block_builder -> Instr.reg -> Instr.reg -> Instr.reg -> unit
val unop : block_builder -> Instr.unop -> Instr.reg -> Instr.reg -> unit
val not_ : block_builder -> Instr.reg -> Instr.reg -> unit
val neg : block_builder -> Instr.reg -> Instr.reg -> unit
val load : block_builder -> Instr.reg -> Instr.reg -> int -> unit
val store : block_builder -> Instr.reg -> int -> Instr.reg -> unit
val global_addr : block_builder -> Instr.reg -> string -> unit
val alloc : block_builder -> Instr.reg -> Instr.reg -> unit
val free : block_builder -> Instr.reg -> unit
val input : block_builder -> Instr.reg -> Instr.input_kind -> unit
val lock : block_builder -> Instr.reg -> unit
val unlock : block_builder -> Instr.reg -> unit
val spawn : block_builder -> Instr.reg -> string -> Instr.reg list -> unit
val join : block_builder -> Instr.reg -> unit

val call :
  block_builder -> Instr.reg option -> string -> Instr.reg list -> unit

val assert_ : block_builder -> Instr.reg -> string -> unit
val log : block_builder -> string -> Instr.reg -> unit
val nop : block_builder -> unit

(** {2 Terminators}

    @raise Invalid_argument on a second terminator. *)

val jmp : block_builder -> Instr.label -> unit
val br : block_builder -> Instr.reg -> Instr.label -> Instr.label -> unit
val ret : block_builder -> Instr.reg option -> unit
val halt : block_builder -> unit
val abort : block_builder -> string -> unit

(** Load an immediate into a fresh register. *)
val imm : func_builder -> block_builder -> int -> Instr.reg

(** Close the builder and produce the program.
    @raise Invalid_argument if any block lacks a terminator or any function
    lacks blocks. *)
val finish : t -> Prog.t
