(** Program counters.

    A PC designates a function, a block, and an instruction index within the
    block.  Index [Block.length b] designates the terminator — the paper's
    "program counter found in the coredump" maps to this triple. *)

type t = { func : string; block : Instr.label; idx : int }

let v ~func ~block ~idx = { func; block; idx }
let entry_of (f : Func.t) = { func = f.name; block = f.entry; idx = 0 }

let equal a b =
  String.equal a.func b.func && String.equal a.block b.block && a.idx = b.idx

let compare a b =
  match String.compare a.func b.func with
  | 0 -> (
      match String.compare a.block b.block with
      | 0 -> Int.compare a.idx b.idx
      | c -> c)
  | c -> c

(** [at_terminator prog pc] is true when [pc] points at the terminator. *)
let at_terminator prog pc =
  let b = Prog.block prog ~func:pc.func ~label:pc.block in
  pc.idx >= Block.length b

(** Current instruction, or [None] when the PC is at the terminator. *)
let instr prog pc =
  let b = Prog.block prog ~func:pc.func ~label:pc.block in
  if pc.idx < Block.length b then Some (Block.instr b pc.idx) else None

let next pc = { pc with idx = pc.idx + 1 }
let block_start pc = { pc with idx = 0 }

let pp ppf pc = Fmt.pf ppf "%s:%s:%d" pc.func pc.block pc.idx
let to_string pc = Fmt.str "%a" pp pc
