(** Functions: named parameter registers, an entry label, and basic blocks. *)

module SMap = Map.Make (String)

type t = {
  name : string;
  params : Instr.reg list;
  entry : Instr.label;
  blocks : Block.t list;  (** in source order, entry first by convention *)
  by_label : Block.t SMap.t;
}

(** [v ~name ~params ~entry blocks] builds a function.
    @raise Invalid_argument on duplicate labels or a missing entry block. *)
let v ~name ~params ~entry blocks =
  let by_label =
    List.fold_left
      (fun m (b : Block.t) ->
        if SMap.mem b.label m then
          invalid_arg (Fmt.str "Func.v: duplicate label %s in %s" b.label name)
        else SMap.add b.label b m)
      SMap.empty blocks
  in
  if not (SMap.mem entry by_label) then
    invalid_arg (Fmt.str "Func.v: entry %s missing in %s" entry name);
  { name; params; entry; blocks; by_label }

(** [block f l] is the block labelled [l].  @raise Not_found if absent. *)
let block f l =
  match SMap.find_opt l f.by_label with
  | Some b -> b
  | None -> raise Not_found

let block_opt f l = SMap.find_opt l f.by_label
let mem_block f l = SMap.mem l f.by_label
let entry_block f = block f f.entry

(** All registers mentioned anywhere in the function. *)
let all_regs f =
  let of_block b = Block.defined_regs b @ Block.used_regs b in
  List.concat_map of_block f.blocks @ f.params |> List.sort_uniq compare

(** Largest register index used, or -1 for a register-free function. *)
let max_reg f = List.fold_left max (-1) (all_regs f)

let pp ppf f =
  Fmt.pf ppf "@[<v>func %s(%a) {@;<0 0>%a@;<0 0>}@]" f.name
    Fmt.(list ~sep:(any ", ") Instr.pp_reg)
    f.params
    Fmt.(list ~sep:cut Block.pp)
    f.blocks

let equal a b =
  String.equal a.name b.name
  && a.params = b.params
  && String.equal a.entry b.entry
  && List.length a.blocks = List.length b.blocks
  && List.for_all2 Block.equal a.blocks b.blocks
