lib/ir/validate.mli: Format Prog
