lib/ir/pc.ml: Block Fmt Func Instr Int Prog String
