lib/ir/instr.ml: Fmt String
