lib/ir/pc.mli: Format Func Instr Prog
