lib/ir/cfg.ml: Array Block Fmt Func Hashtbl Instr List Map Option Prog Queue String
