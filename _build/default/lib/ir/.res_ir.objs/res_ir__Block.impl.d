lib/ir/block.ml: Array Fmt Hashtbl Instr List String
