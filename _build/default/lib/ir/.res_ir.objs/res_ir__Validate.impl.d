lib/ir/validate.ml: Array Block Fmt Fun Func Instr List Prog
