lib/ir/prog.ml: Block Fmt Func List Map String
