lib/ir/builder.ml: Block Fmt Fun Func Instr List Prog
