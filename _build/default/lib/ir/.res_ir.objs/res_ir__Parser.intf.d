lib/ir/parser.mli: Format Prog
