lib/ir/func.ml: Block Fmt Instr List Map String
