lib/ir/cfg.mli: Func Instr Prog
