lib/ir/parser.ml: Block Buffer Fmt Func Instr List Prog String
