(** Imperative builder DSL for constructing MiniIR programs in OCaml.

    Workload generators and tests use this instead of writing assembly text.
    Typical usage:

    {[
      let open Res_ir.Builder in
      let b = create () in
      let f = func b "main" ~params:[] in
      let entry = block f "entry" in
      let r1 = fresh f in
      const entry r1 42;
      ret entry (Some r1);
      let prog = finish b
    ]} *)

type block_builder = {
  bb_label : Instr.label;
  mutable bb_instrs : Instr.instr list;  (** reverse order *)
  mutable bb_term : Instr.terminator option;
}

type func_builder = {
  fb_name : string;
  fb_params : Instr.reg list;
  mutable fb_blocks : block_builder list;  (** reverse order *)
  mutable fb_next_reg : int;
  mutable fb_entry : Instr.label option;
}

type t = {
  mutable globals : Prog.global list;  (** reverse order *)
  mutable funcs : func_builder list;  (** reverse order *)
}

let create () = { globals = []; funcs = [] }

(** Declare a global of [size] words. *)
let global t name size = t.globals <- { Prog.gname = name; gsize = size } :: t.globals

(** Open a new function.  Parameters occupy registers [0..n-1]. *)
let func t name ~params:nparams =
  let fb =
    {
      fb_name = name;
      fb_params = List.init nparams Fun.id;
      fb_blocks = [];
      fb_next_reg = nparams;
      fb_entry = None;
    }
  in
  t.funcs <- fb :: t.funcs;
  fb

(** Parameter register [i] of [f]. *)
let param (f : func_builder) i =
  if i < 0 || i >= List.length f.fb_params then
    invalid_arg (Fmt.str "Builder.param: %s has no param %d" f.fb_name i)
  else i

(** Allocate a fresh virtual register. *)
let fresh f =
  let r = f.fb_next_reg in
  f.fb_next_reg <- r + 1;
  r

(** Open a new block.  The first block opened becomes the entry. *)
let block f label =
  let bb = { bb_label = label; bb_instrs = []; bb_term = None } in
  f.fb_blocks <- bb :: f.fb_blocks;
  if f.fb_entry = None then f.fb_entry <- Some label;
  bb

let push bb i =
  (match bb.bb_term with
  | Some _ ->
      invalid_arg
        (Fmt.str "Builder: instruction after terminator in %s" bb.bb_label)
  | None -> ());
  bb.bb_instrs <- i :: bb.bb_instrs

let set_term bb t =
  match bb.bb_term with
  | Some _ -> invalid_arg (Fmt.str "Builder: two terminators in %s" bb.bb_label)
  | None -> bb.bb_term <- Some t

(* Instruction emitters — one tiny function per opcode keeps generators
   readable. *)
let const bb r n = push bb (Instr.Const (r, n))
let mov bb dst src = push bb (Instr.Mov (dst, src))
let binop bb op dst a b = push bb (Instr.Binop (op, dst, a, b))
let add bb dst a b = binop bb Instr.Add dst a b
let sub bb dst a b = binop bb Instr.Sub dst a b
let mul bb dst a b = binop bb Instr.Mul dst a b
let div bb dst a b = binop bb Instr.Div dst a b
let rem bb dst a b = binop bb Instr.Rem dst a b
let eq bb dst a b = binop bb Instr.Eq dst a b
let ne bb dst a b = binop bb Instr.Ne dst a b
let lt bb dst a b = binop bb Instr.Lt dst a b
let le bb dst a b = binop bb Instr.Le dst a b
let gt bb dst a b = binop bb Instr.Gt dst a b
let ge bb dst a b = binop bb Instr.Ge dst a b
let band bb dst a b = binop bb Instr.And dst a b
let bor bb dst a b = binop bb Instr.Or dst a b
let bxor bb dst a b = binop bb Instr.Xor dst a b
let shl bb dst a b = binop bb Instr.Shl dst a b
let shr bb dst a b = binop bb Instr.Shr dst a b
let unop bb op dst a = push bb (Instr.Unop (op, dst, a))
let not_ bb dst a = unop bb Instr.Not dst a
let neg bb dst a = unop bb Instr.Neg dst a
let load bb dst addr off = push bb (Instr.Load (dst, addr, off))
let store bb addr off src = push bb (Instr.Store (addr, off, src))
let global_addr bb dst name = push bb (Instr.Global_addr (dst, name))
let alloc bb dst size = push bb (Instr.Alloc (dst, size))
let free bb addr = push bb (Instr.Free addr)
let input bb dst kind = push bb (Instr.Input (dst, kind))
let lock bb addr = push bb (Instr.Lock addr)
let unlock bb addr = push bb (Instr.Unlock addr)
let spawn bb dst fname args = push bb (Instr.Spawn (dst, fname, args))
let join bb tid = push bb (Instr.Join tid)
let call bb dst fname args = push bb (Instr.Call (dst, fname, args))
let assert_ bb r msg = push bb (Instr.Assert (r, msg))
let log bb tag r = push bb (Instr.Log (tag, r))
let nop bb = push bb Instr.Nop

(* Terminators. *)
let jmp bb l = set_term bb (Instr.Jmp l)
let br bb r l1 l2 = set_term bb (Instr.Br (r, l1, l2))
let ret bb r = set_term bb (Instr.Ret r)
let halt bb = set_term bb Instr.Halt
let abort bb msg = set_term bb (Instr.Abort msg)

(** Convenience: load an immediate into a fresh register. *)
let imm f bb n =
  let r = fresh f in
  const bb r n;
  r

let finish_block bb =
  match bb.bb_term with
  | None ->
      invalid_arg (Fmt.str "Builder.finish: block %s lacks a terminator" bb.bb_label)
  | Some term -> Block.v bb.bb_label (List.rev bb.bb_instrs) term

let finish_func fb =
  match fb.fb_entry with
  | None -> invalid_arg (Fmt.str "Builder.finish: function %s is empty" fb.fb_name)
  | Some entry ->
      Func.v ~name:fb.fb_name ~params:fb.fb_params ~entry
        (List.rev_map finish_block fb.fb_blocks)

(** Close the builder and produce the program.
    @raise Invalid_argument if any block lacks a terminator or any function
    lacks blocks. *)
let finish t =
  Prog.v ~globals:(List.rev t.globals) (List.rev_map finish_func t.funcs)
