(** Program counters.

    A PC designates a function, a block, and an instruction index within the
    block.  Index [Block.length b] designates the terminator — the paper's
    "program counter found in the coredump" maps to this triple. *)

type t = { func : string; block : Instr.label; idx : int }

val v : func:string -> block:Instr.label -> idx:int -> t

(** The PC of a function's first instruction. *)
val entry_of : Func.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Whether the PC points at the block's terminator. *)
val at_terminator : Prog.t -> t -> bool

(** Current instruction, or [None] when the PC is at the terminator. *)
val instr : Prog.t -> t -> Instr.instr option

(** Advance past one instruction. *)
val next : t -> t

(** The same block at index 0. *)
val block_start : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
