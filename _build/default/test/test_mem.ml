(* Unit and property tests for the memory substrate: sparse memory, the
   address-space layout, and the heap allocator's access classification. *)

open Res_mem

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* --- memory --- *)

let test_memory_basics () =
  let m = Memory.empty in
  check int_t "unwritten reads 0" 0 (Memory.read m 42);
  let m = Memory.write m 42 7 in
  check int_t "read back" 7 (Memory.read m 42);
  let m = Memory.write m 42 0 in
  check int_t "explicit zero" 0 (Memory.read m 42);
  check bool_t "explicit zero recorded" true
    (List.mem_assoc 42 (Memory.bindings m))

let test_memory_diff () =
  let a = Memory.write (Memory.write Memory.empty 1 10) 2 20 in
  let b = Memory.write (Memory.write Memory.empty 1 10) 3 30 in
  check
    (Alcotest.list (Alcotest.triple int_t int_t int_t))
    "diff" [ (2, 20, 0); (3, 0, 30) ] (Memory.diff a b);
  check bool_t "equal to self" true (Memory.equal a a);
  check bool_t "not equal" false (Memory.equal a b)

let test_memory_flip_bit () =
  let m = Memory.write Memory.empty 5 0b1010 in
  let m' = Memory.flip_bit m 5 1 in
  check int_t "bit cleared" 0b1000 (Memory.read m' 5);
  let m'' = Memory.flip_bit m' 5 1 in
  check int_t "double flip restores" 0b1010 (Memory.read m'' 5)

let prop_write_read =
  QCheck2.Test.make ~name:"write then read" ~count:300
    QCheck2.Gen.(triple (int_range 0 100000) int (int_range 0 100000))
    (fun (a, v, b) ->
      let m = Memory.write Memory.empty a v in
      Memory.read m a = v && (a = b || Memory.read m b = 0))

let prop_flip_involutive =
  QCheck2.Test.make ~name:"flip_bit is involutive" ~count:300
    QCheck2.Gen.(triple (int_range 0 1000) int (int_range 0 61))
    (fun (a, v, bit) ->
      let m = Memory.write Memory.empty a v in
      Memory.equal m (Memory.flip_bit (Memory.flip_bit m a bit) a bit))

let prop_diff_empty_iff_equal =
  QCheck2.Test.make ~name:"diff empty iff equal" ~count:200
    QCheck2.Gen.(
      pair
        (small_list (pair (int_range 0 50) (int_range 0 5)))
        (small_list (pair (int_range 0 50) (int_range 0 5))))
    (fun (ws_a, ws_b) ->
      let build ws =
        List.fold_left (fun m (a, v) -> Memory.write m a v) Memory.empty ws
      in
      let a = build ws_a and b = build ws_b in
      Memory.equal a b = (Memory.diff a b = []))

(* --- layout --- *)

let prog_with_globals =
  Res_ir.Parser.parse
    {|
global a 2
global b 3
func main() { e: halt }
|}

let test_layout_placement () =
  let l = Layout.of_prog prog_with_globals in
  let base_a = Layout.global_base l "a" in
  let base_b = Layout.global_base l "b" in
  check int_t "a placed at base" Layout.globals_base base_a;
  check int_t "guard gap between globals" (base_a + 2 + 1) base_b;
  check bool_t "a's words found" true
    (Layout.find_global l (base_a + 1) <> None);
  check bool_t "guard word not in any global" true
    (Layout.find_global l (base_a + 2) = None);
  check bool_t "guard word in region" true
    (Layout.in_globals_region l (base_a + 2));
  check bool_t "heap region disjoint" false (Layout.in_heap_region base_b);
  check bool_t "heap base in heap region" true
    (Layout.in_heap_region Layout.heap_base)

let test_layout_describe () =
  let l = Layout.of_prog prog_with_globals in
  let base_a = Layout.global_base l "a" in
  check Alcotest.string "describe base" "a" (Layout.describe l base_a);
  check Alcotest.string "describe offset" "a+1" (Layout.describe l (base_a + 1));
  check Alcotest.string "describe null" "null" (Layout.describe l 0)

let test_layout_unknown_global () =
  let l = Layout.of_prog prog_with_globals in
  Alcotest.check_raises "unknown global" Not_found (fun () ->
      ignore (Layout.global_base l "zzz"))

(* --- heap --- *)

let test_heap_alloc_free () =
  let h = Heap.empty in
  let h, p1 = Heap.alloc h ~size:4 ~site:None in
  let h, p2 = Heap.alloc h ~size:2 ~site:None in
  check bool_t "blocks disjoint with guard" true (p2 >= p1 + 4 + 1);
  (match Heap.check_access h (p1 + 3) with
  | Heap.Ok_access b -> check int_t "found block" p1 b.Heap.base
  | _ -> Alcotest.fail "expected Ok_access");
  (match Heap.check_access h (p1 + 4) with
  | Heap.Out_of_bounds (b, _) -> check int_t "oob block" p1 b.Heap.base
  | _ -> Alcotest.fail "expected Out_of_bounds");
  let site = Res_ir.Pc.v ~func:"f" ~block:"b" ~idx:0 in
  (match Heap.free h p1 ~site with
  | Heap.Freed_ok (h, _) -> (
      (match Heap.check_access h (p1 + 1) with
      | Heap.Use_after_free b -> check int_t "uaf block" p1 b.Heap.base
      | _ -> Alcotest.fail "expected Use_after_free");
      match Heap.free h p1 ~site with
      | Heap.Double_free _ -> ()
      | _ -> Alcotest.fail "expected Double_free")
  | _ -> Alcotest.fail "expected Freed_ok");
  match Heap.free h (p1 + 1) ~site with
  | Heap.Invalid_free -> ()
  | _ -> Alcotest.fail "expected Invalid_free"

let test_heap_unmapped () =
  let h = Heap.empty in
  (match Heap.check_access h Layout.heap_base with
  | Heap.Unmapped -> ()
  | _ -> Alcotest.fail "expected Unmapped on empty heap");
  let h, p1 = Heap.alloc h ~size:2 ~site:None in
  match Heap.check_access h (p1 + 100) with
  | Heap.Unmapped -> ()
  | _ -> Alcotest.fail "expected Unmapped far past block"

let test_heap_zero_alloc () =
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Heap.alloc: non-positive size") (fun () ->
      ignore (Heap.alloc Heap.empty ~size:0 ~site:None))

let prop_heap_access_classification =
  (* after a sequence of allocs, every in-bounds word of a live block is
     Ok_access and its guard word is Out_of_bounds *)
  QCheck2.Test.make ~name:"heap classification" ~count:100
    QCheck2.Gen.(small_list (int_range 1 8))
    (fun sizes ->
      let h, bases =
        List.fold_left
          (fun (h, acc) size ->
            let h, p = Heap.alloc h ~size ~site:None in
            (h, (p, size) :: acc))
          (Heap.empty, []) sizes
      in
      List.for_all
        (fun (base, size) ->
          let in_bounds =
            List.init size (fun i ->
                match Heap.check_access h (base + i) with
                | Heap.Ok_access b -> b.Heap.base = base
                | _ -> false)
          in
          let guard =
            match Heap.check_access h (base + size) with
            | Heap.Out_of_bounds (b, _) -> b.Heap.base = base
            | _ -> false
          in
          List.for_all Fun.id in_bounds && guard)
        bases)

let prop_heap_live_blocks =
  QCheck2.Test.make ~name:"free removes from live set" ~count:100
    QCheck2.Gen.(int_range 1 10)
    (fun n ->
      let site = Res_ir.Pc.v ~func:"f" ~block:"b" ~idx:0 in
      let h, bases =
        List.fold_left
          (fun (h, acc) _ ->
            let h, p = Heap.alloc h ~size:1 ~site:None in
            (h, p :: acc))
          (Heap.empty, [])
          (List.init n Fun.id)
      in
      let to_free = List.filteri (fun i _ -> i mod 2 = 0) bases in
      let h =
        List.fold_left
          (fun h p ->
            match Heap.free h p ~site with
            | Heap.Freed_ok (h, _) -> h
            | _ -> h)
          h to_free
      in
      let live = List.map (fun (b : Heap.block) -> b.base) (Heap.live_blocks h) in
      List.for_all (fun p -> not (List.mem p live)) to_free
      && List.length live = n - List.length to_free)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_write_read;
      prop_flip_involutive;
      prop_diff_empty_iff_equal;
      prop_heap_access_classification;
      prop_heap_live_blocks;
    ]

let () =
  Alcotest.run "res_mem"
    [
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick test_memory_basics;
          Alcotest.test_case "diff" `Quick test_memory_diff;
          Alcotest.test_case "flip_bit" `Quick test_memory_flip_bit;
        ] );
      ( "layout",
        [
          Alcotest.test_case "placement" `Quick test_layout_placement;
          Alcotest.test_case "describe" `Quick test_layout_describe;
          Alcotest.test_case "unknown global" `Quick test_layout_unknown_global;
        ] );
      ( "heap",
        [
          Alcotest.test_case "alloc/free lifecycle" `Quick test_heap_alloc_free;
          Alcotest.test_case "unmapped" `Quick test_heap_unmapped;
          Alcotest.test_case "zero alloc" `Quick test_heap_zero_alloc;
        ] );
      ("properties", qcheck_cases);
    ]
