(* Unit and property tests for the constraint solver: expression algebra,
   the simplifier, the interval domain, and the solve/concretize API. *)

open Res_solver

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let sym name = Expr.fresh_sym name

(* --- expressions --- *)

let test_expr_basics () =
  let x = sym "x" in
  let e = Expr.add (Expr.Sym x) (Expr.const 3) in
  check int_t "eval" 10 (Expr.eval (fun _ -> 7) e);
  check bool_t "not concrete" false (Expr.is_concrete e);
  check bool_t "concrete" true (Expr.is_concrete (Expr.const 4));
  check int_t "one free sym" 1 (Expr.Sym_set.cardinal (Expr.syms e));
  let e' = Expr.subst_sym x 7 e in
  check bool_t "subst concretizes" true (Expr.is_concrete e');
  check int_t "subst value" 10 (Expr.eval (fun _ -> 0) e')

let test_expr_equal () =
  let x = sym "x" and y = sym "y" in
  check bool_t "same sym equal" true (Expr.equal (Expr.Sym x) (Expr.Sym x));
  check bool_t "distinct syms differ" false (Expr.equal (Expr.Sym x) (Expr.Sym y));
  check bool_t "structural" true
    (Expr.equal
       (Expr.add (Expr.Sym x) (Expr.const 1))
       (Expr.add (Expr.Sym x) (Expr.const 1)))

(* random expression generator over a fixed pool of syms *)
let pool = Array.init 4 (fun i -> Expr.fresh_sym (Fmt.str "q%d" i))

let gen_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        (let* n = int_range (-20) 20 in
         return (Expr.const n));
        (let* i = int_range 0 3 in
         return (Expr.Sym pool.(i)));
      ]
  in
  let safe_binops =
    Res_ir.Instr.[ Add; Sub; Mul; And; Or; Xor; Eq; Ne; Lt; Le; Gt; Ge ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        oneof
          [
            leaf;
            (let* op = oneofl safe_binops in
             let* a = self (depth - 1) in
             let* b = self (depth - 1) in
             return (Expr.Binop (op, a, b)));
            (let* op = oneofl Res_ir.Instr.[ Not; Neg ] in
             let* a = self (depth - 1) in
             return (Expr.Unop (op, a)));
            (let* c = self (depth - 1) in
             let* a = self (depth - 1) in
             let* b = self (depth - 1) in
             return (Expr.Ite (c, a, b)));
          ])
    4

let gen_env =
  let open QCheck2.Gen in
  let* vals = array_repeat 4 (int_range (-50) 50) in
  return (fun (s : Expr.sym) ->
      match Array.to_list (Array.mapi (fun i p -> (p.Expr.id, vals.(i))) pool) with
      | l -> ( match List.assoc_opt s.Expr.id l with Some v -> v | None -> 0))

let prop_norm_preserves_semantics =
  QCheck2.Test.make ~name:"Simplify.norm preserves evaluation" ~count:500
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (e, env) ->
      let v1 = Expr.eval env e and v2 = Expr.eval env (Simplify.norm e) in
      v1 = v2)

let prop_norm_idempotent =
  QCheck2.Test.make ~name:"Simplify.norm is idempotent" ~count:500 gen_expr
    (fun e ->
      let n1 = Simplify.norm e in
      Expr.equal n1 (Simplify.norm n1))

let test_simplify_identities () =
  let x = Expr.Sym (sym "x") in
  let n = Simplify.norm in
  check bool_t "x+0" true (Expr.equal (n (Expr.add x Expr.zero)) x);
  check bool_t "0+x" true (Expr.equal (n (Expr.add Expr.zero x)) x);
  check bool_t "x*1" true (Expr.equal (n (Expr.mul x Expr.one)) x);
  check bool_t "x*0" true (Expr.equal (n (Expr.mul x Expr.zero)) Expr.zero);
  check bool_t "x-x" true (Expr.equal (n (Expr.sub x x)) Expr.zero);
  check bool_t "x=x" true (Expr.equal (n (Expr.eq x x)) Expr.one);
  check bool_t "const fold" true
    (Expr.equal (n (Expr.add (Expr.const 2) (Expr.const 3))) (Expr.const 5));
  check bool_t "drift" true
    (Expr.equal
       (n (Expr.add (Expr.add x (Expr.const 2)) (Expr.const 3)))
       (n (Expr.add x (Expr.const 5))));
  check bool_t "cmp shift" true
    (Expr.equal
       (n (Expr.eq (Expr.add x (Expr.const 2)) (Expr.const 7)))
       (n (Expr.eq x (Expr.const 5))));
  (* division by zero never folds *)
  check bool_t "div0 preserved" true
    (match n (Expr.Binop (Res_ir.Instr.Div, Expr.const 4, Expr.const 0)) with
    | Expr.Binop (Res_ir.Instr.Div, _, _) -> true
    | _ -> false)

(* --- intervals --- *)

let prop_interval_binop_sound =
  QCheck2.Test.make ~name:"interval transfer is sound" ~count:1000
    QCheck2.Gen.(
      let* op =
        oneofl
          Res_ir.Instr.
            [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Eq; Ne; Lt; Le; Gt; Ge ]
      in
      let* a_lo = int_range (-100) 100 in
      let* a_off = int_range 0 50 in
      let* b_lo = int_range (-100) 100 in
      let* b_off = int_range 0 50 in
      let* a_v = int_range 0 a_off in
      let* b_v = int_range 0 b_off in
      return (op, a_lo, a_off, b_lo, b_off, a_v, b_v))
    (fun (op, a_lo, a_off, b_lo, b_off, a_v, b_v) ->
      let ia = Interval.v a_lo (a_lo + a_off) in
      let ib = Interval.v b_lo (b_lo + b_off) in
      let va = a_lo + a_v and vb = b_lo + b_v in
      match Res_ir.Instr.eval_binop op va vb with
      | exception Division_by_zero -> true
      | r -> Interval.contains (Interval.of_binop op ia ib) r)

let test_interval_basics () =
  let i = Interval.v 3 7 in
  check bool_t "contains" true (Interval.contains i 5);
  check bool_t "not contains" false (Interval.contains i 8);
  check (Alcotest.option int_t) "size" (Some 5) (Interval.size i);
  check bool_t "empty inter" true
    (Interval.is_empty (Interval.inter i (Interval.v 10 20)));
  check bool_t "top unbounded" true (Interval.size Interval.top = None)

(* --- solver --- *)

let solve = Solver.solve ?config:None

let expect_sat name cs preds =
  match solve cs with
  | Solver.Sat m ->
      List.iter (fun (what, p) -> check bool_t (name ^ ": " ^ what) true (p m)) preds;
      check bool_t (name ^ ": model satisfies all") true
        (List.for_all (Model.satisfies m) cs)
  | Solver.Unsat -> Alcotest.failf "%s: expected sat, got unsat" name
  | Solver.Unknown -> Alcotest.failf "%s: expected sat, got unknown" name

let expect_unsat name cs =
  match solve cs with
  | Solver.Unsat -> ()
  | Solver.Sat m -> Alcotest.failf "%s: expected unsat, got model %a" name Model.pp m
  | Solver.Unknown -> Alcotest.failf "%s: expected unsat, got unknown" name

let test_solve_trivial () =
  let x = sym "x" in
  expect_sat "x = 5"
    [ Expr.eq (Expr.Sym x) (Expr.const 5) ]
    [ ("x is 5", fun m -> Model.value m x = 5) ];
  expect_unsat "x = 5 and x = 6"
    [
      Expr.eq (Expr.Sym x) (Expr.const 5); Expr.eq (Expr.Sym x) (Expr.const 6);
    ];
  expect_sat "no constraints" [] [];
  expect_unsat "false" [ Expr.zero ];
  expect_sat "true" [ Expr.one ] []

let test_solve_linear_one_var () =
  let x = sym "x" in
  expect_sat "x + 3 = 10"
    [ Expr.eq (Expr.add (Expr.Sym x) (Expr.const 3)) (Expr.const 10) ]
    [ ("x is 7", fun m -> Model.value m x = 7) ];
  expect_sat "2x = 14"
    [ Expr.eq (Expr.mul (Expr.const 2) (Expr.Sym x)) (Expr.const 14) ]
    [ ("x is 7", fun m -> Model.value m x = 7) ];
  expect_unsat "2x = 7"
    [ Expr.eq (Expr.mul (Expr.const 2) (Expr.Sym x)) (Expr.const 7) ]

let test_solve_inequalities () =
  let x = sym "x" in
  expect_sat "3 < x <= 5, x != 4"
    [
      Expr.gt (Expr.Sym x) (Expr.const 3);
      Expr.le (Expr.Sym x) (Expr.const 5);
      Expr.ne (Expr.Sym x) (Expr.const 4);
    ]
    [ ("x is 5", fun m -> Model.value m x = 5) ];
  expect_unsat "x < 3 and x > 5"
    [ Expr.lt (Expr.Sym x) (Expr.const 3); Expr.gt (Expr.Sym x) (Expr.const 5) ]

let test_solve_linear_system () =
  let x = sym "x" and y = sym "y" in
  expect_sat "x+y=10, x-y=4"
    [
      Expr.eq (Expr.add (Expr.Sym x) (Expr.Sym y)) (Expr.const 10);
      Expr.eq (Expr.sub (Expr.Sym x) (Expr.Sym y)) (Expr.const 4);
    ]
    [
      ("x is 7", fun m -> Model.value m x = 7);
      ("y is 3", fun m -> Model.value m y = 3);
    ];
  expect_unsat "x+y=10, x+y=11"
    [
      Expr.eq (Expr.add (Expr.Sym x) (Expr.Sym y)) (Expr.const 10);
      Expr.eq (Expr.add (Expr.Sym x) (Expr.Sym y)) (Expr.const 11);
    ]

let test_solve_three_var_chain () =
  let x = sym "x" and y = sym "y" and z = sym "z" in
  expect_sat "chain"
    [
      Expr.eq (Expr.add (Expr.Sym x) (Expr.Sym y)) (Expr.Sym z);
      Expr.eq (Expr.Sym z) (Expr.const 9);
      Expr.eq (Expr.sub (Expr.Sym x) (Expr.Sym y)) (Expr.const 1);
    ]
    [
      ("x is 5", fun m -> Model.value m x = 5);
      ("y is 4", fun m -> Model.value m y = 4);
    ]

let test_solve_boolean_structure () =
  let x = sym "x" and y = sym "y" in
  (* (x=1 and y=2) via And-splitting *)
  expect_sat "and split"
    [
      Expr.Binop
        ( Res_ir.Instr.And,
          Expr.eq (Expr.Sym x) (Expr.const 1),
          Expr.eq (Expr.Sym y) (Expr.const 2) );
    ]
    [
      ("x is 1", fun m -> Model.value m x = 1);
      ("y is 2", fun m -> Model.value m y = 2);
    ];
  (* not (x = 3) with x in [3,4] forces 4 *)
  expect_sat "negated eq"
    [
      Expr.ge (Expr.Sym x) (Expr.const 3);
      Expr.le (Expr.Sym x) (Expr.const 4);
      Expr.logical_not (Expr.eq (Expr.Sym x) (Expr.const 3));
    ]
    [ ("x is 4", fun m -> Model.value m x = 4) ]

let test_solve_division_guard () =
  let x = sym "x" in
  (* 10 / x = 5 with x > 0: enumerable once bounded *)
  expect_sat "division"
    [
      Expr.gt (Expr.Sym x) (Expr.const 0);
      Expr.le (Expr.Sym x) (Expr.const 20);
      Expr.eq
        (Expr.Binop (Res_ir.Instr.Div, Expr.const 10, Expr.Sym x))
        (Expr.const 5);
    ]
    [ ("10/x=5", fun m -> 10 / Model.value m x = 5) ]

let test_solve_nonlinear_small () =
  let x = sym "x" in
  expect_sat "x*x = 49, bounded"
    [
      Expr.ge (Expr.Sym x) (Expr.const 0);
      Expr.le (Expr.Sym x) (Expr.const 100);
      Expr.eq (Expr.mul (Expr.Sym x) (Expr.Sym x)) (Expr.const 49);
    ]
    [ ("x is 7", fun m -> Model.value m x = 7) ]

let test_concretize () =
  let x = sym "x" in
  let constraints =
    [ Expr.ge (Expr.Sym x) (Expr.const 2); Expr.le (Expr.Sym x) (Expr.const 4) ]
  in
  (match Solver.concretize ~constraints ~max_candidates:10 (Expr.Sym x) with
  | Ok vs ->
      check (Alcotest.list int_t) "all values" [ 2; 3; 4 ] (List.sort compare vs)
  | Error `Unknown -> Alcotest.fail "unexpected unknown");
  match
    Solver.unique_value
      ~constraints:[ Expr.eq (Expr.Sym x) (Expr.const 9) ]
      (Expr.add (Expr.Sym x) (Expr.const 1))
  with
  | Some 10 -> ()
  | Some v -> Alcotest.failf "expected 10, got %d" v
  | None -> Alcotest.fail "expected unique value"

let test_unique_value_ambiguous () =
  let x = sym "x" in
  match
    Solver.unique_value
      ~constraints:
        [ Expr.ge (Expr.Sym x) (Expr.const 0); Expr.le (Expr.Sym x) (Expr.const 1) ]
      (Expr.Sym x)
  with
  | None -> ()
  | Some v -> Alcotest.failf "expected ambiguity, got %d" v

(* property: on random small systems, solver verdicts agree with brute force *)
let prop_solver_vs_bruteforce =
  let open QCheck2.Gen in
  let small_pool = Array.sub pool 0 2 in
  let gen_cmp =
    let* op = oneofl Res_ir.Instr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    let* lhs_sym = int_range 0 1 in
    let* scale = int_range 1 2 in
    let* shift = int_range (-3) 3 in
    let* rhs = int_range (-6) 6 in
    return
      (Expr.Binop
         ( op,
           Expr.add
             (Expr.mul (Expr.const scale) (Expr.Sym small_pool.(lhs_sym)))
             (Expr.const shift),
           Expr.const rhs ))
  in
  let gen_system =
    let* n = int_range 1 4 in
    let* cs = list_repeat n gen_cmp in
    (* bound the search space so brute force and solver both terminate *)
    let bounds s =
      [
        Expr.ge (Expr.Sym s) (Expr.const (-8)); Expr.le (Expr.Sym s) (Expr.const 8);
      ]
    in
    return (cs @ bounds small_pool.(0) @ bounds small_pool.(1))
  in
  QCheck2.Test.make ~name:"solver agrees with brute force" ~count:300 gen_system
    (fun cs ->
      let brute_sat =
        let vals = List.init 17 (fun i -> i - 8) in
        List.exists
          (fun v0 ->
            List.exists
              (fun v1 ->
                let env (s : Expr.sym) =
                  if s.Expr.id = small_pool.(0).Expr.id then v0
                  else if s.Expr.id = small_pool.(1).Expr.id then v1
                  else 0
                in
                List.for_all
                  (fun c ->
                    match Expr.eval env c with
                    | v -> v <> 0
                    | exception Division_by_zero -> false)
                  cs)
              vals)
          vals
      in
      match solve cs with
      | Solver.Sat m -> brute_sat && List.for_all (Model.satisfies m) cs
      | Solver.Unsat -> not brute_sat
      | Solver.Unknown -> true (* allowed, never wrong *))

let prop_sat_models_verified =
  QCheck2.Test.make ~name:"every Sat model satisfies its constraints" ~count:200
    QCheck2.Gen.(small_list gen_expr)
    (fun cs ->
      match solve cs with
      | Solver.Sat m -> List.for_all (Model.satisfies m) cs
      | Solver.Unsat | Solver.Unknown -> true)

(* systems of small linear equalities over 3 variables: the affine
   elimination path must agree with brute force *)
let prop_linear_systems_vs_bruteforce =
  let open QCheck2.Gen in
  let vars = Array.init 3 (fun i -> Expr.fresh_sym (Fmt.str "lv%d" i)) in
  let gen_equality =
    let* c0 = int_range (-2) 2 in
    let* c1 = int_range (-2) 2 in
    let* c2 = int_range (-2) 2 in
    let* k = int_range (-6) 6 in
    let term c v = Expr.mul (Expr.const c) (Expr.Sym v) in
    return
      (Expr.eq
         (Expr.add (Expr.add (term c0 vars.(0)) (term c1 vars.(1))) (term c2 vars.(2)))
         (Expr.const k))
  in
  let gen_system =
    let* n = int_range 1 3 in
    let* eqs = list_repeat n gen_equality in
    let bound v =
      [ Expr.ge (Expr.Sym v) (Expr.const (-5)); Expr.le (Expr.Sym v) (Expr.const 5) ]
    in
    return (eqs @ List.concat_map bound (Array.to_list vars))
  in
  QCheck2.Test.make ~name:"linear systems agree with brute force" ~count:200
    gen_system (fun cs ->
      let vals = List.init 11 (fun i -> i - 5) in
      let brute =
        List.exists
          (fun v0 ->
            List.exists
              (fun v1 ->
                List.exists
                  (fun v2 ->
                    let env (s : Expr.sym) =
                      if s.Expr.id = vars.(0).Expr.id then v0
                      else if s.Expr.id = vars.(1).Expr.id then v1
                      else if s.Expr.id = vars.(2).Expr.id then v2
                      else 0
                    in
                    List.for_all (fun c -> Expr.eval env c <> 0) cs)
                  vals)
              vals)
          vals
      in
      match solve cs with
      | Solver.Sat m -> brute && List.for_all (Model.satisfies m) cs
      | Solver.Unsat -> not brute
      | Solver.Unknown -> true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_norm_preserves_semantics;
      prop_norm_idempotent;
      prop_interval_binop_sound;
      prop_solver_vs_bruteforce;
      prop_sat_models_verified;
      prop_linear_systems_vs_bruteforce;
    ]

let () =
  Alcotest.run "res_solver"
    [
      ( "expr",
        [
          Alcotest.test_case "basics" `Quick test_expr_basics;
          Alcotest.test_case "equality" `Quick test_expr_equal;
        ] );
      ( "simplify",
        [ Alcotest.test_case "identities" `Quick test_simplify_identities ] );
      ("interval", [ Alcotest.test_case "basics" `Quick test_interval_basics ]);
      ( "solve",
        [
          Alcotest.test_case "trivial" `Quick test_solve_trivial;
          Alcotest.test_case "linear one var" `Quick test_solve_linear_one_var;
          Alcotest.test_case "inequalities" `Quick test_solve_inequalities;
          Alcotest.test_case "linear system" `Quick test_solve_linear_system;
          Alcotest.test_case "three-var chain" `Quick test_solve_three_var_chain;
          Alcotest.test_case "boolean structure" `Quick test_solve_boolean_structure;
          Alcotest.test_case "division guard" `Quick test_solve_division_guard;
          Alcotest.test_case "nonlinear small" `Quick test_solve_nonlinear_small;
          Alcotest.test_case "concretize" `Quick test_concretize;
          Alcotest.test_case "ambiguous unique_value" `Quick
            test_unique_value_ambiguous;
        ] );
      ("properties", qcheck_cases);
    ]
