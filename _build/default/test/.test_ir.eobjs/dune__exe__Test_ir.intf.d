test/test_ir.mli:
