test/test_symex.ml: Alcotest Fmt Int List Map QCheck2 QCheck_alcotest Res_ir Res_mem Res_solver Res_symex Res_vm Set Symexec Symframe Symmem
