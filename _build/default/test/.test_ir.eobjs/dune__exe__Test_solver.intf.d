test/test_solver.mli:
