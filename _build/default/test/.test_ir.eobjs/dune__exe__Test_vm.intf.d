test/test_vm.mli:
