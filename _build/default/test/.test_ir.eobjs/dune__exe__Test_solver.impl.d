test/test_solver.ml: Alcotest Array Expr Fmt Interval List Model QCheck2 QCheck_alcotest Res_ir Res_solver Simplify Solver
