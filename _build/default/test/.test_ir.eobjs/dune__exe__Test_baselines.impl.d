test/test_baselines.ml: Alcotest Fmt List Res_baselines Res_core Res_ir Res_vm Res_workloads
