test/test_workloads.ml: Alcotest Fmt Fun List Res_ir Res_vm Res_workloads String
