test/test_ir.ml: Alcotest Block Builder Cfg Func Instr List Parser Prog QCheck2 QCheck_alcotest Res_ir String Validate
