test/test_integration.ml: Alcotest Fmt List QCheck2 QCheck_alcotest Res_baselines Res_core Res_ir Res_mem Res_symex Res_vm Res_workloads
