test/test_usecases.mli:
