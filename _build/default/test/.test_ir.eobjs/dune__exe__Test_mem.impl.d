test/test_mem.ml: Alcotest Fun Heap Layout List Memory QCheck2 QCheck_alcotest Res_ir Res_mem
