test/test_vm.ml: Alcotest Coredump Coredump_io Crash Exec Fault Fmt Frame Fun Int List Map Oracle QCheck2 QCheck_alcotest Res_ir Res_mem Res_vm Sched String Tracer
