test/test_core.ml: Alcotest Backstep Debugger Fmt List Replay Res Res_core Res_ir Res_mem Res_solver Res_vm Res_workloads Rootcause Search Snapshot Suffix
