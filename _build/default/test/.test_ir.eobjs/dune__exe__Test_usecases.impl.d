test/test_usecases.ml: Alcotest Fmt Lazy List Res_baselines Res_mem Res_usecases Res_workloads String
