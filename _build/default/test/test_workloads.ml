(* Tests for the workload generators: every workload must validate, crash
   deterministically under its crash config with the expected failure
   family, and the controls must NOT crash. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let family_of_bug = function
  | Res_workloads.Truth.B_data_race | Res_workloads.Truth.B_atomicity
  | Res_workloads.Truth.B_semantic ->
      [ "assert" ]
  | Res_workloads.Truth.B_use_after_free -> [ "use-after-free" ]
  | Res_workloads.Truth.B_buffer_overflow ->
      [ "heap-overflow"; "global-overflow"; "segfault" ]
  | Res_workloads.Truth.B_double_free -> [ "double-free" ]
  | Res_workloads.Truth.B_deadlock -> [ "deadlock" ]
  | Res_workloads.Truth.B_div_by_zero -> [ "div-by-zero" ]
  | Res_workloads.Truth.B_hardware -> [ "assert" ]

let workload_cases =
  List.map
    (fun w ->
      Alcotest.test_case w.Res_workloads.Truth.w_name `Quick (fun () ->
          (* validates *)
          check (Alcotest.list Alcotest.string) "well-formed" []
            (List.map
               (fun (e : Res_ir.Validate.error) -> e.what)
               (Res_ir.Validate.check w.Res_workloads.Truth.w_prog));
          (* crashes with the right family *)
          let dump = Res_workloads.Truth.coredump w in
          let family =
            Res_vm.Crash.kind_family
              dump.Res_vm.Coredump.crash.Res_vm.Crash.kind
          in
          check bool_t
            (Fmt.str "family %s expected for %s" family
               (Res_workloads.Truth.bug_class_name w.Res_workloads.Truth.w_bug))
            true
            (List.mem family (family_of_bug w.Res_workloads.Truth.w_bug));
          (* crash config is deterministic *)
          let dump2 = Res_workloads.Truth.coredump w in
          check bool_t "deterministic crash" true
            (Res_vm.Coredump.same_failure_state dump dump2)))
    Res_workloads.Workloads.all

let test_locked_counter_never_crashes () =
  List.iter
    (fun seed ->
      let config =
        {
          (Res_vm.Exec.default_config ()) with
          sched = Res_vm.Sched.create (Res_vm.Sched.Seeded seed);
        }
      in
      match (Res_vm.Exec.run ~config Res_workloads.Locked_counter.prog).outcome with
      | Res_vm.Exec.Exited -> ()
      | Res_vm.Exec.Crashed c ->
          Alcotest.failf "locked counter crashed: %a" Res_vm.Crash.pp c
      | Res_vm.Exec.Out_of_fuel -> Alcotest.fail "out of fuel")
    (List.init 25 Fun.id)

let test_uaf_variants_have_distinct_stacks () =
  let stack v =
    Res_vm.Coredump.crash_stack
      (Res_workloads.Truth.coredump (Res_workloads.Uaf.workload_variant v))
  in
  let s0 = stack 0 and s1 = stack 1 and s2 = stack 2 in
  check bool_t "0 <> 1" true (s0 <> s1);
  check bool_t "1 <> 2" true (s1 <> s2);
  check bool_t "0 <> 2" true (s0 <> s2)

let test_long_exec_steps_scale () =
  let steps n =
    let w = Res_workloads.Long_exec.workload_n n in
    (Res_workloads.Truth.coredump w).Res_vm.Coredump.steps
  in
  let s10 = steps 10 and s100 = steps 100 in
  check bool_t "longer prefix, more steps" true (s100 > s10 * 5)

let test_corpus_generation () =
  let reports = Res_workloads.Corpus.generate ~n_per_bug:3 () in
  check bool_t "non-empty" true (List.length reports >= 8);
  let bugs =
    List.sort_uniq compare
      (List.map (fun (r : Res_workloads.Corpus.report) -> r.r_bug) reports)
  in
  check int_t "five distinct bugs" 5 (List.length bugs);
  (* the same-stack pair really has identical stacks *)
  let stack_of bug =
    List.find (fun (r : Res_workloads.Corpus.report) -> String.equal r.r_bug bug) reports
    |> fun r -> Res_vm.Coredump.crash_stack r.Res_workloads.Corpus.r_dump
  in
  check bool_t "race and sign bug share a crash stack" true
    (stack_of "balance-race" = stack_of "balance-sign");
  (* the UAF reports have at least two distinct stacks *)
  let uaf_stacks =
    List.filter
      (fun (r : Res_workloads.Corpus.report) -> String.equal r.r_bug "uaf-early-free")
      reports
    |> List.map (fun (r : Res_workloads.Corpus.report) ->
           Res_vm.Coredump.crash_stack r.Res_workloads.Corpus.r_dump)
    |> List.sort_uniq compare
  in
  check bool_t "uaf stacks diverse" true (List.length uaf_stacks >= 2)

let test_hw_cases_crash () =
  List.iter
    (fun (c : Res_workloads.Hw_fault.case) ->
      let dump = Res_workloads.Hw_fault.coredump_of_case c in
      match dump.Res_vm.Coredump.crash.Res_vm.Crash.kind with
      | Res_vm.Crash.Assert_fail _ -> ()
      | k -> Alcotest.failf "unexpected crash kind %a" Res_vm.Crash.pp_kind k)
    Res_workloads.Hw_fault.cases

let test_hw_victims_clean_without_fault () =
  (* the "victim" programs are correct: no fault, no crash *)
  List.iter
    (fun prog ->
      match (Res_vm.Exec.run prog).outcome with
      | Res_vm.Exec.Exited -> ()
      | _ -> Alcotest.fail "victim program should exit cleanly")
    [ Res_workloads.Hw_fault.mem_victim; Res_workloads.Hw_fault.cpu_victim ]

let () =
  Alcotest.run "res_workloads"
    [
      ("each workload", workload_cases);
      ( "controls",
        [
          Alcotest.test_case "locked counter clean" `Quick
            test_locked_counter_never_crashes;
          Alcotest.test_case "hw victims clean" `Quick
            test_hw_victims_clean_without_fault;
        ] );
      ( "properties",
        [
          Alcotest.test_case "uaf stack diversity" `Quick
            test_uaf_variants_have_distinct_stacks;
          Alcotest.test_case "long-exec scaling" `Quick test_long_exec_steps_scale;
          Alcotest.test_case "corpus shape" `Quick test_corpus_generation;
          Alcotest.test_case "hw cases crash" `Quick test_hw_cases_crash;
        ] );
    ]
