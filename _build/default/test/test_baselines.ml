(* Tests for the baseline implementations: forward execution synthesis,
   PSE-style slicing, and the !exploitable heuristic. *)

let check = Alcotest.check
let bool_t = Alcotest.bool

(* --- forward synthesis --- *)

let test_forward_finds_short () =
  let w = Res_workloads.Long_exec.workload_n 5 in
  let dump = Res_workloads.Truth.coredump w in
  let r = Res_baselines.Forward_synth.synthesize w.Res_workloads.Truth.w_prog dump in
  check bool_t "found" true r.Res_baselines.Forward_synth.found;
  (match r.Res_baselines.Forward_synth.model with
  | Some _ -> ()
  | None -> Alcotest.fail "model expected");
  check bool_t "depth covers the loop" true
    (r.Res_baselines.Forward_synth.depth >= 5)

let test_forward_cost_scales_with_length () =
  let cost n =
    let w = Res_workloads.Long_exec.workload_n n in
    let dump = Res_workloads.Truth.coredump w in
    let r =
      Res_baselines.Forward_synth.synthesize w.Res_workloads.Truth.w_prog dump
    in
    check bool_t (Fmt.str "found at n=%d" n) true
      r.Res_baselines.Forward_synth.found;
    r.Res_baselines.Forward_synth.stats
      .Res_baselines.Forward_synth.segments_executed
  in
  let c5 = cost 5 and c50 = cost 50 in
  check bool_t
    (Fmt.str "segments grow with execution length (%d -> %d)" c5 c50)
    true
    (c50 > c5 * 5)

let test_forward_finds_fig1 () =
  let w = Res_workloads.Fig1.workload in
  let dump = Res_workloads.Truth.coredump w in
  let r = Res_baselines.Forward_synth.synthesize w.Res_workloads.Truth.w_prog dump in
  check bool_t "found" true r.Res_baselines.Forward_synth.found

let test_forward_budget_respected () =
  let w = Res_workloads.Long_exec.workload_n 100 in
  let dump = Res_workloads.Truth.coredump w in
  let config =
    { Res_baselines.Forward_synth.default_config with max_segments_total = 10 }
  in
  let r =
    Res_baselines.Forward_synth.synthesize ~config w.Res_workloads.Truth.w_prog dump
  in
  check bool_t "budget exceeded, not found" false r.Res_baselines.Forward_synth.found

(* --- PSE slicing --- *)

let test_pse_slice_contains_defs () =
  let w = Res_workloads.Fig1.workload in
  let dump = Res_workloads.Truth.coredump w in
  let s =
    Res_baselines.Pse.slice w.Res_workloads.Truth.w_prog
      (Res_vm.Coredump.crash_pc dump)
  in
  check bool_t "slice non-empty" true (Res_baselines.Pse.size s > 0);
  (* the crash reads memory, so conservatively every store is included:
     both pred1's and pred2's stores of x appear (the imprecision) *)
  let blocks =
    List.map (fun (pc, _) -> pc.Res_ir.Pc.block) s.Res_baselines.Pse.instructions
  in
  check bool_t "pred1 store in slice" true (List.mem "pred1" blocks);
  check bool_t "pred2 store in slice (imprecise)" true (List.mem "pred2" blocks)

let test_pse_less_precise_than_res () =
  (* the slice cannot rule pred2 out, RES can: compare candidate sets *)
  let w = Res_workloads.Fig1.workload in
  let dump = Res_workloads.Truth.coredump w in
  let prog = w.Res_workloads.Truth.w_prog in
  let s = Res_baselines.Pse.slice prog (Res_vm.Coredump.crash_pc dump) in
  let pse_store_blocks =
    List.map (fun pc -> pc.Res_ir.Pc.block) s.Res_baselines.Pse.store_sites
    |> List.sort_uniq compare
  in
  let ctx = Res_core.Backstep.make_ctx prog in
  let result =
    Res_core.Search.search
      ~config:{ Res_core.Search.default_config with max_segments = 6 }
      ctx dump
  in
  let suffix =
    List.find (fun s -> s.Res_core.Suffix.complete) result.Res_core.Search.suffixes
  in
  let res_blocks =
    List.map (fun seg -> seg.Res_core.Suffix.seg_block) suffix.Res_core.Suffix.segments
    |> List.sort_uniq compare
  in
  check bool_t "PSE keeps both predecessors" true
    (List.mem "pred1" pse_store_blocks && List.mem "pred2" pse_store_blocks);
  check bool_t "RES keeps only the true one" true
    (List.mem "pred1" res_blocks && not (List.mem "pred2" res_blocks))

let test_pse_interprocedural () =
  let w = Res_workloads.Div_zero.workload in
  let dump = Res_workloads.Truth.coredump w in
  let s =
    Res_baselines.Pse.slice w.Res_workloads.Truth.w_prog
      (Res_vm.Coredump.crash_pc dump)
  in
  (* the divisor comes from main via the call: both functions touched *)
  check bool_t "crosses into the caller" true
    (List.mem "main" s.Res_baselines.Pse.functions_touched)

(* --- !exploitable heuristic --- *)

let rate w =
  let dump = Res_workloads.Truth.coredump w in
  Res_baselines.Exploitable_heuristic.rate w.Res_workloads.Truth.w_prog dump

let test_heuristic_ratings () =
  check Alcotest.string "write overflow rated exploitable" "EXPLOITABLE"
    (Res_baselines.Exploitable_heuristic.rating_name
       (rate Res_workloads.Heap_overflow.workload_tainted));
  (* the heuristic's characteristic false positive *)
  check Alcotest.string "internal overflow also rated exploitable" "EXPLOITABLE"
    (Res_baselines.Exploitable_heuristic.rating_name
       (rate Res_workloads.Heap_overflow.workload_internal));
  check Alcotest.string "div0 not likely" "PROBABLY_NOT_EXPLOITABLE"
    (Res_baselines.Exploitable_heuristic.rating_name
       (rate Res_workloads.Div_zero.workload));
  check Alcotest.string "deadlock not likely" "PROBABLY_NOT_EXPLOITABLE"
    (Res_baselines.Exploitable_heuristic.rating_name
       (rate Res_workloads.Deadlock.workload))

let () =
  Alcotest.run "res_baselines"
    [
      ( "forward synthesis",
        [
          Alcotest.test_case "finds short executions" `Quick test_forward_finds_short;
          Alcotest.test_case "cost scales with length" `Quick
            test_forward_cost_scales_with_length;
          Alcotest.test_case "finds Fig.1" `Quick test_forward_finds_fig1;
          Alcotest.test_case "budget respected" `Quick test_forward_budget_respected;
        ] );
      ( "pse slicing",
        [
          Alcotest.test_case "slice contains defs" `Quick test_pse_slice_contains_defs;
          Alcotest.test_case "less precise than RES" `Quick
            test_pse_less_precise_than_res;
          Alcotest.test_case "interprocedural" `Quick test_pse_interprocedural;
        ] );
      ( "exploitable heuristic",
        [ Alcotest.test_case "ratings" `Quick test_heuristic_ratings ] );
    ]
