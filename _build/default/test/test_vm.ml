(* Unit and property tests for MiniVM: instruction semantics, calls,
   threads and synchronization, crash kinds, coredumps, breadcrumbs,
   fault injection, and determinism. *)

open Res_vm

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let parse = Res_ir.Parser.parse

let run ?config src = Exec.run ?config (parse src)

let run_crash ?config src =
  match (run ?config src).outcome with
  | Exec.Crashed c -> c
  | Exec.Exited -> Alcotest.fail "expected crash, program exited"
  | Exec.Out_of_fuel -> Alcotest.fail "expected crash, ran out of fuel"

let dump_of ?config src =
  match Exec.run_to_coredump ?config (parse src) with
  | Some d, _ -> d
  | None, _ -> Alcotest.fail "expected coredump"

let final_global ?config src name =
  let r = run ?config src in
  let layout = r.final.Exec.layout in
  Res_mem.Memory.read r.final.Exec.mem (Res_mem.Layout.global_base layout name)

(* --- sequential semantics --- *)

let test_arith_and_store () =
  let v =
    final_global
      {|
global out 1
func main() {
e:
  r0 = const 6
  r1 = const 7
  r2 = mul r0, r1
  r3 = global out
  store r3[0] = r2
  halt
}
|}
      "out"
  in
  check int_t "6*7 stored" 42 v

let test_load_store_offsets () =
  let v =
    final_global
      {|
global arr 3
func main() {
e:
  r0 = global arr
  r1 = const 5
  store r0[2] = r1
  r2 = load r0[2]
  r3 = add r2, r2
  store r0[0] = r3
  halt
}
|}
      "arr"
  in
  check int_t "load/store with offsets" 10 v

let test_branching () =
  let v =
    final_global
      {|
global out 1
func main() {
e:
  r0 = const 3
  r1 = const 5
  r2 = lt r0, r1
  br r2, yes, no
yes:
  r3 = const 111
  jmp done
no:
  r3 = const 222
  jmp done
done:
  r4 = global out
  store r4[0] = r3
  halt
}
|}
      "out"
  in
  check int_t "branch taken" 111 v

let test_call_ret () =
  let v =
    final_global
      {|
global out 1
func main() {
e:
  r0 = const 5
  r1 = call fact(r0)
  r2 = global out
  store r2[0] = r1
  halt
}
func fact(r0) {
e:
  r1 = const 1
  r2 = le r0, r1
  br r2, base, rec
base:
  ret r1
rec:
  r3 = sub r0, r1
  r4 = call fact(r3)
  r5 = mul r0, r4
  ret r5
}
|}
      "out"
  in
  check int_t "recursive factorial" 120 v

let test_void_return_yields_zero () =
  let v =
    final_global
      {|
global out 1
func main() {
e:
  r0 = call f()
  r1 = const 9
  r2 = add r0, r1
  r3 = global out
  store r3[0] = r2
  halt
}
func f() { e: ret }
|}
      "out"
  in
  check int_t "void call returns 0" 9 v

let test_heap_roundtrip () =
  let v =
    final_global
      {|
global out 1
func main() {
e:
  r0 = const 4
  r1 = alloc r0
  r2 = const 33
  store r1[3] = r2
  r3 = load r1[3]
  r4 = global out
  store r4[0] = r3
  free r1
  halt
}
|}
      "out"
  in
  check int_t "heap store/load" 33 v

(* --- crash kinds --- *)

let crash_src_and_kind =
  [
    ( "div by zero",
      {|
func main() {
e:
  r0 = const 1
  r1 = const 0
  r2 = div r0, r1
  halt
}
|},
      fun k -> k = Crash.Div_by_zero );
    ( "null deref",
      {|
func main() {
e:
  r0 = const 0
  r1 = load r0[0]
  halt
}
|},
      fun k -> k = Crash.Seg_fault 0 );
    ( "global overflow",
      {|
global buf 2
func main() {
e:
  r0 = global buf
  r1 = const 7
  store r0[2] = r1
  halt
}
|},
      fun k -> match k with Crash.Global_overflow _ -> true | _ -> false );
    ( "heap overflow",
      {|
func main() {
e:
  r0 = const 2
  r1 = alloc r0
  r2 = const 1
  store r1[2] = r2
  halt
}
|},
      fun k -> match k with Crash.Out_of_bounds _ -> true | _ -> false );
    ( "use after free",
      {|
func main() {
e:
  r0 = const 2
  r1 = alloc r0
  free r1
  r2 = load r1[0]
  halt
}
|},
      fun k -> match k with Crash.Use_after_free _ -> true | _ -> false );
    ( "double free",
      {|
func main() {
e:
  r0 = const 2
  r1 = alloc r0
  free r1
  free r1
  halt
}
|},
      fun k -> match k with Crash.Double_free _ -> true | _ -> false );
    ( "invalid free",
      {|
func main() {
e:
  r0 = const 2
  r1 = alloc r0
  r2 = const 1
  r3 = add r1, r2
  free r3
  halt
}
|},
      fun k -> match k with Crash.Invalid_free _ -> true | _ -> false );
    ( "assert failure",
      {|
func main() {
e:
  r0 = const 0
  assert r0, "boom"
  halt
}
|},
      fun k -> k = Crash.Assert_fail "boom" );
    ( "abort",
      {|
func main() {
e:
  abort "fatal"
}
|},
      fun k -> k = Crash.Abort_called "fatal" );
    ( "unlock unheld",
      {|
global m 1
func main() {
e:
  r0 = global m
  unlock r0
  halt
}
|},
      fun k -> match k with Crash.Unlock_error _ -> true | _ -> false );
    ( "alloc error",
      {|
func main() {
e:
  r0 = const 0
  r1 = alloc r0
  halt
}
|},
      fun k -> k = Crash.Alloc_error 0 );
  ]

let crash_cases =
  List.map
    (fun (name, src, pred) ->
      Alcotest.test_case name `Quick (fun () ->
          let c = run_crash src in
          check bool_t (name ^ " kind") true (pred c.Crash.kind)))
    crash_src_and_kind

(* --- threads and synchronization --- *)

let counter_src =
  {|
global m 1
global counter 1
func main() {
e:
  r0 = spawn worker()
  r1 = spawn worker()
  join r0
  join r1
  halt
}
func worker() {
e:
  r0 = global m
  lock r0
  jmp crit
crit:
  r1 = global counter
  r2 = load r1[0]
  r3 = const 1
  r4 = add r2, r3
  store r1[0] = r4
  unlock r0
  ret
}
|}

let test_spawn_join_lock () =
  (* under any schedule the locked counter reaches exactly 2 *)
  List.iter
    (fun seed ->
      let config =
        { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
      in
      let v = final_global ~config counter_src "counter" in
      check int_t (Fmt.str "locked counter, seed %d" seed) 2 v)
    [ 0; 1; 2; 3; 4; 42; 1337 ]

let deadlock_src =
  {|
global m1 1
global m2 1
func main() {
e:
  r0 = spawn left()
  r1 = spawn right()
  join r0
  join r1
  halt
}
func left() {
e:
  r0 = global m1
  lock r0
  jmp second
second:
  r1 = global m2
  lock r1
  unlock r1
  unlock r0
  ret
}
func right() {
e:
  r0 = global m2
  lock r0
  jmp second
second:
  r1 = global m1
  lock r1
  unlock r1
  unlock r0
  ret
}
|}

let test_deadlock_detected () =
  (* force: left grabs m1, right grabs m2, then both block *)
  let found =
    List.exists
      (fun seed ->
        let config =
          { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
        in
        match (run ~config deadlock_src).outcome with
        | Exec.Crashed { kind = Crash.Deadlock _; _ } -> true
        | _ -> false)
      (List.init 50 Fun.id)
  in
  check bool_t "some schedule deadlocks" true found

let test_deadlock_forced_schedule () =
  (* The fixed schedule interleaves the two workers so each holds one lock. *)
  let config =
    {
      (Exec.default_config ()) with
      sched = Sched.create (Sched.Fixed [ 0; 1; 2; 1; 2; 0 ]);
    }
  in
  match (run ~config deadlock_src).outcome with
  | Exec.Crashed { kind = Crash.Deadlock tids; _ } ->
      (* main is blocked on join, so it is part of the deadlocked set *)
      check (Alcotest.list int_t) "blocked tids" [ 0; 1; 2 ] tids
  | _ -> Alcotest.fail "expected forced deadlock"

let test_join_waits () =
  let v =
    final_global
      {|
global out 1
func main() {
e:
  r0 = spawn slow()
  join r0
  r1 = global out
  r2 = load r1[0]
  r3 = const 1
  r4 = add r2, r3
  store r1[0] = r4
  halt
}
func slow() {
e:
  r0 = global out
  r1 = const 10
  store r0[0] = r1
  ret
}
|}
      "out"
  in
  check int_t "join ordered after worker" 11 v

(* --- inputs, faults, breadcrumbs --- *)

let test_scripted_inputs () =
  let config =
    { (Exec.default_config ()) with oracle = Oracle.scripted [ 11; 31 ] }
  in
  let v =
    final_global ~config
      {|
global out 1
func main() {
e:
  r0 = input net
  r1 = input file
  r2 = add r0, r1
  r3 = global out
  store r3[0] = r2
  halt
}
|}
      "out"
  in
  check int_t "scripted inputs" 42 v

let test_fault_bit_flip () =
  (* Without the fault the assert passes; the flip makes it fail. *)
  let src =
    {|
global x 1
func main() {
e:
  r0 = global x
  r1 = const 4
  store r0[0] = r1
  jmp chk
chk:
  r2 = load r0[0]
  r3 = const 4
  r4 = eq r2, r3
  assert r4, "x intact"
  halt
}
|}
  in
  (match (run src).outcome with
  | Exec.Exited -> ()
  | _ -> Alcotest.fail "clean run should exit");
  let prog = parse src in
  let layout = Res_mem.Layout.of_prog prog in
  let addr = Res_mem.Layout.global_base layout "x" in
  let config =
    {
      (Exec.default_config ()) with
      fault = Fault.bit_flip ~step:4 ~addr ~bit:0;
    }
  in
  match (Exec.run ~config prog).outcome with
  | Exec.Crashed { kind = Crash.Assert_fail "x intact"; _ } -> ()
  | _ -> Alcotest.fail "bit flip should fail the assert"

let test_fault_alu () =
  let src =
    {|
global out 1
func main() {
e:
  r0 = const 2
  r1 = const 2
  r2 = add r0, r1
  r3 = global out
  store r3[0] = r2
  halt
}
|}
  in
  let config =
    { (Exec.default_config ()) with fault = Fault.alu_error ~step:2 ~delta:1 }
  in
  let v = final_global ~config src "out" in
  check int_t "2+2=5 under ALU fault" 5 v

let test_lbr_and_logs () =
  let d =
    dump_of
      {|
func main() {
e:
  r0 = const 1
  log "phase", r0
  jmp a
a:
  jmp b
b:
  abort "end"
}
|}
  in
  let branches = Tracer.branches d.Coredump.tracer in
  check int_t "two branches" 2 (List.length branches);
  (match branches with
  | b1 :: b2 :: _ ->
      check Alcotest.string "latest branch dst" "b" b1.Tracer.br_to;
      check Alcotest.string "older branch dst" "a" b2.Tracer.br_to
  | _ -> Alcotest.fail "missing branches");
  match Tracer.logs d.Coredump.tracer with
  | [ e ] ->
      check Alcotest.string "log tag" "phase" e.Tracer.log_tag;
      check int_t "log value" 1 e.Tracer.log_value
  | _ -> Alcotest.fail "expected one log entry"

let test_lbr_depth_bound () =
  let src =
    {|
func main() {
e:
  r0 = const 20
  jmp loop
loop:
  r1 = const 1
  r0 = sub r0, r1
  br r0, loop, out
out:
  abort "end"
}
|}
  in
  let config = { (Exec.default_config ()) with lbr_depth = 4 } in
  let d, _ = Exec.run_to_coredump ~config (parse src) in
  match d with
  | Some d ->
      check int_t "ring capped" 4
        (List.length (Tracer.branches d.Coredump.tracer))
  | None -> Alcotest.fail "expected coredump"

(* --- coredumps and determinism --- *)

let racy_src =
  (* classic lost-update race: read, reschedule, write *)
  {|
global counter 1
global m 1
func main() {
e:
  r0 = spawn worker()
  r1 = spawn worker()
  join r0
  join r1
  jmp chk
chk:
  r2 = global counter
  r3 = load r2[0]
  r4 = const 2
  r5 = eq r3, r4
  assert r5, "no lost update"
  halt
}
func worker() {
e:
  r0 = global counter
  r1 = load r0[0]
  jmp w
w:
  r2 = const 1
  r3 = add r1, r2
  store r0[0] = r3
  ret
}
|}

let test_race_manifests_under_some_schedule () =
  let crashes seed =
    let config =
      { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
    in
    match (run ~config racy_src).outcome with
    | Exec.Crashed { kind = Crash.Assert_fail _; _ } -> true
    | _ -> false
  in
  let seeds = List.init 100 Fun.id in
  check bool_t "some schedule loses an update" true (List.exists crashes seeds);
  check bool_t "some schedule is correct" true
    (List.exists (fun s -> not (crashes s)) seeds)

let test_determinism_same_seed () =
  let crash_seed =
    List.find
      (fun seed ->
        let config =
          { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
        in
        match (run ~config racy_src).outcome with
        | Exec.Crashed _ -> true
        | _ -> false)
      (List.init 200 Fun.id)
  in
  let dump () =
    let config =
      {
        (Exec.default_config ()) with
        sched = Sched.create (Sched.Seeded crash_seed);
      }
    in
    dump_of ~config racy_src
  in
  let d1 = dump () and d2 = dump () in
  check bool_t "same seed, same failure state" true
    (Coredump.same_failure_state d1 d2)

let test_replay_fixed_schedule () =
  (* record the schedule of a crashing run, then replay it as Fixed *)
  let seed =
    List.find
      (fun seed ->
        let config =
          { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
        in
        match (run ~config racy_src).outcome with
        | Exec.Crashed _ -> true
        | _ -> false)
      (List.init 200 Fun.id)
  in
  let config =
    { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
  in
  let d1, r1 = Exec.run_to_coredump ~config (parse racy_src) in
  let config' =
    { (Exec.default_config ()) with sched = Sched.create (Sched.Fixed r1.Exec.schedule) }
  in
  let d2, _ = Exec.run_to_coredump ~config:config' (parse racy_src) in
  match (d1, d2) with
  | Some d1, Some d2 ->
      check bool_t "schedule replay reproduces failure state" true
        (Coredump.same_failure_state d1 d2)
  | _ -> Alcotest.fail "expected coredumps from both runs"

let test_coredump_contents () =
  let d =
    dump_of
      {|
global g 1
func main() {
e:
  r0 = const 77
  r1 = global g
  store r1[0] = r0
  r2 = call f(r0)
  halt
}
func f(r0) {
e:
  r1 = const 0
  r2 = div r0, r1
  ret r2
}
|}
  in
  check Alcotest.string "crash in f" "f" d.Coredump.crash.Crash.pc.Res_ir.Pc.func;
  let stack = Coredump.crash_stack d in
  check int_t "two frames" 2 (List.length stack);
  (match stack with
  | (f1, _, _) :: (f2, _, _) :: _ ->
      check Alcotest.string "inner frame" "f" f1;
      check Alcotest.string "outer frame" "main" f2
  | _ -> Alcotest.fail "bad stack");
  let layout = Res_mem.Layout.of_prog (parse "global g 1 func main() { e: halt }") in
  ignore layout;
  let gaddr = Res_mem.Layout.globals_base in
  check int_t "global value in dump" 77 (Coredump.read d gaddr)

let test_out_of_fuel () =
  let config = { (Exec.default_config ()) with max_steps = 100 } in
  match
    (run ~config {|
func main() {
e:
  jmp e
}
|}).outcome
  with
  | Exec.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* --- frames, schedulers, oracles --- *)

module FIMap = Map.Make (Int)

let test_frame_regs_equal_semantics () =
  let base = { Frame.func = "f"; block = "b"; idx = 0;
               regs = FIMap.empty; ret_reg = None } in
  let a = Frame.write_reg base 0 1 in
  let b = Frame.write_reg (Frame.write_reg base 0 1) 3 0 in
  check bool_t "explicit zero equals absent" true (Frame.equal a b);
  let c = Frame.write_reg base 0 2 in
  check bool_t "different value differs" false (Frame.equal a c)

let test_sched_round_robin_cycles () =
  let s = Sched.create Sched.Round_robin in
  let picks = List.init 6 (fun _ -> Sched.pick s ~runnable:[ 0; 1; 2 ]) in
  check (Alcotest.list int_t) "cycles" [ 0; 1; 2; 0; 1; 2 ] picks

let test_sched_fixed_skips_unrunnable () =
  let s = Sched.create (Sched.Fixed [ 5; 1 ]) in
  (* 5 is not runnable: the entry is skipped with a round-robin fallback *)
  let first = Sched.pick s ~runnable:[ 0; 1 ] in
  check bool_t "fallback picks a runnable tid" true (List.mem first [ 0; 1 ]);
  let second = Sched.pick s ~runnable:[ 0; 1 ] in
  check int_t "then the script resumes" 1 second

let test_oracle_seeded_deterministic () =
  let a = Oracle.seeded ~seed:7 and b = Oracle.seeded ~seed:7 in
  let va = List.init 5 (fun _ -> a.Oracle.next Res_ir.Instr.Net) in
  let vb = List.init 5 (fun _ -> b.Oracle.next Res_ir.Instr.Net) in
  check (Alcotest.list int_t) "same seed, same stream" va vb;
  let c = Oracle.seeded ~seed:8 in
  let vc = List.init 5 (fun _ -> c.Oracle.next Res_ir.Instr.Net) in
  check bool_t "different seed differs" true (va <> vc)

let test_oracle_scripted_default () =
  let o = Oracle.scripted ~default:42 [ 1; 2 ] in
  let vs = List.init 4 (fun _ -> o.Oracle.next Res_ir.Instr.Net) in
  check (Alcotest.list int_t) "script then default" [ 1; 2; 42; 42 ] vs

(* --- coredump serialization --- *)

let test_coredump_io_roundtrip () =
  let seed =
    List.find
      (fun seed ->
        let config =
          { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
        in
        match (run ~config racy_src).outcome with
        | Exec.Crashed _ -> true
        | _ -> false)
      (List.init 200 Fun.id)
  in
  let config =
    { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
  in
  let d = dump_of ~config racy_src in
  let text = Coredump_io.to_string d in
  let d2 = Coredump_io.of_string text in
  check bool_t "failure state preserved" true (Coredump.same_failure_state d d2);
  check int_t "steps preserved" d.Coredump.steps d2.Coredump.steps;
  check bool_t "stable fixpoint" true
    (String.equal text (Coredump_io.to_string d2));
  check int_t "branches preserved"
    (List.length (Tracer.branches d.Coredump.tracer))
    (List.length (Tracer.branches d2.Coredump.tracer))

let test_coredump_io_heap_and_logs () =
  let d =
    dump_of
      {|
func main() {
e:
  r0 = const 3
  r1 = alloc r0
  log "allocated", r1
  free r1
  r2 = const 2
  r3 = alloc r2
  r4 = load r1[0]
  halt
}
|}
  in
  let d2 = Coredump_io.of_string (Coredump_io.to_string d) in
  check bool_t "heap metadata preserved" true
    (Res_mem.Heap.equal d.Coredump.heap d2.Coredump.heap);
  (match Tracer.logs d2.Coredump.tracer with
  | [ e ] -> check Alcotest.string "log tag preserved" "allocated" e.Tracer.log_tag
  | _ -> Alcotest.fail "expected one log entry");
  check bool_t "uaf crash kind preserved" true
    (match d2.Coredump.crash.Crash.kind with
    | Crash.Use_after_free _ -> true
    | _ -> false)

let test_coredump_io_rejects_garbage () =
  List.iter
    (fun src ->
      match Coredump_io.of_string src with
      | exception Coredump_io.Bad_format _ -> ()
      | exception Res_ir.Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted garbage %S" src)
    [ ""; "coredump v2"; "coredump v1\nwat 3"; "coredump v1\nsteps 1" ]

(* --- qcheck properties --- *)

let prop_seeded_deterministic =
  QCheck2.Test.make ~name:"seeded runs are bit-deterministic" ~count:30
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let go () =
        let config =
          {
            (Exec.default_config ()) with
            sched = Sched.create (Sched.Seeded seed);
            record_trace = true;
          }
        in
        Exec.run ~config (parse racy_src)
      in
      let r1 = go () and r2 = go () in
      r1.Exec.schedule = r2.Exec.schedule
      && List.length r1.Exec.trace = List.length r2.Exec.trace
      && Res_mem.Memory.equal r1.Exec.final.Exec.mem r2.Exec.final.Exec.mem)

let prop_locked_counter_correct =
  QCheck2.Test.make ~name:"locked counter is schedule-independent" ~count:30
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let config =
        { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
      in
      final_global ~config counter_src "counter" = 2)

(* coredump serialization round-trips for dumps from arbitrary seeds *)
let prop_coredump_io_roundtrip =
  QCheck2.Test.make ~name:"coredump io round-trips" ~count:40
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let config =
        { (Exec.default_config ()) with sched = Sched.create (Sched.Seeded seed) }
      in
      match Exec.run_to_coredump ~config (parse racy_src) with
      | None, _ -> true (* this seed produced a correct interleaving *)
      | Some d, _ ->
          let d2 = Coredump_io.of_string (Coredump_io.to_string d) in
          Coredump.same_failure_state d d2
          && d.Coredump.steps = d2.Coredump.steps
          && String.equal (Coredump_io.to_string d) (Coredump_io.to_string d2))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_seeded_deterministic;
      prop_locked_counter_correct;
      prop_coredump_io_roundtrip;
    ]

let () =
  Alcotest.run "res_vm"
    [
      ( "sequential",
        [
          Alcotest.test_case "arith + store" `Quick test_arith_and_store;
          Alcotest.test_case "load/store offsets" `Quick test_load_store_offsets;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "call/ret recursion" `Quick test_call_ret;
          Alcotest.test_case "void return" `Quick test_void_return_yields_zero;
          Alcotest.test_case "heap round-trip" `Quick test_heap_roundtrip;
        ] );
      ("crashes", crash_cases);
      ( "threads",
        [
          Alcotest.test_case "spawn/join/lock" `Quick test_spawn_join_lock;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
          Alcotest.test_case "forced deadlock" `Quick test_deadlock_forced_schedule;
          Alcotest.test_case "join ordering" `Quick test_join_waits;
        ] );
      ( "inputs/faults/breadcrumbs",
        [
          Alcotest.test_case "scripted inputs" `Quick test_scripted_inputs;
          Alcotest.test_case "bit flip fault" `Quick test_fault_bit_flip;
          Alcotest.test_case "ALU fault" `Quick test_fault_alu;
          Alcotest.test_case "LBR + logs" `Quick test_lbr_and_logs;
          Alcotest.test_case "LBR depth bound" `Quick test_lbr_depth_bound;
        ] );
      ( "components",
        [
          Alcotest.test_case "frame equality semantics" `Quick
            test_frame_regs_equal_semantics;
          Alcotest.test_case "round robin" `Quick test_sched_round_robin_cycles;
          Alcotest.test_case "fixed fallback" `Quick
            test_sched_fixed_skips_unrunnable;
          Alcotest.test_case "seeded oracle" `Quick
            test_oracle_seeded_deterministic;
          Alcotest.test_case "scripted oracle" `Quick test_oracle_scripted_default;
        ] );
      ( "coredump io",
        [
          Alcotest.test_case "round-trip" `Quick test_coredump_io_roundtrip;
          Alcotest.test_case "heap + logs" `Quick test_coredump_io_heap_and_logs;
          Alcotest.test_case "rejects garbage" `Quick
            test_coredump_io_rejects_garbage;
        ] );
      ( "coredumps",
        [
          Alcotest.test_case "race manifests" `Quick
            test_race_manifests_under_some_schedule;
          Alcotest.test_case "determinism per seed" `Quick
            test_determinism_same_seed;
          Alcotest.test_case "schedule replay" `Quick test_replay_fixed_schedule;
          Alcotest.test_case "contents" `Quick test_coredump_contents;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
        ] );
      ("properties", qcheck_cases);
    ]
