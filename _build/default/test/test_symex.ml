(* Unit tests for the forward symbolic executor: journaling, pre-symbol
   minting, branch forking, call inlining, partial (crash-site) execution,
   and the alloc/spawn plan machinery. *)

module ISet = Set.Make (Int)
module IMap = Map.Make (Int)
open Res_symex

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let parse = Res_ir.Parser.parse

(* Build a request with sensible defaults for a block of [func] in [prog],
   seeded with [seed] register values. *)
let request ?(seed = []) ?(post = fun _ -> Res_solver.Expr.zero)
    ?(havoc = ISet.empty) ?(heap = Res_mem.Heap.empty) ?(alloc_plan = [])
    ?(spawn_plan = []) ?(ambient = []) ?(addr_pool = []) prog ~func ~block ~mode
    =
  let seed_map =
    List.fold_left (fun m (r, e) -> IMap.add r e m) IMap.empty seed
  in
  {
    Symexec.prog;
    layout = Res_mem.Layout.of_prog prog;
    tid = 0;
    frame = Symframe.pre_frame ~func ~block ~seed:seed_map;
    heap;
    post_mem = post;
    havoc_reads = havoc;
    ambient;
    addr_pool;
    alloc_plan;
    spawn_plan;
    dynamic_alloc = false;
    mode;
  }

let run rq = Symexec.run rq

let straight_prog =
  parse
    {|
global g 1
func main() {
a:
  r0 = const 5
  r1 = add r0, r0
  r2 = global g
  store r2[0] = r1
  jmp b
b:
  halt
}
|}

let test_straight_line () =
  let rq =
    request straight_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, rejects = run rq in
  check int_t "one outcome" 1 (List.length outs);
  check int_t "no rejects" 0 (List.length rejects);
  let o = List.hd outs in
  check bool_t "fell to b" true (o.Symexec.stop = Symexec.Fell_to "b");
  let writes = Symmem.final_writes o.Symexec.mem in
  check int_t "one memory write" 1 (List.length writes);
  let addr, value = List.hd writes in
  check int_t "write to g" Res_mem.Layout.globals_base addr;
  (match Res_solver.Expr.const_val (Res_solver.Simplify.norm value) with
  | Some v -> check int_t "wrote 10" 10 v
  | None -> Alcotest.fail "expected concrete written value");
  check int_t "no pre regs (all defined before use)" 0
    (List.length o.Symexec.pre_regs)

let test_wrong_target_rejected () =
  let rq =
    request straight_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "a" })
  in
  let outs, rejects = run rq in
  check int_t "no outcomes" 0 (List.length outs);
  check bool_t "reject recorded" true (rejects <> [])

let pre_prog =
  parse
    {|
func main() {
a:
  r1 = add r0, r0
  jmp b
b:
  halt
}
|}

let test_pre_reg_minting () =
  (* r0 is read before any definition: a pre symbol must be minted *)
  let rq =
    request pre_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, _ = run rq in
  let o = List.hd outs in
  check int_t "one pre reg" 1 (List.length o.Symexec.pre_regs);
  check int_t "pre reg is r0" 0 (fst (List.hd o.Symexec.pre_regs))

let branch_prog =
  parse
    {|
func main() {
a:
  r1 = const 10
  r2 = lt r0, r1
  br r2, low, high
low:
  halt
high:
  halt
}
|}

let test_branch_forks_on_symbolic () =
  (* no target required: both directions are feasible for symbolic r0 *)
  let rq =
    request branch_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = None })
  in
  let outs, _ = run rq in
  check int_t "two outcomes" 2 (List.length outs);
  let targets =
    List.filter_map
      (fun (o : Symexec.outcome) ->
        match o.Symexec.stop with Symexec.Fell_to l -> Some l | _ -> None)
      outs
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.string) "both targets" [ "high"; "low" ] targets

let test_branch_constrained_by_target () =
  let rq =
    request branch_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "low" })
  in
  let outs, _ = run rq in
  check int_t "one outcome" 1 (List.length outs);
  let o = List.hd outs in
  (* the path must force r0 < 10 *)
  match Res_solver.Solver.solve o.Symexec.path with
  | Res_solver.Solver.Sat m ->
      let r0_sym = snd (List.hd o.Symexec.pre_regs) in
      check bool_t "model satisfies r0 < 10" true
        (Res_solver.Model.value m r0_sym < 10)
  | _ -> Alcotest.fail "expected satisfiable path"

let test_branch_concrete_seed () =
  (* with r0 seeded concrete, requiring the wrong target is rejected *)
  let rq =
    request branch_prog ~func:"main" ~block:"a"
      ~seed:[ (0, Res_solver.Expr.const 50) ]
      ~mode:(Symexec.Full { require_target = Some "low" })
  in
  let outs, rejects = run rq in
  check int_t "infeasible" 0 (List.length outs);
  check bool_t "rejected" true (rejects <> [])

let call_prog =
  parse
    {|
func main() {
a:
  r0 = const 6
  r1 = call triple(r0)
  jmp b
b:
  halt
}
func triple(r0) {
entry:
  r1 = const 3
  r2 = mul r0, r1
  ret r2
}
|}

let test_call_inlined () =
  let rq =
    request call_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, _ = run rq in
  check int_t "one outcome" 1 (List.length outs);
  let o = List.hd outs in
  let bottom = List.rev o.Symexec.frames |> List.hd in
  match Symframe.read_opt bottom 1 with
  | Some e -> (
      match Res_solver.Expr.const_val (Res_solver.Simplify.norm e) with
      | Some v -> check int_t "call result" 18 v
      | None -> Alcotest.fail "expected concrete result")
  | None -> Alcotest.fail "r1 not set"

let test_call_inlining_disabled () =
  let config = { Symexec.default_config with inline_calls = false } in
  let rq =
    request call_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, rejects = Symexec.run ~config rq in
  check int_t "no outcomes without inlining" 0 (List.length outs);
  check bool_t "rejected" true (rejects <> [])

let crash_prog =
  parse
    {|
func main() {
a:
  r0 = const 1
  r1 = div r0, r2
  halt
}
|}

let test_partial_crash () =
  let rq =
    request crash_prog ~func:"main" ~block:"a"
      ~mode:
        (Symexec.Partial
           { stack = [ ("main", "a", 1) ]; crash = Some Res_vm.Crash.Div_by_zero })
  in
  let outs, _ = run rq in
  check int_t "one outcome" 1 (List.length outs);
  let o = List.hd outs in
  check bool_t "crashed here" true (o.Symexec.stop = Symexec.Crashed_here);
  (* the divisor pre-symbol must be constrained to 0 *)
  match Res_solver.Solver.solve o.Symexec.path with
  | Res_solver.Solver.Sat m ->
      let r2_sym = List.assoc 2 o.Symexec.pre_regs in
      check int_t "divisor forced to 0" 0 (Res_solver.Model.value m r2_sym)
  | _ -> Alcotest.fail "expected satisfiable crash path"

let callee_crash_prog =
  parse
    {|
func main() {
a:
  r0 = const 8
  r1 = call half(r0)
  jmp b
b:
  halt
}
func half(r0) {
entry:
  r1 = div r0, r2
  ret r1
}
|}

let test_partial_crash_in_callee () =
  (* the crash sits one call deep: the stack spec names both frames *)
  let rq =
    request callee_crash_prog ~func:"main" ~block:"a"
      ~mode:
        (Symexec.Partial
           {
             stack = [ ("main", "a", 2); ("half", "entry", 0) ];
             crash = Some Res_vm.Crash.Div_by_zero;
           })
  in
  let outs, _ = run rq in
  check int_t "one outcome" 1 (List.length outs);
  let o = List.hd outs in
  check int_t "two frames at the stop" 2 (List.length o.Symexec.frames);
  (* the callee's divisor r2 is zero-initialized (not a parameter), so the
     crash constraint is trivially satisfiable *)
  match Res_solver.Solver.solve o.Symexec.path with
  | Res_solver.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected satisfiable crash path"

let test_partial_wrong_stack_never_stops () =
  (* a spec that can never match: partial execution runs to the terminator
     and is rejected *)
  let rq =
    request callee_crash_prog ~func:"main" ~block:"a"
      ~mode:
        (Symexec.Partial
           {
             stack = [ ("main", "a", 99) ];
             crash = Some Res_vm.Crash.Div_by_zero;
           })
  in
  let outs, rejects = run rq in
  check int_t "no outcomes" 0 (List.length outs);
  check bool_t "rejected" true (rejects <> [])

let input_prog =
  parse
    {|
global out 1
func main() {
a:
  r0 = input net
  r1 = input file
  r2 = global out
  store r2[0] = r0
  jmp b
b:
  halt
}
|}

let test_inputs_journaled () =
  let rq =
    request input_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, _ = run rq in
  let o = List.hd outs in
  check int_t "two inputs" 2 (List.length o.Symexec.inputs);
  check bool_t "kinds in order" true
    (List.map fst o.Symexec.inputs = [ Res_ir.Instr.Net; Res_ir.Instr.File ])

let alloc_prog =
  parse
    {|
func main() {
a:
  r0 = const 4
  r1 = alloc r0
  r2 = const 9
  store r1[1] = r2
  jmp b
b:
  halt
}
|}

let test_alloc_plan () =
  (* plan the allocation at the bump pointer with matching size *)
  let base = Res_mem.Layout.heap_base in
  let rq =
    request alloc_prog ~func:"main" ~block:"a" ~alloc_plan:[ (base, 4) ]
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, _ = run rq in
  check int_t "one outcome" 1 (List.length outs);
  let o = List.hd outs in
  check (Alcotest.list int_t) "alloc recorded" [ base ]
    (List.map fst o.Symexec.allocs);
  check bool_t "write landed inside the block" true
    (List.mem_assoc (base + 1) (Symmem.final_writes o.Symexec.mem))

let test_alloc_without_plan_rejected () =
  let rq =
    request alloc_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, rejects = run rq in
  check int_t "no outcomes" 0 (List.length outs);
  check bool_t "rejected" true (rejects <> [])

let test_dynamic_alloc () =
  let rq =
    request alloc_prog ~func:"main" ~block:"a"
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let rq = { rq with Symexec.dynamic_alloc = true } in
  let outs, _ = run rq in
  check int_t "dynamic alloc succeeds" 1 (List.length outs)

let lock_prog =
  parse
    {|
global m 1
func main() {
a:
  r0 = global m
  lock r0
  unlock r0
  jmp b
b:
  halt
}
|}

let test_lock_constraints () =
  let m_addr = Res_mem.Layout.globals_base in
  let sym = Res_solver.Expr.fresh "cell" in
  let rq =
    request lock_prog ~func:"main" ~block:"a"
      ~post:(fun a -> if a = m_addr then sym else Res_solver.Expr.zero)
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, _ = run rq in
  check int_t "one outcome" 1 (List.length outs);
  let o = List.hd outs in
  check
    (Alcotest.list (Alcotest.pair bool_t int_t))
    "lock ops journaled"
    [ (true, m_addr); (false, m_addr) ]
    o.Symexec.lock_ops;
  (* acquiring requires the cell to have been 0 *)
  match Res_solver.Solver.solve o.Symexec.path with
  | Res_solver.Solver.Sat model -> (
      match sym with
      | Res_solver.Expr.Sym s ->
          check int_t "lock cell was free" 0 (Res_solver.Model.value model s)
      | _ -> assert false)
  | _ -> Alcotest.fail "expected satisfiable path"

let test_read_before_write_tracking () =
  let prog =
    parse
      {|
global g 1
func main() {
a:
  r0 = global g
  r1 = load r0[0]
  r2 = const 1
  r3 = add r1, r2
  store r0[0] = r3
  jmp b
b:
  halt
}
|}
  in
  let g = Res_mem.Layout.globals_base in
  let rq =
    request prog ~func:"main" ~block:"a"
      ~post:(fun _ -> Res_solver.Expr.const 7)
      ~mode:(Symexec.Full { require_target = Some "b" })
  in
  let outs, _ = run rq in
  let o = List.hd outs in
  check bool_t "g read before write" true
    (ISet.mem g o.Symexec.read_before_write);
  check bool_t "g written" true (Symmem.was_written o.Symexec.mem g);
  (* re-run havocked: the read must now mint a pre symbol *)
  let rq = { rq with Symexec.havoc_reads = ISet.singleton g } in
  let outs, _ = run rq in
  let o = List.hd outs in
  check int_t "one pre mem symbol" 1 (List.length (Symmem.pre_syms o.Symexec.mem))

(* differential property: on concrete inputs, the symbolic executor and
   the VM are the same interpreter — same final registers, same memory
   writes.  Random straight-line arithmetic blocks with a store. *)
let gen_diff_block =
  let open QCheck2.Gen in
  let n_regs = 5 in
  let* inits = list_repeat n_regs (int_range (-40) 40) in
  let* body =
    let gen_instr =
      let* dst = int_range 0 (n_regs - 1) in
      let* choice = int_range 0 2 in
      match choice with
      | 0 ->
          let* op = oneofl Res_ir.Instr.[ Add; Sub; Mul; And; Or; Xor; Lt; Ge ] in
          let* a = int_range 0 (n_regs - 1) in
          let* b = int_range 0 (n_regs - 1) in
          return (Res_ir.Instr.Binop (op, dst, a, b))
      | 1 ->
          let* a = int_range 0 (n_regs - 1) in
          return (Res_ir.Instr.Mov (dst, a))
      | _ ->
          let* a = int_range 0 (n_regs - 1) in
          return (Res_ir.Instr.Unop (Res_ir.Instr.Neg, dst, a))
    in
    let* n = int_range 1 10 in
    list_repeat n gen_instr
  in
  let* store_src = int_range 0 (n_regs - 1) in
  return (inits, body, store_src)

let prop_symexec_matches_vm =
  QCheck2.Test.make ~name:"symbolic executor agrees with the VM" ~count:100
    gen_diff_block (fun (inits, body, store_src) ->
      let n_regs = List.length inits in
      (* build: entry loads the inits; work = body + store g; fin halts *)
      let entry_instrs =
        List.mapi (fun r v -> Res_ir.Instr.Const (r, v)) inits
      in
      let work_instrs =
        body
        @ [
            Res_ir.Instr.Global_addr (n_regs, "g");
            Res_ir.Instr.Store (n_regs, 0, store_src);
          ]
      in
      let prog =
        Res_ir.Prog.v
          ~globals:[ { Res_ir.Prog.gname = "g"; gsize = 1 } ]
          [
            Res_ir.Func.v ~name:"main" ~params:[] ~entry:"entry"
              [
                Res_ir.Block.v "entry" entry_instrs (Res_ir.Instr.Jmp "work");
                Res_ir.Block.v "work" work_instrs (Res_ir.Instr.Jmp "fin");
                Res_ir.Block.v "fin" [] Res_ir.Instr.Halt;
              ];
          ]
      in
      (* the VM's truth *)
      let vm = Res_vm.Exec.run prog in
      let layout = Res_mem.Layout.of_prog prog in
      let g = Res_mem.Layout.globals_base in
      let vm_g = Res_mem.Memory.read vm.Res_vm.Exec.final.Res_vm.Exec.mem g in
      ignore layout;
      (* the symbolic executor on the same concrete seeds *)
      let seed = List.mapi (fun r v -> (r, Res_solver.Expr.const v)) inits in
      let rq =
        request prog ~func:"main" ~block:"work" ~seed
          ~mode:(Symexec.Full { require_target = Some "fin" })
      in
      match run rq with
      | [ o ], _ ->
          let sym_g =
            match List.assoc_opt g (Symmem.final_writes o.Symexec.mem) with
            | Some e -> Res_solver.Expr.const_val (Res_solver.Simplify.norm e)
            | None -> None
          in
          sym_g = Some vm_g
      | outs, rejects ->
          QCheck2.Test.fail_report
            (Fmt.str "expected one outcome, got %d (%a)" (List.length outs)
               Fmt.(list ~sep:comma string)
               rejects))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_symexec_matches_vm ]

let () =
  Alcotest.run "res_symex"
    [
      ( "full blocks",
        [
          Alcotest.test_case "straight line" `Quick test_straight_line;
          Alcotest.test_case "wrong target rejected" `Quick
            test_wrong_target_rejected;
          Alcotest.test_case "pre-register minting" `Quick test_pre_reg_minting;
        ] );
      ( "branching",
        [
          Alcotest.test_case "symbolic fork" `Quick test_branch_forks_on_symbolic;
          Alcotest.test_case "target constrains" `Quick
            test_branch_constrained_by_target;
          Alcotest.test_case "concrete seed" `Quick test_branch_concrete_seed;
        ] );
      ( "calls",
        [
          Alcotest.test_case "inlined forward" `Quick test_call_inlined;
          Alcotest.test_case "inlining disabled" `Quick
            test_call_inlining_disabled;
        ] );
      ( "partial/crash",
        [
          Alcotest.test_case "div-by-zero site" `Quick test_partial_crash;
          Alcotest.test_case "crash in callee" `Quick test_partial_crash_in_callee;
          Alcotest.test_case "unreachable stack spec" `Quick
            test_partial_wrong_stack_never_stops;
        ] );
      ( "journals",
        [
          Alcotest.test_case "inputs" `Quick test_inputs_journaled;
          Alcotest.test_case "alloc plan" `Quick test_alloc_plan;
          Alcotest.test_case "alloc without plan" `Quick
            test_alloc_without_plan_rejected;
          Alcotest.test_case "dynamic alloc" `Quick test_dynamic_alloc;
          Alcotest.test_case "lock constraints" `Quick test_lock_constraints;
          Alcotest.test_case "read-before-write" `Quick
            test_read_before_write_tracking;
        ] );
      ("properties", qcheck_cases);
    ]
