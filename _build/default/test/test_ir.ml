(* Unit and property tests for the MiniIR library: instruction metadata,
   blocks, CFG construction, the builder DSL, the assembler, and the
   validator. *)

open Res_ir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_list = Alcotest.(list string)

(* A small two-function program used across several cases. *)
let sample_src =
  {|
# sample program
global counter 1
global buf 4

func main() {
entry:
  r0 = const 3
  r1 = call double(r0)
  r2 = global counter
  store r2[0] = r1
  br r1, big, small
big:
  r3 = const 1
  jmp done
small:
  r3 = const 0
  jmp done
done:
  assert r3, "must be big"
  halt
}

func double(r0) {
entry:
  r1 = add r0, r0
  ret r1
}
|}

let sample () = Parser.parse sample_src

(* --- instruction metadata --- *)

let test_defs_uses () =
  check (Alcotest.option int_t) "defs of binop" (Some 2)
    (Instr.defs (Instr.Binop (Instr.Add, 2, 0, 1)));
  check (Alcotest.list int_t) "uses of binop" [ 0; 1 ]
    (Instr.uses (Instr.Binop (Instr.Add, 2, 0, 1)));
  check (Alcotest.option int_t) "defs of store" None
    (Instr.defs (Instr.Store (1, 0, 2)));
  check (Alcotest.list int_t) "uses of store" [ 1; 2 ]
    (Instr.uses (Instr.Store (1, 0, 2)));
  check (Alcotest.list int_t) "uses of call" [ 4; 5 ]
    (Instr.uses (Instr.Call (Some 1, "f", [ 4; 5 ])));
  check (Alcotest.option int_t) "defs of void call" None
    (Instr.defs (Instr.Call (None, "f", [])));
  check (Alcotest.list int_t) "term_uses of br" [ 7 ]
    (Instr.term_uses (Instr.Br (7, "a", "b")));
  check string_list "targets of br" [ "a"; "b" ]
    (Instr.term_targets (Instr.Br (7, "a", "b")));
  check string_list "targets of br same label" [ "a" ]
    (Instr.term_targets (Instr.Br (7, "a", "a")))

let test_eval_binop () =
  check int_t "add" 7 (Instr.eval_binop Instr.Add 3 4);
  check int_t "sub" (-1) (Instr.eval_binop Instr.Sub 3 4);
  check int_t "mul" 12 (Instr.eval_binop Instr.Mul 3 4);
  check int_t "div" 2 (Instr.eval_binop Instr.Div 9 4);
  check int_t "rem" 1 (Instr.eval_binop Instr.Rem 9 4);
  check int_t "eq true" 1 (Instr.eval_binop Instr.Eq 5 5);
  check int_t "eq false" 0 (Instr.eval_binop Instr.Eq 5 6);
  check int_t "lt" 1 (Instr.eval_binop Instr.Lt 5 6);
  check int_t "ge" 0 (Instr.eval_binop Instr.Ge 5 6);
  check int_t "and" 4 (Instr.eval_binop Instr.And 6 12);
  check int_t "shl" 40 (Instr.eval_binop Instr.Shl 5 3);
  check int_t "shr" 5 (Instr.eval_binop Instr.Shr 40 3);
  check int_t "not zero" 1 (Instr.eval_unop Instr.Not 0);
  check int_t "not nonzero" 0 (Instr.eval_unop Instr.Not 42);
  check int_t "neg" (-5) (Instr.eval_unop Instr.Neg 5)

(* --- blocks --- *)

let test_block_live_in () =
  (* r0 read before def; r1 defined then read; r2 only defined. *)
  let b =
    Block.v "b"
      [
        Instr.Binop (Instr.Add, 1, 0, 0);
        Instr.Mov (2, 1);
        Instr.Const (1, 5);
      ]
      (Instr.Ret (Some 2))
  in
  check (Alcotest.list int_t) "live_in" [ 0 ] (Block.live_in_regs b);
  check (Alcotest.list int_t) "defined" [ 1; 2 ] (Block.defined_regs b);
  check (Alcotest.list int_t) "used" [ 0; 1; 2 ] (Block.used_regs b)

let test_block_live_in_term () =
  (* a register only read by the terminator is live-in *)
  let b = Block.v "b" [] (Instr.Br (9, "x", "y")) in
  check (Alcotest.list int_t) "live_in via term" [ 9 ] (Block.live_in_regs b)

(* --- CFG --- *)

let test_cfg_preds () =
  let p = sample () in
  let cfg = Cfg.of_prog p in
  check string_list "preds of done" [ "big"; "small" ]
    (Cfg.predecessors cfg ~func:"main" ~label:"done");
  check string_list "preds of entry" []
    (Cfg.predecessors cfg ~func:"main" ~label:"entry");
  check string_list "succs of entry" [ "big"; "small" ]
    (Cfg.successors cfg ~func:"main" ~label:"entry");
  let sites = Cfg.call_sites_of cfg "double" in
  check int_t "one call site" 1 (List.length sites);
  let s = List.hd sites in
  check Alcotest.string "call site func" "main" s.Cfg.in_func;
  check Alcotest.string "call site block" "entry" s.Cfg.in_block;
  check int_t "call site idx" 1 s.Cfg.at_idx;
  check string_list "no spawn sites" []
    (List.map (fun (s : Cfg.site) -> s.in_func) (Cfg.spawn_sites_of cfg "double"))

let test_cfg_reachability () =
  let src =
    {|
func main() {
entry:
  jmp loop
loop:
  r0 = const 1
  br r0, loop, out
out:
  halt
dead:
  halt
}
|}
  in
  let p = Parser.parse src in
  let cfg = Cfg.of_prog p in
  let f = Prog.func p "main" in
  check string_list "reachable" [ "entry"; "loop"; "out" ]
    (Cfg.reachable_labels cfg f);
  check string_list "unreachable" [ "dead" ] (Cfg.unreachable_labels cfg f)

(* --- builder --- *)

let test_builder_roundtrip () =
  let open Builder in
  let b = create () in
  global b "g" 2;
  let f = func b "main" ~params:0 in
  let entry = block f "entry" in
  let r1 = fresh f in
  let r2 = fresh f in
  const entry r1 21;
  add entry r2 r1 r1;
  let g = fresh f in
  global_addr entry g "g";
  store entry g 0 r2;
  halt entry;
  let p = finish b in
  let printed = Prog.to_string p in
  let p' = Parser.parse printed in
  check bool_t "builder print/parse round-trip" true (Prog.equal p p')

let test_builder_errors () =
  let open Builder in
  Alcotest.check_raises "missing terminator"
    (Invalid_argument "Builder.finish: block b lacks a terminator")
    (fun () ->
      let b = create () in
      let f = func b "main" ~params:0 in
      let _bb = block f "b" in
      ignore (finish b));
  Alcotest.check_raises "two terminators"
    (Invalid_argument "Builder: two terminators in b")
    (fun () ->
      let b = create () in
      let f = func b "main" ~params:0 in
      let bb = block f "b" in
      halt bb;
      halt bb)

(* --- parser --- *)

let test_parse_roundtrip () =
  let p = sample () in
  let p' = Parser.parse (Prog.to_string p) in
  check bool_t "print/parse round-trip" true (Prog.equal p p')

let test_parse_all_instrs () =
  let src =
    {|
global g 1
func main() {
entry:
  r0 = const -7
  r1 = mov r0
  r2 = add r0, r1
  r3 = not r2
  r4 = global g
  r5 = load r4[0]
  store r4[0] = r5
  r6 = const 3
  r7 = alloc r6
  free r7
  r8 = input net
  lock r4
  unlock r4
  r9 = spawn worker(r6)
  join r9
  r10 = call worker(r6)
  call helper()
  assert r6, "positive"
  log "tag", r6
  nop
  br r6, a, b
a:
  jmp b
b:
  ret
}
func worker(r0) {
entry:
  ret r0
}
func helper() {
entry:
  halt
}
|}
  in
  let p = Parser.parse src in
  let p' = Parser.parse (Prog.to_string p) in
  check bool_t "all-instruction round-trip" true (Prog.equal p p');
  check int_t "three functions" 3 (List.length p.Prog.funcs)

let test_parse_errors () =
  let bad fragment =
    match Parser.parse_result fragment with
    | Ok _ -> Alcotest.failf "expected parse failure for %S" fragment
    | Error _ -> ()
  in
  bad "func main() { entry: r0 = bogus r1 halt }";
  bad "func main() { entry: r0 = const }";
  bad "func main() { entry: }";
  bad "func main() {}";
  bad "what is this";
  bad "func main() { entry: halt";
  bad "global g";
  (* duplicate structures are rejected via Prog/Func validation *)
  bad "func main() { e: halt } func main() { e: halt }";
  bad "global g 1 global g 2 func main() { e: halt }";
  bad "global g 0 func main() { e: halt }"

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let test_parse_line_numbers () =
  match Parser.parse_result "func main() {\nentry:\n  r0 = wat r1\n  halt\n}" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error msg -> check bool_t "mentions line 3" true (contains_sub ~sub:"line 3" msg)

(* --- validator --- *)

let test_validate_ok () =
  check (Alcotest.list Alcotest.string) "sample program valid" []
    (List.map (fun (e : Validate.error) -> e.what) (Validate.check (sample ())))

let test_validate_catches () =
  let errs_of src = Validate.check (Parser.parse src) in
  let has_error src =
    match errs_of src with [] -> false | _ :: _ -> true
  in
  check bool_t "missing branch target" true
    (has_error "func main() { e: jmp nowhere }");
  check bool_t "unknown callee" true
    (has_error "func main() { e: call ghost() halt }");
  check bool_t "arity mismatch" true
    (has_error
       "func main() { e: r0 = const 1 call f(r0) halt } func f() { e: halt }");
  check bool_t "unknown global" true
    (has_error "func main() { e: r0 = global nope halt }");
  check bool_t "no main" true (has_error "func other() { e: halt }");
  check bool_t "main with params rejected" true
    (match
       Validate.check
         (Prog.v ~globals:[]
            [
              Func.v ~name:"main" ~params:[ 0 ] ~entry:"e"
                [ Block.v "e" [] Res_ir.Instr.Halt ];
            ])
     with
    | [] -> false
    | _ -> true)

(* --- qcheck properties --- *)

(* Random straight-line arithmetic programs: the printer and parser must
   round-trip on every one of them. *)
let gen_arith_prog =
  let open QCheck2.Gen in
  let binop =
    oneofl
      Instr.[ Add; Sub; Mul; And; Or; Xor; Eq; Ne; Lt; Le; Gt; Ge; Shl; Shr ]
  in
  let* n_instrs = int_range 1 30 in
  let* instrs =
    list_repeat n_instrs
      (let* dst = int_range 0 15 in
       let* choice = int_range 0 3 in
       match choice with
       | 0 ->
           let* v = int_range (-1000) 1000 in
           return (Instr.Const (dst, v))
       | 1 ->
           let* a = int_range 0 15 in
           return (Instr.Mov (dst, a))
       | 2 ->
           let* op = binop in
           let* a = int_range 0 15 in
           let* b = int_range 0 15 in
           return (Instr.Binop (op, dst, a, b))
       | _ ->
           let* op = oneofl Instr.[ Not; Neg ] in
           let* a = int_range 0 15 in
           return (Instr.Unop (op, dst, a)))
  in
  let f =
    Func.v ~name:"main" ~params:[] ~entry:"entry"
      [ Block.v "entry" instrs Instr.Halt ]
  in
  return (Prog.v ~globals:[] [ f ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"print/parse round-trip (random arith)" ~count:200
    gen_arith_prog (fun p ->
      match Parser.parse_result (Prog.to_string p) with
      | Ok p' -> Prog.equal p p'
      | Error msg -> QCheck2.Test.fail_report msg)

let prop_validate_random =
  QCheck2.Test.make ~name:"random arith programs validate" ~count:100
    gen_arith_prog (fun p -> Validate.check p = [])

let prop_cfg_pred_succ_dual =
  (* successors and predecessors are duals on the sample program *)
  QCheck2.Test.make ~name:"cfg pred/succ duality" ~count:1 QCheck2.Gen.unit
    (fun () ->
      let p = sample () in
      let cfg = Cfg.of_prog p in
      List.for_all
        (fun (f : Func.t) ->
          List.for_all
            (fun (b : Block.t) ->
              List.for_all
                (fun s ->
                  List.mem b.label (Cfg.predecessors cfg ~func:f.name ~label:s))
                (Cfg.successors cfg ~func:f.name ~label:b.label))
            f.blocks)
        p.Prog.funcs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_validate_random; prop_cfg_pred_succ_dual ]

let () =
  Alcotest.run "res_ir"
    [
      ( "instr",
        [
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "eval_binop" `Quick test_eval_binop;
        ] );
      ( "block",
        [
          Alcotest.test_case "live_in" `Quick test_block_live_in;
          Alcotest.test_case "live_in via terminator" `Quick
            test_block_live_in_term;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "predecessors" `Quick test_cfg_preds;
          Alcotest.test_case "reachability" `Quick test_cfg_reachability;
        ] );
      ( "builder",
        [
          Alcotest.test_case "round-trip" `Quick test_builder_roundtrip;
          Alcotest.test_case "errors" `Quick test_builder_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "all instructions" `Quick test_parse_all_instrs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error line numbers" `Quick test_parse_line_numbers;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts sample" `Quick test_validate_ok;
          Alcotest.test_case "catches violations" `Quick test_validate_catches;
        ] );
      ("properties", qcheck_cases);
    ]
