(* Tests for the §3 use cases: triaging, exploitability, hardware-error
   diagnosis. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- triage --- *)

let corpus = lazy (Res_workloads.Corpus.generate ~n_per_bug:3 ())

let triage_reports () =
  let reports = Lazy.force corpus in
  let as_triage =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        ( { Res_usecases.Triage.t_id = r.r_id; t_prog = r.r_prog; t_dump = r.r_dump },
          r.r_bug ))
      reports
  in
  as_triage

let test_wer_fragments_and_merges () =
  let pairs = triage_reports () in
  let reports = List.map fst pairs in
  let truth r = List.assq r pairs in
  let buckets =
    Res_usecases.Triage.bucket
      ~key:(fun (r : Res_usecases.Triage.report) ->
        Res_usecases.Triage.wer_key r.t_dump)
      reports
  in
  let q = Res_usecases.Triage.quality ~truth ~buckets reports in
  (* WER must both over-split (uaf variants) and wrongly merge (the
     same-stack pair), so mis-bucketing is well above zero *)
  check bool_t
    (Fmt.str "WER misbuckets a sizable fraction (%.2f)" q.misbucketed)
    true
    (q.Res_usecases.Triage.misbucketed > 0.15);
  check bool_t "WER splits bugs (recall < 1)" true
    (q.Res_usecases.Triage.pairwise_recall < 1.0);
  check bool_t "WER merges bugs (precision < 1)" true
    (q.Res_usecases.Triage.pairwise_precision < 1.0)

let test_res_buckets_by_root_cause () =
  let pairs = triage_reports () in
  let reports = List.map fst pairs in
  let truth r = List.assq r pairs in
  let buckets = Res_usecases.Triage.bucket ~key:Res_usecases.Triage.res_key reports in
  let q = Res_usecases.Triage.quality ~truth ~buckets reports in
  check int_t "one bucket per bug" q.Res_usecases.Triage.n_bugs
    q.Res_usecases.Triage.n_buckets;
  check (Alcotest.float 0.001) "nothing misbucketed" 0.0
    q.Res_usecases.Triage.misbucketed;
  check (Alcotest.float 0.001) "perfect pairwise F1" 1.0
    q.Res_usecases.Triage.pairwise_f1

let test_quality_metric_sanity () =
  (* perfect bucketing on a fabricated corpus *)
  let dummy_prog = Res_workloads.Fig1.prog in
  let dump = Res_workloads.Truth.coredump Res_workloads.Fig1.workload in
  let mk id = { Res_usecases.Triage.t_id = id; t_prog = dummy_prog; t_dump = dump } in
  let r1 = mk 1 and r2 = mk 2 and r3 = mk 3 in
  let truth r = if r == r3 then "b" else "a" in
  let perfect = [ ("k1", [ r1; r2 ]); ("k2", [ r3 ]) ] in
  let q = Res_usecases.Triage.quality ~truth ~buckets:perfect [ r1; r2; r3 ] in
  check (Alcotest.float 0.001) "perfect f1" 1.0 q.Res_usecases.Triage.pairwise_f1;
  check (Alcotest.float 0.001) "no misbuckets" 0.0 q.Res_usecases.Triage.misbucketed;
  (* everything merged: precision suffers *)
  let merged = [ ("k", [ r1; r2; r3 ]) ] in
  let q = Res_usecases.Triage.quality ~truth ~buckets:merged [ r1; r2; r3 ] in
  check bool_t "merged precision < 1" true (q.Res_usecases.Triage.pairwise_precision < 1.0);
  check (Alcotest.float 0.001) "merged recall 1" 1.0 q.Res_usecases.Triage.pairwise_recall

let test_annotations_override_bucket () =
  let pairs = triage_reports () in
  let reports = List.map fst pairs in
  let annotations =
    [
      Res_usecases.Triage.annotate_signature_prefix ~bucket:"ISSUE-42"
        ~prefix:"div0:scale";
    ]
  in
  let buckets =
    Res_usecases.Triage.bucket
      ~key:(fun r -> Res_usecases.Triage.res_key ~annotations r)
      reports
  in
  check bool_t "annotated bucket exists" true
    (List.mem_assoc "ISSUE-42" buckets);
  check bool_t "raw div0 signature no longer used" true
    (not (List.exists (fun (k, _) -> k = "div0:scale:entry:0") buckets))

(* --- exploitability --- *)

let classify w =
  let dump = Res_workloads.Truth.coredump w in
  Res_usecases.Exploit.classify_dump w.Res_workloads.Truth.w_prog dump

let test_exploit_tainted_index () =
  let e = classify Res_workloads.Heap_overflow.workload_tainted in
  check Alcotest.string "tainted overflow exploitable" "EXPLOITABLE"
    (Res_usecases.Exploit.rating_name e.Res_usecases.Exploit.rating);
  check bool_t "address tainted" true e.Res_usecases.Exploit.tainted_addr

let test_exploit_internal_index () =
  let e = classify Res_workloads.Heap_overflow.workload_internal in
  check Alcotest.string "internal overflow not exploitable"
    "PROBABLY_NOT_EXPLOITABLE"
    (Res_usecases.Exploit.rating_name e.Res_usecases.Exploit.rating);
  check bool_t "address untainted" false e.Res_usecases.Exploit.tainted_addr

let test_exploit_fig1 () =
  let e = classify Res_workloads.Fig1.workload in
  check Alcotest.string "Fig.1 index is attacker data" "EXPLOITABLE"
    (Res_usecases.Exploit.rating_name e.Res_usecases.Exploit.rating)

let test_exploit_beats_heuristic () =
  (* ground truth: (workload, attacker can drive the fault) *)
  let cases =
    [
      (Res_workloads.Heap_overflow.workload_tainted, true);
      (Res_workloads.Heap_overflow.workload_internal, false);
      (Res_workloads.Fig1.workload, true);
      (Res_workloads.Uaf.workload_variant 0, false);
      (Res_workloads.Double_free.workload, false);
    ]
  in
  let res_correct, heur_correct =
    List.fold_left
      (fun (rc, hc) (w, expected) ->
        let dump = Res_workloads.Truth.coredump w in
        let e = Res_usecases.Exploit.classify_dump w.Res_workloads.Truth.w_prog dump in
        let res_says = e.Res_usecases.Exploit.rating = Res_usecases.Exploit.Exploitable in
        let h = Res_baselines.Exploitable_heuristic.rate w.Res_workloads.Truth.w_prog dump in
        let heur_says =
          h = Res_baselines.Exploitable_heuristic.H_exploitable
        in
        ( (rc + if res_says = expected then 1 else 0),
          (hc + if heur_says = expected then 1 else 0) ))
      (0, 0) cases
  in
  check int_t "RES classifies all five correctly" 5 res_correct;
  check bool_t
    (Fmt.str "heuristic is strictly worse (%d < %d)" heur_correct res_correct)
    true (heur_correct < res_correct)

(* --- hardware diagnosis --- *)

let test_hwdiag_all_cases () =
  List.iter
    (fun (c : Res_workloads.Hw_fault.case) ->
      let dump = Res_workloads.Hw_fault.coredump_of_case c in
      let v = Res_usecases.Hwdiag.diagnose c.c_prog dump in
      let is_hw =
        match v with Res_usecases.Hwdiag.Hardware _ -> true | _ -> false
      in
      check bool_t
        (Fmt.str "%s diagnosed correctly" c.c_name)
        c.Res_workloads.Hw_fault.c_hardware is_hw)
    Res_workloads.Hw_fault.cases

let test_hwdiag_identifies_location () =
  (* the memory-error verdict names the corrupted global *)
  let c = List.hd Res_workloads.Hw_fault.cases in
  let dump = Res_workloads.Hw_fault.coredump_of_case c in
  let layout = Res_mem.Layout.of_prog c.c_prog in
  let flag = Res_mem.Layout.global_base layout "flag" in
  match Res_usecases.Hwdiag.diagnose c.c_prog dump with
  | Res_usecases.Hwdiag.Hardware (Res_usecases.Hwdiag.Memory_error { addr }) ->
      check int_t "corrupted cell identified" flag addr
  | v -> Alcotest.failf "expected memory error, got %a" Res_usecases.Hwdiag.pp_verdict v

let test_hwdiag_cpu_register () =
  let c =
    List.find
      (fun (c : Res_workloads.Hw_fault.case) ->
        String.equal c.c_name "cpu-alu-miscompute")
      Res_workloads.Hw_fault.cases
  in
  let dump = Res_workloads.Hw_fault.coredump_of_case c in
  match Res_usecases.Hwdiag.diagnose c.c_prog dump with
  | Res_usecases.Hwdiag.Hardware (Res_usecases.Hwdiag.Cpu_error { reg; _ }) ->
      check int_t "miscomputed register identified" 2 reg
  | v -> Alcotest.failf "expected CPU error, got %a" Res_usecases.Hwdiag.pp_verdict v

let () =
  Alcotest.run "res_usecases"
    [
      ( "triage",
        [
          Alcotest.test_case "WER fragments and merges" `Quick
            test_wer_fragments_and_merges;
          Alcotest.test_case "RES buckets by root cause" `Quick
            test_res_buckets_by_root_cause;
          Alcotest.test_case "metric sanity" `Quick test_quality_metric_sanity;
          Alcotest.test_case "developer annotations" `Quick
            test_annotations_override_bucket;
        ] );
      ( "exploit",
        [
          Alcotest.test_case "tainted index" `Quick test_exploit_tainted_index;
          Alcotest.test_case "internal index" `Quick test_exploit_internal_index;
          Alcotest.test_case "Fig.1" `Quick test_exploit_fig1;
          Alcotest.test_case "beats heuristic" `Quick test_exploit_beats_heuristic;
        ] );
      ( "hwdiag",
        [
          Alcotest.test_case "all six cases" `Quick test_hwdiag_all_cases;
          Alcotest.test_case "memory location" `Quick test_hwdiag_identifies_location;
          Alcotest.test_case "cpu register" `Quick test_hwdiag_cpu_register;
        ] );
    ]
