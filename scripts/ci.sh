#!/bin/sh
# CI entry point: build, run the full test suite, then fault-inject the
# pipeline itself (res selftest exits non-zero if any perturbed analysis
# escapes with an exception or the 1s deadline is not honored within 10%).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bin/res_cli.exe -- selftest --runs 60
