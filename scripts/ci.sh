#!/bin/sh
# CI entry point: build (including formatting of dune files), run the
# full test suite, then fault-inject the pipeline itself: res selftest
# exits non-zero if any perturbed analysis escapes with an exception or
# the 1s deadline is not honored within 10%, the kill-resume campaign
# exits non-zero if any killed-and-resumed analysis fails to reconverge
# to bit-identical reports or leaves a torn file on disk, and the
# prune-equivalence campaign exits non-zero if disabling the static
# pruner changes any workload's reports, and the reverse-equivalence
# campaign does the same for the concrete reverse-execution fast path
# (under a hard timeout: equivalence is only meaningful if the fast
# path is also fast).  The parallel gates assert the
# sharded engine is byte-identical to the serial one at -j 2 and -j 4
# and that SIGKILLing batch-triage workers mid-unit never changes the
# final TSV.  The serve-soak gate floods the triage daemon past
# capacity, SIGKILLs a worker and then the daemon itself, and exits
# non-zero if any accepted request is lost, any served report diverges
# from offline analyze, the breaker fails to trip and recover, or
# drain exits non-zero; it runs under a hard timeout so a wedged
# daemon fails CI instead of hanging it.  The cluster-soak gate shards
# the corpus across three TCP node daemons, SIGKILLs the coordinator
# mid-corpus (resuming it from its journal), SIGKILLs a node (its units
# must reschedule), and stalls a node past the unit deadline — and
# exits non-zero if any unit is lost or any merged TSV differs from
# single-node triage by a byte; same hard timeout so a wedged cluster
# fails CI instead of hanging it.  The byzantine gate puts a lying
# node in the fleet and exits non-zero unless both corruption modes
# (wrong unit name, fabricated verdict fields) are rejected, the liar
# quarantined, and the TSV unchanged.  The fuzz gate runs a bounded
# deterministic structured-fuzzing campaign over every sealed codec
# and text grammar and exits non-zero on any uncaught exception, hang,
# or silent acceptance of damaged bytes.  The debug-equivalence gate
# scripts the time-travel debugger over every workload and fails if
# the snapshot index is anything but latency-invisible.  Finally `res
# check` lints the whole
# workload corpus: the three seeded concurrency bugs must be the only
# findings (per-program invert-coverage info rows are expected and
# exempt).
set -eu
cd "$(dirname "$0")/.."

dune build
dune build @fmt
dune runtest
dune exec bin/res_cli.exe -- selftest --runs 60
dune exec bin/res_cli.exe -- selftest --kill-resume
dune exec bin/res_cli.exe -- selftest --prune-equivalence
timeout 120 dune exec bin/res_cli.exe -- selftest --reverse-equivalence
dune exec bin/res_cli.exe -- selftest --worker-kill
dune exec bin/res_cli.exe -- selftest --parallel-equivalence 2
dune exec bin/res_cli.exe -- selftest --parallel-equivalence 4
timeout 120 dune exec bin/res_cli.exe -- selftest --serve-soak
timeout 240 dune exec bin/res_cli.exe -- selftest --cluster-soak

# Byzantine-node gate: one of three node daemons computes honestly but
# falsifies the rows it returns (wrong unit name, then fabricated
# verdict fields); exits non-zero unless every lie is rejected, the
# liar is quarantined, its units reschedule, and the merged TSV stays
# byte-identical to single-node triage with zero lost units.
timeout 240 dune exec bin/res_cli.exe -- selftest --byzantine

# Fuzzing gate: a bounded deterministic campaign over every sealed
# codec and text grammar; exits non-zero on any uncaught exception,
# hang, silent acceptance of damaged bytes, or rejected pristine seed.
timeout 240 dune exec bin/res_cli.exe -- fuzz --smoke

# Time-travel debugger gate: drive the same scripted session over every
# workload's crash at snapshot intervals {64,7,1} and with the index
# disabled entirely, and exit non-zero if any transcript or exit code
# differs by a byte — the snapshot index must be invisible except in
# latency.
timeout 120 dune exec bin/res_cli.exe -- selftest --debug-equivalence

# Result-cache gate: the chaos campaign (torn writes, injected disk
# faults, garbage and bit-flipped entries) under a hard timeout, then a
# cold/warm byte-identity smoke of the CLI flags themselves: a second
# triage of the same dumps must be answered entirely from the cache and
# emit the byte-identical TSV.
timeout 120 dune exec bin/res_cli.exe -- selftest --cache-chaos
cache_tmp=$(mktemp -d)
trap 'rm -rf "$cache_tmp"' EXIT
mkdir "$cache_tmp/dumps"
dune exec bin/res_cli.exe -- workload counter-race \
  -o "$cache_tmp/dumps/a.core" --program "$cache_tmp/prog.res"
cp "$cache_tmp/dumps/a.core" "$cache_tmp/dumps/b.core"
dune exec bin/res_cli.exe -- triage "$cache_tmp/prog.res" \
  --dir "$cache_tmp/dumps" --cache-dir "$cache_tmp/cache" > "$cache_tmp/cold.tsv"
dune exec bin/res_cli.exe -- triage "$cache_tmp/prog.res" \
  --dir "$cache_tmp/dumps" --cache-dir "$cache_tmp/cache" --stats \
  > "$cache_tmp/warm.tsv" 2> "$cache_tmp/warm.stats"
cmp "$cache_tmp/cold.tsv" "$cache_tmp/warm.tsv" \
  || { echo "warm cached triage TSV diverged from cold"; exit 1; }
grep -q "cache_hits=2" "$cache_tmp/warm.stats" \
  || { echo "warm triage did not hit the cache:"; cat "$cache_tmp/warm.stats"; exit 1; }

# Scripted debugger session smoke: a passing script must exit 0 and its
# transcript must be byte-identical at a different snapshot interval and
# with the index off; a failing assert must exit 2, not 0 or 1.
cat > "$cache_tmp/session.dbg" <<'EOF'
where
threads
step 4
regs
step-back 2
where
continue
where
goto 0
assert 2 == 1 + 1
EOF
dune exec bin/res_cli.exe -- debug "$cache_tmp/prog.res" \
  "$cache_tmp/dumps/a.core" --script "$cache_tmp/session.dbg" \
  > "$cache_tmp/dbg64.txt" \
  || { echo "passing debug script exited non-zero"; exit 1; }
dune exec bin/res_cli.exe -- debug "$cache_tmp/prog.res" \
  "$cache_tmp/dumps/a.core" --script "$cache_tmp/session.dbg" \
  --snapshot-every 7 > "$cache_tmp/dbg7.txt"
dune exec bin/res_cli.exe -- debug "$cache_tmp/prog.res" \
  "$cache_tmp/dumps/a.core" --script "$cache_tmp/session.dbg" \
  --no-snapshot-index > "$cache_tmp/dbg0.txt"
cmp "$cache_tmp/dbg64.txt" "$cache_tmp/dbg7.txt" \
  || { echo "debug transcript changed with snapshot interval 7"; exit 1; }
cmp "$cache_tmp/dbg64.txt" "$cache_tmp/dbg0.txt" \
  || { echo "debug transcript changed with the snapshot index off"; exit 1; }
echo "assert 1 == 2" > "$cache_tmp/fail.dbg"
dbg_rc=0
dune exec bin/res_cli.exe -- debug "$cache_tmp/prog.res" \
  "$cache_tmp/dumps/a.core" --script "$cache_tmp/fail.dbg" \
  > /dev/null || dbg_rc=$?
[ "$dbg_rc" -eq 2 ] \
  || { echo "failing debug assert exited $dbg_rc, expected 2"; exit 1; }

# A cached daemon submit must still mint a fetchable spool id: warm up
# the cache with one blocking submit, then a --no-wait submit answered
# from the cache must return a real id whose fetch replays the report.
# The daemon is run from the built binary, not `dune exec`: a
# backgrounded dune holds the build lock for as long as the daemon
# lives, deadlocking every later dune command in this script.
RES=_build/default/bin/res_cli.exe
"$RES" serve --socket "$cache_tmp/s.sock" \
  --spool "$cache_tmp/spool" --cache-dir "$cache_tmp/srv-cache" &
serve_pid=$!
i=0
until "$RES" client ping --socket "$cache_tmp/s.sock" >/dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -le 100 ] || { echo "daemon never came up"; exit 1; }
  sleep 0.1
done
"$RES" client submit "$cache_tmp/prog.res" "$cache_tmp/dumps/a.core" \
  --socket "$cache_tmp/s.sock" > "$cache_tmp/s1.txt"
sid=$("$RES" client submit "$cache_tmp/prog.res" "$cache_tmp/dumps/a.core" \
  --socket "$cache_tmp/s.sock" --no-wait | awk '{print $2}')
"$RES" client fetch "$sid" --socket "$cache_tmp/s.sock" \
  > "$cache_tmp/s2.txt" \
  || { echo "cached submit id '$sid' is not fetchable"; exit 1; }
"$RES" client drain --socket "$cache_tmp/s.sock" >/dev/null
wait "$serve_pid"
# normalize the header line: id and elapsed are per-request noise
sed '1s/^result .*: \(.*\) (.*)$/result: \1/' "$cache_tmp/s1.txt" > "$cache_tmp/s1.norm"
sed '1s/^result .*: \(.*\) (.*)$/result: \1/' "$cache_tmp/s2.txt" > "$cache_tmp/s2.norm"
cmp "$cache_tmp/s1.norm" "$cache_tmp/s2.norm" \
  || { echo "fetched cached report diverged from the computed one"; exit 1; }

# Static lint over the corpus: warnings are expected (exit 2) but only
# on the seeded bugs; any other program producing a finding, or any
# lint error, fails CI.
lint=$(dune exec bin/res_cli.exe -- check --all-workloads) || [ $? -eq 2 ]
echo "$lint"
bad=$(echo "$lint" | awk -F'\t' \
  '$1 != "counter-race" && $1 != "lock-order-deadlock" && $1 != "kvstore-stats-race" \
   && $3 != "invert-coverage"')
[ -z "$bad" ] || { echo "unexpected lint findings:"; echo "$bad"; exit 1; }
echo "$lint" | grep -q "^counter-race	warning	race" || { echo "missing counter-race race finding"; exit 1; }
echo "$lint" | grep -q "^lock-order-deadlock	warning	deadlock" || { echo "missing deadlock finding"; exit 1; }
echo "$lint" | grep -q "^kvstore-stats-race	warning	race" || { echo "missing kvstore race finding"; exit 1; }
