#!/bin/sh
# CI entry point: build (including formatting of dune files), run the
# full test suite, then fault-inject the pipeline itself: res selftest
# exits non-zero if any perturbed analysis escapes with an exception or
# the 1s deadline is not honored within 10%, the kill-resume campaign
# exits non-zero if any killed-and-resumed analysis fails to reconverge
# to bit-identical reports or leaves a torn file on disk, and the
# prune-equivalence campaign exits non-zero if disabling the static
# pruner changes any workload's reports.  The parallel gates assert the
# sharded engine is byte-identical to the serial one at -j 2 and -j 4
# and that SIGKILLing batch-triage workers mid-unit never changes the
# final TSV.  The serve-soak gate floods the triage daemon past
# capacity, SIGKILLs a worker and then the daemon itself, and exits
# non-zero if any accepted request is lost, any served report diverges
# from offline analyze, the breaker fails to trip and recover, or
# drain exits non-zero; it runs under a hard timeout so a wedged
# daemon fails CI instead of hanging it.  The cluster-soak gate shards
# the corpus across three TCP node daemons, SIGKILLs the coordinator
# mid-corpus (resuming it from its journal), SIGKILLs a node (its units
# must reschedule), and stalls a node past the unit deadline — and
# exits non-zero if any unit is lost or any merged TSV differs from
# single-node triage by a byte; same hard timeout so a wedged cluster
# fails CI instead of hanging it.  Finally `res check` lints the whole
# workload corpus: the three seeded concurrency bugs must be the only
# findings.
set -eu
cd "$(dirname "$0")/.."

dune build
dune build @fmt
dune runtest
dune exec bin/res_cli.exe -- selftest --runs 60
dune exec bin/res_cli.exe -- selftest --kill-resume
dune exec bin/res_cli.exe -- selftest --prune-equivalence
dune exec bin/res_cli.exe -- selftest --worker-kill
dune exec bin/res_cli.exe -- selftest --parallel-equivalence 2
dune exec bin/res_cli.exe -- selftest --parallel-equivalence 4
timeout 120 dune exec bin/res_cli.exe -- selftest --serve-soak
timeout 240 dune exec bin/res_cli.exe -- selftest --cluster-soak

# Static lint over the corpus: warnings are expected (exit 2) but only
# on the seeded bugs; any other program producing a finding, or any
# lint error, fails CI.
lint=$(dune exec bin/res_cli.exe -- check --all-workloads) || [ $? -eq 2 ]
echo "$lint"
bad=$(echo "$lint" | awk -F'\t' \
  '$1 != "counter-race" && $1 != "lock-order-deadlock" && $1 != "kvstore-stats-race"')
[ -z "$bad" ] || { echo "unexpected lint findings:"; echo "$bad"; exit 1; }
echo "$lint" | grep -q "^counter-race	warning	race" || { echo "missing counter-race race finding"; exit 1; }
echo "$lint" | grep -q "^lock-order-deadlock	warning	deadlock" || { echo "missing deadlock finding"; exit 1; }
echo "$lint" | grep -q "^kvstore-stats-race	warning	race" || { echo "missing kvstore race finding"; exit 1; }
