#!/bin/sh
# CI entry point: build (including formatting of dune files), run the
# full test suite, then fault-inject the pipeline itself: res selftest
# exits non-zero if any perturbed analysis escapes with an exception or
# the 1s deadline is not honored within 10%, and the kill-resume
# campaign exits non-zero if any killed-and-resumed analysis fails to
# reconverge to bit-identical reports or leaves a torn file on disk.
set -eu
cd "$(dirname "$0")/.."

dune build
dune build @fmt
dune runtest
dune exec bin/res_cli.exe -- selftest --runs 60
dune exec bin/res_cli.exe -- selftest --kill-resume
