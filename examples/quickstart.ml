(* Quickstart: write a buggy program, crash it, and let RES reconstruct a
   replayable execution suffix from nothing but the coredump.

     dune exec examples/quickstart.exe

   The program reads a message length from the network and copies that
   many words into a fixed 4-word buffer — the classic overflow.  We run
   it once (as "production" would), keep only the coredump, and hand that
   to RES. *)

let program =
  Res_ir.Validate.check_exn
    (Res_ir.Parser.parse
       {|
global buffer 4
global len 1

func main() {
entry:
  # receive the message length from the network (attacker-controlled!)
  r0 = input net
  r1 = global len
  store r1[0] = r0
  jmp copy
copy:
  # copy loop: buffer[i] = i for i in 0..len-1, no bounds check
  r2 = const 0
  jmp loop
loop:
  r3 = global len
  r4 = load r3[0]
  r5 = lt r2, r4
  br r5, body, done
body:
  r6 = global buffer
  r7 = add r6, r2
  store r7[0] = r2
  r8 = const 1
  r2 = add r2, r8
  jmp loop
done:
  halt
}
|})

let () =
  Fmt.pr "== 1. the production run crashes ==@.";
  (* the attacker sends length 5: one word past the buffer *)
  let config =
    {
      (Res_vm.Exec.default_config ()) with
      oracle = Res_vm.Oracle.scripted [ 5 ];
    }
  in
  let dump =
    match Res_vm.Exec.run_to_coredump ~config program with
    | Some dump, _ -> dump
    | None, _ -> failwith "expected a crash"
  in
  Fmt.pr "%a@.@." Res_vm.Crash.pp dump.Res_vm.Coredump.crash;

  Fmt.pr "== 2. RES analyzes the coredump (no recording, no inputs kept) ==@.";
  let ctx = Res_core.Backstep.make_ctx program in
  let analysis = Res_core.Res.analysis (Res_core.Res.analyze ctx dump) in
  Fmt.pr "%s@." (Res_core.Report.analysis_to_string ctx analysis);

  Fmt.pr "== 3. the suffix replays deterministically ==@.";
  let report = List.hd analysis.Res_core.Res.reports in
  let ok, _ =
    Res_core.Replay.replay_deterministically ~times:5 ctx
      report.Res_core.Res.suffix dump
  in
  Fmt.pr "replayed 5 times, every run hit the exact coredump: %b@.@." ok;

  Fmt.pr "== 4. and the overflow is attacker-controlled ==@.";
  let e = Res_usecases.Exploit.classify_dump program dump in
  Fmt.pr "exploitability: %s (faulting address tainted by network input: %b)@."
    (Res_usecases.Exploit.rating_name e.Res_usecases.Exploit.rating)
    e.Res_usecases.Exploit.tainted_addr
