(* Post-mortem of a key-value store node — the datacenter scenario from
   the paper's introduction.

     dune exec examples/kvstore_outage.exe

   "Recording all this data and storing it for debugging purposes is
   impractical" (§1): the node ran with NO recording.  All that survives
   the outage is the coredump the supervisor collected when the audit
   assertion fired.  RES reconstructs the interleaving that lost a
   statistics update, names the racy counter, and hands back a
   deterministic repro. *)

let () =
  let w = Res_workloads.Kvstore.workload in
  let prog = w.Res_workloads.Truth.w_prog in

  Fmt.pr "== the node (table updates locked, stats counter is not) ==@.";
  Fmt.pr "%s@." (Res_ir.Prog.to_string prog);

  (* production: two request handlers, interleaved by the OS scheduler *)
  let dump = Res_workloads.Truth.coredump w in
  Fmt.pr "== the outage ==@.%a@." Res_vm.Crash.pp dump.Res_vm.Coredump.crash;
  let layout = Res_mem.Layout.of_prog prog in
  let size = Res_mem.Layout.global_base layout "size" in
  Fmt.pr "coredump says: size = %d (the supervisor expected 2)@.@."
    (Res_vm.Coredump.read dump size);

  (* RES, from the coredump alone *)
  let ctx = Res_core.Backstep.make_ctx prog in
  let config =
    {
      Res_core.Res.default_config with
      search =
        {
          Res_core.Search.default_config with
          max_segments = 12;
          max_nodes = 60_000;
        };
    }
  in
  let analysis = Res_core.Res.analysis (Res_core.Res.analyze ~config ctx dump) in
  let report = List.hd analysis.Res_core.Res.reports in
  Fmt.pr "== RES verdict (%.3fs of cpu) ==@." analysis.Res_core.Res.cpu_seconds;
  Fmt.pr "%a@." Res_core.Suffix.pp report.Res_core.Res.suffix;
  (match report.Res_core.Res.root_cause with
  | Some cause ->
      Fmt.pr "root cause: %a@." Res_core.Rootcause.pp cause;
      Fmt.pr "(0x%x is `size` — the counter updated outside the lock)@.@." size
  | None -> ());

  (* the repro ticket: replay it as many times as the fix review needs *)
  let ok, _ =
    Res_core.Replay.replay_deterministically ~times:10 ctx
      report.Res_core.Res.suffix dump
  in
  Fmt.pr "== repro ticket ==@.";
  Fmt.pr "schedule: %a, inputs: %a@."
    Fmt.(list ~sep:sp int)
    (Res_core.Suffix.schedule report.Res_core.Res.suffix)
    Fmt.(list ~sep:comma int)
    (Res_core.Suffix.input_script report.Res_core.Res.suffix);
  Fmt.pr "replayed 10/10 times into the exact coredump: %b@." ok;

  (* and the state the suffix touches is the state to stare at (§3.3) *)
  Fmt.pr "@.recently written state: %a@."
    Fmt.(list ~sep:comma string)
    (List.map
       (Res_mem.Layout.describe layout)
       (Res_core.Suffix.write_set report.Res_core.Res.suffix))
