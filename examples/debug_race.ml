(* Debugging a concurrency bug post-mortem (paper §3.3 and §4).

     dune exec examples/debug_race.exe

   Two worker threads increment a shared counter without holding the lock;
   under an unlucky schedule one update is lost and main's consistency
   assertion fails.  RES reconstructs the interleaving from the coredump
   alone, and the debugger session answers the paper's example hypothesis
   queries over the deterministic replay. *)

let () =
  let w = Res_workloads.Counter_race.workload in
  let prog = w.Res_workloads.Truth.w_prog in
  Fmt.pr "== the buggy program ==@.%s@." (Res_ir.Prog.to_string prog);

  (* production crash under an unlucky interleaving *)
  let dump = Res_workloads.Truth.coredump w in
  Fmt.pr "== production failure ==@.%a@.@." Res_vm.Crash.pp
    dump.Res_vm.Coredump.crash;

  (* RES: coredump -> suffix -> root cause *)
  let ctx = Res_core.Backstep.make_ctx prog in
  let config =
    {
      Res_core.Res.default_config with
      search = { Res_core.Search.default_config with max_segments = 8 };
    }
  in
  let analysis = Res_core.Res.analysis (Res_core.Res.analyze ~config ctx dump) in
  let report = List.hd analysis.Res_core.Res.reports in
  Fmt.pr "== synthesized suffix ==@.%a@." Res_core.Suffix.pp
    report.Res_core.Res.suffix;
  (match report.Res_core.Res.root_cause with
  | Some cause -> Fmt.pr "root cause: %a@.@." Res_core.Rootcause.pp cause
  | None -> ());

  (* open a debugging session over the deterministic replay *)
  let dbg =
    match Res_core.Debugger.start ctx report.Res_core.Res.suffix dump with
    | Ok dbg -> dbg
    | Error msg -> failwith msg
  in
  Fmt.pr "== instruction-level listing of the suffix ==@.";
  Fmt.pr "%a@." Res_core.Debugger.pp dbg;

  let layout = Res_mem.Layout.of_prog prog in
  let counter = Res_mem.Layout.global_base layout "counter" in

  (* the write history of the corrupted location *)
  Fmt.pr "== write history of `counter` ==@.";
  List.iter
    (fun i ->
      let e = Res_core.Debugger.event_at dbg i in
      Fmt.pr "step %d: %a@." i Res_vm.Event.pp e)
    (Res_core.Debugger.writes_to dbg counter);

  (* hypothesis: was a worker preempted between its read and its write? *)
  Fmt.pr "@.== hypothesis testing ==@.";
  List.iter
    (fun tid ->
      match Res_core.Debugger.preempted_before_update dbg ~tid ~addr:counter with
      | Some answer ->
          Fmt.pr
            "was thread %d preempted before updating `counter`?  %b@." tid answer
      | None -> Fmt.pr "thread %d never updates `counter` in this suffix@." tid)
    [ 1; 2 ];

  (* "what was the program state when executing at pc X?" *)
  let assert_pc = Res_ir.Pc.v ~func:"main" ~block:"check" ~idx:4 in
  (match Res_core.Debugger.break_at dbg assert_pc with
  | Some i ->
      Fmt.pr "@.== state when main reached the assert (step %d) ==@." i;
      Fmt.pr "counter = %d (expected 2: one update was lost)@."
        (Res_core.Debugger.mem_at dbg i counter)
  | None -> Fmt.pr "assert pc not reached?!@.");

  (* reverse debugging: walk backward from the crash *)
  Fmt.pr "@.== reverse stepping from the crash ==@.";
  let n = Res_core.Debugger.length dbg in
  List.iter
    (fun back ->
      let i = n - 1 - back in
      if i >= 0 then
        let e = Res_core.Debugger.event_at dbg i in
        Fmt.pr "crash-%d: %a   (counter=%d)@." back Res_vm.Event.pp e
          (Res_core.Debugger.mem_at dbg i counter))
    [ 0; 1; 2; 3; 4 ]
