(** The cluster coordinator: shard a triage corpus across N node
    daemons, survive any of them dying, and emit bytes identical to a
    single-node [res triage].

    {b Routing} is deterministic hash-sharding: a unit's workload
    signature (the WER key — crash family + stack, the same key the
    node-side circuit breakers use) is FNV-1a-hashed onto a primary
    node, so every dump from one buggy deployment lands on one node and
    trips {e that} node's breaker, not every breaker in the fleet.
    Failover walks [(primary + k) mod n] over live nodes with window
    room, so even rescheduled units route deterministically.

    {b Fault handling}: every exchange is bounded (connect deadline,
    per-unit wall deadline); a node that refuses, stalls, hangs up, or
    answers garbage is charged a failure in the {!Registry} (capped
    exponential backoff, then declared dead) and the unit is retried —
    on another node if one is available — up to [unit_attempts] times.
    Only when every attempt on every live node is exhausted does the
    unit degrade to the same [worker-lost] row single-node batch triage
    emits for a dump whose workers kept dying.

    {b At-most-once application}: a unit's row is applied once, keyed by
    unit identity (corpus name).  The row is journaled ({!Journal})
    {e before} it is applied in memory, so a coordinator SIGKILLed
    mid-corpus resumes from its journal without re-running or
    double-applying units; late duplicate rows (a retried unit whose
    first node answered after all) are counted and dropped.

    The output path reuses {!Res_parallel.Batch} rows, clustering, and
    TSV rendering verbatim — byte-identical merged output is a matter of
    construction, then enforced under kill schedules by the cluster-soak
    campaign. *)

module Io = Res_vm.Coredump_io
module P = Res_serve.Protocol
module Batch = Res_parallel.Batch
module Pool = Res_parallel.Pool

(** One triage unit: the corpus name (unit identity), raw program and
    dump texts, and the workload signature that routes it. *)
type unit_item = {
  ci_name : string;
  ci_prog : string;
  ci_dump : string;
  ci_sig : string;
}

type config = {
  nodes : Transport.addr list;
  window : int;  (** in-flight units per node (match the node's [jobs]) *)
  unit_attempts : int;  (** exchange attempts per unit before worker-lost *)
  node_attempts : int;  (** consecutive failures before a node is dead *)
  connect_timeout : float;
  unit_deadline : float;  (** wall seconds per exchange (accept → row) *)
  deadline_ms : int option;  (** per-unit analysis budget, forwarded *)
  fuel : int option;
  backoff_base : float;
  backoff_cap : float;
  journal_dir : string option;  (** durable at-most-once journal *)
  cache_dir : string option;
      (** content-addressed result cache: units whose exact
          (program, dump, budgets) were triaged by any earlier run are
          applied from disk and never dispatched to a node *)
  verify_rows : bool;
      (** structural verification of every node-returned row: the seal
          and schema were already checked by the codec; this adds
          identity (row names the unit we sent) and sanity (non-empty
          verdict, non-negative work counters).  A failing row is
          byzantine: the node is charged as failed and the unit
          rescheduled. *)
  spot_check : int;
      (** 0 disables; [k > 0] re-analyzes roughly 1/k of the returned
          rows locally (deterministic selection by workload signature)
          and compares the verdict fields — the replay oracle that
          catches a node returning {e plausible} but wrong rows.
          Timed-out rows are exempt (their verdict depends on the
          node's wall clock, not the inputs). *)
  log : string -> unit;
}

let default_config =
  {
    nodes = [];
    window = 2;
    unit_attempts = 8;
    node_attempts = 3;
    connect_timeout = 5.0;
    unit_deadline = 60.0;
    deadline_ms = None;
    fuel = None;
    backoff_base = 0.01;
    backoff_cap = 0.25;
    journal_dir = None;
    cache_dir = None;
    verify_rows = true;
    spot_check = 0;
    log = ignore;
  }

type stats = {
  cs_units : int;
  cs_applied : int;  (** rows applied from live node answers *)
  cs_recovered : int;  (** rows recovered from the journal at boot *)
  cs_lost : int;  (** units degraded to worker-lost rows *)
  cs_retries : int;  (** re-dispatches after any failed exchange *)
  cs_reschedules : int;  (** re-dispatches that moved to another node *)
  cs_node_failures : int;  (** failed exchanges charged to nodes *)
  cs_nodes_dead : int;
  cs_duplicates : int;  (** late rows dropped by at-most-once *)
  cs_cache_hits : int;  (** units applied from the result cache *)
  cs_queries : int;  (** solver queries reported by applied rows *)
  cs_byzantine : int;
      (** rows rejected by verification or the replay spot check *)
}

type t = {
  rows : Batch.row list;  (** sorted by dump name *)
  clusters : (string * string list) list;
  tsv : string;
  stats : stats;
  node_health : (string * string * int * int) list;
      (** (address, up|backoff|dead, completed, failures) *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "units=%d applied=%d recovered=%d lost=%d retries=%d reschedules=%d \
     node_failures=%d nodes_dead=%d duplicates=%d cache_hits=%d queries=%d \
     byzantine=%d"
    s.cs_units s.cs_applied s.cs_recovered s.cs_lost s.cs_retries
    s.cs_reschedules s.cs_node_failures s.cs_nodes_dead s.cs_duplicates
    s.cs_cache_hits s.cs_queries s.cs_byzantine

(** Decode a [Row] reply frame into a renderable batch row. *)
let row_of_frame frame =
  match P.decode_reply frame with
  | Ok
      (P.Row
         { rw_name; rw_outcome; rw_bucket; rw_cause; rw_nodes; rw_pruned;
           rw_queries; _ }) ->
      Some
        ( {
            Batch.row_name = rw_name;
            row_outcome = rw_outcome;
            row_bucket = rw_bucket;
            row_cause = rw_cause;
            row_nodes = rw_nodes;
            row_pruned = rw_pruned;
          },
          rw_queries )
  | _ -> None

(* Frames stored in the result cache are identity-normalized: the unit
   name and elapsed time are per-run noise, not part of the verdict.
   Timed-out and worker-lost rows are what a {e run} managed, not what
   the inputs mean, so they are neither stored nor served. *)

let normalize_frame frame =
  match P.decode_reply frame with
  | Ok
      (P.Row
         {
           rw_name = _;
           rw_outcome;
           rw_timeout;
           rw_elapsed_ms = _;
           rw_bucket;
           rw_cause;
           rw_nodes;
           rw_pruned;
           rw_queries;
         })
    when (not rw_timeout) && not (String.equal rw_bucket "worker-lost") ->
      Some
        (P.encode_reply
           (P.Row
              {
                rw_name = "cached";
                rw_outcome;
                rw_timeout;
                rw_elapsed_ms = 0;
                rw_bucket;
                rw_cause;
                rw_nodes;
                rw_pruned;
                rw_queries;
              }))
  | _ -> None

(** Re-label a cached (normalized) frame with this unit's corpus name so
    the row merges into the output like a node answer. *)
let relabel_frame name body =
  match P.decode_reply body with
  | Ok
      (P.Row
         {
           rw_name = _;
           rw_outcome;
           rw_timeout;
           rw_elapsed_ms;
           rw_bucket;
           rw_cause;
           rw_nodes;
           rw_pruned;
           rw_queries;
         })
    when (not rw_timeout) && not (String.equal rw_bucket "worker-lost") ->
      Some
        (P.encode_reply
           (P.Row
              {
                rw_name = name;
                rw_outcome;
                rw_timeout;
                rw_elapsed_ms;
                rw_bucket;
                rw_cause;
                rw_nodes;
                rw_pruned;
                rw_queries;
              }))
  | _ -> None

(** One open exchange: the connection, which unit it carries, which node
    answers it, and when the coordinator stops waiting. *)
type inflight = {
  if_fd : Unix.file_descr;
  if_unit : int;
  if_node : int;
  if_deadline : float;
  mutable if_accepted : bool;
}

(** Run the corpus to completion.  [extra_rows] are rows the caller
    settled locally (unloadable dumps) that only participate in the
    final merge — exactly as unloadable items do in {!Batch.run}. *)
let run ?(config = default_config) ?(extra_rows = []) items =
  if config.nodes = [] then invalid_arg "Coordinator.run: empty node list";
  let items =
    List.sort (fun a b -> compare a.ci_name b.ci_name) items |> Array.of_list
  in
  let n = Array.length items in
  let reg =
    Registry.create ~attempts:config.node_attempts
      ~backoff_base:config.backoff_base ~backoff_cap:config.backoff_cap
      config.nodes
  in
  let n_nodes = Registry.count reg in
  let journal = Option.map Journal.openr config.journal_dir in
  let cache = Option.map Res_cache.Cache.openr config.cache_dir in
  (* Cache keys are content keys over the raw unit bytes plus the
     budgets this coordinator forwards; the reply codec version makes a
     protocol bump an honest miss.  The unit {e name} is deliberately
     not in the key — identical (program, dump) bytes mean an identical
     verdict, whatever the corpus calls the file. *)
  let cache_cfg =
    Res_cache.Cache.row_config
      ~wall:(Option.map (fun ms -> float_of_int ms /. 1000.) config.deadline_ms)
      ~fuel:config.fuel
      ~engine:(Fmt.str "coord %s" P.rep_header)
  in
  let keys =
    Array.map
      (fun it ->
        match cache with
        | None -> ""
        | Some _ ->
            Res_cache.Cache.key ~prog:it.ci_prog ~dump:it.ci_dump
              ~config:cache_cfg)
      items
  in
  let applied = Array.make n None in
  let lost = Array.make n false in
  let attempts = Array.make n 0 in
  let last_node = Array.make n (-1) in
  let gate = Array.make n 0. in
  let window_used = Array.make n_nodes 0 in
  let pending = Queue.create () in
  let inflight = ref [] in
  let remaining = ref n in
  let n_applied = ref 0 in
  let n_recovered = ref 0 in
  let n_lost = ref 0 in
  let n_retries = ref 0 in
  let n_reschedules = ref 0 in
  let n_node_failures = ref 0 in
  let n_duplicates = ref 0 in
  let n_cache_hits = ref 0 in
  let n_byzantine = ref 0 in
  (* boot: replay the journal — rows applied by any prior incarnation
     are final *)
  (match journal with
  | None -> ()
  | Some j ->
      let by_name = Hashtbl.create 32 in
      List.iter
        (fun (name, frame) -> Hashtbl.replace by_name name frame)
        (Journal.recovered_rows j);
      Array.iteri
        (fun i it ->
          match Hashtbl.find_opt by_name it.ci_name with
          | Some frame -> (
              match row_of_frame frame with
              | Some payload ->
                  applied.(i) <- Some payload;
                  incr n_recovered;
                  decr remaining
              | None -> ())
          | None -> ())
        items;
      if !n_recovered > 0 then
        config.log
          (Fmt.str "recovered %d applied row(s) from journal" !n_recovered));
  (* warm start: units the cache already answers never touch the network.
     Hits are journaled like node answers, so a coordinator killed during
     a warm run recovers them as applied rows. *)
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i it ->
          if applied.(i) = None then
            match Res_cache.Cache.find c keys.(i) with
            | None -> ()
            | Some body -> (
                match relabel_frame it.ci_name body with
                | None -> ()
                | Some frame -> (
                    match row_of_frame frame with
                    | None -> ()
                    | Some payload ->
                        Option.iter
                          (fun j -> Journal.append j ~index:i ~frame)
                          journal;
                        applied.(i) <- Some payload;
                        incr n_cache_hits;
                        decr remaining)))
        items;
      if !n_cache_hits > 0 then
        config.log (Fmt.str "%d unit(s) applied from cache" !n_cache_hits));
  Array.iteri (fun i _ -> if applied.(i) = None then Queue.push i pending) items;
  let now () = Unix.gettimeofday () in
  let route i = Io.fnv1a32 items.(i).ci_sig mod n_nodes in
  (* deterministic failover walk from the signature's primary node *)
  let pick_node u tnow =
    let p = route u in
    let rec go k =
      if k >= n_nodes then None
      else
        let i = (p + k) mod n_nodes in
        if Registry.available reg i ~now:tnow && window_used.(i) < config.window
        then Some i
        else go (k + 1)
    in
    go 0
  in
  let mark_lost u why =
    if not lost.(u) then begin
      lost.(u) <- true;
      incr n_lost;
      decr remaining;
      config.log (Fmt.str "unit %s lost: %s" items.(u).ci_name why)
    end
  in
  let apply u frame =
    match applied.(u) with
    | Some _ -> incr n_duplicates
    | None -> (
        match row_of_frame frame with
        | None -> incr n_duplicates  (* unreachable: caller decoded *)
        | Some payload ->
            (* journal before applying: a kill between the two re-reads
               the row instead of re-running the unit *)
            Option.iter (fun j -> Journal.append j ~index:u ~frame) journal;
            (match cache with
            | Some c when not (String.equal keys.(u) "") -> (
                match normalize_frame frame with
                | Some body -> Res_cache.Cache.store c keys.(u) body
                | None -> ())
            | _ -> ());
            applied.(u) <- Some payload;
            incr n_applied;
            decr remaining)
  in
  (* a failed exchange: charge the unit an attempt and requeue (or give
     up), gated by capped exponential backoff *)
  let unit_failed u why =
    attempts.(u) <- attempts.(u) + 1;
    if attempts.(u) >= config.unit_attempts then
      mark_lost u (Fmt.str "%d attempts exhausted (last: %s)" attempts.(u) why)
    else begin
      incr n_retries;
      gate.(u) <-
        now ()
        +. Pool.backoff_delay ~base:config.backoff_base ~cap:config.backoff_cap
             (attempts.(u) - 1);
      Queue.push u pending;
      config.log
        (Fmt.str "unit %s attempt %d failed (%s); requeued" items.(u).ci_name
           attempts.(u) why)
    end
  in
  let retire f =
    (try Unix.close f.if_fd with Unix.Unix_error _ -> ());
    window_used.(f.if_node) <- window_used.(f.if_node) - 1;
    inflight := List.filter (fun g -> g != f) !inflight
  in
  (* the node itself misbehaved: registry backoff/death plus unit retry *)
  let exchange_failed f why =
    retire f;
    Registry.mark_failure reg f.if_node ~now:(now ());
    incr n_node_failures;
    config.log
      (Fmt.str "node %s failed (%s)"
         (Transport.addr_to_string (Registry.addr reg f.if_node))
         why);
    unit_failed f.if_unit why
  in
  let dispatch_one u tnow =
    if applied.(u) <> None || lost.(u) then ()
    else if Registry.all_dead reg then
      mark_lost u "every node is dead"
    else if gate.(u) > tnow then Queue.push u pending
    else
      match pick_node u tnow with
      | None -> Queue.push u pending
      | Some nd -> (
          if last_node.(u) >= 0 && last_node.(u) <> nd then
            incr n_reschedules;
          last_node.(u) <- nd;
          let addr = Registry.addr reg nd in
          match Transport.connect ~timeout:config.connect_timeout addr with
          | Error e ->
              Registry.mark_failure reg nd ~now:tnow;
              incr n_node_failures;
              unit_failed u (Transport.error_to_string e)
          | Ok fd -> (
              let it = items.(u) in
              let req =
                P.Triage
                  {
                    tg_name = it.ci_name;
                    tg_prog = it.ci_prog;
                    tg_dump = it.ci_dump;
                    tg_deadline_ms = config.deadline_ms;
                    tg_fuel = config.fuel;
                  }
              in
              match Transport.send fd (P.encode_request req) with
              | Error e ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  Registry.mark_failure reg nd ~now:tnow;
                  incr n_node_failures;
                  unit_failed u (Transport.error_to_string e)
              | Ok () ->
                  window_used.(nd) <- window_used.(nd) + 1;
                  inflight :=
                    {
                      if_fd = fd;
                      if_unit = u;
                      if_node = nd;
                      if_deadline = tnow +. config.unit_deadline;
                      if_accepted = false;
                    }
                    :: !inflight))
  in
  (* --- byzantine verification ----------------------------------------- *)
  (* The codec already enforced seal and schema; what is left is whether
     this row is the answer to the unit we actually sent.  [row_verdict]
     checks identity and sanity on every row; the replay spot check is
     the oracle for rows that are well-formed but {e wrong} — re-run the
     unit locally (same fuel, the same default analyze config the nodes
     run) and compare the verdict fields.  Timed-out rows are exempt:
     their verdict reflects the node's wall clock, not the inputs. *)
  let spot_check_due u =
    config.spot_check > 0
    && Io.fnv1a32 items.(u).ci_sig mod config.spot_check = 0
  in
  let replay_verdict u ~rw_outcome ~rw_bucket ~rw_cause ~rw_nodes ~rw_pruned =
    let it = items.(u) in
    match Res_ir.Parser.parse_result it.ci_prog with
    | Error _ -> Ok () (* cannot replay locally: inconclusive, accept *)
    | Ok prog -> (
        match Io.of_string_result it.ci_dump with
        | Error _ -> Ok ()
        | Ok { Io.dump; _ } -> (
            match
              (* fresh symbol ids, as each node worker starts with *)
              Res_solver.Expr.reset_counter_for_tests ();
              let budget =
                Option.map
                  (fun f -> Res_core.Budget.create ~fuel:f ())
                  config.fuel
              in
              Res_usecases.Triage.triage_one ?budget prog dump
            with
            | exception _ -> Ok ()
            | tr ->
                let module T = Res_usecases.Triage in
                if
                  String.equal tr.T.tr_outcome rw_outcome
                  && String.equal tr.T.tr_bucket rw_bucket
                  && String.equal tr.T.tr_cause rw_cause
                  && tr.T.tr_nodes = rw_nodes
                  && tr.T.tr_pruned = rw_pruned
                then Ok ()
                else
                  Error
                    (Fmt.str
                       "replay mismatch: node said %s/%s/%s nodes=%d \
                        pruned=%d; local replay says %s/%s/%s nodes=%d \
                        pruned=%d"
                       rw_outcome rw_bucket rw_cause rw_nodes rw_pruned
                       tr.T.tr_outcome tr.T.tr_bucket tr.T.tr_cause
                       tr.T.tr_nodes tr.T.tr_pruned)))
  in
  let row_verdict u ~rw_name ~rw_outcome ~rw_timeout ~rw_elapsed_ms ~rw_bucket
      ~rw_cause ~rw_nodes ~rw_pruned ~rw_queries =
    if not config.verify_rows then Ok ()
    else if not (String.equal rw_name items.(u).ci_name) then
      Error (Fmt.str "row names unit %S, we sent %S" rw_name items.(u).ci_name)
    else if String.equal rw_outcome "" || String.equal rw_bucket "" then
      Error "empty outcome or bucket"
    else if rw_nodes < 0 || rw_pruned < 0 || rw_queries < 0 || rw_elapsed_ms < 0
    then Error "negative work counters"
    else if (not rw_timeout) && spot_check_due u then
      replay_verdict u ~rw_outcome ~rw_bucket ~rw_cause ~rw_nodes ~rw_pruned
    else Ok ()
  in
  let on_reply f =
    (* the descriptor is readable: a frame should complete promptly; a
       peer that stalls mid-frame is cut off well before the unit
       deadline *)
    match Transport.recv ~timeout:5.0 f.if_fd with
    | Error e -> exchange_failed f (Transport.error_to_string e)
    | Ok frame -> (
        match P.decode_reply frame with
        | Ok (P.Accepted _) -> f.if_accepted <- true
        | Ok (P.Row { rw_bucket = "worker-lost"; rw_cause; _ }) ->
            (* the node's supervision gave up on the unit: the node is
               healthy (it answered), the unit gets retried elsewhere *)
            retire f;
            Registry.mark_success reg f.if_node;
            unit_failed f.if_unit
              (Fmt.str "node supervision gave up: %s" rw_cause)
        | Ok
            (P.Row
               {
                 rw_name;
                 rw_outcome;
                 rw_timeout;
                 rw_elapsed_ms;
                 rw_bucket;
                 rw_cause;
                 rw_nodes;
                 rw_pruned;
                 rw_queries;
               }) -> (
            match
              row_verdict f.if_unit ~rw_name ~rw_outcome ~rw_timeout
                ~rw_elapsed_ms ~rw_bucket ~rw_cause ~rw_nodes ~rw_pruned
                ~rw_queries
            with
            | Error why ->
                (* a lying node is indistinguishable from a corrupt one:
                   charge it like any misbehaving peer (backoff, then the
                   Registry's Dead quarantine) and reschedule the unit *)
                incr n_byzantine;
                exchange_failed f (Fmt.str "byzantine row rejected: %s" why)
            | Ok () ->
                retire f;
                Registry.mark_success reg f.if_node;
                apply f.if_unit frame)
        | Ok (P.Rejected_overload _) ->
            (* backpressure, not failure: back off without charging the
               node *)
            retire f;
            unit_failed f.if_unit "node overloaded"
        | Ok (P.Rejected_breaker { rb_retry_ms; _ }) ->
            retire f;
            let u = f.if_unit in
            unit_failed u "breaker open";
            gate.(u) <-
              Float.max gate.(u)
                (now () +. (float_of_int rb_retry_ms /. 1000.))
        | Ok (P.Rejected_draining) ->
            (* the node is shutting down: treat as node loss so routing
               moves on *)
            exchange_failed f "node draining"
        | Ok (P.Err m) ->
            retire f;
            unit_failed f.if_unit (Fmt.str "node error: %s" m)
        | Ok _ -> exchange_failed f "unexpected reply"
        | Error m -> exchange_failed f (Fmt.str "undecodable reply: %s" m))
  in
  let sweep_deadlines tnow =
    List.iter
      (fun f ->
        if tnow > f.if_deadline then
          exchange_failed f
            (Fmt.str "unit deadline exceeded (%.1fs)" config.unit_deadline))
      !inflight
  in
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Unix.close f.if_fd with Unix.Unix_error _ -> ())
        !inflight;
      Sys.set_signal Sys.sigpipe prev_sigpipe)
    (fun () ->
      while !remaining > 0 do
        let tnow = now () in
        let budget = Queue.length pending in
        for _ = 1 to budget do
          if not (Queue.is_empty pending) then
            dispatch_one (Queue.pop pending) tnow
        done;
        if !remaining > 0 then begin
          let tnow = now () in
          (* wake for the earliest timer: an exchange deadline, a unit's
             backoff gate, or a node's backoff gate *)
          let earliest =
            let e =
              List.fold_left
                (fun acc f -> min acc f.if_deadline)
                (tnow +. 0.1) !inflight
            in
            let e =
              Queue.fold
                (fun acc u -> if gate.(u) > tnow then min acc gate.(u) else acc)
                e pending
            in
            match Registry.next_gate reg with Some g -> min e g | None -> e
          in
          let timeout = Float.max 0.005 (earliest -. tnow) in
          let fds = List.map (fun f -> f.if_fd) !inflight in
          let ready, _, _ =
            try Unix.select fds [] [] timeout
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun f -> if List.mem f.if_fd ready then on_reply f)
            !inflight;
          sweep_deadlines (now ())
        end
      done);
  let unit_rows =
    List.init n (fun i ->
        match applied.(i) with
        | Some (row, _) -> row
        | None ->
            {
              Batch.row_name = items.(i).ci_name;
              row_outcome = "failed";
              row_bucket = "worker-lost";
              row_cause = "";
              row_nodes = 0;
              row_pruned = 0;
            })
  in
  let rows =
    List.sort
      (fun (a : Batch.row) b -> compare a.Batch.row_name b.Batch.row_name)
      (unit_rows @ extra_rows)
  in
  let clusters =
    Res_usecases.Triage.bucket ~key:(fun r -> r.Batch.row_bucket) rows
    |> List.map (fun (k, rs) ->
           (k, List.map (fun r -> r.Batch.row_name) rs))
  in
  let queries =
    Array.fold_left
      (fun acc -> function Some (_, q) -> acc + q | None -> acc)
      0 applied
  in
  {
    rows;
    clusters;
    tsv = Batch.render rows clusters;
    stats =
      {
        cs_units = n;
        cs_applied = !n_applied;
        cs_recovered = !n_recovered;
        cs_lost = !n_lost;
        cs_retries = !n_retries;
        cs_reschedules = !n_reschedules;
        cs_node_failures = !n_node_failures;
        cs_nodes_dead = Registry.dead_count reg;
        cs_duplicates = !n_duplicates;
        cs_cache_hits = !n_cache_hits;
        cs_queries = queries;
        cs_byzantine = !n_byzantine;
      };
    node_health = Registry.report reg;
  }

(** Every unit degraded to a failed row — the all-nodes-down shape an
    orchestrator gates on, mirroring {!Batch.all_failed}. *)
let all_failed t =
  t.rows <> []
  && List.for_all (fun r -> String.equal r.Batch.row_outcome "failed") t.rows
