(** Node health registry: the coordinator's view of which nodes are
    worth talking to.

    Health is inferred purely from exchange outcomes — there is no
    heartbeat protocol to get wrong.  Consecutive failures gate a node
    behind {!Res_parallel.Pool.backoff_delay}-style capped exponential
    backoff ([Backing_off]); [attempts] consecutive failures declare it
    [Dead] for the rest of the run (a corpus run is finite — a node that
    came back would be picked up by the next run).  Any success snaps the
    node back to [Up] and resets its failure streak.

    Mirrors the per-workload circuit breaker on the node side: breakers
    protect a node from poisonous workloads, the registry protects the
    coordinator from poisonous nodes. *)

module Pool = Res_parallel.Pool

type state = Up | Backing_off | Dead

let state_name = function
  | Up -> "up"
  | Backing_off -> "backoff"
  | Dead -> "dead"

type node = {
  nd_addr : Transport.addr;
  mutable nd_state : state;
  mutable nd_streak : int;  (** consecutive failures *)
  mutable nd_failures : int;  (** total failed exchanges *)
  mutable nd_completed : int;  (** units this node answered *)
  mutable nd_not_before : float;  (** backoff gate for the next dispatch *)
}

type t = {
  nodes : node array;
  attempts : int;  (** consecutive failures before [Dead] *)
  base : float;
  cap : float;
}

let create ?(attempts = 3) ?(backoff_base = Pool.default_backoff_base)
    ?(backoff_cap = Pool.default_backoff_cap) addrs =
  {
    nodes =
      Array.of_list
        (List.map
           (fun a ->
             {
               nd_addr = a;
               nd_state = Up;
               nd_streak = 0;
               nd_failures = 0;
               nd_completed = 0;
               nd_not_before = 0.;
             })
           addrs);
    attempts = max 1 attempts;
    base = backoff_base;
    cap = backoff_cap;
  }

let count t = Array.length t.nodes
let node t i = t.nodes.(i)
let addr t i = t.nodes.(i).nd_addr

let mark_failure t i ~now =
  let n = t.nodes.(i) in
  n.nd_streak <- n.nd_streak + 1;
  n.nd_failures <- n.nd_failures + 1;
  if n.nd_streak >= t.attempts then n.nd_state <- Dead
  else begin
    n.nd_state <- Backing_off;
    n.nd_not_before <-
      now +. Pool.backoff_delay ~base:t.base ~cap:t.cap (n.nd_streak - 1)
  end

let mark_success t i =
  let n = t.nodes.(i) in
  n.nd_state <- Up;
  n.nd_streak <- 0;
  n.nd_completed <- n.nd_completed + 1

(** May the coordinator try this node now?  A backing-off node becomes
    eligible again once its gate passes (its state flips back to [Up]
    only on success). *)
let available t i ~now =
  let n = t.nodes.(i) in
  n.nd_state <> Dead && n.nd_not_before <= now

let all_dead t = Array.for_all (fun n -> n.nd_state = Dead) t.nodes

let dead_count t =
  Array.fold_left (fun acc n -> if n.nd_state = Dead then acc + 1 else acc) 0 t.nodes

(** The earliest backoff gate among live, gated nodes — what the
    dispatch loop sleeps toward when every live node is backing off. *)
let next_gate t =
  Array.fold_left
    (fun acc n ->
      if n.nd_state = Backing_off then
        Some (match acc with Some g -> min g n.nd_not_before | None -> n.nd_not_before)
      else acc)
    None t.nodes

(** Per-node health for status reporting: address, state name, units
    completed, failed exchanges. *)
let report t =
  Array.to_list t.nodes
  |> List.map (fun n ->
         (Transport.addr_to_string n.nd_addr, state_name n.nd_state,
          n.nd_completed, n.nd_failures))

let pp_report ppf t =
  List.iter
    (fun (addr, state, ok, failed) ->
      Fmt.pf ppf "node %-21s %-7s completed=%d failures=%d@," addr state ok
        failed)
    (report t)
