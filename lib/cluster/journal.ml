(** The coordinator's durable result journal: crash-only, like the node
    spool, but keyed by {e unit identity} (the dump's corpus name)
    rather than by request id — a restarted coordinator re-derives the
    corpus deterministically and must recognize which units are already
    answered, whichever incarnation answered them.

    One file per applied unit, [u<index>.row], holding the node's [Row]
    reply frame verbatim (the same "journal the wire format" trick as
    the spool: recovery needs no third format).  Files are written with
    {!Res_vm.Coredump_io.write_file_atomic} {e before} the row is
    applied in memory, so at-most-once application survives a SIGKILL
    between the two: the reborn coordinator reads the row back instead
    of re-running the unit.  A [.tmp] journal left by a killed writer is
    promoted if its seal validates, deleted otherwise. *)

module Io = Res_vm.Coredump_io
module P = Res_serve.Protocol

type t = { dir : string }

let path t index = Filename.concat t.dir (Fmt.str "u%04d.row" index)

let valid src = Res_core.Sealing.valid ~header:P.rep_header src

(** Open (and recover) a journal directory, creating it durably (parent
    fsynced via the I/O shim) if needed. *)
let openr dir =
  Res_core.Ioshim.mkdir_durable dir;
  Res_persist.Checkpoint.recover_dir dir ~valid_for:(fun _ -> valid);
  { dir }

(** Durably record a unit's applied [Row] frame.  Once this returns, a
    coordinator crash cannot lose or re-run the unit. *)
let append t ~index ~frame =
  Res_core.Ioshim.write_file_atomic (path t index) frame

(** How many units have journaled rows (what soak harnesses poll to time
    their kills). *)
let count dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun acc e -> if Filename.check_suffix e ".row" then acc + 1 else acc)
        0 entries

(** Every journaled row as [(unit name, Row frame)].  Rows that no
    longer decode (on-disk damage beyond the seal) are skipped — the
    unit will simply be re-run, which is always safe. *)
let recovered_rows t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun e -> Filename.check_suffix e ".row")
      |> List.sort compare
      |> List.filter_map (fun e ->
             match Res_core.Ioshim.read_file (Filename.concat t.dir e) with
             | Error _ -> None
             | Ok frame -> (
                 match P.decode_reply frame with
                 | Ok (P.Row { rw_name; _ }) -> Some (rw_name, frame)
                 | _ -> None))
