(** TCP transport for the triage cluster.

    The coordinator talks to node daemons with the same length-prefixed
    sealed frames the worker pool and the single-node daemon use
    ({!Res_parallel.Wire}); this module adds what a network hop demands
    and a same-host pipe never did:

    - {b connect deadlines}: a node that is partitioned away must not
      wedge the coordinator in [connect] — the connect is non-blocking
      and guarded by [select];
    - {b read deadlines}: frames are read in chunks with a [select]
      before every chunk, so a peer that stalls mid-frame (the injected
      partition of the cluster-soak campaign) surfaces as a typed
      [Timeout], never a hang;
    - {b typed failures}: refused, timed out, closed, and damaged are
      distinct — the coordinator's reschedule policy reacts differently
      to each ({!Registry} backoff vs. immediate failover).

    Oversized or corrupt length prefixes are rejected before any
    allocation (shared {!Res_parallel.Wire.max_frame_bytes} limit). *)

module Wire = Res_parallel.Wire

(** A node address: host (name or dotted quad) and TCP port. *)
type addr = { host : string; port : int }

let pp_addr ppf a = Fmt.pf ppf "%s:%d" a.host a.port
let addr_to_string a = Fmt.str "%s:%d" a.host a.port

(** Parse ["host:port"]. *)
let parse_addr s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port > 0 && port < 65536 -> Ok { host; port }
      | _ -> Error (Fmt.str "bad port in node address %S" s))
  | _ -> Error (Fmt.str "node address %S is not host:port" s)

(** Why an exchange with a node failed. *)
type error =
  | Refused of string  (** connect failed: the node is down *)
  | Timeout of float  (** connect or read deadline exceeded *)
  | Closed  (** the node hung up (EOF, EPIPE, reset) *)
  | Damaged of string  (** a frame arrived but is torn or oversized *)

let error_to_string = function
  | Refused m -> Fmt.str "connection refused: %s" m
  | Timeout s -> Fmt.str "deadline exceeded (%.1fs)" s
  | Closed -> "connection closed by node"
  | Damaged m -> Fmt.str "damaged frame: %s" m

let resolve host =
  try Ok (Unix.inet_addr_of_string host)
  with Failure _ -> (
    try Ok (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      Error (Refused (Fmt.str "cannot resolve %S" host)))

(** Deadline-guarded connect: non-blocking [connect], [select] for
    writability, then [SO_ERROR] to classify the outcome. *)
let connect ?(timeout = 5.0) addr =
  match resolve addr.host with
  | Error e -> Error e
  | Ok ip -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let give_up e =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error e
      in
      Unix.set_nonblock fd;
      match Unix.connect fd (Unix.ADDR_INET (ip, addr.port)) with
      | () ->
          Unix.clear_nonblock fd;
          Ok fd
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
          match Unix.select [] [ fd ] [] timeout with
          | _, [], _ -> give_up (Timeout timeout)
          | _ -> (
              match Unix.getsockopt_error fd with
              | Some e -> give_up (Refused (Unix.error_message e))
              | None ->
                  Unix.clear_nonblock fd;
                  Ok fd)
          | exception Unix.Unix_error (e, _, _) ->
              give_up (Refused (Unix.error_message e)))
      | exception Unix.Unix_error (e, _, _) ->
          give_up (Refused (Unix.error_message e)))

(** Send one frame; a peer that vanished surfaces as [Closed]. *)
let send fd frame =
  try Ok (Wire.write_frame fd frame)
  with Unix.Unix_error _ | Sys_error _ -> Error Closed

(* Read exactly [n] bytes before [deadline] (absolute), selecting before
   every chunk so a stalled peer cannot wedge the caller mid-frame. *)
let read_exact_deadline fd b ~deadline =
  let n = Bytes.length b in
  let rec go off =
    if off = n then Ok ()
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then Error `Deadline
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> Error `Deadline
        | _ -> (
            match Unix.read fd b off (n - off) with
            | 0 -> Error (`Eof off)
            | k -> go (off + k)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
            | exception Unix.Unix_error (e, _, _) ->
                Error (`Err (Unix.error_message e)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (e, _, _) ->
            Error (`Err (Unix.error_message e))
  in
  go 0

(** Receive one frame within [timeout] seconds, classifying every
    failure: EOF at a frame boundary is [Closed]; a torn header or
    payload, a corrupt length prefix, and an oversized announcement are
    [Damaged]; a stall is [Timeout]. *)
let recv ?(timeout = 30.0) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let hdr = Bytes.create 10 in
  match read_exact_deadline fd hdr ~deadline with
  | Error `Deadline -> Error (Timeout timeout)
  | Error (`Eof 0) -> Error Closed
  | Error (`Eof k) -> Error (Damaged (Fmt.str "torn header (%d/10 bytes)" k))
  | Error (`Err m) -> Error (Damaged m)
  | Ok () -> (
      match int_of_string_opt (Bytes.to_string hdr) with
      | None ->
          Error (Damaged (Fmt.str "bad length prefix %S" (Bytes.to_string hdr)))
      | Some len when len < 0 ->
          Error (Damaged (Fmt.str "negative length prefix %d" len))
      | Some len when len > Wire.max_frame_bytes ->
          Error (Damaged (Fmt.str "oversized frame (%d bytes)" len))
      | Some len -> (
          let body = Bytes.create len in
          match read_exact_deadline fd body ~deadline with
          | Error `Deadline -> Error (Timeout timeout)
          | Error (`Eof k) ->
              Error (Damaged (Fmt.str "torn payload (%d/%d bytes)" k len))
          | Error (`Err m) -> Error (Damaged m)
          | Ok () -> Ok (Bytes.to_string body)))

(** Bind-and-listen on an ephemeral localhost port; returns the listening
    socket and the port the kernel chose.  Test harnesses bind before
    forking the node so there is no port race and no polling for
    readiness files. *)
let listen_ephemeral ?(host = "127.0.0.1") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, 0));
  Unix.listen fd 64;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> (fd, port)
  | _ -> assert false

(** One request/reply exchange on a fresh connection. *)
let roundtrip ?(timeout = 5.0) addr frame =
  match connect ~timeout addr with
  | Error e -> Error e
  | Ok fd ->
      let r =
        match send fd frame with
        | Error e -> Error e
        | Ok () -> recv ~timeout fd
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

(** Is a node daemon answering [Ping] at this address? *)
let ping ?(timeout = 1.0) addr =
  let module P = Res_serve.Protocol in
  match roundtrip ~timeout addr (P.encode_request P.Ping) with
  | Ok frame -> (
      match P.decode_reply frame with Ok (P.Pong _) -> true | _ -> false)
  | Error _ -> false
