(** Debugger command language: AST and line parser.

    One textual line maps to one command; the same parser serves the
    interactive REPL and script mode, so every interactive session is
    replayable as a script.  Blank lines and [#] comments parse to
    {!Nop}. *)

type t =
  | Step of int  (** [step [n]] — forward n instructions (default 1) *)
  | Step_back of int  (** [step-back [n]] *)
  | Continue  (** to the next breakpoint/watchpoint hit, or the crash *)
  | Continue_back  (** to the previous hit, or step 0 *)
  | Break of Res_ir.Pc.t  (** [break func:block:idx] *)
  | Delete of int  (** [delete <breakpoint id>] *)
  | Breaks  (** list breakpoints *)
  | Watch of Predicate.expr * string  (** expression + its source text *)
  | Unwatch of int
  | Watches
  | Twatch of Predicate.expr * string
      (** transition watchpoint: binary-search the timeline *)
  | Print of Predicate.expr * string
  | Mem of Predicate.expr * int  (** [mem <addr> [count]] *)
  | Regs of int option  (** [regs [tid]]; default: focused thread *)
  | Threads
  | List of int  (** [list [n]] — n steps of context around the position *)
  | Where
  | Goto of int
  | Thread of int  (** switch focus *)
  | Assert of Predicate.expr * string
  | Help
  | Quit
  | Nop  (** blank line or comment *)

let help_text =
  String.concat "\n"
    [
      "commands:";
      "  step [n] | s          execute n instructions (default 1)";
      "  step-back [n] | sb    un-execute n instructions";
      "  continue | c          run forward to breakpoint/watchpoint/crash";
      "  continue-back | cb    run backward to breakpoint/watchpoint/step 0";
      "  break f:b:i | b       breakpoint at pc func:block:idx";
      "  delete <id>           remove breakpoint <id>";
      "  breaks                list breakpoints";
      "  watch <expr>          stop when <expr> changes (both directions)";
      "  unwatch <id>          remove watchpoint <id>";
      "  watches               list watchpoints";
      "  twatch <expr>         binary-search for the step where <expr> flips";
      "  print <expr> | p      evaluate <expr> at the current position";
      "  mem <expr> [n]        dump n memory words at address <expr>";
      "  regs [tid]            registers of a thread (default: focus)";
      "  threads               thread table";
      "  list [n]              trace around the current position";
      "  where | w             current position";
      "  goto <step>           jump to an absolute position";
      "  thread <tid>          switch register/expression focus";
      "  assert <expr>         record pass/fail; failures set exit code 2";
      "  help                  this text";
      "  quit | q              end the session";
      "expressions: ints, 0x.., r<N>, t<T>:r<N>, [addr], &global,";
      "  + - * / %, == != < <= > >=, && ||, parentheses";
    ]

(* --- parsing ---------------------------------------------------------- *)

let parse_pc s =
  match String.split_on_char ':' s with
  | [ func; block; idx ] -> (
      match int_of_string_opt idx with
      | Some idx when func <> "" && block <> "" ->
          Ok (Res_ir.Pc.v ~func ~block ~idx)
      | _ -> Error (Fmt.str "bad pc %S: index must be an integer" s))
  | _ -> Error (Fmt.str "bad pc %S: expected func:block:idx" s)

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Fmt.str "bad %s %S: expected an integer" what s)

let parse_count dflt = function
  | [] -> Ok dflt
  | [ s ] -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | _ -> Error (Fmt.str "bad count %S: expected a positive integer" s))
  | _ -> Error "too many arguments"

let parse_expr what src =
  match Predicate.parse src with
  | Ok e -> Ok (e, src)
  | Error msg -> Error (Fmt.str "bad %s: %s" what msg)

(** Parse one command line.  [Error] carries the message the session
    prints — stable text, part of the deterministic transcript. *)
let parse line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok Nop
  else
    let words =
      String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
    in
    let rest_src prefix =
      (* everything after the verb, original spacing collapsed *)
      String.concat " " prefix
    in
    match words with
    | [] -> Ok Nop
    | verb :: args -> (
        let open_expr what k =
          if args = [] then Error (Fmt.str "%s needs an expression" verb)
          else Result.map k (parse_expr what (rest_src args))
        in
        match (verb, args) with
        | ("step" | "s"), rest ->
            Result.map (fun n -> Step n) (parse_count 1 rest)
        | ("step-back" | "sb"), rest ->
            Result.map (fun n -> Step_back n) (parse_count 1 rest)
        | ("continue" | "c"), [] -> Ok Continue
        | ("continue-back" | "cb" | "rc"), [] -> Ok Continue_back
        | ("break" | "b"), [ pc ] ->
            Result.map (fun pc -> Break pc) (parse_pc pc)
        | "delete", [ id ] ->
            Result.map (fun n -> Delete n) (parse_int "breakpoint id" id)
        | "breaks", [] -> Ok Breaks
        | "watch", _ -> open_expr "watch expression" (fun (e, s) -> Watch (e, s))
        | "unwatch", [ id ] ->
            Result.map (fun n -> Unwatch n) (parse_int "watchpoint id" id)
        | "watches", [] -> Ok Watches
        | "twatch", _ ->
            open_expr "twatch expression" (fun (e, s) -> Twatch (e, s))
        | ("print" | "p"), _ ->
            open_expr "print expression" (fun (e, s) -> Print (e, s))
        | "mem", addr :: rest ->
            Result.bind (parse_expr "address" addr) (fun (e, _) ->
                Result.map (fun n -> Mem (e, n)) (parse_count 1 rest))
        | "regs", [] -> Ok (Regs None)
        | "regs", [ tid ] ->
            Result.map (fun t -> Regs (Some t)) (parse_int "tid" tid)
        | "threads", [] -> Ok Threads
        | "list", rest -> Result.map (fun n -> List n) (parse_count 4 rest)
        | ("where" | "w"), [] -> Ok Where
        | "goto", [ n ] -> Result.map (fun n -> Goto n) (parse_int "step" n)
        | "thread", [ tid ] ->
            Result.map (fun t -> Thread t) (parse_int "tid" tid)
        | "assert", _ ->
            open_expr "assert expression" (fun (e, s) -> Assert (e, s))
        | "help", [] -> Ok Help
        | ("quit" | "q"), [] -> Ok Quit
        | _ ->
            Error
              (Fmt.str "unknown command %S (try 'help')"
                 (String.concat " " words)))
