(** Session-level snapshot index: seek, sweep, and transition search.

    A thin policy layer over {!Res_core.Replay.Index} — the generic
    snapshot machinery lives in [lib/core] (the batch {!Res_core.Debugger}
    uses it too); this wrapper owns one stepper, counts the replay work a
    debugging session causes, and implements the two access patterns the
    session engine needs beyond point seeks: ordered forward sweeps (for
    [continue]/[continue-back]) and binary search over the timeline for a
    predicate transition (FReD / Transition-Watchpoints style). *)

type t = {
  sp : Res_core.Replay.stepper;
  ix : Res_core.Replay.Index.t;
  mutable probes : int;  (** state evaluations made by transition searches *)
}

(** Build the index with one forward replay of the suffix.
    [interval = 0] disables snapshotting: every seek replays from step 0
    through the very same code path, which is the [--no-snapshot-index]
    baseline. *)
let create ?(interval = 64) ctx suffix =
  let sp = Res_core.Replay.make_stepper ctx suffix in
  let ix = Res_core.Replay.Index.build ~interval sp in
  { sp; ix; probes = 0 }

(** Completed instruction steps in the suffix — positions are [0..length]. *)
let length t = Res_core.Replay.Index.length t.ix

let interval t = Res_core.Replay.Index.interval t.ix

(** The machine state after [n] completed steps.  The returned state is
    the shared replay cursor — read what you need before the next query. *)
let state_at t n = Res_core.Replay.Index.seek t.ix t.sp n

(** Evaluate [f] on every position in [lo..hi] (inclusive), ascending.
    Seeking an ascending sequence never restores a snapshot after the
    first position, so a sweep costs one pass of re-execution regardless
    of the snapshot interval. *)
let sweep t ~lo ~hi f =
  for n = lo to hi do
    f n (state_at t n)
  done

(** Replay-work counters: [(restores, replayed_steps, probes)]. *)
let stats t =
  ( t.ix.Res_core.Replay.Index.ix_restores,
    t.ix.Res_core.Replay.Index.ix_replayed,
    t.probes )

(** What a transition search found. *)
type transition = {
  tr_pos : int;  (** first position whose value differs from position 0 *)
  tr_before : int;  (** value at [tr_pos - 1] (= value at position 0) *)
  tr_after : int;  (** value at [tr_pos] *)
  tr_probes : int;  (** state evaluations the search made *)
}

(** Binary search the timeline for a position where [eval] flips.

    Evaluates the endpoints; when they agree, reports [None] (no
    transition observable from the endpoints — the FReD precondition).
    Otherwise maintains [eval lo = v0 <> eval hi] and bisects to an
    adjacent pair, returning the higher position: the step executed at
    [tr_pos - 1] changed the value.  O(log n) probes, each O(snapshot
    interval) of replay — and the probe sequence depends only on the
    timeline length and the probed values, never on the interval, so
    transcripts that print probe counts stay byte-identical across
    intervals.  Exceptions from [eval] propagate. *)
let find_transition t eval =
  let probe n =
    t.probes <- t.probes + 1;
    eval (state_at t n)
  in
  let n = length t in
  let v0 = probe 0 in
  let vn = if n = 0 then v0 else probe n in
  if n = 0 || v0 = vn then None
  else begin
    let lo = ref 0 and hi = ref n and vhi = ref vn and probes = ref 2 in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      incr probes;
      let v = probe mid in
      if v = v0 then lo := mid
      else begin
        hi := mid;
        vhi := v
      end
    done;
    Some { tr_pos = !hi; tr_before = v0; tr_after = !vhi; tr_probes = !probes }
  end
