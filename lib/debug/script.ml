(** Drivers for a {!Session}: script mode and a stdin REPL.

    Script mode is the CI surface: each command line is echoed as
    ["> <line>"] followed by its output, so a transcript is a complete,
    diffable record of the session — and byte-identical across snapshot
    intervals, which the debug-equivalence campaign enforces.  The exit
    status encodes the result: 0 all asserts passed, 2 an assert failed,
    1 a command errored (parse failure, bad id, unknown global). *)

type result = {
  transcript : string;
  exit_code : int;  (** 0 ok · 1 command error · 2 assertion failure *)
}

let code_of ~errors session =
  if errors > 0 then 1
  else if Session.assert_failures session > 0 then 2
  else 0

(** Run [lines] through [session], echoing each command. *)
let run_lines session lines =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let errors = ref 0 in
  (try
     List.iter
       (fun line ->
         Fmt.pf ppf "> %s@." line;
         match Session.exec_line session ppf line with
         | `Ok -> ()
         | `Err -> incr errors
         | `Quit -> raise Exit)
       lines
   with Exit -> ());
  Format.pp_print_flush ppf ();
  { transcript = Buffer.contents buf; exit_code = code_of ~errors:!errors session }

(** Script mode: newline-separated commands from a file's contents. *)
let run_script session contents =
  run_lines session (String.split_on_char '\n' contents)

(** Interactive REPL over stdin/stdout (no readline, no echo — the
    terminal echoes).  Returns the script-mode exit code so interactive
    sessions can also gate. *)
let repl session =
  let ppf = Format.std_formatter in
  Fmt.pf ppf "res debug: %d steps, type 'help' for commands@."
    (Session.length session);
  let errors = ref 0 in
  let rec loop () =
    print_string "(res-dbg) ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        match Session.exec_line session ppf line with
        | `Ok -> loop ()
        | `Err ->
            incr errors;
            loop ()
        | `Quit -> ())
  in
  loop ();
  Format.pp_print_flush ppf ();
  code_of ~errors:!errors session
