(** Drivers for a {!Session}: script mode and a stdin REPL.

    Script mode is the CI surface: each command line is echoed as
    ["> <line>"] followed by its output, so a transcript is a complete,
    diffable record of the session — and byte-identical across snapshot
    intervals, which the debug-equivalence campaign enforces.  The exit
    status encodes the result: 0 all asserts passed, 2 an assert failed,
    1 a command errored (parse failure, bad id, unknown global).

    Both drivers treat their input as hostile: an oversized line, a
    line with embedded NUL or other non-UTF8 bytes, or an exception
    escaping command execution are all reported as command errors
    (exit 1), never as an uncaught exception — the contract the fuzzer
    enforces over every parser in the system. *)

type result = {
  transcript : string;
  exit_code : int;  (** 0 ok · 1 command error · 2 assertion failure *)
}

(** Longest command line either driver will hand to the parser.  Real
    sessions are tens of characters; anything near this bound is a
    hostile or corrupted script, rejected with a typed error before any
    tokenizer sees it. *)
let max_line_bytes = 4096

let code_of ~errors session =
  if errors > 0 then 1
  else if Session.assert_failures session > 0 then 2
  else 0

(* Reject a line the parsers should never see (too long, embedded NUL);
   [None] means acceptable.  NUL is the one byte that can smuggle a
   truncated view past every downstream consumer, so it is rejected at
   the boundary; other non-ASCII bytes fall through to the tokenizers,
   which reject them with their own typed errors. *)
let line_error line =
  if String.length line > max_line_bytes then
    Some
      (Fmt.str "line too long (%d bytes, limit %d)" (String.length line)
         max_line_bytes)
  else if String.contains line '\000' then Some "line contains a NUL byte"
  else None

(* One guarded dispatch: anything escaping [Session.exec_line] — which
   should already be total — is downgraded to [`Err] so a driver can
   never die with an uncaught exception on hostile input. *)
let exec_guarded session ppf line =
  match line_error line with
  | Some msg ->
      Fmt.pf ppf "error: %s@." msg;
      `Err
  | None -> (
      try Session.exec_line session ppf line with
      | Stack_overflow ->
          Fmt.pf ppf "error: command exhausted the stack@." ;
          `Err
      | exn ->
          Fmt.pf ppf "error: internal: %s@." (Printexc.to_string exn);
          `Err)

(** Run [lines] through [session], echoing each command. *)
let run_lines session lines =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let errors = ref 0 in
  (try
     List.iter
       (fun line ->
         Fmt.pf ppf "> %s@." line;
         match exec_guarded session ppf line with
         | `Ok -> ()
         | `Err -> incr errors
         | `Quit -> raise Exit)
       lines
   with Exit -> ());
  Format.pp_print_flush ppf ();
  { transcript = Buffer.contents buf; exit_code = code_of ~errors:!errors session }

(** Script mode: newline-separated commands from a file's contents. *)
let run_script session contents =
  run_lines session (String.split_on_char '\n' contents)

(** Interactive REPL over stdin/stdout (no readline, no echo — the
    terminal echoes).  Returns the script-mode exit code so interactive
    sessions can also gate.  EOF mid-line is a clean quit; an I/O error
    reading stdin counts as a command error rather than an exception. *)
let repl session =
  let ppf = Format.std_formatter in
  Fmt.pf ppf "res debug: %d steps, type 'help' for commands@."
    (Session.length session);
  let errors = ref 0 in
  let rec loop () =
    print_string "(res-dbg) ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> ()
    | exception Sys_error msg ->
        incr errors;
        Fmt.pf ppf "error: stdin: %s@." msg
    | line -> (
        match exec_guarded session ppf line with
        | `Ok -> loop ()
        | `Err ->
            incr errors;
            loop ()
        | `Quit -> ())
  in
  loop ();
  Format.pp_print_flush ppf ();
  code_of ~errors:!errors session
