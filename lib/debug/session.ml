(** Interactive time-travel session over one verified suffix.

    The engine is a pure command evaluator: it holds the session state
    (position on the timeline, focused thread, breakpoints, watchpoints)
    and renders every command's result to a formatter — no TTY anywhere,
    so a session transcript is a deterministic function of the suffix and
    the command sequence.  The REPL and script runner are thin drivers
    ({!Script}).

    Positions are {e completed instruction steps}: position [p] means "the
    first [p] instructions of the suffix have executed", [p = 0] is the
    synthesized suffix start, [p = N] is the crash point (the faulting
    instruction never completes).  Trace events are grouped by the step
    that emitted them; a step with no event is a scheduling attempt that
    blocked a thread, and the final [ret] of a thread emits two. *)

module IMap = Map.Make (Int)

type breakpoint = { bp_id : int; bp_pc : Res_ir.Pc.t }

type watchpoint = {
  wp_id : int;
  wp_expr : Predicate.expr;
  wp_src : string;
}

type t = {
  index : Snapindex.t;
  trace : Res_vm.Event.t array;
  by_step : Res_vm.Event.t list array;  (** events grouped by step, len N *)
  crash : Res_vm.Crash.t;
  layout : Res_mem.Layout.t;
  mutable pos : int;  (** current position, [0..N] *)
  mutable focus : int;  (** thread for [r<N>] and [regs] *)
  mutable breakpoints : breakpoint list;  (** newest first *)
  mutable next_bp : int;
  mutable watchpoints : watchpoint list;  (** newest first *)
  mutable next_wp : int;
  mutable asserts_failed : int;
  mutable asserts_run : int;
}

(** Open a session: verify the suffix reproduces the dump (exactly as the
    batch {!Res_core.Debugger} does), then build the snapshot index with
    one forward replay.  [interval = 0] disables the index. *)
let create ?(interval = 64) ctx suffix dump =
  let verdict = Res_core.Replay.replay ctx suffix dump in
  if not verdict.Res_core.Replay.reproduced then
    Error "suffix does not reproduce the coredump"
  else begin
    let index = Snapindex.create ~interval ctx suffix in
    let trace = Array.of_list verdict.Res_core.Replay.trace in
    let n = Snapindex.length index in
    let by_step = Array.make n [] in
    Array.iter
      (fun (e : Res_vm.Event.t) ->
        by_step.(e.Res_vm.Event.step) <-
          by_step.(e.Res_vm.Event.step) @ [ e ])
      trace;
    let crash = dump.Res_vm.Coredump.crash in
    Ok
      {
        index;
        trace;
        by_step;
        crash;
        layout = ctx.Res_core.Backstep.layout;
        pos = 0;
        focus = crash.Res_vm.Crash.tid;
        breakpoints = [];
        next_bp = 1;
        watchpoints = [];
        next_wp = 1;
        asserts_failed = 0;
        asserts_run = 0;
      }
  end

let length t = Snapindex.length t.index
let position t = t.pos
let assert_failures t = t.asserts_failed
let stats t = Snapindex.stats t.index

(* --- evaluation helpers ------------------------------------------------ *)

let state_at t p = Snapindex.state_at t.index p

let eval_at t p e =
  Predicate.eval ~layout:t.layout ~focus:t.focus (state_at t p) e

(** Whether position [p] sits at a breakpoint: the instruction about to
    execute there (= the events step [p] emits) matches a breakpoint pc.
    Position [N] matches on the faulting pc. *)
let at_breakpoint t p =
  let pcs =
    if p < length t then
      List.map (fun (e : Res_vm.Event.t) -> e.Res_vm.Event.pc) t.by_step.(p)
    else [ t.crash.Res_vm.Crash.pc ]
  in
  List.find_opt
    (fun bp -> List.exists (Res_ir.Pc.equal bp.bp_pc) pcs)
    t.breakpoints

(* --- rendering --------------------------------------------------------- *)

let pp_position ppf (t, p) =
  if p < Array.length t.by_step then
    match t.by_step.(p) with
    | e :: _ ->
        Fmt.pf ppf "step %d/%d: t%d %a: %a" p (length t) e.Res_vm.Event.tid
          Res_ir.Pc.pp e.Res_vm.Event.pc Res_vm.Event.pp_action
          e.Res_vm.Event.action
    | [] ->
        Fmt.pf ppf "step %d/%d: (scheduling attempt, thread blocked)" p
          (length t)
  else
    Fmt.pf ppf "step %d/%d: CRASH %a" p (length t) Res_vm.Crash.pp t.crash

let print_where t ppf = Fmt.pf ppf "%a@." pp_position (t, t.pos)

let describe_addr t addr =
  match Res_mem.Layout.find_global t.layout addr with
  | Some (base, _, name) when base = addr -> Fmt.str " (&%s)" name
  | Some (base, _, name) -> Fmt.str " (&%s+%d)" name (addr - base)
  | None -> ""

(* --- command execution ------------------------------------------------- *)

type outcome = [ `Ok | `Err | `Quit ]

let clamp_pos t p = max 0 (min (length t) p)

let move t ppf p =
  t.pos <- clamp_pos t p;
  print_where t ppf

(** Watch origin values at the current position, [(id, src, value)];
    unresolvable expressions (unknown global) are reported and skipped. *)
let watch_origins t ppf =
  List.filter_map
    (fun wp ->
      match eval_at t t.pos wp.wp_expr with
      | v -> Some (wp, v)
      | exception Predicate.Eval_error msg ->
          Fmt.pf ppf "watchpoint #%d (%s) skipped: %s@." wp.wp_id wp.wp_src
            msg;
          None)
    (List.rev t.watchpoints)

(** Forward run: stop at the first position [> pos] that hits a
    breakpoint or changes a watched value, else at the crash.  The sweep
    seeks ascending positions, so the whole run costs one re-execution
    pass no matter how many watchpoints are set. *)
let run_forward t ppf =
  let origins = watch_origins t ppf in
  let n = length t in
  let stop = ref None in
  let p = ref (t.pos + 1) in
  while !stop = None && !p <= n do
    (match at_breakpoint t !p with
    | Some bp -> stop := Some (`Bp (bp, !p))
    | None ->
        let changed =
          List.filter_map
            (fun (wp, v0) ->
              match eval_at t !p wp.wp_expr with
              | v when v <> v0 -> Some (wp, v0, v)
              | _ -> None
              | exception Predicate.Eval_error _ -> None)
            origins
        in
        if changed <> [] then stop := Some (`Watch (changed, !p)));
    if !stop = None then incr p
  done;
  match !stop with
  | Some (`Bp (bp, p)) ->
      t.pos <- p;
      Fmt.pf ppf "breakpoint #%d hit@." bp.bp_id;
      print_where t ppf
  | Some (`Watch (changed, p)) ->
      t.pos <- p;
      List.iter
        (fun (wp, v0, v) ->
          Fmt.pf ppf "watchpoint #%d: %s: %d -> %d@." wp.wp_id wp.wp_src v0 v)
        changed;
      print_where t ppf
  | None ->
      t.pos <- n;
      print_where t ppf

(** Backward run: stop at the {e largest} position [< pos] that hits a
    breakpoint or holds a watched value different from the current one,
    else at position 0.  Scans snapshot-aligned chunks from the highest
    downward; inside a chunk positions are swept ascending (cheap), and
    the last match in the first matching chunk is the answer — identical
    to a full backward scan, O(interval) replay per chunk. *)
let run_backward t ppf =
  let origins = watch_origins t ppf in
  let hit p =
    match at_breakpoint t p with
    | Some bp -> Some (`Bp bp)
    | None -> (
        let changed =
          List.filter_map
            (fun (wp, v0) ->
              match eval_at t p wp.wp_expr with
              | v when v <> v0 -> Some (wp, v0, v)
              | _ -> None
              | exception Predicate.Eval_error _ -> None)
            origins
        in
        match changed with [] -> None | l -> Some (`Watch l))
  in
  let k = Snapindex.interval t.index in
  let chunk_of p = if k = 0 then 0 else p / k in
  let found = ref None in
  let hi = ref (t.pos - 1) in
  while !found = None && !hi >= 0 do
    let lo = if k = 0 then 0 else chunk_of !hi * k in
    (* ascending sweep of [lo..hi]; keep the last (= largest) match *)
    Snapindex.sweep t.index ~lo ~hi:!hi (fun p _st ->
        match hit p with Some h -> found := Some (p, h) | None -> ());
    hi := lo - 1
  done;
  match !found with
  | Some (p, `Bp bp) ->
      t.pos <- p;
      Fmt.pf ppf "breakpoint #%d hit@." bp.bp_id;
      print_where t ppf
  | Some (p, `Watch changed) ->
      t.pos <- p;
      List.iter
        (fun (wp, v0, v) ->
          (* moving backward: the value changes from v (older) to v0 *)
          Fmt.pf ppf "watchpoint #%d: %s: %d -> %d@." wp.wp_id wp.wp_src v v0)
        changed;
      print_where t ppf
  | None ->
      t.pos <- 0;
      print_where t ppf

let exec_list t ppf n =
  let lo = clamp_pos t (t.pos - n) and hi = clamp_pos t (t.pos + n) in
  for p = lo to hi do
    let marker = if p = t.pos then ">" else " " in
    Fmt.pf ppf "%s %a@." marker pp_position (t, p)
  done

let exec_regs t ppf tid =
  let st = state_at t t.pos in
  match IMap.find_opt tid st.Res_vm.Exec.threads with
  | None -> Fmt.pf ppf "no thread %d@." tid
  | Some th -> (
      Fmt.pf ppf "t%d: %a@." tid Res_vm.Thread.pp_status
        th.Res_vm.Thread.status;
      match Res_vm.Thread.top_opt th with
      | None -> ()
      | Some fr ->
          Fmt.pf ppf "  at %a@." Res_ir.Pc.pp (Res_vm.Frame.pc fr);
          let bindings = Res_vm.Frame.reg_bindings fr in
          if bindings = [] then Fmt.pf ppf "  (no registers written)@."
          else
            List.iter
              (fun (r, v) -> Fmt.pf ppf "  r%d = %d@." r v)
              bindings)

let exec_threads t ppf =
  let st = state_at t t.pos in
  IMap.iter
    (fun tid th ->
      let marker = if tid = t.focus then "*" else " " in
      let pc =
        match Res_vm.Thread.top_opt th with
        | Some fr -> Fmt.str " at %a" Res_ir.Pc.pp (Res_vm.Frame.pc fr)
        | None -> ""
      in
      Fmt.pf ppf "%s t%d: %a%s@." marker tid Res_vm.Thread.pp_status
        th.Res_vm.Thread.status pc)
    st.Res_vm.Exec.threads

let exec_mem t ppf addr_e count =
  match eval_at t t.pos addr_e with
  | exception Predicate.Eval_error msg -> Fmt.pf ppf "error: %s@." msg
  | addr ->
      let st = state_at t t.pos in
      for i = 0 to count - 1 do
        let a = addr + i in
        Fmt.pf ppf "[0x%x]%s = %d@." a (describe_addr t a)
          (Res_mem.Memory.read st.Res_vm.Exec.mem a)
      done

(** Execute one parsed command, rendering its output to [ppf]. *)
let exec_cmd t ppf (cmd : Command.t) : outcome =
  match cmd with
  | Command.Nop -> `Ok
  | Command.Help ->
      Fmt.pf ppf "%s@." Command.help_text;
      `Ok
  | Command.Quit -> `Quit
  | Command.Where ->
      print_where t ppf;
      `Ok
  | Command.Step n ->
      move t ppf (t.pos + n);
      `Ok
  | Command.Step_back n ->
      move t ppf (t.pos - n);
      `Ok
  | Command.Goto p ->
      if p < 0 || p > length t then begin
        Fmt.pf ppf "error: step %d out of [0,%d]@." p (length t);
        `Err
      end
      else begin
        move t ppf p;
        `Ok
      end
  | Command.Thread tid ->
      t.focus <- tid;
      Fmt.pf ppf "focus: t%d@." tid;
      `Ok
  | Command.Continue ->
      run_forward t ppf;
      `Ok
  | Command.Continue_back ->
      run_backward t ppf;
      `Ok
  | Command.Break pc ->
      let bp = { bp_id = t.next_bp; bp_pc = pc } in
      t.next_bp <- t.next_bp + 1;
      t.breakpoints <- bp :: t.breakpoints;
      let hits =
        Array.to_list t.trace
        |> List.filter (fun (e : Res_vm.Event.t) ->
               Res_ir.Pc.equal e.Res_vm.Event.pc pc)
        |> List.length
      in
      let crash_hits =
        if Res_ir.Pc.equal t.crash.Res_vm.Crash.pc pc then 1 else 0
      in
      Fmt.pf ppf "breakpoint #%d at %a (%d hits in suffix)@." bp.bp_id
        Res_ir.Pc.pp pc (hits + crash_hits);
      `Ok
  | Command.Delete id ->
      if List.exists (fun bp -> bp.bp_id = id) t.breakpoints then begin
        t.breakpoints <- List.filter (fun bp -> bp.bp_id <> id) t.breakpoints;
        Fmt.pf ppf "deleted breakpoint #%d@." id;
        `Ok
      end
      else begin
        Fmt.pf ppf "error: no breakpoint #%d@." id;
        `Err
      end
  | Command.Breaks ->
      if t.breakpoints = [] then Fmt.pf ppf "no breakpoints@."
      else
        List.iter
          (fun bp -> Fmt.pf ppf "#%d at %a@." bp.bp_id Res_ir.Pc.pp bp.bp_pc)
          (List.rev t.breakpoints);
      `Ok
  | Command.Watch (e, src) -> (
      match eval_at t t.pos e with
      | exception Predicate.Eval_error msg ->
          Fmt.pf ppf "error: %s@." msg;
          `Err
      | v ->
          let wp = { wp_id = t.next_wp; wp_expr = e; wp_src = src } in
          t.next_wp <- t.next_wp + 1;
          t.watchpoints <- wp :: t.watchpoints;
          Fmt.pf ppf "watchpoint #%d: %s = %d@." wp.wp_id src v;
          `Ok)
  | Command.Unwatch id ->
      if List.exists (fun wp -> wp.wp_id = id) t.watchpoints then begin
        t.watchpoints <- List.filter (fun wp -> wp.wp_id <> id) t.watchpoints;
        Fmt.pf ppf "deleted watchpoint #%d@." id;
        `Ok
      end
      else begin
        Fmt.pf ppf "error: no watchpoint #%d@." id;
        `Err
      end
  | Command.Watches ->
      if t.watchpoints = [] then Fmt.pf ppf "no watchpoints@."
      else
        List.iter
          (fun wp ->
            match eval_at t t.pos wp.wp_expr with
            | v -> Fmt.pf ppf "#%d: %s = %d@." wp.wp_id wp.wp_src v
            | exception Predicate.Eval_error msg ->
                Fmt.pf ppf "#%d: %s (error: %s)@." wp.wp_id wp.wp_src msg)
          (List.rev t.watchpoints);
      `Ok
  | Command.Twatch (e, src) -> (
      let eval st = Predicate.eval ~layout:t.layout ~focus:t.focus st e in
      match Snapindex.find_transition t.index eval with
      | exception Predicate.Eval_error msg ->
          Fmt.pf ppf "error: %s@." msg;
          `Err
      | None ->
          Fmt.pf ppf "no transition: %s has the same value at step 0 and step %d@."
            src (length t);
          `Ok
      | Some tr ->
          Fmt.pf ppf
            "transition: %s: %d -> %d at step %d (%d probes, %d steps)@." src
            tr.Snapindex.tr_before tr.Snapindex.tr_after tr.Snapindex.tr_pos
            tr.Snapindex.tr_probes (length t);
          move t ppf tr.Snapindex.tr_pos;
          `Ok)
  | Command.Print (e, src) -> (
      match eval_at t t.pos e with
      | v ->
          Fmt.pf ppf "%s = %d@." src v;
          `Ok
      | exception Predicate.Eval_error msg ->
          Fmt.pf ppf "error: %s@." msg;
          `Err)
  | Command.Mem (addr_e, count) ->
      exec_mem t ppf addr_e count;
      `Ok
  | Command.Regs tid ->
      exec_regs t ppf (Option.value tid ~default:t.focus);
      `Ok
  | Command.Threads ->
      exec_threads t ppf;
      `Ok
  | Command.List n ->
      exec_list t ppf n;
      `Ok
  | Command.Assert (e, src) -> (
      t.asserts_run <- t.asserts_run + 1;
      match eval_at t t.pos e with
      | v when v <> 0 ->
          Fmt.pf ppf "assert %s: PASS@." src;
          `Ok
      | v ->
          t.asserts_failed <- t.asserts_failed + 1;
          Fmt.pf ppf "assert %s: FAIL (= %d)@." src v;
          `Ok
      | exception Predicate.Eval_error msg ->
          t.asserts_failed <- t.asserts_failed + 1;
          Fmt.pf ppf "assert %s: FAIL (%s)@." src msg;
          `Ok)

(** Parse and execute one line. *)
let exec_line t ppf line : outcome =
  match Command.parse line with
  | Ok cmd -> exec_cmd t ppf cmd
  | Error msg ->
      Fmt.pf ppf "error: %s@." msg;
      `Err
