(** Expressions over a replayed machine state.

    The debugger's watchpoints, transition watchpoints, [print], and
    [assert] all evaluate the same small expression language against a
    reconstructed {!Res_vm.Exec.state}:

    {v
      expr := int | 0xhex | r<N> | t<T>:r<N> | &global | [expr]
            | expr (+ - * / %) expr
            | expr (== != < <= > >=) expr     (1 / 0)
            | expr (&& ||) expr               (non-zero = true)
            | ( expr )
    v}

    [r<N>] reads register N of the session's focused thread (an absent
    thread, frame, or register reads as 0 — the VM's own register
    semantics); [t<T>:r<N>] names the thread explicitly.  [[e]] reads the
    memory word at address [e].  [&name] is the address of a global.
    Division or remainder by zero evaluates to 0: predicate evaluation is
    total, so a watchpoint can never crash the debugger. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Lit of int
  | Reg of { tid : int option; reg : int }  (** [None]: focused thread *)
  | Global of string  (** address of a global, resolved via the layout *)
  | Mem of expr
  | Bin of binop * expr * expr

(* --- evaluation ------------------------------------------------------- *)

module IMap = Map.Make (Int)

let read_reg_of st ~tid ~reg =
  match IMap.find_opt tid st.Res_vm.Exec.threads with
  | Some th -> (
      match Res_vm.Thread.top_opt th with
      | Some fr -> Res_vm.Frame.read_reg fr reg
      | None -> 0)
  | None -> 0

exception Eval_error of string

(** Evaluate [e] against [st] with [focus] as the implicit thread.
    @raise Eval_error only for an unresolvable [&global]. *)
let eval ~layout ~focus st e =
  let rec go = function
    | Lit n -> n
    | Reg { tid; reg } ->
        read_reg_of st ~tid:(Option.value tid ~default:focus) ~reg
    | Global name -> (
        match Res_mem.Layout.global_base layout name with
        | base -> base
        | exception Not_found ->
            raise (Eval_error (Fmt.str "unknown global: %s" name)))
    | Mem a -> Res_mem.Memory.read st.Res_vm.Exec.mem (go a)
    | Bin (op, a, b) -> (
        let va = go a in
        match op with
        | And -> if va = 0 then 0 else if go b <> 0 then 1 else 0
        | Or -> if va <> 0 then 1 else if go b <> 0 then 1 else 0
        | _ -> (
            let vb = go b in
            match op with
            | Add -> va + vb
            | Sub -> va - vb
            | Mul -> va * vb
            | Div -> if vb = 0 then 0 else va / vb
            | Rem -> if vb = 0 then 0 else va mod vb
            | Eq -> if va = vb then 1 else 0
            | Ne -> if va <> vb then 1 else 0
            | Lt -> if va < vb then 1 else 0
            | Le -> if va <= vb then 1 else 0
            | Gt -> if va > vb then 1 else 0
            | Ge -> if va >= vb then 1 else 0
            | And | Or -> assert false))
  in
  go e

(* --- printing --------------------------------------------------------- *)

let op_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp ppf = function
  | Lit n -> Fmt.int ppf n
  | Reg { tid = None; reg } -> Fmt.pf ppf "r%d" reg
  | Reg { tid = Some t; reg } -> Fmt.pf ppf "t%d:r%d" t reg
  | Global g -> Fmt.pf ppf "&%s" g
  | Mem a -> Fmt.pf ppf "[%a]" pp a
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (op_str op) pp b

let to_string e = Fmt.str "%a" pp e

(* --- parsing ---------------------------------------------------------- *)

type token =
  | T_int of int
  | T_reg of int option * int
  | T_global of string
  | T_op of string
  | T_lbrack
  | T_rbrack
  | T_lparen
  | T_rparen

let is_digit c = c >= '0' && c <= '9'
let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

exception Lex of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = Error (Fmt.str "%s at column %d" msg (!i + 1)) in
  let read_int () =
    (* 0x... or decimal; caller guarantees a digit at !i *)
    let start = !i in
    if
      !i + 1 < n
      && s.[!i] = '0'
      && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X')
    then begin
      i := !i + 2;
      while
        !i < n
        && (is_digit s.[!i]
           || (s.[!i] >= 'a' && s.[!i] <= 'f')
           || (s.[!i] >= 'A' && s.[!i] <= 'F'))
      do
        incr i
      done
    end
    else while !i < n && is_digit s.[!i] do incr i done;
    (* bare "0x" (no hex digits) and out-of-range literals both land
       here: [int_of_string] would raise Failure straight through the
       debugger, so lex errors get their own exception, caught below. *)
    match int_of_string_opt (String.sub s start (!i - start)) with
    | Some v -> v
    | None -> raise (Lex "malformed or out-of-range integer literal")
  in
  let rec loop () =
    if !i >= n then Ok (List.rev !toks)
    else
      let c = s.[!i] in
      if c = ' ' || c = '\t' then begin
        incr i;
        loop ()
      end
      else if is_digit c then begin
        toks := T_int (read_int ()) :: !toks;
        loop ()
      end
      else if c = '[' then (incr i; toks := T_lbrack :: !toks; loop ())
      else if c = ']' then (incr i; toks := T_rbrack :: !toks; loop ())
      else if c = '(' then (incr i; toks := T_lparen :: !toks; loop ())
      else if c = ')' then (incr i; toks := T_rparen :: !toks; loop ())
      else if c = '&' && !i + 1 < n && s.[!i + 1] = '&' then begin
        i := !i + 2;
        toks := T_op "&&" :: !toks;
        loop ()
      end
      else if c = '&' then begin
        incr i;
        let start = !i in
        while !i < n && is_ident s.[!i] do incr i done;
        if !i = start then fail "expected global name after '&'"
        else begin
          toks := T_global (String.sub s start (!i - start)) :: !toks;
          loop ()
        end
      end
      else if c = '|' && !i + 1 < n && s.[!i + 1] = '|' then begin
        i := !i + 2;
        toks := T_op "||" :: !toks;
        loop ()
      end
      else if c = 'r' && !i + 1 < n && is_digit s.[!i + 1] then begin
        incr i;
        let r = read_int () in
        toks := T_reg (None, r) :: !toks;
        loop ()
      end
      else if c = 't' && !i + 1 < n && is_digit s.[!i + 1] then begin
        incr i;
        let t = read_int () in
        if !i + 1 < n && s.[!i] = ':' && s.[!i + 1] = 'r' then begin
          i := !i + 2;
          if !i < n && is_digit s.[!i] then begin
            let r = read_int () in
            toks := T_reg (Some t, r) :: !toks;
            loop ()
          end
          else fail "expected register number after 't<N>:r'"
        end
        else fail "expected ':r<N>' after thread qualifier"
      end
      else
        let two = if !i + 1 < n then String.sub s !i 2 else "" in
        if List.mem two [ "=="; "!="; "<="; ">=" ] then begin
          i := !i + 2;
          toks := T_op two :: !toks;
          loop ()
        end
        else if List.mem c [ '+'; '-'; '*'; '/'; '%'; '<'; '>' ] then begin
          incr i;
          toks := T_op (String.make 1 c) :: !toks;
          loop ()
        end
        else fail (Fmt.str "unexpected character '%c'" c)
  in
  match loop () with
  | r -> r
  | exception Lex msg -> fail msg

let binop_of = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | "%" -> Rem
  | "==" -> Eq
  | "!=" -> Ne
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "&&" -> And
  | "||" -> Or
  | s -> invalid_arg ("Predicate.binop_of: " ^ s)

(* Recursive descent; precedence (loosest first): || < && < comparisons
   < additive < multiplicative.  A depth counter caps nesting: without
   it a hostile "((((..." or "----..." prefix recurses once per
   character and kills the debugger with Stack_overflow instead of a
   parse error. *)
let max_depth = 200

let parse_tokens toks =
  let toks = ref toks in
  let peek () = match !toks with t :: _ -> Some t | [] -> None in
  let advance () = match !toks with _ :: r -> toks := r | [] -> () in
  let exception Parse of string in
  let depth = ref 0 in
  let rec atom () =
    incr depth;
    if !depth > max_depth then raise (Parse "expression too deeply nested");
    let e =
      match peek () with
      | Some (T_int n) -> advance (); Lit n
      | Some (T_reg (tid, reg)) -> advance (); Reg { tid; reg }
      | Some (T_global g) -> advance (); Global g
      | Some T_lbrack ->
          advance ();
          let e = disj () in
          (match peek () with
          | Some T_rbrack -> advance (); Mem e
          | _ -> raise (Parse "expected ']'"))
      | Some T_lparen ->
          advance ();
          let e = disj () in
          (match peek () with
          | Some T_rparen -> advance (); e
          | _ -> raise (Parse "expected ')'"))
      | Some (T_op "-") ->
          advance ();
          Bin (Sub, Lit 0, atom ())
      | _ -> raise (Parse "expected a value")
    in
    decr depth;
    e
  and level ops next () =
    let left = ref (next ()) in
    let rec go () =
      match peek () with
      | Some (T_op o) when List.mem o ops ->
          advance ();
          left := Bin (binop_of o, !left, next ());
          go ()
      | _ -> ()
    in
    go ();
    !left
  and mul () = level [ "*"; "/"; "%" ] atom ()
  and add () = level [ "+"; "-" ] mul ()
  and cmp () = level [ "=="; "!="; "<"; "<="; ">"; ">=" ] add ()
  and conj () = level [ "&&" ] cmp ()
  and disj () = level [ "||" ] conj ()
  in
  match disj () with
  | e -> if !toks = [] then Ok e else Error "trailing tokens after expression"
  | exception Parse msg -> Error msg

(** Parse an expression.  [Error] carries a human-readable reason. *)
let parse s =
  match tokenize s with Ok toks -> parse_tokens toks | Error e -> Error e
