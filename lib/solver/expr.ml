(** Symbolic expressions.

    The paper's symbolic values ([§2.3]): an expression is either a concrete
    word, a symbolic variable ("stand-in for any possible value"), or an
    operator applied to sub-expressions.  The operators are exactly MiniIR's
    ALU operators, so forward symbolic execution of a block is a direct
    re-interpretation of its instructions over this type. *)

(** A symbolic variable.  [name] is for humans (it records provenance, e.g.
    ["pre:r3"] or ["input:net#2"]); identity is [id]. *)
type sym = { id : int; name : string }

type t =
  | Const of int
  | Sym of sym
  | Binop of Res_ir.Instr.binop * t * t
  | Unop of Res_ir.Instr.unop * t
  | Ite of t * t * t  (** if-then-else on a nonzero condition *)

(* An [Atomic] so concurrent search workers (OCaml 5 domains) mint
   disjoint ids: a plain [ref] would lose increments under contention and
   hand two domains the same "fresh" variable. *)
let counter = Atomic.make 0

(** Allocate a fresh symbolic variable.  Fresh variables are globally
    unique for the lifetime of the process, across all domains. *)
let fresh_sym name = { id = 1 + Atomic.fetch_and_add counter 1; name }

(** Reset the id counter — test isolation only. *)
let reset_counter_for_tests () = Atomic.set counter 0

(** Current value of the fresh-variable counter.  Checkpoints persist it so
    a resumed process re-mints exactly the ids the uninterrupted run would
    have (bit-identical continuation). *)
let counter_value () = Atomic.get counter

(** Restore the fresh-variable counter from a checkpoint.  The ids below
    [n] are considered taken; only the resumed analysis may reuse them. *)
let restore_counter n = Atomic.set counter n

let fresh name = Sym (fresh_sym name)
let const n = Const n
let zero = Const 0
let one = Const 1

let is_const = function Const _ -> true | _ -> false
let const_val = function Const n -> Some n | _ -> None

(* Shorthand constructors. *)
let add a b = Binop (Res_ir.Instr.Add, a, b)
let sub a b = Binop (Res_ir.Instr.Sub, a, b)
let mul a b = Binop (Res_ir.Instr.Mul, a, b)
let eq a b = Binop (Res_ir.Instr.Eq, a, b)
let ne a b = Binop (Res_ir.Instr.Ne, a, b)
let lt a b = Binop (Res_ir.Instr.Lt, a, b)
let le a b = Binop (Res_ir.Instr.Le, a, b)
let gt a b = Binop (Res_ir.Instr.Gt, a, b)
let ge a b = Binop (Res_ir.Instr.Ge, a, b)
let logical_not a = Unop (Res_ir.Instr.Not, a)

module Sym_set = Set.Make (struct
  type nonrec t = sym

  let compare a b = Int.compare a.id b.id
end)

(** Free symbolic variables of an expression. *)
let rec syms = function
  | Const _ -> Sym_set.empty
  | Sym s -> Sym_set.singleton s
  | Binop (_, a, b) -> Sym_set.union (syms a) (syms b)
  | Unop (_, a) -> syms a
  | Ite (c, a, b) -> Sym_set.union (syms c) (Sym_set.union (syms a) (syms b))

(** Whether the expression contains no symbolic variables. *)
let rec is_concrete = function
  | Const _ -> true
  | Sym _ -> false
  | Binop (_, a, b) -> is_concrete a && is_concrete b
  | Unop (_, a) -> is_concrete a
  | Ite (c, a, b) -> is_concrete c && is_concrete a && is_concrete b

(** [subst f e] replaces each symbolic variable [s] by [f s] (returning
    [Sym s] keeps it). *)
let rec subst f = function
  | Const n -> Const n
  | Sym s -> f s
  | Binop (op, a, b) -> Binop (op, subst f a, subst f b)
  | Unop (op, a) -> Unop (op, subst f a)
  | Ite (c, a, b) -> Ite (subst f c, subst f a, subst f b)

(** [subst_sym s v e] replaces variable [s] by constant [v]. *)
let subst_sym s v e =
  subst (fun s' -> if s'.id = s.id then Const v else Sym s') e

(** Evaluate under a total assignment.
    @raise Division_by_zero when the assignment divides by zero — callers
    (the solver) treat such candidates as failing. *)
let rec eval env = function
  | Const n -> n
  | Sym s -> env s
  | Binop (op, a, b) -> Res_ir.Instr.eval_binop op (eval env a) (eval env b)
  | Unop (op, a) -> Res_ir.Instr.eval_unop op (eval env a)
  | Ite (c, a, b) -> if eval env c <> 0 then eval env a else eval env b

(** Structural size — used by tests and as a solver heuristic. *)
let rec size = function
  | Const _ | Sym _ -> 1
  | Binop (_, a, b) -> 1 + size a + size b
  | Unop (_, a) -> 1 + size a
  | Ite (c, a, b) -> 1 + size c + size a + size b

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Sym x, Sym y -> x.id = y.id
  | Binop (op, x1, y1), Binop (op', x2, y2) ->
      op = op' && equal x1 x2 && equal y1 y2
  | Unop (op, x), Unop (op', y) -> op = op' && equal x y
  | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      equal c1 c2 && equal a1 a2 && equal b1 b2
  | (Const _ | Sym _ | Binop _ | Unop _ | Ite _), _ -> false

let rec compare_expr a b =
  let tag = function
    | Const _ -> 0
    | Sym _ -> 1
    | Binop _ -> 2
    | Unop _ -> 3
    | Ite _ -> 4
  in
  match (a, b) with
  | Const x, Const y -> Int.compare x y
  | Sym x, Sym y -> Int.compare x.id y.id
  | Binop (op, x1, y1), Binop (op', x2, y2) ->
      let c = compare op op' in
      if c <> 0 then c
      else
        let c = compare_expr x1 x2 in
        if c <> 0 then c else compare_expr y1 y2
  | Unop (op, x), Unop (op', y) ->
      let c = compare op op' in
      if c <> 0 then c else compare_expr x y
  | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      let c = compare_expr c1 c2 in
      if c <> 0 then c
      else
        let c = compare_expr a1 a2 in
        if c <> 0 then c else compare_expr b1 b2
  | x, y -> Int.compare (tag x) (tag y)

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Sym s -> Fmt.pf ppf "%s#%d" s.name s.id
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%s %a %a)" (Res_ir.Instr.binop_name op) pp a pp b
  | Unop (op, a) -> Fmt.pf ppf "(%s %a)" (Res_ir.Instr.unop_name op) pp a
  | Ite (c, a, b) -> Fmt.pf ppf "(ite %a %a %a)" pp c pp a pp b

let to_string e = Fmt.str "%a" pp e
