(** An SMT-lite constraint solver over MiniIR's integer expressions.

    Stands in for the STP/Z3 back end of a real symbolic-execution engine
    (DESIGN.md §1).  The pipeline is: normalization → affine (Gaussian)
    elimination of multi-variable linear equalities → equality propagation →
    interval propagation → bounded backtracking search over candidate
    values, with model verification at the leaves.

    Answers are trustworthy: a [Sat] model always satisfies the original
    constraints and [Unsat] is proven on the explored fragment; [Unknown]
    means a budget or fragment limit was hit, never a wrong answer. *)

type result = Sat of Model.t | Unsat | Unknown

type config = {
  max_nodes : int;  (** search-tree node budget *)
  max_enum : int;  (** intervals at most this wide are enumerated fully *)
  interrupt : unit -> bool;
      (** cooperative interrupt, polled once per search node: when it
          returns [true] the solve stops and reports [Unknown] — how a
          pipeline-wide deadline reaches into a running solve *)
}

val default_config : config

(** Solve a constraint set: every expression in the list is asserted
    nonzero. *)
val solve : ?config:config -> Expr.t list -> result

(** Number of {!solve} calls made so far {e by the calling domain}
    (domain-local, monotonic).  Parallel workers report the delta across
    their own work, so per-worker counts sum without double-counting. *)
val queries : unit -> int

(** [is_sat cs] — convenience wrapper ([Unknown] counts as unsatisfiable,
    which is the conservative reading for feasibility checks). *)
val is_sat : ?config:config -> Expr.t list -> bool

(** Feasible concrete values of an expression under the constraints, at
    most [max_candidates] of them, found by iteratively excluding each
    model value.  [Error `Unknown] when the solver cannot decide; the [Ok]
    list is complete when shorter than [max_candidates]. *)
val concretize :
  ?config:config ->
  constraints:Expr.t list ->
  max_candidates:int ->
  Expr.t ->
  (int list, [ `Unknown ]) Stdlib.result

(** The single feasible value of an expression, if unique. *)
val unique_value :
  ?config:config -> constraints:Expr.t list -> Expr.t -> int option

val pp_result : Format.formatter -> result -> unit
