(** An SMT-lite constraint solver over MiniIR's integer expressions.

    Stands in for the STP/Z3 back end of a real symbolic-execution engine
    (DESIGN.md §1).  The pipeline is: normalization → equality propagation →
    interval propagation → bounded backtracking search over candidate
    values, with model verification at the leaves.  It is complete on the
    fragment our workloads generate (linear arithmetic, comparisons, small
    bitwise values); anything it cannot decide within budget comes back
    [Unknown], never a wrong answer. *)

module IMap = Map.Make (Int)

type result = Sat of Model.t | Unsat | Unknown

type config = {
  max_nodes : int;  (** search-tree node budget *)
  max_enum : int;  (** intervals at most this wide are enumerated fully *)
  interrupt : unit -> bool;
      (** cooperative interrupt, polled once per search node: when it
          returns [true] the solve stops and reports [Unknown] — how a
          pipeline-wide deadline reaches into a running solve *)
}

let default_config =
  { max_nodes = 50_000; max_enum = 256; interrupt = (fun () -> false) }

(* --- linear extraction: e == a * s + b for a single variable s --- *)

type linear = { l_sym : Expr.sym; l_a : int; l_b : int }

let rec linear_of (e : Expr.t) : linear option =
  match e with
  | Expr.Sym s -> Some { l_sym = s; l_a = 1; l_b = 0 }
  | Expr.Binop (Res_ir.Instr.Add, x, Expr.Const c) ->
      Option.map (fun l -> { l with l_b = l.l_b + c }) (linear_of x)
  | Expr.Binop (Res_ir.Instr.Add, Expr.Const c, x) ->
      Option.map (fun l -> { l with l_b = l.l_b + c }) (linear_of x)
  | Expr.Binop (Res_ir.Instr.Sub, x, Expr.Const c) ->
      Option.map (fun l -> { l with l_b = l.l_b - c }) (linear_of x)
  | Expr.Binop (Res_ir.Instr.Sub, Expr.Const c, x) ->
      Option.map
        (fun l -> { l with l_a = -l.l_a; l_b = c - l.l_b })
        (linear_of x)
  | Expr.Binop (Res_ir.Instr.Mul, x, Expr.Const c)
  | Expr.Binop (Res_ir.Instr.Mul, Expr.Const c, x) ->
      Option.map (fun l -> { l with l_a = l.l_a * c; l_b = l.l_b * c }) (linear_of x)
  | Expr.Unop (Res_ir.Instr.Neg, x) ->
      Option.map (fun l -> { l with l_a = -l.l_a; l_b = -l.l_b }) (linear_of x)
  | _ -> None

(* --- multi-variable affine forms: sum(coeff_i * sym_i) + const --- *)

type affine = { aff_coeffs : (Expr.sym * int) list; aff_const : int }

let aff_merge f a b =
  let rec merge = function
    | [], l -> List.filter (fun (_, c) -> c <> 0) (List.map (fun (s, c) -> (s, f 0 c)) l)
    | l, [] -> List.filter (fun (_, c) -> c <> 0) l
    | ((s1, c1) :: r1 as l1), ((s2, c2) :: r2 as l2) ->
        if s1.Expr.id < s2.Expr.id then
          if c1 = 0 then merge (r1, l2) else (s1, c1) :: merge (r1, l2)
        else if s2.Expr.id < s1.Expr.id then
          let c = f 0 c2 in
          if c = 0 then merge (l1, r2) else (s2, c) :: merge (l1, r2)
        else
          let c = f c1 c2 in
          if c = 0 then merge (r1, r2) else (s1, c) :: merge (r1, r2)
  in
  merge (a, b)

let rec affine_of (e : Expr.t) : affine option =
  let open Res_ir.Instr in
  match e with
  | Expr.Const n -> Some { aff_coeffs = []; aff_const = n }
  | Expr.Sym s -> Some { aff_coeffs = [ (s, 1) ]; aff_const = 0 }
  | Expr.Binop (Add, a, b) -> (
      match (affine_of a, affine_of b) with
      | Some x, Some y ->
          Some
            {
              aff_coeffs = aff_merge ( + ) x.aff_coeffs y.aff_coeffs;
              aff_const = x.aff_const + y.aff_const;
            }
      | _ -> None)
  | Expr.Binop (Sub, a, b) -> (
      match (affine_of a, affine_of b) with
      | Some x, Some y ->
          Some
            {
              aff_coeffs = aff_merge (fun c1 c2 -> c1 - c2) x.aff_coeffs y.aff_coeffs;
              aff_const = x.aff_const - y.aff_const;
            }
      | _ -> None)
  | Expr.Binop (Mul, a, Expr.Const c) | Expr.Binop (Mul, Expr.Const c, a) ->
      Option.map
        (fun x ->
          {
            aff_coeffs =
              List.filter_map
                (fun (s, k) -> if k * c = 0 then None else Some (s, k * c))
                x.aff_coeffs;
            aff_const = x.aff_const * c;
          })
        (affine_of a)
  | Expr.Unop (Neg, a) ->
      Option.map
        (fun x ->
          {
            aff_coeffs = List.map (fun (s, k) -> (s, -k)) x.aff_coeffs;
            aff_const = -x.aff_const;
          })
        (affine_of a)
  | _ -> None

let expr_of_affine { aff_coeffs; aff_const } =
  let term (s, c) =
    if c = 1 then Expr.Sym s else Expr.mul (Expr.const c) (Expr.Sym s)
  in
  let body =
    match aff_coeffs with
    | [] -> Expr.const aff_const
    | t :: rest ->
        let sum = List.fold_left (fun acc t' -> Expr.add acc (term t')) (term t) rest in
        if aff_const = 0 then sum else Expr.add sum (Expr.const aff_const)
  in
  body

(** Gaussian-style elimination on [Eq] constraints that are affine with a
    unit-coefficient pivot: rewrite the pivot variable as an affine form of
    the others and substitute it away.  Returns the reduced constraints and
    the substitutions (in elimination order) needed to rebuild a full
    model. *)
let eliminate_affine_pass constraints =
  let subs = ref [] in
  let apply_sub (s : Expr.sym) rhs e =
    Simplify.norm
      (Expr.subst (fun s' -> if s'.Expr.id = s.Expr.id then rhs else Expr.Sym s') e)
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | e :: rest -> (
        match e with
        | Expr.Binop (Res_ir.Instr.Eq, e1, e2) -> (
            let diff =
              match (affine_of e1, affine_of e2) with
              | Some x, Some y ->
                  Some
                    {
                      aff_coeffs = aff_merge (fun a b -> a - b) x.aff_coeffs y.aff_coeffs;
                      aff_const = x.aff_const - y.aff_const;
                    }
              | _ -> None
            in
            match diff with
            | Some { aff_coeffs = []; aff_const } ->
                (* Variable-free equality: drop if true, else contradiction. *)
                if aff_const = 0 then loop acc rest
                else loop (Expr.zero :: acc) rest
            | Some ({ aff_coeffs = [ _ ]; _ } as d) ->
                (* Canonical single-variable form, refinable downstream. *)
                let canon = Simplify.norm (Expr.eq (expr_of_affine d) Expr.zero) in
                loop (canon :: acc) rest
            | Some d -> (
                match List.find_opt (fun (_, c) -> abs c = 1) d.aff_coeffs with
                | Some (s, c) ->
                    (* c*s + rest = 0  =>  s = -rest/c *)
                    let rest_aff =
                      {
                        aff_coeffs =
                          List.filter (fun (s', _) -> s'.Expr.id <> s.Expr.id) d.aff_coeffs
                          |> List.map (fun (s', k) -> (s', -k * c));
                        aff_const = -d.aff_const * c;
                      }
                    in
                    let rhs = Simplify.norm (expr_of_affine rest_aff) in
                    subs := (s, rhs) :: !subs;
                    let rewrite = apply_sub s rhs in
                    loop (List.map rewrite acc) (List.map rewrite rest)
                | None -> loop (e :: acc) rest)
            | _ -> loop (e :: acc) rest)
        | _ -> loop (e :: acc) rest)
  in
  let reduced = loop [] constraints in
  (reduced, List.rev !subs)

(** Iterate elimination passes until no further pivot emerges: a
    substitution may turn an earlier constraint into a new affine fact. *)
let eliminate_affine constraints =
  let rec fix rounds cs =
    if rounds = 0 then (cs, [])
    else
      match eliminate_affine_pass cs with
      | reduced, [] -> (reduced, [])
      | reduced, subs ->
          let reduced', subs' = fix (rounds - 1) reduced in
          (reduced', subs @ subs')
  in
  fix 10 constraints

(* --- interval environment --- *)

type _ienv = Interval.t IMap.t

let iv_of env (s : Expr.sym) =
  match IMap.find_opt s.id env with Some i -> i | None -> Interval.top

let rec interval_of env (e : Expr.t) =
  match e with
  | Expr.Const n -> Interval.of_const n
  | Expr.Sym s -> iv_of env s
  | Expr.Binop (op, a, b) ->
      Interval.of_binop op (interval_of env a) (interval_of env b)
  | Expr.Unop (op, a) -> Interval.of_unop op (interval_of env a)
  | Expr.Ite (_, a, b) -> Interval.union (interval_of env a) (interval_of env b)

(** Refine [env] knowing that [a * s + b] lies within [target]. *)
let refine_linear env (l : linear) (target : Interval.t) =
  if l.l_a = 0 then
    if Interval.contains target l.l_b then Some env else None
  else
    let shifted = Interval.sub target (Interval.of_const l.l_b) in
    (* s in shifted / a, rounding toward the inside of the interval *)
    let lo, hi =
      if l.l_a > 0 then
        ( (if shifted.Interval.lo <= Interval.inf_neg then Interval.inf_neg
           else
             (* ceil division *)
             let x = shifted.Interval.lo in
             if x >= 0 then (x + l.l_a - 1) / l.l_a else x / l.l_a),
          if shifted.Interval.hi >= Interval.inf_pos then Interval.inf_pos
          else
            let x = shifted.Interval.hi in
            if x >= 0 then x / l.l_a else -((-x + l.l_a - 1) / l.l_a) )
      else
        let a = -l.l_a in
        let neg = Interval.neg shifted in
        ( (if neg.Interval.lo <= Interval.inf_neg then Interval.inf_neg
           else
             let x = neg.Interval.lo in
             if x >= 0 then (x + a - 1) / a else x / a),
          if neg.Interval.hi >= Interval.inf_pos then Interval.inf_pos
          else
            let x = neg.Interval.hi in
            if x >= 0 then x / a else -((-x + a - 1) / a) )
    in
    let refined = Interval.inter (iv_of env l.l_sym) (Interval.v lo hi) in
    if Interval.is_empty refined then None
    else Some (IMap.add l.l_sym.id refined env)

(** Refine from one constraint [e <> 0].  Returns [None] on contradiction. *)
let refine_one env (e : Expr.t) =
  let open Res_ir.Instr in
  let cmp_target op other =
    (* e1 `op` e2 is true: the interval e1 must lie in, given e2's. *)
    match op with
    | Eq -> Some other
    | Lt -> Some (Interval.v Interval.inf_neg (other.Interval.hi - 1))
    | Le -> Some (Interval.v Interval.inf_neg other.Interval.hi)
    | Gt -> Some (Interval.v (other.Interval.lo + 1) Interval.inf_pos)
    | Ge -> Some (Interval.v other.Interval.lo Interval.inf_pos)
    | Ne | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> None
  in
  let flip = function
    | Lt -> Gt
    | Le -> Ge
    | Gt -> Lt
    | Ge -> Le
    | (Eq | Ne) as op -> op
    | op -> op
  in
  match e with
  | Expr.Binop (op, e1, e2) -> (
      let refined_left =
        match (cmp_target op (interval_of env e2), linear_of e1) with
        | Some target, Some l -> refine_linear env l target
        | _ -> Some env
      in
      match refined_left with
      | None -> None
      | Some env -> (
          match (cmp_target (flip op) (interval_of env e1), linear_of e2) with
          | Some target, Some l -> refine_linear env l target
          | _ -> Some env))
  | _ -> Some env

(* --- constraint normalization and equality propagation --- *)

exception Contradiction

(** Substitute known bindings and normalize; raise on a constant-false
    constraint; drop constant-true ones; split conjunctions of booleans. *)
let normalize_constraints bindings constraints =
  let subst_bindings e =
    Expr.subst
      (fun s ->
        match IMap.find_opt s.Expr.id bindings with
        | Some v -> Expr.Const v
        | None -> Expr.Sym s)
      e
  in
  let rec push acc e =
    match Simplify.norm_constraint (subst_bindings e) with
    | Expr.Const 0 -> raise Contradiction
    | Expr.Const _ -> acc
    | Expr.Binop (Res_ir.Instr.And, a, b)
      when Simplify.is_boolean a && Simplify.is_boolean b ->
        push (push acc a) b
    | e' -> e' :: acc
  in
  List.rev (List.fold_left push [] constraints)

(** Extract [sym = const] facts, returning extended bindings and the
    remaining constraints.  Loops until no further facts emerge. *)
let rec propagate_equalities bindings constraints =
  let constraints = normalize_constraints bindings constraints in
  let found = ref false in
  let bindings = ref bindings in
  let rest =
    List.filter
      (fun e ->
        match e with
        | Expr.Binop (Res_ir.Instr.Eq, Expr.Sym s, Expr.Const c)
        | Expr.Binop (Res_ir.Instr.Eq, Expr.Const c, Expr.Sym s) ->
            (match IMap.find_opt s.Expr.id !bindings with
            | Some c' when c' <> c -> raise Contradiction
            | Some _ -> ()
            | None ->
                bindings := IMap.add s.Expr.id c !bindings;
                found := true);
            false
        | _ -> true)
      constraints
  in
  if !found then propagate_equalities !bindings rest else (!bindings, rest)

(** Run interval refinement to a bounded fixpoint.
    @raise Contradiction when some constraint cannot hold. *)
let propagate_intervals env constraints =
  let env = ref env in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 30 do
    changed := false;
    incr rounds;
    List.iter
      (fun e ->
        (* A constraint whose interval excludes 0 is already satisfied;
           one whose interval is exactly 0 is a contradiction. *)
        let iv = interval_of !env e in
        if Interval.is_const iv && iv.Interval.lo = 0 then raise Contradiction;
        match refine_one !env e with
        | None -> raise Contradiction
        | Some env' ->
            if not (IMap.equal Interval.equal env' !env) then (
              env := env';
              changed := true))
      constraints
  done;
  !env

(* --- search --- *)

let interesting_constants constraints =
  let rec collect acc (e : Expr.t) =
    match e with
    | Expr.Const n -> n :: acc
    | Expr.Sym _ -> acc
    | Expr.Binop (_, a, b) -> collect (collect acc a) b
    | Expr.Unop (_, a) -> collect acc a
    | Expr.Ite (c, a, b) -> collect (collect (collect acc c) a) b
  in
  let base = List.fold_left collect [ 0; 1; -1 ] constraints in
  List.concat_map (fun n -> [ n; n - 1; n + 1; -n ]) base
  |> List.sort_uniq compare

let free_syms constraints =
  List.fold_left
    (fun acc e -> Expr.Sym_set.union acc (Expr.syms e))
    Expr.Sym_set.empty constraints
  |> Expr.Sym_set.elements

(** Candidate values for [s], most promising first. *)
let candidates cfg env constraints (s : Expr.sym) =
  let iv = iv_of env s in
  match Interval.size iv with
  | Some n when n <= cfg.max_enum ->
      (* Enumerate the whole interval, small magnitudes first. *)
      ( `Complete,
        List.init n (fun i -> iv.Interval.lo + i)
        |> List.sort (fun a b -> compare (abs a, a) (abs b, b)) )
  | _ ->
      let pool = interesting_constants constraints in
      let within = List.filter (Interval.contains iv) pool in
      let extras =
        List.filter
          (fun v -> Interval.contains iv v && not (List.mem v within))
          [ iv.Interval.lo; iv.Interval.hi ]
      in
      (`Heuristic, within @ extras)

let solve_core config constraints =
  let original = constraints in
  let nodes = ref 0 in
  let exception Budget in
  let finish bindings env =
    (* No undecided constraints left: give every variable of the original
       problem an in-interval value (bindings win when present). *)
    let model =
      List.fold_left
        (fun m (s : Expr.sym) ->
          if IMap.mem s.Expr.id m then m
          else
            let iv = iv_of env s in
            let v =
              if Interval.contains iv 0 then 0
              else if iv.Interval.lo > 0 then iv.Interval.lo
              else iv.Interval.hi
            in
            IMap.add s.Expr.id v m)
        bindings (free_syms original)
    in
    let as_model =
      IMap.fold (fun id v m -> Model.add { Expr.id; name = "" } v m) model Model.empty
    in
    if List.for_all (Model.satisfies as_model) original then Some as_model
    else None
  in
  let rec go bindings env constraints =
    incr nodes;
    if !nodes > config.max_nodes || config.interrupt () then raise Budget;
    match propagate_equalities bindings constraints with
    | exception Contradiction -> `Unsat
    | bindings, constraints -> (
        match propagate_intervals env constraints with
        | exception Contradiction -> `Unsat
        | env -> (
            (* Drop constraints already certainly true. *)
            let constraints =
              List.filter
                (fun e ->
                  let iv = interval_of env e in
                  Interval.contains iv 0 || Interval.is_empty iv)
                constraints
            in
            match constraints with
            | [] -> (
                match finish bindings env with
                | Some m -> `Sat m
                | None -> `Unknown)
            | _ -> (
                match free_syms constraints with
                | [] -> `Unsat (* unsatisfied but variable-free: impossible *)
                | syms -> branch bindings env constraints syms)))
  and branch bindings env constraints syms =
    (* Split on the variable with the narrowest interval. *)
    let width (s : Expr.sym) =
      match Interval.size (iv_of env s) with
      | Some n -> n
      | None -> max_int
    in
    let s =
      List.fold_left
        (fun best s -> if width s < width best then s else best)
        (List.hd syms) (List.tl syms)
    in
    let completeness, values = candidates config env constraints s in
    let rec try_values = function
      | [] -> if completeness = `Complete then `Unsat else `Unknown
      | v :: rest -> (
          match go (IMap.add s.Expr.id v bindings) env constraints with
          | `Sat m -> `Sat m
          | `Unsat -> try_values rest
          | `Unknown ->
              (* Remember incompleteness but keep trying other values. *)
              (match try_values rest with `Unsat -> `Unknown | r -> r))
    in
    try_values values
  in
  match go IMap.empty IMap.empty constraints with
  | `Sat m -> Sat m
  | `Unsat -> Unsat
  | `Unknown -> Unknown
  | exception Budget -> Unknown

(** Solve a constraint set: every expression in the list is asserted
    nonzero.  Multi-variable linear equalities are eliminated up front;
    the returned model (if any) always satisfies the {e original}
    constraints — an answer of [Sat]/[Unsat] is trustworthy, [Unknown]
    means budget or fragment limits were hit. *)
(* Per-domain query counter (domain-local storage): each parallel search
   worker meters its own solver traffic and reports the count explicitly,
   so aggregation never double-counts whichever backend (domains or forked
   processes) ran the worker. *)
let queries_key = Domain.DLS.new_key (fun () -> ref 0)
let queries () = !(Domain.DLS.get queries_key)

let solve ?(config = default_config) constraints =
  incr (Domain.DLS.get queries_key);
  match normalize_constraints IMap.empty constraints with
  | exception Contradiction -> Unsat
  | normalized -> (
      let reduced, subs = eliminate_affine normalized in
      match solve_core config reduced with
      | Unsat -> Unsat
      | Unknown -> Unknown
      | Sat m ->
          (* Rebuild eliminated variables, last eliminated first (earlier
             right-hand sides may mention later-eliminated variables). *)
          let m =
            List.fold_left
              (fun m (s, rhs) -> Model.add s (Model.eval m rhs) m)
              m (List.rev subs)
          in
          if List.for_all (Model.satisfies m) constraints then Sat m
          else Unknown)

(** [is_sat cs] — convenience wrapper. *)
let is_sat ?config cs =
  match solve ?config cs with Sat _ -> true | Unsat | Unknown -> false

(** Feasible concrete values of [e] under [constraints], at most
    [max_candidates] of them, found by iteratively excluding each model
    value.  Returns [Error `Unknown] if the solver cannot decide, and the
    (possibly empty) complete list otherwise. *)
let concretize ?config ~constraints ~max_candidates e =
  let rec loop acc n constraints =
    if n = 0 then Ok (List.rev acc)
    else
      match solve ?config constraints with
      | Unsat -> Ok (List.rev acc)
      | Unknown -> if acc = [] then Error `Unknown else Ok (List.rev acc)
      | Sat m -> (
          match Model.eval m e with
          | v -> loop (v :: acc) (n - 1) (Expr.ne e (Expr.const v) :: constraints)
          | exception Division_by_zero -> Error `Unknown)
  in
  loop [] max_candidates constraints

(** Whether [e] has a single feasible value under [constraints]; returns it. *)
let unique_value ?config ~constraints e =
  match concretize ?config ~constraints ~max_candidates:2 e with
  | Ok [ v ] -> Some v
  | Ok _ | Error _ -> None

let pp_result ppf = function
  | Sat m -> Fmt.pf ppf "sat %a" Model.pp m
  | Unsat -> Fmt.string ppf "unsat"
  | Unknown -> Fmt.string ppf "unknown"
