(** Symbolic expressions.

    The paper's symbolic values (§2.3): an expression is either a concrete
    word, a symbolic variable ("stand-in for any possible value"), or an
    operator applied to sub-expressions.  The operators are exactly MiniIR's
    ALU operators, so forward symbolic execution of a block is a direct
    re-interpretation of its instructions over this type. *)

(** A symbolic variable.  [name] records provenance for humans (e.g.
    ["pre:r3"], ["input:net"]); identity is [id]. *)
type sym = { id : int; name : string }

type t =
  | Const of int
  | Sym of sym
  | Binop of Res_ir.Instr.binop * t * t
  | Unop of Res_ir.Instr.unop * t
  | Ite of t * t * t  (** if-then-else on a nonzero condition *)

(** Allocate a fresh symbolic variable, globally unique for the process. *)
val fresh_sym : string -> sym

(** [fresh name] is [Sym (fresh_sym name)]. *)
val fresh : string -> t

(** Reset the id counter — test isolation only. *)
val reset_counter_for_tests : unit -> unit

(** Current value of the fresh-variable counter (persisted in search
    checkpoints so a resumed run re-mints identical ids). *)
val counter_value : unit -> int

(** Restore the fresh-variable counter from a checkpoint. *)
val restore_counter : int -> unit

val const : int -> t
val zero : t
val one : t
val is_const : t -> bool
val const_val : t -> int option

(** {2 Shorthand constructors} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val logical_not : t -> t

(** Sets of symbolic variables, ordered by id. *)
module Sym_set : Set.S with type elt = sym

(** Free symbolic variables of an expression. *)
val syms : t -> Sym_set.t

(** Whether the expression contains no symbolic variables. *)
val is_concrete : t -> bool

(** [subst f e] replaces each variable [s] by [f s] ([Sym s] keeps it). *)
val subst : (sym -> t) -> t -> t

(** [subst_sym s v e] replaces variable [s] by the constant [v]. *)
val subst_sym : sym -> int -> t -> t

(** Evaluate under a total assignment.
    @raise Division_by_zero when the assignment divides by zero — callers
    (the solver) treat such candidates as failing. *)
val eval : (sym -> int) -> t -> int

(** Structural size — a solver heuristic and test aid. *)
val size : t -> int

(** Structural equality (variables by id). *)
val equal : t -> t -> bool

(** Total structural order. *)
val compare_expr : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
