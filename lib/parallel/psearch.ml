(** Sharded backward search: split one search tree across workers and
    merge the pieces back into the serial answer, byte for byte.

    The coordinator runs {!Res_core.Search.search} with [~shard_at d]: the
    search proceeds normally until a subtree root reaches depth [d], where
    instead of visiting it the engine records the would-be visit as an
    independent work unit and moves on.  Alongside its own shallow
    emissions it records the {e plan} — the exact DFS interleaving of its
    emissions and the skipped subtrees.  Each unit ships to a worker as a
    one-item suspended frontier (the checkpoint wire format); the worker
    resumes it to exhaustion and returns the subtree's suffixes in DFS
    emission order.  Replaying the plan with the workers' answers
    substituted in reconstructs the serial emission order exactly, and the
    [max_suffixes] cap is reapplied at the merge, so the merged result is
    byte-identical to the serial one for any worker count and either
    backend.

    Budgets: each unit gets [remaining fuel / n_units] fuel (the serial
    search's global fuel pool cannot be shared across processes; slicing
    is conservative for any single unit but the slices sum to the pool)
    and the coordinator's remaining wall-clock, so all workers' deadlines
    expire near the same absolute instant.  A unit that trips its slice
    reports [complete = false] exactly like a serial search would. *)

module Io = Res_vm.Coredump_io
open Res_core

(** A merged parallel search result plus pool/runtime telemetry. *)
type t = {
  result : Search.result;
  units : int;  (** subtree work units farmed out *)
  workers : int;
  retries : int;  (** units rescheduled after a worker death *)
  lost : int;  (** units with no result after all attempts *)
  respawns : int;  (** replacement workers forked after a death *)
  worker_queries : int;  (** solver queries made inside workers *)
}

let ckpt_path dir idx = Filename.concat dir (Fmt.str "unit-%d.wrk" idx)

(** Worker body: decode a unit, resume its one-item frontier under its
    budget slice, reply with the subtree's suffixes and counters.  With
    [ckpt_dir], the worker checkpoints its suspended frontier every few
    nodes so a rescheduled attempt resumes instead of restarting; the
    fresh-symbol counter rides along because frontier snapshots bake in
    symbol ids that a restarted worker must not re-mint. *)
let run_unit ~ctx ~dump ?ckpt_dir payload =
  match Wire.decode_unit payload with
  | Error m -> failwith m
  | Ok u ->
      (match u.Wire.u_restore with
      | Some n -> Res_solver.Expr.restore_counter n
      | None -> ());
      let q0 = Res_solver.Solver.queries () in
      let budget =
        Budget.create
          ?wall_seconds:
            (Option.map (fun ms -> float_of_int ms /. 1000.) u.Wire.u_wall_ms)
          ?fuel:u.Wire.u_fuel ()
      in
      let tick = ref 0 in
      let on_node =
        Option.map
          (fun dir ->
            let path = ckpt_path dir u.Wire.u_index in
            fun (s : Search.suspended) ->
              incr tick;
              if !tick mod 32 = 0 then
                let enc =
                  Wire.encode_unit_ckpt
                    {
                      Wire.c_expr_counter = Res_solver.Expr.counter_value ();
                      c_suspended = s;
                    }
                in
                try Io.write_file_atomic path enc with Sys_error _ -> ())
          ckpt_dir
      in
      let r =
        Search.search ~config:u.Wire.u_config ~budget ~resume:u.Wire.u_suspended
          ?on_node ctx dump
      in
      Wire.encode_result
        {
          Wire.r_index = u.Wire.u_index;
          r_complete = r.Search.complete;
          r_exhausted = r.Search.exhausted;
          r_nodes = r.Search.stats.Search.nodes;
          r_candidates = r.Search.stats.Search.candidates;
          r_feasible = r.Search.stats.Search.feasible;
          r_emitted = r.Search.stats.Search.emitted;
          r_pruned = r.Search.stats.Search.pruned;
          r_reversed = r.Search.stats.Search.reversed;
          r_slice_skipped = r.Search.stats.Search.slice_skipped;
          r_queries = Res_solver.Solver.queries () - q0;
          r_suffixes = r.Search.suffixes;
        }

(** [search ~prog ctx dump] — the drop-in parallel replacement for
    {!Res_core.Search.search}.  [prog] must be the program [ctx] was built
    from: workers rebuild their own contexts (the context's lazy static
    summaries are not shareable across domains or processes).  [kill_unit]
    is the fault-injection hook, forwarded to the pool. *)
let search ?(config = Search.default_config) ?budget ?(jobs = 1)
    ?(shard_depth = 2) ?backend ?ckpt_dir ?kill_unit ~prog ctx
    (dump : Res_vm.Coredump.t) : t =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let shard_depth = max 1 shard_depth in
  let r0 = Search.search ~config ~budget ~shard_at:shard_depth ctx dump in
  let serial result =
    {
      result = { result with Search.plan = []; shards = [] };
      units = 0;
      workers = 0;
      retries = 0;
      lost = 0;
      respawns = 0;
      worker_queries = 0;
    }
  in
  if r0.Search.shards = [] then
    (* Nothing reached the shard depth: the coordinator's own emissions
       ARE the serial result (every plan entry is [P_emit]). *)
    serial r0
  else if r0.Search.exhausted <> None then
    (* The budget tripped during the split itself; farming the collected
       shards would spend budget we no longer have.  Return the partial
       answer with the serial meaning: truncated, resumable. *)
    serial { r0 with Search.complete = false }
  else begin
    let shards = Array.of_list r0.Search.shards in
    let n_units = Array.length shards in
    let fuel_slice =
      Option.map (fun f -> max 1 (f / n_units)) (Budget.remaining_fuel budget)
    in
    let wall_ms =
      Option.map
        (fun s -> int_of_float (ceil (s *. 1000.)))
        (Budget.remaining_seconds budget)
    in
    let unit_of i restore suspended =
      Wire.encode_unit
        {
          Wire.u_index = i;
          u_config = config;
          u_fuel = fuel_slice;
          u_wall_ms = wall_ms;
          u_restore = restore;
          u_suspended = suspended;
        }
    in
    let fresh_unit i item =
      unit_of i None
        {
          Search.s_frontier = [ item ];
          s_nodes = 0;
          s_candidates = 0;
          s_feasible = 0;
          s_emitted = 0;
          s_pruned = 0;
          s_reversed = 0;
          s_slice_skipped = 0;
          s_next_id = 0;
          s_out = [];
        }
    in
    let payloads = List.mapi fresh_unit r0.Search.shards in
    (* Workers rebuild a private context from the program; the caller's
       tuning (symexec/solver configs) carries over, but its lazy static
       summaries and interrupt closure do not — each worker forces its
       own, and [Search.search] installs the budget interrupt itself. *)
    let sym_config = ctx.Backstep.sym_config in
    let solver_config = ctx.Backstep.solver_config in
    let worker () =
      let wctx = Backstep.make_ctx ~sym_config ~solver_config prog in
      fun payload -> run_unit ~ctx:wctx ~dump ?ckpt_dir payload
    in
    let on_retry =
      Option.map
        (fun dir i payload ->
          match Io.read_file (ckpt_path dir i) with
          | Error _ -> payload
          | Ok s -> (
              match Wire.decode_unit_ckpt s with
              | Error _ -> payload
              | Ok c ->
                  unit_of i (Some c.Wire.c_expr_counter) c.Wire.c_suspended))
        ckpt_dir
    in
    let replies, pstats =
      Pool.run ?backend ?kill_unit ?on_retry ~jobs ~worker payloads
    in
    (match ckpt_dir with
    | Some dir ->
        for i = 0 to n_units - 1 do
          try Sys.remove (ckpt_path dir i) with Sys_error _ -> ()
        done
    | None -> ());
    let unit_res = Array.make n_units None in
    let decode_lost = ref 0 in
    List.iter
      (fun reply ->
        match Option.map Wire.decode_result reply with
        | Some (Ok ur) when ur.Wire.r_index >= 0 && ur.Wire.r_index < n_units
          ->
            unit_res.(ur.Wire.r_index) <- Some ur
        | Some (Error _) -> incr decode_lost
        | _ -> ())
      replies;
    (* Plan replay: walk the recorded interleaving, drawing from the
       coordinator's own suffix queue on [P_emit] and from unit [i]'s
       result on [P_shard i], reapplying the global [max_suffixes] cap. *)
    let out = ref [] in
    let count = ref 0 in
    let push s =
      if !count < config.Search.max_suffixes then begin
        out := s :: !out;
        incr count
      end
    in
    let coord = ref r0.Search.suffixes in
    List.iter
      (fun entry ->
        match entry with
        | Search.P_emit -> (
            match !coord with
            | s :: rest ->
                coord := rest;
                push s
            | [] -> ())
        | Search.P_shard i -> (
            match unit_res.(i) with
            | Some ur -> List.iter push ur.Wire.r_suffixes
            | None -> ()))
      r0.Search.plan;
    let fold f init =
      Array.fold_left
        (fun acc o -> match o with Some ur -> f acc ur | None -> acc)
        init unit_res
    in
    let stats =
      {
        Search.nodes = fold (fun a u -> a + u.Wire.r_nodes) r0.Search.stats.Search.nodes;
        candidates =
          fold (fun a u -> a + u.Wire.r_candidates) r0.Search.stats.Search.candidates;
        feasible = fold (fun a u -> a + u.Wire.r_feasible) r0.Search.stats.Search.feasible;
        emitted = !count;
        pruned = fold (fun a u -> a + u.Wire.r_pruned) r0.Search.stats.Search.pruned;
        reversed =
          fold (fun a u -> a + u.Wire.r_reversed) r0.Search.stats.Search.reversed;
        slice_skipped =
          fold
            (fun a u -> a + u.Wire.r_slice_skipped)
            r0.Search.stats.Search.slice_skipped;
      }
    in
    let all_present = Array.for_all Option.is_some unit_res in
    let complete =
      r0.Search.complete && all_present
      && Array.for_all
           (function Some ur -> ur.Wire.r_complete | None -> false)
           unit_res
    in
    let exhausted =
      fold (fun acc u -> if acc = None then u.Wire.r_exhausted else acc) None
    in
    {
      result =
        {
          Search.suffixes = List.rev !out;
          stats;
          complete;
          exhausted;
          suspended = None;
          plan = [];
          shards = [];
        };
      units = n_units;
      workers = pstats.Pool.p_workers;
      retries = pstats.Pool.p_retries;
      lost = pstats.Pool.p_lost + !decode_lost;
      respawns = pstats.Pool.p_respawns;
      worker_queries = fold (fun a u -> a + u.Wire.r_queries) 0;
    }
  end
