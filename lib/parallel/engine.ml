(** Parallel analysis engine: {!Res_core.Res.analyze} with every per-depth
    search replaced by the sharded {!Psearch}.  The deepening schedule,
    escalation, replay, and classification all stay in [Res] — only the
    search primitive is swapped — so outcomes are byte-identical to the
    serial engine's (same reports, same order) for any worker count. *)

open Res_core

(** Aggregated pool telemetry across every search the analysis ran. *)
type stats = {
  e_jobs : int;
  e_backend : Pool.backend;
  e_units : int;
  e_retries : int;
  e_lost : int;
  e_respawns : int;
  e_worker_queries : int;
}

(** [analyze ~prog ctx dump] — parallel drop-in for
    {!Res_core.Res.analyze}.  [jobs] is the worker count (values [< 2]
    still go through the sharding machinery on one worker — useful for
    equivalence tests — use the serial engine to avoid it entirely);
    [shard_depth] is where subtrees split off; [backend] defaults to
    {!Pool.default_backend}.  [ckpt_dir] enables per-unit worker crash
    checkpoints (fork backend).  Checkpoint/resume of the {e analysis}
    is a serial-engine feature: this engine rejects it by construction
    ([Res.analyze_with] passes no resume state). *)
let analyze ?(config = Res.default_config) ?budget ?(jobs = 1)
    ?(shard_depth = 2) ?backend ?ckpt_dir ?kill_unit ~prog ctx
    (dump : Res_vm.Coredump.t) =
  let backend = match backend with Some b -> b | None -> Pool.default_backend () in
  let units = ref 0 in
  let retries = ref 0 in
  let lost = ref 0 in
  let respawns = ref 0 in
  let wq = ref 0 in
  let search_fn ~config ~budget ~resume ~on_node ctx dump =
    ignore on_node;
    (match resume with
    | Some _ ->
        invalid_arg "Res_parallel.Engine: cannot resume into a parallel search"
    | None -> ());
    let r =
      Psearch.search ~config ~budget ~jobs ~shard_depth ~backend ?ckpt_dir
        ?kill_unit ~prog ctx dump
    in
    units := !units + r.Psearch.units;
    retries := !retries + r.Psearch.retries;
    lost := !lost + r.Psearch.lost;
    respawns := !respawns + r.Psearch.respawns;
    wq := !wq + r.Psearch.worker_queries;
    r.Psearch.result
  in
  let outcome = Res.analyze_with ~search_fn ~config ?budget ctx dump in
  ( outcome,
    {
      e_jobs = jobs;
      e_backend = backend;
      e_units = !units;
      e_retries = !retries;
      e_lost = !lost;
      e_respawns = !respawns;
      e_worker_queries = !wq;
    } )
