(** Batch coredump triage: analyze a whole directory of dumps on a worker
    pool and cluster them by root-cause signature.

    Work division is per dump — the natural unit, since dumps are
    independent — and the wire payload is just an index into the corpus
    both sides share.  Output is a deterministic TSV: rows sorted by dump
    name (so shuffled input directories produce identical bytes), then
    cluster lines sorted by bucket.  A dump that cannot be loaded, or
    whose workers keep dying, degrades to a [failed] row instead of
    sinking the batch. *)

open Res_core

(** One triage candidate.  [it_dump] is a [result] so unloadable dumps
    flow through as rows rather than exceptions. *)
type item = {
  it_name : string;
  it_prog : Res_ir.Prog.t;
  it_dump : (Res_vm.Coredump.t, string) result;
}

type row = {
  row_name : string;
  row_outcome : string;  (** complete | partial | failed *)
  row_bucket : string;
  row_cause : string;
  row_nodes : int;
  row_pruned : int;
}

type t = {
  rows : row list;  (** sorted by dump name *)
  clusters : (string * string list) list;  (** bucket -> member names, sorted *)
  tsv : string;
  workers : int;
  retries : int;
  lost : int;
  respawns : int;  (** replacement workers forked after a death *)
  worker_queries : int;
  cache_hits : int;  (** rows served from the result cache, not analyzed *)
}

let tsv_field s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let render rows clusters =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Fmt.str "dump\t%s\t%s\t%s\t%s\n" (tsv_field r.row_name)
           (tsv_field r.row_outcome) (tsv_field r.row_bucket)
           (tsv_field r.row_cause)))
    rows;
  List.iter
    (fun (bucket, names) ->
      Buffer.add_string b
        (Fmt.str "cluster\t%s\t%d\t%s\n" (tsv_field bucket)
           (List.length names)
           (tsv_field (String.concat "," names))))
    clusters;
  Buffer.contents b

(** [run items] triages every item on [jobs] workers.  [budget_wall] /
    [budget_fuel] bound each {e dump}'s analysis separately (a budget
    cannot be shared across processes, and per-dump bounds are what batch
    triage wants: one pathological dump degrades to [partial] without
    starving its neighbours).  With [?cache], each loadable dump is
    looked up in the content-addressed result cache first and only
    misses are farmed to the pool; fresh results are stored back
    best-effort.  Cache hits reproduce the exact row an analysis would
    have produced, so the TSV is byte-identical warm or cold. *)
let run ?(config = Res.default_config) ?budget_wall ?budget_fuel ?(jobs = 1)
    ?backend ?kill_unit ?attempts ?backoff_base ?backoff_cap ?cache items =
  let module Cache = Res_cache.Cache in
  let items =
    List.sort (fun a b -> compare a.it_name b.it_name) items |> Array.of_list
  in
  let n = Array.length items in
  (* Everything that can change a row is folded into the cache key:
     program and dump bytes plus this config/budget rendering. *)
  let config_key =
    let s = config.Res.search in
    Cache.row_config ~wall:budget_wall ~fuel:budget_fuel
      ~engine:
        (Fmt.str "batch %d %d %d %b %b %b %d %b %d" s.Search.max_segments
           s.max_suffixes s.max_nodes s.use_breadcrumbs s.static_prune
           s.reverse_exec config.determinism_runs config.stop_at_first_cause
           config.max_attempts)
  in
  let prog_text =
    (* items overwhelmingly share one program; memoize its rendering *)
    let last = ref None in
    fun p ->
      match !last with
      | Some (p', s) when p' == p -> s
      | _ ->
          let s = Res_ir.Prog.to_string p in
          last := Some (p, s);
          s
  in
  let keys = Array.make n "" in
  let cached = Array.make n None in
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i it ->
          match it.it_dump with
          | Error _ -> ()
          | Ok d ->
              let k =
                Cache.key ~prog:(prog_text it.it_prog)
                  ~dump:(Res_vm.Coredump_io.to_string d) ~config:config_key
              in
              keys.(i) <- k;
              cached.(i) <- Option.bind (Cache.find c k) Cache.decode_row)
        items);
  let farm =
    (* only loadable dumps the cache could not answer go to the pool *)
    List.filter
      (fun i -> Result.is_ok items.(i).it_dump && cached.(i) = None)
      (List.init n Fun.id)
  in
  let worker () =
    fun payload ->
      let i = int_of_string payload in
      let it = items.(i) in
      let dump =
        match it.it_dump with Ok d -> d | Error _ -> assert false
      in
      let q0 = Res_solver.Solver.queries () in
      let budget =
        match (budget_wall, budget_fuel) with
        | None, None -> None
        | w, f -> Some (Budget.create ?wall_seconds:w ?fuel:f ())
      in
      let tr =
        try Res_usecases.Triage.triage_one ~config ?budget it.it_prog dump
        with exn ->
          {
            Res_usecases.Triage.tr_outcome = "failed";
            tr_timeout = false;
            tr_bucket = "analysis-error";
            tr_cause = Printexc.to_string exn;
            tr_nodes = 0;
            tr_pruned = 0;
          }
      in
      Wire.encode_batch
        {
          Wire.b_index = i;
          b_outcome = tr.Res_usecases.Triage.tr_outcome;
          b_bucket = tr.Res_usecases.Triage.tr_bucket;
          b_cause = tr.Res_usecases.Triage.tr_cause;
          b_nodes = tr.Res_usecases.Triage.tr_nodes;
          b_pruned = tr.Res_usecases.Triage.tr_pruned;
          b_queries = Res_solver.Solver.queries () - q0;
        }
  in
  let replies, pstats =
    Pool.run ?backend ?kill_unit ?attempts ?backoff_base ?backoff_cap ~jobs
      ~worker
      (List.map string_of_int farm)
  in
  let triaged = Array.make n None in
  List.iter
    (fun reply ->
      match Option.map Wire.decode_batch reply with
      | Some (Ok b) when b.Wire.b_index >= 0 && b.Wire.b_index < n ->
          triaged.(b.Wire.b_index) <- Some b
      | _ -> ())
    replies;
  (* store fresh verdicts back (best-effort; failures leave the entry
     cold, they never fail the batch) *)
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i b ->
          match b with
          | Some b when keys.(i) <> "" && cached.(i) = None ->
              Cache.store c keys.(i)
                (Cache.encode_row
                   {
                     Cache.c_outcome = b.Wire.b_outcome;
                     c_timeout = false;
                     c_bucket = b.Wire.b_bucket;
                     c_cause = b.Wire.b_cause;
                     c_nodes = b.Wire.b_nodes;
                     c_pruned = b.Wire.b_pruned;
                     c_queries = b.Wire.b_queries;
                   })
          | _ -> ())
        triaged);
  let rows =
    List.init n (fun i ->
        let it = items.(i) in
        match (it.it_dump, cached.(i), triaged.(i)) with
        | Error msg, _, _ ->
            {
              row_name = it.it_name;
              row_outcome = "failed";
              row_bucket = "dump-error";
              row_cause = msg;
              row_nodes = 0;
              row_pruned = 0;
            }
        | Ok _, Some r, _ ->
            (* served from the cache: the exact row the analysis produced *)
            {
              row_name = it.it_name;
              row_outcome = r.Cache.c_outcome;
              row_bucket = r.Cache.c_bucket;
              row_cause = r.Cache.c_cause;
              row_nodes = r.Cache.c_nodes;
              row_pruned = r.Cache.c_pruned;
            }
        | Ok _, None, None ->
            (* every attempt died with the worker *)
            {
              row_name = it.it_name;
              row_outcome = "failed";
              row_bucket = "worker-lost";
              row_cause = "";
              row_nodes = 0;
              row_pruned = 0;
            }
        | Ok _, None, Some b ->
            {
              row_name = it.it_name;
              row_outcome = b.Wire.b_outcome;
              row_bucket = b.Wire.b_bucket;
              row_cause = b.Wire.b_cause;
              row_nodes = b.Wire.b_nodes;
              row_pruned = b.Wire.b_pruned;
            })
  in
  let clusters =
    Res_usecases.Triage.bucket ~key:(fun r -> r.row_bucket) rows
    |> List.map (fun (k, rs) -> (k, List.map (fun r -> r.row_name) rs))
  in
  let worker_queries =
    Array.fold_left
      (fun a o -> match o with Some b -> a + b.Wire.b_queries | None -> a)
      0 triaged
  in
  {
    rows;
    clusters;
    tsv = render rows clusters;
    workers = pstats.Pool.p_workers;
    retries = pstats.Pool.p_retries;
    lost = pstats.Pool.p_lost;
    respawns = pstats.Pool.p_respawns;
    worker_queries;
    cache_hits =
      Array.fold_left (fun a c -> if c <> None then a + 1 else a) 0 cached;
  }

(** Aggregate node/prune work across rows, for [--stats]. *)
let total_nodes t = List.fold_left (fun a r -> a + r.row_nodes) 0 t.rows
let total_pruned t = List.fold_left (fun a r -> a + r.row_pruned) 0 t.rows

(** Every dump in the batch degraded to a [failed] row — the signal an
    orchestrator gates on (bad program, poisoned dump directory, or a
    worker pool that cannot keep a child alive). *)
let all_failed t =
  t.rows <> [] && List.for_all (fun r -> String.equal r.row_outcome "failed") t.rows
