(** Generic worker pool over string request/reply pairs.

    Two interchangeable backends:

    - [Domains]: OCaml 5 domains sharing the coordinator's heap.  Work
      units are pulled off an atomic index; results land in a shared
      array.  Cheapest, but a worker crash takes the process with it.
    - [Forked]: one [Unix.fork]'d child per worker slot, length-prefixed
      frames over pipes.  Slower (payloads are serialized), but a worker
      that dies — OOM-killed, segfaulted, or SIGKILLed by the fault
      injector — is detected by pipe EOF and its in-flight unit is
      rescheduled on a fresh child (up to {!max_attempts} tries).

    The pool itself knows nothing about RES: callers hand it a worker
    {e factory} [unit -> string -> string] (invoked once per worker, so
    each worker builds private mutable state — notably its own
    [Backstep.ctx], whose lazy static summaries must not be forced from
    two domains at once) and a list of request payloads; it returns one
    reply slot per request, [None] where every attempt failed. *)

type backend = Domains | Forked

let backend_name = function Domains -> "domains" | Forked -> "fork"

(** Runtime backend selection: the [RES_PARALLEL_BACKEND] environment
    variable ("domains" / "fork") wins; otherwise [Domains] when the
    runtime reports more than one core, else [Forked] (a uniprocessor
    gains nothing from domains, and fork at least isolates faults). *)
let default_backend () =
  match Sys.getenv_opt "RES_PARALLEL_BACKEND" with
  | Some "fork" -> Forked
  | Some "domains" -> Domains
  | _ -> if Domain.recommended_domain_count () > 1 then Domains else Forked

(** How a run went, beyond the replies themselves. *)
type stats = {
  p_workers : int;  (** worker slots actually used *)
  p_retries : int;  (** units rescheduled after a worker death (fork only) *)
  p_lost : int;  (** units with no reply after all attempts *)
  p_respawns : int;  (** replacement workers forked after a death (fork only) *)
}

(** Default attempts per unit before it is abandoned as lost. *)
let default_attempts = 3

(** Default backoff before respawning a dead worker: [base * 2^deaths],
    capped.  Immediate respawn (the old behavior) amplifies a persistent
    failure — a worker that dies on startup would be re-forked in a hot
    loop; the capped exponential delay keeps the coordinator responsive
    while starving a crash loop of fuel. *)
let default_backoff_base = 0.005

let default_backoff_cap = 0.25

(** The delay before the [deaths]-th respawn (0-based). *)
let backoff_delay ~base ~cap deaths =
  if base <= 0. then 0.
  else min cap (base *. (2. ** float_of_int (min deaths 30)))

(* The OCaml 5 runtime forbids [Unix.fork] once any domain has ever been
   spawned in the process.  The two backends therefore cannot be freely
   interleaved: every [Forked] run must precede the first [Domains] run.
   A normal CLI invocation uses exactly one backend so never trips this;
   test and selftest drivers order their fork phases first.  We track the
   transition so a late fork fails with a diagnosis instead of a cryptic
   runtime error. *)
let domains_spawned = ref false

(* --- domains backend ------------------------------------------------ *)

let run_domains ~jobs ~worker units =
  let units = Array.of_list units in
  let n = Array.length units in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let lost = Atomic.make 0 in
  let body () =
    let f = worker () in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f units.(i) with
        | reply -> results.(i) <- Some reply
        | exception _ -> ignore (Atomic.fetch_and_add lost 1));
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs n) in
  (* The coordinator's own domain is worker zero; extra domains that fail
     to spawn (runtime limits) are simply dropped — the remaining workers
     drain the whole queue regardless. *)
  let doms =
    List.filter_map
      (fun _ ->
        try
          let d = Domain.spawn body in
          domains_spawned := true;
          Some d
        with _ -> None)
      (List.init (jobs - 1) Fun.id)
  in
  body ();
  List.iter Domain.join doms;
  ( Array.to_list results,
    {
      p_workers = 1 + List.length doms;
      p_retries = 0;
      p_lost = Atomic.get lost;
      p_respawns = 0;
    } )

(* --- forked backend ------------------------------------------------- *)

(* Frame I/O lives in {!Wire} (10-digit length prefix + payload), shared
   with the triage daemon's socket protocol. *)

let write_frame = Wire.write_frame
let read_frame = Wire.read_frame

(* A child serves requests until its request pipe hits EOF.  A worker
   factory or per-unit exception becomes an "ex"-prefixed reply — a
   deterministic failure the parent must not retry (same input, same
   crash); only a silent death (EOF without reply) triggers rescheduling. *)
let child_serve req_r res_w worker =
  let f = try Ok (worker ()) with exn -> Error (Printexc.to_string exn) in
  let reply payload =
    match f with
    | Error e -> "ex" ^ e
    | Ok f -> (
        match f payload with
        | r -> "ok" ^ r
        | exception exn -> "ex" ^ Printexc.to_string exn)
  in
  let rec loop () =
    match read_frame req_r with
    | None -> ()
    | Some payload ->
        write_frame res_w (reply payload);
        loop ()
  in
  loop ()

type wrk = {
  pid : int;
  req_w : Unix.file_descr;
  res_r : Unix.file_descr;
  mutable inflight : int option;  (** unit index awaiting a reply *)
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run_forked ?kill_unit ?on_retry ?(attempts = default_attempts)
    ?(backoff_base = default_backoff_base) ?(backoff_cap = default_backoff_cap)
    ~jobs ~worker units =
  let max_attempts = max 1 attempts in
  let units = Array.of_list units in
  let n = Array.length units in
  let payloads = Array.copy units in
  let results = Array.make n None in
  let attempts = Array.make n 0 in
  let retries = ref 0 and lost = ref 0 in
  let deaths = ref 0 and respawns = ref 0 in
  let remaining = ref n in
  let pending = Queue.create () in
  Array.iteri (fun i _ -> Queue.add i pending) units;
  let workers = ref [] in
  let kill_armed = ref kill_unit in
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let spawn () =
    (* Flush before forking so buffered output is not emitted twice, and
       close every other worker's pipe ends in the child so a dead parent
       or sibling cannot keep a pipe artificially open. *)
    flush stdout;
    flush stderr;
    let req_r, req_w = Unix.pipe () in
    let res_r, res_w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        close_quiet req_w;
        close_quiet res_r;
        List.iter
          (fun w ->
            close_quiet w.req_w;
            close_quiet w.res_r)
          !workers;
        (try child_serve req_r res_w worker with _ -> ());
        Unix._exit 0
    | pid ->
        close_quiet req_r;
        close_quiet res_w;
        let w = { pid; req_w; res_r; inflight = None } in
        workers := w :: !workers;
        w
  in
  let rec dispatch w =
    match Queue.take_opt pending with
    | None -> close_quiet w.req_w (* retire: child exits on EOF *)
    | Some i -> (
        w.inflight <- Some i;
        match write_frame w.req_w payloads.(i) with
        | () -> (
            match !kill_armed with
            | Some k when k = i ->
                kill_armed := None;
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
            | _ -> ())
        | exception Unix.Unix_error _ -> handle_death w)
  (* A worker died (EOF on its reply pipe, or EPIPE writing to it).  Its
     in-flight unit goes back on the queue — transformed by [on_retry],
     which lets callers resume from a unit checkpoint instead of from
     scratch — unless it has burned all its attempts.  The replacement is
     forked after a capped exponential backoff so a crash-looping worker
     cannot pin the coordinator in a fork storm. *)
  and handle_death w =
    workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
    close_quiet w.req_w;
    close_quiet w.res_r;
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    (match w.inflight with
    | None -> ()
    | Some i ->
        w.inflight <- None;
        attempts.(i) <- attempts.(i) + 1;
        if attempts.(i) >= max_attempts then begin
          incr lost;
          decr remaining
        end
        else begin
          incr retries;
          (match on_retry with
          | Some f -> payloads.(i) <- f i payloads.(i)
          | None -> ());
          Queue.add i pending
        end);
    if not (Queue.is_empty pending) then begin
      let delay = backoff_delay ~base:backoff_base ~cap:backoff_cap !deaths in
      incr deaths;
      if delay > 0. then Unix.sleepf delay;
      incr respawns;
      dispatch (spawn ())
    end
    else incr deaths
  in
  let find_worker fd = List.find (fun w -> w.res_r = fd) !workers in
  let handle_reply w reply =
    match w.inflight with
    | None -> () (* stray frame from a retired worker; ignore *)
    | Some i ->
        w.inflight <- None;
        let tag = if String.length reply >= 2 then String.sub reply 0 2 else ""
        in
        (if String.equal tag "ok" then
           results.(i) <- Some (String.sub reply 2 (String.length reply - 2))
         else incr lost);
        decr remaining;
        dispatch w
  in
  let finalize () =
    List.iter (fun w -> close_quiet w.req_w) !workers;
    List.iter
      (fun w ->
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        close_quiet w.res_r)
      !workers;
    workers := [];
    ignore (Sys.signal Sys.sigpipe old_sigpipe)
  in
  Fun.protect ~finally:finalize (fun () ->
      let jobs = max 1 (min jobs n) in
      for _ = 1 to jobs do
        dispatch (spawn ())
      done;
      while !remaining > 0 do
        match !workers with
        | [] ->
            (* Every worker died; if work remains queued, keep going on a
               fresh child (inflight units were requeued or written off by
               [handle_death], so the queue is the whole remainder). *)
            if Queue.is_empty pending then remaining := 0
            else begin
              incr respawns;
              dispatch (spawn ())
            end
        | ws -> (
            let fds = List.map (fun w -> w.res_r) ws in
            match Unix.select fds [] [] (-1.0) with
            | readable, _, _ ->
                List.iter
                  (fun fd ->
                    match find_worker fd with
                    | w -> (
                        match read_frame fd with
                        | Some reply -> handle_reply w reply
                        | None -> handle_death w)
                    | exception Not_found -> ())
                  readable
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done);
  ( Array.to_list results,
    {
      p_workers = max 1 (min jobs n);
      p_retries = !retries;
      p_lost = !lost;
      p_respawns = !respawns;
    } )

(* --- entry point ---------------------------------------------------- *)

(** [run ?backend ?kill_unit ?on_retry ~jobs ~worker units] processes
    every payload in [units] on [jobs] workers and returns the replies in
    request order plus run {!stats}.

    [kill_unit] (fork backend only) SIGKILLs the worker right after unit
    [i] is dispatched to it — the fault-injection hook behind the
    worker-kill campaign.  [on_retry i payload] produces the payload for
    a rescheduled attempt of unit [i] (fork backend only; domains workers
    cannot die independently of the coordinator).  [attempts] bounds tries
    per unit before it is written off as lost (default
    {!default_attempts}); [backoff_base]/[backoff_cap] shape the capped
    exponential delay before a dead worker's replacement is forked. *)
let run ?backend ?kill_unit ?on_retry ?attempts ?backoff_base ?backoff_cap
    ~jobs ~worker units =
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  match backend with
  | Domains -> run_domains ~jobs ~worker units
  | Forked ->
      if !domains_spawned then
        invalid_arg
          "Res_parallel.Pool: the fork backend cannot run after the domains \
           backend has spawned workers in this process (OCaml runtime \
           restriction); run fork-backend work first";
      run_forked ?kill_unit ?on_retry ?attempts ?backoff_base ?backoff_cap
        ~jobs ~worker units
