(** Wire formats for the parallel engine.

    Everything that crosses a worker boundary — search work units, their
    results, per-unit crash checkpoints, and batch-triage rows — travels
    in the same hardened textual envelope as coredumps and checkpoints:
    versioned header plus FNV-1a footer via {!Res_vm.Coredump_io.seal},
    decoded with the shared token reader.  The payload bodies reuse the
    checkpoint format's frontier/suffix encoding ({!Res_persist.Checkpoint}
    exposes its printers), so a shard of the search frontier is literally
    a one-item [suspended] record and needs no new encoding. *)

module Io = Res_vm.Coredump_io
module Ckpt = Res_persist.Checkpoint
open Res_core

(* --- length-prefixed frames over file descriptors ------------------- *)

(* Frames are a 10-digit decimal length header followed by the payload;
   big enough for any unit, trivially resynchronizable, and a partial
   header/payload (the writer died mid-write) reads as EOF.  Shared by
   the worker pool's pipes and the triage daemon's Unix-domain sockets. *)

let rec write_all fd b off len =
  if len > 0 then
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)

let write_frame fd s =
  let b = Bytes.of_string (Printf.sprintf "%010d%s" (String.length s) s) in
  write_all fd b 0 (Bytes.length b)

(** Why a frame could not be read.  [Frame_eof] is the clean case (the
    peer closed between frames); everything else is damage worth
    reporting: a writer that died mid-frame, a corrupt or hostile length
    prefix.  Oversized prefixes are rejected {e before} allocating, so a
    corrupted header surfaces as a typed error instead of
    [Out_of_memory]. *)
type frame_error =
  | Frame_eof  (** EOF at a frame boundary *)
  | Frame_torn of string  (** the writer died mid-header or mid-payload *)
  | Frame_oversized of int  (** length prefix beyond {!max_frame_bytes} *)

let frame_error_to_string = function
  | Frame_eof -> "connection closed"
  | Frame_torn what -> Fmt.str "torn frame (%s)" what
  | Frame_oversized n -> Fmt.str "oversized frame (%d bytes > limit)" n

(** Largest payload a frame may announce (64 MiB) — far above any sealed
    unit or triage blob, far below an allocation that would take the
    process down. *)
let max_frame_bytes = 64 * 1024 * 1024

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok b
    else
      match Unix.read fd b off (n - off) with
      | 0 -> `Eof off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)
  in
  go 0

(** Read one frame, classifying every failure mode. *)
let read_frame_result fd =
  match read_exact fd 10 with
  | `Eof 0 -> Error Frame_eof
  | `Eof n -> Error (Frame_torn (Fmt.str "%d/10 header bytes" n))
  | `Err m -> Error (Frame_torn m)
  | `Ok hdr -> (
      match int_of_string_opt (Bytes.to_string hdr) with
      | None ->
          Error (Frame_torn (Fmt.str "bad length prefix %S" (Bytes.to_string hdr)))
      | Some len when len < 0 ->
          Error (Frame_torn (Fmt.str "negative length prefix %d" len))
      | Some len when len > max_frame_bytes -> Error (Frame_oversized len)
      | Some len -> (
          match read_exact fd len with
          | `Eof n -> Error (Frame_torn (Fmt.str "%d/%d payload bytes" n len))
          | `Err m -> Error (Frame_torn m)
          | `Ok b -> Ok (Bytes.to_string b)))

(** Read one frame; [None] on EOF or a torn header/payload (writer died). *)
let read_frame fd =
  match read_frame_result fd with Ok s -> Some s | Error _ -> None

(* --- shared helpers (same idiom as checkpoint.ml) ------------------- *)

let pp_bool ppf b = Fmt.int ppf (if b then 1 else 0)
let pp_int_opt ppf = function None -> Fmt.string ppf "none" | Some n -> Fmt.int ppf n

let pp_seq pp ppf l =
  Fmt.pf ppf "%d" (List.length l);
  List.iter (fun x -> Fmt.pf ppf "@,%a" pp x) l

let keyword rd expected =
  let got = Io.ident rd in
  if not (String.equal got expected) then
    Io.fail "expected %S, got %S" expected got

let bool_of rd =
  match Io.int_tok rd with
  | 0 -> false
  | 1 -> true
  | n -> Io.fail "expected boolean 0/1, got %d" n

let int_opt_of rd =
  match Io.peek rd with
  | Some (Res_ir.Parser.IDENT "none") ->
      ignore (Io.next rd);
      None
  | _ -> Some (Io.int_tok rd)

let seq_of rd f =
  let n = Res_core.Sealing.check_count ~what:"sequence" (Io.int_tok rd) in
  let rec go acc k = if k = 0 then List.rev acc else go (f rd :: acc) (k - 1) in
  go [] n

let decode ~header ~version s parse =
  match Res_core.Sealing.validate ~header:(header ^ " " ^ version) s with
  | Error e -> Error (Io.dump_error_to_string e)
  | Ok payload -> (
      let rd = { Io.toks = Res_ir.Parser.tokenize payload } in
      try
        keyword rd header;
        keyword rd version;
        Ok (parse rd)
      with
      | Io.Bad_format m -> Error m
      | exn -> Error (Printexc.to_string exn))

(* --- search work units ---------------------------------------------- *)

(** One independent subtree of the backward search: an [F_visit] collected
    at the shard depth, shipped as a one-item suspended frontier together
    with the search configuration and this unit's budget slice.
    [u_restore] carries a fresh-symbol counter to restore first — set only
    when the unit resumes from a crashed worker's checkpoint, where new
    symbol ids must not collide with ids already baked into the
    checkpointed frontier. *)
type work_unit = {
  u_index : int;
  u_config : Search.config;
  u_fuel : int option;
  u_wall_ms : int option;  (** remaining wall budget, milliseconds *)
  u_restore : int option;
  u_suspended : Search.suspended;
}

let unit_header = "resparunit"
let unit_version = "v2"

let encode_unit u =
  let c = u.u_config in
  Res_core.Sealing.seal
    (Fmt.str "@[<v>%s %s@,unit %d@,config %d %d %d %a %a %a@,budget %a %a@,restore %a@,%a@]@."
       unit_header unit_version u.u_index c.Search.max_segments c.max_suffixes
       c.max_nodes pp_bool c.use_breadcrumbs pp_bool c.static_prune pp_bool
       c.reverse_exec pp_int_opt u.u_fuel pp_int_opt u.u_wall_ms pp_int_opt
       u.u_restore Ckpt.pp_suspended u.u_suspended)

let decode_unit s =
  decode ~header:unit_header ~version:unit_version s (fun rd ->
      keyword rd "unit";
      let u_index = Io.int_tok rd in
      keyword rd "config";
      let max_segments = Io.int_tok rd in
      let max_suffixes = Io.int_tok rd in
      let max_nodes = Io.int_tok rd in
      let use_breadcrumbs = bool_of rd in
      let static_prune = bool_of rd in
      let reverse_exec = bool_of rd in
      keyword rd "budget";
      let u_fuel = int_opt_of rd in
      let u_wall_ms = int_opt_of rd in
      keyword rd "restore";
      let u_restore = int_opt_of rd in
      let u_suspended =
        match Ckpt.suspended_of rd with
        | Some s -> s
        | None -> Io.fail "work unit without a frontier"
      in
      {
        u_index;
        u_config =
          {
            Search.max_segments;
            max_suffixes;
            max_nodes;
            use_breadcrumbs;
            static_prune;
            reverse_exec;
          };
        u_fuel;
        u_wall_ms;
        u_restore;
        u_suspended;
      })

(* --- search unit results -------------------------------------------- *)

(** What a worker sends back: the subtree's suffixes in DFS emission
    order, completion/exhaustion flags, its {!Res_core.Search.stats}, and
    how many solver queries it made (domain/process-local counters cannot
    be read by the coordinator, so they travel explicitly). *)
type unit_result = {
  r_index : int;
  r_complete : bool;
  r_exhausted : Res_core.Budget.exhaustion option;
  r_nodes : int;
  r_candidates : int;
  r_feasible : int;
  r_emitted : int;
  r_pruned : int;
  r_reversed : int;
  r_slice_skipped : int;
  r_queries : int;
  r_suffixes : Suffix.t list;
}

let result_header = "resparres"
let result_version = "v2"

let pp_exhaustion_opt ppf = function
  | None -> Fmt.string ppf "none"
  | Some Budget.Deadline -> Fmt.string ppf "deadline"
  | Some Budget.Fuel -> Fmt.string ppf "fuel"

let exhaustion_opt_of rd =
  match Io.ident rd with
  | "none" -> None
  | "deadline" -> Some Budget.Deadline
  | "fuel" -> Some Budget.Fuel
  | s -> Io.fail "expected none/deadline/fuel, got %S" s

let encode_result r =
  Res_core.Sealing.seal
    (Fmt.str
       "@[<v>%s %s@,unit %d %a %a@,stats %d %d %d %d %d %d %d %d@,suffixes %a@]@."
       result_header result_version r.r_index pp_bool r.r_complete
       pp_exhaustion_opt r.r_exhausted r.r_nodes r.r_candidates r.r_feasible
       r.r_emitted r.r_pruned r.r_reversed r.r_slice_skipped r.r_queries
       (pp_seq Ckpt.pp_suffix) r.r_suffixes)

let decode_result s =
  decode ~header:result_header ~version:result_version s (fun rd ->
      keyword rd "unit";
      let r_index = Io.int_tok rd in
      let r_complete = bool_of rd in
      let r_exhausted = exhaustion_opt_of rd in
      keyword rd "stats";
      let r_nodes = Io.int_tok rd in
      let r_candidates = Io.int_tok rd in
      let r_feasible = Io.int_tok rd in
      let r_emitted = Io.int_tok rd in
      let r_pruned = Io.int_tok rd in
      let r_reversed = Io.int_tok rd in
      let r_slice_skipped = Io.int_tok rd in
      let r_queries = Io.int_tok rd in
      keyword rd "suffixes";
      let r_suffixes = seq_of rd Ckpt.suffix_of in
      {
        r_index;
        r_complete;
        r_exhausted;
        r_nodes;
        r_candidates;
        r_feasible;
        r_emitted;
        r_pruned;
        r_reversed;
        r_slice_skipped;
        r_queries;
        r_suffixes;
      })

(* --- per-unit worker checkpoints ------------------------------------ *)

(** A forked worker's periodic crash checkpoint: the suspended frontier of
    its unit plus the fresh-symbol counter at suspension.  When the worker
    dies, the rescheduled attempt resumes from here instead of replaying
    the subtree from scratch. *)
type unit_ckpt = {
  c_expr_counter : int;
  c_suspended : Search.suspended;
}

let ckpt_header = "resparckpt"
let ckpt_version = "v1"

let encode_unit_ckpt c =
  Res_core.Sealing.seal
    (Fmt.str "@[<v>%s %s@,expr %d@,%a@]@." ckpt_header ckpt_version
       c.c_expr_counter Ckpt.pp_suspended c.c_suspended)

let decode_unit_ckpt s =
  decode ~header:ckpt_header ~version:ckpt_version s (fun rd ->
      keyword rd "expr";
      let c_expr_counter = Io.int_tok rd in
      let c_suspended =
        match Ckpt.suspended_of rd with
        | Some s -> s
        | None -> Io.fail "unit checkpoint without a frontier"
      in
      { c_expr_counter; c_suspended })

(* --- batch triage rows ---------------------------------------------- *)

(** One triaged coredump, as reported by a batch worker.  The request
    direction needs no format of its own: batch payloads are indices into
    the corpus both sides share (forked children inherit it copy-on-write;
    domains read it in place). *)
type batch_result = {
  b_index : int;
  b_outcome : string;
  b_bucket : string;
  b_cause : string;
  b_nodes : int;
  b_pruned : int;
  b_queries : int;
}

let batch_header = "resbatchres"
let batch_version = "v1"

let encode_batch b =
  Res_core.Sealing.seal
    (Fmt.str "@[<v>%s %s@,row %d %S %S %S@,work %d %d %d@]@." batch_header
       batch_version b.b_index b.b_outcome b.b_bucket b.b_cause b.b_nodes
       b.b_pruned b.b_queries)

let decode_batch s =
  decode ~header:batch_header ~version:batch_version s (fun rd ->
      keyword rd "row";
      let b_index = Io.int_tok rd in
      let b_outcome = Io.string_tok rd in
      let b_bucket = Io.string_tok rd in
      let b_cause = Io.string_tok rd in
      keyword rd "work";
      let b_nodes = Io.int_tok rd in
      let b_pruned = Io.int_tok rd in
      let b_queries = Io.int_tok rd in
      { b_index; b_outcome; b_bucket; b_cause; b_nodes; b_pruned; b_queries })
