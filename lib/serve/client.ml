(** Client side of the triage daemon's socket protocol.

    Every call is guarded by a wall-clock timeout: a client of a
    resilience-oriented service must itself never hang on a daemon that
    is wedged, draining, or gone.  Failures are typed — connection
    refused, timeout, and protocol damage are distinct, because callers
    react differently to each (retry later vs. give up vs. report a
    bug). *)

module P = Protocol

type error =
  | Unreachable of string  (** connect failed: daemon not running there *)
  | Timed_out of float  (** no (complete) reply within the deadline *)
  | Closed  (** the daemon hung up mid-exchange *)
  | Bad_reply of string  (** a frame arrived but failed seal or parse *)

let error_to_string = function
  | Unreachable m -> Fmt.str "cannot reach daemon: %s" m
  | Timed_out s -> Fmt.str "timed out after %.1fs" s
  | Closed -> "daemon closed the connection"
  | Bad_reply m -> Fmt.str "bad reply: %s" m

type t = { fd : Unix.file_descr }

(** Daemon addresses are Unix socket paths by default; a [host:port]
    string (with a numeric port) addresses a TCP node daemon
    ([res node]), so every client verb works unchanged against cluster
    nodes. *)
let sockaddr_of path =
  match String.rindex_opt path ':' with
  | Some i when i > 0 && i < String.length path - 1 -> (
      let host = String.sub path 0 i in
      match int_of_string_opt (String.sub path (i + 1) (String.length path - i - 1)) with
      | Some port when port > 0 && port < 65536 -> (
          match
            try Some (Unix.inet_addr_of_string host)
            with Failure _ -> (
              try Some (Unix.gethostbyname host).Unix.h_addr_list.(0)
              with Not_found | Invalid_argument _ -> None)
          with
          | Some a -> Unix.ADDR_INET (a, port)
          | None -> Unix.ADDR_UNIX path)
      | _ -> Unix.ADDR_UNIX path)
  | _ -> Unix.ADDR_UNIX path

let connect ?(timeout = 5.0) path =
  let addr = sockaddr_of path in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  ignore timeout;
  match Unix.connect fd addr with
  | () -> Ok { fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unreachable (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  try Ok (P.write_frame t.fd (P.encode_request req))
  with Unix.Unix_error _ | Sys_error _ -> Error Closed

(* --- transient-failure retries ---------------------------------------- *)

(* Jitter desynchronizes clients that all observed the same daemon
   restart: without it they would retry in lockstep and re-create the
   very thundering herd the backoff is meant to dissipate. *)
let retry_rng = lazy (Random.State.make_self_init ())

let jittered d = d *. (0.5 +. Random.State.float (Lazy.force retry_rng) 0.5)

(** Run one connect-and-exchange attempt, retrying transient failures
    (connection refused — the daemon is restarting; the old incarnation
    hung up mid-exchange) with jittered capped exponential backoff. *)
let with_retries ?(retries = 4) ?(retry_base = 0.05) f =
  let rec go n =
    match f () with
    | Error (Unreachable _ | Closed) as e ->
        if n >= retries then e
        else begin
          Unix.sleepf
            (jittered
               (Res_parallel.Pool.backoff_delay ~base:retry_base ~cap:0.5 n));
          go (n + 1)
        end
    | r -> r
  in
  go 0

(** Wait for one reply frame, but never longer than [timeout].  The
    receive timeout is enforced with [SO_RCVTIMEO]-style select guarding:
    the frame read itself only starts once the descriptor is readable,
    and a frame the daemon began writing arrives promptly or not at
    all (same-host pipe semantics). *)
let recv ?(timeout = 30.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then Error (Timed_out timeout)
    else
      match Unix.select [ t.fd ] [] [] remaining with
      | [], _, _ -> Error (Timed_out timeout)
      | _ -> (
          match (try P.read_frame t.fd with _ -> None) with
          | None -> Error Closed
          | Some frame -> (
              match P.decode_reply frame with
              | Ok r -> Ok r
              | Error m -> Error (Bad_reply m)))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | exception Unix.Unix_error (e, _, _) ->
          Error (Bad_reply (Unix.error_message e))
  in
  wait ()

(** One-shot request/reply exchange on a fresh connection. *)
let roundtrip ?timeout path req =
  match connect path with
  | Error e -> Error e
  | Ok t ->
      let r = match send t req with Ok () -> recv ?timeout t | Error e -> Error e in
      close t;
      r

(** Submit and return the immediate admission reply ([Accepted] or a
    typed rejection) together with the live connection, on which an
    accepted request's [Result] will later be pushed.  A daemon that is
    mid-restart (connection refused, or it hung up before answering) is
    retried with jittered backoff instead of surfacing immediately. *)
let submit ?timeout ?retries ?retry_base path ~prog ~dump ?deadline_ms ?fuel () =
  with_retries ?retries ?retry_base (fun () ->
      match connect path with
      | Error e -> Error e
      | Ok t -> (
          let req =
            P.Submit
              {
                sb_prog = prog;
                sb_dump = dump;
                sb_deadline_ms = deadline_ms;
                sb_fuel = fuel;
              }
          in
          match send t req with
          | Error e ->
              close t;
              Error e
          | Ok () -> (
              match recv ?timeout t with
              | Error e ->
                  close t;
                  Error e
              | Ok reply -> Ok (t, reply))))

(** Submit and block until the terminal [Result] (or a rejection).
    Returns the admission reply and, when accepted, the result. *)
let submit_wait ?timeout ?retries ?retry_base path ~prog ~dump ?deadline_ms
    ?fuel () =
  match
    submit ?timeout ?retries ?retry_base path ~prog ~dump ?deadline_ms ?fuel ()
  with
  | Error e -> Error e
  | Ok (t, (P.Accepted _ as adm)) ->
      let r = recv ?timeout t in
      close t;
      Result.map (fun result -> (adm, Some result)) r
  | Ok (t, reply) ->
      close t;
      Ok (reply, None)

let fetch ?timeout path id = roundtrip ?timeout path (P.Fetch id)
let status ?timeout path = roundtrip ?timeout path P.Status
let drain ?timeout path = roundtrip ?timeout path P.Drain
let ping ?timeout path = roundtrip ?timeout path P.Ping

(** Poll [fetch] until the request reaches its terminal [Result], up to
    [deadline] seconds.  Transient connection failures are retried with
    jittered exponential backoff — the daemon may be mid-restart, which
    is exactly when polling matters, and its reborn incarnation must not
    be greeted by every waiting client at once. *)
let await_result ?(deadline = 30.0) ?(interval = 0.05) path id =
  let until = Unix.gettimeofday () +. deadline in
  let rec go misses =
    if Unix.gettimeofday () > until then Error (Timed_out deadline)
    else
      match fetch ~timeout:5.0 path id with
      | Ok (P.Result _ as r) -> Ok r
      | Ok (P.Unknown _ as r) -> Ok r
      | Ok _ ->
          (* still pending: steady-rate poll *)
          Unix.sleepf (jittered interval);
          go 0
      | Error (Unreachable _) | Error Closed | Error (Timed_out _) ->
          Unix.sleepf
            (jittered
               (Res_parallel.Pool.backoff_delay ~base:interval ~cap:0.5 misses));
          go (misses + 1)
      | Error e -> Error e
  in
  go 0
