(** Wire protocol of the triage daemon.

    Requests and replies travel over a Unix domain socket as
    length-prefixed frames ({!Res_parallel.Wire.write_frame} /
    [read_frame] — the same framing as the worker pool's pipes).  Each
    frame's payload is a sealed text in the envelope every RES on-disk
    artifact uses (versioned header + FNV-1a [end <lines> <checksum>]
    footer via {!Res_vm.Coredump_io.seal}), so a truncated or
    bit-corrupted frame is detected and classified, never parsed into
    nonsense.

    Program and coredump texts are embedded as {e raw length-prefixed
    blobs} ([prog <bytes>\n<raw>...]) rather than escaped string tokens:
    the blobs are full files whose bytes must round-trip exactly, and a
    byte count is robust where an escaping convention would be another
    parser to harden.  The sealed payloads double as the spool's on-disk
    format — an accepted request is journaled by writing its request
    frame verbatim, and a finished request by writing its [Result] reply
    verbatim, so recovery needs no third format. *)

module Io = Res_vm.Coredump_io

let seal = Res_core.Sealing.seal

let write_frame = Res_parallel.Wire.write_frame
let read_frame = Res_parallel.Wire.read_frame

let req_header = "ressrvreq v1"
let rep_header = "ressrvrep v1"

(** What a client asks of the daemon. *)
type request =
  | Submit of {
      sb_prog : string;  (** MiniIR program text *)
      sb_dump : string;  (** coredump text *)
      sb_deadline_ms : int option;  (** per-request wall budget *)
      sb_fuel : int option;  (** per-request fuel budget *)
    }
  | Triage of {
      tg_name : string;  (** corpus name of the dump: the unit identity *)
      tg_prog : string;  (** MiniIR program text *)
      tg_dump : string;  (** coredump text *)
      tg_deadline_ms : int option;
      tg_fuel : int option;
    }
      (** a cluster coordinator's triage unit: analyze and answer with one
          [Row] on this same connection (no spool id round-trip — the
          coordinator owns retry and identity) *)
  | Fetch of string  (** result (or progress) of an accepted request id *)
  | Status
  | Drain
  | Ping

(** What the daemon answers.  Every accepted request eventually produces
    exactly one [Result]; everything else is an immediate, typed answer —
    the protocol has no silent outcome. *)
type reply =
  | Accepted of { ac_id : string; ac_queued : int }
  | Rejected_overload of { ro_queued : int; ro_capacity : int }
      (** the bounded admission queue is full: load was shed *)
  | Rejected_breaker of { rb_signature : string; rb_retry_ms : int }
      (** the workload signature's circuit breaker is open *)
  | Rejected_draining  (** the daemon is draining; resubmit elsewhere/later *)
  | Result of {
      rs_id : string;
      rs_outcome : string;  (** {!Res_core.Res.outcome_name} *)
      rs_timeout : bool;  (** the request burned its whole budget *)
      rs_elapsed_ms : int;
      rs_body : string;  (** bit-stable report bodies *)
    }
  | Row of {
      rw_name : string;  (** unit identity, echoed from the [Triage] request *)
      rw_outcome : string;  (** {!Res_core.Res.outcome_name} *)
      rw_timeout : bool;  (** the analysis burned its whole budget *)
      rw_elapsed_ms : int;
      rw_bucket : string;
      rw_cause : string;
      rw_nodes : int;
      rw_pruned : int;
      rw_queries : int;
    }  (** terminal answer to a [Triage] unit *)
  | Pending of { pd_id : string; pd_state : string }  (** queued | running *)
  | Unknown of string
  | Status_reply of {
      st_accepted : int;  (** accepted since this process started *)
      st_completed : int;
      st_shed : int;
      st_breaker_rejected : int;
      st_recovered : int;  (** requests re-admitted from the spool at boot *)
      st_queued : int;
      st_running : int;
      st_worker_restarts : int;
      st_breakers_open : int;
      st_cache_hits : int;
          (** submissions answered from the result cache, never queued *)
      st_draining : bool;
      st_breakers : (string * string * int) list;
          (** per-workload breaker health: (signature, state name, trips) *)
    }
  | Drained of { dr_remaining : int }
  | Pong of int  (** daemon pid *)
  | Err of string

(* --- encoding -------------------------------------------------------- *)

let int_opt = function None -> "none" | Some n -> string_of_int n

let blob b tag body = Buffer.add_string b (Fmt.str "%s %d\n%s\n" tag (String.length body) body)

let encode_request = function
  | Submit { sb_prog; sb_dump; sb_deadline_ms; sb_fuel } ->
      let b = Buffer.create (String.length sb_prog + String.length sb_dump + 64) in
      Buffer.add_string b
        (Fmt.str "%s\nsubmit %s %s\n" req_header (int_opt sb_deadline_ms)
           (int_opt sb_fuel));
      blob b "prog" sb_prog;
      blob b "dump" sb_dump;
      seal (Buffer.contents b)
  | Triage { tg_name; tg_prog; tg_dump; tg_deadline_ms; tg_fuel } ->
      let b =
        Buffer.create (String.length tg_prog + String.length tg_dump + 96)
      in
      Buffer.add_string b
        (Fmt.str "%s\ntriage %s %s\n" req_header (int_opt tg_deadline_ms)
           (int_opt tg_fuel));
      blob b "name" tg_name;
      blob b "prog" tg_prog;
      blob b "dump" tg_dump;
      seal (Buffer.contents b)
  | Fetch id -> seal (Fmt.str "%s\nfetch %s\n" req_header id)
  | Status -> seal (Fmt.str "%s\nstatus\n" req_header)
  | Drain -> seal (Fmt.str "%s\ndrain\n" req_header)
  | Ping -> seal (Fmt.str "%s\nping\n" req_header)

let encode_reply = function
  | Accepted { ac_id; ac_queued } ->
      seal (Fmt.str "%s\naccepted %s %d\n" rep_header ac_id ac_queued)
  | Rejected_overload { ro_queued; ro_capacity } ->
      seal
        (Fmt.str "%s\nrejected-overload %d %d\n" rep_header ro_queued
           ro_capacity)
  | Rejected_breaker { rb_signature; rb_retry_ms } ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Fmt.str "%s\nrejected-breaker %d\n" rep_header rb_retry_ms);
      blob b "sig" rb_signature;
      seal (Buffer.contents b)
  | Rejected_draining -> seal (Fmt.str "%s\nrejected-draining\n" rep_header)
  | Result { rs_id; rs_outcome; rs_timeout; rs_elapsed_ms; rs_body } ->
      let b = Buffer.create (String.length rs_body + 96) in
      Buffer.add_string b
        (Fmt.str "%s\nresult %s %s %d %d\n" rep_header rs_id rs_outcome
           (if rs_timeout then 1 else 0)
           rs_elapsed_ms);
      blob b "body" rs_body;
      seal (Buffer.contents b)
  | Row r ->
      let b = Buffer.create (String.length r.rw_bucket + 160) in
      Buffer.add_string b
        (Fmt.str "%s\nrow %s %d %d %d %d %d\n" rep_header r.rw_outcome
           (if r.rw_timeout then 1 else 0)
           r.rw_elapsed_ms r.rw_nodes r.rw_pruned r.rw_queries);
      blob b "name" r.rw_name;
      blob b "bucket" r.rw_bucket;
      blob b "cause" r.rw_cause;
      seal (Buffer.contents b)
  | Pending { pd_id; pd_state } ->
      seal (Fmt.str "%s\npending %s %s\n" rep_header pd_id pd_state)
  | Unknown id -> seal (Fmt.str "%s\nunknown %s\n" rep_header id)
  | Status_reply s ->
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Fmt.str "%s\nstatus %d %d %d %d %d %d %d %d %d %d %d\n" rep_header
           s.st_accepted s.st_completed s.st_shed s.st_breaker_rejected
           s.st_recovered s.st_queued s.st_running s.st_worker_restarts
           s.st_breakers_open s.st_cache_hits
           (if s.st_draining then 1 else 0));
      Buffer.add_string b (Fmt.str "breakers %d\n" (List.length s.st_breakers));
      List.iter
        (fun (signature, state, trips) ->
          Buffer.add_string b (Fmt.str "b %s %d\n" state trips);
          blob b "sig" signature)
        s.st_breakers;
      seal (Buffer.contents b)
  | Drained { dr_remaining } ->
      seal (Fmt.str "%s\ndrained %d\n" rep_header dr_remaining)
  | Pong pid -> seal (Fmt.str "%s\npong %d\n" rep_header pid)
  | Err msg ->
      let b = Buffer.create (String.length msg + 64) in
      Buffer.add_string b (Fmt.str "%s\nerror\n" rep_header);
      blob b "msg" msg;
      seal (Buffer.contents b)

(* --- decoding -------------------------------------------------------- *)

(* A tiny cursor over the validated payload: whitespace-separated words
   plus raw byte-counted blobs.  Decoding failures raise internally and
   surface as [Error] from the decode entry points. *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r'

let word c =
  let n = String.length c.src in
  while c.pos < n && is_space c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos >= n then raise (Bad "unexpected end of payload");
  let start = c.pos in
  while c.pos < n && not (is_space c.src.[c.pos]) do
    c.pos <- c.pos + 1
  done;
  String.sub c.src start (c.pos - start)

let expect c w =
  let got = word c in
  if not (String.equal got w) then raise (Bad (Fmt.str "expected %S, got %S" w got))

let int_word c =
  let w = word c in
  match int_of_string_opt w with
  | Some n -> n
  | None -> raise (Bad (Fmt.str "expected an integer, got %S" w))

let int_opt_word c =
  let w = word c in
  if String.equal w "none" then None
  else
    match int_of_string_opt w with
    | Some n -> Some n
    | None -> raise (Bad (Fmt.str "expected an integer or none, got %S" w))

let bool_word c =
  match int_word c with
  | 0 -> false
  | 1 -> true
  | n -> raise (Bad (Fmt.str "expected 0/1, got %d" n))

(** [tag <bytes>\n<raw bytes>\n] — the byte count, not an escaping scheme,
    delimits the blob, so any file content round-trips. *)
let blob_word c tag =
  expect c tag;
  let len = int_word c in
  if len < 0 then raise (Bad (Fmt.str "negative %s blob length" tag));
  (* skip the single newline after the length *)
  if c.pos >= String.length c.src || c.src.[c.pos] <> '\n' then
    raise (Bad (Fmt.str "missing newline after %s length" tag));
  c.pos <- c.pos + 1;
  (* compare by subtraction on the trusted side: [c.pos + len] could
     wrap to negative for a near-max_int forged length and sail past
     the bound *)
  if len > String.length c.src - c.pos then
    raise (Bad (Fmt.str "truncated %s blob" tag));
  let body = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  body

let decode ~header s parse =
  match Res_core.Sealing.validate ~header s with
  | Error e -> Error (Io.dump_error_to_string e)
  | Ok payload -> (
      let c = { src = payload; pos = String.length header } in
      try Ok (parse c) with
      | Bad m -> Error m
      | exn -> Error (Printexc.to_string exn))

let decode_request s =
  decode ~header:req_header s (fun c ->
      match word c with
      | "submit" ->
          let sb_deadline_ms = int_opt_word c in
          let sb_fuel = int_opt_word c in
          let sb_prog = blob_word c "prog" in
          let sb_dump = blob_word c "dump" in
          Submit { sb_prog; sb_dump; sb_deadline_ms; sb_fuel }
      | "triage" ->
          let tg_deadline_ms = int_opt_word c in
          let tg_fuel = int_opt_word c in
          let tg_name = blob_word c "name" in
          let tg_prog = blob_word c "prog" in
          let tg_dump = blob_word c "dump" in
          Triage { tg_name; tg_prog; tg_dump; tg_deadline_ms; tg_fuel }
      | "fetch" -> Fetch (word c)
      | "status" -> Status
      | "drain" -> Drain
      | "ping" -> Ping
      | verb -> raise (Bad (Fmt.str "unknown request verb %S" verb)))

let decode_reply s =
  decode ~header:rep_header s (fun c ->
      match word c with
      | "accepted" ->
          let ac_id = word c in
          let ac_queued = int_word c in
          Accepted { ac_id; ac_queued }
      | "rejected-overload" ->
          let ro_queued = int_word c in
          let ro_capacity = int_word c in
          Rejected_overload { ro_queued; ro_capacity }
      | "rejected-breaker" ->
          let rb_retry_ms = int_word c in
          let rb_signature = blob_word c "sig" in
          Rejected_breaker { rb_signature; rb_retry_ms }
      | "rejected-draining" -> Rejected_draining
      | "result" ->
          let rs_id = word c in
          let rs_outcome = word c in
          let rs_timeout = bool_word c in
          let rs_elapsed_ms = int_word c in
          let rs_body = blob_word c "body" in
          Result { rs_id; rs_outcome; rs_timeout; rs_elapsed_ms; rs_body }
      | "row" ->
          let rw_outcome = word c in
          let rw_timeout = bool_word c in
          let rw_elapsed_ms = int_word c in
          let rw_nodes = int_word c in
          let rw_pruned = int_word c in
          let rw_queries = int_word c in
          let rw_name = blob_word c "name" in
          let rw_bucket = blob_word c "bucket" in
          let rw_cause = blob_word c "cause" in
          Row
            {
              rw_name;
              rw_outcome;
              rw_timeout;
              rw_elapsed_ms;
              rw_bucket;
              rw_cause;
              rw_nodes;
              rw_pruned;
              rw_queries;
            }
      | "pending" ->
          let pd_id = word c in
          let pd_state = word c in
          Pending { pd_id; pd_state }
      | "unknown" -> Unknown (word c)
      | "status" ->
          let st_accepted = int_word c in
          let st_completed = int_word c in
          let st_shed = int_word c in
          let st_breaker_rejected = int_word c in
          let st_recovered = int_word c in
          let st_queued = int_word c in
          let st_running = int_word c in
          let st_worker_restarts = int_word c in
          let st_breakers_open = int_word c in
          let st_cache_hits = int_word c in
          let st_draining = bool_word c in
          expect c "breakers";
          let n = int_word c in
          (match Res_core.Sealing.count_error ~what:"breaker" n with
          | None -> ()
          | Some reason -> raise (Bad reason));
          (* explicit loop: the cursor is stateful, so evaluation order
             must be left-to-right *)
          let rec breakers_of acc k =
            if k = 0 then List.rev acc
            else begin
              expect c "b";
              let state = word c in
              let trips = int_word c in
              let signature = blob_word c "sig" in
              breakers_of ((signature, state, trips) :: acc) (k - 1)
            end
          in
          let st_breakers = breakers_of [] n in
          Status_reply
            {
              st_accepted;
              st_completed;
              st_shed;
              st_breaker_rejected;
              st_recovered;
              st_queued;
              st_running;
              st_worker_restarts;
              st_breakers_open;
              st_cache_hits;
              st_draining;
              st_breakers;
            }
      | "drained" -> Drained { dr_remaining = int_word c }
      | "pong" -> Pong (int_word c)
      | "error" -> Err (blob_word c "msg")
      | verb -> raise (Bad (Fmt.str "unknown reply verb %S" verb)))

let pp_reply ppf = function
  | Accepted { ac_id; ac_queued } ->
      Fmt.pf ppf "accepted %s (%d queued)" ac_id ac_queued
  | Rejected_overload { ro_queued; ro_capacity } ->
      Fmt.pf ppf "rejected: overload (%d queued, capacity %d)" ro_queued
        ro_capacity
  | Rejected_breaker { rb_retry_ms; _ } ->
      Fmt.pf ppf "rejected: circuit breaker open (retry in ~%dms)" rb_retry_ms
  | Rejected_draining -> Fmt.string ppf "rejected: daemon draining"
  | Result { rs_id; rs_outcome; rs_timeout; rs_elapsed_ms; _ } ->
      Fmt.pf ppf "result %s: %s%s (%dms)" rs_id rs_outcome
        (if rs_timeout then " [budget exhausted]" else "")
        rs_elapsed_ms
  | Row r ->
      Fmt.pf ppf "row %s: %s%s → %s (%dms)" r.rw_name r.rw_outcome
        (if r.rw_timeout then " [budget exhausted]" else "")
        r.rw_bucket r.rw_elapsed_ms
  | Pending { pd_id; pd_state } -> Fmt.pf ppf "pending %s (%s)" pd_id pd_state
  | Unknown id -> Fmt.pf ppf "unknown request id %s" id
  | Status_reply s ->
      Fmt.pf ppf
        "accepted=%d completed=%d shed=%d breaker_rejected=%d recovered=%d \
         queued=%d running=%d worker_restarts=%d breakers_open=%d \
         cache_hits=%d draining=%b"
        s.st_accepted s.st_completed s.st_shed s.st_breaker_rejected
        s.st_recovered s.st_queued s.st_running s.st_worker_restarts
        s.st_breakers_open s.st_cache_hits s.st_draining;
      List.iter
        (fun (signature, state, trips) ->
          Fmt.pf ppf "@,breaker %-9s trips=%d sig=%s" state trips signature)
        s.st_breakers
  | Drained { dr_remaining } ->
      Fmt.pf ppf "draining (%d request(s) still in flight)" dr_remaining
  | Pong pid -> Fmt.pf ppf "pong (pid %d)" pid
  | Err msg -> Fmt.pf ppf "error: %s" msg
