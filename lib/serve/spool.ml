(** The daemon's durable request spool: crash-only bookkeeping.

    An accepted request exists as [<id>.req] (the submit frame's sealed
    payload, verbatim) in the spool directory {e before} the [Accepted]
    reply is sent; a finished request additionally has [<id>.res] (the
    [Result] reply's sealed payload, verbatim).  Both are written with
    {!Res_vm.Coredump_io.write_file_atomic}, which fsyncs the file and
    the directory — so "accepted" means "survives [kill -9] and power
    loss", and recovery after any crash is a directory scan:

    - a [.req] with no [.res] is in-flight work to re-run;
    - a [.req] with a [.res] is done (kept for [fetch] until pruned);
    - a [.tmp] journal is a write that died mid-flight — promoted if its
      seal validates, deleted otherwise (via
      {!Res_persist.Checkpoint.recover_journal_with}).

    There is no other daemon state on disk, which is what makes the
    restart path crash-only: the daemon never "shuts down cleanly" as far
    as the spool is concerned; every boot is a recovery. *)

module Io = Res_vm.Coredump_io

type t = { dir : string; mutable next : int }

let id_of n = Fmt.str "r%06d" n

(** Request ids are [r%06d]; accept anything matching so a spool survives
    manual pruning and future id-width changes. *)
let parse_id name =
  if String.length name > 1 && name.[0] = 'r' then
    int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None

let req_path t id = Filename.concat t.dir (id ^ ".req")
let res_path t id = Filename.concat t.dir (id ^ ".res")

let valid_with header src = Res_core.Sealing.valid ~header src

(** Journal recovery across the whole spool: for every [.tmp] sibling,
    derive its destination and promote/delete it by seal validity. *)
let recover_journals dir =
  Res_persist.Checkpoint.recover_dir dir ~valid_for:(fun dest ->
      valid_with
        (if Filename.check_suffix dest ".res" then Protocol.rep_header
         else Protocol.req_header))

(** Open (and recover) a spool directory, creating it if needed. *)
let openr dir =
  Res_core.Ioshim.mkdir_durable dir;
  recover_journals dir;
  let next =
    match Sys.readdir dir with
    | exception Sys_error _ -> 0
    | entries ->
        Array.fold_left
          (fun acc e ->
            match parse_id (Filename.remove_extension e) with
            | Some n when n >= acc -> n + 1
            | _ -> acc)
          0 entries
  in
  { dir; next }

(** Durably journal an accepted request; returns its fresh id.  Once this
    returns, the request survives any crash of the daemon. *)
let accept t ~frame =
  let id = id_of t.next in
  t.next <- t.next + 1;
  Res_core.Ioshim.write_file_atomic (req_path t id) frame;
  id

(** Durably journal a finished request's [Result] reply payload. *)
let complete t ~id ~frame =
  Res_core.Ioshim.write_file_atomic (res_path t id) frame

let read_request t id = Res_core.Ioshim.read_file (req_path t id)
let read_result t id = Res_core.Ioshim.read_file (res_path t id)

let has_request t id = Sys.file_exists (req_path t id)
let has_result t id = Sys.file_exists (res_path t id)

(** Accepted-but-unfinished ids ([.req] without [.res]), sorted — the
    work a restarted daemon re-admits. *)
let pending t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             if Filename.check_suffix e ".req" then
               let id = Filename.chop_suffix e ".req" in
               if Sys.file_exists (res_path t id) then None else Some id
             else None)
      |> List.sort compare

(** Drop a request's spool entries (used by tests and pruning). *)
let remove t id =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (req_path t id :: res_path t id
    :: (Io.journal_siblings (req_path t id) @ Io.journal_siblings (res_path t id)))
