(** The triage daemon: a long-running analysis service engineered to stay
    alive under hostile load.

    One process owns a Unix domain socket and a durable request spool
    ({!Spool}); clients submit (program, coredump) pairs and the daemon
    runs each analysis in a {e forked worker} under a wall/fuel budget.
    The design is defensive at every boundary:

    - {b Bounded admission}: at most [capacity] requests queue.  Beyond
      that, submissions get a typed [Rejected_overload] immediately —
      load is shed explicitly, never absorbed into unbounded memory or
      latency.
    - {b Circuit breakers} ({!Breaker}): a workload signature that keeps
      exhausting its budget is fast-failed with [Rejected_breaker] until
      a cooldown passes and a half-open probe succeeds.
    - {b Worker supervision}: a worker that dies (bug, OOM-kill, fault
      injection) is restarted with capped exponential backoff, up to
      [worker_attempts] tries; a worker that overstays its deadline plus
      [hard_grace] is SIGKILLed and the request is reported as a budget
      exhaustion.  Either way the request's client gets {e an answer} —
      the daemon never goes silent on an accepted request.
    - {b Crash-only recovery}: a request is journaled to the spool
      {e before} the [Accepted] reply is sent, and its result is
      journaled before it is reported completed.  A daemon that is
      SIGKILLed mid-flight re-admits every accepted-but-unfinished
      request on the next boot; completed results survive for [fetch].
    - {b Graceful drain}: SIGTERM (or a [drain] request) stops admission,
      finishes the queue, and exits 0.

    Single-threaded [select] event loop; the only concurrency is forked
    workers, each talking back over a pipe with the same length-prefixed
    frames the client socket uses. *)

module Io = Res_vm.Coredump_io
module Res = Res_core.Res
module Report = Res_core.Report
module Backstep = Res_core.Backstep
module Budget = Res_core.Budget
module Pool = Res_parallel.Pool
module P = Protocol

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** listen on [host, port] instead of the Unix socket — the
          cluster node mode ([res node]) *)
  prebound : Unix.file_descr option;
      (** an already-bound, already-listening socket to serve on (test
          harnesses bind ephemeral ports race-free and pass the fd
          through fork); overrides [tcp] and [socket_path] *)
  spool_dir : string;
  cache_dir : string option;
      (** content-addressed result cache ({!Res_cache.Cache}): a
          submission whose exact (program, dump, budgets, config) was
          answered before is served from disk without consuming a queue
          slot or a worker.  [None] disables caching. *)
  jobs : int;  (** max concurrent analysis workers *)
  capacity : int;  (** max queued (not yet running) requests *)
  default_deadline : float option;  (** seconds, when the client sets none *)
  default_fuel : int option;
  hard_grace : float;  (** extra wall beyond the deadline before SIGKILL *)
  breaker_threshold : int;
  breaker_cooldown : float;
  worker_attempts : int;  (** analysis tries per request across worker deaths *)
  backoff_base : float;
  backoff_cap : float;
  analyze_config : Res.config;
  fi_kill_workers : int list;
      (** fault injection: SIGKILL the Nth forked worker (1-based, in fork
          order) right after it starts — simulates random worker death *)
  fi_worker_delay : float;
      (** fault injection: every worker sleeps this long before analyzing —
          simulates slow analyses, so soak tests can build queue pressure
          deterministically *)
  fi_corrupt_rows : string;
      (** fault injection: [""] honest; ["name"] returns triage rows
          labelled with the wrong unit name; ["fields"] returns rows with
          plausible but fabricated verdict fields — a byzantine node, for
          campaigns that must prove the coordinator catches one *)
  log : string -> unit;
}

let default_config =
  {
    socket_path = "res-serve.sock";
    tcp = None;
    prebound = None;
    spool_dir = "res-spool";
    cache_dir = None;
    jobs = 2;
    capacity = 8;
    default_deadline = Some 30.;
    default_fuel = None;
    hard_grace = 5.;
    breaker_threshold = 3;
    breaker_cooldown = 5.;
    worker_attempts = 3;
    backoff_base = Pool.default_backoff_base;
    backoff_cap = Pool.default_backoff_cap;
    analyze_config = Res.default_config;
    fi_kill_workers = [];
    fi_worker_delay = 0.;
    fi_corrupt_rows = "";
    log = ignore;
  }

(* --- per-request state ------------------------------------------------ *)

(** What kind of answer a job owes: a full analysis report ([Result]) or
    a cluster coordinator's triage row keyed by the unit's corpus name. *)
type task = Analyze | Triage_unit of string

type job = {
  j_id : string;
  j_task : task;
  j_prog : Res_ir.Prog.t;
  j_dump : Res_vm.Coredump.t;
  j_signature : string;
  j_deadline : float option;
  j_fuel : int option;
  j_probe : bool;  (** this run is its breaker's half-open probe *)
  j_cache_key : string;
      (** content key the finished reply is stored under ([""] when the
          cache is off) *)
  j_enqueued : float;
  mutable j_attempts : int;  (** worker deaths so far *)
  mutable j_not_before : float;  (** backoff gate for the next dispatch *)
  mutable j_waiters : Unix.file_descr list;
      (** client connections awaiting this job's [Result] push *)
}

type worker = {
  w_job : job;
  w_pid : int;
  w_pipe : Unix.file_descr;  (** read end of the result pipe *)
  w_kill_at : float option;  (** hard-deadline SIGKILL backstop *)
  mutable w_hard_killed : bool;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  sig_rd : Unix.file_descr;
  sig_wr : Unix.file_descr;
  spool : Spool.t;
  cache : Res_cache.Cache.t option;
  breaker : Breaker.t;
  mutable clients : Unix.file_descr list;
  queue : job Queue.t;  (** admitted, waiting for a worker slot *)
  mutable workers : worker list;
  mutable draining : bool;
  mutable fork_count : int;  (** fault-injection ordinal *)
  (* counters for [status] *)
  mutable n_accepted : int;
  mutable n_completed : int;
  mutable n_shed : int;
  mutable n_breaker_rejected : int;
  mutable n_recovered : int;
  mutable n_restarts : int;
  mutable n_cache_hits : int;
}

let queued_count t = Queue.length t.queue
let running_count t = List.length t.workers

let find_queued t id =
  Queue.fold (fun acc j -> if String.equal j.j_id id then Some j else acc) None t.queue

let find_running t id =
  List.find_opt (fun w -> String.equal w.w_job.j_id id) t.workers

(* --- worker child ----------------------------------------------------- *)

(** The forked analysis worker.  A fresh process per request is the
    isolation boundary: a segfaulting solver, a runaway allocation, or a
    fault-injected SIGKILL takes down one request's attempt, never the
    daemon.  The symbol counter is reset so the report bodies are
    byte-identical to a serial offline [res analyze] of the same dump. *)
let worker_child cfg job wfd =
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  if cfg.fi_worker_delay > 0. then Unix.sleepf cfg.fi_worker_delay;
  Res_solver.Expr.reset_counter_for_tests ();
  let budget =
    match (job.j_deadline, job.j_fuel) with
    | None, None -> None
    | d, f -> Some (Budget.create ?wall_seconds:d ?fuel:f ())
  in
  let reply =
    match job.j_task with
    | Analyze ->
        let ctx = Backstep.make_ctx job.j_prog in
        let outcome =
          try Res.analyze ~config:cfg.analyze_config ?budget ctx job.j_dump
          with exn -> Res.Failed (Res.Internal (Printexc.to_string exn))
        in
        P.Result
          {
            rs_id = job.j_id;
            rs_outcome = Res.outcome_name outcome;
            rs_timeout = Res.is_budget_partial outcome;
            rs_elapsed_ms =
              int_of_float ((Unix.gettimeofday () -. t0) *. 1000.);
            rs_body = Report.report_list_to_string ctx (Res.analysis outcome);
          }
    | Triage_unit name ->
        let q0 = Res_solver.Solver.queries () in
        let tr =
          try
            Res_usecases.Triage.triage_one ~config:cfg.analyze_config ?budget
              job.j_prog job.j_dump
          with exn ->
            {
              Res_usecases.Triage.tr_outcome = "failed";
              tr_timeout = false;
              tr_bucket = "analysis-error";
              tr_cause = Printexc.to_string exn;
              tr_nodes = 0;
              tr_pruned = 0;
            }
        in
        P.Row
          {
            rw_name = name;
            rw_outcome = tr.Res_usecases.Triage.tr_outcome;
            rw_timeout = tr.Res_usecases.Triage.tr_timeout;
            rw_elapsed_ms =
              int_of_float ((Unix.gettimeofday () -. t0) *. 1000.);
            rw_bucket = tr.Res_usecases.Triage.tr_bucket;
            rw_cause = tr.Res_usecases.Triage.tr_cause;
            rw_nodes = tr.Res_usecases.Triage.tr_nodes;
            rw_pruned = tr.Res_usecases.Triage.tr_pruned;
            rw_queries = Res_solver.Solver.queries () - q0;
          }
  in
  (* byzantine fault injection: corrupt the honest answer just before it
     leaves the worker, so the bytes on the wire are a perfectly sealed,
     schema-valid frame whose content is a lie *)
  let reply =
    match (reply, cfg.fi_corrupt_rows) with
    | P.Row r, "name" -> P.Row { r with rw_name = r.rw_name ^ "-evil" }
    | P.Row r, "fields" ->
        P.Row
          {
            r with
            rw_bucket = "fabricated-bucket";
            rw_cause = "fabricated cause";
            rw_nodes = r.rw_nodes + 7;
          }
    | r, _ -> r
  in
  (try P.write_frame wfd (P.encode_reply reply)
   with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close wfd with Unix.Unix_error _ -> ());
  Unix._exit 0

(* --- result cache ----------------------------------------------------- *)

(** The config part of a cache key: everything beyond the raw program and
    dump bytes that can change the answer — the task kind, the
    {e effective} budgets (daemon defaults applied, so a request that
    says nothing and one that spells out the default share an entry), the
    analysis knobs, and the reply codec version (so a protocol bump turns
    old entries into honest misses). *)
let cache_config cfg ~task ~deadline_ms ~fuel =
  let wall =
    match deadline_ms with
    | Some ms -> Some (float_of_int ms /. 1000.)
    | None -> cfg.default_deadline
  in
  let fuel = match fuel with Some _ -> fuel | None -> cfg.default_fuel in
  let c = cfg.analyze_config in
  let s = c.Res.search in
  Res_cache.Cache.row_config ~wall ~fuel
    ~engine:
      (Fmt.str "%s %s %d %d %d %b %b %d %b %d" P.rep_header
         (match task with Analyze -> "serve" | Triage_unit _ -> "servetriage")
         s.Res_core.Search.max_segments s.max_suffixes s.max_nodes
         s.use_breadcrumbs s.static_prune c.determinism_runs
         c.stop_at_first_cause c.max_attempts)

let cache_key_for t ~task ~prog_text ~dump_text ~deadline_ms ~fuel =
  match t.cache with
  | None -> ""
  | Some _ ->
      Res_cache.Cache.key ~prog:prog_text ~dump:dump_text
        ~config:(cache_config t.cfg ~task ~deadline_ms ~fuel)

(** Serve a submission from the cache if its content key has a stored
    reply.  Runs on the {e raw request bytes}, before parsing and before
    every admission gate — identical bytes imply an identical answer, so
    a hit costs one [read] and never touches the queue, the breaker, or
    a worker slot.  The stored frame is identity-normalized; a [Result]
    hit is re-journaled under a fresh spool id (so [fetch] replays it
    like any computed answer), and a [Row] hit is re-labeled with this
    request's unit name so a coordinator can apply it. *)
let cache_lookup t ~task ~key =
  if String.equal key "" then None
  else
    match t.cache with
    | None -> None
    | Some c -> (
        match Res_cache.Cache.find c key with
        | None -> None
        | Some body -> (
            match (task, P.decode_reply body) with
            | Analyze, Ok (P.Result _ as r) -> Some r
            | ( Triage_unit name,
                Ok
                  (P.Row
                     {
                       rw_outcome;
                       rw_timeout;
                       rw_elapsed_ms;
                       rw_bucket;
                       rw_cause;
                       rw_nodes;
                       rw_pruned;
                       rw_queries;
                       _;
                     }) ) ->
                Some
                  (P.Row
                     {
                       rw_name = name;
                       rw_outcome;
                       rw_timeout;
                       rw_elapsed_ms;
                       rw_bucket;
                       rw_cause;
                       rw_nodes;
                       rw_pruned;
                       rw_queries;
                     })
            | _, (Ok _ | Error _) -> None))

(** Store a worker-produced terminal reply, identity-normalized (id and
    elapsed time are per-request noise, not part of the answer).
    Timed-out and synthetic replies are never cached: both describe what
    {e this} run managed, not what the inputs mean. *)
let cache_store t job (reply : P.reply) =
  match (t.cache, reply) with
  | ( Some c,
      P.Result { rs_id = _; rs_outcome; rs_timeout; rs_elapsed_ms = _; rs_body }
    )
    when (not (String.equal job.j_cache_key "")) && not rs_timeout ->
      Res_cache.Cache.store c job.j_cache_key
        (P.encode_reply
           (P.Result
              {
                rs_id = "cached";
                rs_outcome;
                rs_timeout;
                rs_elapsed_ms = 0;
                rs_body;
              }))
  | ( Some c,
      P.Row
        {
          rw_name = _;
          rw_outcome;
          rw_timeout;
          rw_elapsed_ms = _;
          rw_bucket;
          rw_cause;
          rw_nodes;
          rw_pruned;
          rw_queries;
        } )
    when (not (String.equal job.j_cache_key "")) && not rw_timeout ->
      Res_cache.Cache.store c job.j_cache_key
        (P.encode_reply
           (P.Row
              {
                rw_name = "cached";
                rw_outcome;
                rw_timeout;
                rw_elapsed_ms = 0;
                rw_bucket;
                rw_cause;
                rw_nodes;
                rw_pruned;
                rw_queries;
              }))
  | _ -> ()

(* --- result plumbing -------------------------------------------------- *)

(** Push a frame to a client, tolerating clients that vanished: a closed
    or broken connection just means the client will [fetch] the spooled
    result later. *)
let push t fd frame =
  try P.write_frame fd frame
  with Unix.Unix_error _ | Sys_error _ ->
    t.cfg.log (Fmt.str "push to departed client dropped")

(** A job reached its terminal [Result]: journal it durably, feed the
    breaker, and push it to every waiting client.  This is the {e only}
    way an accepted request leaves the daemon — every code path that
    retires a job funnels through here, which is what makes "accepted
    implies answered" an invariant rather than a hope. *)
let finish ?(store = true) t job (reply : P.reply) =
  let frame = P.encode_reply reply in
  Spool.complete t.spool ~id:job.j_id ~frame;
  if store then cache_store t job reply;
  (match reply with
  | P.Result { rs_timeout = timeout; _ } | P.Row { rw_timeout = timeout; _ } ->
      if timeout then Breaker.record_timeout t.breaker job.j_signature
      else Breaker.record_success t.breaker job.j_signature
  | _ -> ());
  List.iter (fun fd -> push t fd frame) job.j_waiters;
  job.j_waiters <- [];
  t.n_completed <- t.n_completed + 1;
  t.cfg.log (Fmt.str "finished %s" job.j_id)

(** Synthesize the terminal [Result] for a job the daemon had to give up
    on (worker died [worker_attempts] times, or blew through the hard
    deadline).  [timeout] routes the failure into the breaker as a budget
    exhaustion; otherwise it counts as an ordinary failure. *)
let finish_synthetic t job ~outcome ~timeout ~why =
  t.cfg.log (Fmt.str "synthesizing %s result for %s: %s" outcome job.j_id why);
  let elapsed_ms =
    int_of_float ((Unix.gettimeofday () -. job.j_enqueued) *. 1000.)
  in
  let reply =
    match job.j_task with
    | Analyze ->
        P.Result
          {
            rs_id = job.j_id;
            rs_outcome = outcome;
            rs_timeout = timeout;
            rs_elapsed_ms = elapsed_ms;
            rs_body = "";
          }
    | Triage_unit name ->
        (* the worker-lost bucket tells the coordinator this row is the
           node giving up, not a triage verdict: it reschedules the unit
           instead of applying the row *)
        P.Row
          {
            rw_name = name;
            rw_outcome = outcome;
            rw_timeout = timeout;
            rw_elapsed_ms = elapsed_ms;
            rw_bucket = "worker-lost";
            rw_cause = why;
            rw_nodes = 0;
            rw_pruned = 0;
            rw_queries = 0;
          }
  in
  (* a synthetic reply is what the daemon managed, not what the inputs
     mean — it must never warm the cache *)
  finish ~store:false t job reply

(* --- dispatch and supervision ----------------------------------------- *)

let spawn t job =
  let rfd, wfd = Unix.pipe () in
  t.fork_count <- t.fork_count + 1;
  let ordinal = t.fork_count in
  match Unix.fork () with
  | 0 ->
      (* the child keeps only its write pipe: holding the listen socket or
         another worker's pipe open would mask EOFs in the parent *)
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        (rfd :: t.listen_fd :: t.sig_rd :: t.sig_wr :: t.clients
        @ List.map (fun w -> w.w_pipe) t.workers);
      worker_child t.cfg job wfd
  | pid ->
      Unix.close wfd;
      if List.mem ordinal t.cfg.fi_kill_workers then begin
        t.cfg.log (Fmt.str "fault injection: SIGKILL worker %d (pid %d)" ordinal pid);
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      end;
      let now = Unix.gettimeofday () in
      let w_kill_at =
        Option.map (fun d -> now +. d +. t.cfg.hard_grace) job.j_deadline
      in
      t.workers <-
        { w_job = job; w_pid = pid; w_pipe = rfd; w_kill_at; w_hard_killed = false }
        :: t.workers;
      t.cfg.log (Fmt.str "dispatched %s to pid %d" job.j_id pid)

(** Fill free worker slots from the queue, respecting backoff gates.  The
    queue is FIFO except that a backing-off job at the head must not
    block runnable jobs behind it, so we rotate past gated jobs. *)
let dispatch t =
  let now = Unix.gettimeofday () in
  let budget = ref (Queue.length t.queue) in
  while
    running_count t < t.cfg.jobs && !budget > 0 && not (Queue.is_empty t.queue)
  do
    decr budget;
    let j = Queue.pop t.queue in
    if j.j_not_before <= now then spawn t j else Queue.push j t.queue
  done

(** A worker's pipe produced a frame or an EOF.  A frame is the job's
    result; EOF without a frame means the worker died (crash, OOM kill,
    fault injection) and supervision decides: retry with backoff, or
    admit defeat with a synthetic failure — but never silence. *)
let on_worker_event t w =
  let frame = try P.read_frame w.w_pipe with _ -> None in
  (try Unix.close w.w_pipe with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
  t.workers <- List.filter (fun w' -> w'.w_pid <> w.w_pid) t.workers;
  (match frame with
  | Some f -> (
      match P.decode_reply f with
      | Ok ((P.Result _ | P.Row _) as r) -> finish t w.w_job r
      | Ok _ | Error _ ->
          finish_synthetic t w.w_job ~outcome:"failed" ~timeout:false
            ~why:"worker produced a malformed result frame")
  | None when w.w_hard_killed ->
      (* it overstayed deadline + grace: report it as the budget
         exhaustion it is; retrying would just burn another slot *)
      finish_synthetic t w.w_job ~outcome:"partial" ~timeout:true
        ~why:"hard deadline exceeded (worker SIGKILLed)"
  | None ->
      let job = w.w_job in
      job.j_attempts <- job.j_attempts + 1;
      t.n_restarts <- t.n_restarts + 1;
      if job.j_attempts >= t.cfg.worker_attempts then
        finish_synthetic t job ~outcome:"failed" ~timeout:false
          ~why:
            (Fmt.str "worker died %d times (supervision limit)" job.j_attempts)
      else begin
        let delay =
          Pool.backoff_delay ~base:t.cfg.backoff_base ~cap:t.cfg.backoff_cap
            (job.j_attempts - 1)
        in
        job.j_not_before <- Unix.gettimeofday () +. delay;
        Queue.push job t.queue;
        t.cfg.log
          (Fmt.str "worker for %s died (attempt %d); requeued with %.3fs backoff"
             job.j_id job.j_attempts delay)
      end);
  dispatch t

(** SIGKILL workers that blew past deadline + grace.  The kill is the
    backstop for analyses wedged beyond their own budget enforcement
    (e.g. a solver stuck in a single monstrous query). *)
let enforce_hard_deadlines t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun w ->
      match w.w_kill_at with
      | Some kill_at when now >= kill_at && not w.w_hard_killed ->
          w.w_hard_killed <- true;
          t.cfg.log (Fmt.str "hard deadline: SIGKILL pid %d (%s)" w.w_pid w.w_job.j_id);
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
      | _ -> ())
    t.workers

(* --- admission -------------------------------------------------------- *)

let status_reply t =
  P.Status_reply
    {
      st_accepted = t.n_accepted;
      st_completed = t.n_completed;
      st_shed = t.n_shed;
      st_breaker_rejected = t.n_breaker_rejected;
      st_recovered = t.n_recovered;
      st_queued = queued_count t;
      st_running = running_count t;
      st_worker_restarts = t.n_restarts;
      st_breakers_open = Breaker.open_count t.breaker;
      st_cache_hits = t.n_cache_hits;
      st_draining = t.draining;
      st_breakers = Breaker.entries t.breaker;
    }

(** Parse and validate a submission's payloads in the daemon (cheap,
    bounded work): malformed inputs earn a typed [Err] without ever
    consuming a worker slot or a spool entry. *)
let parse_submission ~prog_text ~dump_text =
  match Res_ir.Parser.parse_result prog_text with
  | Error msg -> Error (Fmt.str "bad program: %s" msg)
  | Ok prog -> (
      match Res_ir.Validate.check prog with
      | _ :: _ as errs ->
          Error
            (Fmt.str "invalid program: %a"
               Fmt.(list ~sep:(any "; ") Res_ir.Validate.pp_error)
               errs)
      | [] -> (
          match Io.of_string_result dump_text with
          | Error e -> Error (Fmt.str "bad coredump: %s" (Io.dump_error_to_string e))
          | Ok { Io.dump; _ } -> Ok (prog, dump)))

(** Admission control for a submission, in strict order: drain gate,
    parse gate, capacity gate, breaker gate, then the durable accept.
    Capacity is checked {e before} the breaker so a shed request can
    never leave a breaker stuck half-open waiting for a probe that was
    never admitted. *)
let admit t ~task ~key ~frame ~prog_text ~dump_text ~deadline_ms ~fuel =
  if t.draining then P.Rejected_draining
  else
    match parse_submission ~prog_text ~dump_text with
    | Error msg -> P.Err msg
    | Ok (prog, dump) ->
        if queued_count t >= t.cfg.capacity then begin
          t.n_shed <- t.n_shed + 1;
          P.Rejected_overload
            { ro_queued = queued_count t; ro_capacity = t.cfg.capacity }
        end
        else begin
          let signature = Res_usecases.Triage.wer_key dump in
          match Breaker.check t.breaker signature with
          | Breaker.Reject { retry_ms } ->
              t.n_breaker_rejected <- t.n_breaker_rejected + 1;
              P.Rejected_breaker { rb_signature = signature; rb_retry_ms = retry_ms }
          | (Breaker.Pass | Breaker.Probe) as d ->
              let id = Spool.accept t.spool ~frame in
              let now = Unix.gettimeofday () in
              let job =
                {
                  j_id = id;
                  j_task = task;
                  j_prog = prog;
                  j_dump = dump;
                  j_signature = signature;
                  j_deadline =
                    (match deadline_ms with
                    | Some ms -> Some (float_of_int ms /. 1000.)
                    | None -> t.cfg.default_deadline);
                  j_fuel = (match fuel with Some _ -> fuel | None -> t.cfg.default_fuel);
                  j_probe = d = Breaker.Probe;
                  j_cache_key = key;
                  j_enqueued = now;
                  j_attempts = 0;
                  j_not_before = now;
                  j_waiters = [];
                }
              in
              Queue.push job t.queue;
              t.n_accepted <- t.n_accepted + 1;
              t.cfg.log (Fmt.str "accepted %s (sig %s)" id signature);
              P.Accepted { ac_id = id; ac_queued = queued_count t }
        end

let handle_fetch t id =
  match Spool.read_result t.spool id with
  | Ok frame -> `Raw frame  (* the journaled Result reply, verbatim *)
  | Error _ ->
      if find_running t id <> None then
        `Reply (P.Pending { pd_id = id; pd_state = "running" })
      else if find_queued t id <> None then
        `Reply (P.Pending { pd_id = id; pd_state = "queued" })
      else if Spool.has_request t.spool id then
        (* accepted by a previous incarnation; recovery will run it *)
        `Reply (P.Pending { pd_id = id; pd_state = "queued" })
      else `Reply (P.Unknown id)

(** One decoded client request → one immediate reply (plus, for an
    accepted submit, a later pushed [Result]). *)
let handle_request t fd frame = function
  | P.Submit { sb_prog; sb_dump; sb_deadline_ms; sb_fuel } -> (
      let task = Analyze in
      let key =
        if t.draining then ""
        else
          cache_key_for t ~task ~prog_text:sb_prog ~dump_text:sb_dump
            ~deadline_ms:sb_deadline_ms ~fuel:sb_fuel
      in
      match cache_lookup t ~task ~key with
      | Some reply ->
          (* answered before admission, but the conversation stays real:
             the hit mints a spool id and journals the cached result
             under it, so a later [fetch] — this incarnation or the
             next — replays the answer exactly like a computed one *)
          t.n_cache_hits <- t.n_cache_hits + 1;
          let id = Spool.accept t.spool ~frame in
          let reply =
            match reply with
            | P.Result { rs_id = _; rs_outcome; rs_timeout; rs_elapsed_ms; rs_body }
              ->
                P.Result { rs_id = id; rs_outcome; rs_timeout; rs_elapsed_ms; rs_body }
            | r -> r
          in
          let result_frame = P.encode_reply reply in
          Spool.complete t.spool ~id ~frame:result_frame;
          t.n_accepted <- t.n_accepted + 1;
          t.n_completed <- t.n_completed + 1;
          t.cfg.log (Fmt.str "cache hit %s -> %s" key id);
          push t fd
            (P.encode_reply
               (P.Accepted { ac_id = id; ac_queued = queued_count t }));
          push t fd result_frame
      | None -> (
          let reply =
            admit t ~task ~key ~frame ~prog_text:sb_prog ~dump_text:sb_dump
              ~deadline_ms:sb_deadline_ms ~fuel:sb_fuel
          in
          push t fd (P.encode_reply reply);
          match reply with
          | P.Accepted { ac_id; _ } -> (
              (* register the submitter for the result push *)
              match find_queued t ac_id with
              | Some j -> j.j_waiters <- fd :: j.j_waiters
              | None -> ())
          | _ -> ()))
  | P.Triage { tg_name; tg_prog; tg_dump; tg_deadline_ms; tg_fuel } -> (
      let task = Triage_unit tg_name in
      let key =
        if t.draining then ""
        else
          cache_key_for t ~task ~prog_text:tg_prog ~dump_text:tg_dump
            ~deadline_ms:tg_deadline_ms ~fuel:tg_fuel
      in
      match cache_lookup t ~task ~key with
      | Some reply ->
          t.n_cache_hits <- t.n_cache_hits + 1;
          t.cfg.log (Fmt.str "cache hit %s (%s)" key tg_name);
          push t fd
            (P.encode_reply
               (P.Accepted { ac_id = "cached"; ac_queued = queued_count t }));
          push t fd (P.encode_reply reply)
      | None -> (
          let reply =
            admit t ~task ~key ~frame ~prog_text:tg_prog ~dump_text:tg_dump
              ~deadline_ms:tg_deadline_ms ~fuel:tg_fuel
          in
          push t fd (P.encode_reply reply);
          match reply with
          | P.Accepted { ac_id; _ } -> (
              (* the coordinator holds this connection open for the Row push *)
              match find_queued t ac_id with
              | Some j -> j.j_waiters <- fd :: j.j_waiters
              | None -> ())
          | _ -> ()))
  | P.Fetch id -> (
      match handle_fetch t id with
      | `Raw frame -> push t fd frame
      | `Reply r -> push t fd (P.encode_reply r))
  | P.Status -> push t fd (P.encode_reply (status_reply t))
  | P.Drain ->
      t.draining <- true;
      t.cfg.log "drain requested";
      push t fd
        (P.encode_reply
           (P.Drained { dr_remaining = queued_count t + running_count t }))
  | P.Ping -> push t fd (P.encode_reply (P.Pong (Unix.getpid ())))

let drop_client t fd =
  t.clients <- List.filter (fun fd' -> fd' <> fd) t.clients;
  Queue.iter
    (fun j -> j.j_waiters <- List.filter (fun fd' -> fd' <> fd) j.j_waiters)
    t.queue;
  List.iter
    (fun w ->
      w.w_job.j_waiters <- List.filter (fun fd' -> fd' <> fd) w.w_job.j_waiters)
    t.workers;
  try Unix.close fd with Unix.Unix_error _ -> ()

let on_client_event t fd =
  match (try P.read_frame fd with _ -> None) with
  | None -> drop_client t fd
  | Some frame -> (
      match P.decode_request frame with
      | Ok req -> handle_request t fd frame req
      | Error msg -> push t fd (P.encode_reply (P.Err (Fmt.str "bad request: %s" msg))))

(* --- boot: crash-only recovery ---------------------------------------- *)

(** Re-admit every accepted-but-unfinished request from the spool.  The
    journaled submit frame is re-decoded and re-parsed exactly as a fresh
    submission would be; a journaled request that no longer parses (it
    was validated at accept time, so this means on-disk damage beyond the
    seal) is retired with a synthetic failure rather than dropped. *)
let recover t =
  List.iter
    (fun id ->
      let now = Unix.gettimeofday () in
      let fail why =
        (* retire the damaged spool entry durably — it still gets an
           answer, just not an analysis *)
        t.cfg.log (Fmt.str "retiring unrecoverable %s: %s" id why);
        Spool.complete t.spool ~id
          ~frame:
            (P.encode_reply
               (P.Result
                  {
                    rs_id = id;
                    rs_outcome = "failed";
                    rs_timeout = false;
                    rs_elapsed_ms = 0;
                    rs_body = "";
                  }));
        t.n_completed <- t.n_completed + 1
      in
      match Spool.read_request t.spool id with
      | Error e -> fail (Fmt.str "spooled request unreadable: %s" (Io.dump_error_to_string e))
      | Ok frame -> (
          let readmit ~task ~prog_text ~dump_text ~deadline_ms ~fuel =
            match parse_submission ~prog_text ~dump_text with
            | Error why -> fail (Fmt.str "spooled request no longer parses: %s" why)
            | Ok (prog, dump) ->
                let job =
                  {
                    j_id = id;
                    j_task = task;
                    j_prog = prog;
                    j_dump = dump;
                    j_signature = Res_usecases.Triage.wer_key dump;
                    j_deadline =
                      (match deadline_ms with
                      | Some ms -> Some (float_of_int ms /. 1000.)
                      | None -> t.cfg.default_deadline);
                    j_fuel =
                      (match fuel with Some _ -> fuel | None -> t.cfg.default_fuel);
                    j_probe = false;
                    j_cache_key =
                      cache_key_for t ~task ~prog_text ~dump_text ~deadline_ms
                        ~fuel;
                    j_enqueued = now;
                    j_attempts = 0;
                    j_not_before = now;
                    j_waiters = [];
                  }
                in
                Queue.push job t.queue;
                t.n_recovered <- t.n_recovered + 1;
                t.cfg.log (Fmt.str "recovered %s from spool" id)
          in
          match P.decode_request frame with
          | Ok (P.Submit { sb_prog; sb_dump; sb_deadline_ms; sb_fuel }) ->
              readmit ~task:Analyze ~prog_text:sb_prog ~dump_text:sb_dump
                ~deadline_ms:sb_deadline_ms ~fuel:sb_fuel
          | Ok (P.Triage { tg_name; tg_prog; tg_dump; tg_deadline_ms; tg_fuel }) ->
              readmit ~task:(Triage_unit tg_name) ~prog_text:tg_prog
                ~dump_text:tg_dump ~deadline_ms:tg_deadline_ms ~fuel:tg_fuel
          | Ok _ -> fail "spooled request is not a submit"
          | Error why -> fail (Fmt.str "spooled request undecodable: %s" why)))
    (Spool.pending t.spool)

(* --- event loop ------------------------------------------------------- *)

(** Resolve a host name or dotted quad to an address. *)
let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      failwith (Fmt.str "cannot resolve host %S" host))

let run (cfg : config) =
  let spool = Spool.openr cfg.spool_dir in
  let unix_socket = cfg.prebound = None && cfg.tcp = None in
  let listen_fd =
    match (cfg.prebound, cfg.tcp) with
    | Some fd, _ -> fd
    | None, Some (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
        Unix.listen fd 64;
        fd
    | None, None ->
        (* a previous incarnation's socket is stale by definition: we own
           the spool, so we own the address *)
        (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
        Unix.listen fd 64;
        fd
  in
  let sig_rd, sig_wr = Unix.pipe () in
  let t =
    {
      cfg;
      listen_fd;
      sig_rd;
      sig_wr;
      spool;
      cache = Option.map Res_cache.Cache.openr cfg.cache_dir;
      breaker =
        Breaker.create ~threshold:cfg.breaker_threshold
          ~cooldown:cfg.breaker_cooldown ();
      clients = [];
      queue = Queue.create ();
      workers = [];
      draining = false;
      fork_count = 0;
      n_accepted = 0;
      n_completed = 0;
      n_shed = 0;
      n_breaker_rejected = 0;
      n_recovered = 0;
      n_restarts = 0;
      n_cache_hits = 0;
    }
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let request_drain _ =
    (* async-signal-safe: one byte down the self-pipe wakes the loop *)
    try ignore (Unix.write_substring t.sig_wr "T" 0 1) with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
  recover t;
  dispatch t;
  let where =
    match (cfg.prebound, cfg.tcp) with
    | Some _, _ -> "prebound socket"
    | None, Some (host, port) -> Fmt.str "%s:%d" host port
    | None, None -> cfg.socket_path
  in
  cfg.log
    (Fmt.str "listening on %s (jobs=%d capacity=%d, %d recovered)" where
       cfg.jobs cfg.capacity t.n_recovered);
  let finished () =
    t.draining && Queue.is_empty t.queue && t.workers = []
  in
  while not (finished ()) do
    let now = Unix.gettimeofday () in
    (* wake for the earliest timer: a backoff gate or a hard kill *)
    let timeout =
      let tick = now +. 0.05 in
      let earliest =
        List.fold_left
          (fun acc w -> match w.w_kill_at with Some k -> min acc k | None -> acc)
          (Queue.fold (fun acc j -> min acc j.j_not_before) tick t.queue)
          t.workers
      in
      Float.max 0.005 (earliest -. now)
    in
    let read_fds =
      (if t.draining then [] else [ t.listen_fd ])
      @ (t.sig_rd :: t.clients)
      @ List.map (fun w -> w.w_pipe) t.workers
    in
    let ready, _, _ =
      try Unix.select read_fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.sig_rd ready then begin
      let buf = Bytes.create 16 in
      (try ignore (Unix.read t.sig_rd buf 0 16) with Unix.Unix_error _ -> ());
      if not t.draining then begin
        t.draining <- true;
        t.cfg.log "SIGTERM: draining"
      end
    end;
    if (not t.draining) && List.mem t.listen_fd ready then begin
      match Unix.accept t.listen_fd with
      | fd, _ -> t.clients <- fd :: t.clients
      | exception Unix.Unix_error _ -> ()
    end;
    List.iter
      (fun w -> if List.mem w.w_pipe ready then on_worker_event t w)
      t.workers;
    List.iter
      (fun fd -> if List.mem fd ready then on_client_event t fd)
      t.clients;
    enforce_hard_deadlines t;
    dispatch t
  done;
  cfg.log "drained; exiting";
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  if unix_socket then
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ()
