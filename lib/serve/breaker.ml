(** Per-workload-signature circuit breakers.

    A triage service meets pathological workloads: a dump whose analysis
    burns its entire solver budget will do so {e every} time it (or a
    sibling from the same buggy deployment) is submitted.  Without a
    breaker, a stream of such requests occupies workers wall-to-wall and
    starves everything else.  The breaker watches consecutive budget
    exhaustions per workload signature (crash family + stack — the WER
    key, computable at admission without analysis) and fast-fails
    matching requests once a signature has proven itself a tar pit.

    Classic three-state machine, one instance per signature:

    - [Closed]: requests pass.  [threshold] consecutive timeouts trip it.
    - [Open]: matching requests are rejected ({!check} = [Reject]) until
      [cooldown] has elapsed, then exactly one probe passes ([Probe]).
    - [Half_open]: the probe is in flight; everyone else is rejected.
      Probe success closes the breaker; a probe timeout re-opens it and
      restarts the cooldown.

    The clock is injected ([now]) so tests drive state transitions
    without sleeping. *)

type state = Closed | Open | Half_open

type entry = {
  mutable st : state;
  mutable consecutive : int;  (** consecutive timeouts while closed *)
  mutable opened_at : float;
  mutable trips : int;  (** times this signature tripped the breaker *)
}

type t = {
  threshold : int;  (** consecutive timeouts that trip the breaker *)
  cooldown : float;  (** seconds open before a half-open probe *)
  now : unit -> float;
  tbl : (string, entry) Hashtbl.t;
}

let create ?(threshold = 3) ?(cooldown = 5.0) ?(now = Unix.gettimeofday) () =
  { threshold = max 1 threshold; cooldown; now; tbl = Hashtbl.create 16 }

let entry t signature =
  match Hashtbl.find_opt t.tbl signature with
  | Some e -> e
  | None ->
      let e = { st = Closed; consecutive = 0; opened_at = 0.; trips = 0 } in
      Hashtbl.replace t.tbl signature e;
      e

(** Admission decision for a request with this signature. *)
type decision =
  | Pass
  | Probe  (** pass, but as the half-open probe: its outcome decides *)
  | Reject of { retry_ms : int }

let check t signature =
  let e = entry t signature in
  match e.st with
  | Closed -> Pass
  | Half_open ->
      Reject { retry_ms = int_of_float (t.cooldown *. 1000.) }
  | Open ->
      let elapsed = t.now () -. e.opened_at in
      if elapsed >= t.cooldown then begin
        e.st <- Half_open;
        Probe
      end
      else
        Reject
          { retry_ms = max 1 (int_of_float ((t.cooldown -. elapsed) *. 1000.)) }

(** The request with this signature finished within budget: close. *)
let record_success t signature =
  let e = entry t signature in
  e.st <- Closed;
  e.consecutive <- 0

(** The request with this signature exhausted its budget (or had to be
    hard-killed): count it, trip when the threshold is reached, and
    re-open immediately if it was the half-open probe. *)
let record_timeout t signature =
  let e = entry t signature in
  match e.st with
  | Half_open | Open ->
      e.st <- Open;
      e.opened_at <- t.now ();
      e.trips <- e.trips + 1
  | Closed ->
      e.consecutive <- e.consecutive + 1;
      if e.consecutive >= t.threshold then begin
        e.st <- Open;
        e.opened_at <- t.now ();
        e.trips <- e.trips + 1
      end

let state t signature = (entry t signature).st

let open_count t =
  Hashtbl.fold
    (fun _ e acc -> if e.st = Closed then acc else acc + 1)
    t.tbl 0

let total_trips t = Hashtbl.fold (fun _ e acc -> acc + e.trips) t.tbl 0

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(** Every signature the breaker has seen, with its state name and trip
    count, sorted by signature — what [status] reports so operators can
    see which workloads are degraded instead of inferring it from
    rejection counts. *)
let entries t =
  Hashtbl.fold (fun s e acc -> (s, state_name e.st, e.trips) :: acc) t.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
