(** MiniIR instruction set.

    MiniIR is a small register-machine intermediate representation standing
    in for LLVM bitcode (see DESIGN.md).  Programs are made of functions,
    functions of basic blocks, and blocks of straight-line instructions
    closed by a single terminator.  Registers are function-local virtual
    registers identified by small integers; memory is a flat word-addressed
    space shared by all threads. *)

(** A virtual register, local to a function activation. *)
type reg = int

(** A basic-block label, unique within its function. *)
type label = string

(** Binary operators.  Comparison operators produce 1 (true) or 0 (false).
    [Div] and [Rem] trap on a zero divisor (the VM raises a crash). *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

(** Unary operators.  [Not] is logical negation (zero test). *)
type unop = Not | Neg

(** Sources of external input.  Inputs are the only nondeterminism apart
    from scheduling; reverse execution synthesis treats values read from
    these sources as unconstrained symbolic values. *)
type input_kind = Net | File | Time | Rand

(** Straight-line instructions. *)
type instr =
  | Const of reg * int  (** [dst = const n] *)
  | Mov of reg * reg  (** [dst = mov src] *)
  | Binop of binop * reg * reg * reg  (** [dst = op a, b] *)
  | Unop of unop * reg * reg  (** [dst = op a] *)
  | Load of reg * reg * int  (** [dst = load addr\[off\]] *)
  | Store of reg * int * reg  (** [store addr\[off\] = src] *)
  | Global_addr of reg * string  (** [dst = global g]: address of global *)
  | Alloc of reg * reg  (** [dst = alloc size]: heap allocation *)
  | Free of reg  (** [free addr] *)
  | Input of reg * input_kind  (** [dst = input net|file|time|rand] *)
  | Lock of reg  (** acquire the mutex at address [r] (blocking) *)
  | Unlock of reg  (** release the mutex at address [r] *)
  | Spawn of reg * string * reg list
      (** [dst = spawn f(args)]: start a thread, [dst] receives its id *)
  | Join of reg  (** block until thread [r] halts *)
  | Call of reg option * string * reg list  (** [dst = call f(args)] *)
  | Assert of reg * string  (** crash with the message if [r] is zero *)
  | Log of string * reg  (** append a breadcrumb to the error log *)
  | Nop

(** Block terminators. *)
type terminator =
  | Jmp of label  (** unconditional branch *)
  | Br of reg * label * label  (** [br r, if_nonzero, if_zero] *)
  | Ret of reg option  (** return from the current function *)
  | Halt  (** terminate the current thread normally *)
  | Abort of string  (** crash the program with a message *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let binop_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

let unop_name = function Not -> "not" | Neg -> "neg"

let unop_of_name = function
  | "not" -> Some Not
  | "neg" -> Some Neg
  | _ -> None

let input_kind_name = function
  | Net -> "net"
  | File -> "file"
  | Time -> "time"
  | Rand -> "rand"

let input_kind_of_name = function
  | "net" -> Some Net
  | "file" -> Some File
  | "time" -> Some Time
  | "rand" -> Some Rand
  | _ -> None

(** [eval_binop op a b] is the concrete semantics of [op].  Division and
    remainder by zero raise [Division_by_zero]; the VM converts this into a
    crash.  Comparisons return 0/1.  Shifts are masked to the word size. *)
let eval_binop op a b =
  let bool b = if b then 1 else 0 in
  (* Shift counts are taken modulo 64 and clamped to the valid OCaml range;
     a count >= the word size yields 0 / the sign word, like a real ALU. *)
  let mask_shift n = min (n land 63) 62 in
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> a / b
  | Rem -> a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl mask_shift b
  | Shr -> a asr mask_shift b
  | Eq -> bool (a = b)
  | Ne -> bool (a <> b)
  | Lt -> bool (a < b)
  | Le -> bool (a <= b)
  | Gt -> bool (a > b)
  | Ge -> bool (a >= b)

(** Concrete semantics of unary operators. *)
let eval_unop op a = match op with Not -> (if a = 0 then 1 else 0) | Neg -> -a

(** [defs i] is the register defined (written) by [i], if any. *)
let defs = function
  | Const (r, _)
  | Mov (r, _)
  | Binop (_, r, _, _)
  | Unop (_, r, _)
  | Load (r, _, _)
  | Global_addr (r, _)
  | Alloc (r, _)
  | Input (r, _)
  | Spawn (r, _, _) ->
      Some r
  | Call (r, _, _) -> r
  | Store _ | Free _ | Lock _ | Unlock _ | Join _ | Assert _ | Log _ | Nop ->
      None

(** [uses i] are the registers read by [i], in operand order. *)
let uses = function
  | Const _ | Global_addr _ | Nop -> []
  | Mov (_, a) | Unop (_, _, a) | Load (_, a, _) | Alloc (_, a) -> [ a ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Store (a, _, s) -> [ a; s ]
  | Free a | Lock a | Unlock a | Join a | Assert (a, _) | Log (_, a) -> [ a ]
  | Input _ -> []
  | Spawn (_, _, args) -> args
  | Call (_, _, args) -> args

(** [term_uses t] are the registers read by terminator [t]. *)
let term_uses = function
  | Jmp _ | Halt | Abort _ -> []
  | Br (r, _, _) -> [ r ]
  | Ret (Some r) -> [ r ]
  | Ret None -> []

(** [term_targets t] are the intra-function successor labels of [t]. *)
let term_targets = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> if String.equal l1 l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ | Halt | Abort _ -> []

(** One memory access an instruction performs through an address register:
    the cell at [acc_addr + acc_off] is read ([acc_write = false]) or
    written.  [Lock]/[Unlock] both read and write their mutex cell (the VM
    stores the owner's tid there), so they contribute two accesses.  The
    static-analysis layer ({!Res_static}) builds its mod/ref summaries from
    this classification instead of re-matching constructors. *)
type access = { acc_addr : reg; acc_off : int; acc_write : bool }

(** [accesses i] are the memory accesses [i] performs, in operand order.
    Heap management ([Alloc]/[Free]) is not an access — see {!heap_op}. *)
let accesses = function
  | Load (_, a, off) -> [ { acc_addr = a; acc_off = off; acc_write = false } ]
  | Store (a, off, _) -> [ { acc_addr = a; acc_off = off; acc_write = true } ]
  | Lock a | Unlock a ->
      [
        { acc_addr = a; acc_off = 0; acc_write = false };
        { acc_addr = a; acc_off = 0; acc_write = true };
      ]
  | Const _ | Mov _ | Binop _ | Unop _ | Global_addr _ | Alloc _ | Free _
  | Input _ | Spawn _ | Join _ | Call _ | Assert _ | Log _ | Nop ->
      []

(** Whether [i] changes the heap structure (allocates or frees a block). *)
let heap_op = function Alloc _ | Free _ -> true | _ -> false

(** The function a [Call] transfers to, with its argument registers. *)
let call_target = function Call (_, f, args) -> Some (f, args) | _ -> None

(** The function a [Spawn] starts a thread in, with its arguments. *)
let spawn_target = function Spawn (_, f, args) -> Some (f, args) | _ -> None

let equal_instr (a : instr) (b : instr) = a = b
let equal_terminator (a : terminator) (b : terminator) = a = b

let pp_reg ppf r = Fmt.pf ppf "r%d" r

let pp ppf = function
  | Const (r, n) -> Fmt.pf ppf "%a = const %d" pp_reg r n
  | Mov (r, a) -> Fmt.pf ppf "%a = mov %a" pp_reg r pp_reg a
  | Binop (op, r, a, b) ->
      Fmt.pf ppf "%a = %s %a, %a" pp_reg r (binop_name op) pp_reg a pp_reg b
  | Unop (op, r, a) -> Fmt.pf ppf "%a = %s %a" pp_reg r (unop_name op) pp_reg a
  | Load (r, a, off) -> Fmt.pf ppf "%a = load %a[%d]" pp_reg r pp_reg a off
  | Store (a, off, s) -> Fmt.pf ppf "store %a[%d] = %a" pp_reg a off pp_reg s
  | Global_addr (r, g) -> Fmt.pf ppf "%a = global %s" pp_reg r g
  | Alloc (r, s) -> Fmt.pf ppf "%a = alloc %a" pp_reg r pp_reg s
  | Free a -> Fmt.pf ppf "free %a" pp_reg a
  | Input (r, k) -> Fmt.pf ppf "%a = input %s" pp_reg r (input_kind_name k)
  | Lock a -> Fmt.pf ppf "lock %a" pp_reg a
  | Unlock a -> Fmt.pf ppf "unlock %a" pp_reg a
  | Spawn (r, f, args) ->
      Fmt.pf ppf "%a = spawn %s(%a)" pp_reg r f
        Fmt.(list ~sep:(any ", ") pp_reg)
        args
  | Join a -> Fmt.pf ppf "join %a" pp_reg a
  | Call (Some r, f, args) ->
      Fmt.pf ppf "%a = call %s(%a)" pp_reg r f
        Fmt.(list ~sep:(any ", ") pp_reg)
        args
  | Call (None, f, args) ->
      Fmt.pf ppf "call %s(%a)" f Fmt.(list ~sep:(any ", ") pp_reg) args
  | Assert (r, msg) -> Fmt.pf ppf "assert %a, %S" pp_reg r msg
  | Log (tag, r) -> Fmt.pf ppf "log %S, %a" tag pp_reg r
  | Nop -> Fmt.string ppf "nop"

let pp_terminator ppf = function
  | Jmp l -> Fmt.pf ppf "jmp %s" l
  | Br (r, l1, l2) -> Fmt.pf ppf "br %a, %s, %s" pp_reg r l1 l2
  | Ret (Some r) -> Fmt.pf ppf "ret %a" pp_reg r
  | Ret None -> Fmt.string ppf "ret"
  | Halt -> Fmt.string ppf "halt"
  | Abort msg -> Fmt.pf ppf "abort %S" msg

let to_string i = Fmt.str "%a" pp i
let terminator_to_string t = Fmt.str "%a" pp_terminator t
