(** Control-flow graphs and whole-program call/spawn indexes.

    RES navigates the CFG {e backward}; the predecessor map is the
    load-bearing structure here.  The call-site and spawn-site indexes let
    the backward walk continue past a function entry (to the exact caller
    block, disambiguated by the coredump's stack) and past a thread entry
    (to the spawning thread's block). *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(** A call or spawn site: function, block, and instruction index. *)
type site = { in_func : string; in_block : Instr.label; at_idx : int }

type func_cfg = {
  succs : Instr.label list SMap.t;  (** block label -> successor labels *)
  preds : Instr.label list SMap.t;  (** block label -> predecessor labels *)
}

type t = {
  per_func : func_cfg SMap.t;
  call_sites : site list SMap.t;  (** callee name -> sites calling it *)
  spawn_sites : site list SMap.t;  (** thread function name -> spawn sites *)
}

let func_cfg_of (f : Func.t) =
  let succs =
    List.fold_left
      (fun m (b : Block.t) -> SMap.add b.label (Block.successors b) m)
      SMap.empty f.blocks
  in
  let preds =
    let empty =
      List.fold_left
        (fun m (b : Block.t) -> SMap.add b.label [] m)
        SMap.empty f.blocks
    in
    SMap.fold
      (fun src targets m ->
        List.fold_left
          (fun m tgt ->
            match SMap.find_opt tgt m with
            | Some l -> SMap.add tgt (src :: l) m
            | None ->
                (* A dangling branch target would silently truncate the
                   predecessor map — and a truncated CFG makes every
                   analysis built on it (backward search, summaries)
                   quietly wrong.  Validate rejects such programs; refuse
                   to build a CFG for one that slipped through. *)
                invalid_arg
                  (Fmt.str "Cfg: %s:%s branches to unknown block %s" f.name
                     src tgt))
          m targets)
      succs empty
    |> SMap.map (List.sort_uniq String.compare)
  in
  { succs; preds }

let sites_of (p : Prog.t) =
  let calls = ref SMap.empty and spawns = ref SMap.empty in
  let add tbl callee site =
    tbl :=
      SMap.update callee
        (function Some l -> Some (site :: l) | None -> Some [ site ])
        !tbl
  in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          Array.iteri
            (fun i instr ->
              let site = { in_func = f.name; in_block = b.label; at_idx = i } in
              match instr with
              | Instr.Call (_, callee, _) -> add calls callee site
              | Instr.Spawn (_, callee, _) -> add spawns callee site
              | _ -> ())
            b.instrs)
        f.blocks)
    p.funcs;
  (!calls, !spawns)

(** Build the CFG and site indexes for a whole program. *)
let of_prog (p : Prog.t) =
  let per_func =
    List.fold_left
      (fun m (f : Func.t) -> SMap.add f.name (func_cfg_of f) m)
      SMap.empty p.funcs
  in
  let call_sites, spawn_sites = sites_of p in
  { per_func; call_sites; spawn_sites }

let find_func_cfg t fname =
  match SMap.find_opt fname t.per_func with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "Cfg: unknown function %s" fname)

(** Intra-function successors of a block. *)
let successors t ~func ~label =
  match SMap.find_opt label (find_func_cfg t func).succs with
  | Some l -> l
  | None -> invalid_arg (Fmt.str "Cfg.successors: unknown block %s" label)

(** Intra-function predecessors of a block — the candidate set RES
    enumerates at each backward step (Fig. 1's [Pred1]/[Pred2]). *)
let predecessors t ~func ~label =
  match SMap.find_opt label (find_func_cfg t func).preds with
  | Some l -> l
  | None -> invalid_arg (Fmt.str "Cfg.predecessors: unknown block %s" label)

(** Sites that call [callee], empty if never called. *)
let call_sites_of t callee =
  Option.value ~default:[] (SMap.find_opt callee t.call_sites)

(** Sites that spawn a thread running [f], empty if never spawned. *)
let spawn_sites_of t f =
  Option.value ~default:[] (SMap.find_opt f t.spawn_sites)

(** Labels reachable from the entry of [f], in BFS order. *)
let reachable_labels t (f : Func.t) =
  let cfg = find_func_cfg t f.name in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let q = Queue.create () in
  Queue.add f.entry q;
  Hashtbl.replace seen f.entry ();
  while not (Queue.is_empty q) do
    let l = Queue.pop q in
    order := l :: !order;
    List.iter
      (fun s ->
        if not (Hashtbl.mem seen s) then (
          Hashtbl.replace seen s ();
          Queue.add s q))
      (Option.value ~default:[] (SMap.find_opt l cfg.succs))
  done;
  List.rev !order

(** Blocks of [f] never reachable from its entry. *)
let unreachable_labels t (f : Func.t) =
  let reach = SSet.of_list (reachable_labels t f) in
  List.filter_map
    (fun (b : Block.t) ->
      if SSet.mem b.label reach then None else Some b.label)
    f.blocks
