(** Textual assembler for MiniIR.

    The concrete syntax is the one produced by the pretty-printers in
    {!Instr}, {!Block}, {!Func} and {!Prog}, so [parse (Prog.to_string p)]
    round-trips.  [#] starts a line comment.  See README.md for a grammar
    sketch and examples. *)

exception Parse_error of { line : int; msg : string }

let fail line fmt = Fmt.kstr (fun msg -> raise (Parse_error { line; msg })) fmt

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | COLON

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | STRING s -> Fmt.pf ppf "string %S" s
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACK -> Fmt.string ppf "'['"
  | RBRACK -> Fmt.string ppf "']'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | EQUALS -> Fmt.string ppf "'='"
  | COLON -> Fmt.string ppf "':'"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

(** Tokenize [src] into [(token, line)] pairs. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (
      incr line;
      incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '{' then (emit LBRACE; incr i)
    else if c = '}' then (emit RBRACE; incr i)
    else if c = '[' then (emit LBRACK; incr i)
    else if c = ']' then (emit RBRACK; incr i)
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '=' then (emit EQUALS; incr i)
    else if c = ':' then (emit COLON; incr i)
    else if c = '"' then (
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then (
          closed := true;
          incr i)
        else if c = '\\' && !i + 1 < n then (
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          i := !i + 2)
        else (
          Buffer.add_char buf c;
          incr i)
      done;
      if not !closed then fail !line "unterminated string literal";
      emit (STRING (Buffer.contents buf)))
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then (
      let start = !i in
      incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      match int_of_string_opt (String.sub src start (!i - start)) with
      | Some v -> emit (INT v)
      | None -> fail !line "integer literal out of range")
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (IDENT (String.sub src start (!i - start))))
    else fail !line "unexpected character %C" c
  done;
  List.rev !toks

(** Mutable token cursor. *)
type cursor = { mutable toks : (token * int) list; mutable last_line : int }

let peek c = match c.toks with [] -> None | (t, _) :: _ -> Some t

let next c =
  match c.toks with
  | [] -> fail c.last_line "unexpected end of input"
  | (t, l) :: rest ->
      c.toks <- rest;
      c.last_line <- l;
      (t, l)

let expect c tok =
  let t, l = next c in
  if t <> tok then fail l "expected %a, found %a" pp_token tok pp_token t

let ident c =
  match next c with
  | IDENT s, _ -> s
  | t, l -> fail l "expected identifier, found %a" pp_token t

let int_lit c =
  match next c with
  | INT n, _ -> n
  | t, l -> fail l "expected integer, found %a" pp_token t

let string_lit c =
  match next c with
  | STRING s, _ -> s
  | t, l -> fail l "expected string literal, found %a" pp_token t

let reg_of_ident l s =
  let len = String.length s in
  if len >= 2 && s.[0] = 'r' && String.for_all is_digit (String.sub s 1 (len - 1))
  then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some r -> r
    | None -> fail l "register number out of range in %s" s
  else fail l "expected register (rN), found %s" s

let reg c =
  match next c with
  | IDENT s, l -> reg_of_ident l s
  | t, l -> fail l "expected register, found %a" pp_token t

let is_reg_ident s =
  let len = String.length s in
  len >= 2 && s.[0] = 'r' && String.for_all is_digit (String.sub s 1 (len - 1))

(** [r1, r2, ...] possibly empty, already inside parens. *)
let reg_list c =
  if peek c = Some RPAREN then []
  else
    let rec loop acc =
      let r = reg c in
      if peek c = Some COMMA then (
        expect c COMMA;
        loop (r :: acc))
      else List.rev (r :: acc)
    in
    loop []

let input_kind c =
  let s = ident c in
  match Instr.input_kind_of_name s with
  | Some k -> k
  | None -> fail c.last_line "unknown input kind %s" s

(* [r = load a[off]] / [store a[off] = src] addressing suffix. *)
let bracket_offset c =
  expect c LBRACK;
  let off = int_lit c in
  expect c RBRACK;
  off

let call_args c =
  expect c LPAREN;
  let args = reg_list c in
  expect c RPAREN;
  args

(** An assignment right-hand side, after [rD =] was consumed. *)
let parse_rhs c dst =
  let op, l =
    match next c with
    | IDENT s, l -> (s, l)
    | t, l -> fail l "expected opcode, found %a" pp_token t
  in
  match op with
  | "const" -> Instr.Const (dst, int_lit c)
  | "mov" -> Instr.Mov (dst, reg c)
  | "global" -> Instr.Global_addr (dst, ident c)
  | "alloc" -> Instr.Alloc (dst, reg c)
  | "input" -> Instr.Input (dst, input_kind c)
  | "spawn" ->
      let f = ident c in
      Instr.Spawn (dst, f, call_args c)
  | "call" ->
      let f = ident c in
      Instr.Call (Some dst, f, call_args c)
  | "load" ->
      let a = reg c in
      Instr.Load (dst, a, bracket_offset c)
  | _ -> (
      match Instr.binop_of_name op with
      | Some bop ->
          let a = reg c in
          expect c COMMA;
          let b = reg c in
          Instr.Binop (bop, dst, a, b)
      | None -> (
          match Instr.unop_of_name op with
          | Some uop -> Instr.Unop (uop, dst, reg c)
          | None -> fail l "unknown opcode %s" op))

type stmt = I of Instr.instr | T of Instr.terminator

(** One statement: either a straight-line instruction or a terminator. *)
let parse_stmt c =
  let t, l = next c in
  match t with
  | IDENT s when is_reg_ident s && peek c = Some EQUALS ->
      let dst = reg_of_ident l s in
      expect c EQUALS;
      I (parse_rhs c dst)
  | IDENT "store" ->
      let a = reg c in
      let off = bracket_offset c in
      expect c EQUALS;
      I (Instr.Store (a, off, reg c))
  | IDENT "free" -> I (Instr.Free (reg c))
  | IDENT "lock" -> I (Instr.Lock (reg c))
  | IDENT "unlock" -> I (Instr.Unlock (reg c))
  | IDENT "join" -> I (Instr.Join (reg c))
  | IDENT "call" ->
      let f = ident c in
      I (Instr.Call (None, f, call_args c))
  | IDENT "assert" ->
      let r = reg c in
      expect c COMMA;
      I (Instr.Assert (r, string_lit c))
  | IDENT "log" ->
      let tag = string_lit c in
      expect c COMMA;
      I (Instr.Log (tag, reg c))
  | IDENT "nop" -> I Instr.Nop
  | IDENT "jmp" -> T (Instr.Jmp (ident c))
  | IDENT "br" ->
      let r = reg c in
      expect c COMMA;
      let l1 = ident c in
      expect c COMMA;
      let l2 = ident c in
      T (Instr.Br (r, l1, l2))
  | IDENT "ret" -> (
      match peek c with
      | Some (IDENT s) when is_reg_ident s -> T (Instr.Ret (Some (reg c)))
      | _ -> T (Instr.Ret None))
  | IDENT "halt" -> T Instr.Halt
  | IDENT "abort" -> T (Instr.Abort (string_lit c))
  | t -> fail l "expected statement, found %a" pp_token t

(** One labelled block: [label:] then statements up to a terminator. *)
let parse_block c =
  let label = ident c in
  expect c COLON;
  let rec loop acc =
    match parse_stmt c with
    | I i -> loop (i :: acc)
    | T t -> Block.v label (List.rev acc) t
  in
  loop []

let parse_func c =
  expect c (IDENT "func");
  let name = ident c in
  expect c LPAREN;
  let params = reg_list c in
  expect c RPAREN;
  expect c LBRACE;
  let rec blocks acc =
    match peek c with
    | Some RBRACE ->
        expect c RBRACE;
        List.rev acc
    | _ -> blocks (parse_block c :: acc)
  in
  let bs = blocks [] in
  (match bs with
  | [] -> fail c.last_line "function %s has no blocks" name
  | _ -> ());
  let entry = (List.hd bs : Block.t).label in
  Func.v ~name ~params ~entry bs

(** Parse a whole program from source text.
    @raise Parse_error with a line number on malformed input.
    @raise Invalid_argument on structural duplicates (via {!Prog.v}). *)
let parse src =
  let c = { toks = tokenize src; last_line = 1 } in
  let rec loop globals funcs =
    match peek c with
    | None -> Prog.v ~globals:(List.rev globals) (List.rev funcs)
    | Some (IDENT "global") ->
        expect c (IDENT "global");
        let gname = ident c in
        let gsize = int_lit c in
        loop ({ Prog.gname; gsize } :: globals) funcs
    | Some (IDENT "func") -> loop globals (parse_func c :: funcs)
    | Some t -> fail c.last_line "expected 'global' or 'func', found %a" pp_token t
  in
  loop [] []

(** Parse, turning failures into a [result] with a rendered message. *)
let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Parse_error { line; msg } ->
      Error (Fmt.str "parse error at line %d: %s" line msg)
  | exception Invalid_argument msg -> Error msg
