(** Static well-formedness checks for MiniIR programs.

    RES requires an accurate CFG (paper §6); the validator enforces the
    structural properties the rest of the system assumes, so that analyses
    never have to re-check them. *)

type error = { where : string; what : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

let err errs where fmt = Fmt.kstr (fun what -> errs := { where; what } :: !errs) fmt

let check_func (p : Prog.t) (errs : error list ref) (f : Func.t) =
  let where_block (b : Block.t) = Fmt.str "%s:%s" f.name b.label in
  (* Parameter registers must be 0..n-1: the VM binds arguments there. *)
  let expected_params = List.init (List.length f.params) Fun.id in
  if f.params <> expected_params then
    err errs f.name "parameters must be registers r0..r%d"
      (List.length f.params - 1);
  (* The entry block must come first in the block list: dataflow analyses
     (and the printer) rely on that convention. *)
  (match f.blocks with
  | (b : Block.t) :: _ when not (String.equal b.label f.entry) ->
      err errs f.name "entry block %s must be listed first (found %s)" f.entry
        b.label
  | _ -> ());
  List.iter
    (fun (b : Block.t) ->
      let where = where_block b in
      (* Branch targets must exist. *)
      List.iter
        (fun l ->
          if not (Func.mem_block f l) then
            err errs where "branch target %s does not exist" l)
        (Block.successors b);
      (* Register sanity and symbol resolution. *)
      Array.iter
        (fun i ->
          (match Instr.defs i with
          | Some r when r < 0 -> err errs where "negative register r%d" r
          | _ -> ());
          List.iter
            (fun r -> if r < 0 then err errs where "negative register r%d" r)
            (Instr.uses i);
          match i with
          | Instr.Global_addr (_, g) ->
              if Prog.global_opt p g = None then
                err errs where "unknown global %s" g
          | Instr.Call (_, callee, args) | Instr.Spawn (_, callee, args) -> (
              match Prog.func_opt p callee with
              | None -> err errs where "unknown function %s" callee
              | Some fn ->
                  if List.length args <> List.length fn.params then
                    err errs where
                      "%s expects %d argument(s), given %d" callee
                      (List.length fn.params) (List.length args))
          | Instr.Const (_, n) ->
              (* Immediates must fit comfortably in the 63-bit word. *)
              if abs n > max_int / 2 then
                err errs where "immediate %d too large" n
          | _ -> ())
        b.instrs;
      (* Terminator shape: blocks end in exactly one canonical terminator.
         The [Block.t] representation already guarantees there is one and
         that no instruction follows it; what it cannot guarantee is that
         the terminator is in canonical form — summaries and CFG analyses
         assume a [Br] genuinely forks (both-arms-equal is [Jmp] in
         disguise and would make edge counts lie) and that terminator
         operands are real registers. *)
      List.iter
        (fun r -> if r < 0 then err errs where "negative register r%d" r)
        (Instr.term_uses b.term);
      match b.term with
      | Instr.Br (_, l1, l2) when String.equal l1 l2 ->
          err errs where "br with identical targets %s; use jmp" l1
      | _ -> ())
    f.blocks

(** [check p] returns all well-formedness violations, empty when valid. *)
let check (p : Prog.t) =
  let errs = ref [] in
  if not (Prog.mem_func p Prog.main_name) then
    err errs "program" "no %s function" Prog.main_name;
  (match Prog.func_opt p Prog.main_name with
  | Some m when m.params <> [] -> err errs "main" "main must take no parameters"
  | _ -> ());
  List.iter (check_func p errs) p.funcs;
  List.rev !errs

(** [check_exn p] returns [p] or raises with all violations rendered.
    @raise Invalid_argument when [p] is ill-formed. *)
let check_exn p =
  match check p with
  | [] -> p
  | errs ->
      invalid_arg
        (Fmt.str "invalid program:@;%a" Fmt.(list ~sep:cut pp_error) errs)
