(** Control-flow graphs and whole-program call/spawn indexes.

    RES navigates the CFG {e backward}; the predecessor map is the
    load-bearing structure.  The call-site and spawn-site indexes let the
    backward walk continue past a function entry (to the exact caller
    block) and past a thread entry (to the spawning thread's block). *)

(** A call or spawn site: function, block, and instruction index. *)
type site = { in_func : string; in_block : Instr.label; at_idx : int }

type t

(** Build the CFG and site indexes for a whole program.
    @raise Invalid_argument when a terminator branches to a block that
    does not exist — such a program fails {!Validate.check}, and building
    a silently truncated predecessor map for it would poison every
    analysis downstream. *)
val of_prog : Prog.t -> t

(** Intra-function successors of a block.
    @raise Invalid_argument on unknown function or block. *)
val successors : t -> func:string -> label:Instr.label -> Instr.label list

(** Intra-function predecessors of a block — the candidate set RES
    enumerates at each backward step (Fig. 1's [Pred1]/[Pred2]).
    @raise Invalid_argument on unknown function or block. *)
val predecessors : t -> func:string -> label:Instr.label -> Instr.label list

(** Sites that call the function, empty if never called. *)
val call_sites_of : t -> string -> site list

(** Sites that spawn a thread running the function, empty if never
    spawned. *)
val spawn_sites_of : t -> string -> site list

(** Labels reachable from the function's entry, in BFS order. *)
val reachable_labels : t -> Func.t -> Instr.label list

(** Blocks never reachable from the function's entry. *)
val unreachable_labels : t -> Func.t -> Instr.label list
