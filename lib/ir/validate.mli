(** Static well-formedness checks for MiniIR programs.

    RES requires an accurate CFG (paper §6); the validator enforces the
    structural properties the rest of the system assumes: branch targets
    and called/spawned functions exist, arities match, parameters occupy
    registers [r0..rn-1], [main] exists and takes no parameters, globals
    are declared, immediates fit the word, the entry block is listed
    first, and terminators are canonical (no both-arms-equal [br], no
    negative terminator registers) — so summary computation and the CFG
    can assume canonical blocks. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** All well-formedness violations, empty when the program is valid. *)
val check : Prog.t -> error list

(** Identity on valid programs.
    @raise Invalid_argument with all violations rendered otherwise. *)
val check_exn : Prog.t -> Prog.t
