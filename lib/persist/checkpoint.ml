(** Crash-safe persistence of in-flight analyses.

    A checkpoint is a self-contained image of a running {!Res_core.Res}
    analysis: the program, the coredump, the analysis configuration, and
    the {!Res_core.Res.ckpt_state} (deepening position, suffixes of
    completed depths, the suspended search frontier, counters, fuel, and
    the fresh-symbol counter).  "Self-contained" is the point: a resumed
    process needs nothing but the checkpoint file to continue the analysis
    and produce bit-identical reports.

    The on-disk format reuses the coredump format's building blocks
    ({!Res_vm.Coredump_io}): a line-oriented text record under a
    [rescheckpoint v3] header, sealed with the FNV-1a
    [end <lines> <checksum>] footer, written via temp-file + atomic
    rename.  Loading classifies damage into the same {!dump_error}
    taxonomy as coredumps — truncation, bit corruption, and torn writes
    are detected, never silently analyzed.

    Journal recovery: the atomic writer's only intermediate state is a
    [.tmp] sibling.  {!load} first looks at the sibling — a {e valid}
    [.tmp] is a completed write that missed its rename (promote it), an
    invalid one is a torn write (delete it) — so no sequence of kills
    leaves a torn checkpoint behind. *)

module Io = Res_vm.Coredump_io
module IMap = Map.Make (Int)
open Res_solver

(** Everything a dead process's successor needs. *)
type t = {
  config : Res_core.Res.config;
  prog : Res_ir.Prog.t;
  dump : Res_vm.Coredump.t;
  state : Res_core.Res.ckpt_state;
}

let header = "rescheckpoint v3"

(* --- writers ------------------------------------------------------- *)

let pp_bool ppf b = Fmt.int ppf (if b then 1 else 0)
let pp_int_opt ppf = function None -> Fmt.string ppf "none" | Some n -> Fmt.int ppf n

(* Expressions in prefix form: unambiguous without delimiters. *)
let rec pp_expr ppf (e : Expr.t) =
  match e with
  | Expr.Const n -> Fmt.pf ppf "c %d" n
  | Expr.Sym s -> Fmt.pf ppf "s %d %S" s.Expr.id s.Expr.name
  | Expr.Binop (op, a, b) ->
      Fmt.pf ppf "b %s %a %a" (Res_ir.Instr.binop_name op) pp_expr a pp_expr b
  | Expr.Unop (op, a) ->
      Fmt.pf ppf "u %s %a" (Res_ir.Instr.unop_name op) pp_expr a
  | Expr.Ite (c, a, b) ->
      Fmt.pf ppf "i %a %a %a" pp_expr c pp_expr a pp_expr b

(* Count-prefixed sequences: the reader needs no terminator token. *)
let pp_seq pp_item ppf items =
  Fmt.pf ppf "%d" (List.length items);
  List.iter (fun x -> Fmt.pf ppf " %a" pp_item x) items

let pp_ints = pp_seq Fmt.int

let pp_seg_end ppf (e : Res_core.Suffix.segment_end) =
  match e with
  | Res_core.Suffix.Seg_branch l -> Fmt.pf ppf "br %S" l
  | Res_core.Suffix.Seg_ret -> Fmt.string ppf "ret"
  | Res_core.Suffix.Seg_halt -> Fmt.string ppf "halt"
  | Res_core.Suffix.Seg_crash k -> Fmt.pf ppf "crash %a" Io.pp_kind k
  | Res_core.Suffix.Seg_blocked -> Fmt.string ppf "blocked"

let pp_segment ppf (s : Res_core.Suffix.segment) =
  Fmt.pf ppf "seg %d %S %S %a writes %a reads %a inputs %a locks %a allocs %a spawns %a frees %a steps %d"
    s.Res_core.Suffix.seg_tid s.seg_func s.seg_block pp_seg_end s.seg_end
    pp_ints s.seg_writes pp_ints s.seg_reads
    (pp_seq (fun ppf (k, (sym : Expr.sym)) ->
         Fmt.pf ppf "%s %d %S" (Res_ir.Instr.input_kind_name k) sym.Expr.id
           sym.Expr.name))
    s.seg_inputs
    (pp_seq (fun ppf (acquire, addr) -> Fmt.pf ppf "%a %d" pp_bool acquire addr))
    s.seg_lock_ops pp_ints s.seg_allocs pp_ints s.seg_spawns pp_ints s.seg_frees
    s.seg_steps

let pp_frame ppf (fr : Res_symex.Symframe.t) =
  Fmt.pf ppf "frame %S %S %d %a %a regs %a" fr.Res_symex.Symframe.func fr.block
    fr.idx pp_int_opt fr.ret_reg pp_bool fr.lazy_pre
    (pp_seq (fun ppf (r, e) -> Fmt.pf ppf "%d %a" r pp_expr e))
    (IMap.bindings fr.regs)

let pp_thread ppf (ts : Res_core.Snapshot.thread_state) =
  Fmt.pf ppf "thread %d %a %a frames %a" ts.Res_core.Snapshot.ts_tid
    Io.pp_status ts.ts_status pp_bool ts.ts_stepped (pp_seq pp_frame)
    ts.ts_frames

let pp_heap_block ppf (b : Res_mem.Heap.block) =
  Fmt.pf ppf "%d %d %s %a %a" b.Res_mem.Heap.base b.size
    (match b.state with Res_mem.Heap.Live -> "live" | Res_mem.Heap.Freed -> "freed")
    Io.pp_site b.alloc_site Io.pp_site b.free_site

let pp_snapshot ppf (s : Res_core.Snapshot.t) =
  Fmt.pf ppf "mem %a@,over %a@,heap %d %a@,threads %a@,constraints %a"
    (pp_seq (fun ppf (a, v) -> Fmt.pf ppf "%d %d" a v))
    (Res_mem.Memory.bindings s.Res_core.Snapshot.mem_base)
    (pp_seq (fun ppf (a, e) -> Fmt.pf ppf "%d %a" a pp_expr e))
    (IMap.bindings s.mem_over)
    (Res_mem.Heap.next_addr s.heap)
    (pp_seq pp_heap_block)
    (Res_mem.Heap.blocks s.heap)
    (pp_seq pp_thread)
    (List.map snd (IMap.bindings s.threads))
    (pp_seq pp_expr) s.constraints

(* The crash kind last: [Deadlock]'s tid list is variable-length and the
   reader consumes ints greedily. *)
let pp_crash ppf (c : Res_vm.Crash.t) =
  Fmt.pf ppf "crash %d %a %a" c.Res_vm.Crash.tid Io.pp_pc c.pc Io.pp_kind c.kind

let pp_suffix ppf (sx : Res_core.Suffix.t) =
  Fmt.pf ppf "@[<v>suffix %a@,%a@,segments %a@,%a@,model %a@]" pp_bool
    sx.Res_core.Suffix.complete pp_crash sx.crash (pp_seq pp_segment)
    sx.segments pp_snapshot sx.snapshot
    (pp_seq (fun ppf (id, v) -> Fmt.pf ppf "%d %d" id v))
    (Model.bindings sx.model)

let pp_branch ppf (b : Res_vm.Tracer.branch) =
  Fmt.pf ppf "%d %S %S %S" b.Res_vm.Tracer.br_tid b.br_func b.br_from b.br_to

let pp_log ppf (l : Res_vm.Tracer.log_entry) =
  Fmt.pf ppf "%d %S %d" l.Res_vm.Tracer.log_tid l.log_tag l.log_value

let pp_node ppf (n : Res_core.Search.node) =
  Fmt.pf ppf "@[<v>node %d@,touched %a@,logs %a@,crumbs %a@,segments %a@,%a@]"
    n.Res_core.Search.n_last_tid pp_ints n.n_touched (pp_seq pp_log) n.n_logs
    (pp_seq (fun ppf (tid, branches) ->
         Fmt.pf ppf "%d %a" tid (pp_seq pp_branch) branches))
    (IMap.bindings n.n_crumbs)
    (pp_seq pp_segment) n.n_segments pp_snapshot n.n_snapshot

let pp_bkind ppf (k : Res_core.Backstep.kind) =
  match k with
  | Res_core.Backstep.K_partial None -> Fmt.string ppf "partial none"
  | Res_core.Backstep.K_partial (Some ck) ->
      Fmt.pf ppf "partial some %a" Io.pp_kind ck
  | Res_core.Backstep.K_full { block } -> Fmt.pf ppf "full %S" block
  | Res_core.Backstep.K_final { func; block } ->
      Fmt.pf ppf "final %S %S" func block

let pp_crumbs ppf (crumbs : Res_core.Search.crumbs) =
  (pp_seq (fun ppf (tid, branches) ->
       Fmt.pf ppf "%d %a" tid (pp_seq pp_branch) branches))
    ppf (IMap.bindings crumbs)

let pp_item ppf (it : Res_core.Search.frontier_item) =
  match it with
  | Res_core.Search.F_visit { f_depth; f_node } ->
      Fmt.pf ppf "item visit %d@,%a" f_depth pp_node f_node
  | Res_core.Search.F_eval { e_depth; e_parent; e_node; e_move } ->
      Fmt.pf ppf "item eval %d %d %d %a crumbs %a@,%a" e_depth e_parent
        e_move.Res_core.Search.mv_tid pp_bkind e_move.mv_kind pp_crumbs
        e_move.mv_crumbs pp_node e_node
  | Res_core.Search.F_seal { s_parent; s_node } ->
      Fmt.pf ppf "item seal %d@,%a" s_parent pp_node s_node

let pp_suspended ppf (s : Res_core.Search.suspended) =
  Fmt.pf ppf "@[<v>suspended 1 %d %d %d %d %d %d %d %d@,out %a@,frontier %a@]"
    s.Res_core.Search.s_nodes s.s_candidates s.s_feasible s.s_emitted
    s.s_pruned s.s_reversed s.s_slice_skipped s.s_next_id (pp_seq pp_suffix)
    s.s_out (pp_seq pp_item) s.s_frontier

let to_string (c : t) =
  let cfg = c.config in
  let sc = cfg.Res_core.Res.search in
  let st = c.state in
  let payload =
    Fmt.str
      "@[<v>%s@,config %d %d %d %a %a %a %d %a %d@,prog %S@,dump %S@,state %d %d %d %a %d %d %d %d %d %d %d@,fuel %a@,suffixes %a@,%a@]@."
      header sc.Res_core.Search.max_segments sc.max_suffixes sc.max_nodes
      pp_bool sc.use_breadcrumbs pp_bool sc.static_prune pp_bool sc.reverse_exec
      cfg.determinism_runs pp_bool cfg.stop_at_first_cause cfg.max_attempts
      (Res_ir.Prog.to_string c.prog)
      (Io.to_string c.dump) st.Res_core.Res.ck_attempt st.ck_max_nodes
      st.ck_depth pp_bool st.ck_truncated st.ck_nodes st.ck_cands st.ck_pruned
      st.ck_reversed st.ck_slice_skipped st.ck_synth st.ck_expr_counter
      pp_int_opt st.ck_fuel (pp_seq pp_suffix) st.ck_suffixes
      (fun ppf -> function
        | None -> Fmt.string ppf "suspended 0"
        | Some s -> pp_suspended ppf s)
      st.ck_suspended
  in
  Res_core.Sealing.seal payload

(* --- readers ------------------------------------------------------- *)

let keyword rd expected =
  let got = Io.ident rd in
  if not (String.equal got expected) then
    Io.fail "expected %S, got %S" expected got

let bool_of rd =
  match Io.int_tok rd with
  | 0 -> false
  | 1 -> true
  | n -> Io.fail "expected boolean 0/1, got %d" n

let int_opt_of rd =
  match Io.peek rd with
  | Some (Res_ir.Parser.IDENT "none") ->
      ignore (Io.next rd);
      None
  | _ -> Some (Io.int_tok rd)

(* Count-prefixed sequence, read strictly left to right.  The count is
   untrusted bytes: it is bounds-checked before the first element is
   read, so a forged header can never size an allocation. *)
let seq_of rd f =
  let n = Res_core.Sealing.check_count ~what:"sequence" (Io.int_tok rd) in
  let rec go acc k = if k = 0 then List.rev acc else go (f rd :: acc) (k - 1) in
  go [] n

let ints_of rd = seq_of rd Io.int_tok

(* Deeper than any expression the solver actually builds, shallow
   enough that a hostile checkpoint gets a typed error instead of
   exhausting the stack. *)
let max_expr_depth = 10_000

let rec expr_at d rd : Expr.t =
  if d > max_expr_depth then Io.fail "expression too deeply nested";
  match Io.ident rd with
  | "c" -> Expr.Const (Io.int_tok rd)
  | "s" ->
      let id = Io.int_tok rd in
      let name = Io.string_tok rd in
      Expr.Sym { Expr.id; name }
  | "b" -> (
      match Res_ir.Instr.binop_of_name (Io.ident rd) with
      | Some op ->
          let a = expr_at (d + 1) rd in
          let b = expr_at (d + 1) rd in
          Expr.Binop (op, a, b)
      | None -> Io.fail "unknown binary operator")
  | "u" -> (
      match Res_ir.Instr.unop_of_name (Io.ident rd) with
      | Some op -> Expr.Unop (op, expr_at (d + 1) rd)
      | None -> Io.fail "unknown unary operator")
  | "i" ->
      let c = expr_at (d + 1) rd in
      let a = expr_at (d + 1) rd in
      let b = expr_at (d + 1) rd in
      Expr.Ite (c, a, b)
  | k -> Io.fail "unknown expression tag %S" k

let expr_of rd = expr_at 0 rd

let seg_end_of rd : Res_core.Suffix.segment_end =
  match Io.ident rd with
  | "br" -> Res_core.Suffix.Seg_branch (Io.string_tok rd)
  | "ret" -> Res_core.Suffix.Seg_ret
  | "halt" -> Res_core.Suffix.Seg_halt
  | "crash" -> Res_core.Suffix.Seg_crash (Io.kind_of rd)
  | "blocked" -> Res_core.Suffix.Seg_blocked
  | k -> Io.fail "unknown segment end %S" k

let segment_of rd : Res_core.Suffix.segment =
  keyword rd "seg";
  let seg_tid = Io.int_tok rd in
  let seg_func = Io.string_tok rd in
  let seg_block = Io.string_tok rd in
  let seg_end = seg_end_of rd in
  keyword rd "writes";
  let seg_writes = ints_of rd in
  keyword rd "reads";
  let seg_reads = ints_of rd in
  keyword rd "inputs";
  let seg_inputs =
    seq_of rd (fun rd ->
        match Res_ir.Instr.input_kind_of_name (Io.ident rd) with
        | Some k ->
            let id = Io.int_tok rd in
            let name = Io.string_tok rd in
            (k, { Expr.id; name })
        | None -> Io.fail "unknown input kind")
  in
  keyword rd "locks";
  let seg_lock_ops =
    seq_of rd (fun rd ->
        let acquire = bool_of rd in
        (acquire, Io.int_tok rd))
  in
  keyword rd "allocs";
  let seg_allocs = ints_of rd in
  keyword rd "spawns";
  let seg_spawns = ints_of rd in
  keyword rd "frees";
  let seg_frees = ints_of rd in
  keyword rd "steps";
  let seg_steps = Io.int_tok rd in
  {
    Res_core.Suffix.seg_tid;
    seg_func;
    seg_block;
    seg_end;
    seg_writes;
    seg_reads;
    seg_inputs;
    seg_lock_ops;
    seg_allocs;
    seg_spawns;
    seg_frees;
    seg_steps;
  }

let frame_of rd : Res_symex.Symframe.t =
  keyword rd "frame";
  let func = Io.string_tok rd in
  let block = Io.string_tok rd in
  let idx = Io.int_tok rd in
  let ret_reg = int_opt_of rd in
  let lazy_pre = bool_of rd in
  keyword rd "regs";
  let regs =
    seq_of rd (fun rd ->
        let r = Io.int_tok rd in
        (r, expr_of rd))
    |> List.fold_left (fun m (r, e) -> IMap.add r e m) IMap.empty
  in
  { Res_symex.Symframe.func; block; idx; regs; ret_reg; lazy_pre }

let thread_of rd : Res_core.Snapshot.thread_state =
  keyword rd "thread";
  let ts_tid = Io.int_tok rd in
  let ts_status = Io.status_of rd in
  let ts_stepped = bool_of rd in
  keyword rd "frames";
  let ts_frames = seq_of rd frame_of in
  { Res_core.Snapshot.ts_tid; ts_frames; ts_status; ts_stepped }

let heap_block_of rd : Res_mem.Heap.block =
  let base = Io.int_tok rd in
  let size = Io.int_tok rd in
  let state =
    match Io.ident rd with
    | "live" -> Res_mem.Heap.Live
    | "freed" -> Res_mem.Heap.Freed
    | s -> Io.fail "unknown heap block state %S" s
  in
  let alloc_site = Io.site_of rd in
  let free_site = Io.site_of rd in
  { Res_mem.Heap.base; size; state; alloc_site; free_site }

let snapshot_of rd : Res_core.Snapshot.t =
  keyword rd "mem";
  let mem_base =
    seq_of rd (fun rd ->
        let a = Io.int_tok rd in
        (a, Io.int_tok rd))
    |> List.fold_left
         (fun m (a, v) -> Res_mem.Memory.write m a v)
         Res_mem.Memory.empty
  in
  keyword rd "over";
  let mem_over =
    seq_of rd (fun rd ->
        let a = Io.int_tok rd in
        (a, expr_of rd))
    |> List.fold_left (fun m (a, e) -> IMap.add a e m) IMap.empty
  in
  keyword rd "heap";
  let next = Io.int_tok rd in
  let heap = Res_mem.Heap.of_blocks ~next (seq_of rd heap_block_of) in
  keyword rd "threads";
  let threads =
    seq_of rd thread_of
    |> List.fold_left
         (fun m (ts : Res_core.Snapshot.thread_state) ->
           IMap.add ts.Res_core.Snapshot.ts_tid ts m)
         IMap.empty
  in
  keyword rd "constraints";
  let constraints = seq_of rd expr_of in
  { Res_core.Snapshot.mem_base; mem_over; heap; threads; constraints }

let crash_of rd : Res_vm.Crash.t =
  keyword rd "crash";
  let tid = Io.int_tok rd in
  let pc = Io.pc_of rd in
  let kind = Io.kind_of rd in
  { Res_vm.Crash.kind; tid; pc }

let suffix_of rd : Res_core.Suffix.t =
  keyword rd "suffix";
  let complete = bool_of rd in
  let crash = crash_of rd in
  keyword rd "segments";
  let segments = seq_of rd segment_of in
  let snapshot = snapshot_of rd in
  keyword rd "model";
  let model =
    seq_of rd (fun rd ->
        let id = Io.int_tok rd in
        (id, Io.int_tok rd))
    |> List.fold_left
         (fun m (id, v) -> Model.add { Expr.id; name = "" } v m)
         Model.empty
  in
  { Res_core.Suffix.segments; snapshot; model; crash; complete }

let log_of rd : Res_vm.Tracer.log_entry =
  let log_tid = Io.int_tok rd in
  let log_tag = Io.string_tok rd in
  let log_value = Io.int_tok rd in
  { Res_vm.Tracer.log_tid; log_tag; log_value }

let branch_of rd : Res_vm.Tracer.branch =
  let br_tid = Io.int_tok rd in
  let br_func = Io.string_tok rd in
  let br_from = Io.string_tok rd in
  let br_to = Io.string_tok rd in
  { Res_vm.Tracer.br_tid; br_func; br_from; br_to }

let node_of rd : Res_core.Search.node =
  keyword rd "node";
  let n_last_tid = Io.int_tok rd in
  keyword rd "touched";
  let n_touched = ints_of rd in
  keyword rd "logs";
  let n_logs = seq_of rd log_of in
  keyword rd "crumbs";
  let n_crumbs =
    seq_of rd (fun rd ->
        let tid = Io.int_tok rd in
        (tid, seq_of rd branch_of))
    |> List.fold_left (fun m (tid, bs) -> IMap.add tid bs m) IMap.empty
  in
  keyword rd "segments";
  let n_segments = seq_of rd segment_of in
  let n_snapshot = snapshot_of rd in
  {
    Res_core.Search.n_snapshot;
    n_segments;
    n_crumbs;
    n_logs;
    n_last_tid;
    n_touched;
  }

let bkind_of rd : Res_core.Backstep.kind =
  match Io.ident rd with
  | "partial" -> (
      match Io.ident rd with
      | "none" -> Res_core.Backstep.K_partial None
      | "some" -> Res_core.Backstep.K_partial (Some (Io.kind_of rd))
      | k -> Io.fail "unknown partial tag %S" k)
  | "full" -> Res_core.Backstep.K_full { block = Io.string_tok rd }
  | "final" ->
      let func = Io.string_tok rd in
      let block = Io.string_tok rd in
      Res_core.Backstep.K_final { func; block }
  | k -> Io.fail "unknown backstep kind %S" k

let crumbs_of rd : Res_core.Search.crumbs =
  seq_of rd (fun rd ->
      let tid = Io.int_tok rd in
      (tid, seq_of rd branch_of))
  |> List.fold_left (fun m (tid, bs) -> IMap.add tid bs m) IMap.empty

let item_of rd : Res_core.Search.frontier_item =
  keyword rd "item";
  match Io.ident rd with
  | "visit" ->
      let f_depth = Io.int_tok rd in
      Res_core.Search.F_visit { f_depth; f_node = node_of rd }
  | "eval" ->
      let e_depth = Io.int_tok rd in
      let e_parent = Io.int_tok rd in
      let mv_tid = Io.int_tok rd in
      let mv_kind = bkind_of rd in
      keyword rd "crumbs";
      let mv_crumbs = crumbs_of rd in
      Res_core.Search.F_eval
        {
          e_depth;
          e_parent;
          e_node = node_of rd;
          e_move = { Res_core.Search.mv_tid; mv_kind; mv_crumbs };
        }
  | "seal" ->
      let s_parent = Io.int_tok rd in
      Res_core.Search.F_seal { s_parent; s_node = node_of rd }
  | k -> Io.fail "unknown frontier item tag %S" k

let suspended_of rd : Res_core.Search.suspended option =
  keyword rd "suspended";
  match Io.int_tok rd with
  | 0 -> None
  | 1 ->
      let s_nodes = Io.int_tok rd in
      let s_candidates = Io.int_tok rd in
      let s_feasible = Io.int_tok rd in
      let s_emitted = Io.int_tok rd in
      let s_pruned = Io.int_tok rd in
      let s_reversed = Io.int_tok rd in
      let s_slice_skipped = Io.int_tok rd in
      let s_next_id = Io.int_tok rd in
      keyword rd "out";
      let s_out = seq_of rd suffix_of in
      keyword rd "frontier";
      let s_frontier = seq_of rd item_of in
      Some
        {
          Res_core.Search.s_frontier;
          s_nodes;
          s_candidates;
          s_feasible;
          s_emitted;
          s_pruned;
          s_reversed;
          s_slice_skipped;
          s_next_id;
          s_out;
        }
  | n -> Io.fail "expected suspended 0/1, got %d" n

let parse_payload payload : t =
  let rd = { Io.toks = Res_ir.Parser.tokenize payload } in
  keyword rd "rescheckpoint";
  keyword rd "v3";
  keyword rd "config";
  let max_segments = Io.int_tok rd in
  let max_suffixes = Io.int_tok rd in
  let max_nodes = Io.int_tok rd in
  let use_breadcrumbs = bool_of rd in
  let static_prune = bool_of rd in
  let reverse_exec = bool_of rd in
  let determinism_runs = Io.int_tok rd in
  let stop_at_first_cause = bool_of rd in
  let max_attempts = Io.int_tok rd in
  let config =
    {
      Res_core.Res.search =
        {
          Res_core.Search.max_segments;
          max_suffixes;
          max_nodes;
          use_breadcrumbs;
          static_prune;
          reverse_exec;
        };
      determinism_runs;
      stop_at_first_cause;
      max_attempts;
    }
  in
  keyword rd "prog";
  let prog = Res_ir.Parser.parse (Io.string_tok rd) in
  keyword rd "dump";
  let dump =
    match Io.of_string_result (Io.string_tok rd) with
    | Ok { Io.dump; _ } -> dump
    | Error e -> Io.fail "embedded coredump: %s" (Io.dump_error_to_string e)
  in
  keyword rd "state";
  let ck_attempt = Io.int_tok rd in
  let ck_max_nodes = Io.int_tok rd in
  let ck_depth = Io.int_tok rd in
  let ck_truncated = bool_of rd in
  let ck_nodes = Io.int_tok rd in
  let ck_cands = Io.int_tok rd in
  let ck_pruned = Io.int_tok rd in
  let ck_reversed = Io.int_tok rd in
  let ck_slice_skipped = Io.int_tok rd in
  let ck_synth = Io.int_tok rd in
  let ck_expr_counter = Io.int_tok rd in
  keyword rd "fuel";
  let ck_fuel = int_opt_of rd in
  keyword rd "suffixes";
  let ck_suffixes = seq_of rd suffix_of in
  let ck_suspended = suspended_of rd in
  (match Io.peek rd with
  | None -> ()
  | Some _ -> Io.fail "trailing tokens after checkpoint record");
  {
    config;
    prog;
    dump;
    state =
      {
        Res_core.Res.ck_attempt;
        ck_max_nodes;
        ck_depth;
        ck_suffixes;
        ck_truncated;
        ck_nodes;
        ck_cands;
        ck_pruned;
        ck_reversed;
        ck_slice_skipped;
        ck_synth;
        ck_suspended;
        ck_fuel;
        ck_expr_counter;
      };
  }

let of_string src : (t, Io.dump_error) result =
  match Res_core.Sealing.validate ~header src with
  | Error e -> Error e
  | Ok payload -> (
      try Ok (parse_payload payload) with
      | Io.Bad_format m -> Error (Io.Malformed m)
      | Res_ir.Parser.Parse_error { line; msg } ->
          Error (Io.Malformed (Fmt.str "embedded program, line %d: %s" line msg))
      | exn -> Error (Io.Malformed (Printexc.to_string exn)))

(* --- files --------------------------------------------------------- *)

let save path c = Res_core.Ioshim.write_file_atomic path (to_string c)

(** Journal recovery for the atomic writer's intermediate states, the
    [path.<pid>.<n>.tmp] siblings (plus the legacy [path.tmp]): a valid
    one is a completed write that died before its rename — promote it; an
    invalid one is a torn write — delete it.  Siblings are scanned in
    sorted order (deterministic), so with several valid journals the
    lexicographically last wins. *)
let recover_journal_with ~valid path =
  List.iter
    (fun tmp ->
      match Res_core.Ioshim.read_file tmp with
      | Error _ -> ()
      | Ok src ->
          if valid src then (try Sys.rename tmp path with Sys_error _ -> ())
          else try Sys.remove tmp with Sys_error _ -> ())
    (Io.journal_siblings path)

let recover_journal path =
  recover_journal_with ~valid:(Res_core.Sealing.valid ~header) path

(** Directory-wide journal recovery: map every [.tmp] entry back to its
    destination by stripping the [.<pid>.<n>] journal suffix (or the
    legacy bare [.tmp]), then promote-or-delete each with the
    destination's own validator.  One copy of the stem arithmetic,
    shared by the spool, the cluster journal, and the result cache. *)
let recover_dir ~valid_for dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      let dests = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if Filename.check_suffix e ".tmp" then begin
            let stem = Filename.chop_suffix e ".tmp" in
            let num s i =
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
              <> None
            in
            let stem =
              match String.rindex_opt stem '.' with
              | Some i when num stem i -> (
                  let stem2 = String.sub stem 0 i in
                  match String.rindex_opt stem2 '.' with
                  | Some j when num stem2 j -> String.sub stem2 0 j
                  | _ -> stem)
              | _ -> stem
            in
            Hashtbl.replace dests (Filename.concat dir stem) ()
          end)
        entries;
      Hashtbl.iter
        (fun dest () -> recover_journal_with ~valid:(valid_for dest) dest)
        dests

let load path : (t, Io.dump_error) result =
  recover_journal path;
  match Res_core.Ioshim.read_file path with
  | Error e -> Error e
  | Ok src -> of_string src

(* --- wiring into the analysis -------------------------------------- *)

(** A {!Res_core.Res.checkpointer} that persists every state to [path].
    Write failures are reported as [Error] (the analysis keeps going with
    its previous good checkpoint). *)
let checkpointer ?(every = 25) ~path ~config ~prog ~dump () =
  {
    Res_core.Res.ck_every = every;
    ck_write =
      (fun state ->
        match save path { config; prog; dump; state } with
        | () -> Ok path
        | exception exn -> Error (Printexc.to_string exn));
  }
