(** Crash-safe persistence of in-flight analyses.

    A checkpoint is a self-contained image of a running {!Res_core.Res}
    analysis — program, coredump, configuration, and the
    {!Res_core.Res.ckpt_state} (deepening position, suffixes of completed
    depths, suspended search frontier, counters, fuel, fresh-symbol
    counter).  A resumed process needs nothing but the checkpoint file to
    continue the analysis and produce bit-identical reports.

    The format reuses the coredump format's hardening: versioned header,
    FNV-1a [end <lines> <checksum>] footer, atomic temp-file + rename
    writes, and {!Res_vm.Coredump_io.dump_error}-classified loading.
    [of_string (to_string c)] round-trips exactly (property-tested). *)

(** Everything a dead process's successor needs. *)
type t = {
  config : Res_core.Res.config;
  prog : Res_ir.Prog.t;
  dump : Res_vm.Coredump.t;
  state : Res_core.Res.ckpt_state;
}

(** Serialize to the sealed textual format. *)
val to_string : t -> string

(** Parse and validate, classifying damage (truncation, bit corruption,
    bad header) instead of raising. *)
val of_string : string -> (t, Res_vm.Coredump_io.dump_error) result

(** Write a checkpoint atomically (temp file + rename): a crash mid-write
    never leaves a torn file at [path]. *)
val save : string -> t -> unit

(** Recover the atomic writer's journals at [path.<pid>.<n>.tmp] (and the
    legacy [path ^ ".tmp"]), if any: a valid sibling is a completed write
    that died before its rename — promote it over [path]; an invalid
    sibling is a torn write — delete it.  Idempotent; called automatically
    by {!load}. *)
val recover_journal : string -> unit

(** The same promote-or-delete journal recovery for {e any} sealed on-disk
    format: [valid src] decides whether a journal's bytes are a completed
    write.  The triage daemon's request spool recovers its [.req]/[.res]
    journals through this. *)
val recover_journal_with : valid:(string -> bool) -> string -> unit

(** Journal recovery across a whole directory: for every [.tmp] sibling
    found under [dir], derive its destination (stripping the
    [.<pid>.<n>.tmp] journal suffix, or the legacy [.tmp]) and
    promote/delete it with {!recover_journal_with}, using
    [valid_for dest] as that destination's validator.  The request
    spool, the cluster result journal, and the result cache all boot
    through this. *)
val recover_dir : valid_for:(string -> string -> bool) -> string -> unit

(** Load a checkpoint, after {!recover_journal}. *)
val load : string -> (t, Res_vm.Coredump_io.dump_error) result

(** {2 Wire-format building blocks}

    The printers/readers for the checkpoint format's inner records,
    exposed so {!Res_parallel} can reuse the suspend/resume frontier
    encoding as its work-unit wire format (a shard of the search frontier
    travels to a worker as a [suspended] record; emitted suffixes travel
    back the same way).  Each [pp_x] output is read back by the matching
    [x_of]; both sides are whitespace-tolerant token streams. *)

val pp_suffix : Format.formatter -> Res_core.Suffix.t -> unit
val suffix_of : Res_vm.Coredump_io.reader -> Res_core.Suffix.t
val pp_item : Format.formatter -> Res_core.Search.frontier_item -> unit
val item_of : Res_vm.Coredump_io.reader -> Res_core.Search.frontier_item

(** [pp_suspended] writes a [suspended 1 ...] record; [suspended_of] also
    accepts [suspended 0] (= [None]), the between-depths case. *)
val pp_suspended : Format.formatter -> Res_core.Search.suspended -> unit
val suspended_of : Res_vm.Coredump_io.reader -> Res_core.Search.suspended option

(** A {!Res_core.Res.checkpointer} persisting to [path] every [every]
    expanded nodes (default 25).  Write failures surface as [Error] and
    leave the previous good checkpoint in place. *)
val checkpointer :
  ?every:int ->
  path:string ->
  config:Res_core.Res.config ->
  prog:Res_ir.Prog.t ->
  dump:Res_vm.Coredump.t ->
  unit ->
  Res_core.Res.checkpointer
