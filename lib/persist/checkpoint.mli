(** Crash-safe persistence of in-flight analyses.

    A checkpoint is a self-contained image of a running {!Res_core.Res}
    analysis — program, coredump, configuration, and the
    {!Res_core.Res.ckpt_state} (deepening position, suffixes of completed
    depths, suspended search frontier, counters, fuel, fresh-symbol
    counter).  A resumed process needs nothing but the checkpoint file to
    continue the analysis and produce bit-identical reports.

    The format reuses the coredump format's hardening: versioned header,
    FNV-1a [end <lines> <checksum>] footer, atomic temp-file + rename
    writes, and {!Res_vm.Coredump_io.dump_error}-classified loading.
    [of_string (to_string c)] round-trips exactly (property-tested). *)

(** Everything a dead process's successor needs. *)
type t = {
  config : Res_core.Res.config;
  prog : Res_ir.Prog.t;
  dump : Res_vm.Coredump.t;
  state : Res_core.Res.ckpt_state;
}

(** Serialize to the sealed textual format. *)
val to_string : t -> string

(** Parse and validate, classifying damage (truncation, bit corruption,
    bad header) instead of raising. *)
val of_string : string -> (t, Res_vm.Coredump_io.dump_error) result

(** Write a checkpoint atomically (temp file + rename): a crash mid-write
    never leaves a torn file at [path]. *)
val save : string -> t -> unit

(** Recover the atomic writer's journal at [path ^ ".tmp"], if any: a
    valid sibling is a completed write that died before its rename —
    promote it over [path]; an invalid sibling is a torn write — delete
    it.  Idempotent; called automatically by {!load}. *)
val recover_journal : string -> unit

(** Load a checkpoint, after {!recover_journal}. *)
val load : string -> (t, Res_vm.Coredump_io.dump_error) result

(** A {!Res_core.Res.checkpointer} persisting to [path] every [every]
    expanded nodes (default 25).  Write failures surface as [Error] and
    leave the previous good checkpoint in place. *)
val checkpointer :
  ?every:int ->
  path:string ->
  config:Res_core.Res.config ->
  prog:Res_ir.Prog.t ->
  dump:Res_vm.Coredump.t ->
  unit ->
  Res_core.Res.checkpointer
