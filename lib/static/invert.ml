(** Static invertibility: which blocks can the backward search step
    across {e without} symbolic execution?

    A block is invertible when every effect it has on the post-state can
    be recomputed, or un-computed, from the post-state alone: pure
    arithmetic inverts algebraically ([add r, c] un-does as a subtract),
    a store un-does by recovering the overwritten cell's pre-value (or
    proving it dead per the slice), and a load constrains its source
    cell.  Instructions that interact with anything outside the
    register file and resolvable memory — calls, inputs, heap
    management, locks, thread operations, log breadcrumbs — are
    barriers: their effects involve state the concrete reverse engine
    does not model, so the classifier rejects the block and the search
    falls back to the symbolic step.

    The classifier is purely syntactic over one block plus the
    {!Summary} lattice (used to explain call barriers); the per-segment
    dynamic conditions — concrete post-state, no relaxed constraints —
    are checked by [Backstep] at step time.  {!Revexec} consumes the
    {!plan} this module synthesizes. *)

module ISet = Set.Make (Int)

(** Right-hand side of a pure definition, as reverse-executable data. *)
type rhs =
  | Rhs_const of int
  | Rhs_mov of int
  | Rhs_binop of Res_ir.Instr.binop * int * int
  | Rhs_unop of Res_ir.Instr.unop * int
  | Rhs_global of string

(** One reverse operation.  [idx] is the instruction's index in the
    source block (for deadness queries and diagnostics). *)
type rop =
  | R_def of { idx : int; dst : int; rhs : rhs }
  | R_load of { idx : int; dst : int; addr : int; off : int }
  | R_store of { idx : int; addr : int; off : int; src : int }
  | R_check of { idx : int; reg : int }  (** assert: [reg] must be nonzero *)

(** Reverse plan for the terminator. *)
type term_plan =
  | T_jmp of string
  | T_br of { reg : int; if_nonzero : string; if_zero : string }

(** A synthesized reverse program for one block.  [pl_rops] is in
    {e reverse} program order (last instruction first) with sliced-out
    pure definitions omitted; [pl_n_instrs] counts the full block so the
    fast path reports the same step count as the symbolic executor. *)
type plan = {
  pl_block : string;
  pl_rops : rop list;
  pl_term : term_plan;
  pl_live_in : ISet.t;  (** upward-exposed registers of the sliced block *)
  pl_defined : ISet.t;  (** all registers the full block defines *)
  pl_n_instrs : int;
  pl_slice : Slice.t;
}

type verdict = Invertible of plan | Not_invertible of string

(* Classify one instruction.  [Ok None]: no effect to reverse.  The
   optional summary refines the reason for call barriers: a call is
   never invertible here (a full-block segment never spans a callee —
   calls are inlined into multi-frame segments the fast path does not
   handle), but an unresolved mod/ref summary is worth naming since no
   amount of inlining will make it concrete. *)
let instr_plan ?summary ~idx (i : Res_ir.Instr.instr) =
  match i with
  | Res_ir.Instr.Const (d, n) -> Ok (Some (R_def { idx; dst = d; rhs = Rhs_const n }))
  | Mov (d, a) -> Ok (Some (R_def { idx; dst = d; rhs = Rhs_mov a }))
  | Binop (op, d, a, b) ->
      Ok (Some (R_def { idx; dst = d; rhs = Rhs_binop (op, a, b) }))
  | Unop (op, d, a) -> Ok (Some (R_def { idx; dst = d; rhs = Rhs_unop (op, a) }))
  | Global_addr (d, g) -> Ok (Some (R_def { idx; dst = d; rhs = Rhs_global g }))
  | Load (d, a, off) -> Ok (Some (R_load { idx; dst = d; addr = a; off }))
  | Store (a, off, s) -> Ok (Some (R_store { idx; addr = a; off; src = s }))
  | Assert (r, _) -> Ok (Some (R_check { idx; reg = r }))
  | Nop -> Ok None
  | Log (tag, _) -> Error (Fmt.str "log %S emits a breadcrumb" tag)
  | Call (_, callee, _) ->
      let unresolved =
        match summary with
        | None -> false
        | Some s ->
            let t = Summary.transitive s callee in
            t.Summary.s_mod.Summary.f_unknown
            || t.Summary.s_ref.Summary.f_unknown
      in
      Error
        (if unresolved then
           Fmt.str "call %s: unresolved mod/ref summary" callee
         else Fmt.str "call %s: segment spans the callee" callee)
  | Input (_, k) ->
      Error (Fmt.str "input %s is non-deterministic" (Res_ir.Instr.input_kind_name k))
  | Alloc _ -> Error "alloc mutates the heap"
  | Free _ -> Error "free mutates the heap"
  | Lock _ -> Error "lock is a synchronization point"
  | Unlock _ -> Error "unlock is a synchronization point"
  | Spawn _ -> Error "spawn creates a thread"
  | Join _ -> Error "join is a synchronization point"

(** Classify [b] and synthesize its reverse plan. *)
let classify ?summary (b : Res_ir.Block.t) : verdict =
  let open Res_ir in
  match
    match b.term with
    | Instr.Jmp l -> Ok (T_jmp l)
    | Instr.Br (r, l1, l0) -> Ok (T_br { reg = r; if_nonzero = l1; if_zero = l0 })
    | Instr.Ret _ -> Error "ret terminator leaves the segment's frame"
    | Instr.Halt -> Error "halt terminator ends the thread"
    | Instr.Abort _ -> Error "abort terminator crashes"
  with
  | Error e -> Not_invertible e
  | Ok pl_term -> (
      let sl = Slice.of_block b in
      let n = Block.length b in
      let rec build i acc =
        if i >= n then Ok acc
        else if not sl.Slice.sl_keep.(i) then build (i + 1) acc
        else
          match instr_plan ?summary ~idx:i b.instrs.(i) with
          | Error e -> Error (Fmt.str "instr %d: %s" i e)
          | Ok None -> build (i + 1) acc
          | Ok (Some r) -> build (i + 1) (r :: acc)
      in
      match build 0 [] with
      | Error e -> Not_invertible e
      | Ok rops ->
          (* Upward-exposed registers of the sliced block: used by a
             kept instruction (or the terminator) before any kept
             definition. *)
          let live_in =
            let defined = ref ISet.empty in
            let live = ref ISet.empty in
            let use r = if not (ISet.mem r !defined) then live := ISet.add r !live in
            List.iter
              (fun rop ->
                match rop with
                | R_def { dst; rhs; _ } ->
                    (match rhs with
                    | Rhs_const _ | Rhs_global _ -> ()
                    | Rhs_mov a | Rhs_unop (_, a) -> use a
                    | Rhs_binop (_, a, b') ->
                        use a;
                        use b');
                    defined := ISet.add dst !defined
                | R_load { dst; addr; _ } ->
                    use addr;
                    defined := ISet.add dst !defined
                | R_store { addr; src; _ } ->
                    use addr;
                    use src
                | R_check { reg; _ } -> use reg)
              (List.rev rops);
            (match pl_term with
            | T_jmp _ -> ()
            | T_br { reg; _ } -> use reg);
            !live
          in
          Invertible
            {
              pl_block = b.label;
              pl_rops = rops;
              pl_term;
              pl_live_in = live_in;
              pl_defined = ISet.of_list (Block.defined_regs b);
              pl_n_instrs = n;
              pl_slice = sl;
            })

let pp_rhs ppf = function
  | Rhs_const n -> Fmt.pf ppf "const %d" n
  | Rhs_mov a -> Fmt.pf ppf "mov r%d" a
  | Rhs_binop (op, a, b) ->
      Fmt.pf ppf "%s r%d, r%d" (Res_ir.Instr.binop_name op) a b
  | Rhs_unop (op, a) -> Fmt.pf ppf "%s r%d" (Res_ir.Instr.unop_name op) a
  | Rhs_global g -> Fmt.pf ppf "global %s" g

let pp_rop ppf = function
  | R_def { idx; dst; rhs } ->
      Fmt.pf ppf "@%d undo r%d = %a" idx dst pp_rhs rhs
  | R_load { idx; dst; addr; off } ->
      Fmt.pf ppf "@%d undo r%d = load r%d[%d]" idx dst addr off
  | R_store { idx; addr; off; src } ->
      Fmt.pf ppf "@%d undo store r%d[%d] = r%d" idx addr off src
  | R_check { idx; reg } -> Fmt.pf ppf "@%d require r%d <> 0" idx reg

(** Render the synthesized reverse code (reverse program order). *)
let pp_plan ppf p =
  Fmt.pf ppf "@[<v>reverse %s (%d instrs, %d sliced):@,%a@]" p.pl_block
    p.pl_n_instrs p.pl_slice.Slice.sl_skipped
    Fmt.(list ~sep:cut pp_rop)
    p.pl_rops

(** Program-wide static coverage, for [res check]: how many instructions
    are individually invertible, out of how many, and how large the
    crash slice is. *)
type coverage = { cov_invertible : int; cov_total : int; cov_slice : int }

let program_coverage (p : Res_ir.Prog.t) =
  let summary = Summary.of_prog p in
  let inv = ref 0 and tot = ref 0 and slice = ref 0 in
  List.iter
    (fun (f : Res_ir.Func.t) ->
      let fs = Slice.crash_slice summary f in
      slice := !slice + fs.Slice.fs_size;
      List.iter
        (fun (b : Res_ir.Block.t) ->
          Array.iteri
            (fun i ins ->
              incr tot;
              match instr_plan ~summary ~idx:i ins with
              | Ok _ -> incr inv
              | Error _ -> ())
            b.instrs)
        f.blocks)
    p.Res_ir.Prog.funcs;
  { cov_invertible = !inv; cov_total = !tot; cov_slice = !slice }
