(** Goal-directed admissible pruning for the backward search.

    Given a candidate backward step — "thread [tid] ran [block] to
    completion and then executed the already-synthesized chain of its own
    segments, ending at the coredump" — this module decides, by a purely
    static constant-domain interpretation, whether the solver is
    {e guaranteed} to reject the candidate.  The search then skips the
    symbolic execution and the solve entirely.

    Soundness is the whole game: a prune must never drop a feasible
    predecessor, because the search's output (and the paper's
    reproduction guarantee) depends on enumerating every suffix the
    solver would accept.  Every refutation rule below is therefore an
    exact static mirror of a constraint subset {!Res_core.Backstep}
    provably emits and the solver provably finds unsatisfiable:

    - {b Seeds.}  Registers the candidate block does not define are
      seeded from the post-state frame verbatim (Backstep.seed_frame), so
      a register whose post-state value is a concrete constant {e is}
      that constant at candidate entry; a register absent from the frame
      reads as 0.  Registers the block defines start unknown ([Top] —
      they are havocked pre-state symbols).
    - {b Constant propagation.}  Within the chain, each segment's output
      registers are tied to the next segment's input frame by equality
      constraints (Backstep.reg_constraints), and untouched registers are
      carried by construction — so a constant derived anywhere in the
      chain is forced everywhere downstream.  Relaxed registers (the
      CPU-miscompute hypothesis breaks exactly those equalities) are
      re-unknowned at every segment boundary where they were assigned.
    - {b Terminators.}  A completed segment must branch to the recorded
      successor ([Symexec] rejects the wrong arm; with a concrete
      condition the wrong arm is the only arm).  A [br] into the
      zero-arm with unknown condition {e forces} the condition register
      to 0 (the path constraint [cond = 0] is recorded), which we learn.
    - {b Traps.}  [assert r] with [r] forced 0, or a division whose
      divisor is forced 0, contradicts the survive-constraints
      ([ne v 0]) the executor records for every instruction the segment
      completed.
    - {b Memory.}  The candidate segment's final stores at concrete
      addresses with concrete values must equal the post-snapshot's
      concrete memory (Backstep.mem_constraints).  Calls clobber
      whatever their transitive mod summary covers; allocs/frees and
      stores through unknown addresses clobber everything (we keep no
      fact a real execution could invalidate).
    - {b Goal.}  If the thread's chain ends at its coredump stop frame,
      every register the chain assigned a constant to is forced to equal
      the coredump frame's concrete value for that register
      (transitively, via the same equality links).

    Anything the interpretation cannot prove is [Top], and [Top] never
    refutes.  Minidump ablation degrades gracefully: havocked frames seed
    nothing and impose no goals, so pruning simply stops firing. *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type value = Top | Known of int

let pp_value ppf = function
  | Top -> Fmt.string ppf "?"
  | Known n -> Fmt.int ppf n

(** How one synthesized segment of the chain ended. *)
type seg_end =
  | End_branch of string  (** block ran to completion and fell to label *)
  | End_ret  (** block ran to completion and returned (terminal segment) *)
  | End_halt  (** block ran to completion and halted (terminal segment) *)
  | End_stop of int
      (** partial segment: stopped before instruction [idx] (the
          crash/blocked position recorded by the coredump frame) *)

type seg = { sg_func : string; sg_block : string; sg_end : seg_end }

(** Everything the refuter needs from the search node, as closures so the
    static layer stays independent of the core's types. *)
type query = {
  q_prog : Res_ir.Prog.t;
  q_summary : Summary.t;
  q_tid : int;  (** thread of the chain: lock/unlock write [tid+1]/0 *)
  q_seed : int -> value;
      (** register value at candidate entry, from the post-state frame *)
  q_post_mem : int -> int option;
      (** concrete cells of the post-state snapshot; [None] for symbolic,
          unmapped, or relaxed addresses *)
  q_goal : (int -> value) option;
      (** the coredump stop frame's register values; [None] when the
          thread records no stop frame (halted) or goals don't apply *)
  q_relaxed_regs : ISet.t;  (** registers with relaxed constraints (this tid) *)
  q_resolve_global : string -> int option;  (** global name to base address *)
  q_is_heap_addr : int -> bool;
}

exception Refuted of string

(** Remove from [facts] every address a call to [callee] may write. *)
let clobber_call q facts callee =
  let s = Summary.transitive q.q_summary callee in
  if s.Summary.s_mod.Summary.f_unknown then IMap.empty
  else
    let facts =
      if s.Summary.s_heap then
        IMap.filter (fun a _ -> not (q.q_is_heap_addr a)) facts
      else facts
    in
    Summary.CSet.fold
      (fun (g, off) facts ->
        match q.q_resolve_global g with
        | None -> IMap.empty (* unknown global: clobber everything *)
        | Some base -> IMap.remove (base + off) facts)
      s.Summary.s_mod.Summary.f_cells facts

type state = {
  mutable env : value IMap.t;  (** register values, absent = fall to seed *)
  mutable assigned : ISet.t;  (** registers the chain has determined *)
  mutable facts : int IMap.t;  (** candidate-segment final stores, addr -> value *)
  mutable seg_assigned : ISet.t;  (** registers assigned in the current segment *)
}

let read q st r =
  match IMap.find_opt r st.env with Some v -> v | None -> q.q_seed r

let assign st r v =
  st.env <- IMap.add r v st.env;
  st.assigned <- ISet.add r st.assigned;
  st.seg_assigned <- ISet.add r st.seg_assigned

(** Interpret one instruction.  [track] is true only for the candidate
    segment, whose final stores face the post-snapshot's memory. *)
let interp_instr q st ~track (i : Res_ir.Instr.instr) =
  let open Res_ir.Instr in
  let store_fact addr v =
    if track then
      match (addr, v) with
      | Known a, Known n -> st.facts <- IMap.add a n st.facts
      | Known a, Top -> st.facts <- IMap.remove a st.facts
      | Top, _ -> st.facts <- IMap.empty
  in
  match i with
  | Const (r, n) -> assign st r (Known n)
  | Mov (r, a) -> assign st r (read q st a)
  | Global_addr (r, g) -> (
      match q.q_resolve_global g with
      | Some base -> assign st r (Known base)
      | None -> assign st r Top)
  | Unop (op, r, a) -> (
      match read q st a with
      | Known x -> assign st r (Known (eval_unop op x))
      | Top -> assign st r Top)
  | Binop (op, r, a, b) -> (
      let vb = read q st b in
      (match (op, vb) with
      | (Div | Rem), Known 0 ->
          (* the executor records the survive-constraint [divisor ≠ 0]
             for a division the segment completed; divisor forced 0 makes
             the store unsatisfiable *)
          raise (Refuted "division by a divisor forced to zero")
      | _ -> ());
      match (read q st a, vb) with
      | Known x, Known y -> (
          try assign st r (Known (eval_binop op x y))
          with Division_by_zero -> assign st r Top)
      | _ -> assign st r Top)
  | Load (r, _, _) -> assign st r Top
  | Store (a, off, s) ->
      let addr =
        match read q st a with
        | Known base -> Known (base + off)
        | Top -> Top
      in
      store_fact addr (read q st s)
  | Lock a ->
      (* the executor writes the owner's tid+1 into the mutex cell *)
      store_fact (read q st a) (Known (q.q_tid + 1))
  | Unlock a -> store_fact (read q st a) (Known 0)
  | Alloc (r, _) ->
      assign st r Top;
      (* allocation initializes heap cells; drop every memory fact rather
         than model which *)
      if track then st.facts <- IMap.empty
  | Free _ -> if track then st.facts <- IMap.empty
  | Input (r, _) -> assign st r Top
  | Spawn (r, _, _) -> assign st r Top
  | Join _ -> ()
  | Call (dst, callee, _) ->
      (match dst with Some r -> assign st r Top | None -> ());
      if track then st.facts <- clobber_call q st.facts callee
  | Assert (r, _) -> (
      match read q st r with
      | Known 0 ->
          raise (Refuted "assert on a value forced to zero must fail")
      | _ -> ())
  | Log _ | Nop -> ()

(** Interpret one segment of the chain. *)
let interp_seg q st ~track (s : seg) =
  match Res_ir.Prog.func_opt q.q_prog s.sg_func with
  | None -> raise Exit (* malformed chain: never refute *)
  | Some f -> (
      match Res_ir.Func.block_opt f s.sg_block with
      | None -> raise Exit
      | Some b ->
          st.seg_assigned <- ISet.empty;
          let n = Res_ir.Block.length b in
          let limit =
            match s.sg_end with End_stop idx -> min idx n | _ -> n
          in
          for i = 0 to limit - 1 do
            interp_instr q st ~track b.Res_ir.Block.instrs.(i)
          done;
          (match s.sg_end with
          | End_stop _ -> ()
          | End_branch l -> (
              match b.Res_ir.Block.term with
              | Res_ir.Instr.Jmp l' ->
                  if not (String.equal l' l) then
                    raise (Refuted "jmp cannot reach the recorded successor")
              | Res_ir.Instr.Br (r, l1, l2) -> (
                  match read q st r with
                  | Known n ->
                      let taken = if n <> 0 then l1 else l2 in
                      if not (String.equal taken l) then
                        raise
                          (Refuted
                             "branch condition forced to take the other arm")
                  | Top ->
                      (* Taking the zero-arm records the path constraint
                         [cond = 0]: learn it. *)
                      if String.equal l l2 && not (String.equal l1 l2) then
                        assign st r (Known 0))
              | Res_ir.Instr.Ret _ | Res_ir.Instr.Halt | Res_ir.Instr.Abort _
                ->
                  raise (Refuted "block cannot fall through to a successor"))
          | End_ret -> (
              match b.Res_ir.Block.term with
              | Res_ir.Instr.Ret _ -> ()
              | _ -> raise (Refuted "terminal segment requires a ret block"))
          | End_halt -> (
              match b.Res_ir.Block.term with
              | Res_ir.Instr.Halt -> ()
              | _ -> raise (Refuted "terminal segment requires a halt block")));
          (* Relaxed registers: the equality link into the next segment is
             exempted for exactly these, so anything this segment derived
             about them must be forgotten. *)
          ISet.iter
            (fun r ->
              if ISet.mem r st.seg_assigned then
                st.env <- IMap.add r Top st.env)
            q.q_relaxed_regs)

(** [refute q chain] — [Some reason] when the candidate chain (candidate
    segment first, then the thread's already-synthesized segments in
    execution order) is statically guaranteed infeasible; [None] when it
    might be feasible.  Never raises. *)
let refute (q : query) (chain : seg list) : string option =
  match chain with
  | [] -> None
  | cand :: rest -> (
      try
        (match Res_ir.Prog.func_opt q.q_prog cand.sg_func with
        | None -> raise Exit
        | Some f -> (
            match Res_ir.Func.block_opt f cand.sg_block with
            | None -> raise Exit
            | Some b ->
                (* registers the candidate defines are havocked pre-state
                   symbols, not seeds *)
                let env0 =
                  ISet.fold
                    (fun r env -> IMap.add r Top env)
                    (ISet.of_list (Res_ir.Block.defined_regs b))
                    IMap.empty
                in
                let st =
                  {
                    env = env0;
                    assigned = ISet.empty;
                    facts = IMap.empty;
                    seg_assigned = ISet.empty;
                  }
                in
                interp_seg q st ~track:true cand;
                (* candidate's final stores vs the post-state snapshot *)
                IMap.iter
                  (fun addr v ->
                    match q.q_post_mem addr with
                    | Some m when m <> v ->
                        raise
                          (Refuted
                             (Fmt.str
                                "store leaves %d at address %d but the \
                                 snapshot holds %d"
                                v addr m))
                    | _ -> ())
                  st.facts;
                List.iter (interp_seg q st ~track:false) rest;
                (* goal: the coredump stop frame pins chain-assigned
                   constants *)
                let ends_at_stop =
                  match List.rev chain with
                  | { sg_end = End_stop _; _ } :: _ -> true
                  | _ -> false
                in
                (match q.q_goal with
                | Some goal when ends_at_stop ->
                    IMap.iter
                      (fun r v ->
                        match v with
                        | Known n
                          when ISet.mem r st.assigned
                               && not (ISet.mem r q.q_relaxed_regs) -> (
                            match goal r with
                            | Known d when d <> n ->
                                raise
                                  (Refuted
                                     (Fmt.str
                                        "chain forces r%d = %d but the \
                                         coredump frame holds %d"
                                        r n d))
                            | _ -> ())
                        | _ -> ())
                      st.env
                | _ -> ())));
        None
      with
      | Refuted reason -> Some reason
      | Exit -> None)
