(** The `res check` lint suite: validator, unreachable blocks, dead
    stores, lock hygiene, and the race/deadlock analysis, as one
    machine-readable findings list.

    Every finding is a claim about the program, so every check here is
    tuned to under-approximate: a warning fires only when the supporting
    static facts are fully resolved.  (The workload corpus holds the
    suite to zero false positives on correct code.) *)

module SSet = Set.Make (String)

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  f_severity : severity;
  f_check : string;  (** machine-stable check name, e.g. "race" *)
  f_where : string;  (** "func", "func:block", or "func:block:idx" *)
  f_msg : string;
}

(** One tab-separated line per finding: SEVERITY CHECK WHERE MESSAGE. *)
let to_line f =
  Fmt.str "%s\t%s\t%s\t%s"
    (severity_name f.f_severity)
    f.f_check f.f_where f.f_msg

let order a b =
  match compare (a.f_check, a.f_where, a.f_msg) (b.f_check, b.f_where, b.f_msg)
  with
  | 0 -> 0
  | c -> c

(** Whether any function of [p] spawns a thread: the dead-store check is
    single-threaded-only (another thread may observe any global). *)
let has_spawns (p : Res_ir.Prog.t) =
  List.exists
    (fun (f : Res_ir.Func.t) ->
      List.exists
        (fun (b : Res_ir.Block.t) ->
          Res_ir.Block.exists
            (fun i -> Res_ir.Instr.spawn_target i <> None)
            b)
        f.Res_ir.Func.blocks)
    p.Res_ir.Prog.funcs

let dead_stores p summary (f : Res_ir.Func.t) =
  let fname = f.Res_ir.Func.name in
  let envs = Summary.envs_of summary fname in
  ignore p;
  let findings = ref [] in
  List.iter
    (fun (b : Res_ir.Block.t) ->
      match Summary.SMap.find_opt b.Res_ir.Block.label envs with
      | None -> () (* unreachable: reported separately *)
      | Some env0 ->
          let env = ref env0 in
          Array.iteri
            (fun i instr ->
              (match instr with
              | Res_ir.Instr.Store (a, off, _) -> (
                  match Absval.read !env a with
                  | Absval.GPtr (g, o) ->
                      let cell = (g, o + off) in
                      if
                        not
                          (Reach.observable_after summary f
                             ~block:b.Res_ir.Block.label ~idx:i cell)
                      then
                        findings :=
                          {
                            f_severity = Warning;
                            f_check = "dead-store";
                            f_where =
                              Fmt.str "%s:%s:%d" fname b.Res_ir.Block.label i;
                            f_msg =
                              Fmt.str
                                "store to %a is overwritten on every path \
                                 before any read"
                                Summary.Cell.pp cell;
                          }
                          :: !findings
                  | _ -> ())
              | _ -> ());
              env := Absval.transfer !env instr)
            b.Res_ir.Block.instrs)
    f.Res_ir.Func.blocks;
  List.rev !findings

(** Run the full suite.  Validator errors suppress the structural checks
    (a malformed program has no trustworthy CFG to analyze). *)
let run (p : Res_ir.Prog.t) : finding list =
  let verrs = Res_ir.Validate.check p in
  if verrs <> [] then
    List.map
      (fun (e : Res_ir.Validate.error) ->
        {
          f_severity = Error;
          f_check = "validate";
          f_where = e.Res_ir.Validate.where;
          f_msg = e.Res_ir.Validate.what;
        })
      verrs
    |> List.sort order
  else begin
    let cfg = Res_ir.Cfg.of_prog p in
    let summary = Summary.of_prog p in
    let findings = ref [] in
    let add f = findings := f :: !findings in
    (* unreachable blocks *)
    List.iter
      (fun (f : Res_ir.Func.t) ->
        List.iter
          (fun label ->
            add
              {
                f_severity = Warning;
                f_check = "unreachable";
                f_where = Fmt.str "%s:%s" f.Res_ir.Func.name label;
                f_msg = "block is unreachable from the function entry";
              })
          (Res_ir.Cfg.unreachable_labels cfg f))
      p.Res_ir.Prog.funcs;
    (* dead stores (single-threaded programs only) *)
    if not (has_spawns p) then
      List.iter
        (fun f -> List.iter add (dead_stores p summary f))
        p.Res_ir.Prog.funcs;
    (* lock hygiene: leaks per function *)
    List.iter
      (fun (f : Res_ir.Func.t) ->
        List.iter
          (fun ((cell : Summary.Cell.t), where) ->
            add
              {
                f_severity = Warning;
                f_check = "lock-leak";
                f_where = where;
                f_msg =
                  Fmt.str "lock of %a is not released on every path"
                    Summary.Cell.pp cell;
              })
          (Lockcheck.lock_leaks summary f))
      p.Res_ir.Prog.funcs;
    (* races and lock-order cycles *)
    let report = Lockcheck.check p summary in
    (* one finding per racy cell, with one witness pair *)
    let seen_cells = ref [] in
    List.iter
      (fun (r : Lockcheck.race) ->
        if not (List.mem r.Lockcheck.r_cell !seen_cells) then begin
          seen_cells := r.Lockcheck.r_cell :: !seen_cells;
          add
            {
              f_severity = Warning;
              f_check = "race";
              f_where = r.Lockcheck.r_where1;
              f_msg =
                Fmt.str
                  "possible data race on %a: conflicting access at %s with \
                   no common lock"
                  Summary.Cell.pp r.Lockcheck.r_cell r.Lockcheck.r_where2;
            }
        end)
      report.Lockcheck.races;
    List.iter
      (fun (c : Lockcheck.cycle) ->
        add
          {
            f_severity = Warning;
            f_check = "deadlock";
            f_where = c.Lockcheck.c_site1;
            f_msg =
              Fmt.str
                "lock-order cycle: %a and %a are acquired in opposite \
                 orders by concurrent threads (%s vs %s)"
                Summary.Cell.pp c.Lockcheck.c_lock1 Summary.Cell.pp
                c.Lockcheck.c_lock2 c.Lockcheck.c_site1 c.Lockcheck.c_site2;
          })
      report.Lockcheck.cycles;
    List.iter
      (fun ((cell : Summary.Cell.t), where) ->
        add
          {
            f_severity = Warning;
            f_check = "deadlock";
            f_where = where;
            f_msg =
              Fmt.str "re-acquisition of held lock %a always deadlocks"
                Summary.Cell.pp cell;
          })
      report.Lockcheck.double_locks;
    List.sort order !findings
  end

(** The `res check` exit-code convention: 0 clean, 2 warnings only, 3
    errors. *)
let exit_code findings =
  if List.exists (fun f -> f.f_severity = Error) findings then 3
  else if List.exists (fun f -> f.f_severity = Warning) findings then 2
  else 0
