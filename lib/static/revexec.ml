(** Concrete reverse execution of a statically invertible block.

    Given the reverse {!Invert.plan} for a block, the post-state of the
    segment (exposed through an {!oracle} of callbacks so this library
    stays independent of the snapshot and solver layers), and the block
    the segment must branch to, recover the unique concrete pre-state —
    or report that none exists, or that the question cannot be settled
    concretely.

    Post-frame registers come in three flavours ({!post}): concrete
    values, {e free} symbols (the symbol occurs nowhere else in the
    snapshot, so the symbolic path's compatibility equality against it
    is satisfiable for any execution and forces nothing — a wildcard),
    and symbols that other constraints may force ([P_sym] — the engine
    must not guess, so it falls back).  Free wildcards are what let the
    engine chain: after one reverse step the non-live defined registers
    hold fresh unconstrained symbols, and the next step back across the
    same loop body must accept them.

    Three passes:

    - a {e rigid pass}: a forward scan computing, per program point, the
      registers whose values follow from constants and global addresses
      alone ([r1 = global g; r3 = const 1] pins [r1] and [r3] at every
      later point).  These values are forced regardless of the entry
      state, so they both resolve access addresses the backward walk
      reaches before the defining instruction and cross-check every
      value the walk recovers.

    - a {e backward walk} over the reverse ops, last instruction first.
      [vals] maps registers to their known value at the current
      (backward-moving) program point, seeded from the concrete
      post-frame values; each memory cell carries a view of its value at
      that point — [Known v] (concrete), [Sym] (symbolic in the post
      snapshot), or [Pre] (overwritten by a later store, pre-value not
      yet recovered).  Un-doing a store learns or checks its source
      register against the cell's post value and demotes the view to
      [Pre]; un-doing a load can {e recover} a [Pre] cell from the
      destination's known value; pure definitions check consistency
      when all operands are known and invert the injective cases
      ([add]/[sub]/[xor]/[mov]/[neg], plus the forced boolean cases of
      [not]/[eq]/[ne]).

    - a {e forward validation} that concretely executes the sliced block
      from the recovered entry state and requires it to reproduce the
      post-state exactly — every defined register with a concrete post
      value, every written cell, and the branch target.  The walk only
      ever proposes; validation decides.  Because every recovered value
      is forced (each is derived from concrete post values through
      injective steps or the rigid pass), a validation mismatch proves
      the segment infeasible rather than merely mis-recovered.

    Three-valued result: [Reversed] (unique pre-state recovered and
    validated — skip symbolic execution {e and} the solver), [Infeasible]
    (no pre-state of this shape exists — reject the candidate without
    the solver), [Unknown] (fall back to the symbolic step). *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

(** Post-frame register value, as the reverse engine needs to see it.
    [P_free]: a symbol unconstrained anywhere else in the snapshot — the
    symbolic path's equality against it forces nothing, so the register
    is a wildcard.  [P_sym]: symbolic and possibly forced elsewhere. *)
type post = P_val of int | P_free | P_sym

(** Callbacks into the dynamic state.  [read_post] returns [None] when
    the cell's value is symbolic; [is_mapped] mirrors the forward
    executor's access check; [require_target] is the block the segment
    must branch to. *)
type oracle = {
  post_reg : int -> post;
  read_post : int -> int option;
  is_mapped : int -> bool;
  global_base : string -> int option;
  require_target : string;
  regs : int list;  (** register universe of the function *)
}

(** A recovered pre-state.  [rs_entry_regs] covers the sliced block's
    live-in registers; written cells are split into recovered pre-values
    ([rs_pre_mem]) and cells whose pre-value is provably unobserved
    ([rs_fresh_mem] — the caller mints fresh symbols for those, exactly
    as the symbolic path does).  [rs_writes]/[rs_reads] are sorted
    ascending to match the symbolic executor's bookkeeping. *)
type summary = {
  rs_entry_regs : int IMap.t;
  rs_pre_mem : (int * int) list;
  rs_fresh_mem : int list;
  rs_writes : int list;
  rs_reads : int list;
  rs_target : string;
  rs_steps : int;
  rs_slice_skipped : int;
}

type result = Reversed of summary | Infeasible of string | Unknown of string

exception Stop of result

let infeasible fmt = Fmt.kstr (fun s -> raise (Stop (Infeasible s))) fmt
let unknown fmt = Fmt.kstr (fun s -> raise (Stop (Unknown s))) fmt

type view = Known of int | Sym | Pre

(** [rigid b o] — per-program-point register values forced by the block
    text alone: constants, global addresses, and pure arithmetic over
    already-rigid operands.  [rigid.(i)] holds the values {e before}
    instruction [i]; index [n] is the point before the terminator.  The
    scan covers the full instruction array (sliced-out definitions still
    kill staleness), and any definition it cannot compute — a load, a
    division that traps — simply drops the register. *)
let rigid (b : Res_ir.Block.t) (o : oracle) =
  let n = Array.length b.Res_ir.Block.instrs in
  let out = Array.make (n + 1) IMap.empty in
  let cur = ref IMap.empty in
  let get r = IMap.find_opt r !cur in
  let set d = function
    | Some v -> cur := IMap.add d v !cur
    | None -> cur := IMap.remove d !cur
  in
  for i = 0 to n - 1 do
    out.(i) <- !cur;
    match b.Res_ir.Block.instrs.(i) with
    | Res_ir.Instr.Const (d, c) -> set d (Some c)
    | Mov (d, a) -> set d (get a)
    | Global_addr (d, g) -> set d (o.global_base g)
    | Unop (op, d, a) -> set d (Option.map (Res_ir.Instr.eval_unop op) (get a))
    | Binop (op, d, a, b') ->
        set d
          (match (get a, get b') with
          | Some x, Some y -> (
              match Res_ir.Instr.eval_binop op x y with
              | v -> Some v
              | exception Division_by_zero -> None)
          | _ -> None)
    | i -> ( match Res_ir.Instr.defs i with Some d -> set d None | None -> ())
  done;
  out.(n) <- !cur;
  out

let run (b : Res_ir.Block.t) (plan : Invert.plan) (o : oracle) : result =
  try
    (* Dynamic eligibility.  A defined register whose post value a live
       constraint may force elsewhere cannot be checked concretely; a
       carried live-in register with a symbolic value would be seeded
       symbolically into the forward executor (address and branch forks
       the concrete engine cannot mirror), free or not. *)
    ISet.iter
      (fun r ->
        if o.post_reg r = P_sym then
          unknown "post value of r%d may be forced elsewhere" r)
      plan.Invert.pl_defined;
    ISet.iter
      (fun r ->
        if
          (not (ISet.mem r plan.Invert.pl_defined))
          && (match o.post_reg r with P_val _ -> false | P_free | P_sym -> true)
        then unknown "carried live-in r%d is symbolic" r)
      plan.Invert.pl_live_in;
    let rg = rigid b o in
    let n_pt = Array.length rg - 1 in
    let rigid_at p r = IMap.find_opt r rg.(p) in
    let vals = ref IMap.empty in
    let views : (int, view) Hashtbl.t = Hashtbl.create 16 in
    let view a =
      match Hashtbl.find_opt views a with
      | Some v -> v
      | None ->
          let v = match o.read_post a with Some w -> Known w | None -> Sym in
          Hashtbl.replace views a v;
          v
    in
    let writes = ref ISet.empty in
    (* Walk-state lookups and learning are positional: [vals] carries
       values across the walk (forgotten at definitions), the rigid pass
       supplies point-forced values, and the two must agree wherever
       both speak — a disagreement is two forced values in conflict,
       i.e. an unsatisfiable candidate. *)
    let value_at p r =
      match IMap.find_opt r !vals with
      | Some v ->
          (match rigid_at p r with
          | Some w when w <> v ->
              infeasible "r%d is forced to both %d and %d" r v w
          | _ -> ());
          Some v
      | None -> rigid_at p r
    in
    let learn p r v =
      (match rigid_at p r with
      | Some w when w <> v -> infeasible "r%d is forced to both %d and %d" r w v
      | _ -> ());
      match IMap.find_opt r !vals with
      | Some w -> if w <> v then infeasible "r%d is forced to both %d and %d" r w v
      | None -> vals := IMap.add r v !vals
    in
    let forget r = vals := IMap.remove r !vals in
    let addr_of p base off =
      match value_at p base with Some v -> Some (v + off) | None -> None
    in
    (* Seed from the post frame (the end-of-block point, [n_pt]); the
       rigid cross-check there rejects post states the block text
       already contradicts. *)
    List.iter
      (fun r -> match o.post_reg r with P_val v -> learn n_pt r v | _ -> ())
      o.regs;
    (* The terminator runs last, so it is un-done first. *)
    let target =
      match plan.Invert.pl_term with
      | Invert.T_jmp l ->
          if not (String.equal l o.require_target) then
            infeasible "jmp %s cannot reach %s" l o.require_target;
          l
      | Invert.T_br { reg; if_nonzero; if_zero } -> (
          match value_at n_pt reg with
          | None -> unknown "branch register r%d is not concrete" reg
          | Some v ->
              let t = if v <> 0 then if_nonzero else if_zero in
              if not (String.equal t o.require_target) then
                infeasible "br takes %s, not %s" t o.require_target;
              t)
    in
    (* Post-definition value of [dst] at point [idx + 1]. *)
    let post_def idx dst =
      match IMap.find_opt dst !vals with
      | Some v ->
          (match rigid_at (idx + 1) dst with
          | Some w when w <> v ->
              infeasible "r%d is forced to both %d and %d" dst v w
          | _ -> ());
          Some v
      | None -> rigid_at (idx + 1) dst
    in
    let undo_def idx dst rhs =
      let v_dst = post_def idx dst in
      (* Recovered pre-value of [dst] itself (operand aliasing the
         destination), installed after the definition is popped. *)
      let pending = ref None in
      let operand r = if r = dst then rigid_at idx dst else value_at idx r in
      let learn_operand r v =
        if r = dst then (
          (match rigid_at idx dst with
          | Some w when w <> v ->
              infeasible "r%d is forced to both %d and %d" r w v
          | _ -> ());
          match !pending with
          | Some w when w <> v ->
              infeasible "r%d is forced to both %d and %d" r w v
          | Some _ -> ()
          | None -> pending := Some v)
        else learn idx r v
      in
      (match rhs with
      | Invert.Rhs_const c -> (
          match v_dst with
          | Some v when v <> c ->
              infeasible "const %d but r%d is %d" c dst v
          | _ -> ())
      | Invert.Rhs_global g -> (
          match o.global_base g with
          | None -> unknown "global %s has no layout address" g
          | Some ga -> (
              match v_dst with
              | Some v when v <> ga ->
                  infeasible "global %s is at %d but r%d is %d" g ga dst v
              | _ -> ()))
      | Invert.Rhs_mov a -> (
          if a = dst then (* identity move: pre-value = post-value *)
            pending := v_dst
          else match v_dst with Some v -> learn_operand a v | None -> ())
      | Invert.Rhs_unop (op, a) -> (
          match v_dst with
          | None -> ()
          | Some v -> (
              match op with
              | Res_ir.Instr.Neg -> learn_operand a (-v)
              | Res_ir.Instr.Not ->
                  if v <> 0 && v <> 1 then infeasible "not yields %d" v
                  else if v = 1 then learn_operand a 0))
      | Invert.Rhs_binop (op, a, b') -> (
          let va = operand a and vb = operand b' in
          match (va, vb) with
          | Some x, Some y -> (
              match Res_ir.Instr.eval_binop op x y with
              | exception Division_by_zero -> infeasible "division by zero"
              | expected -> (
                  match v_dst with
                  | Some v when v <> expected ->
                      infeasible "%s %d, %d yields %d but r%d is %d"
                        (Res_ir.Instr.binop_name op)
                        x y expected dst v
                  | _ -> ()))
          | _ -> (
              (match (op, v_dst) with
              | (Res_ir.Instr.Eq | Ne | Lt | Le | Gt | Ge), Some v
                when v <> 0 && v <> 1 ->
                  infeasible "%s yields %d" (Res_ir.Instr.binop_name op) v
              | _ -> ());
              match v_dst with
              | None -> ()
              | Some v -> (
                  (* single-unknown inversions of the injective cases *)
                  match (op, va, vb) with
                  | Res_ir.Instr.Add, None, Some y -> learn_operand a (v - y)
                  | Res_ir.Instr.Add, Some x, None -> learn_operand b' (v - x)
                  | Res_ir.Instr.Sub, None, Some y -> learn_operand a (v + y)
                  | Res_ir.Instr.Sub, Some x, None -> learn_operand b' (x - v)
                  | Res_ir.Instr.Xor, None, Some y -> learn_operand a (v lxor y)
                  | Res_ir.Instr.Xor, Some x, None -> learn_operand b' (x lxor v)
                  | Res_ir.Instr.Eq, None, Some y when v = 1 -> learn_operand a y
                  | Res_ir.Instr.Eq, Some x, None when v = 1 -> learn_operand b' x
                  | Res_ir.Instr.Ne, None, Some y when v = 0 -> learn_operand a y
                  | Res_ir.Instr.Ne, Some x, None when v = 0 -> learn_operand b' x
                  | _ -> ()))));
      forget dst;
      match !pending with
      | Some v -> vals := IMap.add dst v !vals
      | None -> ()
    in
    List.iter
      (fun rop ->
        match rop with
        | Invert.R_check { reg; idx } -> (
            match value_at idx reg with
            | Some 0 -> infeasible "assert of r%d fails" reg
            | Some _ | None -> ())
        | Invert.R_store { addr; off; src; idx } -> (
            match addr_of idx addr off with
            | None -> unknown "store @%d: address r%d is not concrete" idx addr
            | Some a ->
                writes := ISet.add a !writes;
                (match view a with
                | Known w -> learn idx src w
                | Sym -> unknown "store @%d: post value of %d is symbolic" idx a
                | Pre -> () (* overwritten again later: unconstrained *));
                Hashtbl.replace views a Pre)
        | Invert.R_load { dst; addr; off; idx } ->
            if dst = addr then
              unknown "load @%d clobbers its own address register" idx;
            let v_dst = post_def idx dst in
            (match addr_of idx addr off with
            | None -> unknown "load @%d: address r%d is not concrete" idx addr
            | Some a -> (
                match (view a, v_dst) with
                | Known w, Some v ->
                    if v <> w then
                      infeasible "load @%d reads %d but r%d is %d" idx w dst v
                | Known _, None -> ()
                | Pre, Some v ->
                    (* the load observed the cell before the later store:
                       its pre-value is recovered *)
                    Hashtbl.replace views a (Known v)
                | Pre, None ->
                    (* the loaded value is unconstrained; that is only
                       sound if nothing can observe it *)
                    if not (Defuse.dead_after b ~idx) then
                      unknown
                        "load @%d from an overwritten cell feeds a live use"
                        idx
                | Sym, _ ->
                    unknown "load @%d: post value of %d is symbolic" idx a));
            forget dst
        | Invert.R_def { dst; rhs; idx } -> undo_def idx dst rhs)
      plan.Invert.pl_rops;
    ISet.iter
      (fun r ->
        if not (IMap.mem r !vals) then
          unknown "live-in register r%d was not recovered" r)
      plan.Invert.pl_live_in;
    let pre_mem, fresh_mem =
      ISet.fold
        (fun a (pm, fm) ->
          match view a with
          | Known v -> ((a, v) :: pm, fm)
          | Pre -> (pm, a :: fm)
          | Sym -> (pm, fm) (* unreachable: a Sym store aborts the walk *))
        !writes ([], [])
    in
    let entry_regs =
      ISet.fold
        (fun r m ->
          match IMap.find_opt r !vals with
          | Some v -> IMap.add r v m
          | None -> m)
        plan.Invert.pl_live_in IMap.empty
    in
    (* Forward validation: concretely execute the sliced block from the
       recovered entry state and demand the exact post-state back.

       Validation also tracks a {e taint} bit per register and written
       cell: whether the value would be a symbolic expression under the
       symbolic executor (it depends on a havocked pre-value — the entry
       value of a defined register, or a cell overwritten later in the
       block).  The symbolic path resolves {e symbolic} access addresses
       heuristically (address-pool enumeration, which can miss), so to
       preserve fast-path-on/off equivalence any access through a
       tainted address register falls back to the symbolic step. *)
    let vregs = ref entry_regs in
    let tainted = ref (ISet.inter plan.Invert.pl_live_in plan.Invert.pl_defined) in
    let vmem : (int, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun (a, v) -> Hashtbl.replace vmem a v) pre_mem;
    (* Fresh cells: the pre-value is dead, any placeholder validates. *)
    List.iter (fun a -> Hashtbl.replace vmem a 0) fresh_mem;
    let written_now : (int, int * bool) Hashtbl.t = Hashtbl.create 16 in
    let trusted_post = ref ISet.empty in
    let reads = ref ISet.empty in
    let vread r =
      match IMap.find_opt r !vregs with
      | Some v -> v
      | None -> unknown "validation reads undefined r%d" r
    in
    let taint_of r = ISet.mem r !tainted in
    let set_taint r t =
      tainted := if t then ISet.add r !tainted else ISet.remove r !tainted
    in
    let check_addr idx r =
      if taint_of r then
        unknown "access @%d through r%d depends on a havocked pre-value" idx r
    in
    let mem_read a =
      if not (o.is_mapped a) then infeasible "access to unmapped %d" a;
      match Hashtbl.find_opt written_now a with
      | Some vt -> vt
      | None -> (
          reads := ISet.add a !reads;
          match Hashtbl.find_opt vmem a with
          | Some v -> (v, true) (* symbolically a havocked pre-symbol *)
          | None -> (
              match o.read_post a with
              | Some v ->
                  trusted_post := ISet.add a !trusted_post;
                  (v, false)
              | None -> unknown "validation reads symbolic cell %d" a))
    in
    let mem_write a vt =
      if not (o.is_mapped a) then infeasible "access to unmapped %d" a;
      Hashtbl.replace written_now a vt
    in
    List.iter
      (fun rop ->
        match rop with
        | Invert.R_def { dst; rhs; _ } ->
            let v, t =
              match rhs with
              | Invert.Rhs_const c -> (c, false)
              | Invert.Rhs_global g -> (
                  match o.global_base g with
                  | Some ga -> (ga, false)
                  | None -> unknown "global %s has no layout address" g)
              | Invert.Rhs_mov a -> (vread a, taint_of a)
              | Invert.Rhs_unop (op, a) ->
                  (Res_ir.Instr.eval_unop op (vread a), taint_of a)
              | Invert.Rhs_binop (op, a, b') -> (
                  let x = vread a and y = vread b' in
                  match Res_ir.Instr.eval_binop op x y with
                  | exception Division_by_zero -> infeasible "division by zero"
                  | v -> (v, taint_of a || taint_of b'))
            in
            vregs := IMap.add dst v !vregs;
            set_taint dst t
        | Invert.R_load { dst; addr; off; idx } ->
            check_addr idx addr;
            let v, t = mem_read (vread addr + off) in
            vregs := IMap.add dst v !vregs;
            set_taint dst t
        | Invert.R_store { addr; off; src; idx } ->
            check_addr idx addr;
            mem_write (vread addr + off) (vread src, taint_of src)
        | Invert.R_check { reg; _ } ->
            if vread reg = 0 then infeasible "assert fails")
      (List.rev plan.Invert.pl_rops);
    (match plan.Invert.pl_term with
    | Invert.T_jmp _ -> () (* already checked against the target *)
    | Invert.T_br { reg; if_nonzero; if_zero } ->
        (* A tainted condition with both labels equal would fork the
           symbolic executor into two surviving outcomes; the concrete
           engine has only one. *)
        if taint_of reg && String.equal if_nonzero if_zero then
          unknown "branch on a havocked value with a single target";
        let t = if vread reg <> 0 then if_nonzero else if_zero in
        if not (String.equal t target) then
          unknown "validation branches to %s, not %s" t target);
    ISet.iter
      (fun r ->
        match o.post_reg r with
        | P_free -> () (* wildcard: any validated value satisfies it *)
        | P_sym -> unknown "post value of r%d may be forced elsewhere" r
        | P_val post -> (
            match IMap.find_opt r !vregs with
            | Some v when v = post -> ()
            | Some v -> infeasible "r%d validates to %d, post is %d" r v post
            | None -> unknown "defined register r%d never validated" r))
      plan.Invert.pl_defined;
    Hashtbl.iter
      (fun a (v, _taint) ->
        match o.read_post a with
        | Some w ->
            if v <> w then
              infeasible "cell %d validates to %d, post is %d" a v w
        | None -> unknown "written cell %d is symbolic in the post state" a)
      written_now;
    (* The walk and validation must agree on the write set, and no cell
       read through the post snapshot may also be written — such a read
       would have needed the (unrecovered) pre-value instead. *)
    let wnow =
      Hashtbl.fold (fun a _ s -> ISet.add a s) written_now ISet.empty
    in
    if not (ISet.equal wnow !writes) then
      unknown "write sets diverge between walk and validation";
    if not (ISet.is_empty (ISet.inter !trusted_post wnow)) then
      unknown "a written cell was read through the post snapshot";
    Reversed
      {
        rs_entry_regs = entry_regs;
        rs_pre_mem = List.sort compare pre_mem;
        rs_fresh_mem = List.sort compare fresh_mem;
        rs_writes = ISet.elements !writes;
        rs_reads = ISet.elements !reads;
        rs_target = target;
        rs_steps = plan.Invert.pl_n_instrs + 1;
        rs_slice_skipped = plan.Invert.pl_slice.Slice.sl_skipped;
      }
  with Stop r -> r
