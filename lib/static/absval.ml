(** Constant/pointer abstract values and the intra-function forward
    dataflow they support.

    The lattice is deliberately flat: an abstract register value is either
    a known integer, a known offset into a named global, or [Top].  That
    is exactly enough to resolve the address operands MiniIR programs
    compute (a [global] followed by constant arithmetic) into {e cells} —
    [(global, offset)] pairs — which is what the mod/ref summaries
    ({!Summary}) and the lockset lint ({!Lockcheck}) need.  There is no
    [Bot]: a register never written reads as [Top] here, which only ever
    makes analyses {e less} willing to claim a fact (accesses through
    unresolved addresses are dropped, never misattributed). *)

module IMap = Map.Make (Int)
module SMap = Map.Make (String)

type t =
  | Top  (** statically unknown *)
  | Int of int  (** the register holds exactly this integer *)
  | GPtr of string * int  (** address of a global, plus a constant offset *)

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Int x, Int y -> x = y
  | GPtr (g, o), GPtr (h, p) -> String.equal g h && o = p
  | _, _ -> false

let join a b = if equal a b then a else Top

let pp ppf = function
  | Top -> Fmt.string ppf "?"
  | Int n -> Fmt.int ppf n
  | GPtr (g, o) -> Fmt.pf ppf "&%s[%d]" g o

(** An abstract register file.  Registers absent from the map are [Top]. *)
type env = t IMap.t

let read (env : env) r = Option.value ~default:Top (IMap.find_opt r env)

let join_env (a : env) (b : env) : env =
  IMap.merge
    (fun _ va vb ->
      match (va, vb) with Some x, Some y -> Some (join x y) | _ -> Some Top)
    a b

(** Abstract transfer of one straight-line instruction. *)
let transfer (env : env) (i : Res_ir.Instr.instr) : env =
  let open Res_ir.Instr in
  let set r v = IMap.add r v env in
  match i with
  | Const (r, n) -> set r (Int n)
  | Mov (r, a) -> set r (read env a)
  | Global_addr (r, g) -> set r (GPtr (g, 0))
  | Unop (op, r, a) -> (
      match read env a with
      | Int x -> set r (Int (eval_unop op x))
      | _ -> set r Top)
  | Binop (op, r, a, b) ->
      let v =
        match (op, read env a, read env b) with
        | _, Int x, Int y -> (
            try Int (eval_binop op x y) with Division_by_zero -> Top)
        | Add, GPtr (g, o), Int k | Add, Int k, GPtr (g, o) -> GPtr (g, o + k)
        | Sub, GPtr (g, o), Int k -> GPtr (g, o - k)
        | _ -> Top
      in
      set r v
  | Load _ | Alloc _ | Input _ | Spawn _ | Call _ -> (
      match defs i with Some r -> set r Top | None -> env)
  | Store _ | Free _ | Lock _ | Unlock _ | Join _ | Assert _ | Log _ | Nop ->
      env

(** The abstract value of [i]'s address operand, as a cell.  [None] when
    the instruction performs no access or its address is unresolved. *)
let cell_of_access env (acc : Res_ir.Instr.access) =
  match read env acc.Res_ir.Instr.acc_addr with
  | GPtr (g, o) -> Some (g, o + acc.Res_ir.Instr.acc_off)
  | Top | Int _ -> None

(** Block-entry environments of every block of [f], by fixpoint over the
    function's own successor edges, starting from [init] at the entry
    block.  Blocks unreachable from the entry are absent. *)
let block_envs (f : Res_ir.Func.t) ~(init : env) : env SMap.t =
  let out_of (b : Res_ir.Block.t) env =
    Array.fold_left transfer env b.Res_ir.Block.instrs
  in
  let envs = ref (SMap.singleton f.Res_ir.Func.entry init) in
  let work = Queue.create () in
  Queue.add f.Res_ir.Func.entry work;
  while not (Queue.is_empty work) do
    let label = Queue.pop work in
    match SMap.find_opt label !envs with
    | None -> ()
    | Some in_env ->
        let b = Res_ir.Func.block f label in
        let out = out_of b in_env in
        List.iter
          (fun succ ->
            let merged =
              match SMap.find_opt succ !envs with
              | None -> out
              | Some prev -> join_env prev out
            in
            let changed =
              match SMap.find_opt succ !envs with
              | None -> true
              | Some prev -> not (IMap.equal equal prev merged)
            in
            if changed then begin
              envs := SMap.add succ merged !envs;
              Queue.add succ work
            end)
          (Res_ir.Block.successors b)
  done;
  !envs
