(** Per-instruction def-use chains within a function.

    MiniIR blocks are straight-line, so the reaching definition of a use
    is either the closest preceding definition in the same block or the
    block-entry value (the pre-state the backward search reconstructs).
    This module makes that relation explicit: the backward slicer walks
    def-use edges, and the invertibility analysis asks deadness questions
    ("is the value this load clobbers ever observed before the next
    definition?") whose answers decide when a reverse step may treat a
    pre-value as unconstrained. *)

module ISet = Set.Make (Int)
module SMap = Map.Make (String)

(** The reaching definition of a register use. *)
type def_site =
  | Local of int  (** instruction index of the defining instruction *)
  | Entry  (** no in-block definition precedes the use: block-entry value *)

(** [def_of_use b ~idx r] is the definition of [r] visible to a use at
    instruction [idx] of [b] ([idx = Block.length b] queries a terminator
    use). *)
let def_of_use (b : Res_ir.Block.t) ~idx r =
  let rec scan i =
    if i < 0 then Entry
    else
      match Res_ir.Instr.defs b.instrs.(i) with
      | Some d when d = r -> Local i
      | _ -> scan (i - 1)
  in
  scan (min idx (Res_ir.Block.length b) - 1)

(** Use sites of the value defined at instruction [idx]: the instruction
    indices that read it before it is redefined, and whether the
    terminator reads it (only when no later definition intervenes). *)
let uses_of_def (b : Res_ir.Block.t) ~idx =
  match Res_ir.Instr.defs b.instrs.(idx) with
  | None -> ([], false)
  | Some r ->
      let n = Res_ir.Block.length b in
      let rec scan i acc =
        if i >= n then (List.rev acc, List.mem r (Res_ir.Instr.term_uses b.term))
        else
          let acc =
            if List.mem r (Res_ir.Instr.uses b.instrs.(i)) then i :: acc else acc
          in
          match Res_ir.Instr.defs b.instrs.(i) with
          | Some d when d = r -> (List.rev acc, false)
          | _ -> scan (i + 1) acc
      in
      scan (idx + 1) []

(** Whether the value defined at [idx] is dead within the block: nothing
    (instruction or terminator) reads it before its next definition.  The
    block-exit value of the {e register} may still be observable — deadness
    here is only about this particular definition's value. *)
let dead_after b ~idx =
  match uses_of_def b ~idx with [], false -> true | _ -> false

(** Per-function index: for each register, the labels of the blocks that
    mention it (define it, use it, or read it in their terminator). *)
type t = { du_mention : ISet.t SMap.t }

let of_func (f : Res_ir.Func.t) =
  let mention =
    List.fold_left
      (fun m (b : Res_ir.Block.t) ->
        let regs =
          ISet.of_list (Res_ir.Block.defined_regs b @ Res_ir.Block.used_regs b)
        in
        SMap.add b.label regs m)
      SMap.empty f.blocks
  in
  { du_mention = mention }

(** Blocks of [f] that mention register [r]. *)
let blocks_mentioning t r =
  SMap.fold
    (fun label regs acc -> if ISet.mem r regs then label :: acc else acc)
    t.du_mention []
  |> List.sort compare

(** [r] appears in no block of the function other than [block]. *)
let local_to t ~block r =
  List.for_all (String.equal block) (blocks_mentioning t r)
