(** Dominators and postdominators of a function's CFG.

    Computed by the classic iterative dataflow over label sets — MiniIR
    functions are small, so the simple quadratic scheme beats maintaining
    a Lengauer–Tarjan implementation.  [dominators f] maps every label to
    the set of labels that dominate it (itself included); [postdominators]
    is the same over reversed edges, with the exit blocks (terminators
    with no successors) as roots.

    Blocks unreachable from the entry keep the full label set as their
    dominator set (vacuously true: no entry path reaches them at all);
    symmetrically, blocks that cannot reach any exit keep the full set as
    their postdominator set.  Consumers that care (the lint layer) filter
    unreachable blocks out first. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

let labels_of (f : Res_ir.Func.t) =
  List.map (fun (b : Res_ir.Block.t) -> b.label) f.Res_ir.Func.blocks

(** Shared fixpoint: [roots] start at [{self}], everything else at the
    full set, and each node's set is [{self} ∪ ⋂ sets(edges_in)]. *)
let solve ~labels ~roots ~edges_in =
  let all = SSet.of_list labels in
  let init l = if List.mem l roots then SSet.singleton l else all in
  let sets = ref (List.fold_left (fun m l -> SMap.add l (init l) m) SMap.empty labels) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if not (List.mem l roots) then begin
          let preds = edges_in l in
          let meet =
            List.fold_left
              (fun acc p -> SSet.inter acc (SMap.find p !sets))
              all preds
          in
          let next = SSet.add l meet in
          if not (SSet.equal next (SMap.find l !sets)) then begin
            sets := SMap.add l next !sets;
            changed := true
          end
        end)
      labels
  done;
  !sets

(** [dominators f] maps each label to its dominator set (reflexive). *)
let dominators (f : Res_ir.Func.t) =
  let labels = labels_of f in
  let preds =
    (* Intra-function predecessor edges, built locally so this module
       works on a single function without a whole-program Cfg. *)
    List.fold_left
      (fun m (b : Res_ir.Block.t) ->
        List.fold_left
          (fun m tgt ->
            SMap.update tgt
              (function Some l -> Some (b.label :: l) | None -> Some [ b.label ])
              m)
          m
          (Res_ir.Block.successors b))
      SMap.empty f.Res_ir.Func.blocks
  in
  solve ~labels ~roots:[ f.Res_ir.Func.entry ]
    ~edges_in:(fun l -> Option.value ~default:[] (SMap.find_opt l preds))

(** [postdominators f] maps each label to its postdominator set
    (reflexive); roots are the exit blocks. *)
let postdominators (f : Res_ir.Func.t) =
  let labels = labels_of f in
  let exits =
    List.filter_map
      (fun (b : Res_ir.Block.t) ->
        if Res_ir.Block.successors b = [] then Some b.label else None)
      f.Res_ir.Func.blocks
  in
  let succs l = Res_ir.Block.successors (Res_ir.Func.block f l) in
  solve ~labels ~roots:exits ~edges_in:succs

(** [dominates sets ~over l] — does [l] dominate [over]?  Works for both
    {!dominators} and {!postdominators} results. *)
let dominates sets ~over l =
  match SMap.find_opt over sets with
  | Some s -> SSet.mem l s
  | None -> false

(** The immediate dominator of [l]: the unique strict dominator that all
    other strict dominators dominate.  [None] for roots (their only
    dominator is themselves). *)
let idom sets l =
  match SMap.find_opt l sets with
  | None -> None
  | Some s ->
      let strict = SSet.remove l s in
      SSet.fold
        (fun cand acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                SSet.for_all
                  (fun other ->
                    String.equal other cand || dominates sets ~over:cand other)
                  strict
              then Some cand
              else None)
        strict None
