(** Goal-directed reachability over a function's CFG, parameterized by
    what each instruction does to one tracked cell.

    This answers questions of the shape "starting just after program point
    P, can execution reach an event of interest without first passing a
    write to cell X?" — the def-clear paths query behind dead-store
    detection and the goal-directed reachability the static layer's tests
    exercise ("can block B reach the crash block without redefining the
    goal location?").

    The classification is deliberately asymmetric, matching how each
    result is used:
    - an instruction {e reads} the cell if it {e may} read it — an access
      through an unresolved address, or a call whose transitive ref
      footprint includes the cell (or is unknown), counts;
    - an instruction {e writes} the cell only if it {e must} — a store
      through an address resolved to exactly that cell.  May-writes
      (unresolved stores, calls) do not kill a path.

    With that polarity, "no path reaches a read or an exit without a
    write" is a sound argument that a store is dead: whatever path runs,
    the stored value is definitely overwritten before anything can
    observe it.  Function exits count as observers — memory is inspected
    post-mortem by the coredump, and callers may read anything. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type event = May_read | Must_write | Neither

(** How [i] affects the tracked cell under [env]. *)
let classify summary env (cell : Summary.Cell.t) (i : Res_ir.Instr.instr) :
    event =
  let open Res_ir.Instr in
  let cell_eq c = Summary.Cell.compare c cell = 0 in
  match i with
  | Call (_, callee, _) ->
      let s = Summary.transitive summary callee in
      if
        s.Summary.s_ref.Summary.f_unknown
        || Summary.CSet.mem cell s.Summary.s_ref.Summary.f_cells
        (* a callee that may write the cell is also treated as an
           observer: it is not a must-write, and claiming deadness across
           it would be unsound *)
        || s.Summary.s_mod.Summary.f_unknown
        || Summary.CSet.mem cell s.Summary.s_mod.Summary.f_cells
      then May_read
      else Neither
  | _ -> (
      let accs = accesses i in
      let reads =
        List.exists
          (fun (a : access) ->
            (not a.acc_write)
            &&
            match Absval.cell_of_access env a with
            | Some c -> cell_eq c
            | None -> true (* unresolved: may touch anything *))
          accs
      in
      if reads then May_read
      else
        let writes_exactly =
          List.exists
            (fun (a : access) ->
              a.acc_write
              &&
              match Absval.cell_of_access env a with
              | Some c -> cell_eq c
              | None -> false)
            accs
        in
        let may_write_other =
          List.exists
            (fun (a : access) ->
              a.acc_write && Absval.cell_of_access env a = None)
            accs
        in
        if may_write_other then May_read (* unresolved write: observer-safe *)
        else if writes_exactly then Must_write
        else Neither)

(** Walk a block from [idx], threading the environment: [`Read] if a
    may-read is hit first, [`Killed env] if a must-write is hit first,
    [`Fell env] if the terminator is reached.  Exit terminators count as
    reads. *)
let walk_block summary cell (b : Res_ir.Block.t) ~idx env =
  let n = Res_ir.Block.length b in
  let rec go i env =
    if i >= n then
      if Res_ir.Block.successors b = [] then `Read else `Fell env
    else
      match classify summary env cell b.instrs.(i) with
      | May_read -> `Read
      | Must_write -> `Killed
      | Neither -> go (i + 1) (Absval.transfer env b.instrs.(i))
  in
  go idx env

(** [observable_after summary f ~block ~idx cell] — can any may-read of
    [cell] (or a function exit) be reached from just {e after} instruction
    [idx] of [block] without first passing a must-write to [cell]?

    [false] means the value written at [idx] is definitely dead.  Block
    entries are explored with the function's block-entry environments
    (so address resolution stays correct along the path). *)
let observable_after summary (f : Res_ir.Func.t) ~block ~idx cell =
  let envs = Summary.envs_of summary f.Res_ir.Func.name in
  let env_at l = Option.value ~default:Absval.IMap.empty (SMap.find_opt l envs) in
  (* Environment just after the store: replay the block prefix. *)
  let b0 = Res_ir.Func.block f block in
  let env0 =
    let e = ref (env_at block) in
    for i = 0 to min idx (Res_ir.Block.length b0 - 1) do
      e := Absval.transfer !e b0.Res_ir.Block.instrs.(i)
    done;
    !e
  in
  match walk_block summary cell b0 ~idx:(idx + 1) env0 with
  | `Read -> true
  | `Killed -> false
  | `Fell _ ->
      (* BFS over whole blocks from the successors. *)
      let seen = ref SSet.empty in
      let q = Queue.create () in
      List.iter (fun s -> Queue.add s q) (Res_ir.Block.successors b0);
      let found = ref false in
      while (not !found) && not (Queue.is_empty q) do
        let l = Queue.pop q in
        if not (SSet.mem l !seen) then begin
          seen := SSet.add l !seen;
          let b = Res_ir.Func.block f l in
          match walk_block summary cell b ~idx:0 (env_at l) with
          | `Read -> found := true
          | `Killed -> ()
          | `Fell _ ->
              List.iter (fun s -> Queue.add s q) (Res_ir.Block.successors b)
        end
      done;
      !found

(** [def_clear_between summary f ~from_block ~from_idx ~to_block cell] — is
    there a CFG path from just {e after} instruction [from_idx] of
    [from_block] ([from_idx = -1]: from the block's entry) to the {e start}
    of [to_block], along which no intervening instruction must-writes
    [cell]?  [to_block]'s own body is not walked.

    This is the segment-boundary liveness query behind the backward
    slicer: a store to [cell] contributes to the value the crash segment
    observes only if such a def-clear path exists from the store to the
    observing block.  Reads never kill a path (only must-writes do), and
    may-writes (unresolved stores, calls) do not kill it either — the
    query is a may-path, so over-approximation keeps the slice sound. *)
let def_clear_between summary (f : Res_ir.Func.t) ~from_block ~from_idx
    ~to_block cell =
  let envs = Summary.envs_of summary f.Res_ir.Func.name in
  let env_at l =
    Option.value ~default:Absval.IMap.empty (SMap.find_opt l envs)
  in
  (* Scan [b] from [idx]: [`Killed] if a must-write is hit, else [`Fell]. *)
  let scan (b : Res_ir.Block.t) ~idx env =
    let n = Res_ir.Block.length b in
    let rec go i env =
      if i >= n then `Fell
      else
        match classify summary env cell b.instrs.(i) with
        | Must_write -> `Killed
        | May_read | Neither -> go (i + 1) (Absval.transfer env b.instrs.(i))
    in
    go idx env
  in
  let b0 = Res_ir.Func.block f from_block in
  let env0 =
    let e = ref (env_at from_block) in
    for i = 0 to min from_idx (Res_ir.Block.length b0 - 1) do
      e := Absval.transfer !e b0.Res_ir.Block.instrs.(i)
    done;
    !e
  in
  match scan b0 ~idx:(max 0 (from_idx + 1)) env0 with
  | `Killed -> false
  | `Fell ->
      let seen = ref SSet.empty in
      let q = Queue.create () in
      let found = ref false in
      let push s =
        if String.equal s to_block then found := true else Queue.add s q
      in
      List.iter push (Res_ir.Block.successors b0);
      while (not !found) && not (Queue.is_empty q) do
        let l = Queue.pop q in
        if not (SSet.mem l !seen) then begin
          seen := SSet.add l !seen;
          let b = Res_ir.Func.block f l in
          match scan b ~idx:0 (env_at l) with
          | `Killed -> ()
          | `Fell -> List.iter push (Res_ir.Block.successors b)
        end
      done;
      !found

(** [can_reach_without_write summary f ~from ~target cell] — is there a
    CFG path from the {e start} of [from] to the start of [target] along
    which no intervening instruction must-writes [cell]?  ([from] itself
    is walked; [target] is not.)  The goal-directed backward-search
    question, asked forward: a predecessor that cannot reach the crash
    block def-clear cannot explain the coredump's value of [cell]. *)
let can_reach_without_write summary (f : Res_ir.Func.t) ~from ~target cell =
  if String.equal from target then true
  else
    let envs = Summary.envs_of summary f.Res_ir.Func.name in
    let env_at l =
      Option.value ~default:Absval.IMap.empty (SMap.find_opt l envs)
    in
    (* A block passes if no instruction in it must-writes the cell; reads
       are irrelevant to this query. *)
    let block_clear (b : Res_ir.Block.t) =
      let env = ref (env_at b.label) in
      let clear = ref true in
      Array.iter
        (fun i ->
          (match classify summary !env cell i with
          | Must_write -> clear := false
          | May_read | Neither -> ());
          env := Absval.transfer !env i)
        b.instrs;
      !clear
    in
    let seen = ref SSet.empty in
    let q = Queue.create () in
    let found = ref false in
    Queue.add from q;
    while (not !found) && not (Queue.is_empty q) do
      let l = Queue.pop q in
      if not (SSet.mem l !seen) then begin
        seen := SSet.add l !seen;
        let b = Res_ir.Func.block f l in
        if block_clear b then
          List.iter
            (fun s -> if String.equal s target then found := true else Queue.add s q)
            (Res_ir.Block.successors b)
      end
    done;
    !found
