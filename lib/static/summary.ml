(** Whole-program mod/ref summaries over MiniIR.

    For every function: which global cells it may read and write, which
    mutex cells it may lock, and whether it touches the heap, spawns,
    joins, or reads external input — {e transitively} through calls, with
    a Kleene fixpoint over the call graph so recursion converges.

    Cells are [(global, offset)] pairs resolved by {!Absval}; any access
    whose address the abstraction cannot resolve (heap pointers,
    input-derived addresses) sets the footprint's [unknown] flag instead
    of being dropped, so consumers can stay conservative.  Summaries are
    {e may} information: a cell in [s_mod] may be written, a clear
    [unknown] flag means the listed cells are exhaustive. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(** A global cell: a named global plus a constant word offset. *)
module Cell = struct
  type t = string * int

  let compare (g, o) (h, p) =
    match String.compare g h with 0 -> Int.compare o p | c -> c

  let pp ppf (g, o) = Fmt.pf ppf "%s[%d]" g o
end

module CSet = Set.Make (Cell)

(** A memory footprint: the resolved cells, plus whether some access
    escaped resolution (in which case the footprint covers, potentially,
    all of memory). *)
type foot = { f_cells : CSet.t; f_unknown : bool }

let foot_empty = { f_cells = CSet.empty; f_unknown = false }
let foot_top = { f_cells = CSet.empty; f_unknown = true }

let foot_union a b =
  { f_cells = CSet.union a.f_cells b.f_cells;
    f_unknown = a.f_unknown || b.f_unknown }

let foot_equal a b =
  CSet.equal a.f_cells b.f_cells && Bool.equal a.f_unknown b.f_unknown

let pp_foot ppf f =
  Fmt.pf ppf "{%a%s}"
    Fmt.(list ~sep:(any ", ") Cell.pp)
    (CSet.elements f.f_cells)
    (if f.f_unknown then if CSet.is_empty f.f_cells then "?" else ", ?" else "")

(** One function's effect summary. *)
type fsum = {
  s_mod : foot;  (** cells the function may write *)
  s_ref : foot;  (** cells the function may read *)
  s_locks : CSet.t;  (** mutex cells it may lock/unlock *)
  s_locks_unknown : bool;  (** a lock/unlock through an unresolved address *)
  s_heap : bool;  (** allocates or frees heap blocks *)
  s_inputs : bool;  (** reads external input *)
  s_spawns : SSet.t;  (** functions it may spawn threads in *)
  s_joins : bool;  (** joins on a thread *)
  s_calls : SSet.t;  (** direct callees *)
}

let fsum_empty =
  {
    s_mod = foot_empty;
    s_ref = foot_empty;
    s_locks = CSet.empty;
    s_locks_unknown = false;
    s_heap = false;
    s_inputs = false;
    s_spawns = SSet.empty;
    s_joins = false;
    s_calls = SSet.empty;
  }

let fsum_union a b =
  {
    s_mod = foot_union a.s_mod b.s_mod;
    s_ref = foot_union a.s_ref b.s_ref;
    s_locks = CSet.union a.s_locks b.s_locks;
    s_locks_unknown = a.s_locks_unknown || b.s_locks_unknown;
    s_heap = a.s_heap || b.s_heap;
    s_inputs = a.s_inputs || b.s_inputs;
    s_spawns = SSet.union a.s_spawns b.s_spawns;
    s_joins = a.s_joins || b.s_joins;
    s_calls = SSet.union a.s_calls b.s_calls;
  }

let fsum_equal a b =
  foot_equal a.s_mod b.s_mod && foot_equal a.s_ref b.s_ref
  && CSet.equal a.s_locks b.s_locks
  && Bool.equal a.s_locks_unknown b.s_locks_unknown
  && Bool.equal a.s_heap b.s_heap
  && Bool.equal a.s_inputs b.s_inputs
  && SSet.equal a.s_spawns b.s_spawns
  && Bool.equal a.s_joins b.s_joins
  && SSet.equal a.s_calls b.s_calls

(** Effects of [b] in isolation ({e not} through calls), threading the
    abstract environment from [env0]; returns the block summary and the
    environment at the terminator. *)
let block_direct (b : Res_ir.Block.t) (env0 : Absval.env) =
  let open Res_ir.Instr in
  Array.fold_left
    (fun (sum, env) i ->
      let add_access sum (a : access) =
        let foot =
          match Absval.cell_of_access env a with
          | Some cell -> { f_cells = CSet.singleton cell; f_unknown = false }
          | None -> foot_top
        in
        if a.acc_write then { sum with s_mod = foot_union sum.s_mod foot }
        else { sum with s_ref = foot_union sum.s_ref foot }
      in
      let sum = List.fold_left add_access sum (accesses i) in
      let sum =
        match i with
        | Lock a | Unlock a -> (
            match Absval.read env a with
            | Absval.GPtr (g, o) ->
                { sum with s_locks = CSet.add (g, o) sum.s_locks }
            | _ -> { sum with s_locks_unknown = true })
        | Alloc _ | Free _ -> { sum with s_heap = true }
        | Input _ -> { sum with s_inputs = true }
        | Spawn (_, f, _) -> { sum with s_spawns = SSet.add f sum.s_spawns }
        | Join _ -> { sum with s_joins = true }
        | Call (_, f, _) -> { sum with s_calls = SSet.add f sum.s_calls }
        | _ -> sum
      in
      (sum, Absval.transfer env i))
    (fsum_empty, env0) b.Res_ir.Block.instrs

type t = {
  direct : fsum SMap.t;  (** per function, calls not folded in *)
  trans : fsum SMap.t;  (** per function, transitively through calls *)
  envs : Absval.env SMap.t SMap.t;
      (** per function, block-entry abstract environments (params [Top]) *)
}

(** Direct summary of [f], plus its block-entry environments. *)
let func_direct (f : Res_ir.Func.t) =
  let envs = Absval.block_envs f ~init:Absval.IMap.empty in
  let sum =
    List.fold_left
      (fun acc (b : Res_ir.Block.t) ->
        match SMap.find_opt b.label envs with
        | None -> acc (* unreachable block: contributes nothing at runtime *)
        | Some env0 -> fsum_union acc (fst (block_direct b env0)))
      fsum_empty f.Res_ir.Func.blocks
  in
  (sum, envs)

let of_prog (p : Res_ir.Prog.t) =
  let direct, envs =
    List.fold_left
      (fun (dm, em) (f : Res_ir.Func.t) ->
        let sum, envs = func_direct f in
        (SMap.add f.name sum dm, SMap.add f.name envs em))
      (SMap.empty, SMap.empty) p.Res_ir.Prog.funcs
  in
  (* Kleene fixpoint: fold callees' transitive summaries into each
     function until nothing changes.  The lattice is finite (cells are
     drawn from the program text, flags are monotone), so this
     terminates — recursion simply converges to the cycle's union. *)
  let trans = ref direct in
  let changed = ref true in
  while !changed do
    changed := false;
    SMap.iter
      (fun fname sum ->
        let folded =
          SSet.fold
            (fun callee acc ->
              match SMap.find_opt callee !trans with
              | Some csum -> fsum_union acc csum
              | None -> acc)
            sum.s_calls sum
        in
        (* Keep s_calls as the direct call edges: the transitive closure
           of effects, not of the call graph itself. *)
        let folded = { folded with s_calls = sum.s_calls } in
        if not (fsum_equal folded (SMap.find fname !trans)) then begin
          trans := SMap.add fname folded !trans;
          changed := true
        end)
      !trans
  done;
  { direct; trans = !trans; envs }

(** The transitive summary of a function: its own effects plus those of
    everything it can call.  Unknown functions get the all-unknown
    summary — consumers must stay conservative. *)
let transitive t fname =
  match SMap.find_opt fname t.trans with
  | Some s -> s
  | None ->
      {
        fsum_empty with
        s_mod = foot_top;
        s_ref = foot_top;
        s_locks_unknown = true;
        s_heap = true;
        s_inputs = true;
        s_joins = true;
      }

(** The direct (call-free) summary of a function. *)
let direct t fname =
  Option.value ~default:fsum_empty (SMap.find_opt fname t.direct)

(** Block-entry abstract environments of [fname] (params are [Top]). *)
let envs_of t fname =
  Option.value ~default:SMap.empty (SMap.find_opt fname t.envs)

(** Summary of one block {e including} its callees' transitive effects:
    the per-block mod/ref unit the backward search prunes with. *)
let block_sum t (f : Res_ir.Func.t) (b : Res_ir.Block.t) =
  let env0 =
    Option.value ~default:Absval.IMap.empty
      (SMap.find_opt b.Res_ir.Block.label (envs_of t f.Res_ir.Func.name))
  in
  let sum, _ = block_direct b env0 in
  SSet.fold
    (fun callee acc -> fsum_union acc (transitive t callee))
    sum.s_calls sum
  |> fun folded -> { folded with s_calls = sum.s_calls }

let pp_fsum ppf s =
  Fmt.pf ppf "mod %a ref %a locks {%a%s}%s%s%s" pp_foot s.s_mod pp_foot s.s_ref
    Fmt.(list ~sep:(any ", ") Cell.pp)
    (CSet.elements s.s_locks)
    (if s.s_locks_unknown then "?" else "")
    (if s.s_heap then " heap" else "")
    (if s.s_inputs then " input" else "")
    (if s.s_joins then " join" else "")
