(** Lockset-based static race and deadlock lint over MiniIR's
    spawn/mutex instructions.

    The analysis is built to make {e zero false claims} on correct code
    (the bar the workload ground truth in [lib/workloads/truth.ml] sets),
    at the cost of missing bugs it cannot resolve statically:

    - {b Thread instances} are spawn sites.  A forward dataflow over each
      spawning function tracks which instances are {e outstanding}
      (spawned, not yet provably joined) at every point; two instances
      are {e concurrent} if one is spawned while the other is
      outstanding.  [join] on an unresolved thread id conservatively
      clears the outstanding set (so post-join accesses are never
      miscalled racy), as does a call that may join.
    - {b Accesses} are collected over each instance's function and its
      call closure, each carrying the {e must-hold lockset} at that
      point (intersection at joins, so a lock is claimed held only when
      it is held on every path).
    - {b A race} is two accesses from concurrent instances (or a
      still-outstanding instance vs. its spawner) to the same resolved
      global cell, at least one a write, with disjoint must-locksets.
    - {b A lock-order cycle} is a pair of concurrent instances acquiring
      two mutexes in opposite orders ([m1 < m2] vs [m2 < m1]).
    - Any lock/unlock through an address the abstraction cannot resolve
      {e taints} the instance: no claim involving it is made at all.

    Heap-allocated shared state and instances spawned from inside
    spawned threads are out of scope (never reported — another
    under-approximation, never a false positive). *)

module IMap = Map.Make (Int)
module SMap = Map.Make (String)
module SSet = Set.Make (String)
module CSet = Summary.CSet

type cell = Summary.Cell.t

(** A data access with its must-hold lockset. *)
type access = {
  a_cell : cell;
  a_write : bool;
  a_locks : CSet.t;
  a_where : string;  (** "func:block:idx" *)
}

(** Result of analyzing one function body (plus call closure) from a
    given entry lockset. *)
type body = {
  b_accesses : access list;
  b_edges : (cell * cell) list;  (** lock-order: held -> acquired *)
  b_double : (cell * string) list;  (** lock of an already-held mutex *)
  b_exit_locks : CSet.t;  (** must-held at return *)
  b_tainted : bool;  (** an unresolved lock/unlock: suppress claims *)
}

let empty_body locks =
  {
    b_accesses = [];
    b_edges = [];
    b_double = [];
    b_exit_locks = locks;
    b_tainted = false;
  }

(** Forward (env, lockset) state; joins are env-join / set-intersection. *)
type bstate = { st_env : Absval.env; st_locks : CSet.t }

let join_bstate a b =
  {
    st_env = Absval.join_env a.st_env b.st_env;
    st_locks = CSet.inter a.st_locks b.st_locks;
  }

let equal_bstate a b =
  Absval.IMap.equal Absval.equal a.st_env b.st_env
  && CSet.equal a.st_locks b.st_locks

let resolve env a =
  match Absval.read env a with
  | Absval.GPtr (g, o) -> Some (g, o)
  | _ -> None

(** Analyze [fname]'s body from [locks0] with [args] bound to its
    parameters, following calls ([stack] cuts recursion with a taint). *)
let rec analyze_body prog summary ~stack fname (args : Absval.t list)
    (locks0 : CSet.t) : body =
  if List.mem fname stack then { (empty_body locks0) with b_tainted = true }
  else
    match Res_ir.Prog.func_opt prog fname with
    | None -> { (empty_body locks0) with b_tainted = true }
    | Some f ->
        let stack = fname :: stack in
        let init_env =
          List.fold_left
            (fun (env, i) v -> (Absval.IMap.add i v env, i + 1))
            (Absval.IMap.empty, 0) args
          |> fst
        in
        let acc = ref (empty_body locks0) in
        let taint () = acc := { !acc with b_tainted = true } in
        (* Transfer one instruction; [record] is false during the
           fixpoint and true during the final collection walk, so
           accesses and edges are recorded exactly once per point. *)
        let step ~record where (st : bstate) (i : Res_ir.Instr.instr) :
            bstate =
          let env = st.st_env in
          let record_access (a : Res_ir.Instr.access) =
            if record then
              match Absval.cell_of_access env a with
              | Some c ->
                  acc :=
                    {
                      !acc with
                      b_accesses =
                        {
                          a_cell = c;
                          a_write = a.Res_ir.Instr.acc_write;
                          a_locks = st.st_locks;
                          a_where = where;
                        }
                        :: !acc.b_accesses;
                    }
              | None -> () (* unresolved: claim nothing *)
          in
          let st' =
            match i with
            | Res_ir.Instr.Lock a -> (
                match resolve env a with
                | Some c ->
                    if record then begin
                      if CSet.mem c st.st_locks then
                        acc :=
                          { !acc with b_double = (c, where) :: !acc.b_double };
                      CSet.iter
                        (fun held ->
                          acc :=
                            {
                              !acc with
                              b_edges = (held, c) :: !acc.b_edges;
                            })
                        st.st_locks
                    end;
                    { st with st_locks = CSet.add c st.st_locks }
                | None ->
                    taint ();
                    st)
            | Res_ir.Instr.Unlock a -> (
                match resolve env a with
                | Some c -> { st with st_locks = CSet.remove c st.st_locks }
                | None ->
                    taint ();
                    st)
            | Res_ir.Instr.Call (_, callee, cargs) ->
                let vals = List.map (Absval.read env) cargs in
                let sub = analyze_body prog summary ~stack callee vals st.st_locks in
                if sub.b_tainted then taint ();
                if record then
                  acc :=
                    {
                      !acc with
                      b_accesses = sub.b_accesses @ !acc.b_accesses;
                      b_edges = sub.b_edges @ !acc.b_edges;
                      b_double = sub.b_double @ !acc.b_double;
                    };
                { st with st_locks = sub.b_exit_locks }
            | Res_ir.Instr.Load _ | Res_ir.Instr.Store _ ->
                List.iter record_access (Res_ir.Instr.accesses i);
                st
            | _ -> st
          in
          { st' with st_env = Absval.transfer st'.st_env i }
        in
        let block_out ~record (b : Res_ir.Block.t) st0 =
          let st = ref st0 in
          Array.iteri
            (fun i instr ->
              let where = Fmt.str "%s:%s:%d" fname b.Res_ir.Block.label i in
              st := step ~record where !st instr)
            b.Res_ir.Block.instrs;
          !st
        in
        (* Fixpoint over block-entry states. *)
        let states =
          ref
            (SMap.singleton f.Res_ir.Func.entry
               { st_env = init_env; st_locks = locks0 })
        in
        let work = Queue.create () in
        Queue.add f.Res_ir.Func.entry work;
        while not (Queue.is_empty work) do
          let l = Queue.pop work in
          match SMap.find_opt l !states with
          | None -> ()
          | Some st0 ->
              let b = Res_ir.Func.block f l in
              let out = block_out ~record:false b st0 in
              List.iter
                (fun succ ->
                  let next =
                    match SMap.find_opt succ !states with
                    | None -> out
                    | Some prev -> join_bstate prev out
                  in
                  let changed =
                    match SMap.find_opt succ !states with
                    | None -> true
                    | Some prev -> not (equal_bstate prev next)
                  in
                  if changed then begin
                    states := SMap.add succ next !states;
                    Queue.add succ work
                  end)
                (Res_ir.Block.successors b)
        done;
        (* Collection walk + exit lockset (meet over reachable rets). *)
        let exit_locks = ref None in
        SMap.iter
          (fun l st0 ->
            let b = Res_ir.Func.block f l in
            let out = block_out ~record:true b st0 in
            match b.Res_ir.Block.term with
            | Res_ir.Instr.Ret _ ->
                exit_locks :=
                  Some
                    (match !exit_locks with
                    | None -> out.st_locks
                    | Some prev -> CSet.inter prev out.st_locks)
            | _ -> ())
          !states;
        {
          !acc with
          b_exit_locks =
            (match !exit_locks with Some s -> s | None -> locks0);
        }

(* --- spawner-side analysis: which instances overlap --- *)

(** A thread instance: one spawn site. *)
type instance = {
  in_id : string;  (** "func:block:idx" of the spawn *)
  in_func : string;  (** the function the thread runs *)
  mutable in_args : Absval.t list;  (** joined over visits *)
}

type sstate = {
  ss_base : bstate;
  ss_out : SSet.t;  (** outstanding spawn sites *)
  ss_bind : string IMap.t;  (** register -> site its tid lives in *)
}

let join_sstate a b =
  {
    ss_base = join_bstate a.ss_base b.ss_base;
    ss_out = SSet.union a.ss_out b.ss_out;
    ss_bind =
      IMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some s, Some t when String.equal s t -> Some s
          | _ -> None)
        a.ss_bind b.ss_bind;
  }

let equal_sstate a b =
  equal_bstate a.ss_base b.ss_base
  && SSet.equal a.ss_out b.ss_out
  && IMap.equal String.equal a.ss_bind b.ss_bind

(** Everything the reporting phase needs. *)
type analysis = {
  an_instances : instance list;
  an_pairs : (string * string) list;  (** concurrent site pairs *)
  an_selfconc : SSet.t;  (** sites concurrent with themselves *)
  an_spawner_accesses : (access * SSet.t) list;
      (** spawner-side accesses, with the then-outstanding sites *)
  an_bodies : (string * body) list;  (** per instance (by site id) *)
}

(** A normalized unordered pair. *)
let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let analyze prog (summary : Summary.t) : analysis =
  let instances : (string, instance) Hashtbl.t = Hashtbl.create 8 in
  let pairs = ref [] in
  let selfconc = ref SSet.empty in
  let spawner_accesses = ref [] in
  let spawners =
    List.filter
      (fun (f : Res_ir.Func.t) ->
        List.exists
          (fun (b : Res_ir.Block.t) ->
            Res_ir.Block.exists
              (fun i -> Res_ir.Instr.spawn_target i <> None)
              b)
          f.Res_ir.Func.blocks)
      prog.Res_ir.Prog.funcs
  in
  List.iter
    (fun (f : Res_ir.Func.t) ->
      let fname = f.Res_ir.Func.name in
      (* This spawner's own accesses, withheld from the global list if an
         unresolved lock op makes its locksets untrustworthy. *)
      let local_accesses = ref [] in
      let sp_taint = ref false in
      (* Transfer mirrors analyze_body's lockset/env handling (without
         descending for accesses), adding outstanding/bind tracking. *)
      let step ~record where (st : sstate) (i : Res_ir.Instr.instr) : sstate
          =
        let env = st.ss_base.st_env in
        let base_instr st_base =
          match i with
          | Res_ir.Instr.Lock a -> (
              match resolve env a with
              | Some c ->
                  { st_base with st_locks = CSet.add c st_base.st_locks }
              | None ->
                  sp_taint := true;
                  st_base)
          | Res_ir.Instr.Unlock a -> (
              match resolve env a with
              | Some c ->
                  { st_base with st_locks = CSet.remove c st_base.st_locks }
              | None ->
                  sp_taint := true;
                  st_base)
          | _ -> st_base
        in
        let st =
          match i with
          | Res_ir.Instr.Spawn (r, callee, cargs) ->
              let id = where in
              let vals = List.map (Absval.read env) cargs in
              if record then begin
                (match Hashtbl.find_opt instances id with
                | Some inst ->
                    inst.in_args <-
                      List.map2 Absval.join inst.in_args vals
                | None ->
                    Hashtbl.replace instances id
                      { in_id = id; in_func = callee; in_args = vals });
                if SSet.mem id st.ss_out then
                  selfconc := SSet.add id !selfconc;
                SSet.iter
                  (fun other -> pairs := norm_pair id other :: !pairs)
                  st.ss_out
              end;
              {
                st with
                ss_out = SSet.add id st.ss_out;
                ss_bind = IMap.add r id st.ss_bind;
              }
          | Res_ir.Instr.Join r -> (
              match IMap.find_opt r st.ss_bind with
              | Some id ->
                  {
                    st with
                    ss_out = SSet.remove id st.ss_out;
                    ss_bind = IMap.remove r st.ss_bind;
                  }
              | None ->
                  (* join on an unresolved tid: assume it may join
                     anything — never claim concurrency past it *)
                  { st with ss_out = SSet.empty; ss_bind = IMap.empty })
          | Res_ir.Instr.Call (_, callee, cargs) ->
              let tsum = Summary.transitive summary callee in
              let st =
                if tsum.Summary.s_joins then
                  { st with ss_out = SSet.empty; ss_bind = IMap.empty }
                else st
              in
              if record then begin
                (* callee accesses run with the threads outstanding here *)
                let vals = List.map (Absval.read env) cargs in
                let sub =
                  analyze_body prog summary ~stack:[ fname ] callee vals
                    st.ss_base.st_locks
                in
                if not sub.b_tainted then
                  List.iter
                    (fun a ->
                      local_accesses := (a, st.ss_out) :: !local_accesses)
                    sub.b_accesses
              end;
              st
          | Res_ir.Instr.Load _ | Res_ir.Instr.Store _ ->
              if record then
                List.iter
                  (fun (a : Res_ir.Instr.access) ->
                    match Absval.cell_of_access env a with
                    | Some c ->
                        local_accesses :=
                          ( {
                              a_cell = c;
                              a_write = a.Res_ir.Instr.acc_write;
                              a_locks = st.ss_base.st_locks;
                              a_where = where;
                            },
                            st.ss_out )
                          :: !local_accesses
                    | None -> ())
                  (Res_ir.Instr.accesses i);
              st
          | _ -> st
        in
        (* any definition other than the spawn itself invalidates a tid
           binding, whichever branch handled the instruction *)
        let st =
          match i with
          | Res_ir.Instr.Spawn _ -> st
          | _ -> (
              match Res_ir.Instr.defs i with
              | Some r -> { st with ss_bind = IMap.remove r st.ss_bind }
              | None -> st)
        in
        let base = base_instr st.ss_base in
        { st with ss_base = { base with st_env = Absval.transfer base.st_env i } }
      in
      let block_out ~record (b : Res_ir.Block.t) st0 =
        let st = ref st0 in
        Array.iteri
          (fun i instr ->
            let where = Fmt.str "%s:%s:%d" fname b.Res_ir.Block.label i in
            st := step ~record where !st instr)
          b.Res_ir.Block.instrs;
        !st
      in
      let init =
        {
          ss_base = { st_env = Absval.IMap.empty; st_locks = CSet.empty };
          ss_out = SSet.empty;
          ss_bind = IMap.empty;
        }
      in
      let states = ref (SMap.singleton f.Res_ir.Func.entry init) in
      let work = Queue.create () in
      Queue.add f.Res_ir.Func.entry work;
      while not (Queue.is_empty work) do
        let l = Queue.pop work in
        match SMap.find_opt l !states with
        | None -> ()
        | Some st0 ->
            let b = Res_ir.Func.block f l in
            let out = block_out ~record:false b st0 in
            List.iter
              (fun succ ->
                let next =
                  match SMap.find_opt succ !states with
                  | None -> out
                  | Some prev -> join_sstate prev out
                in
                let changed =
                  match SMap.find_opt succ !states with
                  | None -> true
                  | Some prev -> not (equal_sstate prev next)
                in
                if changed then begin
                  states := SMap.add succ next !states;
                  Queue.add succ work
                end)
              (Res_ir.Block.successors b)
      done;
      SMap.iter
        (fun l st0 ->
          ignore (block_out ~record:true (Res_ir.Func.block f l) st0))
        !states;
      if not !sp_taint then
        spawner_accesses := !local_accesses @ !spawner_accesses)
    spawners;
  let bodies =
    Hashtbl.fold
      (fun id (inst : instance) acc ->
        ( id,
          analyze_body prog summary ~stack:[] inst.in_func inst.in_args
            CSet.empty )
        :: acc)
      instances []
  in
  {
    an_instances =
      Hashtbl.fold (fun _ i acc -> i :: acc) instances []
      |> List.sort (fun a b -> String.compare a.in_id b.in_id);
    an_pairs = List.sort_uniq compare !pairs;
    an_selfconc = !selfconc;
    an_spawner_accesses = !spawner_accesses;
    an_bodies = bodies;
  }

(* --- reporting --- *)

type race = {
  r_cell : cell;
  r_where1 : string;
  r_where2 : string;
}

type cycle = {
  c_lock1 : cell;
  c_lock2 : cell;
  c_site1 : string;
  c_site2 : string;
}

type report = {
  races : race list;
  cycles : cycle list;
  double_locks : (cell * string) list;
}

let body_of an id = List.assoc_opt id an.an_bodies

(** All concurrent site pairs, self-concurrent sites included as (s, s). *)
let concurrent_pairs an =
  an.an_pairs
  @ List.map (fun s -> (s, s)) (SSet.elements an.an_selfconc)

let check prog summary : report =
  let an = analyze prog summary in
  let races = ref [] in
  let add_race a1 a2 =
    let w1, w2 =
      if String.compare a1.a_where a2.a_where <= 0 then
        (a1.a_where, a2.a_where)
      else (a2.a_where, a1.a_where)
    in
    races := { r_cell = a1.a_cell; r_where1 = w1; r_where2 = w2 } :: !races
  in
  let racy a1 a2 =
    Summary.Cell.compare a1.a_cell a2.a_cell = 0
    && (a1.a_write || a2.a_write)
    && CSet.is_empty (CSet.inter a1.a_locks a2.a_locks)
  in
  (* instance vs instance *)
  List.iter
    (fun (s1, s2) ->
      match (body_of an s1, body_of an s2) with
      | Some b1, Some b2 when (not b1.b_tainted) && not b2.b_tainted ->
          List.iter
            (fun a1 ->
              List.iter
                (fun a2 -> if racy a1 a2 then add_race a1 a2)
                b2.b_accesses)
            b1.b_accesses
      | _ -> ())
    (concurrent_pairs an);
  (* spawner vs outstanding instance *)
  List.iter
    (fun (a, out) ->
      SSet.iter
        (fun s ->
          match body_of an s with
          | Some b when not b.b_tainted ->
              List.iter
                (fun a2 -> if racy a a2 then add_race a a2)
                b.b_accesses
          | _ -> ())
        out)
    an.an_spawner_accesses;
  (* lock-order cycles between concurrent instances *)
  let cycles = ref [] in
  List.iter
    (fun (s1, s2) ->
      match (body_of an s1, body_of an s2) with
      | Some b1, Some b2 when (not b1.b_tainted) && not b2.b_tainted ->
          List.iter
            (fun (a, b) ->
              List.iter
                (fun (c, d) ->
                  if
                    Summary.Cell.compare a d = 0
                    && Summary.Cell.compare b c = 0
                    && Summary.Cell.compare a b <> 0
                  then
                    let l1, l2 =
                      if Summary.Cell.compare a b <= 0 then (a, b) else (b, a)
                    in
                    cycles :=
                      { c_lock1 = l1; c_lock2 = l2; c_site1 = s1; c_site2 = s2 }
                      :: !cycles)
                b2.b_edges)
            b1.b_edges
      | _ -> ())
    (concurrent_pairs an);
  (* double acquisition within one instance (guaranteed self-deadlock) *)
  let doubles =
    List.concat_map
      (fun (_, (b : body)) -> if b.b_tainted then [] else b.b_double)
      an.an_bodies
  in
  let dedup_races =
    List.sort_uniq compare !races
  in
  let dedup_cycles =
    List.sort_uniq
      (fun a b ->
        compare (a.c_lock1, a.c_lock2) (b.c_lock1, b.c_lock2))
      !cycles
  in
  { races = dedup_races; cycles = dedup_cycles; double_locks = doubles }

(* --- lock-leak lint (a postdominator client) --- *)

(** Locks acquired on some path and provably released on every path: for
    each resolved [lock] site, require a matching [unlock] later in the
    same block or in a postdominating block.  Functions with any
    unresolved lock/unlock are skipped entirely (no claims). *)
let lock_leaks summary (f : Res_ir.Func.t) : (cell * string) list =
  let fname = f.Res_ir.Func.name in
  let envs = Summary.envs_of summary fname in
  let env_at l = SMap.find_opt l envs in
  let dsum = Summary.direct summary fname in
  if dsum.Summary.s_locks_unknown then []
  else
    let pdom = lazy (Dom.postdominators f) in
    (* blocks (by label) whose body releases the cell, with the index *)
    let unlocks_in (b : Res_ir.Block.t) env0 c ~after =
      let env = ref env0 in
      let found = ref false in
      Array.iteri
        (fun i instr ->
          (match instr with
          | Res_ir.Instr.Unlock a when i > after -> (
              match resolve !env a with
              | Some c' when Summary.Cell.compare c c' = 0 -> found := true
              | _ -> ())
          | _ -> ());
          env := Absval.transfer !env instr)
        b.Res_ir.Block.instrs;
      !found
    in
    let leaks = ref [] in
    List.iter
      (fun (b : Res_ir.Block.t) ->
        match env_at b.Res_ir.Block.label with
        | None -> () (* unreachable *)
        | Some env0 ->
            let env = ref env0 in
            Array.iteri
              (fun i instr ->
                (match instr with
                | Res_ir.Instr.Lock a -> (
                    match resolve !env a with
                    | None -> ()
                    | Some c ->
                        let released_here = unlocks_in b env0 c ~after:i in
                        let released_below =
                          List.exists
                            (fun (u : Res_ir.Block.t) ->
                              (not (String.equal u.label b.label))
                              && Dom.dominates (Lazy.force pdom)
                                   ~over:b.Res_ir.Block.label u.label
                              &&
                              match env_at u.label with
                              | Some uenv ->
                                  unlocks_in u uenv c ~after:(-1)
                              | None -> false)
                            f.Res_ir.Func.blocks
                        in
                        if not (released_here || released_below) then
                          leaks :=
                            ( c,
                              Fmt.str "%s:%s:%d" fname b.Res_ir.Block.label i
                            )
                            :: !leaks)
                | _ -> ());
                env := Absval.transfer !env instr)
              b.Res_ir.Block.instrs)
      f.Res_ir.Func.blocks;
    List.rev !leaks
