(** Backward slices over MiniIR: which instructions can influence an
    observation?

    Two granularities:

    - {!of_block} is the intra-block slice the reverse-execution fast
      path consumes.  The backward search observes a segment's {e whole}
      post-state — every register's block-exit value is matched against
      the post snapshot — so the seed is every register the block
      defines plus the terminator's uses, and the only instructions that
      fall out of the slice are pure definitions whose value is
      overwritten before anything (a later instruction, the terminator,
      or the post-state itself) can read it.  Those need no reverse
      treatment at all; the fast path skips them and the search reports
      the count as [slice_skipped].

    - {!crash_slice} is the function-level backward slice w.r.t. the
      crash condition: every instruction that can crash (or transfer
      control somewhere that can), closed backward over register
      def-use chains and — via {!Reach.def_clear_between} — over memory
      cells, so a store enters the slice only if a def-clear path links
      it to an in-slice read of the same cell.  This is the [slice=]
      metric [res check] reports per workload; it bounds how much of a
      function the backward search can ever need to treat
      symbolically. *)

module ISet = Set.Make (Int)
module SMap = Map.Make (String)

(** Intra-block slice: [sl_keep.(i)] is false only for instructions the
    reverse step may ignore entirely. *)
type t = { sl_keep : bool array; sl_size : int; sl_skipped : int }

(* A definition with no side effect and no way to crash: droppable when
   its value is provably unobserved.  [Div]/[Rem] can crash, so they are
   never pure. *)
let pure_def (i : Res_ir.Instr.instr) =
  match i with
  | Res_ir.Instr.Const _ | Mov _ | Global_addr _ | Unop _ -> true
  | Binop (op, _, _, _) -> (
      match op with Res_ir.Instr.Div | Rem -> false | _ -> true)
  | _ -> false

let of_block (b : Res_ir.Block.t) =
  let open Res_ir in
  let n = Block.length b in
  let keep = Array.make n true in
  (* Every defined register's exit value is observed by the post-state,
     so seed with all of them: only a def overwritten later (with no
     intervening use) can be dead. *)
  let needed =
    ref (ISet.of_list (Block.defined_regs b @ Instr.term_uses b.term))
  in
  let skipped = ref 0 in
  for i = n - 1 downto 0 do
    let ins = b.instrs.(i) in
    let dead =
      pure_def ins
      &&
      match Instr.defs ins with
      | Some d -> not (ISet.mem d !needed)
      | None -> false
    in
    if dead then begin
      keep.(i) <- false;
      incr skipped
    end
    else begin
      (match Instr.defs ins with
      | Some d -> needed := ISet.remove d !needed
      | None -> ());
      List.iter (fun r -> needed := ISet.add r !needed) (Instr.uses ins)
    end
  done;
  { sl_keep = keep; sl_size = n - !skipped; sl_skipped = !skipped }

(** Function-level crash slice. *)
type func_slice = {
  fs_keep : bool array SMap.t;  (** per block: instruction is in the slice *)
  fs_total : int;  (** instructions in the function *)
  fs_size : int;  (** instructions in the slice *)
}

(* Can executing [i] crash the program, or transfer control to code that
   can?  Memory accesses crash on unmapped addresses; [Free] on invalid
   frees; [Div]/[Rem] on zero divisors; calls and spawns reach arbitrary
   callee crash sites. *)
let crash_capable (i : Res_ir.Instr.instr) =
  match i with
  | Res_ir.Instr.Assert _ | Free _ | Load _ | Store _ | Lock _ | Unlock _
  | Call _ | Spawn _ ->
      true
  | Binop (op, _, _, _) -> (
      match op with Res_ir.Instr.Div | Rem -> true | _ -> false)
  | Const _ | Mov _ | Unop _ | Global_addr _ | Alloc _ | Input _ | Join _
  | Log _ | Nop ->
      false

let term_crashes (t : Res_ir.Instr.terminator) =
  match t with Res_ir.Instr.Abort _ -> true | _ -> false

let crash_slice summary (f : Res_ir.Func.t) =
  let open Res_ir in
  let envs = Summary.envs_of summary f.Func.name in
  let env_at l =
    Option.value ~default:Absval.IMap.empty (SMap.find_opt l envs)
  in
  (* Forward per-instruction environments, for address resolution. *)
  let benvs =
    List.fold_left
      (fun m (b : Block.t) ->
        let n = Block.length b in
        let arr = Array.make (n + 1) (env_at b.label) in
        for i = 0 to n - 1 do
          arr.(i + 1) <- Absval.transfer arr.(i) b.instrs.(i)
        done;
        SMap.add b.label arr m)
      SMap.empty f.blocks
  in
  (* Blocks from which a crash site is CFG-reachable: their branch
     conditions control whether the crash happens at all, so their
     terminator uses seed the register needs (control dependence,
     over-approximated). *)
  let crashy (b : Block.t) =
    Array.exists crash_capable b.instrs || term_crashes b.term
  in
  let reaches = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Block.t) ->
        if not (Hashtbl.mem reaches b.label) then
          let r =
            crashy b
            || List.exists (Hashtbl.mem reaches) (Block.successors b)
          in
          if r then begin
            Hashtbl.add reaches b.label ();
            changed := true
          end)
      f.blocks
  done;
  let keep =
    List.fold_left
      (fun m (b : Block.t) ->
        SMap.add b.label (Array.make (Block.length b) false) m)
      SMap.empty f.blocks
  in
  (* Cells read by in-slice instructions, with the reading site. *)
  let observers = ref ([] : (Summary.Cell.t * string * int) list) in
  let observed c ~from_block ~from_idx =
    List.exists
      (fun (c', ob, oi) ->
        Summary.Cell.compare c c' = 0
        && (Reach.def_clear_between summary f ~from_block ~from_idx
              ~to_block:ob c
           ||
           (* same-block, store before read: clear if no intervening
              must-write *)
           String.equal ob from_block && from_idx < oi
           &&
           let benv = SMap.find from_block benvs in
           let rec clear i =
             i >= oi
             ||
             match
               Reach.classify summary benv.(i) c
                 (Func.block f from_block).instrs.(i)
             with
             | Reach.Must_write -> false
             | May_read | Neither -> clear (i + 1)
           in
           clear (from_idx + 1)))
      !observers
  in
  let needed_in = ref SMap.empty in
  let observe_reads env b idx (ins : Instr.instr) =
    List.iter
      (fun (a : Instr.access) ->
        if not a.acc_write then
          match Absval.cell_of_access env a with
          | Some c
            when not
                   (List.exists
                      (fun (c', ob, oi) ->
                        Summary.Cell.compare c c' = 0
                        && String.equal ob b && oi = idx)
                      !observers) ->
              observers := (c, b, idx) :: !observers
          | _ -> ())
      (Instr.accesses ins)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Block.t) ->
        let n = Block.length b in
        let karr = SMap.find b.label keep in
        let benv = SMap.find b.label benvs in
        let needed =
          ref
            (List.fold_left
               (fun acc s ->
                 match SMap.find_opt s !needed_in with
                 | Some ns -> ISet.union acc ns
                 | None -> acc)
               ISet.empty (Block.successors b))
        in
        if Hashtbl.mem reaches b.label then
          List.iter
            (fun r -> needed := ISet.add r !needed)
            (Instr.term_uses b.term);
        for i = n - 1 downto 0 do
          let ins = b.instrs.(i) in
          let defines_needed =
            match Instr.defs ins with
            | Some d -> ISet.mem d !needed
            | None -> false
          in
          let feeds_cell =
            match ins with
            | Instr.Store _ -> (
                match Instr.accesses ins with
                | [ a ] -> (
                    match Absval.cell_of_access benv.(i) a with
                    | None -> true (* unresolved: may feed any observer *)
                    | Some c -> observed c ~from_block:b.label ~from_idx:i)
                | _ -> false)
            | _ -> false
          in
          if crash_capable ins || defines_needed || feeds_cell then begin
            if not karr.(i) then begin
              karr.(i) <- true;
              changed := true
            end;
            (match Instr.defs ins with
            | Some d -> needed := ISet.remove d !needed
            | None -> ());
            List.iter (fun r -> needed := ISet.add r !needed) (Instr.uses ins);
            observe_reads benv.(i) b.label i ins
          end
        done;
        let stable =
          match SMap.find_opt b.label !needed_in with
          | Some before -> ISet.equal before !needed
          | None -> ISet.is_empty !needed
        in
        if not stable then begin
          needed_in := SMap.add b.label !needed !needed_in;
          changed := true
        end)
      f.blocks
  done;
  let total = List.fold_left (fun a (b : Block.t) -> a + Block.length b) 0 f.blocks in
  let size =
    SMap.fold
      (fun _ karr a -> Array.fold_left (fun a k -> if k then a + 1 else a) a karr)
      keep 0
  in
  { fs_keep = keep; fs_total = total; fs_size = size }
