(** Hardware fault injection (paper §3.2).

    Faults are scheduled against the global step counter, so a given
    program + seed + fault plan is fully deterministic.  Three families
    mirror the paper's examples: DRAM bit flips, CPU miscomputation of an
    ALU result, and DMA writes from a faulty device.

    The plan is step-indexed internally: per-step queries are
    O(log faults), so long executions with many scheduled faults do not pay
    O(steps × faults). *)

type t

(** No faults. *)
val none : t

val bit_flip : step:int -> addr:int -> bit:int -> t
val alu_error : step:int -> delta:int -> t
val dma_write : step:int -> addr:int -> value:int -> t

(** Add further faults to an existing plan. *)
val add_bit_flip : t -> step:int -> addr:int -> bit:int -> t

val add_alu_error : t -> step:int -> delta:int -> t
val add_dma_write : t -> step:int -> addr:int -> value:int -> t
val is_none : t -> bool

(** The scheduled (step, addr, bit) flips, ascending step. *)
val bit_flips : t -> (int * int * int) list

(** The scheduled (step, delta) ALU errors, ascending step. *)
val alu_errors : t -> (int * int) list

(** The scheduled (step, addr, value) DMA writes, ascending step. *)
val dma_writes : t -> (int * int * int) list

(** Apply the memory mutations (bit flips, DMA writes) due at [step]. *)
val memory_mutations_at : t -> step:int -> Res_mem.Memory.t -> Res_mem.Memory.t

(** ALU corruption for the binop executed at [step] (0 if none). *)
val alu_delta_at : t -> step:int -> int
