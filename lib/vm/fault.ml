(** Hardware fault injection (paper §3.2).

    Faults are scheduled against the global step counter, so a given
    program + seed + fault plan is fully deterministic.  Three families
    mirror the paper's examples: DRAM bit flips, CPU miscomputation of an
    ALU result, and DMA writes from a faulty device.

    The plan is stored step-indexed: the interpreter queries it once per
    executed instruction, so lookups must be O(log faults) rather than a
    scan of the whole plan — long executions with many scheduled faults
    would otherwise pay O(steps × faults). *)

module IMap = Map.Make (Int)

(** One step's worth of scheduled mutations. *)
type at_step = {
  s_bit_flips : (int * int) list;  (** (addr, bit), oldest-scheduled first *)
  s_alu_delta : int;  (** summed delta for the binop at this step *)
  s_dma_writes : (int * int) list;  (** (addr, value), oldest-scheduled first *)
}

let empty_step = { s_bit_flips = []; s_alu_delta = 0; s_dma_writes = [] }

type t = at_step IMap.t

let none : t = IMap.empty

let update_step t step f =
  IMap.update step
    (fun prev -> Some (f (Option.value prev ~default:empty_step)))
    t

let add_bit_flip t ~step ~addr ~bit =
  update_step t step (fun s ->
      { s with s_bit_flips = s.s_bit_flips @ [ (addr, bit) ] })

let add_alu_error t ~step ~delta =
  update_step t step (fun s -> { s with s_alu_delta = s.s_alu_delta + delta })

let add_dma_write t ~step ~addr ~value =
  update_step t step (fun s ->
      { s with s_dma_writes = s.s_dma_writes @ [ (addr, value) ] })

let bit_flip ~step ~addr ~bit = add_bit_flip none ~step ~addr ~bit
let alu_error ~step ~delta = add_alu_error none ~step ~delta
let dma_write ~step ~addr ~value = add_dma_write none ~step ~addr ~value

let is_none t = IMap.is_empty t

(** The scheduled (step, addr, bit) flips, ascending step. *)
let bit_flips t =
  IMap.fold
    (fun step s acc ->
      acc @ List.map (fun (addr, bit) -> (step, addr, bit)) s.s_bit_flips)
    t []

(** The scheduled (step, delta) ALU errors, ascending step. *)
let alu_errors t =
  IMap.fold
    (fun step s acc ->
      if s.s_alu_delta = 0 then acc else acc @ [ (step, s.s_alu_delta) ])
    t []

(** The scheduled (step, addr, value) DMA writes, ascending step. *)
let dma_writes t =
  IMap.fold
    (fun step s acc ->
      acc @ List.map (fun (addr, value) -> (step, addr, value)) s.s_dma_writes)
    t []

(** Apply the memory mutations (bit flips, DMA writes) due at [step]. *)
let memory_mutations_at t ~step mem =
  match IMap.find_opt step t with
  | None -> mem
  | Some s ->
      let mem =
        List.fold_left
          (fun m (addr, bit) -> Res_mem.Memory.flip_bit m addr bit)
          mem s.s_bit_flips
      in
      List.fold_left
        (fun m (addr, value) -> Res_mem.Memory.write m addr value)
        mem s.s_dma_writes

(** ALU corruption for the binop executed at [step] (0 if none). *)
let alu_delta_at t ~step =
  match IMap.find_opt step t with None -> 0 | Some s -> s.s_alu_delta
