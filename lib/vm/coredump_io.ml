(** Textual (de)serialization of coredumps, hardened for hostile inputs.

    Production systems ship coredumps as files; this module gives MiniVM
    dumps a stable, human-readable on-disk format so the CLI can separate
    "run and capture" from "analyze".  The format is line-oriented; string
    payloads (assert/abort messages, log tags) are quoted with OCaml
    escapes.  [of_string (to_string d)] round-trips exactly.

    Because the dump is the {e evidence} RES works from — and may itself be
    truncated, bit-flipped, or half-written (paper §3.2 treats corrupted
    state as a first-class input) — v2 of the format wraps the records in a
    validating envelope: a version header plus an [end <lines> <checksum>]
    footer (FNV-1a over the payload).  {!of_string_result} classifies bad
    inputs into a structured {!dump_error} instead of throwing, and its
    salvage mode recovers the intact prefix of a damaged dump so triage can
    still run on partial evidence.  v1 dumps (no footer) remain readable. *)

module IMap = Map.Make (Int)

let pp_pc ppf (pc : Res_ir.Pc.t) =
  Fmt.pf ppf "%s %s %d" pc.func pc.block pc.idx

let pp_kind ppf (k : Crash.kind) =
  match k with
  | Crash.Seg_fault a -> Fmt.pf ppf "seg_fault %d" a
  | Crash.Out_of_bounds { addr; base; size } ->
      Fmt.pf ppf "out_of_bounds %d %d %d" addr base size
  | Crash.Use_after_free { addr; base } -> Fmt.pf ppf "use_after_free %d %d" addr base
  | Crash.Double_free a -> Fmt.pf ppf "double_free %d" a
  | Crash.Invalid_free a -> Fmt.pf ppf "invalid_free %d" a
  | Crash.Global_overflow { addr; global } ->
      Fmt.pf ppf "global_overflow %d %s" addr global
  | Crash.Div_by_zero -> Fmt.string ppf "div_by_zero"
  | Crash.Assert_fail m -> Fmt.pf ppf "assert_fail %S" m
  | Crash.Abort_called m -> Fmt.pf ppf "abort_called %S" m
  | Crash.Unlock_error a -> Fmt.pf ppf "unlock_error %d" a
  | Crash.Deadlock tids -> Fmt.pf ppf "deadlock %a" Fmt.(list ~sep:sp int) tids
  | Crash.Alloc_error n -> Fmt.pf ppf "alloc_error %d" n

let pp_status ppf = function
  | Thread.Runnable -> Fmt.string ppf "runnable"
  | Thread.Blocked_on_lock a -> Fmt.pf ppf "blocked_on_lock %d" a
  | Thread.Blocked_on_join t -> Fmt.pf ppf "blocked_on_join %d" t
  | Thread.Halted -> Fmt.string ppf "halted"

let pp_site ppf = function
  | None -> Fmt.string ppf "none"
  | Some pc -> pp_pc ppf pc

(* --- envelope: header, line count, checksum --- *)

(** 32-bit FNV-1a over a string — cheap, deterministic, and plenty to catch
    the single-bit and truncation corruption we defend against.  Shared by
    every checksummed on-disk format (coredumps, search checkpoints). *)
let fnv1a32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

(** Append the validating [end <lines> <checksum>] footer to a payload
    (which must end in a newline). *)
let seal payload =
  Fmt.str "%send %d %d\n" payload (count_lines payload) (fnv1a32 payload)

(** Serialize a coredump to its textual format (v2: checksummed). *)
let to_string (d : Coredump.t) =
  let buf = Buffer.create 4096 in
  let ppf = Fmt.with_buffer buf in
  Fmt.pf ppf "coredump v2@\n";
  Fmt.pf ppf "steps %d@\n" d.Coredump.steps;
  Fmt.pf ppf "crash %d %a %a@\n" d.Coredump.crash.Crash.tid pp_pc
    d.Coredump.crash.Crash.pc pp_kind d.Coredump.crash.Crash.kind;
  List.iter
    (fun (a, v) -> Fmt.pf ppf "mem %d %d@\n" a v)
    (Res_mem.Memory.bindings d.Coredump.mem);
  Fmt.pf ppf "heap_next %d@\n" (Res_mem.Heap.next_addr d.Coredump.heap);
  List.iter
    (fun (b : Res_mem.Heap.block) ->
      Fmt.pf ppf "heap_block %d %d %s %a %a@\n" b.base b.size
        (match b.state with Res_mem.Heap.Live -> "live" | Res_mem.Heap.Freed -> "freed")
        pp_site b.alloc_site pp_site b.free_site)
    (Res_mem.Heap.blocks d.Coredump.heap);
  List.iter
    (fun (th : Thread.t) ->
      Fmt.pf ppf "thread %d %a@\n" th.tid pp_status th.status;
      List.iter
        (fun (fr : Frame.t) ->
          Fmt.pf ppf "frame %s %s %d %s@\n" fr.func fr.block fr.idx
            (match fr.ret_reg with Some r -> string_of_int r | None -> "none");
          List.iter
            (fun (r, v) -> Fmt.pf ppf "reg %d %d@\n" r v)
            (Frame.reg_bindings fr))
        th.frames)
    (Coredump.threads d);
  Fmt.pf ppf "lbr_depth %d@\n" d.Coredump.tracer.Tracer.lbr_depth;
  List.iter
    (fun (b : Tracer.branch) ->
      Fmt.pf ppf "branch %d %s %s %s@\n" b.br_tid b.br_func b.br_from b.br_to)
    (Tracer.branches d.Coredump.tracer);
  List.iter
    (fun (e : Tracer.log_entry) ->
      Fmt.pf ppf "log %d %S %d@\n" e.log_tid e.log_tag e.log_value)
    (Tracer.logs d.Coredump.tracer);
  Fmt.flush ppf ();
  seal (Buffer.contents buf)

exception Bad_format of string

(** Why a dump could not be loaded (or had to be salvaged). *)
type dump_error =
  | Empty_dump
  | Bad_header of string  (** first line is not a coredump header *)
  | Truncated of string  (** records or envelope footer missing *)
  | Corrupted of { expected : int; actual : int }  (** checksum mismatch *)
  | Malformed of string  (** a record failed to parse *)
  | Unreadable of string  (** the file could not be read at all *)

let pp_dump_error ppf = function
  | Empty_dump -> Fmt.string ppf "empty coredump"
  | Bad_header l -> Fmt.pf ppf "not a coredump (header %S)" l
  | Truncated what -> Fmt.pf ppf "truncated coredump: %s" what
  | Corrupted { expected; actual } ->
      Fmt.pf ppf "corrupted coredump: checksum %#x, expected %#x" actual expected
  | Malformed msg -> Fmt.pf ppf "malformed coredump: %s" msg
  | Unreadable msg -> Fmt.pf ppf "unreadable coredump: %s" msg

let dump_error_to_string e = Fmt.str "%a" pp_dump_error e

let fail fmt = Fmt.kstr (fun m -> raise (Bad_format m)) fmt

(* Token-level reader built on the MiniIR tokenizer (it already handles
   ints, identifiers, and quoted strings). *)
type reader = { mutable toks : (Res_ir.Parser.token * int) list }

let next rd =
  match rd.toks with
  | [] -> fail "unexpected end of coredump"
  | (t, _) :: rest ->
      rd.toks <- rest;
      t

let peek rd = match rd.toks with [] -> None | (t, _) :: _ -> Some t

let int_tok rd =
  match next rd with
  | Res_ir.Parser.INT n -> n
  | _ -> fail "expected integer"

let ident rd =
  match next rd with
  | Res_ir.Parser.IDENT s -> s
  | _ -> fail "expected identifier"

let string_tok rd =
  match next rd with
  | Res_ir.Parser.STRING s -> s
  | _ -> fail "expected string"

let pc_of rd =
  let func = ident rd in
  let block = ident rd in
  let idx = int_tok rd in
  Res_ir.Pc.v ~func ~block ~idx

let site_of rd =
  match peek rd with
  | Some (Res_ir.Parser.IDENT "none") ->
      ignore (next rd);
      None
  | _ -> Some (pc_of rd)

let kind_of rd : Crash.kind =
  match ident rd with
  | "seg_fault" -> Crash.Seg_fault (int_tok rd)
  | "out_of_bounds" ->
      let addr = int_tok rd in
      let base = int_tok rd in
      let size = int_tok rd in
      Crash.Out_of_bounds { addr; base; size }
  | "use_after_free" ->
      let addr = int_tok rd in
      let base = int_tok rd in
      Crash.Use_after_free { addr; base }
  | "double_free" -> Crash.Double_free (int_tok rd)
  | "invalid_free" -> Crash.Invalid_free (int_tok rd)
  | "global_overflow" ->
      let addr = int_tok rd in
      let global = ident rd in
      Crash.Global_overflow { addr; global }
  | "div_by_zero" -> Crash.Div_by_zero
  | "assert_fail" -> Crash.Assert_fail (string_tok rd)
  | "abort_called" -> Crash.Abort_called (string_tok rd)
  | "unlock_error" -> Crash.Unlock_error (int_tok rd)
  | "deadlock" ->
      let rec ints acc =
        match peek rd with
        | Some (Res_ir.Parser.INT _) -> ints (int_tok rd :: acc)
        | _ -> List.rev acc
      in
      Crash.Deadlock (ints [])
  | "alloc_error" -> Crash.Alloc_error (int_tok rd)
  | s -> fail "unknown crash kind %s" s

let status_of rd =
  match ident rd with
  | "runnable" -> Thread.Runnable
  | "blocked_on_lock" -> Thread.Blocked_on_lock (int_tok rd)
  | "blocked_on_join" -> Thread.Blocked_on_join (int_tok rd)
  | "halted" -> Thread.Halted
  | s -> fail "unknown thread status %s" s

(* --- record-level parser state (shared by strict and salvage paths) --- *)

type pstate = {
  mutable p_steps : int;
  mutable p_crash : Crash.t option;
  mutable p_mem : Res_mem.Memory.t;
  mutable p_heap_next : int;
  mutable p_heap_blocks : Res_mem.Heap.block list;
  mutable p_threads : Thread.t list;
  mutable p_cur_thread : (int * Thread.status) option;
  mutable p_cur_frames : Frame.t list;
  mutable p_cur_frame : Frame.t option;
  mutable p_lbr_depth : int;
  mutable p_branches : Tracer.branch list;
  mutable p_logs : Tracer.log_entry list;
}

let new_pstate () =
  {
    p_steps = 0;
    p_crash = None;
    p_mem = Res_mem.Memory.empty;
    p_heap_next = Res_mem.Layout.heap_base;
    p_heap_blocks = [];
    p_threads = [];
    p_cur_thread = None;
    p_cur_frames = [];
    p_cur_frame = None;
    p_lbr_depth = 16;
    p_branches = [];
    p_logs = [];
  }

let close_frame st =
  match st.p_cur_frame with
  | Some fr ->
      st.p_cur_frames <- (fr : Frame.t) :: st.p_cur_frames;
      st.p_cur_frame <- None
  | None -> ()

let close_thread st =
  close_frame st;
  match st.p_cur_thread with
  | Some (tid, status) ->
      st.p_threads <-
        { Thread.tid; frames = List.rev st.p_cur_frames; status } :: st.p_threads;
      st.p_cur_thread <- None;
      st.p_cur_frames <- []
  | None -> ()

(** Parse exactly one record (the reader is positioned at its keyword). *)
let parse_record st rd =
  match ident rd with
  | "steps" -> st.p_steps <- int_tok rd
  | "crash" ->
      let tid = int_tok rd in
      let pc = pc_of rd in
      let kind = kind_of rd in
      st.p_crash <- Some { Crash.tid; pc; kind }
  | "mem" ->
      let a = int_tok rd in
      let v = int_tok rd in
      st.p_mem <- Res_mem.Memory.write st.p_mem a v
  | "heap_next" -> st.p_heap_next <- int_tok rd
  | "heap_block" ->
      let base = int_tok rd in
      let size = int_tok rd in
      let state =
        match ident rd with
        | "live" -> Res_mem.Heap.Live
        | "freed" -> Res_mem.Heap.Freed
        | s -> fail "unknown heap state %s" s
      in
      let alloc_site = site_of rd in
      let free_site = site_of rd in
      st.p_heap_blocks <-
        { Res_mem.Heap.base; size; state; alloc_site; free_site }
        :: st.p_heap_blocks
  | "thread" ->
      close_thread st;
      let tid = int_tok rd in
      let status = status_of rd in
      st.p_cur_thread <- Some (tid, status)
  | "frame" ->
      close_frame st;
      let func = ident rd in
      let block = ident rd in
      let idx = int_tok rd in
      let ret_reg =
        match next rd with
        | Res_ir.Parser.IDENT "none" -> None
        | Res_ir.Parser.INT r -> Some r
        | _ -> fail "expected return register or none"
      in
      st.p_cur_frame <-
        Some { Frame.func; block; idx; regs = IMap.empty; ret_reg }
  | "reg" -> (
      let r = int_tok rd in
      let v = int_tok rd in
      match st.p_cur_frame with
      | Some fr -> st.p_cur_frame <- Some (Frame.write_reg fr r v)
      | None -> fail "reg outside a frame")
  | "lbr_depth" -> st.p_lbr_depth <- int_tok rd
  | "branch" ->
      let br_tid = int_tok rd in
      let br_func = ident rd in
      let br_from = ident rd in
      let br_to = ident rd in
      st.p_branches <- { Tracer.br_tid; br_func; br_from; br_to } :: st.p_branches
  | "log" ->
      let log_tid = int_tok rd in
      let log_tag = string_tok rd in
      let log_value = int_tok rd in
      st.p_logs <- { Tracer.log_tid; log_tag; log_value } :: st.p_logs
  | "end" ->
      (* envelope footer; validated separately, skipped here *)
      ignore (int_tok rd);
      ignore (int_tok rd)
  | s -> fail "unknown record %s" s

(** Assemble the final dump.  @raise Bad_format when no crash record was
    recovered (there is nothing to analyze without one). *)
let finalize st : Coredump.t =
  close_thread st;
  let crash =
    match st.p_crash with Some c -> c | None -> fail "no crash record"
  in
  let heap = Res_mem.Heap.of_blocks ~next:st.p_heap_next st.p_heap_blocks in
  let tracer =
    {
      Tracer.lbr_depth = st.p_lbr_depth;
      (* branches/logs were serialized most-recent-first and accumulated in
         reverse, so the accumulators are already oldest-first: reverse back *)
      lbr = List.rev st.p_branches;
      logs = List.rev st.p_logs;
    }
  in
  {
    Coredump.crash;
    mem = st.p_mem;
    heap;
    threads =
      List.fold_left
        (fun m (th : Thread.t) -> IMap.add th.Thread.tid th m)
        IMap.empty st.p_threads;
    tracer;
    steps = st.p_steps;
  }

(* --- envelope validation --- *)

let first_line src =
  match String.index_opt src '\n' with
  | Some i -> String.sub src 0 i
  | None -> src

(** Split off the final [end ...] footer line, returning (payload, footer). *)
let split_footer src =
  let len = String.length src in
  (* [seal] always terminates the footer line: a file without the final
     newline is one deleted byte away from what was written, and must be
     detected as truncation, not tolerated *)
  if len = 0 || src.[len - 1] <> '\n' then None
  else
    let end_ = len - 1 in
    if end_ <= 0 then None
    else
      match String.rindex_from_opt src (end_ - 1) '\n' with
      | None -> None
      | Some i ->
          Some (String.sub src 0 (i + 1), String.sub src (i + 1) (end_ - i - 1))

(** Validate a sealed envelope whose first line must satisfy [header]:
    check the [end <lines> <checksum>] footer and return the record payload
    to parse.  Shared by every sealed format ({!seal} is the writer). *)
let validate_sealed ~header src : (string, dump_error) result =
  if String.trim src = "" then Error Empty_dump
  else if not (header (first_line src)) then Error (Bad_header (first_line src))
  else
    match split_footer src with
    | Some (payload, footer) when String.length footer >= 4
                                  && String.sub footer 0 4 = "end " -> (
        match Scanf.sscanf_opt footer "end %d %d" (fun a b -> (a, b)) with
        | None -> Error (Truncated "unparsable end-of-record footer")
        | Some (lines, checksum)
          when not (String.equal footer (Printf.sprintf "end %d %d" lines checksum))
          ->
            (* sscanf ignores trailing bytes, so "end 5 123junk" would
               otherwise validate: require the footer to round-trip *)
            Error (Truncated "trailing bytes in end-of-record footer")
        | Some (lines, checksum) ->
            let actual_lines = count_lines payload in
            if actual_lines <> lines then
              Error
                (Truncated
                   (Fmt.str "%d of %d record lines present" actual_lines lines))
            else
              let actual = fnv1a32 payload in
              if actual <> checksum then
                Error (Corrupted { expected = checksum; actual })
              else Ok payload)
    | _ -> Error (Truncated "missing end-of-record footer")

(** Check header/footer/checksum; returns the record payload to parse. *)
let validate_envelope src : (string, dump_error) result =
  if String.trim src = "" then Error Empty_dump
  else
    match first_line src with
    | "coredump v1" -> Ok src (* legacy: no envelope to check *)
    | "coredump v2" -> validate_sealed ~header:(String.equal "coredump v2") src
    | l -> Error (Bad_header l)

let classify_exn = function
  | Bad_format m -> Malformed m
  | Res_ir.Parser.Parse_error { line; msg } ->
      Malformed (Fmt.str "lexical error at line %d: %s" line msg)
  | exn -> Malformed (Printexc.to_string exn)

(** Strict parse of a validated payload. *)
let parse_strict payload : (Coredump.t, dump_error) result =
  match
    let rd = { toks = Res_ir.Parser.tokenize payload } in
    (match (ident rd, ident rd) with
    | "coredump", ("v1" | "v2") -> ()
    | _ -> fail "missing coredump header");
    let st = new_pstate () in
    let rec loop () =
      match peek rd with
      | None -> ()
      | Some _ ->
          parse_record st rd;
          loop ()
    in
    loop ();
    finalize st
  with
  | dump -> Ok dump
  | exception exn -> Error (classify_exn exn)

(** Best-effort parse: go line by line, keep everything up to the first
    damaged record, and require only that a crash record survived.  This is
    the salvage path for truncated or bit-corrupted dumps — triage can
    still run on the intact prefix. *)
let parse_salvage src : Coredump.t option =
  match first_line src with
  | "coredump v1" | "coredump v2" -> (
      let st = new_pstate () in
      let lines = String.split_on_char '\n' src in
      let lines = match lines with _header :: rest -> rest | [] -> [] in
      (try
         List.iter
           (fun line ->
             if String.trim line <> "" then
               let rd = { toks = Res_ir.Parser.tokenize line } in
               match peek rd with
               | None -> ()
               | Some _ -> parse_record st rd)
           lines
       with _ -> () (* damaged record: keep the prefix parsed so far *));
      match finalize st with
      | dump -> Some dump
      | exception _ -> None)
  | _ -> None

(** What a successful load carries: the dump, plus the damage that was
    worked around when the dump had to be salvaged. *)
type loaded = { dump : Coredump.t; salvaged : dump_error option }

(** Parse a coredump, classifying damage instead of raising.  With
    [~salvage:true], a truncated or corrupted dump is recovered best-effort
    (the error that was overridden is reported in [salvaged]). *)
let of_string_result ?(salvage = false) src : (loaded, dump_error) result =
  let salvage_or err =
    if not salvage then Error err
    else
      match parse_salvage src with
      | Some dump -> Ok { dump; salvaged = Some err }
      | None -> Error err
  in
  match validate_envelope src with
  | Error err -> salvage_or err
  | Ok payload -> (
      match parse_strict payload with
      | Ok dump -> Ok { dump; salvaged = None }
      | Error err -> salvage_or err)

(** Parse a coredump from its textual format.
    @raise Bad_format on malformed input. *)
let of_string src : Coredump.t =
  match of_string_result src with
  | Ok { dump; _ } -> dump
  | Error err -> raise (Bad_format (dump_error_to_string err))

(* Temp names carry the writer's PID plus a process-local counter so
   concurrent workers (forked processes or domains) writing into one
   directory never open the same journal — and a crashed writer's leftover
   can never be renamed over a *different* destination by a concurrent
   writer's rename, because no two writers ever share a temp name. *)
let tmp_seq = Atomic.make 0

(** The journal name the next atomic write to [path] would use: unique per
    (process, call).  Exposed so fault-injection can place a deliberately
    torn journal exactly where a killed writer would have left one. *)
let fresh_tmp_path path =
  Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

(** All journal siblings of [path] on disk, sorted: files named
    [path.<pid>.<n>.tmp] (current writers) plus the legacy [path.tmp]
    (pre-PID format).  These are the only intermediate states the atomic
    writer can leave behind. *)
let journal_siblings path =
  let dir = Filename.dirname path and base = Filename.basename path in
  let prefix = base ^ "." in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun e ->
             String.length e > String.length prefix
             && String.equal (String.sub e 0 (String.length prefix)) prefix
             && Filename.check_suffix e ".tmp")
      |> List.sort compare
      |> List.map (Filename.concat dir)

(** Write [contents] to [path] atomically: write a fresh
    [path.<pid>.<n>.tmp] journal in full, then [Sys.rename] over the
    destination.  A crash mid-write leaves the previous file (if any)
    intact and at worst a stale journal — never a torn destination that a
    loader then has to salvage.  Journal names are unique per process and
    call ({!fresh_tmp_path}), so concurrent writers in one directory never
    collide.  Shared by every on-disk artifact (coredumps, search
    checkpoints, parallel work-unit checkpoints). *)
(* Flush the directory entry for a just-renamed file to stable storage.
   Without this the rename is durable only against process death: after a
   power loss the directory block may still hold the old entry.  Some
   filesystems refuse fsync on a directory fd (EINVAL/EBADF/EACCES) — in
   that case process-death atomicity is the best available and we keep
   going rather than fail a write that already succeeded. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write_file_atomic path contents =
  let tmp = fresh_tmp_path path in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc contents;
     flush oc;
     (* Data must be on stable storage before the rename publishes it:
        rename-before-fsync can surface an empty/torn file after power
        loss even though the rename itself was atomic. *)
     try Unix.fsync fd with Unix.Unix_error _ -> ()
   with exn ->
     close_out_noerr oc;
     raise exn);
  close_out oc;
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

(** Write a coredump to [path] (atomically, via temp file + rename). *)
let save path d = write_file_atomic path (to_string d)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Unreadable msg)
  | ic ->
      let finally () = close_in_noerr ic in
      Fun.protect ~finally (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception End_of_file -> Error (Unreadable "file shrank while reading")
          | exception Sys_error msg -> Error (Unreadable msg))

(** Load a coredump from [path], classifying damage instead of raising. *)
let load_result ?salvage path : (loaded, dump_error) result =
  match read_file path with
  | Error err -> Error err
  | Ok s -> of_string_result ?salvage s

(** Load a coredump from [path].
    @raise Bad_format on any failure (including unreadable files). *)
let load path =
  match load_result path with
  | Ok { dump; _ } -> dump
  | Error err -> raise (Bad_format (dump_error_to_string err))
