(** Textual (de)serialization of coredumps, hardened for hostile inputs.

    Production systems ship coredumps as files; this module gives MiniVM
    dumps a stable, human-readable on-disk format so the CLI can separate
    "run and capture" from "analyze".  [of_string (to_string d)]
    round-trips exactly (property-tested).

    v2 of the format wraps the records in a validating envelope (version
    header + [end <lines> <checksum>] footer, FNV-1a over the payload), so
    truncation and bit corruption are detected and classified into a
    structured {!dump_error} rather than surfacing as a stray exception.
    v1 dumps (no footer) remain readable. *)

exception Bad_format of string

(** Why a dump could not be loaded (or had to be salvaged). *)
type dump_error =
  | Empty_dump
  | Bad_header of string  (** first line is not a coredump header *)
  | Truncated of string  (** records or envelope footer missing *)
  | Corrupted of { expected : int; actual : int }  (** checksum mismatch *)
  | Malformed of string  (** a record failed to parse *)
  | Unreadable of string  (** the file could not be read at all *)

val pp_dump_error : Format.formatter -> dump_error -> unit
val dump_error_to_string : dump_error -> string

(** What a successful load carries: the dump, plus the damage that was
    worked around when the dump had to be salvaged. *)
type loaded = { dump : Coredump.t; salvaged : dump_error option }

(** Serialize a coredump to its textual format (v2, checksummed). *)
val to_string : Coredump.t -> string

(** Parse a coredump, classifying damage instead of raising.  With
    [~salvage:true], a truncated or bit-corrupted dump is recovered
    best-effort from its intact prefix (a crash record must survive); the
    damage that was overridden is reported in [salvaged]. *)
val of_string_result : ?salvage:bool -> string -> (loaded, dump_error) result

(** Parse a coredump from its textual format.
    @raise Bad_format on malformed input. *)
val of_string : string -> Coredump.t

(** Write a coredump to a file (atomically: temp file + rename, so a crash
    mid-write never leaves a torn dump at the destination). *)
val save : string -> Coredump.t -> unit

(** {2 Shared on-disk-format helpers}

    Other sealed textual formats (the search checkpoints of
    {!Res_persist.Checkpoint}) reuse the coredump format's building blocks:
    the FNV-1a envelope, the atomic writer, and the token-level record
    readers/printers. *)

(** 32-bit FNV-1a checksum of a string. *)
val fnv1a32 : string -> int

(** Newlines in a string (the envelope's line count). *)
val count_lines : string -> int

(** Append the validating [end <lines> <checksum>] footer to a payload
    (which must end in a newline). *)
val seal : string -> string

(** Validate a sealed envelope whose first line must satisfy [header];
    returns the record payload (footer stripped). *)
val validate_sealed : header:(string -> bool) -> string -> (string, dump_error) result

(** [write_file_atomic path contents] writes a fresh [path.<pid>.<n>.tmp]
    journal in full, fsyncs it, renames it over [path], then fsyncs the
    parent directory — durable against power loss, not just process
    death.  A crash mid-write leaves at worst a stale journal, never a
    torn destination; journal names are unique per process and call, so
    concurrent workers writing into one directory never collide or
    cross-promote each other's journals. *)
val write_file_atomic : string -> string -> unit

(** Best-effort fsync of a directory (publishes renames/creates within it
    across power loss); silently a no-op where directory fsync is
    unsupported. *)
val fsync_dir : string -> unit

(** The journal name the next atomic write to [path] would use — for
    fault-injection that plants a torn journal where a killed writer
    would have left one. *)
val fresh_tmp_path : string -> string

(** All journal siblings of [path] on disk, sorted: [path.<pid>.<n>.tmp]
    files plus the legacy [path.tmp].  What {!Res_persist.Checkpoint}'s
    journal recovery scans. *)
val journal_siblings : string -> string list

(** Read a whole file, classifying failures as {!Unreadable}. *)
val read_file : string -> (string, dump_error) result

(** Token-level reader over {!Res_ir.Parser.tokenize} output. *)
type reader = { mutable toks : (Res_ir.Parser.token * int) list }

(** @raise Bad_format at end of input. *)
val next : reader -> Res_ir.Parser.token

val peek : reader -> Res_ir.Parser.token option

(** Typed token readers. @raise Bad_format on the wrong token kind. *)
val int_tok : reader -> int

val ident : reader -> string
val string_tok : reader -> string

(** Record-field (de)serializers shared with the checkpoint format. *)
val pc_of : reader -> Res_ir.Pc.t

val site_of : reader -> Res_ir.Pc.t option
val kind_of : reader -> Crash.kind
val status_of : reader -> Thread.status
val pp_pc : Format.formatter -> Res_ir.Pc.t -> unit
val pp_kind : Format.formatter -> Crash.kind -> unit
val pp_status : Format.formatter -> Thread.status -> unit
val pp_site : Format.formatter -> Res_ir.Pc.t option -> unit

(** Raise {!Bad_format} with a formatted message. *)
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Load a coredump from a file, classifying damage instead of raising. *)
val load_result : ?salvage:bool -> string -> (loaded, dump_error) result

(** Load a coredump from a file.
    @raise Bad_format on any failure (including unreadable files). *)
val load : string -> Coredump.t
