(** Textual (de)serialization of coredumps, hardened for hostile inputs.

    Production systems ship coredumps as files; this module gives MiniVM
    dumps a stable, human-readable on-disk format so the CLI can separate
    "run and capture" from "analyze".  [of_string (to_string d)]
    round-trips exactly (property-tested).

    v2 of the format wraps the records in a validating envelope (version
    header + [end <lines> <checksum>] footer, FNV-1a over the payload), so
    truncation and bit corruption are detected and classified into a
    structured {!dump_error} rather than surfacing as a stray exception.
    v1 dumps (no footer) remain readable. *)

exception Bad_format of string

(** Why a dump could not be loaded (or had to be salvaged). *)
type dump_error =
  | Empty_dump
  | Bad_header of string  (** first line is not a coredump header *)
  | Truncated of string  (** records or envelope footer missing *)
  | Corrupted of { expected : int; actual : int }  (** checksum mismatch *)
  | Malformed of string  (** a record failed to parse *)
  | Unreadable of string  (** the file could not be read at all *)

val pp_dump_error : Format.formatter -> dump_error -> unit
val dump_error_to_string : dump_error -> string

(** What a successful load carries: the dump, plus the damage that was
    worked around when the dump had to be salvaged. *)
type loaded = { dump : Coredump.t; salvaged : dump_error option }

(** Serialize a coredump to its textual format (v2, checksummed). *)
val to_string : Coredump.t -> string

(** Parse a coredump, classifying damage instead of raising.  With
    [~salvage:true], a truncated or bit-corrupted dump is recovered
    best-effort from its intact prefix (a crash record must survive); the
    damage that was overridden is reported in [salvaged]. *)
val of_string_result : ?salvage:bool -> string -> (loaded, dump_error) result

(** Parse a coredump from its textual format.
    @raise Bad_format on malformed input. *)
val of_string : string -> Coredump.t

(** Write a coredump to a file. *)
val save : string -> Coredump.t -> unit

(** Load a coredump from a file, classifying damage instead of raising. *)
val load_result : ?salvage:bool -> string -> (loaded, dump_error) result

(** Load a coredump from a file.
    @raise Bad_format on any failure (including unreadable files). *)
val load : string -> Coredump.t
