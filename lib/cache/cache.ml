(** Crash-only, content-addressed triage result cache.

    The paper's deployment setting is a WER-style corpus: millions of
    crash reports, a handful of root causes.  Re-deriving the same
    root-cause report for the same (program, dump, analysis budget)
    triple is pure waste, so every triage layer — [res triage] batches,
    the serve daemon, [res client submit], the cluster coordinator —
    consults this cache first and recomputes only unseen work.

    The design is crash-only, like the spool and the cluster journal:

    - {b The directory is the index.}  One sealed file per entry, named
      by the entry's content key ([<16 hex>.entry]); there is no
      manifest to corrupt or rebuild.  A fresh process scans nothing at
      boot beyond journal recovery — lookups are a single [read].
    - {b Keys are content hashes.}  64-bit FNV-1a over the
      length-prefixed (program bytes, dump bytes, analysis-config
      string) — see {!Res_core.Sealing.content_key}.  Anything that can
      change the result is in the key, so a stale entry is impossible;
      the 32-bit envelope hash is not used for keys because its
      birthday bound is too tight for 100k-dump corpora.
    - {b Entries are sealed.}  The body travels inside the standard
      [rescache v1] + FNV-1a-footer envelope, written with the atomic
      journal-then-rename writer via the injectable I/O shim.  A torn
      or bit-flipped entry is {e detected}, never parsed.
    - {b Damage degrades to recompute.}  A entry that fails its seal is
      quarantined (moved aside to [quarantine/], or deleted if even
      that fails) and reported as a miss; the caller recomputes and
      re-stores.  A cache directory full of garbage therefore behaves
      exactly like a cold cache — same results, just slower.
    - {b Stores are best-effort.}  A store that hits a full or failing
      disk (ENOSPC, EIO, failed fsync) counts a [store_failure] and is
      forgotten; the result it was caching is already in the caller's
      hands, so nothing is lost but warmth. *)

module Sealing = Res_core.Sealing
module Ioshim = Res_core.Ioshim

let header = "rescache v1"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable store_failures : int;
  mutable quarantined : int;
}

type t = { dir : string; stats : stats }

let stats t = t.stats

let pp_stats ppf s =
  Fmt.pf ppf "hits=%d misses=%d stores=%d store_failures=%d quarantined=%d"
    s.hits s.misses s.stores s.store_failures s.quarantined

(** Derive an entry key.  [config] must render {e every} knob that can
    change the cached result (budgets, engine options, a format-version
    tag for the body codec) — the key is the only staleness defense. *)
let key ~prog ~dump ~config = Sealing.content_key [ prog; dump; config ]

let entry_path t k = Filename.concat t.dir (k ^ ".entry")
let quarantine_dir t = Filename.concat t.dir "quarantine"

(** Open a cache directory, creating it (durably) if needed and
    recovering atomic-writer journals: a sealed [.tmp] left by a killed
    writer is promoted, a torn one deleted.  Never raises — if the
    directory cannot even be created, the cache simply never hits and
    never warms, which is the contract everywhere: cache trouble means
    recompute, not failure. *)
let openr dir =
  (try Ioshim.mkdir_durable dir with Unix.Unix_error _ | Sys_error _ -> ());
  (try
     Res_persist.Checkpoint.recover_dir dir ~valid_for:(fun _ ->
         Sealing.valid ~header)
   with Unix.Unix_error _ | Sys_error _ -> ());
  {
    dir;
    stats =
      { hits = 0; misses = 0; stores = 0; store_failures = 0; quarantined = 0 };
  }

(** How many intact-looking entries are on disk (the persistent index is
    the directory itself; this is what benches and tests report). *)
let entry_count dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun acc e -> if Filename.check_suffix e ".entry" then acc + 1 else acc)
        0 entries

(* A damaged entry must never be served again: move it aside for the
   post-mortem, or delete it if the rename itself fails.  Either way the
   next lookup of this key is an honest miss. *)
let quarantine t path =
  t.stats.quarantined <- t.stats.quarantined + 1;
  (try Ioshim.mkdir_durable (quarantine_dir t)
   with Unix.Unix_error _ | Sys_error _ -> ());
  let dest = Filename.concat (quarantine_dir t) (Filename.basename path) in
  try Sys.rename path dest
  with Sys_error _ | Unix.Unix_error _ -> (
    try Sys.remove path with Sys_error _ | Unix.Unix_error _ -> ())

let body_of_payload payload =
  match String.index_opt payload '\n' with
  | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
  | None -> ""

(** Look up a key.  [Some body] only when the entry exists {e and} its
    seal validates; an unreadable or damaged entry is quarantined and
    reported as a miss.  Never raises. *)
let find t k =
  let path = entry_path t k in
  if not (Sys.file_exists path) then begin
    t.stats.misses <- t.stats.misses + 1;
    None
  end
  else
    let damaged () =
      quarantine t path;
      t.stats.misses <- t.stats.misses + 1;
      None
    in
    match Ioshim.read_file path with
    | Error _ -> damaged ()
    | exception (Unix.Unix_error _ | Sys_error _) -> damaged ()
    | Ok src -> (
        match Sealing.validate ~header src with
        | Error _ -> damaged ()
        | Ok payload ->
            t.stats.hits <- t.stats.hits + 1;
            Some (body_of_payload payload))

(** Store a body under a key: sealed, atomic, durable.  Best-effort — a
    disk fault counts a [store_failure] and the entry simply stays cold.
    Never raises. *)
let store t k body =
  let body =
    if body = "" || body.[String.length body - 1] <> '\n' then body ^ "\n"
    else body
  in
  let sealed = Sealing.seal (header ^ "\n" ^ body) in
  match Ioshim.write_file_atomic (entry_path t k) sealed with
  | () -> t.stats.stores <- t.stats.stores + 1
  | exception (Unix.Unix_error _ | Sys_error _) ->
      t.stats.store_failures <- t.stats.store_failures + 1

(* --- triage row codec ----------------------------------------------- *)

(** The per-dump triage verdict the batch layers cache: exactly the
    fields that reproduce a TSV row (and the stats columns) without
    re-running the analysis. *)
type row = {
  c_outcome : string;
  c_timeout : bool;
  c_bucket : string;
  c_cause : string;
  c_nodes : int;
  c_pruned : int;
  c_queries : int;
}

(* Bump the trailing tag if this codec ever changes shape: it is folded
   into every key, so old entries become honest misses, not parse
   errors. *)
let row_config ~wall ~fuel ~engine =
  Fmt.str "%s wall=%a fuel=%a rowv1" engine
    Fmt.(option ~none:(any "none") float)
    wall
    Fmt.(option ~none:(any "none") int)
    fuel

let encode_row r =
  Fmt.str "verdict %S %d %S %S %d %d %d" r.c_outcome
    (if r.c_timeout then 1 else 0)
    r.c_bucket r.c_cause r.c_nodes r.c_pruned r.c_queries

(** Decode a cached row body; [None] (an honest miss) on any mismatch —
    a sealed-but-unparsable body means a codec change, never a crash. *)
let decode_row body =
  let module Io = Res_vm.Coredump_io in
  match
    let rd = { Io.toks = Res_ir.Parser.tokenize body } in
    (match Io.ident rd with
    | "verdict" -> ()
    | _ -> Io.fail "expected verdict");
    let c_outcome = Io.string_tok rd in
    let c_timeout = Io.int_tok rd <> 0 in
    let c_bucket = Io.string_tok rd in
    let c_cause = Io.string_tok rd in
    let c_nodes = Io.int_tok rd in
    let c_pruned = Io.int_tok rd in
    let c_queries = Io.int_tok rd in
    (match rd.Io.toks with
    | [] -> ()
    | _ -> Io.fail "trailing bytes after cached verdict");
    { c_outcome; c_timeout; c_bucket; c_cause; c_nodes; c_pruned; c_queries }
  with
  | r -> Some r
  | exception _ -> None
