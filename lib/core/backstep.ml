(** One backward step of reverse execution synthesis (paper §2.4).

    Given a symbolic snapshot [Spost] and a candidate "previous segment"
    (one root-function block of one thread, calls inlined), this module:

    + builds the lazily-symbolic pre-state (havocked registers, lazy
      pre-memory symbols),
    + forward-executes the candidate block symbolically ({!Res_symex}),
    + emits the compatibility constraints [S' ⊇ Spost] — every journaled
      location's final value must equal the snapshot's, the terminator must
      branch to the already-synthesized successor, and heap/thread
      structure must line up,
    + checks satisfiability, and on success returns the new snapshot
      [Spre] one segment earlier in time. *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
module SSet = Set.Make (String)
open Res_solver

type ctx = {
  prog : Res_ir.Prog.t;
  layout : Res_mem.Layout.t;
  cfg : Res_ir.Cfg.t;
  sym_config : Res_symex.Symexec.config;
  solver_config : Solver.config;
  relaxed_mem : ISet.t;
      (** memory cells exempted from write-history consistency — the
          hardware-error hypothesis of paper §3.2: "this word was corrupted
          by hardware, so the software history need not explain its value" *)
  relaxed_regs : (int * Res_ir.Instr.reg) list;
      (** (tid, reg) pairs exempted likewise (CPU miscompute hypothesis) *)
  use_addr_pool : bool;
      (** resolve unconstrained havocked pointers against plausible mapped
          addresses (suffix-touched first); disabling it is the A1 ablation *)
  statics : Res_static.Summary.t Lazy.t;
      (** whole-program mod/ref summaries, forced on first static prune *)
  invert_memo : (string * string, Res_static.Invert.verdict) Hashtbl.t;
      (** memoized invertibility verdicts per (func, block) — the
          classifier is purely static, so one verdict serves every
          segment over the same block *)
}

let make_ctx ?(sym_config = Res_symex.Symexec.default_config)
    ?(solver_config = Solver.default_config) ?(relaxed_mem = ISet.empty)
    ?(relaxed_regs = []) ?(use_addr_pool = true) prog =
  {
    prog;
    layout = Res_mem.Layout.of_prog prog;
    cfg = Res_ir.Cfg.of_prog prog;
    sym_config;
    solver_config;
    relaxed_mem;
    relaxed_regs;
    use_addr_pool;
    statics = lazy (Res_static.Summary.of_prog prog);
    invert_memo = Hashtbl.create 64;
  }

(** Thread a cooperative interrupt into every engine the context drives:
    the solver, the symbolic executor, and the executor's inner solver.
    How {!Budget} deadlines reach mid-flight solves and block executions. *)
let with_interrupt ctx interrupt =
  {
    ctx with
    solver_config = { ctx.solver_config with Solver.interrupt };
    sym_config =
      {
        ctx.sym_config with
        Res_symex.Symexec.interrupt;
        solver = { ctx.sym_config.Res_symex.Symexec.solver with Solver.interrupt };
      };
  }

(** Candidate backward moves for one thread. *)
type kind =
  | K_partial of Res_vm.Crash.kind option
      (** consume the thread's in-progress segment, ending at its coredump
          stack position (the crash segment, or a blocked thread's last
          partial segment) *)
  | K_full of { block : Res_ir.Instr.label }
      (** the thread ran [block] to completion, branching to its current
          snapshot position *)
  | K_final of { func : string; block : Res_ir.Instr.label }
      (** a halted thread's terminal segment: [block] of [func] ending in
          [ret]/[halt] *)

let pp_kind ppf = function
  | K_partial _ -> Fmt.string ppf "partial"
  | K_full { block } -> Fmt.pf ppf "full %s" block
  | K_final { func; block } -> Fmt.pf ppf "final %s:%s" func block

(** A successfully applied backward step. *)
type applied = {
  ap_snapshot : Snapshot.t;  (** the new, one-segment-earlier snapshot *)
  ap_segment : Suffix.segment;
  ap_logs : (string * Expr.t) list;
      (** [log] emissions of the segment, oldest first — matched against
          the coredump's error log when breadcrumb pruning is on *)
}

type step_result = {
  applied : applied list;
  rejects : string list;
  reversed : int;
      (** 1 when the concrete reverse-execution fast path decided this
          move (recovered a pre-state or proved it infeasible) without
          symbolic execution or a solver query *)
  slice_skipped : int;
      (** pure definitions outside the block's backward slice the fast
          path never touched *)
}

let no_result msg =
  { applied = []; rejects = [ msg ]; reversed = 0; slice_skipped = 0 }

(* --- static block summaries: alloc/spawn counts and callee regions --- *)

exception Dynamic of string

(** Functions transitively callable from [fname] (spawns excluded: they run
    in other threads). *)
let callee_closure prog fname =
  let rec go visited fname =
    if SSet.mem fname visited then visited
    else
      let visited = SSet.add fname visited in
      let f = Res_ir.Prog.func prog fname in
      List.fold_left
        (fun visited (b : Res_ir.Block.t) ->
          Array.fold_left
            (fun visited i ->
              match i with
              | Res_ir.Instr.Call (_, callee, _) -> go visited callee
              | _ -> visited)
            visited b.instrs)
        visited f.blocks
  in
  go SSet.empty fname

(** Statically-exact sequences of allocations and spawned functions a block
    performs, calls included.
    @raise Dynamic when a multi-block or recursive callee performs
    allocations or spawns (their count would be path-dependent). *)
let static_block_effects prog ~func ~block_label =
  let rec count_func visited fname =
    if SSet.mem fname visited then
      raise (Dynamic (Fmt.str "recursive call to %s" fname));
    let f = Res_ir.Prog.func prog fname in
    match f.Res_ir.Func.blocks with
    | [ b ] -> count_block (SSet.add fname visited) b
    | blocks ->
        let effects =
          List.concat_map (fun b -> count_block (SSet.add fname visited) b) blocks
        in
        if effects <> [] then
          raise (Dynamic (Fmt.str "multi-block callee %s allocates or spawns" fname))
        else []
  and count_block visited (b : Res_ir.Block.t) =
    Array.to_list b.instrs
    |> List.concat_map (fun i ->
           match i with
           | Res_ir.Instr.Alloc _ -> [ `Alloc ]
           | Res_ir.Instr.Spawn (_, callee, _) -> [ `Spawn callee ]
           | Res_ir.Instr.Call (_, callee, _) -> count_func visited callee
           | _ -> [])
  in
  let b = Res_ir.Prog.block prog ~func ~label:block_label in
  count_block (SSet.singleton "") b

(* --- heap surgery --- *)

(** Functions transitively callable from the instructions of one block. *)
let block_callee_closure prog ~func ~block_label =
  let b = Res_ir.Prog.block prog ~func ~label:block_label in
  Array.fold_left
    (fun acc i ->
      match i with
      | Res_ir.Instr.Call (_, callee, _) ->
          SSet.union acc (callee_closure prog callee)
      | _ -> acc)
    SSet.empty b.Res_ir.Block.instrs

(** Build the pre-block heap: re-live blocks this segment freed, un-allocate
    the blocks it allocated.  Returns [(pre_heap, alloc_plan)]. *)
let heap_surgery ctx (post_heap : Res_mem.Heap.t) ~func ~block_label ~n_allocs =
  let region_funcs = block_callee_closure ctx.prog ~func ~block_label in
  let freed_here (b : Res_mem.Heap.block) =
    b.Res_mem.Heap.state = Res_mem.Heap.Freed
    &&
    match b.Res_mem.Heap.free_site with
    | Some pc ->
        (String.equal pc.Res_ir.Pc.func func
        && String.equal pc.Res_ir.Pc.block block_label)
        || SSet.mem pc.Res_ir.Pc.func region_funcs
    | None -> false
  in
  let heap =
    List.fold_left
      (fun h (b : Res_mem.Heap.block) ->
        if freed_here b then Res_mem.Heap.unfree h b.Res_mem.Heap.base else h)
      post_heap
      (Res_mem.Heap.blocks post_heap)
  in
  let all = Res_mem.Heap.alloc_order heap in
  if List.length all < n_allocs then Error "fewer recorded allocations than the block performs"
  else
    let tail =
      (* the last [n_allocs] allocations, in allocation order *)
      let n = List.length all in
      List.filteri (fun i _ -> i >= n - n_allocs) all
    in
    let plan =
      List.map (fun (b : Res_mem.Heap.block) -> (b.base, b.size)) tail
    in
    let heap =
      List.fold_left
        (fun h (b : Res_mem.Heap.block) -> Res_mem.Heap.unalloc h b.base)
        heap (List.rev tail)
    in
    Ok (heap, plan)

(* --- frames and constraints --- *)

let root_frame (ts : Snapshot.thread_state) =
  match List.rev ts.Snapshot.ts_frames with
  | root :: _ -> Some root
  | [] -> None

let frame_reg (fr : Res_symex.Symframe.t) r =
  match Res_symex.Symframe.read_opt fr r with
  | Some e -> e
  | None -> Expr.zero

(** Seed the pre-frame: registers the block never defines keep their
    post-state value; defined registers are left unset so reads mint fresh
    pre symbols (the paper's havoc). *)
let seed_frame ctx ~post_root ~func ~block_label =
  let f = Res_ir.Prog.func ctx.prog func in
  let block = Res_ir.Prog.block ctx.prog ~func ~label:block_label in
  let defined = Res_ir.Block.defined_regs block in
  let seed =
    List.fold_left
      (fun m r ->
        if List.mem r defined then m
        else
          match post_root with
          | Some fr -> IMap.add r (frame_reg fr r) m
          | None -> m
        (* halted thread: no post frame, nothing known *))
      IMap.empty
      (Res_ir.Func.all_regs f)
  in
  Res_symex.Symframe.pre_frame ~func ~block:block_label ~seed

(** Equality constraints between the execution's final bottom-frame
    registers and the snapshot's root frame. *)
let reg_constraints ctx ~tid ~func (out_bottom : Res_symex.Symframe.t) ~post_root =
  match post_root with
  | None -> []  (* halted thread: the coredump records no registers *)
  | Some post ->
      let f = Res_ir.Prog.func ctx.prog func in
      List.filter_map
        (fun r ->
          if List.mem (tid, r) ctx.relaxed_regs then None
          else
            match Res_symex.Symframe.read_opt out_bottom r with
            | None -> None (* untouched: pre = post, carried in Spre *)
            | Some out_v -> (
                match Simplify.norm (Expr.eq out_v (frame_reg post r)) with
                | Expr.Const _ as c ->
                    if Expr.equal c Expr.one then None else Some Expr.zero
                | e -> Some e))
        (Res_ir.Func.all_regs f)

(** For partial (in-progress) segments: the inlined callee frames at the
    stop point must match the coredump's frames register-for-register. *)
let callee_frame_constraints (out_frames : Res_symex.Symframe.t list)
    (post_frames : Res_symex.Symframe.t list) =
  (* both innermost-first; compare all but the last (root) *)
  let drop_root l = match List.rev l with _ :: rest -> List.rev rest | [] -> [] in
  let outs = drop_root out_frames and posts = drop_root post_frames in
  if List.length outs <> List.length posts then None
  else
    let constraint_of (o : Res_symex.Symframe.t) (p : Res_symex.Symframe.t) =
      if o.Res_symex.Symframe.ret_reg <> p.Res_symex.Symframe.ret_reg then None
      else
        let regs =
          List.sort_uniq compare
            (List.map fst (Res_symex.Symframe.reg_bindings o)
            @ List.map fst (Res_symex.Symframe.reg_bindings p))
        in
        Some
          (List.filter_map
             (fun r ->
               match Simplify.norm (Expr.eq (frame_reg o r) (frame_reg p r)) with
               | Expr.Const _ as c ->
                   if Expr.equal c Expr.one then None else Some Expr.zero
               | e -> Some e)
             regs)
    in
    let rec zip acc = function
      | [], [] -> Some acc
      | o :: os, p :: ps -> (
          match constraint_of o p with
          | Some cs -> zip (cs @ acc) (os, ps)
          | None -> None)
      | _ -> None
    in
    zip [] (outs, posts)

(** Memory compatibility: every location this execution wrote must end with
    the snapshot's value; every pre symbol minted for a location the
    execution did not overwrite equals the snapshot's value. *)
let mem_constraints ctx snapshot (out : Res_symex.Symexec.outcome) =
  let written = Res_symex.Symmem.final_writes out.Res_symex.Symexec.mem in
  let write_cs =
    List.filter_map
      (fun (a, e) ->
        if ISet.mem a ctx.relaxed_mem then None
        else
          match Simplify.norm (Expr.eq e (Snapshot.read_mem snapshot a)) with
          | Expr.Const _ as c -> if Expr.equal c Expr.one then None else Some Expr.zero
          | c -> Some c)
      written
  in
  let pre_cs =
    List.filter_map
      (fun (a, s) ->
        if
          Res_symex.Symmem.was_written out.Res_symex.Symexec.mem a
          || ISet.mem a ctx.relaxed_mem
        then None
        else
          match
            Simplify.norm (Expr.eq (Expr.Sym s) (Snapshot.read_mem snapshot a))
          with
          | Expr.Const _ as c -> if Expr.equal c Expr.one then None else Some Expr.zero
          | c -> Some c)
      (Res_symex.Symmem.pre_syms out.Res_symex.Symexec.mem)
  in
  write_cs @ pre_cs

(** Spawn compatibility: each spawn in the segment must correspond to a
    snapshot thread sitting unborn-eligible at the entry of the spawned
    function, and the spawn arguments must equal that thread's parameter
    registers.  Returns the constraints and the tids to remove from the
    pre-snapshot. *)
let spawn_constraints ctx snapshot (out : Res_symex.Symexec.outcome) =
  let check (tid, fname, args) =
    match IMap.find_opt tid snapshot.Snapshot.threads with
    | None -> Error (Fmt.str "spawned thread %d not in snapshot" tid)
    | Some ts -> (
        match ts.Snapshot.ts_frames with
        | [ fr ]
          when String.equal fr.Res_symex.Symframe.func fname
               && fr.Res_symex.Symframe.idx = 0
               && String.equal fr.Res_symex.Symframe.block
                    (Res_ir.Prog.func ctx.prog fname).Res_ir.Func.entry
               && ts.Snapshot.ts_status = Res_vm.Thread.Runnable ->
            let params = (Res_ir.Prog.func ctx.prog fname).Res_ir.Func.params in
            if List.length params <> List.length args then
              Error "spawn arity mismatch"
            else
              Ok
                ( List.filter_map
                    (fun (p, arg) ->
                      match Simplify.norm (Expr.eq arg (frame_reg fr p)) with
                      | Expr.Const _ as c ->
                          if Expr.equal c Expr.one then None else Some Expr.zero
                      | e -> Some e)
                    (List.combine params args),
                  tid )
        | _ -> Error (Fmt.str "thread %d is not at its entry point" tid))
  in
  let rec go acc_cs acc_tids = function
    | [] -> Ok (acc_cs, acc_tids)
    | s :: rest -> (
        match check s with
        | Ok (cs, tid) -> go (cs @ acc_cs) (tid :: acc_tids) rest
        | Error e -> Error e)
  in
  go [] [] out.Res_symex.Symexec.spawns

(* --- the step itself --- *)

(** Run the executor with the eager-read fixpoint: a location read before
    being overwritten later in the same block must not trust the post-state
    value, so such locations are re-run havocked until stable. *)
let run_with_havoc ctx rq =
  let rec go havoc iters =
    let outs, rejects =
      Res_symex.Symexec.run ~config:ctx.sym_config
        { rq with Res_symex.Symexec.havoc_reads = havoc }
    in
    let need =
      List.fold_left
        (fun acc (o : Res_symex.Symexec.outcome) ->
          let written =
            ISet.of_list (Res_symex.Symmem.written_addrs o.Res_symex.Symexec.mem)
          in
          ISet.union acc (ISet.inter o.Res_symex.Symexec.read_before_write written))
        ISet.empty outs
    in
    if ISet.subset need havoc || iters <= 0 then (outs, rejects)
    else go (ISet.union havoc need) (iters - 1)
  in
  go ISet.empty 4

(** Fresh symbol for the unknown pre value of a defined register never read
    before being written. *)
let fresh_pre_reg r = Expr.fresh (Fmt.str "pre:r%d!" r)

(** Construct the pre-snapshot register file for the stepped thread. *)
let pre_regs_of ctx ~func ~block_label ~post_root
    (out : Res_symex.Symexec.outcome) =
  let f = Res_ir.Prog.func ctx.prog func in
  let block = Res_ir.Prog.block ctx.prog ~func ~label:block_label in
  let defined = Res_ir.Block.defined_regs block in
  let out_bottom = List.rev out.Res_symex.Symexec.frames |> List.hd in
  (* The pre value of a register the block does not modify: the post value
     when known, else the pre symbol the execution minted on read, else a
     fresh unconstrained symbol (halted threads record no registers). *)
  let carried r =
    match post_root with
    | Some fr -> frame_reg fr r
    | None -> (
        match List.assoc_opt r out.Res_symex.Symexec.pre_regs with
        | Some s -> Expr.Sym s
        | None -> fresh_pre_reg r)
  in
  List.fold_left
    (fun m r ->
      let v =
        if not (List.mem r defined) then carried r
        else
          match Res_symex.Symframe.read_opt out_bottom r with
          | None ->
              (* defined but never executed (partial segment): unchanged *)
              carried r
          | Some _ -> (
              match List.assoc_opt r out.Res_symex.Symexec.pre_regs with
              | Some s -> Expr.Sym s
              | None -> fresh_pre_reg r)
      in
      IMap.add r v m)
    IMap.empty (Res_ir.Func.all_regs f)

(** Pre-snapshot memory overrides for the stepped segment. *)
let pre_mem_over snapshot (out : Res_symex.Symexec.outcome) =
  let pre = Res_symex.Symmem.pre_syms out.Res_symex.Symexec.mem in
  List.fold_left
    (fun snap a ->
      let v =
        match List.assoc_opt a pre with
        | Some s -> Expr.Sym s
        | None -> Expr.fresh (Fmt.str "pre:mem[0x%x]!" a)
      in
      Snapshot.write_mem_over snap a v)
    snapshot
    (Res_symex.Symmem.written_addrs out.Res_symex.Symexec.mem)

(** Reconstruct the pre-heap an outcome started from: apply its journal in
    reverse to the post heap (un-free what it freed, un-allocate what it
    allocated, newest allocation first). *)
let pre_heap_of snapshot (out : Res_symex.Symexec.outcome) =
  let h =
    List.fold_left
      (fun h base -> Res_mem.Heap.unfree h base)
      snapshot.Snapshot.heap out.Res_symex.Symexec.frees
  in
  List.fold_left
    (fun h (base, _) -> Res_mem.Heap.unalloc h base)
    h
    (List.rev out.Res_symex.Symexec.allocs)

(** Plausible mapped addresses for unconstrained pointers, most promising
    first: addresses the already-synthesized suffix touched, then the
    snapshot's symbolic cells, then global words, then live heap words. *)
let build_addr_pool ctx (snapshot : Snapshot.t) ~addr_hint =
  let globals =
    List.concat_map
      (fun (base, size, _) -> List.init size (fun i -> base + i))
      ctx.layout.Res_mem.Layout.names
  in
  let heap_words =
    List.concat_map
      (fun (b : Res_mem.Heap.block) ->
        List.init (min b.size 16) (fun i -> b.base + i))
      (Res_mem.Heap.live_blocks snapshot.Snapshot.heap)
  in
  let seen = Hashtbl.create 64 in
  let dedup l =
    List.filter
      (fun a ->
        if Hashtbl.mem seen a then false
        else (
          Hashtbl.add seen a ();
          true))
      l
  in
  let pool = dedup (addr_hint @ Snapshot.symbolic_addrs snapshot @ globals @ heap_words) in
  List.filteri (fun i _ -> i < 96) pool

(* --- concrete reverse-execution fast path --- *)

let invert_verdict ctx ~func ~block_label =
  let key = (func, block_label) in
  match Hashtbl.find_opt ctx.invert_memo key with
  | Some v -> v
  | None ->
      let v =
        match Res_ir.Prog.block ctx.prog ~func ~label:block_label with
        | exception Not_found ->
            Res_static.Invert.Not_invertible "unknown block"
        | b -> Res_static.Invert.classify ~summary:(Lazy.force ctx.statics) b
      in
      Hashtbl.add ctx.invert_memo key v;
      v

(** Occurrence count of every symbol in the snapshot — constraints,
    memory overrides, and every thread's frame registers.  A symbol that
    occurs exactly once, as the bare value of a post-frame register, is
    {e free}: nothing else can force it, so the compatibility equality
    the symbolic path would emit against it is satisfiable for any
    execution — the reverse engine may treat the register as a wildcard
    ([Revexec.P_free]).  Counting per expression site ([Expr.syms]
    de-duplicates within one expression) is enough: a second site, or a
    compound slot, already disqualifies the symbol. *)
let snapshot_sym_counts (snapshot : Snapshot.t) =
  let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let count_expr e =
    Expr.Sym_set.iter
      (fun s ->
        Hashtbl.replace counts s.Expr.id
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.Expr.id)))
      (Expr.syms e)
  in
  List.iter count_expr snapshot.Snapshot.constraints;
  IMap.iter (fun _ e -> count_expr e) snapshot.Snapshot.mem_over;
  IMap.iter
    (fun _ (ts : Snapshot.thread_state) ->
      List.iter
        (fun fr ->
          List.iter (fun (_, e) -> count_expr e) (Res_symex.Symframe.reg_bindings fr))
        ts.Snapshot.ts_frames)
    snapshot.Snapshot.threads;
  counts

(** Try to decide a [K_full] move concretely: when the candidate block is
    statically invertible and the segment's post-state is concrete, the
    reverse engine either recovers the unique pre-state or proves no
    pre-state exists — skipping symbolic execution {e and} the solver.
    [None] means the question could not be settled concretely and the
    caller must fall back to the symbolic step. *)
let fast_reverse ctx (snapshot : Snapshot.t) ~tid ~func ~block_label
    ~(post_root : Res_symex.Symframe.t option) ~require_target :
    step_result option =
  match post_root with
  | None -> None
  | Some post when ctx.relaxed_regs <> [] || not (ISet.is_empty ctx.relaxed_mem)
    ->
      ignore post;
      (* relaxation hypotheses exempt locations from consistency — only
         the solver knows which, so stay symbolic *)
      None
  | Some post -> (
      match invert_verdict ctx ~func ~block_label with
      | Res_static.Invert.Not_invertible _ -> None
      | Res_static.Invert.Invertible plan -> (
          let f = Res_ir.Prog.func ctx.prog func in
          let block = Res_ir.Prog.block ctx.prog ~func ~label:block_label in
          let concrete e = Expr.const_val (Simplify.norm e) in
          let sym_counts = lazy (snapshot_sym_counts snapshot) in
          let post_reg r =
            let e = frame_reg post r in
            match concrete e with
            | Some v -> Res_static.Revexec.P_val v
            | None -> (
                match e with
                | Expr.Sym s
                  when Hashtbl.find_opt (Lazy.force sym_counts) s.Expr.id
                       = Some 1 ->
                    Res_static.Revexec.P_free
                | _ -> Res_static.Revexec.P_sym)
          in
          let oracle =
            {
              Res_static.Revexec.post_reg;
              read_post = (fun a -> concrete (Snapshot.read_mem snapshot a));
              is_mapped =
                (fun a ->
                  if Res_mem.Layout.in_heap_region a then
                    match Res_mem.Heap.check_access snapshot.Snapshot.heap a with
                    | Res_mem.Heap.Ok_access _ -> true
                    | _ -> false
                  else Res_mem.Layout.find_global ctx.layout a <> None);
              global_base =
                (fun g ->
                  match Res_mem.Layout.global_base ctx.layout g with
                  | base -> Some base
                  | exception Not_found -> None);
              require_target;
              regs = Res_ir.Func.all_regs f;
            }
          in
          match Res_static.Revexec.run block plan oracle with
          | Res_static.Revexec.Unknown _ -> None
          | Res_static.Revexec.Infeasible msg ->
              Some
                {
                  applied = [];
                  rejects = [ Fmt.str "reverse-exec: %s" msg ];
                  reversed = 1;
                  slice_skipped = plan.Res_static.Invert.pl_slice.Res_static.Slice.sl_skipped;
                }
          | Res_static.Revexec.Reversed rs ->
              (* Mirror [apply_outcome]'s construction exactly: recovered
                 values become constants, unobserved pre-values become the
                 same fresh symbols the symbolic path would mint, and no
                 constraints are added (every recovered value is forced,
                 so the constraint set stays satisfiability-equivalent). *)
              let defined = plan.Res_static.Invert.pl_defined in
              let live_in = plan.Res_static.Invert.pl_live_in in
              let regs =
                List.fold_left
                  (fun m r ->
                    let v =
                      if not (Res_static.Invert.ISet.mem r defined) then
                        frame_reg post r
                      else if Res_static.Invert.ISet.mem r live_in then
                        Expr.const
                          (Res_static.Revexec.IMap.find r
                             rs.Res_static.Revexec.rs_entry_regs)
                      else fresh_pre_reg r
                    in
                    IMap.add r v m)
                  IMap.empty (Res_ir.Func.all_regs f)
              in
              let pre_frame =
                {
                  Res_symex.Symframe.func;
                  block = block_label;
                  idx = 0;
                  regs;
                  ret_reg = None;
                  lazy_pre = false;
                }
              in
              let snap =
                List.fold_left
                  (fun s (a, v) -> Snapshot.write_mem_over s a (Expr.const v))
                  snapshot rs.Res_static.Revexec.rs_pre_mem
              in
              let snap =
                List.fold_left
                  (fun s a ->
                    Snapshot.write_mem_over s a
                      (Expr.fresh (Fmt.str "pre:mem[0x%x]!" a)))
                  snap rs.Res_static.Revexec.rs_fresh_mem
              in
              let snap =
                Snapshot.with_thread snap
                  {
                    Snapshot.ts_tid = tid;
                    ts_frames = [ pre_frame ];
                    ts_status = Res_vm.Thread.Runnable;
                    ts_stepped = true;
                  }
              in
              let segment =
                {
                  Suffix.seg_tid = tid;
                  seg_func = func;
                  seg_block = block_label;
                  seg_end = Suffix.Seg_branch rs.Res_static.Revexec.rs_target;
                  seg_writes = rs.Res_static.Revexec.rs_writes;
                  seg_reads = rs.Res_static.Revexec.rs_reads;
                  seg_inputs = [];
                  seg_lock_ops = [];
                  seg_allocs = [];
                  seg_spawns = [];
                  seg_frees = [];
                  seg_steps = rs.Res_static.Revexec.rs_steps;
                }
              in
              Some
                {
                  applied =
                    [ { ap_snapshot = snap; ap_segment = segment; ap_logs = [] } ];
                  rejects = [];
                  reversed = 1;
                  slice_skipped =
                    plan.Res_static.Invert.pl_slice.Res_static.Slice.sl_skipped;
                }))

(** Apply one candidate backward move for thread [tid].  Returns every
    feasible application (several execution paths of the candidate block
    may be compatible) plus reject diagnostics.  [addr_hint] biases
    unconstrained-pointer resolution toward addresses the suffix already
    touches.  [reverse_exec] enables the concrete reverse-execution fast
    path for invertible full-block segments. *)
let rec step_back ?(addr_hint = []) ?(reverse_exec = true) ctx
    (snapshot : Snapshot.t) ~tid ~(kind : kind) : step_result =
  let ts = Snapshot.thread snapshot tid in
  let post_root = root_frame ts in
  (* Resolve the candidate block and execution mode. *)
  let resolved =
    match kind with
    | K_partial crash -> (
        match post_root with
        | None -> Error "partial step of a frameless thread"
        | Some root ->
            let stack =
              List.rev_map
                (fun (fr : Res_symex.Symframe.t) ->
                  (fr.Res_symex.Symframe.func, fr.Res_symex.Symframe.block, fr.Res_symex.Symframe.idx))
                ts.Snapshot.ts_frames
            in
            Ok
              ( root.Res_symex.Symframe.func,
                root.Res_symex.Symframe.block,
                Res_symex.Symexec.Partial { stack; crash } ))
    | K_full { block } -> (
        match post_root with
        | None -> Error "full step of a frameless thread"
        | Some root ->
            if root.Res_symex.Symframe.idx <> 0 || List.length ts.Snapshot.ts_frames <> 1
            then Error "thread is not at a segment boundary"
            else
              Ok
                ( root.Res_symex.Symframe.func,
                  block,
                  Res_symex.Symexec.Full
                    { require_target = Some root.Res_symex.Symframe.block } ))
    | K_final { func; block } ->
        if ts.Snapshot.ts_status <> Res_vm.Thread.Halted then
          Error "final step of a non-halted thread"
        else Ok (func, block, Res_symex.Symexec.Full { require_target = None })
  in
  match resolved with
  | Error msg -> no_result msg
  | Ok (func, block_label, mode) -> (
      (* Concrete reverse-execution fast path: a proven-invertible
         full-block segment with a concrete post-state is decided without
         symbolic execution or the solver. *)
      let fast =
        if not reverse_exec then None
        else
          match (kind, mode) with
          | K_full _, Res_symex.Symexec.Full { require_target = Some target }
            -> (
              match
                fast_reverse ctx snapshot ~tid ~func ~block_label ~post_root
                  ~require_target:target
              with
              | exception Not_found -> None
              | r -> r)
          | _ -> None
      in
      match fast with
      | Some r -> r
      | None -> (
      (* Static effects: allocation plan and spawn plan. *)
      match static_block_effects ctx.prog ~func ~block_label with
      | exception Dynamic msg -> no_result msg
      | exception Not_found -> no_result (Fmt.str "unknown function %s" func)
      | effects -> (
          let n_allocs =
            List.length (List.filter (function `Alloc -> true | _ -> false) effects)
          in
          let spawn_fnames =
            List.filter_map (function `Spawn f -> Some f | _ -> None) effects
          in
          (* Choose snapshot threads for each spawned function, ascending tid. *)
          let spawn_plan =
            let eligible fname picked =
              IMap.fold
                (fun tid (ts' : Snapshot.thread_state) best ->
                  if List.mem tid picked || tid = ts.Snapshot.ts_tid then best
                  else
                    match (best, ts'.Snapshot.ts_frames) with
                    | Some _, _ -> best
                    | None, [ fr ]
                      when String.equal fr.Res_symex.Symframe.func fname
                           && fr.Res_symex.Symframe.idx = 0
                           && String.equal fr.Res_symex.Symframe.block
                                (Res_ir.Prog.func ctx.prog fname).Res_ir.Func.entry
                           && ts'.Snapshot.ts_status = Res_vm.Thread.Runnable ->
                        Some tid
                    | None, _ -> None)
                snapshot.Snapshot.threads None
            in
            List.fold_left
              (fun acc fname ->
                match acc with
                | Error _ as e -> e
                | Ok picked -> (
                    match eligible fname picked with
                    | Some tid -> Ok (picked @ [ tid ])
                    | None ->
                        Error (Fmt.str "no unborn thread available for %s" fname)))
              (Ok []) spawn_fnames
          in
          match spawn_plan with
          | Error msg -> no_result msg
          | Ok spawn_plan -> (
              match
                heap_surgery ctx snapshot.Snapshot.heap ~func ~block_label ~n_allocs
              with
              | Error msg -> no_result msg
              | exception Invalid_argument msg -> no_result msg
              | Ok (pre_heap, alloc_plan) ->
                  let frame = seed_frame ctx ~post_root ~func ~block_label in
                  let rq =
                    {
                      Res_symex.Symexec.prog = ctx.prog;
                      layout = ctx.layout;
                      tid;
                      frame;
                      heap = pre_heap;
                      post_mem = Snapshot.read_mem snapshot;
                      havoc_reads = ISet.empty;
                      ambient = snapshot.Snapshot.constraints;
                      addr_pool =
                        (if ctx.use_addr_pool then
                           build_addr_pool ctx snapshot ~addr_hint
                         else []);
                      alloc_plan;
                      spawn_plan;
                      dynamic_alloc = false;
                      mode;
                    }
                  in
                  let outs, rejects = run_with_havoc ctx rq in
                  let applied =
                    List.filter_map
                      (fun (out : Res_symex.Symexec.outcome) ->
                        apply_outcome ctx snapshot ~tid ~func ~block_label
                          ~post_root ~kind out)
                      outs
                  in
                  { applied; rejects; reversed = 0; slice_skipped = 0 }))))

(** Check one execution outcome against the snapshot and build the
    pre-snapshot if compatible. *)
and apply_outcome ctx snapshot ~tid ~func ~block_label ~post_root ~kind
    (out : Res_symex.Symexec.outcome) : applied option =
  let ts = Snapshot.thread snapshot tid in
  (* A halted thread's terminal segment must actually end the thread. *)
  let stop_ok =
    match (kind, out.Res_symex.Symexec.stop) with
    | K_final _, (Res_symex.Symexec.Returned _ | Res_symex.Symexec.Halted) -> true
    | K_final _, _ -> false
    | (K_partial _ | K_full _), _ -> true
  in
  if not stop_ok then None
    (* Heap structure must match exactly. *)
  else if
    not (Res_mem.Heap.similar out.Res_symex.Symexec.heap snapshot.Snapshot.heap)
  then None
  else
    (* Joined threads must exist.  They need not be halted in this
       snapshot: a block that spawns and joins the same thread blocks
       mid-segment and resumes after the target halts — the replayer
       handles that, and the exact-coredump check validates the schedule. *)
    let joins_ok =
      List.for_all
        (fun jt -> IMap.mem jt snapshot.Snapshot.threads)
        out.Res_symex.Symexec.joins
    in
    if not joins_ok then None
    else
      let out_bottom = List.rev out.Res_symex.Symexec.frames |> List.hd in
      let reg_cs = reg_constraints ctx ~tid ~func out_bottom ~post_root in
      let callee_cs =
        match kind with
        | K_partial _ ->
            callee_frame_constraints out.Res_symex.Symexec.frames
              ts.Snapshot.ts_frames
        | K_full _ | K_final _ -> Some []
      in
      match callee_cs with
      | None -> None
      | Some callee_cs -> (
          let mem_cs = mem_constraints ctx snapshot out in
          match spawn_constraints ctx snapshot out with
          | Error _ -> None
          | Ok (spawn_cs, spawned_tids) -> (
              let new_cs =
                out.Res_symex.Symexec.path @ reg_cs @ callee_cs @ mem_cs @ spawn_cs
              in
              let all_cs = new_cs @ snapshot.Snapshot.constraints in
              match Solver.solve ~config:ctx.solver_config all_cs with
              | Solver.Unsat | Solver.Unknown -> None
              | Solver.Sat _ ->
                  (* Build Spre. *)
                  let regs = pre_regs_of ctx ~func ~block_label ~post_root out in
                  let pre_frame =
                    {
                      Res_symex.Symframe.func;
                      block = block_label;
                      idx = 0;
                      regs;
                      ret_reg = None;
                      lazy_pre = false;
                    }
                  in
                  let snap = pre_mem_over snapshot out in
                  let snap =
                    Snapshot.with_thread snap
                      {
                        Snapshot.ts_tid = tid;
                        ts_frames = [ pre_frame ];
                        ts_status = Res_vm.Thread.Runnable;
                        ts_stepped = true;
                      }
                  in
                  let snap =
                    {
                      snap with
                      Snapshot.heap = pre_heap_of snapshot out;
                      threads =
                        List.fold_left
                          (fun m t -> IMap.remove t m)
                          snap.Snapshot.threads spawned_tids;
                    }
                  in
                  let snap = Snapshot.add_constraints snap new_cs in
                  let seg_end =
                    match (kind, out.Res_symex.Symexec.stop) with
                    | K_partial (Some k), _ -> Suffix.Seg_crash k
                    | K_partial None, _ -> Suffix.Seg_blocked
                    | _, Res_symex.Symexec.Fell_to l -> Suffix.Seg_branch l
                    | _, Res_symex.Symexec.Returned _ -> Suffix.Seg_ret
                    | _, Res_symex.Symexec.Halted -> Suffix.Seg_halt
                    | _, Res_symex.Symexec.Crashed_here -> Suffix.Seg_blocked
                  in
                  let segment =
                    {
                      Suffix.seg_tid = tid;
                      seg_func = func;
                      seg_block = block_label;
                      seg_end;
                      seg_writes =
                        Res_symex.Symmem.written_addrs out.Res_symex.Symexec.mem;
                      seg_reads = ISet.elements out.Res_symex.Symexec.read_before_write;
                      seg_inputs = out.Res_symex.Symexec.inputs;
                      seg_lock_ops = out.Res_symex.Symexec.lock_ops;
                      seg_allocs = List.map fst out.Res_symex.Symexec.allocs;
                      seg_spawns =
                        List.map (fun (t, _, _) -> t) out.Res_symex.Symexec.spawns;
                      seg_frees = out.Res_symex.Symexec.frees;
                      seg_steps = out.Res_symex.Symexec.steps;
                    }
                  in
                  Some
                    {
                      ap_snapshot = snap;
                      ap_segment = segment;
                      ap_logs = out.Res_symex.Symexec.logs;
                    }))

