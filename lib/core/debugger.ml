(** Post-mortem debugging aids on top of a synthesized suffix (paper §3.3).

    "RES enables several debugging aids on top of traditional debuggers
    like gdb: synthesizing the execution suffix, reconstructing past state,
    and the ability to do reverse debugging without the need to record the
    execution."

    A session wraps one verified suffix.  Because replay is deterministic,
    any point in the suffix can be reconstructed exactly by re-running the
    replay for a bounded number of steps — reverse-stepping is just
    re-running one step less.  The hypothesis helpers answer the paper's
    example queries: "what was the program state when the program was
    executing at program counter X?" and "was a thread T preempted before
    updating shared memory location M?". *)

module IMap = Map.Make (Int)

(** One cached pass over the event trace, shared by every query that used
    to rescan it per call: the write history of each address and the step
    numbers of each thread. *)
type scan = {
  sc_writes : int list IMap.t;  (** addr -> steps that wrote it, oldest first *)
  sc_thread_steps : int list IMap.t;  (** tid -> its steps, oldest first *)
}

type t = {
  ctx : Backstep.ctx;
  suffix : Suffix.t;
  dump : Res_vm.Coredump.t;
  trace : Res_vm.Event.t array;  (** instruction-level suffix trace *)
  snapshot_every : int;  (** index interval; 0 replays from step 0 *)
  mutable index : (Replay.stepper * Replay.Index.t) option;
      (** lazily-built snapshot index: state queries pay the one-time
          forward replay only if any are ever made *)
  mutable scan : scan option;  (** lazily-built shared event scan *)
}

(** Open a debugging session for a suffix.  Returns [Error] if the suffix
    does not reproduce the coredump (nothing trustworthy to debug).
    [snapshot_every] is the snapshot-index interval for state queries
    (0 disables the index: every query replays from step 0). *)
let start ?(snapshot_every = 64) ctx suffix dump =
  let verdict = Replay.replay ctx suffix dump in
  if not verdict.Replay.reproduced then Error "suffix does not reproduce the coredump"
  else
    Ok
      {
        ctx;
        suffix;
        dump;
        trace = Array.of_list verdict.Replay.trace;
        snapshot_every = max 0 snapshot_every;
        index = None;
        scan = None;
      }

(** Number of instruction steps in the suffix. *)
let length t = Array.length t.trace

(** The event at step [i] (0-based, oldest first). *)
let event_at t i =
  if i < 0 || i >= Array.length t.trace then
    invalid_arg (Fmt.str "Debugger.event_at: step %d out of range" i)
  else t.trace.(i)

(** The crash the suffix runs into. *)
let crash t = t.dump.Res_vm.Coredump.crash

(* Trace indices are not step numbers: a blocked scheduling attempt
   completes a step but emits no event, and a ret from the last frame
   emits two events (ret + halt) for one step.  Events carry their true
   step number; translate through it when reconstructing state. *)
let step_of_event t i = (event_at t i).Res_vm.Event.step

let index t =
  match t.index with
  | Some ix -> ix
  | None ->
      let sp = Replay.make_stepper t.ctx t.suffix in
      let ix = Replay.Index.build ~interval:t.snapshot_every sp in
      t.index <- Some (sp, ix);
      (sp, ix)

(** Replay-from-zero state reconstruction — the pre-index code path, kept
    as the baseline the snapshot index is benchmarked (and tested)
    against.  O(steps) per query. *)
let state_at_linear t steps =
  let state = Replay.initial_state t.ctx t.suffix in
  let config =
    {
      (Res_vm.Exec.default_config ()) with
      sched =
        Res_vm.Sched.create (Res_vm.Sched.Fixed (Suffix.schedule t.suffix));
      oracle = Res_vm.Oracle.scripted (Suffix.input_script t.suffix);
      max_steps = steps;
      record_trace = false;
    }
  in
  (Res_vm.Exec.run_state ~config state).Res_vm.Exec.final

(** Total completed instruction steps in the suffix (the crash attempt
    excluded) — the timeline's upper bound for {!state_at}.  Not the same
    as {!length}: see {!step_of_event}. *)
let total_steps t = Replay.Index.length (snd (index t))

(** Reconstruct the exact machine state after executing the first [steps]
    instructions of the suffix: restore the nearest snapshot at or below
    [steps] and re-execute forward — O(snapshot interval), not
    O(execution length). *)
let state_at t steps =
  let sp, ix = index t in
  Replay.Index.seek ix sp steps

(** Memory word [addr] just after trace event [i]. *)
let mem_at t i addr =
  Res_mem.Memory.read
    (state_at t (step_of_event t i + 1)).Res_vm.Exec.mem
    addr

(** Register [r] of thread [tid] just after trace event [i] (innermost
    frame). *)
let reg_at t i ~tid ~reg =
  let st = state_at t (step_of_event t i + 1) in
  match IMap.find_opt tid st.Res_vm.Exec.threads with
  | Some th -> (
      match Res_vm.Thread.top_opt th with
      | Some fr -> Some (Res_vm.Frame.read_reg fr reg)
      | None -> None)
  | None -> None

(** Every step whose program counter matches [pc], oldest first — the full
    hit list of a breakpoint (what a [continue] with a hit count walks). *)
let break_all t (pc : Res_ir.Pc.t) =
  let out = ref [] in
  Array.iteri
    (fun i (e : Res_vm.Event.t) ->
      if Res_ir.Pc.equal e.Res_vm.Event.pc pc then out := i :: !out)
    t.trace;
  List.rev !out

(** First step whose program counter matches [pc] — a breakpoint.  Answers
    "what was the program state when the program was executing at X":
    combine with {!state_at}. *)
let break_at t (pc : Res_ir.Pc.t) =
  let n = Array.length t.trace in
  let rec go i =
    if i >= n then None
    else if Res_ir.Pc.equal t.trace.(i).Res_vm.Event.pc pc then Some i
    else go (i + 1)
  in
  go 0

(* The shared event scan: one pass over the trace, built on first use,
   instead of one pass per writes_to/steps_of_thread call. *)
let scan t =
  match t.scan with
  | Some s -> s
  | None ->
      let push k i m =
        IMap.update k
          (function None -> Some [ i ] | Some l -> Some (i :: l))
          m
      in
      let writes = ref IMap.empty and threads = ref IMap.empty in
      Array.iteri
        (fun i (e : Res_vm.Event.t) ->
          threads := push e.Res_vm.Event.tid e.Res_vm.Event.step !threads;
          match e.Res_vm.Event.action with
          | Res_vm.Event.A_write { addr; _ } -> writes := push addr i !writes
          | _ -> ())
        t.trace;
      let s =
        {
          sc_writes = IMap.map List.rev !writes;
          sc_thread_steps = IMap.map List.rev !threads;
        }
      in
      t.scan <- Some s;
      s

(** All steps executed by thread [tid]. *)
let steps_of_thread t tid =
  match IMap.find_opt tid (scan t).sc_thread_steps with
  | Some steps -> steps
  | None -> []

(** Steps that wrote memory word [addr], oldest first — the write history
    of a location within the suffix. *)
let writes_to t addr =
  match IMap.find_opt addr (scan t).sc_writes with
  | Some steps -> steps
  | None -> []

(** Hypothesis (paper §3.3): "was thread T preempted before updating shared
    memory location M?" — true when another thread executed between T's
    previous access to M (typically the read of a read-modify-write) and
    T's write to M.  [None] when T never writes M in this suffix. *)
let preempted_before_update t ~tid ~addr =
  let n = Array.length t.trace in
  (* find T's first write to addr *)
  let rec find_write i =
    if i >= n then None
    else
      let e = t.trace.(i) in
      match e.Res_vm.Event.action with
      | Res_vm.Event.A_write { addr = a; _ }
        when a = addr && e.Res_vm.Event.tid = tid ->
          Some i
      | _ -> find_write (i + 1)
  in
  match find_write 0 with
  | None -> None (* T never updates M in this suffix *)
  | Some w ->
      (* T's previous access to M before the write *)
      let rec prev_access i =
        if i < 0 then None
        else
          let e = t.trace.(i) in
          if
            e.Res_vm.Event.tid = tid
            && Res_vm.Event.touched_addr e = Some addr
          then Some i
          else prev_access (i - 1)
      in
      let preempted =
        match prev_access (w - 1) with
        | None -> false (* no earlier access: nothing to be stale against *)
        | Some p ->
            let rec foreign i =
              i < w
              && (t.trace.(i).Res_vm.Event.tid <> tid || foreign (i + 1))
            in
            foreign (p + 1)
      in
      Some preempted

(** Render the suffix as a navigable listing. *)
let pp_listing ppf t =
  Array.iteri
    (fun i (e : Res_vm.Event.t) -> Fmt.pf ppf "%4d  %a@," i Res_vm.Event.pp e)
    t.trace

let pp ppf t =
  Fmt.pf ppf "@[<v>debugging session: %d steps, crash %a@,%a@]" (length t)
    Res_vm.Crash.pp t.dump.Res_vm.Coredump.crash pp_listing t
