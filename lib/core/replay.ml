(** Deterministic suffix replay (paper §2.1).

    "A special environment is slipped underneath the debugger to
    instantiate [Mi] and replay [Ti]": the suffix's snapshot is concretized
    through the model into a runnable memory image, threads are placed at
    their suffix-start positions, the schedule is forced, input values are
    scripted, and MiniVM runs — the program deterministically runs into the
    same failure, which is verified byte-for-byte against the original
    coredump. *)

module IMap = Map.Make (Int)

type verdict = {
  reproduced : bool;  (** the failure state matches the coredump exactly *)
  replay_crash : Res_vm.Crash.t option;  (** what the replay produced *)
  replay_dump : Res_vm.Coredump.t option;
  trace : Res_vm.Event.t list;  (** instruction-level trace of the suffix *)
  divergence : string option;  (** why reproduction failed, if it did *)
}

(** Build the initial VM state [Mi] for a suffix. *)
let initial_state ctx (suffix : Suffix.t) =
  let snapshot = suffix.Suffix.snapshot in
  let model = suffix.Suffix.model in
  let mem = Snapshot.concrete_mem snapshot model in
  let threads =
    IMap.map
      (fun (ts : Snapshot.thread_state) ->
        {
          Res_vm.Thread.tid = ts.Snapshot.ts_tid;
          frames = Snapshot.concrete_frames ts model;
          status = ts.Snapshot.ts_status;
        })
      snapshot.Snapshot.threads
  in
  Res_vm.Exec.make_state ctx.Backstep.prog ~mem ~heap:snapshot.Snapshot.heap
    ~threads

(** Replay [suffix] and compare the resulting failure state with [dump]. *)
let replay ?(max_steps = 100_000) ctx (suffix : Suffix.t)
    (dump : Res_vm.Coredump.t) : verdict =
  let state = initial_state ctx suffix in
  let config =
    {
      (Res_vm.Exec.default_config ()) with
      sched = Res_vm.Sched.create (Res_vm.Sched.Fixed (Suffix.schedule suffix));
      oracle = Res_vm.Oracle.scripted (Suffix.input_script suffix);
      max_steps;
      record_trace = true;
      lbr_depth = dump.Res_vm.Coredump.tracer.Res_vm.Tracer.lbr_depth;
    }
  in
  let result = Res_vm.Exec.run_state ~config state in
  match result.Res_vm.Exec.outcome with
  | Res_vm.Exec.Crashed crash ->
      let replay_dump =
        {
          Res_vm.Coredump.crash;
          mem = result.Res_vm.Exec.final.Res_vm.Exec.mem;
          heap = result.Res_vm.Exec.final.Res_vm.Exec.heap;
          threads = result.Res_vm.Exec.final.Res_vm.Exec.threads;
          tracer = result.Res_vm.Exec.final.Res_vm.Exec.tracer;
          steps = result.Res_vm.Exec.final.Res_vm.Exec.steps;
        }
      in
      let reproduced = Res_vm.Coredump.same_failure_state replay_dump dump in
      let divergence =
        if reproduced then None
        else
          Some
            (if crash.Res_vm.Crash.kind <> dump.Res_vm.Coredump.crash.Res_vm.Crash.kind
             then
               Fmt.str "crash kind differs: %a vs %a" Res_vm.Crash.pp_kind
                 crash.Res_vm.Crash.kind Res_vm.Crash.pp_kind
                 dump.Res_vm.Coredump.crash.Res_vm.Crash.kind
             else
               let diffs =
                 Res_mem.Memory.diff replay_dump.Res_vm.Coredump.mem
                   dump.Res_vm.Coredump.mem
               in
               Fmt.str "state differs (%d memory cells)" (List.length diffs))
      in
      {
        reproduced;
        replay_crash = Some crash;
        replay_dump = Some replay_dump;
        trace = result.Res_vm.Exec.trace;
        divergence;
      }
  | Res_vm.Exec.Exited ->
      {
        reproduced = false;
        replay_crash = None;
        replay_dump = None;
        trace = result.Res_vm.Exec.trace;
        divergence = Some "replay exited without crashing";
      }
  | Res_vm.Exec.Out_of_fuel ->
      {
        reproduced = false;
        replay_crash = None;
        replay_dump = None;
        trace = result.Res_vm.Exec.trace;
        divergence = Some "replay ran out of fuel";
      }

(** Replay [n] times and check every run reproduces the same failure —
    the determinism requirement (5) of paper §2. *)
let replay_deterministically ?(times = 3) ctx suffix dump =
  let verdicts = List.init times (fun _ -> replay ctx suffix dump) in
  (List.for_all (fun v -> v.reproduced) verdicts, verdicts)

(* --- resumable stepper ------------------------------------------------ *)

(* The batch replayer above runs a suffix start-to-crash in one call; the
   time-travel debugger instead needs to stand still in the middle of a
   replay, run one instruction, and jump around.  A {!stepper} is a live
   VM positioned somewhere inside the suffix, driven one instruction at a
   time with exactly the scheduling and input decisions [replay] makes, so
   a stepper paused after [n] steps is bit-for-bit the state the batch
   replay has after [n] steps.

   Every component of the VM state is persistent (memory, heap, threads,
   tracer are applicative maps/lists), so an {!image} — a point-in-time
   copy of the whole machine — is O(1) to take and to restore.  That is
   what makes a snapshot index over a replay essentially free to build:
   the only real cost of time travel is re-executing instructions, and the
   index exists to bound how many. *)

(** O(1) point-in-time copy of a replaying VM: the persistent state
    components plus the replay cursors (position in the scripted schedule
    and input list, and the round-robin fallback cursor). *)
type image = {
  im_mem : Res_mem.Memory.t;
  im_heap : Res_mem.Heap.t;
  im_threads : Res_vm.Thread.t IMap.t;
  im_next_tid : int;
  im_tracer : Res_vm.Tracer.t;
  im_steps : int;
  im_current : int;
  im_sched_pos : int;
  im_input_pos : int;
  im_rr_last : int;
}

type stepper = {
  sp_st : Res_vm.Exec.state;
  sp_cfg : Res_vm.Exec.config;
  sp_schedule : int array;  (** the suffix's scripted tids, in full *)
  mutable sp_sched_pos : int;  (** next schedule entry to consume *)
  sp_input_pos : int ref;  (** next input value to consume (read by the
                               oracle closure inside [sp_cfg]) *)
  mutable sp_rr_last : int;  (** round-robin fallback cursor, as in Sched *)
}

(** What one forward step did. *)
type step_outcome =
  | Stepped  (** one instruction executed; the stepper advanced *)
  | Step_crashed of Res_vm.Crash.t
      (** the next instruction crashes (or every live thread is blocked:
          deadlock); the stepper did not advance *)
  | Step_exited  (** every thread halted; nothing left to execute *)

(** A live stepper at step 0 of the suffix — the state [initial_state]
    builds, with the schedule and input script still whole. *)
let make_stepper ctx (suffix : Suffix.t) =
  let st = initial_state ctx suffix in
  st.Res_vm.Exec.tracer <- Res_vm.Tracer.create ~lbr_depth:16;
  let inputs = Array.of_list (Suffix.input_script suffix) in
  let input_pos = ref 0 in
  let oracle =
    {
      Res_vm.Oracle.next =
        (fun _kind ->
          if !input_pos < Array.length inputs then begin
            let v = inputs.(!input_pos) in
            incr input_pos;
            v
          end
          else 0);
    }
  in
  let cfg =
    {
      (Res_vm.Exec.default_config ()) with
      oracle;
      max_steps = max_int;
      record_trace = false;
    }
  in
  {
    sp_st = st;
    sp_cfg = cfg;
    sp_schedule = Array.of_list (Suffix.schedule suffix);
    sp_sched_pos = 0;
    sp_input_pos = input_pos;
    sp_rr_last = -1;
  }

(** Steps executed so far — the stepper's position on the timeline. *)
let stepper_steps sp = sp.sp_st.Res_vm.Exec.steps

(* Sched.round_robin, replicated over the stepper's own cursor so the
   whole scheduling state is capturable in an image. *)
let rr_pick sp runnable =
  let above = List.filter (fun tid -> tid > sp.sp_rr_last) runnable in
  let chosen = match above with tid :: _ -> tid | [] -> List.hd runnable in
  sp.sp_rr_last <- chosen;
  chosen

(** Execute exactly one instruction, making the same scheduling decision
    [Exec.run_state] under a [Sched.Fixed] schedule would make.  A
    crashing step leaves the stepper exactly where it was (the faulting
    instruction never completes and has no step), so probing the crash is
    idempotent: the schedule cursor, input cursor, and step count are all
    rolled back. *)
let step_once sp =
  let st = sp.sp_st in
  let sched_pos0 = sp.sp_sched_pos
  and input_pos0 = !(sp.sp_input_pos)
  and rr_last0 = sp.sp_rr_last
  and current0 = st.Res_vm.Exec.current in
  let run_tid tid =
    match Res_vm.Exec.step st sp.sp_cfg tid with
    | Some crash ->
        (* No crash path mutates memory/heap/threads before raising, so
           rolling back the cursors restores the pre-step position. *)
        st.Res_vm.Exec.steps <- st.Res_vm.Exec.steps - 1;
        sp.sp_sched_pos <- sched_pos0;
        sp.sp_input_pos := input_pos0;
        sp.sp_rr_last <- rr_last0;
        st.Res_vm.Exec.current <- current0;
        Step_crashed crash
    | None -> Stepped
  in
  if Res_vm.Exec.must_continue st then run_tid st.Res_vm.Exec.current
  else
    match Res_vm.Exec.runnable_tids st with
    | [] -> (
        match Res_vm.Exec.blocked_tids st with
        | [] -> Step_exited
        | blocked ->
            let tid = List.hd blocked in
            let pc = Res_vm.Thread.pc (Res_vm.Exec.get_thread st tid) in
            Step_crashed { Res_vm.Crash.kind = Res_vm.Crash.Deadlock blocked; tid; pc })
    | runnable ->
        let tid =
          if sp.sp_sched_pos < Array.length sp.sp_schedule then begin
            let t = sp.sp_schedule.(sp.sp_sched_pos) in
            sp.sp_sched_pos <- sp.sp_sched_pos + 1;
            if List.mem t runnable then t else rr_pick sp runnable
          end
          else rr_pick sp runnable
        in
        st.Res_vm.Exec.current <- tid;
        run_tid tid

(** Capture the stepper's position as an image (O(1)). *)
let capture sp =
  let st = sp.sp_st in
  {
    im_mem = st.Res_vm.Exec.mem;
    im_heap = st.Res_vm.Exec.heap;
    im_threads = st.Res_vm.Exec.threads;
    im_next_tid = st.Res_vm.Exec.next_tid;
    im_tracer = st.Res_vm.Exec.tracer;
    im_steps = st.Res_vm.Exec.steps;
    im_current = st.Res_vm.Exec.current;
    im_sched_pos = sp.sp_sched_pos;
    im_input_pos = !(sp.sp_input_pos);
    im_rr_last = sp.sp_rr_last;
  }

(** Teleport the stepper back (or forward) to a captured image (O(1)). *)
let restore sp im =
  let st = sp.sp_st in
  st.Res_vm.Exec.mem <- im.im_mem;
  st.Res_vm.Exec.heap <- im.im_heap;
  st.Res_vm.Exec.threads <- im.im_threads;
  st.Res_vm.Exec.next_tid <- im.im_next_tid;
  st.Res_vm.Exec.tracer <- im.im_tracer;
  st.Res_vm.Exec.steps <- im.im_steps;
  st.Res_vm.Exec.current <- im.im_current;
  sp.sp_sched_pos <- im.im_sched_pos;
  sp.sp_input_pos := im.im_input_pos;
  sp.sp_rr_last <- im.im_rr_last

(* --- snapshot index --------------------------------------------------- *)

(** Snapshot index over one suffix replay (FReD-style).

    Built by a single forward replay that captures an {!image} every
    [interval] steps, the index turns "state after step [n]" from
    O(execution length) — replay from step 0 — into O(interval): restore
    the nearest snapshot at or below [n] and re-execute forward.  With the
    index disabled ([interval = 0]) only the step-0 image exists, which
    {e is} the replay-from-zero baseline; every query is answered through
    the same code path either way, so enabling the index can change only
    the amount of re-execution, never a result. *)
module Index = struct
  type t = {
    ix_interval : int;  (** 0 = disabled (single snapshot at step 0) *)
    ix_images : image array;  (** snapshots at steps 0, k, 2k, ... *)
    ix_length : int;  (** completed steps in the suffix (crash excluded) *)
    mutable ix_restores : int;  (** snapshot restores performed by seeks *)
    mutable ix_replayed : int;  (** instructions re-executed by seeks *)
  }

  (** Build the index by replaying the stepper forward from its current
      position (normally step 0) to the end of the suffix.  Returns the
      index; the stepper is left at the end of the timeline. *)
  let build ?(interval = 64) sp =
    if interval < 0 then invalid_arg "Replay.Index.build: negative interval";
    let images = ref [ capture sp ] in
    let rec go () =
      match step_once sp with
      | Stepped ->
          if interval > 0 && stepper_steps sp mod interval = 0 then
            images := capture sp :: !images;
          go ()
      | Step_crashed _ | Step_exited -> ()
    in
    go ();
    {
      ix_interval = interval;
      ix_images = Array.of_list (List.rev !images);
      ix_length = stepper_steps sp;
      ix_restores = 0;
      ix_replayed = 0;
    }

  let length t = t.ix_length
  let interval t = t.ix_interval

  (** Position [sp] at exactly [n] executed steps.  Continues forward from
      the stepper's current position when that is cheaper than restoring;
      otherwise restores the nearest snapshot at or below [n] and replays
      forward.  The resulting state is bit-for-bit what a fresh replay of
      [n] steps produces. *)
  let seek t sp n =
    if n < 0 || n > t.ix_length then
      invalid_arg (Fmt.str "Replay.Index.seek: step %d out of [0,%d]" n t.ix_length);
    let snap = if t.ix_interval = 0 then 0 else n / t.ix_interval in
    let snap = min snap (Array.length t.ix_images - 1) in
    let snap_step = t.ix_images.(snap).im_steps in
    let cur = stepper_steps sp in
    if cur > n || cur < snap_step then begin
      restore sp t.ix_images.(snap);
      t.ix_restores <- t.ix_restores + 1
    end;
    while stepper_steps sp < n do
      (match step_once sp with
      | Stepped -> ()
      | Step_crashed _ | Step_exited ->
          invalid_arg "Replay.Index.seek: suffix ended early");
      t.ix_replayed <- t.ix_replayed + 1
    done;
    sp.sp_st
end
