(** One home for the sealed-envelope helpers.

    Every durable artifact in the system — coredumps, search checkpoints,
    spool journals, cluster result journals, parallel work-unit frames,
    cache entries — shares one on-disk discipline: a header line naming
    the format, a line-oriented payload, and an [end <lines> <checksum>]
    footer (FNV-1a over the payload) so torn or bit-flipped files are
    {e detected} rather than parsed.  The writer ({!seal}) and validator
    ({!validate}) grew up in {!Res_vm.Coredump_io} and were then
    re-wrapped slightly differently by the checkpoint, spool, cluster
    journal, and wire modules; this module is the single copy they all
    call now.

    Also here: the 64-bit FNV-1a variant ({!fnv1a64}, {!content_key})
    used to derive content-addressed cache keys, where the 32-bit hash's
    birthday bound (~77k inputs for a 50% collision) is too tight for a
    100k-dump corpus and a collision would silently serve the wrong
    cached result. *)

module Io = Res_vm.Coredump_io

(** 32-bit FNV-1a — the envelope checksum. *)
let fnv1a32 = Io.fnv1a32

(** Append the validating [end <lines> <checksum>] footer to a payload
    (which must end in a newline). *)
let seal = Io.seal

(** Validate a sealed envelope whose first line must equal [header];
    returns the full payload (header line included) on success. *)
let validate ~header src =
  Io.validate_sealed ~header:(String.equal header) src

(** [valid ~header src] — does the envelope validate?  The boolean
    form every journal-recovery path wants. *)
let valid ~header src = Result.is_ok (validate ~header src)

(* --- bounded counts: validate before allocating --- *)

(** Upper bound on any decoded element count (sequence lengths, list
    sizes, breaker rows).  Every length-prefix and count field in a
    sealed format is attacker-controlled bytes until proven otherwise;
    a count is only trusted after it passes this gate, {e before} any
    allocation sized by it.  2^20 elements is far beyond any legitimate
    artifact (the largest real payloads are a few thousand lines) while
    small enough that even a worst-case per-element allocation stays in
    the tens of megabytes — the same philosophy as
    [Wire.max_frame_bytes]. *)
let max_count = 1 lsl 20

(** [count_error ~what n] — [Some reason] if [n] is not a trustworthy
    element count ([0 <= n <= max_count]), [None] if it is.  Callers
    with their own error channel ([Protocol.Bad], [result] types) use
    this form. *)
let count_error ~what n =
  if n < 0 then Some (Printf.sprintf "negative %s count %d" what n)
  else if n > max_count then
    Some (Printf.sprintf "%s count %d exceeds limit %d" what n max_count)
  else None

(** [check_count ~what n] — [n] back if trustworthy, else
    [Io.Bad_format]; the form for token-reader decoders (wire frames,
    checkpoints) whose error channel is already [Bad_format]. *)
let check_count ~what n =
  match count_error ~what n with
  | None -> n
  | Some reason -> raise (Io.Bad_format reason)

(* --- 64-bit FNV-1a for content-addressed keys --- *)

let fnv64_basis = 0xcbf29ce484222325L
let fnv64_prime = 0x100000001b3L

(** 64-bit FNV-1a over a string, folded into [h] (start from
    {!fnv64_basis}).  Int64 so the full 64-bit wraparound semantics hold
    on OCaml's 63-bit native ints. *)
let fnv1a64_fold h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv64_prime)
    s;
  !h

let fnv1a64 s = fnv1a64_fold fnv64_basis s

(** Derive a content-addressed key from the given parts: 64-bit FNV-1a
    over the length-prefixed concatenation (length prefixes so
    [["ab";"c"]] and [["a";"bc"]] never collide), rendered as 16 hex
    digits — filesystem-safe and fixed-width. *)
let content_key parts =
  let h =
    List.fold_left
      (fun h part ->
        fnv1a64_fold (fnv1a64_fold h (Printf.sprintf "%d:" (String.length part))) part)
      fnv64_basis parts
  in
  Printf.sprintf "%016Lx" h
