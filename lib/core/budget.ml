(** Deadline/fuel budgets for the analysis pipeline.

    A single [t] bundles the two resource bounds every stage of the
    pipeline must respect: a wall-clock deadline and a cooperative fuel
    counter (search nodes).  Stages call {!tick} (or hand the solver and
    symbolic executor an {!interrupt} closure) at every unit of work; once
    either bound trips, the budget stays exhausted and every subsequent
    check fails fast, so the whole stack unwinds cooperatively and returns
    the best partial answer it has instead of running forever. *)

type exhaustion = Deadline | Fuel

let pp_exhaustion ppf = function
  | Deadline -> Fmt.string ppf "wall-clock deadline exceeded"
  | Fuel -> Fmt.string ppf "fuel budget exhausted"

type t = {
  deadline : float option;  (** absolute [Unix.gettimeofday] time *)
  started : float;
  mutable fuel : int option;  (** remaining cooperative ticks *)
  mutable tripped : exhaustion option;
}

let now () = Unix.gettimeofday ()

(** [create ?wall_seconds ?fuel ()] starts the clock immediately. *)
let create ?wall_seconds ?fuel () =
  let started = now () in
  {
    deadline = Option.map (fun s -> started +. s) wall_seconds;
    started;
    fuel;
    tripped = None;
  }

let unlimited () = create ()

let exhausted t = t.tripped

let elapsed t = now () -. t.started

(** Check without spending fuel: trips the deadline if it has passed. *)
let ok t =
  match t.tripped with
  | Some _ -> false
  | None -> (
      match t.deadline with
      | Some d when now () > d ->
          t.tripped <- Some Deadline;
          false
      | _ -> true)

(** Spend [cost] fuel (default 1) and check both bounds.  Returns [false]
    once the budget is exhausted; exhaustion is sticky. *)
let tick ?(cost = 1) t =
  if not (ok t) then false
  else
    match t.fuel with
    | None -> true
    | Some f when f >= cost ->
        t.fuel <- Some (f - cost);
        true
    | Some _ ->
        t.fuel <- Some 0;
        t.tripped <- Some Fuel;
        false

let remaining_fuel t = t.fuel

(** Wall-clock seconds until the deadline ([None] = no deadline), clamped
    at zero.  Parallel coordinators use this to hand each worker a budget
    slice ending at the same absolute instant. *)
let remaining_seconds t =
  Option.map (fun d -> Float.max 0. (d -. now ())) t.deadline

(** A cooperative-interrupt closure for the solver and symbolic executor:
    returns [true] when work must stop.  Checks the deadline but does not
    spend fuel (fuel meters search nodes, not solver nodes). *)
let interrupt t () = not (ok t)
