(** Post-mortem debugging aids on top of a synthesized suffix (paper §3.3).

    A session wraps one verified suffix.  Because replay is deterministic,
    any point in the suffix can be reconstructed exactly by re-running the
    replay for a bounded number of steps — reverse-stepping is just
    re-running one step less, with no recording anywhere.  The hypothesis
    helpers answer the paper's example queries. *)

type t

(** Open a debugging session for a suffix.  [Error] if the suffix does not
    reproduce the coredump (nothing trustworthy to debug).
    [snapshot_every] (default 64) is the snapshot-index interval used by
    state queries; 0 disables the index, so every query replays from
    step 0. *)
val start :
  ?snapshot_every:int ->
  Backstep.ctx ->
  Suffix.t ->
  Res_vm.Coredump.t ->
  (t, string) result

(** Number of instruction steps in the suffix. *)
val length : t -> int

(** The event at step [i] (0-based, oldest first).
    @raise Invalid_argument when out of range. *)
val event_at : t -> int -> Res_vm.Event.t

(** The crash the suffix runs into. *)
val crash : t -> Res_vm.Crash.t

(** Total completed instruction steps in the suffix, the timeline bound
    for {!state_at}.  Distinct from {!length}: a blocked scheduling
    attempt completes a step but emits no event, and a final ret emits
    two (ret + halt), so trace indices are not step numbers.  Events
    carry their true step; {!mem_at}/{!reg_at} translate through it. *)
val total_steps : t -> int

(** Reconstruct the exact machine state after the first [steps]
    instructions of the suffix, via the snapshot index: restore the
    nearest snapshot at or below [steps], re-execute forward —
    O(snapshot interval) per query.  The returned state is the session's
    shared replay cursor: it is valid until the next state query on [t];
    extract what you need before querying again. *)
val state_at : t -> int -> Res_vm.Exec.state

(** Replay-from-zero state reconstruction — the pre-index baseline kept
    for benchmarking and cross-checking the index.  O(steps) per query;
    returns a fresh state. *)
val state_at_linear : t -> int -> Res_vm.Exec.state

(** Memory word [addr] just after trace event [i]. *)
val mem_at : t -> int -> int -> int

(** Register [reg] of thread [tid] just after trace event [i] (innermost
    frame); [None] if the thread has no frame there. *)
val reg_at : t -> int -> tid:int -> reg:Res_ir.Instr.reg -> int option

(** First step whose program counter matches — a breakpoint.  Answers
    "what was the program state when the program was executing at X?"
    (combine with {!state_at}).  The faulting instruction itself never
    completes and so has no step. *)
val break_at : t -> Res_ir.Pc.t -> int option

(** Every step whose program counter matches, oldest first — the full hit
    list of a breakpoint. *)
val break_all : t -> Res_ir.Pc.t -> int list

(** All step numbers executed by a thread. *)
val steps_of_thread : t -> int -> int list

(** Steps that wrote the memory word, oldest first — a location's write
    history within the suffix. *)
val writes_to : t -> int -> int list

(** Hypothesis (paper §3.3): "was thread T preempted before updating shared
    memory location M?" — [Some true] when another thread executed between
    T's previous access to M and T's write to M; [None] when T never
    writes M in this suffix. *)
val preempted_before_update : t -> tid:int -> addr:int -> bool option

(** The suffix as a navigable instruction listing. *)
val pp_listing : Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
