(** The injectable I/O fault plane.

    Every persistence module (checkpoint, spool, cluster journal, result
    cache) routes its disk traffic through this thin shim instead of
    calling {!Res_vm.Coredump_io} directly.  In production the shim is
    transparent: {!write_file_atomic} is exactly the journal-then-rename
    writer, {!read_file} is exactly the hardened reader.  Under test,
    {!with_injector} installs a decision function that can make any
    individual operation fail the way a hostile disk fails — ENOSPC
    mid-write, EIO on read, a failed fsync, a torn write that leaves a
    half-journal behind — so the fault-injection campaigns can prove
    that every persistence path degrades (quarantine, recompute, retry)
    instead of serving wrong bytes or losing accepted work.

    Injected write faults deliberately leave a torn [.tmp] journal on
    disk, exactly like a writer killed mid-[write(2)]: recovery code
    must delete or refuse it, and the campaigns assert that it does.

    The injector is process-global state (forked workers inherit it,
    which is what the campaigns want); it is not synchronized across
    domains — install it only from a single-domain test harness. *)

module Io = Res_vm.Coredump_io

(** The operations a persistence path performs, as injection points. *)
type op =
  | Write  (** writing the journal file's bytes *)
  | Fsync  (** flushing the journal to stable storage before rename *)
  | Rename  (** publishing the journal over the destination *)
  | Fsync_dir  (** flushing the directory entry after rename *)
  | Read  (** reading a file back *)
  | Mkdir  (** creating a persistence directory *)

let op_name = function
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Fsync_dir -> "fsync-dir"
  | Read -> "read"
  | Mkdir -> "mkdir"

(** How an injected operation fails. *)
type fault =
  | Enospc  (** disk full: half the bytes land, then ENOSPC *)
  | Eio  (** the operation fails outright with EIO *)
  | Fsync_fail  (** fsync reports failure; the write cannot be trusted *)
  | Torn of int  (** exactly [n] bytes land, then the writer dies (EIO) *)

let fault_name = function
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Fsync_fail -> "fsync-fail"
  | Torn n -> Printf.sprintf "torn-%d" n

(** Decide whether (and how) this operation on this path fails.  Return
    [None] to let it through. *)
type injector = op -> string -> fault option

let no_faults : injector = fun _ _ -> None
let injector : injector ref = ref no_faults

(** Install [f] for the duration of [thunk] (restored on any exit). *)
let with_injector f thunk =
  let prev = !injector in
  injector := f;
  Fun.protect ~finally:(fun () -> injector := prev) thunk

let check op path = !injector op path

(* Leave a torn journal behind, like a writer that died mid-write, then
   surface the failure as the Unix error a real disk returns. *)
let fail_torn ~tmp ~contents ~keep code =
  let oc = open_out_bin tmp in
  output_string oc (String.sub contents 0 (min keep (String.length contents)));
  close_out_noerr oc;
  raise (Unix.Unix_error (code, "write", tmp))

(** {!Res_vm.Coredump_io.write_file_atomic} with injection points at
    every stage: journal write, fsync, rename, directory fsync.  A fault
    raises [Unix.Unix_error] (after leaving a realistic torn journal for
    write-stage faults); callers treat any exception as "this write did
    not happen" and fall back to their degrade path. *)
let write_file_atomic path contents =
  let tmp = Io.fresh_tmp_path path in
  (match check Write path with
  | Some Enospc ->
      fail_torn ~tmp ~contents ~keep:(String.length contents / 2) Unix.ENOSPC
  | Some (Torn n) -> fail_torn ~tmp ~contents ~keep:n Unix.EIO
  | Some (Eio | Fsync_fail) -> raise (Unix.Unix_error (Unix.EIO, "write", tmp))
  | None -> ());
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc contents;
     flush oc;
     match check Fsync path with
     | Some _ ->
         (* the journal is fully written but may not be durable: the
            write cannot be acknowledged *)
         raise (Unix.Unix_error (Unix.EIO, "fsync", tmp))
     | None -> ( try Unix.fsync fd with Unix.Unix_error _ -> ())
   with exn ->
     close_out_noerr oc;
     raise exn);
  close_out oc;
  (match check Rename path with
  | Some _ -> raise (Unix.Unix_error (Unix.EIO, "rename", tmp))
  | None -> ());
  Sys.rename tmp path;
  match check Fsync_dir path with
  | Some _ -> () (* a failed directory fsync is tolerated, like the real one *)
  | None -> Io.fsync_dir (Filename.dirname path)

(** {!Res_vm.Coredump_io.read_file} with a read injection point: an
    injected fault reads as an unreadable file (the classified error
    every loader already degrades on), not an exception. *)
let read_file path =
  match check Read path with
  | Some f ->
      Error
        (Io.Unreadable (Printf.sprintf "injected %s fault" (fault_name f)))
  | None -> Io.read_file path

(** Create [dir] if needed and — unlike a bare [Unix.mkdir] — fsync its
    parent, so the directory itself survives a power loss.  The spool
    and journal used to skip the parent fsync; every persistence
    directory is created through here now. *)
let mkdir_durable dir =
  (match check Mkdir dir with
  | Some Enospc -> raise (Unix.Unix_error (Unix.ENOSPC, "mkdir", dir))
  | Some _ -> raise (Unix.Unix_error (Unix.EIO, "mkdir", dir))
  | None -> ());
  match Unix.mkdir dir 0o755 with
  | () -> Io.fsync_dir (Filename.dirname dir)
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
