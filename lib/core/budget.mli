(** Deadline/fuel budgets for the analysis pipeline.

    One value bundles a wall-clock deadline and a cooperative fuel counter;
    every pipeline stage checks it at each unit of work.  Exhaustion is
    sticky: once a bound trips, every later check fails fast so the whole
    stack unwinds and returns its best partial answer. *)

type exhaustion = Deadline | Fuel

val pp_exhaustion : Format.formatter -> exhaustion -> unit

type t

(** [create ?wall_seconds ?fuel ()] — the clock starts immediately.
    Omitted bounds are unlimited. *)
val create : ?wall_seconds:float -> ?fuel:int -> unit -> t

(** A budget with no bounds (every check succeeds). *)
val unlimited : unit -> t

(** Which bound tripped, if any. *)
val exhausted : t -> exhaustion option

(** Wall-clock seconds since [create]. *)
val elapsed : t -> float

(** Check without spending fuel; trips the deadline if it has passed. *)
val ok : t -> bool

(** Spend [cost] fuel (default 1) and check both bounds.  [false] once
    exhausted. *)
val tick : ?cost:int -> t -> bool

(** Remaining fuel ([None] = unlimited). *)
val remaining_fuel : t -> int option

(** Wall-clock seconds until the deadline ([None] = no deadline), clamped
    at zero — how parallel coordinators derive worker budget slices that
    end at the same absolute instant. *)
val remaining_seconds : t -> float option

(** Cooperative-interrupt closure for {!Res_solver.Solver} and
    {!Res_symex.Symexec}: [true] means stop now.  Checks the deadline only;
    fuel meters search nodes. *)
val interrupt : t -> unit -> bool
