(** Human-readable debugging reports (paper §3.3).

    Renders an analysis the way a developer would consume it in a
    debugger: the failure, the deterministic execution suffix, the thread
    schedule, the recently read/written state (which RES "automatically
    focuses developers' attention on"), and the classified root cause. *)

let pp_addr_list layout ppf addrs =
  let pp_one ppf a = Fmt.string ppf (Res_mem.Layout.describe layout a) in
  Fmt.(list ~sep:comma pp_one) ppf addrs

let pp_report ctx ppf (r : Res.report) =
  let layout = ctx.Backstep.layout in
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "failure: %a@," Res_vm.Crash.pp r.suffix.Suffix.crash;
  Fmt.pf ppf "%a@," Suffix.pp r.suffix;
  Fmt.pf ppf "schedule: %a@,"
    Fmt.(list ~sep:sp int)
    (Suffix.schedule r.suffix);
  (match Suffix.input_script r.suffix with
  | [] -> ()
  | inputs -> Fmt.pf ppf "inputs: %a@," Fmt.(list ~sep:comma int) inputs);
  Fmt.pf ppf "write set: %a@," (pp_addr_list layout) (Suffix.write_set r.suffix);
  Fmt.pf ppf "read set: %a@," (pp_addr_list layout) (Suffix.read_set r.suffix);
  Fmt.pf ppf "replayed: %s%s@,"
    (if r.verdict.Replay.reproduced then "yes, exact coredump match" else "NO")
    (if r.deterministic then " (deterministic)" else "");
  (match r.root_cause with
  | Some cause -> Fmt.pf ppf "root cause: %a@," Rootcause.pp cause
  | None -> Fmt.pf ppf "root cause: (not reproduced)@,");
  Fmt.pf ppf "@]"

let pp_analysis ctx ppf (a : Res.analysis) =
  Fmt.pf ppf
    "@[<v>=== RES analysis ===@,\
     suffix depth reached: %d@,\
     search nodes: %d, candidates: %d, statically pruned: %d, suffixes \
     synthesized: %d@,\
     cpu time: %.3fs@,\
     reproduced suffixes: %d@,@,%a@]"
    a.Res.depth_reached a.Res.nodes_expanded a.Res.candidates_tried
    a.Res.nodes_pruned a.Res.suffixes_synthesized a.Res.cpu_seconds
    (List.length a.Res.reports)
    Fmt.(list ~sep:(cut ++ cut) (pp_report ctx))
    a.Res.reports

let analysis_to_string ctx a = Fmt.str "%a@." (pp_analysis ctx) a

(** Deterministic display order: definite causes first, then longer
    suffixes, ties broken by the rendered report text — so two analyses
    with the same reports always print identically, whatever order the
    search emitted them in. *)
let display_sort ctx (a : Res.analysis) =
  let score (r : Res.report) =
    match r.Res.root_cause with
    | Some c when Res.definite_cause c -> 2
    | Some _ -> 1
    | None -> 0
  in
  let rendered =
    List.map (fun r -> (r, Fmt.str "%a" (pp_report ctx) r)) a.Res.reports
  in
  let reports =
    List.stable_sort
      (fun ((ra : Res.report), ta) ((rb : Res.report), tb) ->
        match compare (score rb) (score ra) with
        | 0 -> (
            match
              compare (Suffix.length rb.Res.suffix) (Suffix.length ra.Res.suffix)
            with
            | 0 -> String.compare ta tb
            | c -> c)
        | c -> c)
      rendered
    |> List.map fst
  in
  { a with Res.reports }

(** The bit-stable projection of an analysis: counters and sorted reports,
    no timing.  Two runs that did the same work render identically here —
    this is what kill-and-resume equivalence compares. *)
let reports_to_string ctx (a : Res.analysis) =
  let a = display_sort ctx a in
  Fmt.str
    "@[<v>depth %d nodes %d candidates %d synthesized %d@,@,%a@]@."
    a.Res.depth_reached a.Res.nodes_expanded a.Res.candidates_tried
    a.Res.suffixes_synthesized
    Fmt.(list ~sep:(cut ++ cut) (pp_report ctx))
    a.Res.reports

(** The report {e bodies} only, display-sorted, without the work counters.
    Two analyses that found the same defects render identically here even
    if they did different amounts of work to find them — this is what the
    static-prune equivalence check compares (pruning must change the
    counters and nothing else). *)
let report_list_to_string ctx (a : Res.analysis) =
  let a = display_sort ctx a in
  Fmt.str "@[<v>%a@]@."
    Fmt.(list ~sep:(cut ++ cut) (pp_report ctx))
    a.Res.reports

let pp_outcome ctx ppf (o : Res.outcome) =
  match o with
  | Res.Complete a ->
      Fmt.pf ppf "@[<v>outcome: complete@,%a@]" (pp_analysis ctx) a
  | Res.Partial (reason, a) ->
      Fmt.pf ppf "@[<v>outcome: PARTIAL — %a@,best partial results follow@,%a@]"
        Res.pp_partial_reason reason (pp_analysis ctx) a
  | Res.Failed e -> Fmt.pf ppf "outcome: FAILED — %a" Res.pp_error e

let outcome_to_string ctx o = Fmt.str "%a@." (pp_outcome ctx) o

(** Display-sort the reports inside an outcome ([Failed] is unchanged), so
    every surface that prints an outcome — the CLI, the triage daemon —
    orders reports identically regardless of search emission order. *)
let sorted_outcome ctx (o : Res.outcome) =
  match o with
  | Res.Complete a -> Res.Complete (display_sort ctx a)
  | Res.Partial (r, a) -> Res.Partial (r, display_sort ctx a)
  | Res.Failed _ -> o
